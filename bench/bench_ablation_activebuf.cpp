// Ablation: active buffering with an I/O thread (related work [2, 7]).
//
// A BTIO-like loop alternates compute with collective dump steps on slow
// (throttled) storage.  Active buffering overlaps the flush with the next
// compute phase, hiding storage time for both engines — it is orthogonal
// to listless I/O, which removes datatype-handling (CPU) overhead.
#include "bench_common.hpp"
#include "pfs/active_buffer_file.hpp"
#include "pfs/throttled_file.hpp"

using namespace llio;
using namespace llio::bench;

namespace {

double run_loop(bool active_buffering, double* io_share) {
  const int steps = 6;
  const Off chunk = 4 << 20;
  const double compute_per_step_s = 0.03;

  pfs::FilePtr storage = pfs::MemFile::create();
  pfs::ThrottleConfig cfg;
  cfg.write_bandwidth_bps = 150e6;  // slow disk-like sink
  storage = pfs::ThrottledFile::wrap(storage, cfg);
  std::shared_ptr<pfs::ActiveBufferFile> abf;
  if (active_buffering) {
    abf = pfs::ActiveBufferFile::wrap(storage, 128 << 20);
    storage = abf;
  }

  double total = 0, io = 0;
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    mpiio::File f = mpiio::File::open(comm, storage, mpiio::Options{});
    ByteVec buf(to_size(chunk), Byte{0x7E});
    WallTimer wall;
    for (int s = 0; s < steps; ++s) {
      // "Compute": burn a fixed slice of wall time.
      WallTimer c;
      while (c.seconds() < compute_per_step_s) {
      }
      WallTimer w;
      f.write_at(s * chunk, buf.data(), chunk, dt::byte());
      io += w.seconds();
    }
    {
      WallTimer w;
      f.sync();  // drains the stage; counted as I/O
      io += w.seconds();
    }
    total = wall.seconds();
  });
  *io_share = io / total;
  return total;
}

}  // namespace

int main() {
  std::printf("ablation: active buffering + I/O thread over slow storage "
              "(6 steps x 4 MiB, 150 MB/s sink, 30 ms compute/step)\n");
  Table table({"mode", "wall [s]", "io share"});
  for (bool ab : {false, true}) {
    double share = 0;
    const double wall = run_loop(ab, &share);
    table.add_row({ab ? "active-buffering" : "direct",
                   strprintf("%.3f", wall), strprintf("%.0f%%", share * 100)});
  }
  table.print("write-behind overlap (lower wall time is better)");
  return 0;
}
