// Ablation: the adaptive policy layer vs every static configuration
// under an adversarial mid-run condition flip (llio_adaptive).
//
// Scenario "net-recovery": the job starts on a congested client fabric
// (sim "slow": 50 us / 100 MB/s) in front of a psrv file-server pool
// whose storage wire is fast the whole time, and halfway through the
// run the client fabric recovers (flip to "shared-mem").  The workload
// is the paper's interleaved noncontig collective write with tiny
// blocks (S_block = 8), served by list-class requests — so the two
// collective routes cross hard:
//
//   two-phase (tp)    aggregates the interleaved blocks into dense
//                     per-aggregator windows: tiny ol-lists on the
//                     storage wire, but the exchange pays the client
//                     fabric — catastrophic while it is congested.
//   independent (ix)  skips the exchange entirely: each rank ships its
//                     fragmented ol-list (16 B per 8 B block) straight
//                     to the servers.  Immune to the client fabric,
//                     ~4x slower than tp once the fabric is fast.
//
// No static row wins both halves.  The adaptive rows start from the ix
// base (the right arm for the congested start), epsilon-probe
// single-knob neighbors, and must discover the tp arm after the
// recovery: the mid-run cost-model change lands them under a fresh
// (net dim) advisor key, so the new regime is learned from scratch
// instead of fighting the old regime's EWMAs.
//
// Static grid: {listless, list-based} x {tp, ix}, llio_adaptive=off.
// Adaptive rows: auto (hysteresis) and force (greedy), both gated in CI
// by tools/check_adaptive.py: >= 0.9x the best static, >= 1.15x the
// worst, and at least one switch in the decision trail.  Two pure-
// regime rows per route document the crossing itself (not gated).
//
// Output: aligned table + json: lines; commit a full run as
// BENCH_adaptive.json.  --quick shrinks the op count for CI.
#include <cstring>

#include "bench_common.hpp"
#include "simmpi/net_model.hpp"

using namespace llio;
using namespace llio::bench;

namespace {

constexpr int kProcs = 4;
constexpr Off kNblock = 2048;
constexpr Off kSblock = 8;

struct RowSpec {
  const char* config;    ///< row label ("ll:tp", "auto", ...)
  const char* adaptive;  ///< llio_adaptive value
  mpiio::Method method;
  bool two_phase;
};

NoncontigConfig base_config(const RowSpec& spec, int flip_at) {
  NoncontigConfig cfg;
  cfg.method = spec.method;
  cfg.nprocs = kProcs;
  cfg.nblock = kNblock;
  cfg.sblock = kSblock;
  cfg.collective = true;
  cfg.write = true;
  cfg.target_bytes_pp = env_off("LLIO_BENCH_TARGET_KB", 256) * 1024;
  cfg.net = sim::named_cost_model("slow");
  cfg.hints.set("llio_adaptive", spec.adaptive);
  if (!spec.two_phase) cfg.hints.set("romio_cb_write", "disable");
  if (std::strcmp(spec.adaptive, "off") != 0) {
    cfg.hints.set("llio_adaptive_epsilon",
                  env_str("LLIO_BENCH_ADAPT_EPS", "0.125"));
    cfg.hints.set("llio_adaptive_window",
                  env_str("LLIO_BENCH_ADAPT_WINDOW", "2"));
    // LLIO_BENCH_ADAPT_REPORT=path: write the auto row's llio_report
    // JSON (the decision trail lands in its "adapt" section — CI gates
    // it with check_report.py --expect-adapt --min-switches 1).
    const std::string rp = env_str("LLIO_BENCH_ADAPT_REPORT", "");
    if (!rp.empty() && std::strcmp(spec.adaptive, "auto") == 0)
      cfg.hints.set("llio_report", rp);
  }
  // The storage wire stays fast through the flip: only the client
  // fabric recovers.  (run_noncontig would otherwise give the pool the
  // client model.)
  cfg.make_backend = [] {
    psrv::PoolConfig pc;
    pc.nservers = 4;
    pc.net = sim::named_cost_model("shared-mem");
    return psrv::ServerFile::create(psrv::ServerPool::create(std::move(pc)),
                                    psrv::RequestClass::List);
  };
  if (flip_at > 0) {
    // min_seconds 0 pins repeats at exactly 2*flip_at, so every row
    // measures the identical op sequence: flip_at congested ops, then
    // flip_at recovered ones.
    cfg.min_seconds = 0;
    cfg.flip_at = flip_at;
    cfg.flip_net = "shared-mem";
  } else {
    cfg.min_seconds = env_double("LLIO_BENCH_MIN_SECONDS", 0.05);
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const int flip_at = static_cast<int>(
      env_off("LLIO_BENCH_FLIP_AT", quick ? 100 : 150));

  std::printf(
      "ablation: adaptive policy vs static grid (listless/list x tp/ix, "
      "P=%d, %lld x %lld B interleaved collective write, client fabric "
      "slow -> shared-mem at op %d of %d; psrv wire fast throughout)\n",
      kProcs, static_cast<long long>(kNblock),
      static_cast<long long>(kSblock), flip_at, 2 * flip_at);
  std::printf(
      "json-schema:{\"bench\":\"string\",\"scenario\":\"string\","
      "\"config\":\"string\",\"adaptive\":\"string\",\"policy\":\"string\","
      "\"mbps_pp\":\"number\",\"repeats\":\"int\",\"flip_at\":\"int\","
      "\"decisions\":\"int\",\"probes\":\"int\",\"switches\":\"int\"}\n");

  Table table({"scenario", "config", "adaptive", "policy", "MB/s/proc",
               "repeats", "probes", "switches"});
  std::string json;
  auto emit = [&](const char* scenario, const RowSpec& spec,
                  const BenchPoint& p, int flip) {
    const char* policy =
        p.adapt_policy.empty() ? "static" : p.adapt_policy.c_str();
    table.add_row({scenario, spec.config, spec.adaptive, policy,
                   fmt_mbps(p.mbps_pp()), strprintf("%d", p.repeats),
                   strprintf("%llu",
                             static_cast<unsigned long long>(p.adapt_probes)),
                   strprintf("%llu", static_cast<unsigned long long>(
                                         p.adapt_switches))});
    json += strprintf(
        "json:{\"bench\":\"ablation_adaptive\",\"scenario\":\"%s\","
        "\"config\":\"%s\",\"adaptive\":\"%s\",\"policy\":\"%s\","
        "\"mbps_pp\":%.3f,\"repeats\":%d,\"flip_at\":%d,"
        "\"decisions\":%llu,\"probes\":%llu,\"switches\":%llu}\n",
        scenario, spec.config, spec.adaptive, policy, p.mbps_pp(), p.repeats,
        flip, static_cast<unsigned long long>(p.adapt_decisions),
        static_cast<unsigned long long>(p.adapt_probes),
        static_cast<unsigned long long>(p.adapt_switches));
  };

  const RowSpec statics[] = {
      {"ll:tp", "off", mpiio::Method::Listless, true},
      {"ll:ix", "off", mpiio::Method::Listless, false},
      {"lb:tp", "off", mpiio::Method::ListBased, true},
      {"lb:ix", "off", mpiio::Method::ListBased, false},
  };
  const RowSpec adaptives[] = {
      {"auto", "auto", mpiio::Method::Listless, false},
      {"force", "force", mpiio::Method::Listless, false},
  };

  // The crossing itself, one pure regime per row (not gated: context for
  // the flip rows).
  for (const char* net : {"slow", "shared-mem"}) {
    for (const RowSpec& spec : {statics[0], statics[1]}) {
      NoncontigConfig cfg = base_config(spec, /*flip_at=*/0);
      cfg.net = sim::named_cost_model(net);
      emit(net, spec, run_noncontig(cfg), 0);
    }
  }

  // The adversarial flip scenario: the gate material.
  for (const RowSpec& spec : statics)
    emit("net-recovery", spec, run_noncontig(base_config(spec, flip_at)),
         flip_at);
  for (const RowSpec& spec : adaptives)
    emit("net-recovery", spec, run_noncontig(base_config(spec, flip_at)),
         flip_at);

  table.print(
      "no static row wins both fabric regimes; adaptive must ride ix "
      "through the congestion and switch to tp after the recovery");
  std::printf("%s", json.c_str());
  return 0;
}
