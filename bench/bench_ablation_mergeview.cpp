// Ablation: mergeview contiguity analysis (paper §3.2.4).
//
// A collective write whose merged access pattern leaves no hole inside a
// file-domain window does not need the read-modify-write pre-read for
// that window: every byte is overwritten anyway.  llio_merge_contig=auto
// detects this exactly (k-way merge over the per-rank fileviews) and
// elides the pre-read; =off always pre-reads dirty windows.  Three
// workloads:
//
//   dense  - P ranks tile the file exactly (noncontig stripes, no gap):
//            every window is hole-free, auto skips every pre-read.
//   holey  - the same tiling built for P+1 ranks with one rank missing:
//            every window has holes, auto must pre-read like off (this
//            bounds the cost of the analysis itself).
//   contig - per-rank contiguous disjoint extents: auto takes the
//            dense-disjoint bypass (no exchange, direct write).
//
// Backends: one throttled device (512 MB/s + 50 us latency) and a
// StripedFile over 4 such devices (1 MiB stripe), where skipping the
// pre-read also removes contention on the device channels.
//
// Output: aligned table + csv: lines (bench_common convention) + json:
// lines, one object per data point, schema announced in a json-schema:
// line.
#include "bench_common.hpp"
#include "pfs/striped_file.hpp"
#include "pfs/throttled_file.hpp"

using namespace llio;
using namespace llio::bench;

namespace {

constexpr int kProcs = 4;
constexpr int kDevices = 4;
constexpr Off kSblock = 1024;
constexpr Off kFbs = 64 << 10;  // window size (file_buffer_size)
constexpr Off kWindowsPerIop = 4;
constexpr Off kNblock = kWindowsPerIop * (kFbs / kSblock);
constexpr Off kBytesPp = kNblock * kSblock;  // per rank per op

struct Point {
  double seconds = 0;       // per op, max across ranks
  Off skipped = 0;          // pre-reads elided, summed over ranks
  double analysis_s = 0;    // merge analysis seconds, summed over ranks
  bool contig = false;      // dense-disjoint bypass taken

  double mbps_pp() const {
    return seconds > 0
               ? static_cast<double>(kBytesPp) / seconds / (1024.0 * 1024.0)
               : 0.0;
  }
};

pfs::FilePtr make_backend(bool striped) {
  pfs::ThrottleConfig cfg;
  cfg.read_bandwidth_bps = 512e6;
  cfg.write_bandwidth_bps = 512e6;
  cfg.op_latency_s = 50e-6;
  if (!striped) return pfs::ThrottledFile::wrap(pfs::MemFile::create(), cfg);
  cfg.exclusive_device = true;  // a device channel saturates as a whole
  std::vector<pfs::FilePtr> devs;
  for (int d = 0; d < kDevices; ++d)
    devs.push_back(pfs::ThrottledFile::wrap(pfs::MemFile::create(), cfg));
  return pfs::StripedFile::create(std::move(devs), 1 << 20);
}

Point run_point(const std::string& workload, bool striped,
                mpiio::MergeContig mode) {
  auto fs = make_backend(striped);
  const double min_seconds = env_double("LLIO_BENCH_MIN_SECONDS", 0.12);

  std::atomic<long> time_ns{0};
  std::atomic<long> skipped{0};
  std::atomic<long> analysis_ns{0};
  std::atomic<int> contig{0};

  sim::Runtime::run(kProcs, [&](sim::Comm& comm) {
    mpiio::Options o;
    o.method = mpiio::Method::Listless;
    o.file_buffer_size = kFbs;
    o.merge_contig = mode;
    mpiio::File f = mpiio::File::open(comm, fs, o);
    if (workload == "contig") {
      f.set_view(Off{comm.rank()} * kBytesPp, dt::byte(), dt::byte());
    } else {
      // "holey" tiles for one rank more than participate: the missing
      // rank's stripe punches a hole into every window.
      const int tile = workload == "holey" ? kProcs + 1 : kProcs;
      f.set_view(0, dt::byte(),
                 noncontig_filetype(kNblock, kSblock, tile, comm.rank()));
    }
    ByteVec buf(to_size(kBytesPp), Byte{0x42});
    auto one_op = [&] { f.write_at_all(0, buf.data(), kBytesPp, dt::byte()); };

    one_op();  // warm-up (sizes the file, warms the verdict cache)
    comm.barrier();

    int repeats = 1;
    {
      WallTimer t;
      one_op();
      comm.barrier();
      const double once = t.seconds();
      repeats = once >= min_seconds
                    ? 1
                    : static_cast<int>(min_seconds / std::max(once, 1e-6)) + 1;
      repeats = std::min(repeats, 10000);
    }
    repeats = static_cast<int>(comm.allreduce_max(repeats));

    comm.barrier();
    WallTimer t;
    for (int i = 0; i < repeats; ++i) one_op();
    comm.barrier();
    const double total = t.seconds();

    if (comm.rank() == 0)
      time_ns.store(static_cast<long>(total / repeats * 1e9));
    // Per-op analysis stats from the last op (every op runs the same
    // window schedule against a warm verdict cache).
    skipped.fetch_add(
        static_cast<long>(f.last_stats().preread_skipped_windows));
    analysis_ns.fetch_add(
        static_cast<long>(f.last_stats().merge_analysis_s * 1e9));
    if (f.last_stats().merge_contig_ops > 0) contig.fetch_add(1);
  });

  Point p;
  p.seconds = static_cast<double>(time_ns.load()) / 1e9;
  p.skipped = Off{skipped.load()};
  p.analysis_s = static_cast<double>(analysis_ns.load()) / 1e9;
  p.contig = contig.load() > 0;
  return p;
}

}  // namespace

int main() {
  std::printf(
      "ablation: mergeview contiguity analysis (listless, P=%d, %lld KiB "
      "windows, %lld KiB/proc/op, throttled storage 512 MB/s + 50 us)\n",
      kProcs, static_cast<long long>(kFbs >> 10),
      static_cast<long long>(kBytesPp >> 10));
  Table table({"backend", "workload", "merge", "MB/s/proc", "speedup",
               "skipped", "analysis [us]", "bypass"});
  std::printf("json-schema:{\"bench\":\"string\",\"backend\":\"string\","
              "\"workload\":\"string\",\"merge_contig\":\"string\","
              "\"mbps_pp\":\"number\",\"speedup_vs_off\":\"number\","
              "\"preread_skipped_windows\":\"int\","
              "\"merge_analysis_s\":\"number\","
              "\"merge_contig_bypass\":\"bool\"}\n");
  std::string json;
  for (bool striped : {false, true}) {
    for (const char* workload : {"dense", "holey", "contig"}) {
      double base = 0;
      for (mpiio::MergeContig mode :
           {mpiio::MergeContig::Off, mpiio::MergeContig::Auto}) {
        const Point p = run_point(workload, striped, mode);
        if (mode == mpiio::MergeContig::Off) base = p.mbps_pp();
        const double speedup = base > 0 ? p.mbps_pp() / base : 0.0;
        const char* mname = mpiio::merge_contig_name(mode);
        table.add_row({striped ? "striped x4" : "throttled", workload, mname,
                       fmt_mbps(p.mbps_pp()), strprintf("%.2fx", speedup),
                       strprintf("%lld", static_cast<long long>(p.skipped)),
                       strprintf("%.1f", p.analysis_s * 1e6),
                       p.contig ? "yes" : "no"});
        json += strprintf(
            "json:{\"bench\":\"ablation_mergeview\",\"backend\":\"%s\","
            "\"workload\":\"%s\",\"merge_contig\":\"%s\",\"mbps_pp\":%.3f,"
            "\"speedup_vs_off\":%.3f,\"preread_skipped_windows\":%lld,"
            "\"merge_analysis_s\":%.6f,\"merge_contig_bypass\":%s}\n",
            striped ? "striped" : "throttled", workload, mname, p.mbps_pp(),
            speedup, static_cast<long long>(p.skipped), p.analysis_s,
            p.contig ? "true" : "false");
      }
    }
  }
  table.print("hole-free collective writes skip the RMW pre-read "
              "(higher MB/s is better)");
  std::printf("%s", json.c_str());
  return 0;
}
