// Ablation: multi-tenant scaling of the psrv pool — clients x cache.
//
// N independent tenants (sim::Runtime::run_jobs worlds, each a 2-rank
// job with its own File and psrv session) drive the shared-log workload
// concurrently against ONE 4-server pool, each tenant aimed at its own
// band of the file via the fileview displacement.  Swept: tenant count
// (saturation curve) x session cache off/on.  Reported per point:
//   * aggregate and per-tenant-min/max throughput — the fair-share
//     scheduler's job is to keep min/aggregate near 1/N (the
//     check_multitenant.py gate: slowest tenant >= 1/(2N) of aggregate),
//   * dense re-read bandwidth — the client cache's job is to collapse
//     re-read wire traffic into local hits (gate: cache-on >= 1.3x off),
//   * client-observed read p99 and the pool's recall/aggregation/
//     escalation counters.
// Scale knobs: LLIO_BENCH_APPENDS, LLIO_BENCH_RECORD, LLIO_BENCH_NET.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "shared_log.hpp"

using namespace llio;
using namespace llio::bench;

int main() {
  const int nprocs = 2;  // ranks per tenant job
  SharedLogConfig cfg;
  cfg.record = env_off("LLIO_BENCH_RECORD", 512);
  cfg.appends = static_cast<int>(env_off("LLIO_BENCH_APPENDS", 32));
  cfg.ordered_every = 8;
  cfg.reread_passes = 3;
  const std::string net_name = env_str("LLIO_BENCH_NET", "fast");
  const sim::CommCostModel net = sim::named_cost_model(net_name);

  // Per-tenant band: the tenant's whole log plus slack, stripe-aligned.
  const Off log_pp = cfg.record * (Off{cfg.appends} +
                                   Off{cfg.appends / cfg.ordered_every});
  const Off band = ((Off{nprocs} * log_pp * 2) / 4096 + 1) * 4096;

  std::printf(
      "multitenant: tenants x {cache off,on} over one 4-server pool; "
      "each tenant = %d-rank shared-log job (%d x %lld B appends/rank, "
      "%d re-read passes) in its own %lld KB band, net=%s\n",
      nprocs, cfg.appends, static_cast<long long>(cfg.record),
      cfg.reread_passes, static_cast<long long>(band / 1024),
      net_name.c_str());
  std::printf(
      "json-schema:{\"bench\":\"string\",\"ntenants\":\"int\","
      "\"cache\":\"bool\",\"net\":\"string\",\"agg_mbps\":\"number\","
      "\"tenant_mbps_min\":\"number\",\"tenant_mbps_max\":\"number\","
      "\"fair_frac\":\"number\",\"reread_mbps\":\"number\","
      "\"read_p99_us\":\"number\",\"cache_hits\":\"int\","
      "\"recalls\":\"int\",\"agg_writes\":\"int\","
      "\"escalations\":\"int\"}\n");

  Table table({"tenants", "cache", "agg MB/s", "min MB/s", "max MB/s",
               "fair", "reread MB/s", "read p99 us"});
  std::string json;
  for (const int ntenants : {1, 2, 4, 8}) {
    for (const bool cache : {false, true}) {
      psrv::PoolConfig pc;
      pc.nservers = 4;
      pc.stripe = 4096;
      pc.capacity = band * ntenants;
      pc.net = net;
      pc.client_slots = ntenants * nprocs + 4;
      pc.session_slots = ntenants + 2;
      auto pool = psrv::ServerPool::create(std::move(pc));

      // One handle (= one session) per tenant, opened up front so no
      // tenant pays session setup inside the timed region.
      std::vector<pfs::FilePtr> handles;
      for (int j = 0; j < ntenants; ++j) {
        psrv::SessionConfig sc;
        sc.cache = cache;
        handles.push_back(psrv::ServerFile::create(
            pool, psrv::RequestClass::List, sc));
      }

      std::vector<SharedLogStats> per_job(to_size(Off{ntenants}));
      std::mutex mu;
      std::atomic<int> ready{0};
      sim::Runtime::run_jobs(
          ntenants, nprocs, net, [&](int job, sim::Comm& comm) {
            mpiio::File f = mpiio::File::open(comm, handles[to_size(Off{
                                                  job})]);
            f.set_view(Off{job} * band, dt::byte(), dt::byte());
            // Line every rank of every job up before timing starts, so
            // tenant throughputs measure contention, not launch skew.
            ready.fetch_add(1);
            while (ready.load() < ntenants * nprocs)
              std::this_thread::yield();
            const SharedLogStats mine = drive_shared_log(comm, f, cfg);
            std::lock_guard<std::mutex> lk(mu);
            per_job[to_size(Off{job})] += mine;
          });

      double agg = 0, tmin = 0, tmax = 0, reread_bytes = 0, reread_s = 0;
      std::vector<double> read_us;
      for (const SharedLogStats& j : per_job) {
        const double secs = j.append_s + j.reread_s;
        const double mbps =
            secs > 0 ? static_cast<double>(j.appended + j.reread) / secs /
                           (1024.0 * 1024.0)
                     : 0;
        agg += mbps;
        tmin = tmin == 0 ? mbps : std::min(tmin, mbps);
        tmax = std::max(tmax, mbps);
        reread_bytes += static_cast<double>(j.reread);
        reread_s = std::max(reread_s, j.reread_s);
        read_us.insert(read_us.end(), j.read_us.begin(), j.read_us.end());
      }
      const double fair = agg > 0 ? tmin / agg : 0;
      const double reread_mbps =
          reread_s > 0 ? reread_bytes / reread_s / (1024.0 * 1024.0) : 0;
      const double p99 = quantile_us(read_us, 0.99);

      std::uint64_t hits = 0;
      for (const pfs::FilePtr& h : handles)
        hits += static_cast<psrv::ServerFile*>(h.get())
                    ->session()
                    .cache_stats()
                    .hits;
      const psrv::ServerStats st = pool->total_server_stats();
      handles.clear();  // close sessions before the pool goes down

      table.add_row({strprintf("%d", ntenants), cache ? "on" : "off",
                     fmt_mbps(agg), fmt_mbps(tmin), fmt_mbps(tmax),
                     strprintf("%.2f", fair), fmt_mbps(reread_mbps),
                     strprintf("%.2f", p99)});
      json += strprintf(
          "json:{\"bench\":\"ablation_multitenant\",\"ntenants\":%d,"
          "\"cache\":%s,\"net\":\"%s\",\"agg_mbps\":%.3f,"
          "\"tenant_mbps_min\":%.3f,\"tenant_mbps_max\":%.3f,"
          "\"fair_frac\":%.4f,\"reread_mbps\":%.3f,\"read_p99_us\":%.2f,"
          "\"cache_hits\":%llu,\"recalls\":%llu,\"agg_writes\":%llu,"
          "\"escalations\":%llu}\n",
          ntenants, cache ? "true" : "false", net_name.c_str(), agg, tmin,
          tmax, fair, reread_mbps, p99,
          static_cast<unsigned long long>(hits),
          static_cast<unsigned long long>(st.recalls_sent),
          static_cast<unsigned long long>(st.agg_writes),
          static_cast<unsigned long long>(st.escalations));
    }
  }
  table.print(
      "tenant saturation x session cache over one psrv pool "
      "[per-tenant shared-log throughput; fair = min tenant / aggregate]");
  std::printf("%s", json.c_str());
  return 0;
}
