// Ablation: interconnect sensitivity of the ol-list exchange.
//
// The paper's §5: "the higher the bandwidth of the used file system is in
// relation to the bandwidth of the memory system and message passing
// interconnect, the more important listless I/O is".  We rerun a Fig. 6
// collective point under interconnect cost models from shared memory to
// Fast-Ethernet-class.  Expected shape: on fast interconnects the CPU-side
// list handling dominates and the listless ratio is largest; as the
// network slows, both engines become network-bound and the ratio converges
// towards the raw traffic ratio (the ol-lists are 2x the data for 8-byte
// blocks, so listless keeps a ~2-3x edge even there).
#include "bench_common.hpp"

using namespace llio;
using namespace llio::bench;

int main() {
  const Off target = env_off("LLIO_BENCH_TARGET_KB", 128) * 1024;
  const double min_s = env_double("LLIO_BENCH_MIN_SECONDS", 0.1);
  std::printf("ablation: collective nc-nc write, Sblock=8B, Nblock=256, "
              "P=4, under interconnect cost models\n");
  Table table({"network", "list Bpp", "listless Bpp", "ratio",
               "olist bytes/op"});
  for (const auto& net : sim::standard_cost_models()) {
    NoncontigConfig cfg;
    cfg.nprocs = 4;
    cfg.nblock = 256;
    cfg.sblock = 8;
    cfg.collective = true;
    cfg.write = true;
    cfg.target_bytes_pp = target;
    cfg.min_seconds = min_s;
    // Route the model through the hint so the named-model plumbing
    // (llio_net_model -> sim::named_cost_model) is what gets measured.
    cfg.hints.set("llio_net_model", net.first);

    cfg.method = mpiio::Method::ListBased;
    const BenchPoint list = run_noncontig(cfg);
    cfg.method = mpiio::Method::Listless;
    const BenchPoint less = run_noncontig(cfg);
    table.add_row({net.first, fmt_mbps(list.mbps_pp()),
                   fmt_mbps(less.mbps_pp()),
                   strprintf("%.1f", less.mbps_pp() /
                                         std::max(list.mbps_pp(), 1e-9)),
                   std::to_string(list.list_bytes_sent)});
  }
  table.print("network sensitivity of the list-based ol-list exchange "
              "[MB/s per process]");
  return 0;
}
