// Ablation: the ol-list overheads of paper §2.4, measured directly:
//   - explicit flattening cost and memory, O(N_block), vs the O(1) cost
//     and O(tree) size of the compact (cached-fileview) representation;
//   - file positioning: linear ol-list traversal vs O(depth) fotf
//     navigation, as N_block scales.
#include <benchmark/benchmark.h>

#include "dtype/flatten.hpp"
#include "dtype/serialize.hpp"
#include "fotf/navigate.hpp"
#include "listio/ol_walker.hpp"

namespace {

using namespace llio;

dt::Type vector_type(Off nblock) {
  return dt::resized(dt::hvector(nblock, 8, 16, dt::byte()), 0, 16 * nblock);
}

void BM_ExplicitFlatten(benchmark::State& state) {
  const dt::Type t = vector_type(state.range(0));
  for (auto _ : state) {
    dt::OlList list = dt::flatten(t);
    benchmark::DoNotOptimize(list.tuples().data());
    state.counters["list_bytes"] =
        static_cast<double>(list.memory_bytes());
  }
}

void BM_CompactSerialize(benchmark::State& state) {
  const dt::Type t = vector_type(state.range(0));
  for (auto _ : state) {
    ByteVec wire = dt::serialize(t);
    benchmark::DoNotOptimize(wire.data());
    state.counters["wire_bytes"] = static_cast<double>(wire.size());
  }
}

void BM_ListPositioning(benchmark::State& state) {
  // ROMIO's cost: position the file pointer at a random stream offset by
  // scanning the ol-list (O(N_block/2) on average).
  const Off nblock = state.range(0);
  const dt::Type t = vector_type(nblock);
  const dt::OlList list = dt::flatten(t);
  listio::OlWalker walker(&list, t->extent());
  Off s = 0;
  const Off total = t->size();
  for (auto _ : state) {
    s = (s * 1103515245 + 12345) % total;
    walker.position(s);
    benchmark::DoNotOptimize(walker.mem());
  }
}

void BM_FotfPositioning(benchmark::State& state) {
  // Listless cost: O(depth) arithmetic, independent of N_block.
  const Off nblock = state.range(0);
  const dt::Type t = vector_type(nblock);
  Off s = 0;
  const Off total = t->size();
  for (auto _ : state) {
    s = (s * 1103515245 + 12345) % total;
    benchmark::DoNotOptimize(fotf::mem_start(t, s));
  }
}

void BM_ListInverseSearch(benchmark::State& state) {
  const Off nblock = state.range(0);
  const dt::Type t = vector_type(nblock);
  const dt::OlList list = dt::flatten(t);
  listio::OlWalker walker(&list, t->extent());
  Off x = 0;
  const Off span = t->extent();
  for (auto _ : state) {
    x = (x * 69069 + 1) % span;
    benchmark::DoNotOptimize(walker.bytes_below(x));
  }
}

void BM_FotfInverseSearch(benchmark::State& state) {
  const Off nblock = state.range(0);
  const dt::Type t = vector_type(nblock);
  Off x = 0;
  const Off span = t->extent();
  for (auto _ : state) {
    x = (x * 69069 + 1) % span;
    benchmark::DoNotOptimize(fotf::data_below(t, x));
  }
}

}  // namespace

BENCHMARK(BM_ExplicitFlatten)->Arg(256)->Arg(4096)->Arg(65536);
BENCHMARK(BM_CompactSerialize)->Arg(256)->Arg(4096)->Arg(65536);
BENCHMARK(BM_ListPositioning)->Arg(256)->Arg(4096)->Arg(65536);
BENCHMARK(BM_FotfPositioning)->Arg(256)->Arg(4096)->Arg(65536);
BENCHMARK(BM_ListInverseSearch)->Arg(256)->Arg(4096)->Arg(65536);
BENCHMARK(BM_FotfInverseSearch)->Arg(256)->Arg(4096)->Arg(65536);

BENCHMARK_MAIN();
