// Ablation: where does the listless speedup come from?  Microbenchmarks
// (google-benchmark) isolating the copy path of both engines:
//   - flattening-on-the-fly pack (strided kernels + O(1) segment cursor)
//   - list-based pack (explicit ol-list, one memcpy per tuple)
//   - plain memcpy (upper bound)
// swept over the contiguous block size S_block — the microscopic version
// of the paper's Figure 7 crossover.
#include <benchmark/benchmark.h>

#include <cstring>

#include "dtype/flatten.hpp"
#include "fotf/pack.hpp"
#include "listio/list_mover.hpp"

namespace {

using namespace llio;

constexpr Off kPayload = 1 << 20;  // 1 MiB of data per iteration

dt::Type vector_type(Off sblock) {
  // One instance = payload bytes spread over blocks at 2x stride.
  const Off nblock = kPayload / sblock;
  return dt::hvector(nblock, sblock, 2 * sblock, dt::byte());
}

void BM_FotfPack(benchmark::State& state) {
  const Off sblock = state.range(0);
  const dt::Type t = vector_type(sblock);
  ByteVec src(to_size(t->true_ub()), Byte{7});
  ByteVec dst(to_size(kPayload));
  for (auto _ : state) {
    const Off n = fotf::ff_pack(src.data(), 1, t, 0, dst.data(), kPayload);
    benchmark::DoNotOptimize(n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kPayload);
}

void BM_ListPack(benchmark::State& state) {
  const Off sblock = state.range(0);
  const dt::Type t = vector_type(sblock);
  ByteVec src(to_size(t->true_ub()), Byte{7});
  ByteVec dst(to_size(kPayload));
  for (auto _ : state) {
    // Faithful to ROMIO: the memtype ol-list is rebuilt per access.
    listio::ListMover mover(src.data(), 1, t, nullptr);
    mover.to_stream(dst.data(), 0, kPayload);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kPayload);
}

void BM_Memcpy(benchmark::State& state) {
  ByteVec src(to_size(kPayload), Byte{7});
  ByteVec dst(to_size(kPayload));
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), to_size(kPayload));
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kPayload);
}

void BM_FotfUnpack(benchmark::State& state) {
  const Off sblock = state.range(0);
  const dt::Type t = vector_type(sblock);
  ByteVec dst(to_size(t->true_ub()), Byte{0});
  ByteVec src(to_size(kPayload), Byte{9});
  for (auto _ : state) {
    const Off n = fotf::ff_unpack(src.data(), kPayload, dst.data(), 1, t, 0);
    benchmark::DoNotOptimize(n);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kPayload);
}

void BM_ListUnpack(benchmark::State& state) {
  const Off sblock = state.range(0);
  const dt::Type t = vector_type(sblock);
  ByteVec dst(to_size(t->true_ub()), Byte{0});
  ByteVec src(to_size(kPayload), Byte{9});
  for (auto _ : state) {
    listio::ListMover mover(dst.data(), 1, t, nullptr);
    mover.from_stream(src.data(), 0, kPayload);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kPayload);
}

}  // namespace

BENCHMARK(BM_FotfPack)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_ListPack)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_FotfUnpack)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_ListUnpack)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_Memcpy);

BENCHMARK_MAIN();
