// Ablation: parallel flattening-on-the-fly pack/unpack.
//
// Sweeps threads x block-size x plan on/off over a dense strided window
// (hvector of S_block-byte segments at stride 2*S_block — the shape every
// collective window reduces to) and measures fotf::pack_range /
// fotf::unpack_range throughput directly, without any file or exchange:
// this isolates the pack stage the parallel-slicing work targets.
//
//   threads=1, plan=off   the pre-parallel cursor path (baseline)
//   threads=1, plan=on    PackPlan replay (flat run table, no tree walk)
//   threads=N             navigation-sliced parallel pack on the shared
//                         worker pool
//
// A dense memcpy row bounds what any pack path could reach.
//
// Output: aligned table + csv: lines (bench_common convention) + json:
// lines, one object per data point, schema announced in a json-schema:
// line.  --quick shrinks the payload and the sweep for the CI perf-smoke
// job; the committed baseline lives in BENCH_pack.json.
//
// Scale knobs: LLIO_BENCH_TARGET_KB (payload per op, default 32768),
// LLIO_BENCH_MIN_SECONDS (default 0.15).
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "fotf/parallel.hpp"
#include "fotf/plan.hpp"

using namespace llio;
using bench::fmt_mbps;

namespace {

double measure_mbps(const std::function<void()>& op, Off bytes_per_op,
                    double min_seconds) {
  op();  // warm-up
  int repeats = 1;
  {
    WallTimer t;
    op();
    const double once = t.seconds();
    repeats = once >= min_seconds
                  ? 1
                  : static_cast<int>(min_seconds / std::max(once, 1e-6)) + 1;
    repeats = std::min(repeats, 10000);
  }
  WallTimer t;
  for (int i = 0; i < repeats; ++i) op();
  const double total = t.seconds();
  return total > 0 ? static_cast<double>(bytes_per_op) * repeats / total /
                         (1024.0 * 1024.0)
                   : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--quick") quick = true;

  const Off payload =
      bench::env_off("LLIO_BENCH_TARGET_KB", quick ? 4096 : 32768) * 1024;
  const double min_seconds =
      bench::env_double("LLIO_BENCH_MIN_SECONDS", quick ? 0.05 : 0.15);

  const std::vector<Off> sblocks =
      quick ? std::vector<Off>{512, 4096, 65536}
            : std::vector<Off>{64, 512, 4096, 65536};
  const std::vector<int> threads = {1, 2, 4};

  bench::Table table({"sblock", "threads", "plan", "pack MB/s", "unpack MB/s",
                      "speedup vs 1t"});
  std::printf(
      "json-schema:{\"bench\":\"string\",\"sblock\":\"int\","
      "\"threads\":\"int\",\"plan\":\"string\",\"pack_mbps\":\"number\","
      "\"unpack_mbps\":\"number\",\"pack_speedup_vs_1t\":\"number\"}\n");
  std::string json;

  // Dense memcpy bound (same bytes, no gather).
  {
    ByteVec src(to_size(payload), Byte{0x5a});
    ByteVec dst(to_size(payload));
    const double mbps = measure_mbps(
        [&] { std::memcpy(dst.data(), src.data(), src.size()); }, payload,
        min_seconds);
    table.add_row({"-", "-", "memcpy", fmt_mbps(mbps), fmt_mbps(mbps), "-"});
    json += strprintf(
        "json:{\"bench\":\"ablation_pack\",\"sblock\":0,\"threads\":0,"
        "\"plan\":\"memcpy\",\"pack_mbps\":%.3f,\"unpack_mbps\":%.3f,"
        "\"pack_speedup_vs_1t\":1.0}\n",
        mbps, mbps);
  }

  for (const Off sblock : sblocks) {
    const Off nblock = payload / sblock;
    const dt::Type t = dt::hvector(nblock, sblock, 2 * sblock, dt::byte());
    ByteVec typed(to_size(t->extent()), Byte{0x42});
    ByteVec stream(to_size(payload));
    const auto plan_compiled = fotf::PackPlan::compile(t);

    for (const bool use_plan : {false, true}) {
      double mbps_1t = 0;
      for (const int nt : threads) {
        fotf::PackConfig cfg;
        cfg.threads = nt;
        cfg.parallel_min = Off{256} << 10;
        cfg.use_plan = use_plan;
        const fotf::PackPlan* plan = use_plan ? plan_compiled.get() : nullptr;
        const double pack_mbps = measure_mbps(
            [&] {
              fotf::pack_range(t, 1, typed.data(), 0, 0, stream.data(),
                               payload, cfg, plan);
            },
            payload, min_seconds);
        const double unpack_mbps = measure_mbps(
            [&] {
              fotf::unpack_range(t, 1, typed.data(), 0, 0, stream.data(),
                                 payload, cfg, plan);
            },
            payload, min_seconds);
        if (nt == 1) mbps_1t = pack_mbps;
        const double speedup = mbps_1t > 0 ? pack_mbps / mbps_1t : 0.0;
        table.add_row({strprintf("%lld", (long long)sblock),
                       strprintf("%d", nt), use_plan ? "on" : "off",
                       fmt_mbps(pack_mbps), fmt_mbps(unpack_mbps),
                       strprintf("%.2f", speedup)});
        json += strprintf(
            "json:{\"bench\":\"ablation_pack\",\"sblock\":%lld,"
            "\"threads\":%d,\"plan\":\"%s\",\"pack_mbps\":%.3f,"
            "\"unpack_mbps\":%.3f,\"pack_speedup_vs_1t\":%.3f}\n",
            (long long)sblock, nt, use_plan ? "on" : "off", pack_mbps,
            unpack_mbps, speedup);
      }
    }
  }

  table.print(strprintf("ablation: parallel fotf pack (payload %lld KiB%s)",
                        (long long)(payload / 1024), quick ? ", quick" : ""));
  std::printf("%s", json.c_str());
  return 0;
}
