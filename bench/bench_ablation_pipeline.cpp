// Ablation: pipelined two-phase collective I/O (double-buffered windows).
//
// The serial IOP window loop alternates data movement (gather/scatter)
// with the file access for each file-domain window; pipeline_depth > 0
// moves the pread/pwrite onto an I/O worker so window k+1's file access
// runs while window k's data movement proceeds.  On storage with internal
// parallelism (ThrottledFile, non-exclusive device), in-flight windows
// also overlap each other, approaching depth-fold storage throughput.
// This is the paper's buffer-size discussion (§4.2) turned into a
// latency-hiding knob: smaller windows mean more pipeline stages.
//
// Output: aligned table + csv: lines (bench_common convention) + json:
// lines, one object per data point, schema announced in a json-schema:
// line.
#include "bench_common.hpp"
#include "obs/snapshot.hpp"
#include "pfs/throttled_file.hpp"

using namespace llio;
using namespace llio::bench;

namespace {

constexpr Off kSblock = 1024;
constexpr Off kFbs = 64 << 10;  // window size (file_buffer_size)

struct Point {
  double seconds = 0;    // per op, max across ranks
  Off bytes_pp = 0;      // payload bytes per process per op
  double overlap_s = 0;  // per op, summed over ranks
  double io_wait_s = 0;

  double mbps_pp() const {
    return seconds > 0
               ? static_cast<double>(bytes_pp) / seconds / (1024.0 * 1024.0)
               : 0.0;
  }
};

// With llio_trace=off every probe must cost one relaxed atomic load plus
// a branch -- nanoseconds -- so the instrumented hot paths stay within 1%
// of their uninstrumented cost.  A blowup here means the disabled gate
// grew a lock, an allocation, or a system call.
double measure_probe_ns() {
  obs::Tracer::instance().set_level(obs::TraceLevel::Off);
  constexpr int kIters = 2'000'000;
  unsigned sink = 0;
  WallTimer t;
  for (int i = 0; i < kIters; ++i) {
    obs::Span s("probe_overhead");
    sink += s.active() ? 1u : 0u;
    // Memory clobber: keep the compiler from hoisting the atomic level
    // load out of the loop and eliding the whole probe.
    asm volatile("" : "+r"(sink)::"memory");
  }
  const double ns = t.seconds() * 1e9 / kIters;
  if (sink != 0) std::abort();  // Off means no span may ever be active.
  return ns;
}

// With sampling *on* (its default) and tracing off, recording one
// OpSample must stay in the hundreds-of-nanoseconds range: a fetch_add,
// a CAS, and ~10 relaxed stores, never a lock or an allocation.  The
// sampler records once per MPI-IO operation (not per window), and the
// cheapest op above is hundreds of microseconds, so a 1000 ns budget
// bounds the always-on overhead under 1% with two orders of margin.
double measure_sample_ns() {
  obs::Tracer::instance().set_level(obs::TraceLevel::Off);
  obs::Sampler& sampler = obs::Sampler::instance();
  sampler.set_enabled(true);
  sampler.reset();
  const std::uint32_t op = sampler.intern("sample_overhead");
  constexpr int kIters = 2'000'000;
  WallTimer t;
  for (int i = 0; i < kIters; ++i) {
    obs::OpSample s;
    s.rank = 0;
    s.op = op;
    s.bytes = i;
    s.dur_ns = i;
    sampler.record(s);
  }
  const double ns = t.seconds() * 1e9 / kIters;
  // Every record must be accounted produced (drops only happen with
  // concurrent writers); a miscount means the ring protocol broke.
  if (sampler.snapshot().produced != std::uint64_t{kIters}) std::abort();
  sampler.reset();
  return ns;
}

Point run_point(bool write, int windows_per_iop, int depth) {
  const int P = 2;
  // Each IOP's file domain is nblock*sblock bytes: nblock = 64*W gives
  // exactly W windows of kFbs per IOP.
  const Off nblock = Off{windows_per_iop} * (kFbs / kSblock);
  const Off nbytes = nblock * kSblock;  // stream bytes per rank per op

  auto inner = pfs::MemFile::create();
  pfs::ThrottleConfig cfg;
  cfg.read_bandwidth_bps = 512e6;
  cfg.write_bandwidth_bps = 512e6;
  cfg.op_latency_s = 50e-6;
  auto fs = pfs::ThrottledFile::wrap(inner, cfg);
  if (!write) inner->resize(Off{P} * nbytes + 64);

  const double min_seconds = env_double("LLIO_BENCH_MIN_SECONDS", 0.12);

  std::atomic<long> time_ns{0};
  std::atomic<long> overlap_ns{0}, wait_ns{0};

  sim::Runtime::run(P, [&](sim::Comm& comm) {
    mpiio::Options o;
    o.method = mpiio::Method::Listless;
    o.file_buffer_size = kFbs;
    o.pipeline_depth = depth;
    mpiio::File f = mpiio::File::open(comm, fs, o);
    f.set_view(0, dt::byte(),
               noncontig_filetype(nblock, kSblock, P, comm.rank()));
    ByteVec buf(to_size(nbytes), Byte{0x42});
    auto one_op = [&] {
      if (write)
        f.write_at_all(0, buf.data(), nbytes, dt::byte());
      else
        f.read_at_all(0, buf.data(), nbytes, dt::byte());
    };

    one_op();  // warm-up (sizes the file)
    comm.barrier();

    int repeats = 1;
    {
      WallTimer t;
      one_op();
      comm.barrier();
      const double once = t.seconds();
      repeats = once >= min_seconds
                    ? 1
                    : static_cast<int>(min_seconds / std::max(once, 1e-6)) + 1;
      repeats = std::min(repeats, 10000);
    }
    repeats = static_cast<int>(comm.allreduce_max(repeats));

    comm.barrier();
    WallTimer t;
    for (int i = 0; i < repeats; ++i) one_op();
    comm.barrier();
    const double total = t.seconds();

    if (comm.rank() == 0)
      time_ns.store(static_cast<long>(total / repeats * 1e9));
    // Per-op pipeline stats from the last op (representative: every op
    // runs the identical window schedule).
    overlap_ns.fetch_add(static_cast<long>(f.last_stats().overlap_s * 1e9));
    wait_ns.fetch_add(static_cast<long>(f.last_stats().io_wait_s * 1e9));
  });

  Point p;
  p.seconds = static_cast<double>(time_ns.load()) / 1e9;
  p.bytes_pp = nbytes;
  p.overlap_s = static_cast<double>(overlap_ns.load()) / 1e9;
  p.io_wait_s = static_cast<double>(wait_ns.load()) / 1e9;
  return p;
}

}  // namespace

int main() {
  std::printf(
      "ablation: pipelined two-phase windows (listless, P=2, 64 KiB "
      "windows, 1 KiB blocks, throttled storage 512 MB/s + 50 us)\n");
  Table table({"op", "win/IOP", "depth", "MB/s/proc", "speedup",
               "overlap [ms]", "io wait [ms]"});
  std::printf("json-schema:{\"bench\":\"string\",\"op\":\"string\","
              "\"windows_per_iop\":\"int\",\"depth\":\"int\","
              "\"mbps_pp\":\"number\",\"speedup_vs_serial\":\"number\","
              "\"overlap_s\":\"number\",\"io_wait_s\":\"number\"}\n");
  std::string json;
  for (bool write : {true, false}) {
    for (int windows : {1, 2, 4, 8}) {
      double base = 0;
      for (int depth : {0, 2, 4}) {
        const Point p = run_point(write, windows, depth);
        if (depth == 0) base = p.mbps_pp();
        const double speedup = base > 0 ? p.mbps_pp() / base : 0.0;
        table.add_row({write ? "write" : "read", strprintf("%d", windows),
                       strprintf("%d", depth), fmt_mbps(p.mbps_pp()),
                       strprintf("%.2fx", speedup),
                       strprintf("%.2f", p.overlap_s * 1e3),
                       strprintf("%.2f", p.io_wait_s * 1e3)});
        json += strprintf(
            "json:{\"bench\":\"ablation_pipeline\",\"op\":\"%s\","
            "\"windows_per_iop\":%d,\"depth\":%d,\"mbps_pp\":%.3f,"
            "\"speedup_vs_serial\":%.3f,\"overlap_s\":%.6f,"
            "\"io_wait_s\":%.6f}\n",
            write ? "write" : "read", windows, depth, p.mbps_pp(), speedup,
            p.overlap_s, p.io_wait_s);
      }
    }
  }
  table.print("pipelined window loop vs serial (higher MB/s is better)");
  // Disabled-probe overhead guard.  ~1-2 ns is typical; the 250 ns budget
  // only trips on a structural regression, not scheduler noise.  At the
  // observed span density (tens of probes per window) that bounds the
  // llio_trace=off overhead well under 1% of any measured op above.
  const double probe_ns = measure_probe_ns();
  std::printf("trace-off probe cost: %.1f ns/span (budget 250 ns)\n",
              probe_ns);
  json += strprintf(
      "json:{\"bench\":\"ablation_pipeline\",\"probe_ns\":%.2f}\n", probe_ns);
  // Always-on sampling guard (see measure_sample_ns).
  const double sample_ns = measure_sample_ns();
  std::printf("sampling-on record cost: %.1f ns/op (budget 1000 ns)\n",
              sample_ns);
  json += strprintf(
      "json:{\"bench\":\"ablation_pipeline\",\"sample_ns\":%.2f}\n",
      sample_ns);
  std::printf("%s", json.c_str());
  if (probe_ns > 250.0) {
    std::fprintf(stderr,
                 "FAIL: disabled trace probe costs %.1f ns/span (> 250)\n",
                 probe_ns);
    return 1;
  }
  if (sample_ns > 1000.0) {
    std::fprintf(stderr,
                 "FAIL: sampling-on record costs %.1f ns/op (> 1000)\n",
                 sample_ns);
    return 1;
  }
  return 0;
}
