// Ablation: request classes against the parallel file-server pool.
//
// A Fig. 6-style collective point (P=4, Nblock=256, Sblock=8B, nc-nc
// write) is replayed over the psrv subsystem under three strategies:
//   two-phase+contig  collective buffering on; aggregators write dense
//                     file-domain windows as plain contig round trips
//                     (the classic two-phase answer: pay the client-side
//                     exchange, keep the servers dumb),
//   client-list       independent writes, sieving off; the client ships
//                     one ol-list message per server (PVFS list I/O),
//   server-view       independent writes over the View request class;
//                     the engine ships the serialized filetype tree once
//                     (fileview caching, §3.2.3) plus dense stream data
//                     — "listless I/O over the wire".
// Each strategy runs under the named interconnect models fast/mid/slow
// (sim::standard_cost_models), applied to BOTH the client world and the
// client<->server wire.  Reported: per-process bandwidth plus wire
// traffic per collective op, split into data and metadata.  Expected
// shape: on fast wires two-phase's extra copy hurts and server-side
// translation wins; as the wire slows, bytes-on-the-wire dominate and
// server-view's metadata edge over client-list (a compact tree instead
// of per-extent ol-lists) widens into the bandwidth lead.
#include "bench_common.hpp"
#include "psrv/server_file.hpp"

using namespace llio;
using namespace llio::bench;

namespace {

struct Strategy {
  const char* name;
  psrv::RequestClass cls;
  bool collective;
  bool sieve_off;
};

}  // namespace

int main() {
  const Off target = env_off("LLIO_BENCH_TARGET_KB", 128) * 1024;
  const double min_s = env_double("LLIO_BENCH_MIN_SECONDS", 0.1);
  const int nprocs = 4;
  const Strategy strategies[] = {
      {"two-phase+contig", psrv::RequestClass::Contig, true, false},
      {"client-list", psrv::RequestClass::List, false, true},
      {"server-view", psrv::RequestClass::View, false, true},
  };
  std::printf(
      "ablation: nc-nc write, Sblock=8B, Nblock=256, P=%d over a "
      "4-server psrv pool, request class x interconnect\n",
      nprocs);
  Table table({"network", "strategy", "MB/s/proc", "wire KB/op",
               "data KB/op", "meta KB/op", "msgs/op"});
  std::printf(
      "json-schema:{\"bench\":\"string\",\"net\":\"string\","
      "\"strategy\":\"string\",\"request_class\":\"string\","
      "\"collective\":\"bool\",\"mbps_pp\":\"number\","
      "\"wire_bytes_per_op\":\"int\",\"data_bytes_per_op\":\"int\","
      "\"meta_bytes_per_op\":\"int\",\"msgs_per_op\":\"number\","
      "\"repeats\":\"int\"}\n");
  std::string json;
  for (const auto& net : sim::standard_cost_models()) {
    if (net.first == "shared-mem") continue;  // free wire: nothing to rank
    for (const Strategy& s : strategies) {
      psrv::PoolConfig pc;
      pc.nservers = 4;
      pc.net = net.second;
      auto pool = psrv::ServerPool::create(std::move(pc));

      NoncontigConfig cfg;
      cfg.method = mpiio::Method::Listless;
      cfg.nprocs = nprocs;
      cfg.nblock = 256;
      cfg.sblock = 8;
      cfg.collective = s.collective;
      cfg.write = true;
      cfg.target_bytes_pp = target;
      cfg.min_seconds = min_s;
      cfg.net = net.second;
      if (s.sieve_off) {
        cfg.hints.set("romio_ds_write", "disable");
        cfg.hints.set("romio_ds_read", "disable");
      }
      cfg.make_backend = [&] {
        return psrv::ServerFile::create(pool, s.cls);
      };

      const BenchPoint p = run_noncontig(cfg);
      // Every op in the run (1 warm-up + 1 calibration + repeats) hits
      // the pool identically, so per-op wire cost is the plain average.
      const sim::CommStats wire = pool->wire_stats();
      const auto ops = static_cast<std::uint64_t>(p.repeats) + 2;
      const auto data_op = wire.data_bytes_sent / ops;
      const auto meta_op = wire.meta_bytes_sent / ops;
      table.add_row(
          {net.first, s.name, fmt_mbps(p.mbps_pp()),
           strprintf("%.1f", static_cast<double>(data_op + meta_op) / 1024),
           strprintf("%.1f", static_cast<double>(data_op) / 1024),
           strprintf("%.1f", static_cast<double>(meta_op) / 1024),
           strprintf("%.1f", static_cast<double>(wire.msgs_sent) /
                                 static_cast<double>(ops))});
      json += strprintf(
          "json:{\"bench\":\"ablation_servers\",\"net\":\"%s\","
          "\"strategy\":\"%s\",\"request_class\":\"%s\","
          "\"collective\":%s,\"mbps_pp\":%.3f,"
          "\"wire_bytes_per_op\":%llu,\"data_bytes_per_op\":%llu,"
          "\"meta_bytes_per_op\":%llu,\"msgs_per_op\":%.1f,"
          "\"repeats\":%d}\n",
          net.first.c_str(), s.name, psrv::request_class_name(s.cls),
          s.collective ? "true" : "false", p.mbps_pp(),
          static_cast<unsigned long long>(data_op + meta_op),
          static_cast<unsigned long long>(data_op),
          static_cast<unsigned long long>(meta_op),
          static_cast<double>(wire.msgs_sent) / static_cast<double>(ops),
          p.repeats);
    }
  }
  table.print(
      "request class vs interconnect over the file-server pool "
      "[per-process bandwidth; wire traffic per collective op]");
  std::printf("%s", json.c_str());
  return 0;
}
