// Ablation for the paper's §5 open question: data sieving vs multiple
// direct file accesses for independent non-contiguous I/O.
//
// Sweeps the view's fill ratio (payload bytes / spanned bytes) and
// measures both strategies on both engines, on a RAM-backed file and on a
// throttled file with per-operation latency (where the many small direct
// accesses hurt).  The crossover justifies the `llio_sieve_min_fill`
// automatic heuristic.
#include "bench_common.hpp"
#include "pfs/throttled_file.hpp"

using namespace llio;
using namespace llio::bench;

namespace {

double measure(mpiio::Method method, mpiio::Sieving mode, Off gap_factor,
               bool throttled) {
  const Off sblock = 64;
  const Off nblock = 128;
  const Off unit = nblock * sblock;
  const Off instances = std::max<Off>(1, (512 * 1024) / unit);
  const Off nbytes = instances * unit;

  pfs::FilePtr fs = pfs::MemFile::create();
  if (throttled) {
    pfs::ThrottleConfig cfg;
    cfg.read_bandwidth_bps = 2e9;
    cfg.write_bandwidth_bps = 2e9;
    cfg.op_latency_s = 20e-6;  // disk-ish per-op cost
    fs = pfs::ThrottledFile::wrap(fs, cfg);
  }

  double seconds = 0;
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    mpiio::Options o;
    o.method = method;
    o.ds_write = mode;
    mpiio::File f = mpiio::File::open(comm, fs, o);
    const dt::Type ft = dt::resized(
        dt::hvector(nblock, sblock, gap_factor * sblock, dt::byte()), 0,
        nblock * gap_factor * sblock);
    f.set_view(0, dt::byte(), ft);
    ByteVec buf(to_size(nbytes), Byte{0x3C});
    // Warm-up, then time enough repetitions.
    f.write_at(0, buf.data(), nbytes, dt::byte());
    int reps = 1;
    {
      WallTimer t;
      f.write_at(0, buf.data(), nbytes, dt::byte());
      const double once = t.seconds();
      reps = once >= 0.1 ? 1 : static_cast<int>(0.1 / std::max(once, 1e-6)) + 1;
    }
    WallTimer t;
    for (int i = 0; i < reps; ++i)
      f.write_at(0, buf.data(), nbytes, dt::byte());
    seconds = t.seconds() / reps;
  });
  return static_cast<double>(nbytes) / seconds / (1024.0 * 1024.0);
}

void sweep(bool throttled) {
  Table table({"fill", "list sieve", "list direct", "listless sieve",
               "listless direct"});
  for (Off gap : {1, 2, 4, 16, 64}) {
    std::vector<std::string> row{strprintf("1/%lld", (long long)gap)};
    for (mpiio::Method m :
         {mpiio::Method::ListBased, mpiio::Method::Listless}) {
      row.push_back(
          fmt_mbps(measure(m, mpiio::Sieving::Always, gap, throttled)));
      row.push_back(
          fmt_mbps(measure(m, mpiio::Sieving::Never, gap, throttled)));
    }
    table.add_row(std::move(row));
  }
  table.print(std::string("sieving vs direct, independent write, "
                          "Sblock=64B, ") +
              (throttled ? "throttled storage (2 GB/s, 20us/op)"
                         : "RAM storage") +
              " [MB/s per process]");
}

}  // namespace

int main() {
  std::printf("ablation: data sieving vs direct access (paper §5 trade-off)\n");
  sweep(/*throttled=*/false);
  sweep(/*throttled=*/true);
  return 0;
}
