// Ablation: accumulated bandwidth under storage striping.
//
// Paper §4.1 (Fig. 8 discussion): "accessing a file system in parallel
// may increase the accumulated bandwidth if the file system is using a
// storage system with a suitable striping configuration".  We run the
// collective noncontig write over (a) one throttled device and (b) a
// StripedFile over D throttled devices; with per-device bandwidth caps,
// the striped configuration lets concurrent IOP domains proceed in
// parallel and the accumulated bandwidth scales until the devices or the
// CPU saturate.
#include "bench_common.hpp"
#include "pfs/striped_file.hpp"
#include "pfs/throttled_file.hpp"

using namespace llio;
using namespace llio::bench;

namespace {

double measure(int nprocs, int ndevices) {
  const Off nblock = 64, sblock = 2048;
  const Off unit = nblock * sblock;
  const Off instances = 8;
  const Off nbytes = instances * unit;

  pfs::ThrottleConfig cfg;
  cfg.write_bandwidth_bps = 400e6;  // per-device cap
  cfg.read_bandwidth_bps = 400e6;
  cfg.exclusive_device = true;  // a device channel saturates as a whole

  pfs::FilePtr fs;
  if (ndevices <= 1) {
    fs = pfs::ThrottledFile::wrap(pfs::MemFile::create(), cfg);
  } else {
    std::vector<pfs::FilePtr> devs;
    for (int d = 0; d < ndevices; ++d)
      devs.push_back(pfs::ThrottledFile::wrap(pfs::MemFile::create(), cfg));
    fs = pfs::StripedFile::create(std::move(devs), 1 << 20);
  }

  double seconds = 0;
  sim::Runtime::run(nprocs, [&](sim::Comm& comm) {
    mpiio::Options o;
    o.file_buffer_size = 1 << 20;
    mpiio::File f = mpiio::File::open(comm, fs, o);
    f.set_view(0, dt::byte(),
               noncontig_filetype(nblock, sblock, nprocs, comm.rank()));
    ByteVec buf(to_size(nbytes), Byte{0x11});
    f.write_at_all(0, buf.data(), nbytes, dt::byte());  // warm-up
    comm.barrier();
    WallTimer t;
    f.write_at_all(0, buf.data(), nbytes, dt::byte());
    comm.barrier();
    if (comm.rank() == 0) seconds = t.seconds();
  });
  return static_cast<double>(nbytes) * nprocs / seconds / (1024.0 * 1024.0);
}

}  // namespace

int main() {
  std::printf("ablation: accumulated collective write bandwidth vs storage "
              "striping (400 MB/s per device)\n");
  Table table({"P", "1 device [MB/s]", "P devices striped [MB/s]",
               "speedup"});
  for (int p : {1, 2, 4}) {
    const double one = measure(p, 1);
    const double striped = measure(p, p);
    table.add_row({std::to_string(p), fmt_mbps(one), fmt_mbps(striped),
                   strprintf("%.1f", striped / std::max(one, 1e-9))});
  }
  table.print("accumulated bandwidth (all ranks combined)");
  return 0;
}
