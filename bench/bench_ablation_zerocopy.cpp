// Ablation: zero-copy descriptor I/O (llio_zerocopy).
//
// When a collective window is dense and the memtype's run table fits the
// budget, the engines hand PackPlan-derived iovecs over user memory
// straight to FileBackend::pwritev instead of staging the window through
// the pack buffer — the pack -> wire -> storage pipeline loses its one
// remaining memcpy.  Two workloads bound the effect:
//
//   dense - per-rank contiguous disjoint file extents with a noncontig
//           memtype (64 KiB memory runs): the mergeview bypass triggers
//           and auto replaces the staged pack+pwrite with one pwritev of
//           user-memory runs per window.
//   holey - the paper's interleaved noncontig fileview (dense memtype):
//           windows have per-rank gaps, so the two-phase exchange stays;
//           auto gathers payloads onto the wire from user memory
//           (send_gather) but storage-side staging still happens on the
//           IOPs.  This bounds the cost of the descriptor analysis and
//           documents the crossover: zero-copy pays on dense windows,
//           roughly breaks even on holey ones.
//
// Backends: plain MemFile (pure memcpy savings), a throttled device
// (512 MB/s + 50 us: storage time dominates, savings shrink), and the
// psrv file-server pool (wire gather replaces request staging).
//
// Output: aligned table + json: lines (schema in a json-schema: line),
// gated in CI by tools/check_zerocopy.py.  --quick shrinks the payload
// for the CI perf-smoke job.
#include "bench_common.hpp"
#include "pfs/throttled_file.hpp"

using namespace llio;
using namespace llio::bench;

namespace {

constexpr int kProcs = 4;

struct Point {
  double seconds = 0;  // per op, max across ranks
  Off bytes_pp = 0;
  std::uint64_t zc_windows = 0;   // summed over ranks, last op
  std::uint64_t zc_fallback = 0;
  std::uint64_t iov_runs = 0;
  Off saved = 0;

  double mbps_pp() const {
    return seconds > 0
               ? static_cast<double>(bytes_pp) / seconds / (1024.0 * 1024.0)
               : 0.0;
  }
};

pfs::FilePtr make_point_backend(const std::string& backend) {
  if (backend == "mem") return pfs::MemFile::create();
  if (backend == "throttled") {
    pfs::ThrottleConfig cfg;
    cfg.read_bandwidth_bps = 512e6;
    cfg.write_bandwidth_bps = 512e6;
    cfg.op_latency_s = 50e-6;
    return pfs::ThrottledFile::wrap(pfs::MemFile::create(), cfg);
  }
  psrv::PoolConfig pc;
  pc.nservers = 4;
  return psrv::ServerFile::create(psrv::ServerPool::create(std::move(pc)),
                                  psrv::RequestClass::List);
}

Point run_point(const std::string& workload, const std::string& backend,
                mpiio::Zerocopy zc, Off nblock, Off sblock,
                double min_seconds) {
  auto fs = make_point_backend(backend);
  const Off bytes_pp = nblock * sblock;

  std::atomic<long> time_ns{0};
  std::atomic<std::uint64_t> zc_windows{0}, zc_fallback{0}, iov_runs{0};
  std::atomic<Off> saved{0};

  sim::Runtime::run(kProcs, [&](sim::Comm& comm) {
    mpiio::Options o;
    o.method = mpiio::Method::Listless;
    o.zerocopy = zc;
    o.file_buffer_size = 256 << 10;
    mpiio::File f = mpiio::File::open(comm, fs, o);

    ByteVec storage;
    const void* buf = nullptr;
    Off count = 0;
    dt::Type mt;
    if (workload == "dense") {
      // Rank-contiguous file extents; strided user memory (the paper's
      // noncontig memtype): sblock-byte runs at 2x stride.
      f.set_view(Off{comm.rank()} * bytes_pp, dt::byte(), dt::byte());
      mt = noncontig_memtype(nblock, sblock);
      storage.assign(to_size(2 * bytes_pp), Byte{0x5A});
      buf = storage.data();
      count = 1;
    } else {
      // Interleaved noncontig fileview, dense memory.
      f.set_view(0, dt::byte(),
                 noncontig_filetype(nblock, sblock, kProcs, comm.rank()));
      mt = dt::byte();
      storage.assign(to_size(bytes_pp), Byte{0xA5});
      buf = storage.data();
      count = bytes_pp;
    }
    auto one_op = [&] { f.write_at_all(0, buf, count, mt); };

    one_op();  // warm-up (sizes the file, compiles plans, warms caches)
    comm.barrier();

    int repeats = 1;
    {
      WallTimer t;
      one_op();
      comm.barrier();
      const double once = t.seconds();
      repeats = once >= min_seconds
                    ? 1
                    : static_cast<int>(min_seconds / std::max(once, 1e-6)) + 1;
      repeats = std::min(repeats, 10000);
    }
    repeats = static_cast<int>(comm.allreduce_max(repeats));

    comm.barrier();
    WallTimer t;
    for (int i = 0; i < repeats; ++i) one_op();
    comm.barrier();
    const double total = t.seconds();

    if (comm.rank() == 0)
      time_ns.store(static_cast<long>(total / repeats * 1e9));
    zc_windows.fetch_add(f.last_stats().zerocopy_windows);
    zc_fallback.fetch_add(f.last_stats().staged_fallback_windows);
    iov_runs.fetch_add(f.last_stats().iov_runs);
    saved.fetch_add(f.last_stats().staging_bytes_saved);
  });

  Point p;
  p.seconds = static_cast<double>(time_ns.load()) / 1e9;
  p.bytes_pp = bytes_pp;
  p.zc_windows = zc_windows.load();
  p.zc_fallback = zc_fallback.load();
  p.iov_runs = iov_runs.load();
  p.saved = saved.load();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--quick") quick = true;

  const Off sblock = env_off("LLIO_BENCH_SBLOCK", 64 << 10);
  const Off nblock =
      env_off("LLIO_BENCH_NBLOCK", quick ? 16 : 64);
  const double min_seconds =
      env_double("LLIO_BENCH_MIN_SECONDS", quick ? 0.05 : 0.15);

  std::printf(
      "ablation: zero-copy descriptor I/O (listless, P=%d, %lld x %lld KiB "
      "runs = %lld MiB/proc/op%s)\n",
      kProcs, static_cast<long long>(nblock),
      static_cast<long long>(sblock >> 10),
      static_cast<long long>((nblock * sblock) >> 20), quick ? ", quick" : "");
  Table table({"backend", "workload", "zerocopy", "MB/s/proc", "speedup",
               "zc windows", "fallback", "iov runs", "saved [MiB]"});
  std::printf(
      "json-schema:{\"bench\":\"string\",\"backend\":\"string\","
      "\"workload\":\"string\",\"zerocopy\":\"string\",\"mbps_pp\":\"number\","
      "\"speedup_vs_staged\":\"number\",\"zerocopy_windows\":\"int\","
      "\"staged_fallback_windows\":\"int\",\"iov_runs\":\"int\","
      "\"staging_bytes_saved\":\"int\"}\n");
  std::string json;
  for (const char* backend : {"mem", "throttled", "psrv"}) {
    for (const char* workload : {"dense", "holey"}) {
      double base = 0;
      for (mpiio::Zerocopy zc :
           {mpiio::Zerocopy::Off, mpiio::Zerocopy::Auto}) {
        const Point p =
            run_point(workload, backend, zc, nblock, sblock, min_seconds);
        if (zc == mpiio::Zerocopy::Off) base = p.mbps_pp();
        const double speedup = base > 0 ? p.mbps_pp() / base : 0.0;
        const char* zname = mpiio::zerocopy_name(zc);
        table.add_row(
            {backend, workload, zname, fmt_mbps(p.mbps_pp()),
             strprintf("%.2fx", speedup),
             strprintf("%llu", static_cast<unsigned long long>(p.zc_windows)),
             strprintf("%llu", static_cast<unsigned long long>(p.zc_fallback)),
             strprintf("%llu", static_cast<unsigned long long>(p.iov_runs)),
             strprintf("%.1f", static_cast<double>(p.saved) / (1 << 20))});
        json += strprintf(
            "json:{\"bench\":\"ablation_zerocopy\",\"backend\":\"%s\","
            "\"workload\":\"%s\",\"zerocopy\":\"%s\",\"mbps_pp\":%.3f,"
            "\"speedup_vs_staged\":%.3f,\"zerocopy_windows\":%llu,"
            "\"staged_fallback_windows\":%llu,\"iov_runs\":%llu,"
            "\"staging_bytes_saved\":%lld}\n",
            backend, workload, zname, p.mbps_pp(), speedup,
            static_cast<unsigned long long>(p.zc_windows),
            static_cast<unsigned long long>(p.zc_fallback),
            static_cast<unsigned long long>(p.iov_runs),
            static_cast<long long>(p.saved));
      }
    }
  }
  table.print(
      "dense windows skip the staging memcpy via user-memory iovecs "
      "(higher MB/s is better)");
  std::printf("%s", json.c_str());
  return 0;
}
