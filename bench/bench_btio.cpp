// BTIO application-kernel reproduction (paper §4.2, Tables 1-3).
//
// Reproduces, per problem class and process count:
//   Table 1 - data volume per dump step (D_step) and per run (D_run),
//   Table 2 - access-pattern characterization (N_block, S_block),
//   Table 3 - I/O time and effective bandwidth for list-based vs
//             listless I/O, and their ratio r_io.
//
// Substitutions versus the paper (documented in DESIGN.md):
//  * The BT solver itself is replaced by a small synthetic compute sweep;
//    the paper's t_no-io column is therefore labelled "synthetic".
//  * The default run uses classes A and B with N_step = 3 dump steps
//    (the paper: classes B and C, N_step = 40 on a 32-CPU SX-7).  Override
//    with LLIO_BTIO_CLASSES (e.g. "SWABC"), LLIO_BTIO_STEPS, and
//    LLIO_BTIO_PROCS (comma-separated, default "4,9,16,25").
#include <atomic>
#include <cstring>

#include "bench_common.hpp"
#include "btio/pattern.hpp"
#include "fotf/pack.hpp"

using namespace llio;
using namespace llio::bench;
using btio::Pattern;

namespace {

std::vector<int> parse_procs(const char* env, const char* fallback) {
  const char* s = std::getenv(env);
  if (s == nullptr || *s == '\0') s = fallback;
  std::vector<int> out;
  int cur = 0;
  bool have = false;
  for (const char* p = s;; ++p) {
    if (*p >= '0' && *p <= '9') {
      cur = cur * 10 + (*p - '0');
      have = true;
    } else {
      if (have) out.push_back(cur);
      cur = 0;
      have = false;
      if (*p == '\0') break;
    }
  }
  return out;
}

/// A cheap BT-like compute sweep: a few flops per interior point.  Stands
/// in for the solver so the harness can report an "I/O intensity" column;
/// it is NOT the NAS BT numerics.
double compute_sweep(std::vector<double>& buf, int iters) {
  WallTimer t;
  for (int it = 0; it < iters; ++it) {
    double acc = 1.0 + it;
    for (std::size_t i = 1; i + 1 < buf.size(); i += 1) {
      buf[i] = 0.25 * (buf[i - 1] + 2.0 * buf[i] + buf[i + 1]) + 1e-9 * acc;
    }
  }
  return t.seconds();
}

struct BtioResult {
  double io_seconds = 0;   ///< max across ranks, total over steps
  double compute_seconds = 0;
  bool verified = false;
};

BtioResult run_btio(char cls, int nprocs, int nsteps, mpiio::Method method) {
  const Off n = btio::class_grid_size(cls);
  auto fs = pfs::MemFile::create();
  std::atomic<long> io_ns{0};
  std::atomic<long> compute_ns{0};
  std::atomic<bool> ok{true};

  sim::Runtime::run(nprocs, [&](sim::Comm& comm) {
    const Pattern pat(n, nprocs, comm.rank(), /*ghost=*/2);
    mpiio::Options o;
    o.method = method;
    mpiio::File f = mpiio::File::open(comm, fs, o);
    f.set_view(0, dt::double_(), pat.filetype());

    std::vector<double> buf(to_size(pat.padded_doubles()));
    const Off step_etypes = pat.local_doubles();
    double io_s = 0, comp_s = 0;
    for (int s = 0; s < nsteps; ++s) {
      pat.fill(buf, s);
      comp_s += compute_sweep(buf, 1);
      pat.fill(buf, s);  // restore the exact field after the sweep
      comm.barrier();
      WallTimer t;
      f.write_at_all(s * step_etypes, buf.data(), 1, pat.memtype());
      io_s += t.seconds();
    }
    // BTIO-style verification: read the last step back and compare.
    std::vector<double> back(buf.size(), -1.0);
    f.read_at_all((nsteps - 1) * step_etypes, back.data(), 1, pat.memtype());
    std::vector<double> want(buf.size());
    pat.fill(want, nsteps - 1);
    // Compare interiors only (ghost points differ by construction).
    ByteVec a(to_size(pat.local_doubles() * 8));
    ByteVec b(a.size());
    fotf::ff_pack(back.data(), 1, pat.memtype(), 0, a.data(),
                  to_off(a.size()));
    fotf::ff_pack(want.data(), 1, pat.memtype(), 0, b.data(),
                  to_off(b.size()));
    if (a != b) ok = false;

    const Off max_io_ns = comm.allreduce_max(static_cast<Off>(io_s * 1e9));
    const Off max_comp_ns = comm.allreduce_max(static_cast<Off>(comp_s * 1e9));
    if (comm.rank() == 0) {
      io_ns.store(static_cast<long>(max_io_ns));
      compute_ns.store(static_cast<long>(max_comp_ns));
    }
  });

  BtioResult r;
  r.io_seconds = static_cast<double>(io_ns.load()) / 1e9;
  r.compute_seconds = static_cast<double>(compute_ns.load()) / 1e9;
  r.verified = ok.load();
  return r;
}

/// NAS BTIO access modes beyond "full" (collective MPI-IO):
///  * simple - MPI-IO without collective buffering: one independent
///             write per cell per step,
///  * epio   - embarrassingly parallel: each rank writes its own dense
///             file (no shared-file handling at all; the upper bound).
double run_btio_mode(char cls, int nprocs, int nsteps,
                     const std::string& mode) {
  const Off n = btio::class_grid_size(cls);
  std::atomic<long> io_ns{0};
  auto shared = pfs::MemFile::create();
  std::vector<pfs::FilePtr> own(to_size(Off{nprocs}));
  for (auto& f : own) f = pfs::MemFile::create();

  sim::Runtime::run(nprocs, [&](sim::Comm& comm) {
    const Pattern pat(n, nprocs, comm.rank(), /*ghost=*/2);
    mpiio::Options o;
    if (mode == "simple") o.cb_write = false;
    mpiio::File f = mpiio::File::open(
        comm, mode == "epio" ? own[to_size(Off{comm.rank()})] : shared, o);
    if (mode != "epio") f.set_view(0, dt::double_(), pat.filetype());
    std::vector<double> buf(to_size(pat.padded_doubles()));
    double io_s = 0;
    for (int s = 0; s < nsteps; ++s) {
      pat.fill(buf, s);
      comm.barrier();
      WallTimer t;
      if (mode == "epio") {
        // Dense per-rank file: pack via the memtype, default byte view.
        f.write_at(s * pat.local_doubles() * 8, buf.data(), 1, pat.memtype());
        comm.barrier();
      } else if (mode == "simple") {
        f.write_at_all(s * pat.local_doubles(), buf.data(), 1, pat.memtype());
      } else {
        f.write_at_all(s * pat.local_doubles(), buf.data(), 1, pat.memtype());
      }
      io_s += t.seconds();
    }
    const Off max_ns = comm.allreduce_max(static_cast<Off>(io_s * 1e9));
    if (comm.rank() == 0) io_ns.store(static_cast<long>(max_ns));
  });
  return static_cast<double>(io_ns.load()) / 1e9;
}

}  // namespace

int main() {
  // Default: classes W, A, B.  The paper ran B and C (40 steps, SX-7);
  // W's small cells (S_block ~200-500 B) expose the copy-path gain, B
  // matches the paper's primary class.  Class C works too
  // (LLIO_BTIO_CLASSES=C) but needs ~1 GiB and minutes of wall time.
  const char* classes = std::getenv("LLIO_BTIO_CLASSES");
  if (classes == nullptr || *classes == '\0') classes = "WAB";
  const int nsteps = static_cast<int>(env_off("LLIO_BTIO_STEPS", 3));
  const std::vector<int> procs = parse_procs("LLIO_BTIO_PROCS", "4,9,16,25");

  std::printf("BTIO benchmark (paper §4.2); classes=%s steps=%d\n", classes,
              nsteps);

  // ---- Table 1: data volumes -------------------------------------------
  {
    Table t({"Class", "Grid", "Dstep [MB]", "Drun(paper,40) [GB]",
             "Drun(this run) [MB]"});
    for (const char* c = classes; *c; ++c) {
      const Off n = btio::class_grid_size(*c);
      const double dstep = static_cast<double>(5 * n * n * n * 8);
      t.add_row({std::string(1, *c),
                 strprintf("%lldx%lldx%lld", (long long)n, (long long)n,
                           (long long)n),
                 strprintf("%.1f", dstep / 1e6),
                 strprintf("%.2f", dstep * 40 / 1e9),
                 strprintf("%.1f", dstep * nsteps / 1e6)});
    }
    t.print("Table 1: BTIO I/O data volume");
  }

  // ---- Table 2: access pattern -----------------------------------------
  {
    Table t({"Class", "P", "Nblock", "Sblock [B]"});
    for (const char* c = classes; *c; ++c) {
      for (int p : procs) {
        double nb = 0, sb = 0;
        for (int r = 0; r < p; ++r) {
          const Pattern pat(btio::class_grid_size(*c), p, r);
          nb += static_cast<double>(pat.nblock());
          sb += pat.avg_sblock_bytes();
        }
        t.add_row({std::string(1, *c), std::to_string(p),
                   strprintf("%.0f", nb / p), strprintf("%.0f", sb / p)});
      }
    }
    t.print("Table 2: BTIO non-contiguous access pattern (per-rank mean)");
  }

  // ---- Table 3: list-based vs listless ---------------------------------
  {
    Table t({"Class", "P", "t_compute(synth)", "dt_io_list", "dt_io_listless",
             "r_io", "B_list [MB/s]", "B_listless [MB/s]", "verified"});
    for (const char* c = classes; *c; ++c) {
      const Off n = btio::class_grid_size(*c);
      const double drun =
          static_cast<double>(5 * n * n * n * 8) * nsteps;
      for (int p : procs) {
        const BtioResult list = run_btio(*c, p, nsteps, mpiio::Method::ListBased);
        const BtioResult less = run_btio(*c, p, nsteps, mpiio::Method::Listless);
        t.add_row({std::string(1, *c), std::to_string(p),
                   strprintf("%.2f", list.compute_seconds),
                   strprintf("%.3f", list.io_seconds),
                   strprintf("%.3f", less.io_seconds),
                   strprintf("%.2f", list.io_seconds /
                                         std::max(less.io_seconds, 1e-9)),
                   strprintf("%.0f", drun / 1e6 /
                                         std::max(list.io_seconds, 1e-9)),
                   strprintf("%.0f", drun / 1e6 /
                                         std::max(less.io_seconds, 1e-9)),
                   (list.verified && less.verified) ? "yes" : "NO"});
      }
    }
    t.print("Table 3: BTIO I/O time and bandwidth, list-based vs listless "
            "(t in seconds; t_compute is a synthetic stand-in for BT)");
  }

  // ---- extra: NAS BTIO access modes (full / simple / epio) --------------
  {
    Table t({"Class", "P", "full(coll) [MB/s]", "simple(indep) [MB/s]",
             "epio(file-per-proc) [MB/s]"});
    const char cls = classes[0];
    const Off n = btio::class_grid_size(cls);
    const double drun = static_cast<double>(5 * n * n * n * 8) * nsteps;
    for (int p : procs) {
      const double full = run_btio_mode(cls, p, nsteps, "full");
      const double simple = run_btio_mode(cls, p, nsteps, "simple");
      const double epio = run_btio_mode(cls, p, nsteps, "epio");
      t.add_row({std::string(1, cls), std::to_string(p),
                 strprintf("%.0f", drun / 1e6 / std::max(full, 1e-9)),
                 strprintf("%.0f", drun / 1e6 / std::max(simple, 1e-9)),
                 strprintf("%.0f", drun / 1e6 / std::max(epio, 1e-9))});
    }
    t.print("NAS BTIO access modes (listless engine): collective two-phase "
            "vs independent vs file-per-process");
  }
  return 0;
}
