// Shared harness for the paper's `noncontig` synthetic benchmark (§4.1)
// and table rendering used by all figure/table reproductions.
//
// The workload matches the paper's Figure 4 setup: each of P processes
// accesses a shared file through a vector fileview (blocks of S_block
// bytes, stride P*S_block, displacement rank*S_block), writing and then
// reading back either a contiguous or an equally-shaped non-contiguous
// memory buffer.  Reported is the bandwidth per process B_pp.
//
// Runs are time-targeted: each data point repeats the operation until a
// minimum wall time is reached, so fast (listless) and slow (list-based)
// configurations are both measured meaningfully.  Scale knobs:
//   LLIO_BENCH_TARGET_KB   per-process payload per operation (default 1024)
//   LLIO_BENCH_MIN_SECONDS minimum measured seconds per point (default 0.15)
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "adapt/advisor.hpp"
#include "common/format.hpp"
#include "common/timer.hpp"
#include "dtype/datatype.hpp"
#include "mpiio/file.hpp"
#include "mpiio/info.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pfs/mem_file.hpp"
#include "pfs/posix_file.hpp"
#include "psrv/server_file.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/net_model.hpp"

namespace llio::bench {

inline Off env_off(const char* name, Off fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoll(v, nullptr, 10);
}

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtod(v, nullptr);
}

inline std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

/// Resolve a named storage target (hint llio_backend / env
/// LLIO_BENCH_BACKEND) so every bench can swap its backend with one flag:
///   "mem"          fresh pfs::MemFile (the default)
///   "posix:<dir>"  anonymous PosixFile scratch file in <dir> (unlinked
///                  at open, so aborted runs leave no litter), with
///                  queue depth / O_DIRECT taken from opts.posix_qd and
///                  opts.posix_direct
inline pfs::FilePtr make_named_backend(const std::string& target,
                                       const mpiio::Options& opts) {
  if (target.empty() || target == "mem") return pfs::MemFile::create();
  if (target.rfind("posix:", 0) == 0) {
    pfs::PosixConfig pc;
    pc.queue_depth = opts.posix_qd;
    pc.direct = opts.posix_direct;
    return pfs::PosixFile::open_temp(target.substr(6), pc);
  }
  throw_error(Errc::InvalidArgument,
              "unknown storage target '" + target +
                  "' (expected mem or posix:<dir>)");
}

/// The paper's Fig. 4 fileview for one rank.
inline dt::Type noncontig_filetype(Off nblock, Off sblock, int nprocs,
                                   int rank) {
  const dt::Type v =
      dt::hvector(nblock, sblock, Off{nprocs} * sblock, dt::byte());
  const Off bls[] = {1};
  const Off ds[] = {Off{rank} * sblock};
  return dt::resized(dt::hindexed(bls, ds, v), 0,
                     nblock * Off{nprocs} * sblock);
}

/// An equally-shaped non-contiguous memtype (stride 2x block, so the user
/// buffer is strided in memory like the paper's non-contiguous memtype).
inline dt::Type noncontig_memtype(Off nblock, Off sblock) {
  const dt::Type v = dt::hvector(nblock, sblock, 2 * sblock, dt::byte());
  return dt::resized(v, 0, 2 * nblock * sblock);
}

struct NoncontigConfig {
  mpiio::Method method = mpiio::Method::Listless;
  int nprocs = 2;
  Off nblock = 64;
  Off sblock = 8;
  bool nc_mem = true;
  bool nc_file = true;
  bool collective = false;
  bool write = true;
  Off target_bytes_pp = 1 << 20;
  double min_seconds = 0.15;
  sim::CommCostModel net;   ///< interconnect model (default: free)
  mpiio::Info hints;        ///< extra hints applied on top of the config

  /// Backend factory, called once per data point; default is a fresh
  /// pfs::MemFile.  Benches measuring networked backends (psrv) install
  /// their own and keep a handle on the pool for wire statistics.
  std::function<pfs::FilePtr()> make_backend;

  /// Mid-run condition flip (the adaptive-policy ablations): after
  /// `flip_at` measured repetitions — inside the timed loop, because the
  /// point is to measure how a policy copes — rank 0 swaps the client
  /// interconnect to `flip_net` (sim::named_cost_model) and/or runs
  /// `on_flip` with the backend, e.g. to retune a pfs::ThrottledFile or a
  /// psrv pool the bench kept a handle on.  flip_at <= 0 disables; with a
  /// flip the repeat count is floored at 2*flip_at so both regimes are
  /// actually measured.
  int flip_at = 0;
  std::string flip_net;
  std::function<void(pfs::FileBackend&)> on_flip;
};

struct BenchPoint {
  double seconds = 0;       ///< max across ranks, per repetition
  Off bytes_pp = 0;         ///< payload bytes per process per repetition
  int repeats = 1;
  Off list_bytes_sent = 0;  ///< per op, summed over ranks
  Off data_bytes_sent = 0;
  mpiio::IoOpStats op_stats;  ///< last op, folded (operator+=) over ranks

  /// File-op latency over the measured loop, all ranks pooled (needs
  /// llio_metrics=on so the backend is wrapped in a pfs::TracedFile;
  /// zero-count otherwise).
  obs::HistogramSummary pread_lat_us;
  obs::HistogramSummary pwrite_lat_us;

  /// Advisor totals from rank 0 (all ranks converge to the same state);
  /// zero / empty unless the run had llio_adaptive on.
  std::string adapt_policy;
  std::uint64_t adapt_decisions = 0;
  std::uint64_t adapt_probes = 0;
  std::uint64_t adapt_switches = 0;

  double mbps_pp() const {
    return seconds > 0
               ? static_cast<double>(bytes_pp) / seconds / (1024.0 * 1024.0)
               : 0.0;
  }

  /// Extra JSON fields (leading comma) with the latency quantiles, for
  /// splicing into a bench's json: line; empty when metrics were off.
  std::string latency_json() const {
    if (pread_lat_us.count == 0 && pwrite_lat_us.count == 0) return {};
    std::string out;
    if (pread_lat_us.count > 0)
      out += strprintf(
          ",\"pread_us_p50\":%.3f,\"pread_us_p95\":%.3f,"
          "\"pread_us_p99\":%.3f",
          pread_lat_us.p50, pread_lat_us.p95, pread_lat_us.p99);
    if (pwrite_lat_us.count > 0)
      out += strprintf(
          ",\"pwrite_us_p50\":%.3f,\"pwrite_us_p95\":%.3f,"
          "\"pwrite_us_p99\":%.3f",
          pwrite_lat_us.p50, pwrite_lat_us.p95, pwrite_lat_us.p99);
    return out;
  }
};

/// Run one noncontig data point.  Returns per-process bandwidth info.
inline BenchPoint run_noncontig(const NoncontigConfig& cfg) {
  const Off unit = cfg.nblock * cfg.sblock;  // stream bytes per instance
  const Off instances = std::max<Off>(1, cfg.target_bytes_pp / unit);
  const Off nbytes = instances * unit;

  std::atomic<long> time_ns{0};
  std::atomic<int> repeats_out{1};
  std::atomic<Off> list_bytes{0}, data_bytes{0};
  std::mutex stats_mu;
  mpiio::IoOpStats folded;
  std::string adapt_policy;
  std::uint64_t adapt_counts[3] = {0, 0, 0};  // decisions, probes, switches

  // The backend and the client interconnect are fixed before the world
  // is created, so the hints that select them (llio_psrv_*,
  // llio_net_model) are resolved here rather than per-rank.
  const mpiio::Options hint_opts =
      mpiio::apply_info(cfg.hints, mpiio::Options{});
  sim::CommCostModel net = cfg.net;
  if (!hint_opts.net_model.empty())
    net = sim::named_cost_model(hint_opts.net_model);

  const std::string backend_target =
      !hint_opts.backend.empty() ? hint_opts.backend
                                 : env_str("LLIO_BENCH_BACKEND", "");
  pfs::FilePtr fs;
  if (cfg.make_backend) {
    fs = cfg.make_backend();
  } else if (!backend_target.empty()) {
    fs = make_named_backend(backend_target, hint_opts);
  } else if (hint_opts.psrv_servers > 0) {
    psrv::PoolConfig pc;
    pc.net = net;  // same interconnect on the client/server wire
    fs = psrv::make_server_file(hint_opts, std::move(pc));
  } else {
    fs = pfs::MemFile::create();
  }
  if (!cfg.write) fs->resize(Off{cfg.nprocs} * nbytes + 64);

  sim::Runtime::run(cfg.nprocs, net, [&](sim::Comm& comm) {
    mpiio::Options o;
    o.method = cfg.method;
    o = mpiio::apply_info(cfg.hints, o);
    mpiio::File f = mpiio::File::open(comm, fs, o);
    if (cfg.nc_file) {
      f.set_view(0, dt::byte(),
                 noncontig_filetype(cfg.nblock, cfg.sblock, cfg.nprocs,
                                    comm.rank()));
    } else {
      f.set_view(comm.rank() * nbytes, dt::byte(), dt::byte());
    }

    const dt::Type mt =
        cfg.nc_mem ? noncontig_memtype(cfg.nblock, cfg.sblock) : dt::byte();
    const Off count = cfg.nc_mem ? instances : nbytes;
    ByteVec buf(to_size(cfg.nc_mem ? instances * mt->extent() : nbytes),
                Byte{0x42});

    auto one_op = [&] {
      if (cfg.write) {
        if (cfg.collective)
          f.write_at_all(0, buf.data(), count, mt);
        else
          f.write_at(0, buf.data(), count, mt);
      } else {
        if (cfg.collective)
          f.read_at_all(0, buf.data(), count, mt);
        else
          f.read_at(0, buf.data(), count, mt);
      }
    };

    // Warm-up (also sizes the file for read-after-write consistency).
    one_op();
    comm.barrier();

    // Calibrate the repeat count on rank 0's timing.
    int repeats = 1;
    {
      WallTimer t;
      one_op();
      comm.barrier();
      const double once = t.seconds();
      repeats = once >= cfg.min_seconds
                    ? 1
                    : static_cast<int>(cfg.min_seconds / std::max(once, 1e-6)) +
                          1;
      repeats = std::min(repeats, 10000);
    }
    repeats = static_cast<int>(comm.allreduce_max(repeats));
    if (cfg.flip_at > 0)
      repeats = std::min(std::max(repeats, 2 * cfg.flip_at), 10000);

    comm.barrier();
    if (comm.rank() == 0) {
      // Scope the trace and the metrics histograms to the measured loop:
      // warm-up and calibration ops would otherwise pollute both, and
      // obs::explain_pipeline() would stop reconciling with last_stats().
      // Every rank is parked at the barrier above, so nothing races this.
      if (obs::trace_enabled()) obs::Tracer::instance().clear();
      if (obs::metrics_enabled()) obs::Registry::instance().reset_values();
    }
    comm.barrier();
    WallTimer t;
    for (int i = 0; i < repeats; ++i) {
      if (cfg.flip_at > 0 && i == cfg.flip_at) {
        comm.barrier();  // no op is mid-flight while conditions change
        if (comm.rank() == 0) {
          if (!cfg.flip_net.empty())
            comm.set_cost_model(sim::named_cost_model(cfg.flip_net));
          if (cfg.on_flip) cfg.on_flip(*fs);
        }
        comm.barrier();
      }
      one_op();
    }
    comm.barrier();
    const double total = t.seconds();

    if (comm.rank() == 0) {
      time_ns.store(static_cast<long>(total / repeats * 1e9));
      repeats_out.store(repeats);
      if (f.advisor() != nullptr) {
        obs::JobReport ar;
        f.advisor()->report_into(ar);
        std::lock_guard<std::mutex> lk(stats_mu);
        adapt_policy = ar.adapt_policy;
        adapt_counts[0] = ar.adapt_decisions;
        adapt_counts[1] = ar.adapt_probes;
        adapt_counts[2] = ar.adapt_switches;
        // LLIO_BENCH_ADAPT_TRAIL=1: dump the decision trail to stderr
        // (diagnosing why an adaptive row won or lost a scenario).
        if (env_off("LLIO_BENCH_ADAPT_TRAIL", 0) != 0) {
          for (const auto& d : ar.adapt_trail)
            std::fprintf(
                stderr,
                "trail seq=%llu net=%s arm=%s%s%s cost=%.1f inc=%.1f\n",
                static_cast<unsigned long long>(d.seq),
                d.net < ar.adapt_dims.size() ? ar.adapt_dims[d.net].c_str()
                                             : "?",
                d.arm.c_str(), d.probe ? " probe" : "",
                d.switched ? " SWITCH" : "", d.cost_ns_per_byte,
                d.incumbent_ns_per_byte);
        }
      }
    }
    list_bytes.fetch_add(f.last_stats().list_bytes_sent);
    data_bytes.fetch_add(f.last_stats().data_bytes_sent);
    {
      std::lock_guard<std::mutex> lk(stats_mu);
      folded += f.last_stats();
    }
    // Job-level observability close (collective): aggregates every rank's
    // phases/histograms and writes the llio_report JSON when asked for.
    if (!f.options().report_path.empty()) f.close();
  });

  BenchPoint p;
  p.seconds = static_cast<double>(time_ns.load()) / 1e9;
  p.bytes_pp = nbytes;
  p.repeats = repeats_out.load();
  p.list_bytes_sent = list_bytes.load();
  p.data_bytes_sent = data_bytes.load();
  p.op_stats = folded;
  p.adapt_policy = adapt_policy;
  p.adapt_decisions = adapt_counts[0];
  p.adapt_probes = adapt_counts[1];
  p.adapt_switches = adapt_counts[2];
  if (obs::metrics_enabled()) {
    auto& reg = obs::Registry::instance();
    p.pread_lat_us = reg.histogram_summary("file.pread_us");
    p.pwrite_lat_us = reg.histogram_summary("file.pwrite_us");
  }
  return p;
}

// ---- table rendering ---------------------------------------------------

/// Prints an aligned table and a machine-readable CSV block.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(const std::string& title) const {
    std::printf("\n== %s ==\n", title.c_str());
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c)
      widths[c] = columns_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c)
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      std::printf("\n");
    };
    print_row(columns_);
    for (const auto& row : rows_) print_row(row);
    // CSV block for scripted consumption.
    std::printf("csv:");
    for (std::size_t c = 0; c < columns_.size(); ++c)
      std::printf("%s%s", c ? "," : "", columns_[c].c_str());
    std::printf("\n");
    for (const auto& row : rows_) {
      std::printf("csv:");
      for (std::size_t c = 0; c < row.size(); ++c)
        std::printf("%s%s", c ? "," : "", row[c].c_str());
      std::printf("\n");
    }
    std::fflush(stdout);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt_mbps(double v) {
  return v >= 100 ? strprintf("%.0f", v)
                  : (v >= 1 ? strprintf("%.1f", v) : strprintf("%.3f", v));
}

}  // namespace llio::bench
