// Figure 5 reproduction: bandwidth per process B_pp for independent
// write (left) and read (right) access as the vector length N_block
// scales, S_block = 8 bytes, P = 2 (noncontig benchmark).
//
// Expected shape (paper): list-based stays flat and low (< 10 MB/s for
// c-nc/nc-nc); listless is up to two orders of magnitude faster at small
// S_block; listless never loses.
#include "bench_common.hpp"

using namespace llio;
using namespace llio::bench;

namespace {

void run_side(bool write) {
  const Off target = env_off("LLIO_BENCH_TARGET_KB", 1024) * 1024;
  const double min_s = env_double("LLIO_BENCH_MIN_SECONDS", 0.15);
  Table table({"Nblock", "list nc-nc", "list nc-c", "list c-nc",
               "listless nc-nc", "listless nc-c", "listless c-nc"});
  for (Off nblock : {16, 64, 256, 1024, 4096, 16384}) {
    std::vector<std::string> row{std::to_string(nblock)};
    for (mpiio::Method m : {mpiio::Method::ListBased, mpiio::Method::Listless}) {
      for (auto [nc_mem, nc_file] :
           {std::pair{true, true}, {true, false}, {false, true}}) {
        NoncontigConfig cfg;
        cfg.method = m;
        cfg.nprocs = 2;
        cfg.nblock = nblock;
        cfg.sblock = 8;
        cfg.nc_mem = nc_mem;
        cfg.nc_file = nc_file;
        cfg.collective = false;
        cfg.write = write;
        cfg.target_bytes_pp = target;
        cfg.min_seconds = min_s;
        row.push_back(fmt_mbps(run_noncontig(cfg).mbps_pp()));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::string("Fig 5 (") + (write ? "left" : "right") +
              "): independent " + (write ? "write" : "read") +
              ", Sblock=8B, P=2, Bpp [MB/s]");
}

}  // namespace

int main() {
  std::printf("noncontig benchmark, Figure 5: I/O bandwidth vs vector "
              "length Nblock (independent access)\n");
  run_side(/*write=*/true);
  run_side(/*write=*/false);
  return 0;
}
