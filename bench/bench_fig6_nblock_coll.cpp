// Figure 6 reproduction: B_pp for collective write (left) and read
// (right) access as N_block scales; S_block = 8 bytes, P = 8.
//
// Expected shape (paper): list-based collective access on non-contiguous
// files stays below ~1 MB/s (dominated by the ol-list exchange); listless
// gains a factor of up to several hundred via fileview caching.
#include "bench_common.hpp"

using namespace llio;
using namespace llio::bench;

namespace {

void run_side(bool write) {
  const Off target = env_off("LLIO_BENCH_TARGET_KB", 512) * 1024;
  const double min_s = env_double("LLIO_BENCH_MIN_SECONDS", 0.15);
  Table table({"Nblock", "list nc-nc", "list nc-c", "list c-nc",
               "listless nc-nc", "listless nc-c", "listless c-nc",
               "list-olist-bytes/op"});
  for (Off nblock : {16, 64, 256, 1024, 4096, 16384}) {
    std::vector<std::string> row{std::to_string(nblock)};
    Off olist_bytes = 0;
    for (mpiio::Method m : {mpiio::Method::ListBased, mpiio::Method::Listless}) {
      for (auto [nc_mem, nc_file] :
           {std::pair{true, true}, {true, false}, {false, true}}) {
        NoncontigConfig cfg;
        cfg.method = m;
        cfg.nprocs = 8;
        cfg.nblock = nblock;
        cfg.sblock = 8;
        cfg.nc_mem = nc_mem;
        cfg.nc_file = nc_file;
        cfg.collective = true;
        cfg.write = write;
        cfg.target_bytes_pp = target;
        cfg.min_seconds = min_s;
        const BenchPoint p = run_noncontig(cfg);
        row.push_back(fmt_mbps(p.mbps_pp()));
        if (m == mpiio::Method::ListBased && nc_mem && nc_file)
          olist_bytes = p.list_bytes_sent;
      }
    }
    row.push_back(std::to_string(olist_bytes));
    table.add_row(std::move(row));
  }
  table.print(std::string("Fig 6 (") + (write ? "left" : "right") +
              "): collective " + (write ? "write" : "read") +
              ", Sblock=8B, P=8, Bpp [MB/s]");
}

}  // namespace

int main() {
  std::printf("noncontig benchmark, Figure 6: I/O bandwidth vs vector "
              "length Nblock (collective access)\n");
  run_side(/*write=*/true);
  run_side(/*write=*/false);
  return 0;
}
