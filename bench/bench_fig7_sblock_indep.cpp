// Figure 7 reproduction: B_pp for independent write (left) and read
// (right) access as the vector blocksize S_block scales from 4 B to
// 16 KiB; N_block = 8, P = 2.
//
// Expected shape (paper): the listless advantage shrinks as S_block
// grows (fewer, larger copies make the per-tuple baseline competitive);
// beyond ~1 KiB the engines converge; listless never performs worse.
#include "bench_common.hpp"

using namespace llio;
using namespace llio::bench;

namespace {

void run_side(bool write) {
  const Off target = env_off("LLIO_BENCH_TARGET_KB", 2048) * 1024;
  const double min_s = env_double("LLIO_BENCH_MIN_SECONDS", 0.15);
  Table table({"Sblock", "list nc-nc", "list nc-c", "list c-nc",
               "listless nc-nc", "listless nc-c", "listless c-nc"});
  for (Off sblock : {4, 16, 64, 256, 1024, 4096, 16384}) {
    std::vector<std::string> row{std::to_string(sblock)};
    for (mpiio::Method m : {mpiio::Method::ListBased, mpiio::Method::Listless}) {
      for (auto [nc_mem, nc_file] :
           {std::pair{true, true}, {true, false}, {false, true}}) {
        NoncontigConfig cfg;
        cfg.method = m;
        cfg.nprocs = 2;
        cfg.nblock = 8;
        cfg.sblock = sblock;
        cfg.nc_mem = nc_mem;
        cfg.nc_file = nc_file;
        cfg.collective = false;
        cfg.write = write;
        cfg.target_bytes_pp = target;
        cfg.min_seconds = min_s;
        row.push_back(fmt_mbps(run_noncontig(cfg).mbps_pp()));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::string("Fig 7 (") + (write ? "left" : "right") +
              "): independent " + (write ? "write" : "read") +
              ", Nblock=8, P=2, Bpp [MB/s]");
}

}  // namespace

int main() {
  std::printf("noncontig benchmark, Figure 7: I/O bandwidth vs vector "
              "blocksize Sblock (independent access)\n");
  run_side(/*write=*/true);
  run_side(/*write=*/false);
  return 0;
}
