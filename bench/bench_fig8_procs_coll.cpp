// Figure 8 reproduction: B_pp for collective write (left) and read
// (right) access as the process count P scales from 1 to 8;
// S_block = 2048 bytes, N_block = 64 (the paper uses 16 < N_block < 128).
//
// Expected shape (paper): the listless/list ratio is roughly constant in
// P; nc-c runs at parity (blocks are large); c-nc gains ~3-4x and nc-nc
// ~8-10x once P > 1 because the APs' extra list-based copies disappear.
#include "bench_common.hpp"

using namespace llio;
using namespace llio::bench;

namespace {

void run_side(bool write) {
  const Off target = env_off("LLIO_BENCH_TARGET_KB", 2048) * 1024;
  const double min_s = env_double("LLIO_BENCH_MIN_SECONDS", 0.15);
  Table table({"P", "list nc-nc", "list nc-c", "list c-nc",
               "listless nc-nc", "listless nc-c", "listless c-nc"});
  for (int p : {1, 2, 4, 6, 8}) {
    std::vector<std::string> row{std::to_string(p)};
    for (mpiio::Method m : {mpiio::Method::ListBased, mpiio::Method::Listless}) {
      for (auto [nc_mem, nc_file] :
           {std::pair{true, true}, {true, false}, {false, true}}) {
        NoncontigConfig cfg;
        cfg.method = m;
        cfg.nprocs = p;
        cfg.nblock = 64;
        cfg.sblock = 2048;
        cfg.nc_mem = nc_mem;
        cfg.nc_file = nc_file;
        cfg.collective = true;
        cfg.write = write;
        cfg.target_bytes_pp = target;
        cfg.min_seconds = min_s;
        row.push_back(fmt_mbps(run_noncontig(cfg).mbps_pp()));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::string("Fig 8 (") + (write ? "left" : "right") +
              "): collective " + (write ? "write" : "read") +
              ", Sblock=2048B, Nblock=64, Bpp [MB/s]");
}

}  // namespace

int main() {
  std::printf("noncontig benchmark, Figure 8: I/O bandwidth vs process "
              "count P (collective access)\n");
  run_side(/*write=*/true);
  run_side(/*write=*/false);
  return 0;
}
