// The `noncontig` benchmark as a configurable CLI (the paper describes it
// as "highly configurable"; the fig* binaries run its canned sweeps).
//
//   bench_noncontig_cli [options]
//     --method list|listless|both   (default both)
//     --nblock N      vector length             (default 256)
//     --sblock N      block size in bytes       (default 8)
//     --procs N       processes                 (default 2)
//     --target-kb N   payload per process, KiB  (default 1024)
//     --collective    use collective access     (default independent)
//     --combo X       nc-nc | nc-c | c-nc | c-c (default nc-nc)
//     --read          measure read (default: write and read)
//     --write
//     --hint K=V      MPI_Info hint applied to the open (repeatable),
//                     e.g. --hint romio_ds_write=disable
//     --flip-at N     after N measured repetitions, flip run conditions
//                     mid-loop (adaptive-policy experiments)
//     --flip-net M    interconnect model to flip to (named_cost_model:
//                     shared-mem|fast|mid|slow|<lat>:<bw>); needs --flip-at
//     --stats         print the per-op stats breakdown (format_stats)
//     --explain       trace the run (llio_trace=spans, llio_metrics=on,
//                     repeats pinned to 1 so the trace covers exactly the
//                     measured op) and print the pipeline timeline
//                     breakdown (obs::explain_pipeline) plus a
//                     reconciliation against the op stats and the
//                     critical-path attribution over the same trace
//     --report [P]    job-level observability report: enables spans +
//                     metrics like --explain and sets llio_report so
//                     File::close() writes the cross-rank JSON (schema
//                     llio_report/v1) to P (default report.json)
//
// Prints B_pp plus the overhead decomposition (ol-list bytes shipped,
// copy/exchange/file time shares).
#include <cstring>
#include <string>

#include "bench_common.hpp"
#include "obs/agg.hpp"
#include "obs/explain.hpp"

using namespace llio;
using namespace llio::bench;

namespace {

struct CliArgs {
  std::string method = "both";
  Off nblock = 256;
  Off sblock = 8;
  int procs = 2;
  Off target_kb = 1024;
  bool collective = false;
  std::string combo = "nc-nc";
  bool do_write = true;
  bool do_read = true;
  bool stats = false;
  bool explain = false;
  int flip_at = 0;
  std::string flip_net;
  std::string report_path;  ///< --report: write llio_report JSON here
  mpiio::Info hints;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: bench_noncontig_cli [--method list|listless|both] "
               "[--nblock N] [--sblock N] [--procs N] [--target-kb N] "
               "[--collective] [--combo nc-nc|nc-c|c-nc|c-c] "
               "[--read] [--write] [--hint K=V] [--stats] [--explain] "
               "[--flip-at N] [--flip-net model] [--report [path]]\n");
  std::exit(2);
}

CliArgs parse(int argc, char** argv) {
  CliArgs a;
  bool rw_explicit = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--method") a.method = next();
    else if (arg == "--nblock") a.nblock = std::atoll(next());
    else if (arg == "--sblock") a.sblock = std::atoll(next());
    else if (arg == "--procs") a.procs = std::atoi(next());
    else if (arg == "--target-kb") a.target_kb = std::atoll(next());
    else if (arg == "--collective") a.collective = true;
    else if (arg == "--combo") a.combo = next();
    else if (arg == "--hint") {
      const std::string kv = next();
      const auto eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) usage();
      a.hints.set(kv.substr(0, eq), kv.substr(eq + 1));
    }
    else if (arg == "--stats") a.stats = true;
    else if (arg == "--explain") a.explain = true;
    else if (arg == "--flip-at") a.flip_at = std::atoi(next());
    else if (arg == "--flip-net") a.flip_net = next();
    else if (arg == "--report") {
      // Optional path operand; a following option keeps the default.
      a.report_path = "report.json";
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
        a.report_path = argv[++i];
    }
    else if (arg == "--read") { if (!rw_explicit) a.do_write = false; a.do_read = true; rw_explicit = true; }
    else if (arg == "--write") { if (!rw_explicit) a.do_read = false; a.do_write = true; rw_explicit = true; }
    else usage();
  }
  if (a.nblock < 1 || a.sblock < 1 || a.procs < 1 || a.target_kb < 1) usage();
  if (a.combo != "nc-nc" && a.combo != "nc-c" && a.combo != "c-nc" &&
      a.combo != "c-c")
    usage();
  if (a.method != "list" && a.method != "listless" && a.method != "both")
    usage();
  if (a.flip_at < 0 || (!a.flip_net.empty() && a.flip_at == 0)) usage();
  return a;
}

void run_one(const CliArgs& a, mpiio::Method m, bool write) {
  NoncontigConfig cfg;
  cfg.method = m;
  cfg.nprocs = a.procs;
  cfg.nblock = a.nblock;
  cfg.sblock = a.sblock;
  cfg.nc_mem = a.combo == "nc-nc" || a.combo == "nc-c";
  cfg.nc_file = a.combo == "nc-nc" || a.combo == "c-nc";
  cfg.collective = a.collective;
  cfg.write = write;
  cfg.target_bytes_pp = a.target_kb * 1024;
  cfg.min_seconds = env_double("LLIO_BENCH_MIN_SECONDS", 0.2);
  cfg.hints = a.hints;
  cfg.flip_at = a.flip_at;
  cfg.flip_net = a.flip_net;
  if (a.explain || !a.report_path.empty()) {
    // One measured op, traced: the trace then reconciles with the folded
    // last_stats() the bench reports (run_noncontig clears the tracer and
    // the metrics registry right before the measured loop).
    cfg.min_seconds = 0;
    // Default-enable; never downgrade a level already set via a --hint or
    // the LLIO_TRACE / LLIO_METRICS environment.
    if (!cfg.hints.get("llio_trace") && !obs::trace_enabled())
      cfg.hints.set("llio_trace", "spans");
    if (!cfg.hints.get("llio_metrics") && !obs::metrics_enabled())
      cfg.hints.set("llio_metrics", "on");
  }
  if (!a.report_path.empty() && !cfg.hints.get("llio_report"))
    cfg.hints.set("llio_report", a.report_path);
  const BenchPoint p = run_noncontig(cfg);
  std::printf("%-10s %-5s  Bpp %10s   payload/proc %s  repeats %d  "
              "ol-list bytes/op %lld\n",
              mpiio::method_name(m), write ? "write" : "read",
              fmt_mbps(p.mbps_pp()).c_str(),
              human_bytes(p.bytes_pp).c_str(), p.repeats,
              static_cast<long long>(p.list_bytes_sent));
  std::printf(
      "json:{\"bench\":\"noncontig_cli\",\"method\":\"%s\",\"op\":\"%s\","
      "\"mbps_pp\":%.3f,\"repeats\":%d%s}\n",
      mpiio::method_name(m), write ? "write" : "read", p.mbps_pp(),
      p.repeats, p.latency_json().c_str());
  if (a.stats)
    std::printf("%s", mpiio::format_stats(p.op_stats).c_str());
  if (a.explain) {
    const auto events = obs::Tracer::instance().snapshot();
    const auto report = obs::explain_pipeline(events);
    std::printf("%s", obs::format_pipeline_report(report).c_str());
    // Reconcile the trace-derived totals with the engine's own stats.
    const double trace_wait_s = report.io_wait_us / 1e6;
    const double trace_overlap_s = report.overlap_us / 1e6;
    std::printf("reconcile: io_wait %.4fs (stats %.4fs)  overlap %.4fs "
                "(stats %.4fs)\n",
                trace_wait_s, p.op_stats.io_wait_s, trace_overlap_s,
                p.op_stats.overlap_s);
    long long aio_ops = 0;
    double aio_us = 0;
    for (const auto& r : report.ranks) {
      aio_ops += r.aio_ops;
      aio_us += r.aio_us;
    }
    std::printf("reconcile: aio ops %lld, %.4fs (stats async ops %llu)\n",
                aio_ops, aio_us / 1e6,
                (unsigned long long)p.op_stats.async_file_ops);
    const obs::CriticalPathReport cp = obs::critical_path(events);
    if (cp.windows > 0) {
      std::printf(
          "critical path: %lld windows, %.1f%% io / %.1f%% pack / %.1f%% "
          "other (limiter %s; %.1f%% attributed; exchange %.4fs outside)\n",
          cp.windows, 100.0 * cp.io_us / cp.window_us,
          100.0 * cp.pack_us / cp.window_us,
          100.0 * cp.other_us / cp.window_us, cp.limiter(),
          100.0 * cp.attributed_frac, cp.exchange_us / 1e6);
    }
  }
  if (!a.report_path.empty())
    std::printf("report: %s\n", a.report_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs a = parse(argc, argv);
  std::printf("noncontig: Nblock=%lld Sblock=%lldB P=%d %s %s\n",
              (long long)a.nblock, (long long)a.sblock, a.procs,
              a.combo.c_str(), a.collective ? "collective" : "independent");
  for (mpiio::Method m : {mpiio::Method::ListBased, mpiio::Method::Listless}) {
    if (a.method == "list" && m != mpiio::Method::ListBased) continue;
    if (a.method == "listless" && m != mpiio::Method::Listless) continue;
    if (a.do_write) run_one(a, m, true);
    if (a.do_read) run_one(a, m, false);
  }
  return 0;
}
