// Bench: async queue-depth POSIX backend and layout-aware striping.
//
// The paper measures listless I/O against a real parallel file system;
// this bench probes the storage-side half of that story on commodity
// hardware.  Three sections:
//
//   A (qd)      queue-depth sweep {1,2,4,8} of a collective write whose
//               two-phase exchange is disabled (romio_cb_write=disable,
//               romio_ds_write=disable), so every rank issues direct
//               vectored writes with one file-contiguous group per
//               stride block — the access shape where keeping several
//               operations in flight pays.  Targets:
//                 throttled  AsyncQdFile over a 150us-latency cost model
//                            (deterministic: queue depth overlaps the
//                            fixed per-op latency; the CI gate reads
//                            this target),
//                 tmpfs      PosixFile scratch file in /dev/shm,
//                 dir        PosixFile scratch file in
//                            $LLIO_BENCH_POSIX_DIR (default /tmp).
//               The qd=1 row runs the identical per-group decomposition
//               serially, so the sweep varies concurrency only.
//   B (direct)  O_DIRECT off/on at qd=4 on the `dir` target with an
//               unaligned block size (Sblock=10000), exercising the
//               alignment-aware read-modify-write at block edges.
//               `direct_active` reports whether the file system actually
//               honored O_DIRECT (tmpfs does not; rows stay honest).
//   C (rotate)  FFS cylinder-group rotation off/on for a striped target:
//               4 exclusive 400 MB/s devices, stripe = collective window
//               = 256 KiB, P=4.  Without rotation every IOP's k-th
//               window lands on device k%4 in lockstep and the exclusive
//               devices serialize; with rotation row r starts on device
//               r%4 and the four IOP streams fan out cleanly.
//
// Scale knobs: LLIO_BENCH_TARGET_KB, LLIO_BENCH_MIN_SECONDS,
// LLIO_BENCH_POSIX_DIR; --quick shrinks the sweep for CI.
#include <cstring>

#include "bench_common.hpp"
#include "pfs/async_io.hpp"
#include "pfs/striped_file.hpp"
#include "pfs/throttled_file.hpp"

using namespace llio;
using namespace llio::bench;

namespace {

const char* kSchema =
    "json-schema:{\"bench\":\"string\",\"section\":\"string\","
    "\"target\":\"string\",\"qd\":\"int\",\"direct\":\"bool\","
    "\"direct_active\":\"bool\",\"rotate\":\"bool\","
    "\"mbps_pp\":\"number\",\"speedup\":\"number\",\"repeats\":\"int\"}\n";

std::string json_row(const char* section, const std::string& target, int qd,
                     bool direct, bool direct_active, bool rotate,
                     double mbps, double speedup, int repeats) {
  return strprintf(
      "json:{\"bench\":\"posix\",\"section\":\"%s\",\"target\":\"%s\","
      "\"qd\":%d,\"direct\":%s,\"direct_active\":%s,\"rotate\":%s,"
      "\"mbps_pp\":%.3f,\"speedup\":%.2f,\"repeats\":%d}\n",
      section, target.c_str(), qd, direct ? "true" : "false",
      direct_active ? "true" : "false", rotate ? "true" : "false", mbps,
      speedup, repeats);
}

/// The direct-access collective write every section-A/B point runs: the
/// two-phase exchange and data sieving are off, so each rank's
/// write_at_all degrades to direct vectored writes whose batches hold
/// one file-contiguous group per stride block.
NoncontigConfig direct_write_point(int nprocs, Off nblock, Off sblock,
                                   Off target, double min_s) {
  NoncontigConfig cfg;
  cfg.method = mpiio::Method::Listless;
  cfg.nprocs = nprocs;
  cfg.nblock = nblock;
  cfg.sblock = sblock;
  cfg.collective = true;
  cfg.write = true;
  cfg.target_bytes_pp = target;
  cfg.min_seconds = min_s;
  cfg.hints.set("romio_cb_write", "disable");
  cfg.hints.set("romio_ds_write", "disable");
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const Off target =
      env_off("LLIO_BENCH_TARGET_KB", quick ? 256 : 512) * 1024;
  const double min_s = env_double("LLIO_BENCH_MIN_SECONDS", quick ? 0.02 : 0.1);
  const std::string posix_dir = env_str("LLIO_BENCH_POSIX_DIR", "/tmp");

  std::printf("%s", kSchema);
  std::string json;

  // ---- Section A: queue-depth sweep ------------------------------------
  const std::vector<int> qds = quick ? std::vector<int>{1, 4}
                                     : std::vector<int>{1, 2, 4, 8};
  const int nprocs = 2;
  const Off nblock = 64, sblock = 8192;
  std::printf(
      "posix A: nc-nc collective write, cb/ds off (direct vectored), "
      "P=%d, Nblock=%lld, Sblock=%lld, qd sweep\n",
      nprocs, (long long)nblock, (long long)sblock);

  Table qd_table({"target", "qd", "MB/s/proc", "speedup", "repeats"});
  struct Target {
    std::string name;
    std::string backend;  ///< llio_backend hint; empty = make_backend
  };
  std::vector<Target> targets = {{"throttled", ""},
                                 {"tmpfs", "posix:/dev/shm"},
                                 {"dir", "posix:" + posix_dir}};
  if (posix_dir == "/dev/shm") targets.pop_back();  // same mount twice

  for (const Target& t : targets) {
    double base_mbps = 0;
    for (int qd : qds) {
      NoncontigConfig cfg =
          direct_write_point(nprocs, nblock, sblock, target, min_s);
      if (t.backend.empty()) {
        // Deterministic fallback target: fixed 150us per op, bandwidth
        // high enough that latency dominates; queue depth is the only
        // thing that can overlap it.
        cfg.make_backend = [qd] {
          pfs::ThrottleConfig tc;
          tc.read_bandwidth_bps = tc.write_bandwidth_bps = 4.0e9;
          tc.op_latency_s = 150e-6;
          return pfs::AsyncQdFile::wrap(
              pfs::ThrottledFile::wrap(pfs::MemFile::create(), tc), qd);
        };
      } else {
        cfg.hints.set("llio_backend", t.backend);
        cfg.hints.set("llio_posix_qd", strprintf("%d", qd));
      }
      const BenchPoint p = run_noncontig(cfg);
      if (qd == qds.front()) base_mbps = p.mbps_pp();
      const double speedup = base_mbps > 0 ? p.mbps_pp() / base_mbps : 0.0;
      qd_table.add_row({t.name, strprintf("%d", qd), fmt_mbps(p.mbps_pp()),
                        strprintf("%.2fx", speedup),
                        strprintf("%d", p.repeats)});
      json += json_row("qd", t.name, qd, false, false, false, p.mbps_pp(),
                       speedup, p.repeats);
    }
  }
  qd_table.print("queue-depth sweep [per-process bandwidth]");

  // ---- Section B: O_DIRECT off/on --------------------------------------
  // Unaligned block size: every write group starts and ends mid-block,
  // so the direct path pays its edge read-modify-write.
  std::printf(
      "\nposix B: same write shape, Sblock=10000 (unaligned), qd=4, "
      "O_DIRECT off/on in %s\n",
      posix_dir.c_str());
  Table d_table({"direct", "active", "MB/s/proc", "speedup", "repeats"});
  double d_base = 0;
  for (int direct = 0; direct <= 1; ++direct) {
    NoncontigConfig cfg = direct_write_point(nprocs, nblock, 10000, target,
                                             min_s);
    std::shared_ptr<pfs::PosixFile> handle;
    cfg.make_backend = [&] {
      pfs::PosixConfig pc;
      pc.queue_depth = 4;
      pc.direct = direct != 0;
      handle = pfs::PosixFile::open_temp(posix_dir, pc);
      return handle;
    };
    const BenchPoint p = run_noncontig(cfg);
    const bool active = handle && handle->direct_active();
    if (direct == 0) d_base = p.mbps_pp();
    const double speedup = d_base > 0 ? p.mbps_pp() / d_base : 0.0;
    d_table.add_row({direct ? "on" : "off", active ? "yes" : "no",
                     fmt_mbps(p.mbps_pp()), strprintf("%.2fx", speedup),
                     strprintf("%d", p.repeats)});
    json += json_row("direct", "dir", 4, direct != 0, active, false,
                     p.mbps_pp(), speedup, p.repeats);
  }
  d_table.print("O_DIRECT with edge RMW [per-process bandwidth]");

  // ---- Section C: stripe rotation --------------------------------------
  const int rp = 4;                 // ranks = IOPs = devices
  const Off stripe = Off{256} << 10;  // stripe unit = collective window
  const Off rn = quick ? 64 : 128, rs = 8192;
  std::printf(
      "\nposix C: nc-nc collective write, two-phase on, P=%d over %d "
      "exclusive 400 MB/s devices, stripe = window = 256 KiB, rotation "
      "off/on\n",
      rp, rp);
  Table r_table({"rotate", "MB/s/proc", "speedup", "repeats"});
  double r_base = 0;
  for (int rotate = 0; rotate <= 1; ++rotate) {
    NoncontigConfig cfg;
    cfg.method = mpiio::Method::Listless;
    cfg.nprocs = rp;
    cfg.nblock = rn;
    cfg.sblock = rs;
    cfg.collective = true;
    cfg.write = true;
    cfg.target_bytes_pp = rn * rs;  // one instance: fixed window layout
    cfg.min_seconds = min_s;
    cfg.hints.set("cb_buffer_size", strprintf("%lld", (long long)stripe));
    cfg.make_backend = [&] {
      std::vector<pfs::FilePtr> devs;
      for (int d = 0; d < rp; ++d) {
        pfs::ThrottleConfig tc;
        tc.read_bandwidth_bps = tc.write_bandwidth_bps = 400e6;
        tc.exclusive_device = true;
        devs.push_back(pfs::ThrottledFile::wrap(pfs::MemFile::create(), tc));
      }
      pfs::StripeLayout layout;
      layout.rotate = rotate != 0;
      layout.queue_depth = 4;
      return pfs::StripedFile::create(std::move(devs), stripe, layout);
    };
    const BenchPoint p = run_noncontig(cfg);
    if (rotate == 0) r_base = p.mbps_pp();
    const double speedup = r_base > 0 ? p.mbps_pp() / r_base : 0.0;
    r_table.add_row({rotate ? "on" : "off", fmt_mbps(p.mbps_pp()),
                     strprintf("%.2fx", speedup),
                     strprintf("%d", p.repeats)});
    json += json_row("rotate", "striped", 4, false, false, rotate != 0,
                     p.mbps_pp(), speedup, p.repeats);
  }
  r_table.print("FFS cylinder-group rotation [per-process bandwidth]");

  std::printf("%s", json.c_str());
  return 0;
}
