// Shared-log append workload (ROADMAP scenario c) over the backend and
// cache matrix.
//
// P ranks append records through the shared file pointer with periodic
// ordered-collective checkpoints, then densely re-read the log three
// times.  Backends:
//   mem              the in-process reference (no wire),
//   psrv             the file-server pool, session cache off — every
//                    append claims the pointer and ships a wire write,
//                    every re-read byte crosses the wire again,
//   psrv+cache       the same pool with the lease-coherent client cache:
//                    appends buffer as write-back dirty blocks and the
//                    re-read passes after the first are served from the
//                    client, so the wire cost collapses to the first
//                    touch plus the flush.
// Reported: append and re-read bandwidth (aggregate across ranks) and
// client-observed read latency quantiles.  Scale knobs: LLIO_BENCH_RECORD,
// LLIO_BENCH_APPENDS, LLIO_BENCH_NET (named interconnect, default fast).
#include <functional>
#include <string>

#include "shared_log.hpp"

using namespace llio;
using namespace llio::bench;

namespace {

struct Setup {
  const char* name;
  bool cache;                             // psrv session cache
  std::function<pfs::FilePtr()> make_fs;  // empty name check below
};

}  // namespace

int main() {
  const int nprocs = static_cast<int>(env_off("LLIO_BENCH_PROCS", 4));
  SharedLogConfig cfg;
  cfg.record = env_off("LLIO_BENCH_RECORD", 512);
  cfg.appends = static_cast<int>(env_off("LLIO_BENCH_APPENDS", 48));
  cfg.ordered_every = 16;
  cfg.reread_passes = 3;
  const std::string net_name = env_str("LLIO_BENCH_NET", "fast");
  const sim::CommCostModel net = sim::named_cost_model(net_name);

  auto make_pool = [&] {
    psrv::PoolConfig pc;
    pc.nservers = 4;
    pc.stripe = 4096;
    pc.net = net;
    return psrv::ServerPool::create(std::move(pc));
  };
  const Setup setups[] = {
      {"mem", false, [] { return pfs::MemFile::create(); }},
      {"psrv", false,
       [&] {
         return psrv::ServerFile::create(make_pool(),
                                         psrv::RequestClass::List);
       }},
      {"psrv+cache", true,
       [&] {
         psrv::SessionConfig sc;
         sc.cache = true;
         return psrv::ServerFile::create(make_pool(),
                                         psrv::RequestClass::List, sc);
       }},
  };

  std::printf(
      "shared-log: P=%d, %d x %lld B appends/rank + ordered checkpoint "
      "every %d, %d dense re-read passes, net=%s\n",
      nprocs, cfg.appends, static_cast<long long>(cfg.record),
      cfg.ordered_every, cfg.reread_passes, net_name.c_str());
  std::printf(
      "json-schema:{\"bench\":\"string\",\"backend\":\"string\","
      "\"cache\":\"bool\",\"net\":\"string\",\"append_mbps\":\"number\","
      "\"reread_mbps\":\"number\",\"read_p50_us\":\"number\","
      "\"read_p99_us\":\"number\",\"log_bytes\":\"int\"}\n");

  Table table({"backend", "append MB/s", "reread MB/s", "read p50 us",
               "read p99 us"});
  std::string json;
  for (const Setup& s : setups) {
    pfs::FilePtr fs = s.make_fs();
    SharedLogStats total;
    std::mutex mu;
    sim::Runtime::run(nprocs, net, [&](sim::Comm& comm) {
      mpiio::File f = mpiio::File::open(comm, fs);
      const SharedLogStats mine = drive_shared_log(comm, f, cfg);
      std::lock_guard<std::mutex> lk(mu);
      total += mine;
    });
    const double append_mbps =
        total.append_s > 0 ? static_cast<double>(total.appended) /
                                 total.append_s / (1024.0 * 1024.0)
                           : 0;
    const double reread_mbps =
        total.reread_s > 0 ? static_cast<double>(total.reread) /
                                 total.reread_s / (1024.0 * 1024.0)
                           : 0;
    const double p50 = quantile_us(total.read_us, 0.50);
    const double p99 = quantile_us(total.read_us, 0.99);
    table.add_row({s.name, fmt_mbps(append_mbps), fmt_mbps(reread_mbps),
                   strprintf("%.2f", p50), strprintf("%.2f", p99)});
    json += strprintf(
        "json:{\"bench\":\"shared_log\",\"backend\":\"%s\",\"cache\":%s,"
        "\"net\":\"%s\",\"append_mbps\":%.3f,\"reread_mbps\":%.3f,"
        "\"read_p50_us\":%.2f,\"read_p99_us\":%.2f,\"log_bytes\":%lld}\n",
        s.name, s.cache ? "true" : "false", net_name.c_str(), append_mbps,
        reread_mbps, p50, p99, static_cast<long long>(total.appended));
  }
  table.print("shared-log append + dense re-read [aggregate bandwidth]");
  std::printf("%s", json.c_str());
  return 0;
}
