# Benchmark harnesses.  Included from the top-level CMakeLists (not
# add_subdirectory) so ${CMAKE_BINARY_DIR}/bench holds only the runnable
# binaries:  for b in build/bench/*; do $b; done
set(LLIO_BENCH_DIR ${CMAKE_CURRENT_LIST_DIR})

function(llio_add_bench name)
  add_executable(${name} ${LLIO_BENCH_DIR}/${name}.cpp)
  target_link_libraries(${name} PRIVATE llio llio_warnings)
  target_include_directories(${name} PRIVATE ${LLIO_BENCH_DIR})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

llio_add_bench(bench_fig5_nblock_indep)
llio_add_bench(bench_fig6_nblock_coll)
llio_add_bench(bench_fig7_sblock_indep)
llio_add_bench(bench_fig8_procs_coll)
llio_add_bench(bench_btio)
llio_add_bench(bench_noncontig_cli)
llio_add_bench(bench_ablation_sieve)
llio_add_bench(bench_ablation_network)
llio_add_bench(bench_ablation_activebuf)
llio_add_bench(bench_ablation_striping)
llio_add_bench(bench_ablation_pipeline)
llio_add_bench(bench_ablation_mergeview)
llio_add_bench(bench_ablation_servers)
llio_add_bench(bench_ablation_zerocopy)
llio_add_bench(bench_ablation_multitenant)
llio_add_bench(bench_ablation_adaptive)
llio_add_bench(bench_posix)
llio_add_bench(bench_shared_log)

llio_add_bench(bench_ablation_pack)
llio_add_bench(bench_ablation_olist)
target_link_libraries(bench_ablation_olist PRIVATE benchmark::benchmark)
