// Shared-log append traffic generator (ROADMAP scenario c): every rank
// appends fixed-size records to one shared file through the shared file
// pointer, with a periodic ordered-collective checkpoint record, then
// re-reads the whole log densely.  The shape is the classic contended
// log: appends serialize on the shared pointer (fetch-and-add claims),
// checkpoints serialize on rank order, and the re-read phase is the
// cache-friendly half — every byte is read again, so a client-side block
// cache turns the second and later passes into pure hits.
//
// Used standalone by bench_shared_log and as the per-tenant traffic
// source for bench_ablation_multitenant (each tenant aims its log at its
// own band of the shared pool via the fileview displacement).
#pragma once

#include <algorithm>
#include <vector>

#include "bench_common.hpp"

namespace llio::bench {

struct SharedLogConfig {
  Off record = 512;        ///< bytes per appended record
  int appends = 48;        ///< write_shared appends per rank
  int ordered_every = 16;  ///< ordered-collective checkpoint cadence (0=off)
  int reread_passes = 3;   ///< dense record-at-a-time passes over the log
};

/// One rank's results; fold across ranks with operator+=.  The phase
/// timings are max-across-ranks (each rank times barrier-to-barrier, so
/// the fold keeps the slowest, which is the wall time of the phase).
struct SharedLogStats {
  Off appended = 0;             ///< log bytes this rank claimed
  Off reread = 0;               ///< bytes this rank read back
  double append_s = 0;          ///< append+checkpoint phase wall time
  double reread_s = 0;          ///< re-read phase wall time
  std::vector<double> read_us;  ///< per-read-op latency samples

  SharedLogStats& operator+=(const SharedLogStats& o) {
    appended += o.appended;
    reread += o.reread;
    append_s = std::max(append_s, o.append_s);
    reread_s = std::max(reread_s, o.reread_s);
    read_us.insert(read_us.end(), o.read_us.begin(), o.read_us.end());
    return *this;
  }
};

/// Drive the workload through an open File (view already set by the
/// caller; offsets below are view-relative).  Collective: every rank of
/// `comm` must call it with the same config.
inline SharedLogStats drive_shared_log(sim::Comm& comm, mpiio::File& f,
                                       const SharedLogConfig& cfg) {
  SharedLogStats st;
  const ByteVec rec(to_size(cfg.record),
                    Byte{static_cast<unsigned char>(0x40 + comm.rank())});

  comm.barrier();
  WallTimer ta;
  for (int i = 0; i < cfg.appends; ++i) {
    f.write_shared(rec.data(), cfg.record, dt::byte());
    st.appended += cfg.record;
    if (cfg.ordered_every > 0 && (i + 1) % cfg.ordered_every == 0) {
      f.write_ordered(rec.data(), cfg.record, dt::byte());
      st.appended += cfg.record;
    }
  }
  comm.barrier();
  st.append_s = ta.seconds();

  // The log is complete; every rank now scans it record by record.
  const Off log_bytes = f.tell_shared();  // etype = byte
  ByteVec buf(to_size(cfg.record));
  WallTimer tr;
  for (int pass = 0; pass < cfg.reread_passes; ++pass) {
    for (Off off = 0; off + cfg.record <= log_bytes; off += cfg.record) {
      WallTimer top;
      f.read_at(off, buf.data(), cfg.record, dt::byte());
      st.read_us.push_back(top.seconds() * 1e6);
      st.reread += cfg.record;
    }
  }
  comm.barrier();
  st.reread_s = tr.seconds();
  return st;
}

/// Nearest-rank quantile of a latency sample set (q in [0,1]).
inline double quantile_us(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace llio::bench
