file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_activebuf.dir/bench/bench_ablation_activebuf.cpp.o"
  "CMakeFiles/bench_ablation_activebuf.dir/bench/bench_ablation_activebuf.cpp.o.d"
  "bench/bench_ablation_activebuf"
  "bench/bench_ablation_activebuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_activebuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
