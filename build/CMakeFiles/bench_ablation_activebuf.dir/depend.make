# Empty dependencies file for bench_ablation_activebuf.
# This may be replaced when dependencies are built.
