file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_olist.dir/bench/bench_ablation_olist.cpp.o"
  "CMakeFiles/bench_ablation_olist.dir/bench/bench_ablation_olist.cpp.o.d"
  "bench/bench_ablation_olist"
  "bench/bench_ablation_olist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_olist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
