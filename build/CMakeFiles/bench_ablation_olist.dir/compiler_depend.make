# Empty compiler generated dependencies file for bench_ablation_olist.
# This may be replaced when dependencies are built.
