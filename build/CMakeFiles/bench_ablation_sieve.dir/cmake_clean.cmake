file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sieve.dir/bench/bench_ablation_sieve.cpp.o"
  "CMakeFiles/bench_ablation_sieve.dir/bench/bench_ablation_sieve.cpp.o.d"
  "bench/bench_ablation_sieve"
  "bench/bench_ablation_sieve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sieve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
