# Empty dependencies file for bench_ablation_sieve.
# This may be replaced when dependencies are built.
