file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_striping.dir/bench/bench_ablation_striping.cpp.o"
  "CMakeFiles/bench_ablation_striping.dir/bench/bench_ablation_striping.cpp.o.d"
  "bench/bench_ablation_striping"
  "bench/bench_ablation_striping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
