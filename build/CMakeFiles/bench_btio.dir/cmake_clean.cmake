file(REMOVE_RECURSE
  "CMakeFiles/bench_btio.dir/bench/bench_btio.cpp.o"
  "CMakeFiles/bench_btio.dir/bench/bench_btio.cpp.o.d"
  "bench/bench_btio"
  "bench/bench_btio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_btio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
