# Empty compiler generated dependencies file for bench_btio.
# This may be replaced when dependencies are built.
