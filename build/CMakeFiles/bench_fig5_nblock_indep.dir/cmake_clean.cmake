file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_nblock_indep.dir/bench/bench_fig5_nblock_indep.cpp.o"
  "CMakeFiles/bench_fig5_nblock_indep.dir/bench/bench_fig5_nblock_indep.cpp.o.d"
  "bench/bench_fig5_nblock_indep"
  "bench/bench_fig5_nblock_indep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_nblock_indep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
