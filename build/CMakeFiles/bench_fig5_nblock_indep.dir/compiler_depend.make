# Empty compiler generated dependencies file for bench_fig5_nblock_indep.
# This may be replaced when dependencies are built.
