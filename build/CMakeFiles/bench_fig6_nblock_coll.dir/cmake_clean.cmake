file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_nblock_coll.dir/bench/bench_fig6_nblock_coll.cpp.o"
  "CMakeFiles/bench_fig6_nblock_coll.dir/bench/bench_fig6_nblock_coll.cpp.o.d"
  "bench/bench_fig6_nblock_coll"
  "bench/bench_fig6_nblock_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_nblock_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
