# Empty dependencies file for bench_fig6_nblock_coll.
# This may be replaced when dependencies are built.
