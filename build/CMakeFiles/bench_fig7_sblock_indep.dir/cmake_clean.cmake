file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_sblock_indep.dir/bench/bench_fig7_sblock_indep.cpp.o"
  "CMakeFiles/bench_fig7_sblock_indep.dir/bench/bench_fig7_sblock_indep.cpp.o.d"
  "bench/bench_fig7_sblock_indep"
  "bench/bench_fig7_sblock_indep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_sblock_indep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
