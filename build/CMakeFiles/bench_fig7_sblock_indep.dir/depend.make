# Empty dependencies file for bench_fig7_sblock_indep.
# This may be replaced when dependencies are built.
