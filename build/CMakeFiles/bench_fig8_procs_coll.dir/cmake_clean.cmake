file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_procs_coll.dir/bench/bench_fig8_procs_coll.cpp.o"
  "CMakeFiles/bench_fig8_procs_coll.dir/bench/bench_fig8_procs_coll.cpp.o.d"
  "bench/bench_fig8_procs_coll"
  "bench/bench_fig8_procs_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_procs_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
