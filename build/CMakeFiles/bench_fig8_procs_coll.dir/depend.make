# Empty dependencies file for bench_fig8_procs_coll.
# This may be replaced when dependencies are built.
