file(REMOVE_RECURSE
  "CMakeFiles/bench_noncontig_cli.dir/bench/bench_noncontig_cli.cpp.o"
  "CMakeFiles/bench_noncontig_cli.dir/bench/bench_noncontig_cli.cpp.o.d"
  "bench/bench_noncontig_cli"
  "bench/bench_noncontig_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noncontig_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
