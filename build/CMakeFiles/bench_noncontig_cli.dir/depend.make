# Empty dependencies file for bench_noncontig_cli.
# This may be replaced when dependencies are built.
