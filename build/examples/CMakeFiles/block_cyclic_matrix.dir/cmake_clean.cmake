file(REMOVE_RECURSE
  "CMakeFiles/block_cyclic_matrix.dir/block_cyclic_matrix.cpp.o"
  "CMakeFiles/block_cyclic_matrix.dir/block_cyclic_matrix.cpp.o.d"
  "block_cyclic_matrix"
  "block_cyclic_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_cyclic_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
