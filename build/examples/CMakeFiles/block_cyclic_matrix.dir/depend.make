# Empty dependencies file for block_cyclic_matrix.
# This may be replaced when dependencies are built.
