file(REMOVE_RECURSE
  "CMakeFiles/btio_mini.dir/btio_mini.cpp.o"
  "CMakeFiles/btio_mini.dir/btio_mini.cpp.o.d"
  "btio_mini"
  "btio_mini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btio_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
