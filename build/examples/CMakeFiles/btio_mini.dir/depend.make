# Empty dependencies file for btio_mini.
# This may be replaced when dependencies are built.
