file(REMOVE_RECURSE
  "CMakeFiles/event_log.dir/event_log.cpp.o"
  "CMakeFiles/event_log.dir/event_log.cpp.o.d"
  "event_log"
  "event_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
