file(REMOVE_RECURSE
  "CMakeFiles/particle_checkpoint.dir/particle_checkpoint.cpp.o"
  "CMakeFiles/particle_checkpoint.dir/particle_checkpoint.cpp.o.d"
  "particle_checkpoint"
  "particle_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/particle_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
