# Empty compiler generated dependencies file for particle_checkpoint.
# This may be replaced when dependencies are built.
