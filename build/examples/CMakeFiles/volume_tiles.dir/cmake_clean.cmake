file(REMOVE_RECURSE
  "CMakeFiles/volume_tiles.dir/volume_tiles.cpp.o"
  "CMakeFiles/volume_tiles.dir/volume_tiles.cpp.o.d"
  "volume_tiles"
  "volume_tiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volume_tiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
