# Empty compiler generated dependencies file for volume_tiles.
# This may be replaced when dependencies are built.
