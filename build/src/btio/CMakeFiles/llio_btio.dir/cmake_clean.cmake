file(REMOVE_RECURSE
  "CMakeFiles/llio_btio.dir/pattern.cpp.o"
  "CMakeFiles/llio_btio.dir/pattern.cpp.o.d"
  "libllio_btio.a"
  "libllio_btio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llio_btio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
