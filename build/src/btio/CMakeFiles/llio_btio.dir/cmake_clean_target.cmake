file(REMOVE_RECURSE
  "libllio_btio.a"
)
