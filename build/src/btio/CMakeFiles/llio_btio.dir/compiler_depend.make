# Empty compiler generated dependencies file for llio_btio.
# This may be replaced when dependencies are built.
