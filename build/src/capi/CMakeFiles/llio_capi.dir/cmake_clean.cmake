file(REMOVE_RECURSE
  "CMakeFiles/llio_capi.dir/llio_mpi.cpp.o"
  "CMakeFiles/llio_capi.dir/llio_mpi.cpp.o.d"
  "libllio_capi.a"
  "libllio_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llio_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
