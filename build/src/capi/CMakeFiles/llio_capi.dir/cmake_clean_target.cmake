file(REMOVE_RECURSE
  "libllio_capi.a"
)
