# Empty dependencies file for llio_capi.
# This may be replaced when dependencies are built.
