file(REMOVE_RECURSE
  "CMakeFiles/llio_common.dir/error.cpp.o"
  "CMakeFiles/llio_common.dir/error.cpp.o.d"
  "CMakeFiles/llio_common.dir/format.cpp.o"
  "CMakeFiles/llio_common.dir/format.cpp.o.d"
  "libllio_common.a"
  "libllio_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llio_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
