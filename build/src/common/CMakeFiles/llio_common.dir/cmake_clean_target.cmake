file(REMOVE_RECURSE
  "libllio_common.a"
)
