# Empty dependencies file for llio_common.
# This may be replaced when dependencies are built.
