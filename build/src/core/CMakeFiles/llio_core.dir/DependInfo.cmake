
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fotf_mover.cpp" "src/core/CMakeFiles/llio_core.dir/fotf_mover.cpp.o" "gcc" "src/core/CMakeFiles/llio_core.dir/fotf_mover.cpp.o.d"
  "/root/repo/src/core/listless_engine.cpp" "src/core/CMakeFiles/llio_core.dir/listless_engine.cpp.o" "gcc" "src/core/CMakeFiles/llio_core.dir/listless_engine.cpp.o.d"
  "/root/repo/src/core/listless_nav.cpp" "src/core/CMakeFiles/llio_core.dir/listless_nav.cpp.o" "gcc" "src/core/CMakeFiles/llio_core.dir/listless_nav.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/llio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dtype/CMakeFiles/llio_dtype.dir/DependInfo.cmake"
  "/root/repo/build/src/fotf/CMakeFiles/llio_fotf.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/llio_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/llio_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/llio_mpiio_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
