file(REMOVE_RECURSE
  "CMakeFiles/llio_core.dir/fotf_mover.cpp.o"
  "CMakeFiles/llio_core.dir/fotf_mover.cpp.o.d"
  "CMakeFiles/llio_core.dir/listless_engine.cpp.o"
  "CMakeFiles/llio_core.dir/listless_engine.cpp.o.d"
  "CMakeFiles/llio_core.dir/listless_nav.cpp.o"
  "CMakeFiles/llio_core.dir/listless_nav.cpp.o.d"
  "libllio_core.a"
  "libllio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
