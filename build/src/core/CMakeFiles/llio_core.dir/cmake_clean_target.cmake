file(REMOVE_RECURSE
  "libllio_core.a"
)
