# Empty compiler generated dependencies file for llio_core.
# This may be replaced when dependencies are built.
