
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtype/darray.cpp" "src/dtype/CMakeFiles/llio_dtype.dir/darray.cpp.o" "gcc" "src/dtype/CMakeFiles/llio_dtype.dir/darray.cpp.o.d"
  "/root/repo/src/dtype/datatype.cpp" "src/dtype/CMakeFiles/llio_dtype.dir/datatype.cpp.o" "gcc" "src/dtype/CMakeFiles/llio_dtype.dir/datatype.cpp.o.d"
  "/root/repo/src/dtype/flatten.cpp" "src/dtype/CMakeFiles/llio_dtype.dir/flatten.cpp.o" "gcc" "src/dtype/CMakeFiles/llio_dtype.dir/flatten.cpp.o.d"
  "/root/repo/src/dtype/normalize.cpp" "src/dtype/CMakeFiles/llio_dtype.dir/normalize.cpp.o" "gcc" "src/dtype/CMakeFiles/llio_dtype.dir/normalize.cpp.o.d"
  "/root/repo/src/dtype/serialize.cpp" "src/dtype/CMakeFiles/llio_dtype.dir/serialize.cpp.o" "gcc" "src/dtype/CMakeFiles/llio_dtype.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/llio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
