file(REMOVE_RECURSE
  "CMakeFiles/llio_dtype.dir/darray.cpp.o"
  "CMakeFiles/llio_dtype.dir/darray.cpp.o.d"
  "CMakeFiles/llio_dtype.dir/datatype.cpp.o"
  "CMakeFiles/llio_dtype.dir/datatype.cpp.o.d"
  "CMakeFiles/llio_dtype.dir/flatten.cpp.o"
  "CMakeFiles/llio_dtype.dir/flatten.cpp.o.d"
  "CMakeFiles/llio_dtype.dir/normalize.cpp.o"
  "CMakeFiles/llio_dtype.dir/normalize.cpp.o.d"
  "CMakeFiles/llio_dtype.dir/serialize.cpp.o"
  "CMakeFiles/llio_dtype.dir/serialize.cpp.o.d"
  "libllio_dtype.a"
  "libllio_dtype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llio_dtype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
