file(REMOVE_RECURSE
  "libllio_dtype.a"
)
