# Empty compiler generated dependencies file for llio_dtype.
# This may be replaced when dependencies are built.
