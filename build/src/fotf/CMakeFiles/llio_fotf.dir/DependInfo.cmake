
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fotf/cursor.cpp" "src/fotf/CMakeFiles/llio_fotf.dir/cursor.cpp.o" "gcc" "src/fotf/CMakeFiles/llio_fotf.dir/cursor.cpp.o.d"
  "/root/repo/src/fotf/mpi_pack.cpp" "src/fotf/CMakeFiles/llio_fotf.dir/mpi_pack.cpp.o" "gcc" "src/fotf/CMakeFiles/llio_fotf.dir/mpi_pack.cpp.o.d"
  "/root/repo/src/fotf/navigate.cpp" "src/fotf/CMakeFiles/llio_fotf.dir/navigate.cpp.o" "gcc" "src/fotf/CMakeFiles/llio_fotf.dir/navigate.cpp.o.d"
  "/root/repo/src/fotf/pack.cpp" "src/fotf/CMakeFiles/llio_fotf.dir/pack.cpp.o" "gcc" "src/fotf/CMakeFiles/llio_fotf.dir/pack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/llio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dtype/CMakeFiles/llio_dtype.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
