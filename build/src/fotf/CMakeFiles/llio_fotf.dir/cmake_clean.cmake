file(REMOVE_RECURSE
  "CMakeFiles/llio_fotf.dir/cursor.cpp.o"
  "CMakeFiles/llio_fotf.dir/cursor.cpp.o.d"
  "CMakeFiles/llio_fotf.dir/mpi_pack.cpp.o"
  "CMakeFiles/llio_fotf.dir/mpi_pack.cpp.o.d"
  "CMakeFiles/llio_fotf.dir/navigate.cpp.o"
  "CMakeFiles/llio_fotf.dir/navigate.cpp.o.d"
  "CMakeFiles/llio_fotf.dir/pack.cpp.o"
  "CMakeFiles/llio_fotf.dir/pack.cpp.o.d"
  "libllio_fotf.a"
  "libllio_fotf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llio_fotf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
