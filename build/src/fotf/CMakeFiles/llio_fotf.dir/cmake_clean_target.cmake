file(REMOVE_RECURSE
  "libllio_fotf.a"
)
