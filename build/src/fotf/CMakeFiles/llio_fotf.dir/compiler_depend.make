# Empty compiler generated dependencies file for llio_fotf.
# This may be replaced when dependencies are built.
