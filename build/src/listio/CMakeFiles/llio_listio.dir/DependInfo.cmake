
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/listio/list_engine.cpp" "src/listio/CMakeFiles/llio_listio.dir/list_engine.cpp.o" "gcc" "src/listio/CMakeFiles/llio_listio.dir/list_engine.cpp.o.d"
  "/root/repo/src/listio/list_mover.cpp" "src/listio/CMakeFiles/llio_listio.dir/list_mover.cpp.o" "gcc" "src/listio/CMakeFiles/llio_listio.dir/list_mover.cpp.o.d"
  "/root/repo/src/listio/ol_nav.cpp" "src/listio/CMakeFiles/llio_listio.dir/ol_nav.cpp.o" "gcc" "src/listio/CMakeFiles/llio_listio.dir/ol_nav.cpp.o.d"
  "/root/repo/src/listio/ol_walker.cpp" "src/listio/CMakeFiles/llio_listio.dir/ol_walker.cpp.o" "gcc" "src/listio/CMakeFiles/llio_listio.dir/ol_walker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/llio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dtype/CMakeFiles/llio_dtype.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/llio_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/llio_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/llio_mpiio_base.dir/DependInfo.cmake"
  "/root/repo/build/src/fotf/CMakeFiles/llio_fotf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
