file(REMOVE_RECURSE
  "CMakeFiles/llio_listio.dir/list_engine.cpp.o"
  "CMakeFiles/llio_listio.dir/list_engine.cpp.o.d"
  "CMakeFiles/llio_listio.dir/list_mover.cpp.o"
  "CMakeFiles/llio_listio.dir/list_mover.cpp.o.d"
  "CMakeFiles/llio_listio.dir/ol_nav.cpp.o"
  "CMakeFiles/llio_listio.dir/ol_nav.cpp.o.d"
  "CMakeFiles/llio_listio.dir/ol_walker.cpp.o"
  "CMakeFiles/llio_listio.dir/ol_walker.cpp.o.d"
  "libllio_listio.a"
  "libllio_listio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llio_listio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
