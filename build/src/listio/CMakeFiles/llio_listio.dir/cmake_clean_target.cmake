file(REMOVE_RECURSE
  "libllio_listio.a"
)
