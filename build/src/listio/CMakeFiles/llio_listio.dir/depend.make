# Empty dependencies file for llio_listio.
# This may be replaced when dependencies are built.
