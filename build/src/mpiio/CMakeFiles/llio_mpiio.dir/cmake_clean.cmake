file(REMOVE_RECURSE
  "CMakeFiles/llio_mpiio.dir/file.cpp.o"
  "CMakeFiles/llio_mpiio.dir/file.cpp.o.d"
  "libllio_mpiio.a"
  "libllio_mpiio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llio_mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
