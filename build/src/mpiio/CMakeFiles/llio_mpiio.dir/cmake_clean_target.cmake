file(REMOVE_RECURSE
  "libllio_mpiio.a"
)
