# Empty compiler generated dependencies file for llio_mpiio.
# This may be replaced when dependencies are built.
