
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpiio/engine.cpp" "src/mpiio/CMakeFiles/llio_mpiio_base.dir/engine.cpp.o" "gcc" "src/mpiio/CMakeFiles/llio_mpiio_base.dir/engine.cpp.o.d"
  "/root/repo/src/mpiio/info.cpp" "src/mpiio/CMakeFiles/llio_mpiio_base.dir/info.cpp.o" "gcc" "src/mpiio/CMakeFiles/llio_mpiio_base.dir/info.cpp.o.d"
  "/root/repo/src/mpiio/sieve.cpp" "src/mpiio/CMakeFiles/llio_mpiio_base.dir/sieve.cpp.o" "gcc" "src/mpiio/CMakeFiles/llio_mpiio_base.dir/sieve.cpp.o.d"
  "/root/repo/src/mpiio/twophase.cpp" "src/mpiio/CMakeFiles/llio_mpiio_base.dir/twophase.cpp.o" "gcc" "src/mpiio/CMakeFiles/llio_mpiio_base.dir/twophase.cpp.o.d"
  "/root/repo/src/mpiio/view.cpp" "src/mpiio/CMakeFiles/llio_mpiio_base.dir/view.cpp.o" "gcc" "src/mpiio/CMakeFiles/llio_mpiio_base.dir/view.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/llio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dtype/CMakeFiles/llio_dtype.dir/DependInfo.cmake"
  "/root/repo/build/src/fotf/CMakeFiles/llio_fotf.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/llio_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/llio_pfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
