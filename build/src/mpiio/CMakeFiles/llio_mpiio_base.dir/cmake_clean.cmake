file(REMOVE_RECURSE
  "CMakeFiles/llio_mpiio_base.dir/engine.cpp.o"
  "CMakeFiles/llio_mpiio_base.dir/engine.cpp.o.d"
  "CMakeFiles/llio_mpiio_base.dir/info.cpp.o"
  "CMakeFiles/llio_mpiio_base.dir/info.cpp.o.d"
  "CMakeFiles/llio_mpiio_base.dir/sieve.cpp.o"
  "CMakeFiles/llio_mpiio_base.dir/sieve.cpp.o.d"
  "CMakeFiles/llio_mpiio_base.dir/twophase.cpp.o"
  "CMakeFiles/llio_mpiio_base.dir/twophase.cpp.o.d"
  "CMakeFiles/llio_mpiio_base.dir/view.cpp.o"
  "CMakeFiles/llio_mpiio_base.dir/view.cpp.o.d"
  "libllio_mpiio_base.a"
  "libllio_mpiio_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llio_mpiio_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
