file(REMOVE_RECURSE
  "libllio_mpiio_base.a"
)
