# Empty dependencies file for llio_mpiio_base.
# This may be replaced when dependencies are built.
