
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pfs/active_buffer_file.cpp" "src/pfs/CMakeFiles/llio_pfs.dir/active_buffer_file.cpp.o" "gcc" "src/pfs/CMakeFiles/llio_pfs.dir/active_buffer_file.cpp.o.d"
  "/root/repo/src/pfs/faulty_file.cpp" "src/pfs/CMakeFiles/llio_pfs.dir/faulty_file.cpp.o" "gcc" "src/pfs/CMakeFiles/llio_pfs.dir/faulty_file.cpp.o.d"
  "/root/repo/src/pfs/file_backend.cpp" "src/pfs/CMakeFiles/llio_pfs.dir/file_backend.cpp.o" "gcc" "src/pfs/CMakeFiles/llio_pfs.dir/file_backend.cpp.o.d"
  "/root/repo/src/pfs/mem_file.cpp" "src/pfs/CMakeFiles/llio_pfs.dir/mem_file.cpp.o" "gcc" "src/pfs/CMakeFiles/llio_pfs.dir/mem_file.cpp.o.d"
  "/root/repo/src/pfs/posix_file.cpp" "src/pfs/CMakeFiles/llio_pfs.dir/posix_file.cpp.o" "gcc" "src/pfs/CMakeFiles/llio_pfs.dir/posix_file.cpp.o.d"
  "/root/repo/src/pfs/range_lock.cpp" "src/pfs/CMakeFiles/llio_pfs.dir/range_lock.cpp.o" "gcc" "src/pfs/CMakeFiles/llio_pfs.dir/range_lock.cpp.o.d"
  "/root/repo/src/pfs/striped_file.cpp" "src/pfs/CMakeFiles/llio_pfs.dir/striped_file.cpp.o" "gcc" "src/pfs/CMakeFiles/llio_pfs.dir/striped_file.cpp.o.d"
  "/root/repo/src/pfs/throttled_file.cpp" "src/pfs/CMakeFiles/llio_pfs.dir/throttled_file.cpp.o" "gcc" "src/pfs/CMakeFiles/llio_pfs.dir/throttled_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/llio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
