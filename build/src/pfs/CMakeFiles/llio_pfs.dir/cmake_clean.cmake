file(REMOVE_RECURSE
  "CMakeFiles/llio_pfs.dir/active_buffer_file.cpp.o"
  "CMakeFiles/llio_pfs.dir/active_buffer_file.cpp.o.d"
  "CMakeFiles/llio_pfs.dir/faulty_file.cpp.o"
  "CMakeFiles/llio_pfs.dir/faulty_file.cpp.o.d"
  "CMakeFiles/llio_pfs.dir/file_backend.cpp.o"
  "CMakeFiles/llio_pfs.dir/file_backend.cpp.o.d"
  "CMakeFiles/llio_pfs.dir/mem_file.cpp.o"
  "CMakeFiles/llio_pfs.dir/mem_file.cpp.o.d"
  "CMakeFiles/llio_pfs.dir/posix_file.cpp.o"
  "CMakeFiles/llio_pfs.dir/posix_file.cpp.o.d"
  "CMakeFiles/llio_pfs.dir/range_lock.cpp.o"
  "CMakeFiles/llio_pfs.dir/range_lock.cpp.o.d"
  "CMakeFiles/llio_pfs.dir/striped_file.cpp.o"
  "CMakeFiles/llio_pfs.dir/striped_file.cpp.o.d"
  "CMakeFiles/llio_pfs.dir/throttled_file.cpp.o"
  "CMakeFiles/llio_pfs.dir/throttled_file.cpp.o.d"
  "libllio_pfs.a"
  "libllio_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llio_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
