file(REMOVE_RECURSE
  "libllio_pfs.a"
)
