# Empty compiler generated dependencies file for llio_pfs.
# This may be replaced when dependencies are built.
