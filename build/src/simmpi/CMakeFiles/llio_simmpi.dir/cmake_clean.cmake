file(REMOVE_RECURSE
  "CMakeFiles/llio_simmpi.dir/comm.cpp.o"
  "CMakeFiles/llio_simmpi.dir/comm.cpp.o.d"
  "libllio_simmpi.a"
  "libllio_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llio_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
