file(REMOVE_RECURSE
  "libllio_simmpi.a"
)
