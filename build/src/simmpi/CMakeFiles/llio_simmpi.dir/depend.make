# Empty dependencies file for llio_simmpi.
# This may be replaced when dependencies are built.
