file(REMOVE_RECURSE
  "CMakeFiles/llio_btio_tests.dir/test_btio.cpp.o"
  "CMakeFiles/llio_btio_tests.dir/test_btio.cpp.o.d"
  "llio_btio_tests"
  "llio_btio_tests.pdb"
  "llio_btio_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llio_btio_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
