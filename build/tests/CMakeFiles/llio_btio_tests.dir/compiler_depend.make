# Empty compiler generated dependencies file for llio_btio_tests.
# This may be replaced when dependencies are built.
