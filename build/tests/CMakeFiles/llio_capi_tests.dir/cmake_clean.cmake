file(REMOVE_RECURSE
  "CMakeFiles/llio_capi_tests.dir/test_capi.cpp.o"
  "CMakeFiles/llio_capi_tests.dir/test_capi.cpp.o.d"
  "llio_capi_tests"
  "llio_capi_tests.pdb"
  "llio_capi_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llio_capi_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
