# Empty dependencies file for llio_capi_tests.
# This may be replaced when dependencies are built.
