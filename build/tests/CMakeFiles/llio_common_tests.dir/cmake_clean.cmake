file(REMOVE_RECURSE
  "CMakeFiles/llio_common_tests.dir/test_common.cpp.o"
  "CMakeFiles/llio_common_tests.dir/test_common.cpp.o.d"
  "llio_common_tests"
  "llio_common_tests.pdb"
  "llio_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llio_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
