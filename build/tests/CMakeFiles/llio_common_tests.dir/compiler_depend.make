# Empty compiler generated dependencies file for llio_common_tests.
# This may be replaced when dependencies are built.
