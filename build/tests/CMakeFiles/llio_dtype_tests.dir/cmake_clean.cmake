file(REMOVE_RECURSE
  "CMakeFiles/llio_dtype_tests.dir/test_darray.cpp.o"
  "CMakeFiles/llio_dtype_tests.dir/test_darray.cpp.o.d"
  "CMakeFiles/llio_dtype_tests.dir/test_dtype.cpp.o"
  "CMakeFiles/llio_dtype_tests.dir/test_dtype.cpp.o.d"
  "CMakeFiles/llio_dtype_tests.dir/test_flatten.cpp.o"
  "CMakeFiles/llio_dtype_tests.dir/test_flatten.cpp.o.d"
  "CMakeFiles/llio_dtype_tests.dir/test_normalize.cpp.o"
  "CMakeFiles/llio_dtype_tests.dir/test_normalize.cpp.o.d"
  "CMakeFiles/llio_dtype_tests.dir/test_serialize.cpp.o"
  "CMakeFiles/llio_dtype_tests.dir/test_serialize.cpp.o.d"
  "llio_dtype_tests"
  "llio_dtype_tests.pdb"
  "llio_dtype_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llio_dtype_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
