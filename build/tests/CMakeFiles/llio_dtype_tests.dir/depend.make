# Empty dependencies file for llio_dtype_tests.
# This may be replaced when dependencies are built.
