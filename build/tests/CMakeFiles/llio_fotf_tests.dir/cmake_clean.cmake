file(REMOVE_RECURSE
  "CMakeFiles/llio_fotf_tests.dir/test_cursor.cpp.o"
  "CMakeFiles/llio_fotf_tests.dir/test_cursor.cpp.o.d"
  "CMakeFiles/llio_fotf_tests.dir/test_mpi_pack.cpp.o"
  "CMakeFiles/llio_fotf_tests.dir/test_mpi_pack.cpp.o.d"
  "CMakeFiles/llio_fotf_tests.dir/test_navigate.cpp.o"
  "CMakeFiles/llio_fotf_tests.dir/test_navigate.cpp.o.d"
  "CMakeFiles/llio_fotf_tests.dir/test_pack.cpp.o"
  "CMakeFiles/llio_fotf_tests.dir/test_pack.cpp.o.d"
  "llio_fotf_tests"
  "llio_fotf_tests.pdb"
  "llio_fotf_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llio_fotf_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
