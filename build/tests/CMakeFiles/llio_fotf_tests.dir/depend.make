# Empty dependencies file for llio_fotf_tests.
# This may be replaced when dependencies are built.
