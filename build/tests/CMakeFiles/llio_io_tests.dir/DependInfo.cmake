
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_collective_io.cpp" "tests/CMakeFiles/llio_io_tests.dir/test_collective_io.cpp.o" "gcc" "tests/CMakeFiles/llio_io_tests.dir/test_collective_io.cpp.o.d"
  "/root/repo/tests/test_equivalence.cpp" "tests/CMakeFiles/llio_io_tests.dir/test_equivalence.cpp.o" "gcc" "tests/CMakeFiles/llio_io_tests.dir/test_equivalence.cpp.o.d"
  "/root/repo/tests/test_fault.cpp" "tests/CMakeFiles/llio_io_tests.dir/test_fault.cpp.o" "gcc" "tests/CMakeFiles/llio_io_tests.dir/test_fault.cpp.o.d"
  "/root/repo/tests/test_file.cpp" "tests/CMakeFiles/llio_io_tests.dir/test_file.cpp.o" "gcc" "tests/CMakeFiles/llio_io_tests.dir/test_file.cpp.o.d"
  "/root/repo/tests/test_indep_io.cpp" "tests/CMakeFiles/llio_io_tests.dir/test_indep_io.cpp.o" "gcc" "tests/CMakeFiles/llio_io_tests.dir/test_indep_io.cpp.o.d"
  "/root/repo/tests/test_info.cpp" "tests/CMakeFiles/llio_io_tests.dir/test_info.cpp.o" "gcc" "tests/CMakeFiles/llio_io_tests.dir/test_info.cpp.o.d"
  "/root/repo/tests/test_listless_nav.cpp" "tests/CMakeFiles/llio_io_tests.dir/test_listless_nav.cpp.o" "gcc" "tests/CMakeFiles/llio_io_tests.dir/test_listless_nav.cpp.o.d"
  "/root/repo/tests/test_model_fuzz.cpp" "tests/CMakeFiles/llio_io_tests.dir/test_model_fuzz.cpp.o" "gcc" "tests/CMakeFiles/llio_io_tests.dir/test_model_fuzz.cpp.o.d"
  "/root/repo/tests/test_shared_fp.cpp" "tests/CMakeFiles/llio_io_tests.dir/test_shared_fp.cpp.o" "gcc" "tests/CMakeFiles/llio_io_tests.dir/test_shared_fp.cpp.o.d"
  "/root/repo/tests/test_strategies.cpp" "tests/CMakeFiles/llio_io_tests.dir/test_strategies.cpp.o" "gcc" "tests/CMakeFiles/llio_io_tests.dir/test_strategies.cpp.o.d"
  "/root/repo/tests/test_twophase.cpp" "tests/CMakeFiles/llio_io_tests.dir/test_twophase.cpp.o" "gcc" "tests/CMakeFiles/llio_io_tests.dir/test_twophase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/btio/CMakeFiles/llio_btio.dir/DependInfo.cmake"
  "/root/repo/build/src/capi/CMakeFiles/llio_capi.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/llio_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/listio/CMakeFiles/llio_listio.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/llio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/llio_mpiio_base.dir/DependInfo.cmake"
  "/root/repo/build/src/fotf/CMakeFiles/llio_fotf.dir/DependInfo.cmake"
  "/root/repo/build/src/dtype/CMakeFiles/llio_dtype.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/llio_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/llio_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/llio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
