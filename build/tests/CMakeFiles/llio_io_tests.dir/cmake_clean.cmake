file(REMOVE_RECURSE
  "CMakeFiles/llio_io_tests.dir/test_collective_io.cpp.o"
  "CMakeFiles/llio_io_tests.dir/test_collective_io.cpp.o.d"
  "CMakeFiles/llio_io_tests.dir/test_equivalence.cpp.o"
  "CMakeFiles/llio_io_tests.dir/test_equivalence.cpp.o.d"
  "CMakeFiles/llio_io_tests.dir/test_fault.cpp.o"
  "CMakeFiles/llio_io_tests.dir/test_fault.cpp.o.d"
  "CMakeFiles/llio_io_tests.dir/test_file.cpp.o"
  "CMakeFiles/llio_io_tests.dir/test_file.cpp.o.d"
  "CMakeFiles/llio_io_tests.dir/test_indep_io.cpp.o"
  "CMakeFiles/llio_io_tests.dir/test_indep_io.cpp.o.d"
  "CMakeFiles/llio_io_tests.dir/test_info.cpp.o"
  "CMakeFiles/llio_io_tests.dir/test_info.cpp.o.d"
  "CMakeFiles/llio_io_tests.dir/test_listless_nav.cpp.o"
  "CMakeFiles/llio_io_tests.dir/test_listless_nav.cpp.o.d"
  "CMakeFiles/llio_io_tests.dir/test_model_fuzz.cpp.o"
  "CMakeFiles/llio_io_tests.dir/test_model_fuzz.cpp.o.d"
  "CMakeFiles/llio_io_tests.dir/test_shared_fp.cpp.o"
  "CMakeFiles/llio_io_tests.dir/test_shared_fp.cpp.o.d"
  "CMakeFiles/llio_io_tests.dir/test_strategies.cpp.o"
  "CMakeFiles/llio_io_tests.dir/test_strategies.cpp.o.d"
  "CMakeFiles/llio_io_tests.dir/test_twophase.cpp.o"
  "CMakeFiles/llio_io_tests.dir/test_twophase.cpp.o.d"
  "llio_io_tests"
  "llio_io_tests.pdb"
  "llio_io_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llio_io_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
