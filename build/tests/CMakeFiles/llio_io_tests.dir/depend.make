# Empty dependencies file for llio_io_tests.
# This may be replaced when dependencies are built.
