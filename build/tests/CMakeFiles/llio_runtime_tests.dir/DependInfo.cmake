
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_pfs.cpp" "tests/CMakeFiles/llio_runtime_tests.dir/test_pfs.cpp.o" "gcc" "tests/CMakeFiles/llio_runtime_tests.dir/test_pfs.cpp.o.d"
  "/root/repo/tests/test_simmpi.cpp" "tests/CMakeFiles/llio_runtime_tests.dir/test_simmpi.cpp.o" "gcc" "tests/CMakeFiles/llio_runtime_tests.dir/test_simmpi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/btio/CMakeFiles/llio_btio.dir/DependInfo.cmake"
  "/root/repo/build/src/capi/CMakeFiles/llio_capi.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/llio_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/listio/CMakeFiles/llio_listio.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/llio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/llio_mpiio_base.dir/DependInfo.cmake"
  "/root/repo/build/src/fotf/CMakeFiles/llio_fotf.dir/DependInfo.cmake"
  "/root/repo/build/src/dtype/CMakeFiles/llio_dtype.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/llio_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/llio_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/llio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
