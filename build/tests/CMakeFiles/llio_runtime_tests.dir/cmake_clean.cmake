file(REMOVE_RECURSE
  "CMakeFiles/llio_runtime_tests.dir/test_pfs.cpp.o"
  "CMakeFiles/llio_runtime_tests.dir/test_pfs.cpp.o.d"
  "CMakeFiles/llio_runtime_tests.dir/test_simmpi.cpp.o"
  "CMakeFiles/llio_runtime_tests.dir/test_simmpi.cpp.o.d"
  "llio_runtime_tests"
  "llio_runtime_tests.pdb"
  "llio_runtime_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llio_runtime_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
