# Empty compiler generated dependencies file for llio_runtime_tests.
# This may be replaced when dependencies are built.
