# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/llio_common_tests[1]_include.cmake")
include("/root/repo/build/tests/llio_dtype_tests[1]_include.cmake")
include("/root/repo/build/tests/llio_fotf_tests[1]_include.cmake")
include("/root/repo/build/tests/llio_runtime_tests[1]_include.cmake")
include("/root/repo/build/tests/llio_io_tests[1]_include.cmake")
include("/root/repo/build/tests/llio_btio_tests[1]_include.cmake")
include("/root/repo/build/tests/llio_capi_tests[1]_include.cmake")
