// Distributed dense matrix checkpoint: a column-block-cyclic M x N matrix
// (ScaLAPACK-style distribution) is written to a single file in global
// column-major order with one collective call, using a subarray-per-rank
// fileview.  The example runs the same checkpoint with both engines and
// prints the time and the per-operation overhead statistics, showing the
// paper's effect on a workload the intro motivates (scientific arrays
// scattered over processes).
//
//   build/examples/block_cyclic_matrix [M N block_cols P]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/timer.hpp"
#include "dtype/datatype.hpp"
#include "mpiio/file.hpp"
#include "pfs/mem_file.hpp"
#include "simmpi/comm.hpp"

using namespace llio;

namespace {

/// Fileview of rank r: all columns c with (c / bc) % P == r, expressed
/// directly as an HPF block-cyclic distributed array
/// (MPI_Type_create_darray): rows undistributed, columns cyclic(bc) over
/// a 1 x P process grid, Fortran (column-major) storage.
dt::Type cyclic_filetype(Off m, Off n, Off bc, int nprocs, int rank) {
  const Off gsizes[] = {m, n};
  const dt::Distrib dist[] = {dt::Distrib::None, dt::Distrib::Cyclic};
  const Off dargs[] = {dt::kDfltDarg, bc};
  const Off psizes[] = {1, nprocs};
  return dt::darray(nprocs, rank, gsizes, dist, dargs, psizes,
                    dt::Order::Fortran, dt::double_());
}

double global_value(Off row, Off col) {
  return static_cast<double>(col * 100000 + row);
}

}  // namespace

int main(int argc, char** argv) {
  const Off m = argc > 1 ? std::atoll(argv[1]) : 256;   // rows
  const Off n = argc > 2 ? std::atoll(argv[2]) : 240;   // columns
  const Off bc = argc > 3 ? std::atoll(argv[3]) : 4;    // block width
  const int P = argc > 4 ? std::atoi(argv[4]) : 4;

  std::printf("block-cyclic matrix checkpoint: %lld x %lld doubles, "
              "block width %lld, P=%d\n",
              (long long)m, (long long)n, (long long)bc, P);

  for (auto method : {mpiio::Method::ListBased, mpiio::Method::Listless}) {
    auto storage = pfs::MemFile::create();
    double io_seconds = 0;
    Off list_bytes = 0;
    bool ok = true;

    sim::Runtime::run(P, [&](sim::Comm& comm) {
      // Local columns, packed dense in owner order (column-major).
      std::vector<double> local;
      for (Off c = 0; c < n; ++c) {
        if ((c / bc) % P != comm.rank()) continue;
        for (Off r = 0; r < m; ++r) local.push_back(global_value(r, c));
      }

      mpiio::Options opts;
      opts.method = method;
      mpiio::File file = mpiio::File::open(comm, storage, opts);
      file.set_view(0, dt::double_(), cyclic_filetype(m, n, bc, P, comm.rank()));

      comm.barrier();
      WallTimer t;
      file.write_at_all(0, local.data(), to_off(local.size()), dt::double_());
      const Off ns = comm.allreduce_max(static_cast<Off>(t.seconds() * 1e9));

      // Restore into a fresh buffer and verify.
      std::vector<double> restored(local.size(), -1.0);
      file.read_at_all(0, restored.data(), to_off(restored.size()),
                       dt::double_());
      if (restored != local) ok = false;

      if (comm.rank() == 0) io_seconds = static_cast<double>(ns) / 1e9;
      list_bytes += file.last_stats().list_bytes_sent;
    });

    // Spot-check the file image in global order.
    const ByteVec img = storage->contents();
    const double* vals = reinterpret_cast<const double*>(img.data());
    for (Off c = 0; c < n && ok; c += 37)
      for (Off r = 0; r < m; r += 97)
        if (vals[c * m + r] != global_value(r, c)) ok = false;

    std::printf("  %-10s  checkpoint %6.2f ms   %s\n",
                mpiio::method_name(method), io_seconds * 1e3,
                ok ? "verified" : "MISMATCH");
  }
  return 0;
}
