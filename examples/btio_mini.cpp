// Mini BTIO driver: the NAS BT I/O pattern on a small grid, showing the
// btio::Pattern API end to end — diagonal multipartitioning, per-cell
// subarray fileviews, ghost-padded memtypes, and one collective write per
// dump step.  Prints the access-pattern characterization (the paper's
// Table 2 quantities) and verifies the written field.
//
//   build/examples/btio_mini [grid_n P steps]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "btio/pattern.hpp"
#include "dtype/datatype.hpp"
#include "mpiio/file.hpp"
#include "pfs/mem_file.hpp"
#include "simmpi/comm.hpp"

using namespace llio;
using btio::Pattern;

int main(int argc, char** argv) {
  const Off n = argc > 1 ? std::atoll(argv[1]) : 24;  // class W grid
  const int P = argc > 2 ? std::atoi(argv[2]) : 4;
  const int steps = argc > 3 ? std::atoi(argv[3]) : 2;

  {
    const Pattern pat(n, P, 0);
    std::printf("BTIO mini: grid %lld^3, P=%d (q=%d), %d dump steps\n",
                (long long)n, P, pat.q(), steps);
    std::printf("  per step: %.2f MB total; rank 0 writes %lld blocks of "
                "~%.0f bytes\n",
                static_cast<double>(pat.global_step_bytes()) / 1e6,
                (long long)pat.nblock(), pat.avg_sblock_bytes());
  }

  auto storage = pfs::MemFile::create();
  sim::Runtime::run(P, [&](sim::Comm& comm) {
    const Pattern pat(n, P, comm.rank(), /*ghost=*/2);
    mpiio::File f = mpiio::File::open(comm, storage,
                                      {.method = mpiio::Method::Listless});
    f.set_view(0, dt::double_(), pat.filetype());
    std::vector<double> field(to_size(pat.padded_doubles()));
    for (int s = 0; s < steps; ++s) {
      pat.fill(field, s);  // stands in for the BT solver update
      f.write_at_all(s * pat.local_doubles(), field.data(), 1, pat.memtype());
    }
  });

  // Verify the full file against the reference field.
  bool ok = storage->size() == Off{steps} * 5 * n * n * n * 8;
  const ByteVec img = storage->contents();
  std::vector<double> ref(to_size(Off{5} * n * n * n));
  for (int s = 0; s < steps && ok; ++s) {
    Pattern::reference_step(ref, n, s);
    const double* got = reinterpret_cast<const double*>(img.data()) +
                        Off{s} * to_off(ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
      if (got[i] != ref[i]) {
        ok = false;
        break;
      }
  }
  std::printf("  wrote %.2f MB, field %s\n",
              static_cast<double>(storage->size()) / 1e6,
              ok ? "verified" : "MISMATCH");
  return ok ? 0 : 1;
}
