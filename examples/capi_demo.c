/* Pure C client of the llio C API: four ranks partition a file with
 * strided fileviews (the paper's Fig. 4 pattern) and move their data with
 * one collective call each — the MPI-IO workflow, without C++.
 *
 *   build/examples/capi_demo
 */
#include <stdio.h>
#include <stdlib.h>

#include "capi/llio_mpi.h"

#define CHECK(call)                                                  \
  do {                                                               \
    int rc_ = (call);                                                \
    if (rc_ != LLIO_SUCCESS) {                                       \
      fprintf(stderr, "%s failed (%d): %s\n", #call, rc_,            \
              llio_last_error());                                    \
      exit(1);                                                       \
    }                                                                \
  } while (0)

#define NBLOCK 8
#define BLOCK_DOUBLES 8
#define NPROCS 4

static void body(LLIO_Comm comm, void* user) {
  LLIO_Storage storage = (LLIO_Storage)user;
  int rank, size;
  CHECK(llio_comm_rank(comm, &rank));
  CHECK(llio_comm_size(comm, &size));

  LLIO_File file;
  CHECK(llio_file_open(comm, storage, LLIO_METHOD_LISTLESS, &file));

  /* Fileview: every size-th block of BLOCK_DOUBLES doubles, shifted by
   * rank (vector + resized, as MPI code would build it). */
  LLIO_Datatype dbl, vec, placed, filetype;
  CHECK(llio_type_double(&dbl));
  CHECK(llio_type_vector(NBLOCK, BLOCK_DOUBLES, size * BLOCK_DOUBLES, dbl,
                         &vec));
  {
    llio_offset bl = 1;
    llio_offset disp = (llio_offset)rank * BLOCK_DOUBLES * 8;
    CHECK(llio_type_create_hindexed(1, &bl, &disp, vec, &placed));
  }
  CHECK(llio_type_create_resized(
      placed, 0, (llio_offset)NBLOCK * size * BLOCK_DOUBLES * 8, &filetype));
  CHECK(llio_file_set_view(file, 0, dbl, filetype));

  /* Write my values collectively, read them back, verify. */
  {
    enum { N = NBLOCK * BLOCK_DOUBLES };
    double mine[N], back[N];
    llio_offset moved;
    int i, ok = 1;
    for (i = 0; i < N; ++i) mine[i] = 1000.0 * rank + i;
    CHECK(llio_file_write_at_all(file, 0, mine, N, dbl, &moved));
    if (moved != (llio_offset)N * 8) ok = 0;
    CHECK(llio_file_read_at_all(file, 0, back, N, dbl, &moved));
    for (i = 0; i < N; ++i)
      if (back[i] != mine[i]) ok = 0;
    if (rank == 0)
      printf("rank 0: wrote+read %d doubles collectively (%s)\n", N,
             ok ? "verified" : "MISMATCH");
    if (!ok) exit(1);
  }

  CHECK(llio_type_free(&dbl));
  CHECK(llio_type_free(&vec));
  CHECK(llio_type_free(&placed));
  CHECK(llio_type_free(&filetype));
  CHECK(llio_file_close(&file));
}

int main(void) {
  LLIO_Storage storage;
  llio_offset size;
  CHECK(llio_storage_mem_create(&storage));
  CHECK(llio_run(NPROCS, body, storage));
  CHECK(llio_storage_size(storage, &size));
  printf("file holds %lld bytes across %d interleaved rank partitions\n",
         (long long)size, NPROCS);
  CHECK(llio_storage_free(&storage));
  return 0;
}
