// Shared event log: every rank appends fixed-size records to one file
// through the *shared file pointer* — no offsets coordinated by the
// application.  Unordered appends (write_shared) interleave freely;
// per-phase ordered flushes (write_ordered) serialize by rank, giving a
// deterministic epoch layout.  Also shows opening with MPI_Info-style
// hints.
//
//   build/examples/event_log [events_per_rank P]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include "dtype/datatype.hpp"
#include "mpiio/file.hpp"
#include "pfs/mem_file.hpp"
#include "simmpi/comm.hpp"

using namespace llio;

namespace {

struct Event {
  std::int32_t rank;
  std::int32_t kind;
  std::int64_t payload;
};
static_assert(sizeof(Event) == 16);

}  // namespace

int main(int argc, char** argv) {
  const Off nper = argc > 1 ? std::atoll(argv[1]) : 500;
  const int P = argc > 2 ? std::atoi(argv[2]) : 3;

  auto storage = pfs::MemFile::create();
  sim::Runtime::run(P, [&](sim::Comm& comm) {
    // Hints: force the list-based baseline off and size the buffers.
    mpiio::File log = mpiio::File::open(
        comm, storage,
        mpiio::Info{{"llio_method", "listless"},
                    {"cb_buffer_size", "262144"}});

    // Phase 1: free-for-all appends.
    for (Off i = 0; i < nper; ++i) {
      Event e{comm.rank(), 1, i};
      log.write_shared(&e, sizeof(Event), dt::byte());
    }
    comm.barrier();

    // Phase 2: one ordered epoch marker per rank (rank order in the file).
    Event marker{comm.rank(), 2, -1};
    log.write_ordered(&marker, sizeof(Event), dt::byte());
  });

  // Audit the log.
  const ByteVec img = storage->contents();
  const auto* events = reinterpret_cast<const Event*>(img.data());
  const std::size_t n = img.size() / sizeof(Event);
  std::map<int, Off> per_rank;
  bool ok = n == static_cast<std::size_t>(P) * (to_size(nper) + 1);
  // The last P records are the ordered epoch markers, in rank order.
  for (int r = 0; r < P && ok; ++r) {
    const Event& e = events[n - static_cast<std::size_t>(P - r)];
    if (e.kind != 2 || e.rank != r) ok = false;
  }
  for (std::size_t i = 0; i + static_cast<std::size_t>(P) < n; ++i) {
    if (events[i].kind != 1) ok = false;
    per_rank[events[i].rank]++;
  }
  for (int r = 0; r < P && ok; ++r)
    if (per_rank[r] != nper) ok = false;

  std::printf("event log: %zu records from %d ranks (%lld each + 1 ordered "
              "marker) — %s\n",
              n, P, (long long)nper, ok ? "verified" : "MISMATCH");
  return ok ? 0 : 1;
}
