// Particle checkpoint with a struct memtype: each rank holds an
// array-of-structs of particles; the checkpoint stores only id and
// position (skipping velocity and padding) into a compact shared file,
// with ranks interleaved round-robin.  Exercises the nc-nc path with a
// heterogeneous struct memtype — the "filter" role of MPI datatypes the
// paper's introduction describes.
//
//   build/examples/particle_checkpoint [particles_per_rank P]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "dtype/datatype.hpp"
#include "mpiio/file.hpp"
#include "pfs/mem_file.hpp"
#include "simmpi/comm.hpp"

using namespace llio;

namespace {

struct Particle {
  std::int64_t id;
  double pos[3];
  double vel[3];   // not checkpointed
  double charge;   // not checkpointed
};

constexpr Off kRecordBytes = 8 + 3 * 8;  // id + pos in the file

/// Memtype selecting {id, pos} out of one Particle (extent = sizeof).
dt::Type particle_memtype() {
  const Off bls[] = {1, 3};
  const Off ds[] = {offsetof(Particle, id), offsetof(Particle, pos)};
  const dt::Type kids[] = {dt::long_(), dt::double_()};
  return dt::resized(dt::struct_(bls, ds, kids), 0, sizeof(Particle));
}

/// Fileview of rank r: record slots r, r+P, r+2P, ... of the packed file.
dt::Type slot_filetype(int nprocs, int rank) {
  const dt::Type rec = dt::contiguous(kRecordBytes, dt::byte());
  const Off bls[] = {1};
  const Off ds[] = {Off{rank} * kRecordBytes};
  return dt::resized(dt::hindexed(bls, ds, rec), 0,
                     Off{nprocs} * kRecordBytes);
}

}  // namespace

int main(int argc, char** argv) {
  const Off nper = argc > 1 ? std::atoll(argv[1]) : 1000;
  const int P = argc > 2 ? std::atoi(argv[2]) : 3;

  auto storage = pfs::MemFile::create();
  bool ok = true;

  sim::Runtime::run(P, [&](sim::Comm& comm) {
    std::vector<Particle> particles(to_size(nper));
    for (Off i = 0; i < nper; ++i) {
      Particle& p = particles[to_size(i)];
      p.id = comm.rank() * 1000000 + i;
      for (int d = 0; d < 3; ++d) {
        p.pos[d] = 0.5 * static_cast<double>(i) + d;
        p.vel[d] = -1.0;  // must never reach the file
      }
      p.charge = 42.0;
    }

    mpiio::File file = mpiio::File::open(comm, storage,
                                         {.method = mpiio::Method::Listless});
    file.set_view(0, dt::byte(), slot_filetype(P, comm.rank()));
    file.write_at_all(0, particles.data(), nper, particle_memtype());

    // Restore into zeroed particles: id/pos come back, vel/charge stay 0.
    std::vector<Particle> restored(to_size(nper), Particle{});
    file.read_at_all(0, restored.data(), nper, particle_memtype());
    for (Off i = 0; i < nper; ++i) {
      const Particle& a = particles[to_size(i)];
      const Particle& b = restored[to_size(i)];
      if (a.id != b.id || a.pos[0] != b.pos[0] || a.pos[2] != b.pos[2] ||
          b.vel[0] != 0.0 || b.charge != 0.0)
        ok = false;
    }
  });

  const Off expect = Off{P} * nper * kRecordBytes;
  std::printf("checkpoint of %lld particles x %d ranks: %lld bytes "
              "(%.0f%% of the in-memory size) — %s\n",
              (long long)nper, P, (long long)storage->size(),
              100.0 * static_cast<double>(expect) /
                  static_cast<double>(Off{P} * nper *
                                      to_off(sizeof(Particle))),
              (ok && storage->size() == expect) ? "verified" : "MISMATCH");
  return 0;
}
