// Quickstart: four ranks partition a shared file with strided fileviews
// and move data with a single collective call each — the core llio
// workflow in ~60 lines.
//
//   build/examples/quickstart
#include <cstdio>
#include <vector>

#include "dtype/datatype.hpp"
#include "mpiio/file.hpp"
#include "pfs/mem_file.hpp"
#include "simmpi/comm.hpp"

using namespace llio;

int main() {
  const int P = 4;          // simulated MPI processes (threads)
  const Off nblock = 8;     // blocks each rank owns per filetype instance
  const Off ndoubles = 64;  // doubles each rank writes

  // A shared "file" in memory; swap for pfs::PosixFile::open(path) to use
  // a real file.
  auto storage = pfs::MemFile::create();

  sim::Runtime::run(P, [&](sim::Comm& comm) {
    // Open with the listless engine (the paper's contribution); pass
    // Method::ListBased to feel the ROMIO-style baseline instead.
    mpiio::Options opts;
    opts.method = mpiio::Method::Listless;
    mpiio::File file = mpiio::File::open(comm, storage, opts);

    // Fileview: rank r sees every P-th block of 8 doubles (Fig. 4 of the
    // paper).  All ranks call the same write with the same offset, yet
    // write disjoint bytes.
    const Off block_bytes = 8 * sizeof(double);
    dt::Type blocks =
        dt::hvector(nblock, block_bytes, P * block_bytes, dt::byte());
    const Off bls[] = {1};
    const Off ds[] = {comm.rank() * block_bytes};
    dt::Type filetype = dt::resized(dt::hindexed(bls, ds, blocks), 0,
                                    nblock * P * block_bytes);
    file.set_view(/*disp=*/0, dt::double_(), filetype);

    // Each rank writes its own values...
    std::vector<double> mine(ndoubles);
    for (Off i = 0; i < ndoubles; ++i)
      mine[static_cast<std::size_t>(i)] = 100.0 * comm.rank() + double(i);
    file.write_at_all(0, mine.data(), ndoubles, dt::double_());

    // ...and reads them back through the same view.
    std::vector<double> back(ndoubles, -1.0);
    file.read_at_all(0, back.data(), ndoubles, dt::double_());

    bool ok = back == mine;
    if (comm.rank() == 0) {
      std::printf("rank 0 read back: %.0f %.0f %.0f ... (%s)\n", back[0],
                  back[1], back[2], ok ? "verified" : "MISMATCH");
    }
  });

  std::printf("file holds %lld bytes; rank 1's first block starts at byte "
              "64 with value %.0f\n",
              static_cast<long long>(storage->size()),
              *reinterpret_cast<const double*>(storage->contents().data() +
                                               64));
  return 0;
}
