// Visualization-style reads from a 3D volume: the same file, accessed "in
// different manners" (the paper's §5 future-work scenario for complex
// multi-dimensional filetypes).
//
// A float volume of n^3 voxels is written once; P ranks then collectively
// read three access shapes through subarray fileviews:
//   * z-slabs   - contiguous runs of whole xy-planes (large blocks),
//   * y-slices  - one xz-plane each, strided by whole planes,
//   * tiles     - small sub-cubes (tiny scattered runs; the nc worst case).
// Both engines run each shape; values are verified against the generator.
//
//   build/examples/volume_tiles [n P]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/timer.hpp"
#include "dtype/datatype.hpp"
#include "mpiio/file.hpp"
#include "pfs/mem_file.hpp"
#include "simmpi/comm.hpp"

using namespace llio;

namespace {

float voxel(Off x, Off y, Off z, Off n) {
  return static_cast<float>(x + n * (y + n * z));
}

/// Subarray fileview of a [x0,x1) x [y0,y1) x [z0,z1) box of the volume
/// (Fortran order: x fastest).
dt::Type box_view(Off n, Off x0, Off x1, Off y0, Off y1, Off z0, Off z1) {
  const Off sizes[] = {n, n, n};
  const Off sub[] = {x1 - x0, y1 - y0, z1 - z0};
  const Off starts[] = {x0, y0, z0};
  return dt::subarray(sizes, sub, starts, dt::Order::Fortran, dt::float_());
}

struct Shape {
  const char* name;
  // The box rank r reads.
  Off x0, x1, y0, y1, z0, z1;
};

bool read_shape(sim::Comm& comm, mpiio::File& f, Off n, const Shape& s,
                double* seconds) {
  f.set_view(0, dt::float_(), box_view(n, s.x0, s.x1, s.y0, s.y1, s.z0, s.z1));
  const Off count = (s.x1 - s.x0) * (s.y1 - s.y0) * (s.z1 - s.z0);
  std::vector<float> out(to_size(count), -1.0f);
  comm.barrier();
  WallTimer t;
  f.read_at_all(0, out.data(), count, dt::float_());
  const Off ns = comm.allreduce_max(static_cast<Off>(t.seconds() * 1e9));
  *seconds = static_cast<double>(ns) / 1e9;
  std::size_t at = 0;
  for (Off z = s.z0; z < s.z1; ++z)
    for (Off y = s.y0; y < s.y1; ++y)
      for (Off x = s.x0; x < s.x1; ++x)
        if (out[at++] != voxel(x, y, z, n)) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Off n = argc > 1 ? std::atoll(argv[1]) : 96;
  const int P = argc > 2 ? std::atoi(argv[2]) : 4;
  std::printf("volume tile reader: %lld^3 float volume, P=%d\n",
              (long long)n, P);

  auto storage = pfs::MemFile::create();
  {
    // Produce the volume once (dense write from rank 0).
    std::vector<float> vol(to_size(n * n * n));
    std::size_t at = 0;
    for (Off z = 0; z < n; ++z)
      for (Off y = 0; y < n; ++y)
        for (Off x = 0; x < n; ++x) vol[at++] = voxel(x, y, z, n);
    storage->pwrite(0, ConstByteSpan(as_bytes(vol.data()), vol.size() * 4));
  }

  for (auto method : {mpiio::Method::ListBased, mpiio::Method::Listless}) {
    sim::Runtime::run(P, [&](sim::Comm& comm) {
      mpiio::Options o;
      o.method = method;
      mpiio::File f = mpiio::File::open(comm, storage, o);
      const int r = comm.rank();
      const Off slab = n / P;
      const Off tile = std::max<Off>(4, n / 12);
      const Shape shapes[] = {
          {"z-slab", 0, n, 0, n, r * slab, (r + 1) * slab},
          {"y-slice", 0, n, Off{r} * (n / P), Off{r} * (n / P) + 1, 0, n},
          {"tile", Off{r} % 2 * tile, Off{r} % 2 * tile + tile,
           Off{r} / 2 * tile, Off{r} / 2 * tile + tile, tile, 2 * tile},
      };
      for (const Shape& s : shapes) {
        double secs = 0;
        const bool ok = read_shape(comm, f, n, s, &secs);
        if (comm.rank() == 0) {
          std::printf("  %-10s %-8s %8.2f ms  %s\n",
                      mpiio::method_name(method), s.name, secs * 1e3,
                      ok ? "verified" : "MISMATCH");
        }
        if (!ok) std::exit(1);
      }
    });
  }
  return 0;
}
