#include "adapt/advisor.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <mutex>

#include "common/error.hpp"
#include "common/format.hpp"
#include "obs/snapshot.hpp"

namespace llio::adapt {

const char* policy_name(AdaptConfig::Policy p) noexcept {
  switch (p) {
    case AdaptConfig::Policy::Static: return "static";
    case AdaptConfig::Policy::Greedy: return "greedy";
    case AdaptConfig::Policy::Hysteresis: return "hysteresis";
  }
  return "hysteresis";
}

namespace {

/// log2 size class: ops within a factor of two share a cost-model key.
int size_class_of(long long n) {
  int c = 0;
  while (n > 1) {
    n >>= 1;
    ++c;
  }
  return c;
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ULL;
  return h;
}

/// Arm encoding: 4 toggle bits + three 4-bit candidate-list indices.
/// Stable for a given (sanitized) AdaptConfig, which is identical on
/// every rank of a handle — so an encoded arm travels over bcast.
constexpr std::uint16_t kMethodBit = 1 << 0;  ///< 1 = list-based
constexpr std::uint16_t kRouteBit = 1 << 1;   ///< 1 = independent route
constexpr std::uint16_t kZcOffBit = 1 << 2;   ///< 1 = zerocopy off

std::size_t index_of_int(const std::vector<int>& xs, int v) {
  const auto it = std::find(xs.begin(), xs.end(), v);
  return it == xs.end() ? 0 : static_cast<std::size_t>(it - xs.begin());
}

std::size_t index_of_off(const std::vector<Off>& xs, Off v) {
  const auto it = std::find(xs.begin(), xs.end(), v);
  return it == xs.end() ? 0 : static_cast<std::size_t>(it - xs.begin());
}

class PolicyEngine final : public Advisor {
 public:
  explicit PolicyEngine(AdaptConfig cfg) : cfg_(std::move(cfg)) {
    base_arm_ = encode(cfg_.base);
  }

  const AdaptConfig& config() const override { return cfg_; }
  const char* name() const override { return policy_name(cfg_.policy); }

  Decision advise(const OpContext& ctx) override {
    std::lock_guard lock(mu_);
    KeyState& ks = key_state(ctx);
    ++ks.ops;
    Decision d;
    if (cfg_.policy == AdaptConfig::Policy::Static) {
      d.arm = base_arm_;
      d.tuning = cfg_.base;
      d.incumbent_cost = ewma_of(ks, base_arm_);
      return d;
    }
    d.incumbent_cost = ewma_of(ks, ks.incumbent);
    d.arm = ks.incumbent;
    if (cfg_.epsilon > 0) {
      // Deterministic epsilon schedule: every round(1/eps)-th op of this
      // key probes a non-incumbent arm.  Two refinements keep the
      // steady-state probe drag low without giving up responsiveness:
      //
      //   confirmation — while a challenger holds a margin-beating
      //   streak, probe slots re-test *it* at the base cadence instead
      //   of continuing the round-robin, so the `window` confirmations
      //   a switch needs arrive within window*period ops rather than
      //   one per full neighbor cycle.
      //
      //   backoff — each full neighbor cycle that ends without a switch
      //   doubles this key's probe period (probe_backoff_max caps the
      //   doublings; a switch resets them), so a converged key all but
      //   stops exploring instead of forever paying for probes of arms
      //   it has already rejected.
      const std::uint64_t base_period = std::max<std::uint64_t>(
          2, static_cast<std::uint64_t>(std::llround(1.0 / cfg_.epsilon)));
      if (ks.challenger != 0 && ks.ops % base_period == 0) {
        d.arm = ks.challenger;
        d.probe = true;
      } else if (ks.ops % (base_period << ks.backoff) == 0) {
        const std::vector<std::uint16_t> nb = neighbors(ks.incumbent, ctx);
        // Per-arm cooldown on top of the ring: an arm whose last probe
        // lost by more than kPenaltyRatio sits out exponentially many
        // probe slots (observe() set its wait), so probe slots
        // concentrate on competitive neighbors instead of re-paying
        // for arms that cost 10x the incumbent every cycle.
        for (std::size_t i = 0; i < nb.size() && !d.probe; ++i) {
          const std::uint16_t cand = nb[ks.probe_cursor % nb.size()];
          ++ks.probe_cursor;
          ArmStat& cs = ks.arms[cand];
          if (cs.wait > 0) {
            --cs.wait;
            continue;
          }
          d.arm = cand;
          d.probe = true;
        }
        if (d.probe && ++ks.cycle_probes >= nb.size()) {
          ks.cycle_probes = 0;
          if (ks.backoff < cfg_.probe_backoff_max) ++ks.backoff;
        }
      }
    }
    d.tuning = decode(d.arm);
    return d;
  }

  Decision follow(const OpContext& ctx, std::uint16_t arm,
                  bool probe) override {
    std::lock_guard lock(mu_);
    key_state(ctx);  // materialize so observe() has a home for the cost
    Decision d;
    d.arm = arm;
    d.tuning = decode(arm);
    d.probe = probe;
    d.incumbent_cost = ewma_of(key_state(ctx), key_state(ctx).incumbent);
    return d;
  }

  void observe(const OpContext& ctx, const Decision& d,
               const Outcome& outcome) override {
    std::lock_guard lock(mu_);
    KeyState& ks = key_state(ctx);
    const double cost =
        outcome.seconds * 1e9 /
        static_cast<double>(std::max<long long>(1, outcome.nbytes));
    ArmStat& st = ks.arms[d.arm];
    st.ewma = st.ewma < 0 ? cost : cfg_.alpha * cost +
                                       (1.0 - cfg_.alpha) * st.ewma;
    ++st.samples;

    if (d.probe && d.arm != ks.incumbent) {
      // Probe verdict for the cooldown: a bad loss earns exponentially
      // longer sit-outs; anything competitive clears the penalty so the
      // ring resumes testing it at full cadence.
      const double inc = ewma_of(ks, ks.incumbent);
      if (inc >= 0 && st.ewma > inc * kPenaltyRatio) {
        st.penalty = std::min(st.penalty + 1, kPenaltyMax);
        st.wait = 1 << st.penalty;
      } else {
        st.penalty = 0;
        st.wait = 0;
      }
    }

    bool switched = false;
    if (cfg_.policy != AdaptConfig::Policy::Static) {
      const double margin =
          cfg_.policy == AdaptConfig::Policy::Greedy ? 0.0 : cfg_.margin;
      const int need =
          cfg_.policy == AdaptConfig::Policy::Greedy ? 1 : cfg_.window;
      const double inc = ewma_of(ks, ks.incumbent);
      if (d.arm != ks.incumbent) {
        // Fresh evidence about a challenger.  The streak advances only
        // here — never on incumbent observations with a stale challenger
        // estimate — so one lucky probe cannot ride K incumbent ops into
        // a switch: it takes `need` consecutive *observations of that
        // arm*, each leaving its EWMA past the margin.
        if (inc >= 0 && st.ewma < inc * (1.0 - margin)) {
          if (ks.challenger == d.arm)
            ++ks.losses;
          else {
            ks.challenger = d.arm;
            ks.losses = 1;
          }
          if (ks.losses >= need) {
            ks.incumbent = d.arm;
            ks.losses = 0;
            ks.challenger = 0;
            // New incumbent: restart the neighbor walk around it at the
            // base probe cadence.
            ks.probe_cursor = 0;
            ks.cycle_probes = 0;
            ks.backoff = 0;
            switched = true;
          }
        } else if (ks.challenger == d.arm) {
          // The challenger failed to beat the margin: streak dies.
          ks.losses = 0;
          ks.challenger = 0;
        }
      } else if (ks.challenger != 0) {
        // Incumbent observation moved its own EWMA: re-validate the
        // pending streak against the updated baseline.
        const double ch = ewma_of(ks, ks.challenger);
        if (ch < 0 || ch >= st.ewma * (1.0 - margin)) {
          ks.losses = 0;
          ks.challenger = 0;
        }
      }
    }

    obs::AdaptDecision rec;
    rec.seq = ++trail_seq_;
    rec.op = ctx.op;
    rec.backend = ctx.backend;
    rec.net = ctx.net;
    rec.view_sig = ctx.view_sig;
    rec.size_class = size_class_of(ctx.nbytes);
    rec.arm = arm_label_locked(d.arm);
    rec.probe = d.probe;
    rec.switched = switched;
    rec.cost_ns_per_byte = cost;
    rec.incumbent_ns_per_byte = d.incumbent_cost;
    trail_.push_back(std::move(rec));
    while (trail_.size() > cfg_.trail_capacity) trail_.pop_front();
    ++decisions_;
    if (d.probe) ++probes_;
    if (switched) ++switches_;
  }

  Tuning decode(std::uint16_t arm) const override {
    Tuning t = cfg_.base;
    t.method = (arm & kMethodBit) ? mpiio::Method::ListBased
                                  : mpiio::Method::Listless;
    t.two_phase = (arm & kRouteBit) == 0;
    t.zerocopy = (arm & kZcOffBit) ? mpiio::Zerocopy::Off
                                   : mpiio::Zerocopy::Auto;
    t.pipeline_depth = cfg_.depths[std::min<std::size_t>(
        (arm >> 4) & 0xF, cfg_.depths.size() - 1)];
    t.pack_threads = cfg_.threads[std::min<std::size_t>(
        (arm >> 8) & 0xF, cfg_.threads.size() - 1)];
    t.window = cfg_.windows[std::min<std::size_t>((arm >> 12) & 0xF,
                                                  cfg_.windows.size() - 1)];
    return t;
  }

  std::uint16_t encode(const Tuning& t) const override {
    std::uint16_t arm = 0;
    if (t.method == mpiio::Method::ListBased) arm |= kMethodBit;
    if (!t.two_phase) arm |= kRouteBit;
    if (t.zerocopy == mpiio::Zerocopy::Off) arm |= kZcOffBit;
    arm |= static_cast<std::uint16_t>(
        (index_of_int(cfg_.depths, t.pipeline_depth) & 0xF) << 4);
    arm |= static_cast<std::uint16_t>(
        (index_of_int(cfg_.threads, t.pack_threads) & 0xF) << 8);
    arm |= static_cast<std::uint16_t>(
        (index_of_off(cfg_.windows, t.window) & 0xF) << 12);
    return arm;
  }

  std::string arm_label(std::uint16_t arm) const override {
    return arm_label_locked(arm);
  }

  std::vector<obs::AdaptDecision> trail() const override {
    std::lock_guard lock(mu_);
    return {trail_.begin(), trail_.end()};
  }

  void report_into(obs::JobReport& report) const override {
    std::lock_guard lock(mu_);
    report.adapt_policy = name();
    report.adapt_decisions = decisions_;
    report.adapt_probes = probes_;
    report.adapt_switches = switches_;
    report.adapt_trail.assign(trail_.begin(), trail_.end());
    const obs::Sampler& sampler = obs::Sampler::instance();
    const std::uint32_t n = sampler.dim_count();
    report.adapt_dims.clear();
    report.adapt_dims.reserve(n);
    for (std::uint32_t id = 0; id < n; ++id)
      report.adapt_dims.push_back(sampler.name(id));
  }

 private:
  /// Probe-cooldown tuning: losing a probe by more than kPenaltyRatio
  /// doubles the arm's sit-out (in probe slots), up to 2^kPenaltyMax.
  static constexpr double kPenaltyRatio = 2.0;
  static constexpr int kPenaltyMax = 4;

  struct ArmStat {
    double ewma = -1;  ///< ns per byte; < 0 = never observed
    std::uint64_t samples = 0;
    int penalty = 0;  ///< consecutive bad probe losses (doublings)
    int wait = 0;     ///< probe slots left to sit out
  };

  struct KeyState {
    std::uint16_t incumbent = 0;
    std::map<std::uint16_t, ArmStat> arms;
    std::uint16_t challenger = 0;
    int losses = 0;  ///< challenger's consecutive margin-beating streak
    std::uint64_t ops = 0;
    std::size_t probe_cursor = 0;
    std::size_t cycle_probes = 0;  ///< probes into the current cycle
    int backoff = 0;               ///< period doublings accrued
  };

  static std::uint64_t key_of(const OpContext& ctx) {
    std::uint64_t h = 1469598103934665603ULL;
    h = fnv_mix(h, ctx.view_sig);
    h = fnv_mix(h, ctx.backend);
    h = fnv_mix(h, ctx.net);
    h = fnv_mix(h, static_cast<std::uint64_t>(size_class_of(ctx.nbytes)));
    h = fnv_mix(h, ctx.writing ? 1 : 0);
    return h;
  }

  KeyState& key_state(const OpContext& ctx) {
    const std::uint64_t k = key_of(ctx);
    const auto it = keys_.find(k);
    if (it != keys_.end()) return it->second;
    KeyState& ks = keys_[k];
    ks.incumbent = base_arm_;
    warm_start(ks, ctx);
    return ks;
  }

  double ewma_of(const KeyState& ks, std::uint16_t arm) const {
    const auto it = ks.arms.find(arm);
    return it == ks.arms.end() ? -1 : it->second.ewma;
  }

  /// Seed a fresh key's method arms from matching sampling-ring records:
  /// a new handle inherits what earlier handles measured under the same
  /// (op, backend, net) dimensions instead of starting blind.  Only the
  /// advising rank's seeds steer decisions, so ring coherence across
  /// ranks is not required.
  void warm_start(KeyState& ks, const OpContext& ctx) {
    obs::Sampler& sampler = obs::Sampler::instance();
    if (!sampler.enabled()) return;
    const obs::MetricsSnapshot snap =
        sampler.snapshot_since(cfg_.warm_start_seq);
    if (snap.samples.empty()) return;
    const std::uint32_t listless = sampler.intern("listless");
    const std::uint32_t listbased = sampler.intern("list-based");
    double sum[2] = {0, 0};
    long long n[2] = {0, 0};
    for (const obs::OpSample& s : snap.samples) {
      if (s.op != ctx.op || s.backend != ctx.backend || s.net != ctx.net)
        continue;
      if (s.bytes <= 0 || s.dur_ns <= 0) continue;
      const int m = s.engine == listbased ? 1 : s.engine == listless ? 0 : -1;
      if (m < 0) continue;
      sum[m] += static_cast<double>(s.dur_ns) / static_cast<double>(s.bytes);
      ++n[m];
    }
    for (int m = 0; m < 2; ++m) {
      if (n[m] == 0) continue;
      Tuning t = cfg_.base;
      t.method = m == 1 ? mpiio::Method::ListBased : mpiio::Method::Listless;
      ArmStat& st = ks.arms[encode(t)];
      if (st.ewma < 0) st.ewma = sum[m] / static_cast<double>(n[m]);
    }
  }

  /// Single-knob mutations of `arm`, ordered by what the phase profile
  /// says is worth trying first: pack-dominated ops probe the pack-side
  /// knobs (threads, zerocopy, depth) before the data-path ones (route,
  /// method, window); io-dominated ops the other way around.
  std::vector<std::uint16_t> neighbors(std::uint16_t arm,
                                       const OpContext& ctx) const {
    const Tuning t = decode(arm);
    std::vector<std::uint16_t> pack_side, io_side;
    if (cfg_.threads.size() > 1) {
      Tuning v = t;
      const std::size_t i = index_of_int(cfg_.threads, t.pack_threads);
      v.pack_threads = cfg_.threads[(i + 1) % cfg_.threads.size()];
      pack_side.push_back(encode(v));
    }
    if (cfg_.explore_zerocopy) {
      Tuning v = t;
      v.zerocopy = t.zerocopy == mpiio::Zerocopy::Off
                       ? mpiio::Zerocopy::Auto
                       : mpiio::Zerocopy::Off;
      pack_side.push_back(encode(v));
    }
    if (cfg_.depths.size() > 1) {
      Tuning v = t;
      const std::size_t i = index_of_int(cfg_.depths, t.pipeline_depth);
      v.pipeline_depth = cfg_.depths[(i + 1) % cfg_.depths.size()];
      pack_side.push_back(encode(v));
    }
    // The independent route is universal: server-side view I/O when the
    // backend advertises pfs::ViewIo, plain per-rank accesses otherwise.
    // Whether skipping the exchange pays (e.g. a slow client interconnect
    // in front of a fast storage wire) is the cost model's job to learn,
    // so the toggle is always probe-eligible.
    if (cfg_.explore_route) {
      Tuning v = t;
      v.two_phase = !t.two_phase;
      io_side.push_back(encode(v));
    }
    if (cfg_.explore_method) {
      Tuning v = t;
      v.method = t.method == mpiio::Method::Listless
                     ? mpiio::Method::ListBased
                     : mpiio::Method::Listless;
      io_side.push_back(encode(v));
    }
    if (cfg_.windows.size() > 1) {
      Tuning v = t;
      const std::size_t i = index_of_off(cfg_.windows, t.window);
      v.window = cfg_.windows[(i + 1) % cfg_.windows.size()];
      io_side.push_back(encode(v));
    }
    std::vector<std::uint16_t> out;
    const bool pack_first = ctx.pack_frac > 0.5;
    const auto& first = pack_first ? pack_side : io_side;
    const auto& second = pack_first ? io_side : pack_side;
    out.insert(out.end(), first.begin(), first.end());
    out.insert(out.end(), second.begin(), second.end());
    out.erase(std::remove(out.begin(), out.end(), arm), out.end());
    return out;
  }

  std::string arm_label_locked(std::uint16_t arm) const {
    const Tuning t = decode(arm);
    return strprintf(
        "%s:%s:d%d:t%d:%s:w%lld",
        t.method == mpiio::Method::ListBased ? "lb" : "ll",
        t.two_phase ? "tp" : "ix", t.pipeline_depth, t.pack_threads,
        t.zerocopy == mpiio::Zerocopy::Off ? "st" : "zc",
        static_cast<long long>(t.window));
  }

  AdaptConfig cfg_;
  std::uint16_t base_arm_ = 0;

  mutable std::mutex mu_;
  std::map<std::uint64_t, KeyState> keys_;
  std::deque<obs::AdaptDecision> trail_;
  std::uint64_t trail_seq_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t switches_ = 0;
};

template <class T>
void sanitize_list(std::vector<T>& xs, T base, std::size_t cap = 16) {
  if (std::find(xs.begin(), xs.end(), base) == xs.end()) xs.push_back(base);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  if (xs.size() > cap) xs.resize(cap);
  // The base value must survive the cap: arms are decoded relative to
  // these lists, and the static arm must always be expressible.
  if (std::find(xs.begin(), xs.end(), base) == xs.end()) xs.back() = base;
}

}  // namespace

std::unique_ptr<Advisor> make_advisor(AdaptConfig cfg) {
  LLIO_REQUIRE(cfg.epsilon >= 0 && cfg.epsilon <= 0.5, Errc::InvalidArgument,
               "adapt: epsilon out of [0, 0.5]");
  LLIO_REQUIRE(cfg.window >= 1, Errc::InvalidArgument, "adapt: window < 1");
  LLIO_REQUIRE(cfg.margin >= 0 && cfg.margin < 1, Errc::InvalidArgument,
               "adapt: margin out of [0, 1)");
  LLIO_REQUIRE(cfg.alpha > 0 && cfg.alpha <= 1, Errc::InvalidArgument,
               "adapt: alpha out of (0, 1]");
  if (cfg.trail_capacity < 1) cfg.trail_capacity = 1;
  cfg.probe_backoff_max = std::clamp(cfg.probe_backoff_max, 0, 20);
  if (cfg.depths.empty()) cfg.depths = {0};
  if (cfg.threads.empty()) cfg.threads = {1};
  if (cfg.windows.empty()) cfg.windows = {4 << 20};
  sanitize_list(cfg.depths, cfg.base.pipeline_depth);
  sanitize_list(cfg.threads, cfg.base.pack_threads);
  sanitize_list(cfg.windows, cfg.base.window);
  return std::make_unique<PolicyEngine>(std::move(cfg));
}

Tuning tuning_from_options(const mpiio::Options& o) {
  Tuning t;
  t.method = o.method;
  t.two_phase = o.cb_write && o.cb_read;
  t.pipeline_depth = o.pipeline_depth;
  t.pack_threads = o.pack_threads;
  t.zerocopy = o.zerocopy;
  t.window = o.file_buffer_size;
  return t;
}

AdaptConfig config_from_options(const mpiio::Options& o) {
  AdaptConfig cfg;
  cfg.base = tuning_from_options(o);
  cfg.policy = o.adaptive == mpiio::Adaptive::Force
                   ? AdaptConfig::Policy::Greedy
                   : AdaptConfig::Policy::Hysteresis;
  if (o.adaptive_policy == "static")
    cfg.policy = AdaptConfig::Policy::Static;
  else if (o.adaptive_policy == "greedy")
    cfg.policy = AdaptConfig::Policy::Greedy;
  else if (o.adaptive_policy == "hysteresis")
    cfg.policy = AdaptConfig::Policy::Hysteresis;
  cfg.epsilon = o.adaptive_epsilon;
  cfg.window = o.adaptive_window;
  return cfg;
}

}  // namespace llio::adapt
