// Adaptive policy layer: measurement-driven per-operation tuning.
//
// The bench baselines prove no static hint set wins everywhere: two-phase
// beats the server-view route on fast interconnects and loses on slow
// ones (BENCH_servers), plan-on packing wins serial but loses at 2-4
// threads on small blocks (BENCH_pack), and zero-copy descriptor I/O has
// a dense/holey crossover (BENCH_zerocopy).  ROMIO answers this with
// hints the user must guess per platform; the ViPIOS line argues the I/O
// system should own the decision.  This layer is that owner: an Advisor
// consumes the live measurements the obs layer already collects (the
// sampling ring, the engines' phase histograms) and picks, per collective
// operation: engine method (list / listless), the two-phase vs
// independent route (which becomes server-side view I/O when the backend
// advertises pfs::ViewIo), pipeline_depth, pack_threads, zero-copy
// on/off, and the collective-buffer window.
//
// Shape (after FreeBSD's pluggable TCP congestion-control stacks —
// rack/bbr behind one function table): pluggable policies behind one
// Advisor interface.
//   * static     — always the configured base tuning; never probes.
//                  The measurement/trail machinery runs, decisions don't
//                  change: the A/B control arm.
//   * greedy     — switch to the best-known arm the moment its estimate
//                  beats the incumbent (margin 0, window 1).  Tracks
//                  fast, may flap under noise.
//   * hysteresis — a challenger must beat the incumbent's EWMA by
//                  `margin` for `window` consecutive observations before
//                  it takes over; any observation that breaks the streak
//                  resets it.  Bounded exploration: every round(1/eps)-th
//                  op per key probes one single-knob neighbor of the
//                  incumbent, round-robin, so the model keeps tracking
//                  changing conditions without paying more than eps of
//                  the ops for it.
//
// Cost model: per (view signature, backend, net model, size class,
// direction) key, an EWMA of ns-per-byte per arm.  New keys warm-start
// from matching obs::Sampler ring records, so a freshly opened handle
// inherits what previous handles measured under the same dimensions.
//
// Determinism: no wall-clock reads, no randomness — probing is a
// deterministic schedule of the per-key op counter.  Rank consistency is
// the caller's job (mpiio::File makes the OpContext rank-consistent,
// rank 0 advises, followers adopt the arm via follow()); identical
// observe() inputs keep every rank's advisor state converged.
//
// Every decision lands in a bounded trail ring (obs::AdaptDecision) that
// File::close attaches to the llio_report/v1 JobReport and --explain
// prints.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "mpiio/options.hpp"
#include "obs/agg.hpp"

namespace llio::adapt {

/// One complete per-operation tuning (an "arm" of the bandit).
struct Tuning {
  mpiio::Method method = mpiio::Method::Listless;

  /// true = collective buffering (two-phase exchange); false = degrade
  /// the collective to independent accesses + barrier, which the engines
  /// turn into server-side view I/O when the backend advertises
  /// pfs::ViewIo — the "server-view route" of the psrv ablations.
  bool two_phase = true;

  int pipeline_depth = 0;
  int pack_threads = 1;
  mpiio::Zerocopy zerocopy = mpiio::Zerocopy::Auto;

  /// Collective-buffer / file-domain window (Options::file_buffer_size).
  Off window = 4 << 20;

  bool operator==(const Tuning&) const = default;
};

/// Rank-consistent description of the operation about to run.  The
/// caller (mpiio::File) is responsible for consistency: nbytes is the
/// job-global payload (allreduce-summed), view_sig is harmonized across
/// ranks at set_view, and the dim ids come from the handle's options.
struct OpContext {
  std::uint32_t op = 0;       ///< interned op name ("write_at_all", ...)
  std::uint32_t backend = 0;  ///< interned storage target
  std::uint32_t net = 0;      ///< interned interconnect model
  std::uint64_t view_sig = 0;
  long long nbytes = 0;  ///< global payload bytes of this op
  bool writing = false;
  bool view_io = false;  ///< backend advertises pfs::ViewIo
  int nprocs = 1;

  /// Phase bias from the engine's LocalRegistry histograms:
  /// pack time / (pack + io) over the ops so far; < 0 = unknown.  Only
  /// the advising rank's value is used (it biases probe order, not
  /// correctness).
  double pack_frac = -1.0;
};

/// What one operation cost.  seconds is the op's job-global wall time
/// (allreduce-maxed by the caller so every rank observes the same value).
struct Outcome {
  double seconds = 0;
  long long nbytes = 0;
};

/// The Advisor's verdict for one operation.
struct Decision {
  Tuning tuning;
  std::uint16_t arm = 0;  ///< encoded tuning — what rank 0 broadcasts
  bool probe = false;     ///< epsilon exploration, not the incumbent
  double incumbent_cost = -1;  ///< incumbent EWMA ns/byte (< 0 = none yet)
};

struct AdaptConfig {
  enum class Policy { Static, Greedy, Hysteresis };
  Policy policy = Policy::Hysteresis;

  /// Fraction of ops (per key) spent probing a non-incumbent arm.
  /// 0 disables exploration (the incumbent can then only change through
  /// warm-start or greedy observations of probe-free arms).
  double epsilon = 1.0 / 16.0;

  /// Exploration backoff: every full neighbor cycle that completes
  /// without a switch doubles the key's probe period, up to this many
  /// doublings; any switch resets it.  A converged key thus stops
  /// paying steady-state probe drag, while regime changes that move a
  /// keying dimension (net model, view, size class) land on a fresh
  /// key that starts at the base cadence.  0 disables backoff.
  int probe_backoff_max = 4;

  /// Hysteresis: consecutive observations a challenger must win by
  /// `margin` before it becomes the incumbent.
  int window = 3;
  double margin = 0.15;

  /// EWMA weight of a new observation.
  double alpha = 0.3;

  std::size_t trail_capacity = 256;

  /// The static arm: the policy's starting incumbent, and everything the
  /// static policy ever returns.
  Tuning base;

  /// Candidate values per knob (the arm space is their cross product;
  /// probing only walks single-knob neighbors).  Each list is capped at
  /// 16 entries — arm encoding packs 4-bit indices.
  std::vector<int> depths = {0, 2};
  std::vector<int> threads = {1, 2, 4};
  std::vector<Off> windows = {1 << 20, 4 << 20};

  bool explore_method = true;    ///< list vs listless neighbors
  bool explore_route = true;     ///< two-phase vs independent toggle
  bool explore_zerocopy = true;  ///< zerocopy toggle

  /// Sampler ring position to warm-start new keys from (0 = whole ring).
  std::uint64_t warm_start_seq = 0;
};

const char* policy_name(AdaptConfig::Policy p) noexcept;

/// The pluggable policy interface.  Thread-safe; every method may be
/// called from any rank-thread of the owning handle.
class Advisor {
 public:
  virtual ~Advisor() = default;

  virtual const AdaptConfig& config() const = 0;
  virtual const char* name() const = 0;

  /// Root rank: pick the arm for this op and advance exploration state.
  virtual Decision advise(const OpContext& ctx) = 0;

  /// Follower ranks: adopt the root's broadcast arm without advancing
  /// exploration state.  The returned Decision feeds observe() so the
  /// follower's cost model evolves identically to the root's.
  virtual Decision follow(const OpContext& ctx, std::uint16_t arm,
                          bool probe) = 0;

  /// Feed back what the operation cost.  Updates the arm's EWMA, runs
  /// the switching logic, and appends to the decision trail.  Must be
  /// called with identical arguments on every rank (the caller
  /// allreduces the outcome) to keep advisor states converged.
  virtual void observe(const OpContext& ctx, const Decision& d,
                       const Outcome& outcome) = 0;

  virtual Tuning decode(std::uint16_t arm) const = 0;
  virtual std::uint16_t encode(const Tuning& t) const = 0;

  /// Human-readable arm label for the trail / --explain
  /// (e.g. "ll:tp:d2:t1:zc:w4194304").
  virtual std::string arm_label(std::uint16_t arm) const = 0;

  /// Decision trail so far (oldest first, bounded by trail_capacity).
  virtual std::vector<obs::AdaptDecision> trail() const = 0;

  /// Attach policy name, totals, trail, and the interned-dim table to a
  /// JobReport (the "adapt" section of llio_report/v1).
  virtual void report_into(obs::JobReport& report) const = 0;
};

/// Build an advisor.  Candidate lists are sanitized (base values
/// inserted, duplicates removed, 16-entry cap enforced).
std::unique_ptr<Advisor> make_advisor(AdaptConfig cfg);

/// Derive the advisor configuration from a handle's options
/// (llio_adaptive / llio_adaptive_policy / llio_adaptive_epsilon /
/// llio_adaptive_window plus the static knobs as the base arm).
AdaptConfig config_from_options(const mpiio::Options& o);

/// The base arm implied by a handle's static options.
Tuning tuning_from_options(const mpiio::Options& o);

}  // namespace llio::adapt
