#include "btio/pattern.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace llio::btio {

namespace {

constexpr double kGhostSentinel = -9999.25;

Off dim_size(Off n, Off q, Off c) {
  const Off base = n / q;
  const Off rem = n % q;
  return base + (c < rem ? 1 : 0);
}

Off dim_start(Off n, Off q, Off c) {
  const Off base = n / q;
  const Off rem = n % q;
  return c * base + std::min(c, rem);
}

}  // namespace

Off class_grid_size(char cls) {
  switch (cls) {
    case 'S': return 12;
    case 'W': return 24;
    case 'A': return 64;
    case 'B': return 102;
    case 'C': return 162;
    case 'D': return 408;
  }
  throw_error(Errc::InvalidArgument, "btio: unknown problem class");
}

Pattern::Pattern(Off n, int nprocs, int rank, Off ghost)
    : n_(n), nprocs_(nprocs), rank_(rank), ghost_(ghost) {
  LLIO_REQUIRE(n >= 1, Errc::InvalidArgument, "btio: grid size < 1");
  LLIO_REQUIRE(ghost >= 0, Errc::InvalidArgument, "btio: negative ghost");
  const int q = static_cast<int>(std::lround(std::sqrt(double(nprocs))));
  LLIO_REQUIRE(q >= 1 && q * q == nprocs, Errc::InvalidArgument,
               "btio: process count must be a square");
  LLIO_REQUIRE(rank >= 0 && rank < nprocs, Errc::InvalidArgument,
               "btio: bad rank");
  LLIO_REQUIRE(Off{q} <= n, Errc::InvalidArgument,
               "btio: more cells per dimension than grid points");
  q_ = q;
  const Off pi = rank % q;
  const Off pj = rank / q;
  cells_.reserve(to_size(Off{q}));
  for (Off k = 0; k < q; ++k) {
    CellGeom c;
    c.ci = (pi + k) % q;
    c.cj = (pj + k) % q;
    c.ck = k;
    c.nx = dim_size(n_, q, c.ci);
    c.ny = dim_size(n_, q, c.cj);
    c.nz = dim_size(n_, q, c.ck);
    c.xs = dim_start(n_, q, c.ci);
    c.ys = dim_start(n_, q, c.cj);
    c.zs = dim_start(n_, q, c.ck);
    cells_.push_back(c);
  }
}

dt::Type Pattern::filetype() const {
  std::vector<dt::Type> kids;
  std::vector<Off> bls(cells_.size(), 1);
  std::vector<Off> disps(cells_.size(), 0);
  kids.reserve(cells_.size());
  for (const CellGeom& c : cells_) {
    const Off sizes[] = {5, n_, n_, n_};
    const Off subsizes[] = {5, c.nx, c.ny, c.nz};
    const Off starts[] = {0, c.xs, c.ys, c.zs};
    kids.push_back(
        dt::subarray(sizes, subsizes, starts, dt::Order::Fortran,
                     dt::double_()));
  }
  return dt::struct_(bls, disps, kids);
}

dt::Type Pattern::memtype() const {
  std::vector<dt::Type> kids;
  std::vector<Off> bls(cells_.size(), 1);
  std::vector<Off> disps(cells_.size());
  Off at = 0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const CellGeom& c = cells_[i];
    const Off px = c.nx + 2 * ghost_;
    const Off py = c.ny + 2 * ghost_;
    const Off pz = c.nz + 2 * ghost_;
    const Off sizes[] = {5, px, py, pz};
    const Off subsizes[] = {5, c.nx, c.ny, c.nz};
    const Off starts[] = {0, ghost_, ghost_, ghost_};
    kids.push_back(dt::subarray(sizes, subsizes, starts, dt::Order::Fortran,
                                dt::double_()));
    disps[i] = at;
    at += 5 * px * py * pz * 8;
  }
  return dt::struct_(bls, disps, kids);
}

Off Pattern::padded_doubles() const {
  Off total = 0;
  for (const CellGeom& c : cells_) {
    total += 5 * (c.nx + 2 * ghost_) * (c.ny + 2 * ghost_) *
             (c.nz + 2 * ghost_);
  }
  return total;
}

Off Pattern::local_doubles() const {
  Off total = 0;
  for (const CellGeom& c : cells_) total += 5 * c.nx * c.ny * c.nz;
  return total;
}

Off Pattern::nblock() const {
  // One contiguous run of 5*nx doubles per (y, z) line of each cell.
  Off total = 0;
  for (const CellGeom& c : cells_) total += c.ny * c.nz;
  return total;
}

double Pattern::avg_sblock_bytes() const {
  return static_cast<double>(local_doubles() * 8) /
         static_cast<double>(nblock());
}

double Pattern::expected_value(Off c, Off x, Off y, Off z, Off n, int step) {
  const Off lin = c + 5 * (x + n * (y + n * z));
  return static_cast<double>(lin) + static_cast<double>(step) * 1.0e8;
}

void Pattern::reference_step(std::span<double> global, Off n, int step) {
  LLIO_REQUIRE(to_off(global.size()) == 5 * n * n * n, Errc::InvalidArgument,
               "btio: bad reference buffer size");
  for (std::size_t i = 0; i < global.size(); ++i)
    global[i] = static_cast<double>(to_off(i)) +
                static_cast<double>(step) * 1.0e8;
}

void Pattern::fill(std::span<double> buf, int step) const {
  LLIO_REQUIRE(to_off(buf.size()) == padded_doubles(), Errc::InvalidArgument,
               "btio: bad local buffer size");
  std::size_t at = 0;
  for (const CellGeom& cell : cells_) {
    const Off px = cell.nx + 2 * ghost_;
    const Off py = cell.ny + 2 * ghost_;
    const Off pz = cell.nz + 2 * ghost_;
    // Fortran order: component fastest, then x, y, z.
    for (Off z = 0; z < pz; ++z) {
      for (Off y = 0; y < py; ++y) {
        for (Off x = 0; x < px; ++x) {
          const bool interior = x >= ghost_ && x < ghost_ + cell.nx &&
                                y >= ghost_ && y < ghost_ + cell.ny &&
                                z >= ghost_ && z < ghost_ + cell.nz;
          for (Off c = 0; c < 5; ++c) {
            buf[at++] = interior
                            ? expected_value(c, cell.xs + x - ghost_,
                                             cell.ys + y - ghost_,
                                             cell.zs + z - ghost_, n_, step)
                            : kGhostSentinel;
          }
        }
      }
    }
  }
  LLIO_ASSERT(at == buf.size(), "btio: fill did not cover the buffer");
}

}  // namespace llio::btio
