// The BTIO I/O pattern (NAS Parallel Benchmarks BT I/O, paper §4.2).
//
// BT decomposes an N^3 grid over P = q^2 processes by diagonal
// multi-partitioning: the grid is cut into q^3 cells of ~ (N/q)^3 points;
// process (pi, pj) owns the q cells {((pi+k) mod q, (pj+k) mod q, k)},
// one per k-plane.  The solution field has 5 components per grid point
// (Fortran order: component fastest, then x, y, z, all double).
//
// BTIO writes the whole field each dump step through MPI-IO:
//  * the *filetype* is the union of the process's q cell subarrays of the
//    global [5, N, N, N] array (built with MPI_Type_create_subarray),
//  * the *memtype* is the union of q subarrays selecting the interior of
//    the process's padded (ghost-cell) local buffers,
//  * a single collective write_at_all per step moves everything.
//
// This module builds those datatypes and the paper's Table 1/2 pattern
// characterization (N_block, S_block, D_step); the bench and tests drive
// it through the mpiio layer.
#pragma once

#include <span>
#include <vector>

#include "dtype/datatype.hpp"

namespace llio::btio {

/// NAS problem classes (grid edge N).
Off class_grid_size(char cls);  // 'S'=12, 'W'=24, 'A'=64, 'B'=102, 'C'=162

/// One cell owned by a process.
struct CellGeom {
  Off ci, cj, ck;  ///< cell coordinates in the q x q x q cell grid
  Off xs, ys, zs;  ///< global start offsets (grid points)
  Off nx, ny, nz;  ///< cell dimensions (grid points)
};

class Pattern {
 public:
  /// nprocs must be a square (P = q^2); ghost is the per-side padding of
  /// the local cell buffers (BT uses ghost cells; ghost=0 makes the
  /// memtype contiguous, ghost>0 makes the access nc-nc).
  Pattern(Off n, int nprocs, int rank, Off ghost = 2);

  Off n() const { return n_; }
  int q() const { return q_; }
  Off ghost() const { return ghost_; }
  const std::vector<CellGeom>& cells() const { return cells_; }

  /// Fileview filetype: union of the q cell subarrays of [5, N, N, N].
  dt::Type filetype() const;

  /// Memtype: union of q interior subarrays of the padded local buffers.
  dt::Type memtype() const;

  /// Doubles in the padded local buffer (allocation size).
  Off padded_doubles() const;

  /// Data doubles this rank writes per step (interior only).
  Off local_doubles() const;

  /// Bytes the whole application writes per step (paper's D_step).
  Off global_step_bytes() const { return 5 * n_ * n_ * n_ * 8; }

  /// Contiguous blocks per step for this rank (paper's Table 2 N_block).
  Off nblock() const;

  /// Mean contiguous block size in bytes (paper's Table 2 S_block).
  double avg_sblock_bytes() const;

  /// Fill the padded local buffer with the deterministic solution for
  /// `step`; ghost points are set to a sentinel that must never reach the
  /// file.
  void fill(std::span<double> buf, int step) const;

  /// The value of component c at global point (x, y, z) in `step`.
  static double expected_value(Off c, Off x, Off y, Off z, Off n, int step);

  /// Compute the full reference field for `step` (5*n^3 doubles) — the
  /// byte image a correct collective write must produce.
  static void reference_step(std::span<double> global, Off n, int step);

 private:
  Off n_;
  int nprocs_;
  int rank_;
  int q_;
  Off ghost_;
  std::vector<CellGeom> cells_;
};

}  // namespace llio::btio
