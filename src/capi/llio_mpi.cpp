#include "capi/llio_mpi.h"

#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "dtype/datatype.hpp"
#include "fotf/mpi_pack.hpp"
#include "mpiio/file.hpp"
#include "pfs/mem_file.hpp"
#include "pfs/posix_file.hpp"
#include "psrv/server_file.hpp"
#include "simmpi/comm.hpp"

// Handle definitions: each opaque struct owns the corresponding C++
// object.  LLIO_Comm aliases the runtime-owned Comm (not owned by the
// caller); everything else is heap-allocated by the constructors here.
struct llio_comm_s {
  llio::sim::Comm* comm;
};
struct llio_storage_s {
  llio::pfs::FilePtr backend;
};
struct llio_file_s {
  llio::mpiio::File file;
};
struct llio_datatype_s {
  llio::dt::Type type;
};

namespace {

thread_local std::string g_last_error;

int code_of(const llio::Error& e) {
  switch (e.code()) {
    case llio::Errc::InvalidArgument: return LLIO_ERR_ARG;
    case llio::Errc::InvalidDatatype: return LLIO_ERR_TYPE;
    case llio::Errc::InvalidView: return LLIO_ERR_VIEW;
    case llio::Errc::Io: return LLIO_ERR_IO;
    case llio::Errc::Protocol: return LLIO_ERR_PROTOCOL;
    case llio::Errc::Unsupported: return LLIO_ERR_UNSUPPORTED;
    case llio::Errc::Internal: return LLIO_ERR_INTERNAL;
  }
  return LLIO_ERR_OTHER;
}

/// Run `fn`, translating exceptions into error codes + last-error text.
template <typename Fn>
int guarded(Fn&& fn) {
  try {
    fn();
    return LLIO_SUCCESS;
  } catch (const llio::Error& e) {
    g_last_error = e.what();
    return code_of(e);
  } catch (const std::exception& e) {
    g_last_error = e.what();
    return LLIO_ERR_OTHER;
  } catch (...) {
    g_last_error = "unknown error";
    return LLIO_ERR_OTHER;
  }
}

#define LLIO_C_REQUIRE(cond)                                       \
  do {                                                             \
    if (!(cond)) {                                                 \
      g_last_error = std::string("invalid argument: ") + #cond;    \
      return LLIO_ERR_ARG;                                         \
    }                                                              \
  } while (0)

int wrap_type(llio::dt::Type t, LLIO_Datatype* out) {
  *out = new llio_datatype_s{std::move(t)};
  return LLIO_SUCCESS;
}

std::vector<llio::Off> offs(const llio_offset* p, llio_offset n) {
  return std::vector<llio::Off>(p, p + n);
}

}  // namespace

extern "C" {

const char* llio_last_error(void) { return g_last_error.c_str(); }

/* ---- runtime ---------------------------------------------------------- */

int llio_run(int nprocs, llio_main_fn body, void* user) {
  LLIO_C_REQUIRE(body != nullptr);
  return guarded([&] {
    llio::sim::Runtime::run(nprocs, [&](llio::sim::Comm& comm) {
      llio_comm_s handle{&comm};
      body(&handle, user);
    });
  });
}

int llio_comm_rank(LLIO_Comm comm, int* rank) {
  LLIO_C_REQUIRE(comm != nullptr && rank != nullptr);
  *rank = comm->comm->rank();
  return LLIO_SUCCESS;
}

int llio_comm_size(LLIO_Comm comm, int* size) {
  LLIO_C_REQUIRE(comm != nullptr && size != nullptr);
  *size = comm->comm->size();
  return LLIO_SUCCESS;
}

int llio_barrier(LLIO_Comm comm) {
  LLIO_C_REQUIRE(comm != nullptr);
  return guarded([&] { comm->comm->barrier(); });
}

/* ---- storage ---------------------------------------------------------- */

int llio_storage_mem_create(LLIO_Storage* out) {
  LLIO_C_REQUIRE(out != nullptr);
  return guarded([&] {
    *out = new llio_storage_s{llio::pfs::MemFile::create()};
  });
}

int llio_storage_posix_open(const char* path, int truncate,
                            LLIO_Storage* out) {
  LLIO_C_REQUIRE(path != nullptr && out != nullptr);
  return guarded([&] {
    *out = new llio_storage_s{llio::pfs::PosixFile::open(path, truncate != 0)};
  });
}

int llio_storage_psrv_create(int nservers, llio_offset stripe,
                             const char* request_class, LLIO_Storage* out) {
  LLIO_C_REQUIRE(request_class != nullptr && out != nullptr);
  return guarded([&] {
    llio::psrv::PoolConfig cfg;
    if (nservers > 0) cfg.nservers = nservers;
    if (stripe > 0) cfg.stripe = stripe;
    *out = new llio_storage_s{llio::psrv::ServerFile::create(
        llio::psrv::ServerPool::create(std::move(cfg)),
        llio::psrv::request_class_from_name(request_class))};
  });
}

int llio_storage_size(LLIO_Storage st, llio_offset* size) {
  LLIO_C_REQUIRE(st != nullptr && size != nullptr);
  return guarded([&] { *size = st->backend->size(); });
}

int llio_storage_free(LLIO_Storage* st) {
  LLIO_C_REQUIRE(st != nullptr);
  delete *st;
  *st = nullptr;
  return LLIO_SUCCESS;
}

/* ---- datatypes --------------------------------------------------------- */

int llio_type_byte(LLIO_Datatype* out) {
  LLIO_C_REQUIRE(out != nullptr);
  return wrap_type(llio::dt::byte(), out);
}

int llio_type_int(LLIO_Datatype* out) {
  LLIO_C_REQUIRE(out != nullptr);
  return wrap_type(llio::dt::int_(), out);
}

int llio_type_double(LLIO_Datatype* out) {
  LLIO_C_REQUIRE(out != nullptr);
  return wrap_type(llio::dt::double_(), out);
}

int llio_type_contiguous(llio_offset count, LLIO_Datatype oldtype,
                         LLIO_Datatype* out) {
  LLIO_C_REQUIRE(oldtype != nullptr && out != nullptr);
  return guarded([&] {
    wrap_type(llio::dt::contiguous(count, oldtype->type), out);
  });
}

int llio_type_vector(llio_offset count, llio_offset blocklength,
                     llio_offset stride, LLIO_Datatype oldtype,
                     LLIO_Datatype* out) {
  LLIO_C_REQUIRE(oldtype != nullptr && out != nullptr);
  return guarded([&] {
    wrap_type(llio::dt::vector(count, blocklength, stride, oldtype->type),
              out);
  });
}

int llio_type_create_hvector(llio_offset count, llio_offset blocklength,
                             llio_offset stride_bytes, LLIO_Datatype oldtype,
                             LLIO_Datatype* out) {
  LLIO_C_REQUIRE(oldtype != nullptr && out != nullptr);
  return guarded([&] {
    wrap_type(
        llio::dt::hvector(count, blocklength, stride_bytes, oldtype->type),
        out);
  });
}

int llio_type_indexed(llio_offset count, const llio_offset* blocklengths,
                      const llio_offset* displacements, LLIO_Datatype oldtype,
                      LLIO_Datatype* out) {
  LLIO_C_REQUIRE(count >= 0 && blocklengths != nullptr &&
                 displacements != nullptr && oldtype != nullptr &&
                 out != nullptr);
  return guarded([&] {
    wrap_type(llio::dt::indexed(offs(blocklengths, count),
                                offs(displacements, count), oldtype->type),
              out);
  });
}

int llio_type_create_hindexed(llio_offset count,
                              const llio_offset* blocklengths,
                              const llio_offset* byte_displacements,
                              LLIO_Datatype oldtype, LLIO_Datatype* out) {
  LLIO_C_REQUIRE(count >= 0 && blocklengths != nullptr &&
                 byte_displacements != nullptr && oldtype != nullptr &&
                 out != nullptr);
  return guarded([&] {
    wrap_type(
        llio::dt::hindexed(offs(blocklengths, count),
                           offs(byte_displacements, count), oldtype->type),
        out);
  });
}

int llio_type_create_struct(llio_offset count,
                            const llio_offset* blocklengths,
                            const llio_offset* byte_displacements,
                            const LLIO_Datatype* types, LLIO_Datatype* out) {
  LLIO_C_REQUIRE(count >= 0 && blocklengths != nullptr &&
                 byte_displacements != nullptr && types != nullptr &&
                 out != nullptr);
  return guarded([&] {
    std::vector<llio::dt::Type> kids;
    kids.reserve(llio::to_size(count));
    for (llio_offset i = 0; i < count; ++i) {
      LLIO_REQUIRE(types[i] != nullptr, llio::Errc::InvalidDatatype,
                   "llio_type_create_struct: null member type");
      kids.push_back(types[i]->type);
    }
    wrap_type(llio::dt::struct_(offs(blocklengths, count),
                                offs(byte_displacements, count), kids),
              out);
  });
}

int llio_type_create_resized(LLIO_Datatype oldtype, llio_offset lb,
                             llio_offset extent, LLIO_Datatype* out) {
  LLIO_C_REQUIRE(oldtype != nullptr && out != nullptr);
  return guarded(
      [&] { wrap_type(llio::dt::resized(oldtype->type, lb, extent), out); });
}

int llio_type_create_subarray(int ndims, const llio_offset* sizes,
                              const llio_offset* subsizes,
                              const llio_offset* starts, int order,
                              LLIO_Datatype oldtype, LLIO_Datatype* out) {
  LLIO_C_REQUIRE(ndims >= 1 && sizes != nullptr && subsizes != nullptr &&
                 starts != nullptr && oldtype != nullptr && out != nullptr);
  LLIO_C_REQUIRE(order == LLIO_ORDER_C || order == LLIO_ORDER_FORTRAN);
  return guarded([&] {
    wrap_type(llio::dt::subarray(
                  offs(sizes, ndims), offs(subsizes, ndims),
                  offs(starts, ndims),
                  order == LLIO_ORDER_C ? llio::dt::Order::C
                                        : llio::dt::Order::Fortran,
                  oldtype->type),
              out);
  });
}

int llio_type_create_darray(int size, int rank, int ndims,
                            const llio_offset* gsizes, const int* distribs,
                            const llio_offset* dargs,
                            const llio_offset* psizes, int order,
                            LLIO_Datatype oldtype, LLIO_Datatype* out) {
  LLIO_C_REQUIRE(ndims >= 1 && gsizes != nullptr && distribs != nullptr &&
                 dargs != nullptr && psizes != nullptr && oldtype != nullptr &&
                 out != nullptr);
  LLIO_C_REQUIRE(order == LLIO_ORDER_C || order == LLIO_ORDER_FORTRAN);
  return guarded([&] {
    std::vector<llio::dt::Distrib> dist(llio::to_size(llio::Off{ndims}));
    for (int i = 0; i < ndims; ++i) {
      LLIO_REQUIRE(distribs[i] >= LLIO_DISTRIBUTE_NONE &&
                       distribs[i] <= LLIO_DISTRIBUTE_CYCLIC,
                   llio::Errc::InvalidDatatype, "darray: bad distribution");
      dist[llio::to_size(llio::Off{i})] =
          static_cast<llio::dt::Distrib>(distribs[i]);
    }
    wrap_type(llio::dt::darray(size, rank, offs(gsizes, ndims), dist,
                               offs(dargs, ndims), offs(psizes, ndims),
                               order == LLIO_ORDER_C ? llio::dt::Order::C
                                                     : llio::dt::Order::Fortran,
                               oldtype->type),
              out);
  });
}

int llio_type_size(LLIO_Datatype type, llio_offset* size) {
  LLIO_C_REQUIRE(type != nullptr && size != nullptr);
  *size = type->type->size();
  return LLIO_SUCCESS;
}

int llio_type_extent(LLIO_Datatype type, llio_offset* lb,
                     llio_offset* extent) {
  LLIO_C_REQUIRE(type != nullptr && lb != nullptr && extent != nullptr);
  *lb = type->type->lb();
  *extent = type->type->extent();
  return LLIO_SUCCESS;
}

int llio_type_free(LLIO_Datatype* type) {
  LLIO_C_REQUIRE(type != nullptr);
  delete *type;
  *type = nullptr;
  return LLIO_SUCCESS;
}

/* ---- pack/unpack ------------------------------------------------------- */

int llio_pack_size(llio_offset incount, LLIO_Datatype type,
                   llio_offset* size) {
  LLIO_C_REQUIRE(type != nullptr && size != nullptr);
  return guarded([&] { *size = llio::fotf::pack_size(incount, type->type); });
}

int llio_pack(const void* inbuf, llio_offset incount, LLIO_Datatype type,
              void* outbuf, llio_offset outsize, llio_offset* position) {
  LLIO_C_REQUIRE(type != nullptr && position != nullptr);
  return guarded([&] {
    llio::Off pos = *position;
    llio::fotf::pack(inbuf, incount, type->type, outbuf, outsize, &pos);
    *position = pos;
  });
}

int llio_unpack(const void* inbuf, llio_offset insize, llio_offset* position,
                void* outbuf, llio_offset outcount, LLIO_Datatype type) {
  LLIO_C_REQUIRE(type != nullptr && position != nullptr);
  return guarded([&] {
    llio::Off pos = *position;
    llio::fotf::unpack(inbuf, insize, &pos, outbuf, outcount, type->type);
    *position = pos;
  });
}

/* ---- files --------------------------------------------------------------*/

int llio_file_open(LLIO_Comm comm, LLIO_Storage storage, int method,
                   LLIO_File* out) {
  LLIO_C_REQUIRE(comm != nullptr && storage != nullptr && out != nullptr);
  LLIO_C_REQUIRE(method == LLIO_METHOD_LISTLESS ||
                 method == LLIO_METHOD_LIST_BASED);
  return guarded([&] {
    llio::mpiio::Options o;
    o.method = method == LLIO_METHOD_LISTLESS
                   ? llio::mpiio::Method::Listless
                   : llio::mpiio::Method::ListBased;
    *out = new llio_file_s{
        llio::mpiio::File::open(*comm->comm, storage->backend, o)};
  });
}

int llio_file_close(LLIO_File* f) {
  LLIO_C_REQUIRE(f != nullptr);
  delete *f;
  *f = nullptr;
  return LLIO_SUCCESS;
}

int llio_file_set_view(LLIO_File f, llio_offset disp, LLIO_Datatype etype,
                       LLIO_Datatype filetype) {
  LLIO_C_REQUIRE(f != nullptr && etype != nullptr && filetype != nullptr);
  return guarded(
      [&] { f->file.set_view(disp, etype->type, filetype->type); });
}

int llio_file_write_at(LLIO_File f, llio_offset offset, const void* buf,
                       llio_offset count, LLIO_Datatype type,
                       llio_offset* moved) {
  LLIO_C_REQUIRE(f != nullptr && type != nullptr);
  return guarded([&] {
    const llio::Off n = f->file.write_at(offset, buf, count, type->type);
    if (moved != nullptr) *moved = n;
  });
}

int llio_file_read_at(LLIO_File f, llio_offset offset, void* buf,
                      llio_offset count, LLIO_Datatype type,
                      llio_offset* moved) {
  LLIO_C_REQUIRE(f != nullptr && type != nullptr);
  return guarded([&] {
    const llio::Off n = f->file.read_at(offset, buf, count, type->type);
    if (moved != nullptr) *moved = n;
  });
}

int llio_file_write_at_all(LLIO_File f, llio_offset offset, const void* buf,
                           llio_offset count, LLIO_Datatype type,
                           llio_offset* moved) {
  LLIO_C_REQUIRE(f != nullptr && type != nullptr);
  return guarded([&] {
    const llio::Off n = f->file.write_at_all(offset, buf, count, type->type);
    if (moved != nullptr) *moved = n;
  });
}

int llio_file_read_at_all(LLIO_File f, llio_offset offset, void* buf,
                          llio_offset count, LLIO_Datatype type,
                          llio_offset* moved) {
  LLIO_C_REQUIRE(f != nullptr && type != nullptr);
  return guarded([&] {
    const llio::Off n = f->file.read_at_all(offset, buf, count, type->type);
    if (moved != nullptr) *moved = n;
  });
}

int llio_file_get_size(LLIO_File f, llio_offset* size) {
  LLIO_C_REQUIRE(f != nullptr && size != nullptr);
  return guarded([&] { *size = f->file.size(); });
}

int llio_file_set_size(LLIO_File f, llio_offset size) {
  LLIO_C_REQUIRE(f != nullptr);
  return guarded([&] { f->file.set_size(size); });
}

int llio_file_sync(LLIO_File f) {
  LLIO_C_REQUIRE(f != nullptr);
  return guarded([&] { f->file.sync(); });
}

int llio_file_set_atomicity(LLIO_File f, int atomic) {
  LLIO_C_REQUIRE(f != nullptr);
  return guarded([&] { f->file.set_atomicity(atomic != 0); });
}

} /* extern "C" */
