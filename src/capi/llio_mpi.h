/* llio C API: an MPI-flavoured C89-callable surface over the C++ core.
 *
 * Mirrors the subset of the MPI / MPI-IO C API the paper exercises:
 * datatype constructors, file open/set_view, independent and collective
 * read/write at explicit offsets, and pack/unpack.  All functions return
 * LLIO_SUCCESS (0) or a negative error code; llio_last_error() returns a
 * thread-local message for the most recent failure on this thread.
 *
 * Handles are opaque pointers owned by the caller: every *_create /
 * *_open / llio_type_* constructor has a matching *_free / *_close.
 * Datatype handles are reference-counted internally and may be freed as
 * soon as they have been passed to set_view or an access routine.
 *
 * Example (see examples/capi_demo.c):
 *   LLIO_Storage st; llio_storage_mem_create(&st);
 *   llio_run(4, body, st);      // body(comm, user) runs on 4 ranks
 *   ...
 *   void body(LLIO_Comm comm, void* user) {
 *     LLIO_File f; llio_file_open(comm, (LLIO_Storage)user,
 *                                 LLIO_METHOD_LISTLESS, &f);
 *     ...
 *   }
 */
#ifndef LLIO_MPI_H
#define LLIO_MPI_H

#ifdef __cplusplus
extern "C" {
#endif

/* ---- error codes ----------------------------------------------------- */

#define LLIO_SUCCESS 0
#define LLIO_ERR_ARG (-1)       /* invalid argument        */
#define LLIO_ERR_TYPE (-2)      /* invalid datatype        */
#define LLIO_ERR_VIEW (-3)      /* invalid fileview        */
#define LLIO_ERR_IO (-4)        /* storage failure         */
#define LLIO_ERR_PROTOCOL (-5)  /* runtime/peer failure    */
#define LLIO_ERR_UNSUPPORTED (-6)
#define LLIO_ERR_INTERNAL (-7)
#define LLIO_ERR_OTHER (-8)

/* Thread-local message for the most recent error on this thread. */
const char* llio_last_error(void);

/* ---- opaque handles --------------------------------------------------- */

typedef struct llio_comm_s* LLIO_Comm;        /* valid inside llio_run body */
typedef struct llio_storage_s* LLIO_Storage;  /* shared backing store       */
typedef struct llio_file_s* LLIO_File;
typedef struct llio_datatype_s* LLIO_Datatype;

typedef long long llio_offset; /* MPI_Offset analogue */

/* ---- runtime ----------------------------------------------------------- */

typedef void (*llio_main_fn)(LLIO_Comm comm, void* user);

/* Run `body` on nprocs simulated ranks; returns when all complete.
 * Any rank failure aborts the run and is reported here. */
int llio_run(int nprocs, llio_main_fn body, void* user);

int llio_comm_rank(LLIO_Comm comm, int* rank);
int llio_comm_size(LLIO_Comm comm, int* size);
int llio_barrier(LLIO_Comm comm);

/* ---- storage ----------------------------------------------------------- */

int llio_storage_mem_create(LLIO_Storage* out);
int llio_storage_posix_open(const char* path, int truncate,
                            LLIO_Storage* out);
/* Parallel file-server storage: nservers server threads each own a
 * stripe-aligned shard of the file, reached over a simulated
 * interconnect.  request_class is "contig", "list" or "view" (how client
 * accesses translate to the wire); nservers <= 0 and stripe <= 0 pick
 * the defaults. */
int llio_storage_psrv_create(int nservers, llio_offset stripe,
                             const char* request_class, LLIO_Storage* out);
int llio_storage_size(LLIO_Storage st, llio_offset* size);
int llio_storage_free(LLIO_Storage* st);

/* ---- datatypes --------------------------------------------------------- */

int llio_type_byte(LLIO_Datatype* out);
int llio_type_int(LLIO_Datatype* out);
int llio_type_double(LLIO_Datatype* out);

int llio_type_contiguous(llio_offset count, LLIO_Datatype oldtype,
                         LLIO_Datatype* out);
int llio_type_vector(llio_offset count, llio_offset blocklength,
                     llio_offset stride, LLIO_Datatype oldtype,
                     LLIO_Datatype* out);
int llio_type_create_hvector(llio_offset count, llio_offset blocklength,
                             llio_offset stride_bytes, LLIO_Datatype oldtype,
                             LLIO_Datatype* out);
int llio_type_indexed(llio_offset count, const llio_offset* blocklengths,
                      const llio_offset* displacements, LLIO_Datatype oldtype,
                      LLIO_Datatype* out);
int llio_type_create_hindexed(llio_offset count,
                              const llio_offset* blocklengths,
                              const llio_offset* byte_displacements,
                              LLIO_Datatype oldtype, LLIO_Datatype* out);
int llio_type_create_struct(llio_offset count,
                            const llio_offset* blocklengths,
                            const llio_offset* byte_displacements,
                            const LLIO_Datatype* types, LLIO_Datatype* out);
int llio_type_create_resized(LLIO_Datatype oldtype, llio_offset lb,
                             llio_offset extent, LLIO_Datatype* out);

#define LLIO_ORDER_C 0
#define LLIO_ORDER_FORTRAN 1

int llio_type_create_subarray(int ndims, const llio_offset* sizes,
                              const llio_offset* subsizes,
                              const llio_offset* starts, int order,
                              LLIO_Datatype oldtype, LLIO_Datatype* out);

#define LLIO_DISTRIBUTE_NONE 0
#define LLIO_DISTRIBUTE_BLOCK 1
#define LLIO_DISTRIBUTE_CYCLIC 2
#define LLIO_DISTRIBUTE_DFLT_DARG (-1)

int llio_type_create_darray(int size, int rank, int ndims,
                            const llio_offset* gsizes, const int* distribs,
                            const llio_offset* dargs,
                            const llio_offset* psizes, int order,
                            LLIO_Datatype oldtype, LLIO_Datatype* out);

int llio_type_size(LLIO_Datatype type, llio_offset* size);
int llio_type_extent(LLIO_Datatype type, llio_offset* lb,
                     llio_offset* extent);
int llio_type_free(LLIO_Datatype* type);

/* ---- pack/unpack (MPI_Pack-style) -------------------------------------- */

int llio_pack_size(llio_offset incount, LLIO_Datatype type,
                   llio_offset* size);
int llio_pack(const void* inbuf, llio_offset incount, LLIO_Datatype type,
              void* outbuf, llio_offset outsize, llio_offset* position);
int llio_unpack(const void* inbuf, llio_offset insize, llio_offset* position,
                void* outbuf, llio_offset outcount, LLIO_Datatype type);

/* ---- files -------------------------------------------------------------- */

#define LLIO_METHOD_LISTLESS 0
#define LLIO_METHOD_LIST_BASED 1

/* Collective over comm. */
int llio_file_open(LLIO_Comm comm, LLIO_Storage storage, int method,
                   LLIO_File* out);
int llio_file_close(LLIO_File* f);

/* Collective; displacement in bytes. */
int llio_file_set_view(LLIO_File f, llio_offset disp, LLIO_Datatype etype,
                       LLIO_Datatype filetype);

/* Offsets in etype units; *moved receives the bytes transferred. */
int llio_file_write_at(LLIO_File f, llio_offset offset, const void* buf,
                       llio_offset count, LLIO_Datatype type,
                       llio_offset* moved);
int llio_file_read_at(LLIO_File f, llio_offset offset, void* buf,
                      llio_offset count, LLIO_Datatype type,
                      llio_offset* moved);
int llio_file_write_at_all(LLIO_File f, llio_offset offset, const void* buf,
                           llio_offset count, LLIO_Datatype type,
                           llio_offset* moved);
int llio_file_read_at_all(LLIO_File f, llio_offset offset, void* buf,
                          llio_offset count, LLIO_Datatype type,
                          llio_offset* moved);

int llio_file_get_size(LLIO_File f, llio_offset* size);
int llio_file_set_size(LLIO_File f, llio_offset size);    /* collective */
int llio_file_sync(LLIO_File f);                          /* collective */
int llio_file_set_atomicity(LLIO_File f, int atomic);     /* collective */

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* LLIO_MPI_H */
