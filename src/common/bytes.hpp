// Byte-buffer aliases and checked integer helpers shared across llio.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace llio {

using Byte = std::byte;
using ByteSpan = std::span<Byte>;
using ConstByteSpan = std::span<const Byte>;
using ByteVec = std::vector<Byte>;

/// Signed 64-bit offset/length used throughout (mirrors MPI_Offset/MPI_Aint).
using Off = std::int64_t;

inline Byte* as_bytes(void* p) noexcept { return static_cast<Byte*>(p); }
inline const Byte* as_bytes(const void* p) noexcept {
  return static_cast<const Byte*>(p);
}

/// Checked narrowing from Off to std::size_t (for memcpy sizes, indices).
inline std::size_t to_size(Off v) {
  LLIO_REQUIRE(v >= 0, Errc::InvalidArgument, "negative size/offset");
  return static_cast<std::size_t>(v);
}

/// Checked widening from std::size_t to Off.
inline Off to_off(std::size_t v) {
  LLIO_REQUIRE(v <= static_cast<std::size_t>(std::numeric_limits<Off>::max()),
               Errc::InvalidArgument, "size overflows Off");
  return static_cast<Off>(v);
}

/// floor(a / b) for b > 0, correct for negative a.
constexpr Off floor_div(Off a, Off b) noexcept {
  Off q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// ceil(a / b) for b > 0.
constexpr Off ceil_div(Off a, Off b) noexcept { return floor_div(a + b - 1, b); }

constexpr Off round_down(Off a, Off b) noexcept { return floor_div(a, b) * b; }
constexpr Off round_up(Off a, Off b) noexcept { return ceil_div(a, b) * b; }

}  // namespace llio
