#include "common/error.hpp"

namespace llio {

const char* errc_name(Errc code) noexcept {
  switch (code) {
    case Errc::InvalidArgument: return "InvalidArgument";
    case Errc::InvalidDatatype: return "InvalidDatatype";
    case Errc::InvalidView: return "InvalidView";
    case Errc::Io: return "Io";
    case Errc::Protocol: return "Protocol";
    case Errc::Unsupported: return "Unsupported";
    case Errc::Internal: return "Internal";
  }
  return "Unknown";
}

Error::Error(Errc code, const std::string& what)
    : std::runtime_error(std::string(errc_name(code)) + ": " + what),
      code_(code) {}

void throw_error(Errc code, const std::string& message) {
  throw Error(code, message);
}

}  // namespace llio
