// Error handling for llio: a single exception type carrying an error code
// and a formatted message, plus check macros used at API boundaries.
#pragma once

#include <stdexcept>
#include <string>

namespace llio {

/// Error categories roughly mirroring the MPI-IO error classes that the
/// original ROMIO/MPI-SX code paths can raise.
enum class Errc {
  InvalidArgument,   ///< bad parameter (count < 0, null buffer, ...)
  InvalidDatatype,   ///< malformed or unsupported datatype construction
  InvalidView,       ///< fileview violates MPI-IO filetype rules
  Io,                ///< underlying storage failure
  Protocol,          ///< internal message-passing protocol violation
  Unsupported,       ///< feature intentionally out of scope
  Internal,          ///< invariant violation (library bug)
};

/// Human-readable name of an error category ("InvalidArgument", ...).
const char* errc_name(Errc code) noexcept;

/// The exception thrown by all llio components.
class Error : public std::runtime_error {
 public:
  Error(Errc code, const std::string& what);

  Errc code() const noexcept { return code_; }

 private:
  Errc code_;
};

[[noreturn]] void throw_error(Errc code, const std::string& message);

}  // namespace llio

/// Validate a user-facing precondition; throws llio::Error on failure.
#define LLIO_REQUIRE(cond, code, msg)                  \
  do {                                                 \
    if (!(cond)) ::llio::throw_error((code), (msg));   \
  } while (0)

/// Validate an internal invariant; failure indicates a library bug.
#define LLIO_ASSERT(cond, msg)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::llio::throw_error(::llio::Errc::Internal,                           \
                          std::string("invariant violated: ") + (msg));     \
  } while (0)
