#include "common/format.hpp"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace llio {

std::string strprintf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n < 0) {
    va_end(args2);
    return {};
  }
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string human_bytes(std::int64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  if (u == 0) return strprintf("%lld B", static_cast<long long>(bytes));
  return strprintf("%.1f %s", v, units[u]);
}

std::string human_mbps(double bytes_per_second) {
  double mbps = bytes_per_second / (1024.0 * 1024.0);
  if (mbps >= 100.0) return strprintf("%.0f MB/s", mbps);
  if (mbps >= 1.0) return strprintf("%.1f MB/s", mbps);
  return strprintf("%.3f MB/s", mbps);
}

}  // namespace llio
