// Minimal string-formatting helpers (libstdc++ 12 lacks <format>).
#pragma once

#include <cstdint>
#include <string>

namespace llio {

/// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable byte count: "8 B", "2.0 KiB", "1.5 MiB", ...
std::string human_bytes(std::int64_t bytes);

/// Human-readable rate in MB/s with sensible precision.
std::string human_mbps(double bytes_per_second);

}  // namespace llio
