// Wall-clock timing utilities used by the benchmark harnesses and the
// per-operation I/O statistics.
#pragma once

#include <chrono>

namespace llio {

/// Monotonic wall-clock timer with second-resolution double output.
class WallTimer {
 public:
  using Clock = std::chrono::steady_clock;

  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  Clock::time_point start_;
};

/// Accumulates wall time across start/stop intervals (e.g. "time spent
/// building ol-lists" summed over a whole benchmark run).
class StopWatch {
 public:
  void start() { t0_ = WallTimer::Clock::now(); running_ = true; }

  void stop() {
    if (!running_) return;
    total_ += std::chrono::duration<double>(WallTimer::Clock::now() - t0_)
                  .count();
    running_ = false;
  }

  void reset() { total_ = 0.0; running_ = false; }

  double seconds() const { return total_; }

 private:
  WallTimer::Clock::time_point t0_{};
  double total_ = 0.0;
  bool running_ = false;
};

/// RAII guard accumulating the lifetime of a scope into a StopWatch.
class ScopedTimer {
 public:
  explicit ScopedTimer(StopWatch& watch) : watch_(watch) { watch_.start(); }
  ~ScopedTimer() { watch_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  StopWatch& watch_;
};

}  // namespace llio
