#include "common/worker_pool.hpp"

#include <algorithm>

namespace llio {

WorkerPool& WorkerPool::shared() {
  static WorkerPool* pool = new WorkerPool();  // leaked, see header
  return *pool;
}

WorkerPool::Reservation WorkerPool::reserve(int n) {
  n = std::max(n, 0);
  if (n > 0) {
    std::lock_guard lock(mu_);
    demand_ += n;
    grow_locked(demand_);
  }
  return Reservation(this, n);
}

void WorkerPool::Reservation::release() {
  if (pool_ == nullptr || n_ == 0) return;
  std::lock_guard lock(pool_->mu_);
  pool_->demand_ -= n_;
  pool_ = nullptr;
  n_ = 0;
}

void WorkerPool::enqueue(std::function<void()> fn) {
  {
    std::lock_guard lock(mu_);
    // A submit without a covering reservation still makes progress.
    if (threads_.empty()) grow_locked(1);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void WorkerPool::grow_locked(int target) {
  target = std::min(target, kMaxThreads);
  while (static_cast<int>(threads_.size()) < target)
    threads_.emplace_back([this] { loop(); });
}

int WorkerPool::threads() const {
  std::lock_guard lock(mu_);
  return static_cast<int>(threads_.size());
}

void WorkerPool::loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return !queue_.empty(); });
    std::function<void()> fn = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    fn();  // packaged_task: exceptions land in the caller's future
    // Destroy the job before re-locking: its captures may hold a
    // Reservation whose release takes mu_.
    fn = nullptr;
    lock.lock();
  }
}

}  // namespace llio
