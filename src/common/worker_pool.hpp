// Process-wide persistent worker pool, shared by every subsystem that
// needs short-lived CPU or I/O jobs: the collective pipeline's pread/
// pwrite workers and the parallel FOTF pack slices both run here, so one
// set of threads serves the whole process instead of each pipeline run
// spawning (and joining) its own.
//
// Sizing: the pool starts empty and grows to the peak *concurrent*
// demand, expressed through RAII reservations — a pipeline run holding
// `reserve(depth)` and a pack call holding `reserve(threads - 1)` at the
// same time guarantee depth + threads - 1 workers exist.  Threads are
// never torn down (the pool outlives every user, like obs::Tracer), so
// steady-state collective loops pay zero thread churn.
//
// Nested submit-and-wait from inside a pool job is safe ONLY when the
// nested stage holds its own live reservation for the workers it waits
// on (pfs::AsyncIo reserves its queue depth for its whole lifetime, so a
// pipeline I/O worker blocking in AsyncIo::wait always has dedicated
// engine workers to make progress).  A job without that guarantee must
// stay self-contained: run one share of the work inline so the worst
// case under contention is serialization on the submitting thread, never
// deadlock.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace llio {

class WorkerPool {
 public:
  /// The process-wide pool.  Intentionally leaked (reachable, so LSan
  /// stays quiet): worker threads park on the condition variable at exit
  /// and are reaped by process teardown.
  static WorkerPool& shared();

  /// RAII claim on `n` concurrent workers; the pool grows so that all
  /// live reservations can run simultaneously.  Releasing never shrinks
  /// the pool.
  class Reservation {
   public:
    Reservation() = default;
    Reservation(Reservation&& o) noexcept
        : pool_(o.pool_), n_(o.n_) {
      o.pool_ = nullptr;
      o.n_ = 0;
    }
    Reservation& operator=(Reservation&& o) noexcept {
      release();
      pool_ = o.pool_;
      n_ = o.n_;
      o.pool_ = nullptr;
      o.n_ = 0;
      return *this;
    }
    Reservation(const Reservation&) = delete;
    Reservation& operator=(const Reservation&) = delete;
    ~Reservation() { release(); }

   private:
    friend class WorkerPool;
    Reservation(WorkerPool* pool, int n) : pool_(pool), n_(n) {}
    void release();
    WorkerPool* pool_ = nullptr;
    int n_ = 0;
  };

  Reservation reserve(int n);

  /// Enqueue `fn`; exceptions propagate through the returned future.
  template <class F>
  auto submit(F&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Current worker-thread count (tests/diagnostics).
  int threads() const;

 private:
  WorkerPool() = default;
  void enqueue(std::function<void()> fn);
  void grow_locked(int target);
  void loop();

  static constexpr int kMaxThreads = 64;  ///< runaway-reservation backstop

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int demand_ = 0;  ///< sum of live reservations
};

}  // namespace llio
