#include "core/fotf_mover.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "fotf/pack.hpp"

namespace llio::core {

FotfMover::FotfMover(const void* buf, Off count, dt::Type memtype,
                     fotf::PackConfig cfg, mpiio::IoOpStats* stats)
    : buf_(const_cast<Byte*>(as_bytes(buf))), memtype_(std::move(memtype)),
      count_(count), cfg_(cfg), stats_(stats), cur_(memtype_, count_) {}

fotf::SegmentCursor& FotfMover::at(Off s) {
  if (next_stream_ != s) cur_.seek(s);
  return cur_;
}

void FotfMover::fold(const fotf::RangeStats& rs) {
  if (stats_ == nullptr) return;
  stats_->pack_threads_used =
      std::max<std::uint64_t>(stats_->pack_threads_used,
                              static_cast<std::uint64_t>(rs.threads_used));
  stats_->pack_slices += rs.slices;
  stats_->pack_slice_max_s =
      std::max(stats_->pack_slice_max_s, rs.slice_max_s);
  stats_->pack_slice_total_s += rs.slice_total_s;
}

void FotfMover::to_stream(Byte* dst, Off s, Off n) {
  if (n <= 0) return;
  fotf::SegmentCursor* reuse =
      fotf::will_parallelize(cfg_, n) ? nullptr : &at(s);
  fotf::RangeStats rs;
  const Off copied = fotf::pack_range(memtype_, count_, buf_, 0, s, dst, n,
                                      cfg_, nullptr, &rs, reuse);
  LLIO_ASSERT(copied == n, "FotfMover::to_stream: short transfer");
  if (rs.used_cursor) next_stream_ = s + n;
  fold(rs);
}

void FotfMover::from_stream(const Byte* src, Off s, Off n) {
  if (n <= 0) return;
  fotf::SegmentCursor* reuse =
      fotf::will_parallelize(cfg_, n) ? nullptr : &at(s);
  fotf::RangeStats rs;
  const Off copied = fotf::unpack_range(memtype_, count_, buf_, 0, s, src, n,
                                        cfg_, nullptr, &rs, reuse);
  LLIO_ASSERT(copied == n, "FotfMover::from_stream: short transfer");
  if (rs.used_cursor) next_stream_ = s + n;
  fold(rs);
}

bool FotfMover::mem_runs(Off s, Off n, const mpiio::RunBudget& budget,
                         std::vector<ByteSpan>& out) {
  if (n <= 0) return false;
  if (!plan_tried_) {
    plan_tried_ = true;
    if (cfg_.use_plan) plan_ = fotf::PackPlan::compile(memtype_);
  }
  if (plan_ == nullptr) return false;  // declined to compile: stage instead
  // Tiny runs traverse faster through the strided pack kernels than as
  // descriptor entries; decline and let the caller stage.
  if (plan_->run_count() > 1 &&
      plan_->instance_size() / plan_->run_count() < budget.min_avg_run)
    return false;
  fotf::IoVecSpan span;
  if (!plan_->materialize(0, count_, s, n, budget.max_runs, span))
    return false;
  out.reserve(out.size() + span.runs.size());
  for (const fotf::MemRun& r : span.runs)
    out.push_back(ByteSpan(buf_ + r.mem, to_size(r.len)));
  return true;
}

}  // namespace llio::core
