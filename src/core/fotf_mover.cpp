#include "core/fotf_mover.hpp"

#include "common/error.hpp"
#include "fotf/pack.hpp"

namespace llio::core {

FotfMover::FotfMover(const void* buf, Off count, dt::Type memtype)
    : buf_(const_cast<Byte*>(as_bytes(buf))), memtype_(std::move(memtype)),
      count_(count), cur_(memtype_, count_) {}

fotf::SegmentCursor& FotfMover::at(Off s) {
  if (next_stream_ != s) cur_.seek(s);
  return cur_;
}

void FotfMover::to_stream(Byte* dst, Off s, Off n) {
  if (n <= 0) return;
  const Off copied = fotf::transfer_pack(at(s), buf_, 0, dst, n);
  LLIO_ASSERT(copied == n, "FotfMover::to_stream: short transfer");
  next_stream_ = s + n;
}

void FotfMover::from_stream(const Byte* src, Off s, Off n) {
  if (n <= 0) return;
  const Off copied = fotf::transfer_unpack(at(s), buf_, 0, src, n);
  LLIO_ASSERT(copied == n, "FotfMover::from_stream: short transfer");
  next_stream_ = s + n;
}

}  // namespace llio::core
