// Listless StreamMover: moves data between a non-contiguous user buffer
// and its dense stream with flattening-on-the-fly pack/unpack.  Large
// moves are sliced across the shared worker pool (fotf::pack_range);
// pack/unpack never compile a memtype PackPlan — movers live for one
// operation, plans are a per-fileview amortization.  mem_runs() does
// compile one lazily: the zero-copy descriptor needs the run table, and
// a single-instance walk is far cheaper than the staging copy it avoids.
#pragma once

#include <memory>

#include "fotf/cursor.hpp"
#include "fotf/parallel.hpp"
#include "fotf/plan.hpp"
#include "mpiio/io_stats.hpp"
#include "mpiio/navigator.hpp"

namespace llio::core {

class FotfMover final : public mpiio::StreamMover {
 public:
  /// `buf` holds `count` instances of `memtype`.  The const_cast is safe:
  /// from_stream is only invoked on buffers the caller owns mutably.
  /// `stats`, when bound, receives slice counters and must outlive the
  /// mover.
  FotfMover(const void* buf, Off count, dt::Type memtype,
            fotf::PackConfig cfg = {}, mpiio::IoOpStats* stats = nullptr);

  void to_stream(Byte* dst, Off s, Off n) override;
  void from_stream(const Byte* src, Off s, Off n) override;
  bool mem_runs(Off s, Off n, const mpiio::RunBudget& budget,
                std::vector<ByteSpan>& out) override;

 private:
  fotf::SegmentCursor& at(Off s);
  void fold(const fotf::RangeStats& rs);

  Byte* buf_;
  dt::Type memtype_;
  Off count_;
  fotf::PackConfig cfg_;
  mpiio::IoOpStats* stats_ = nullptr;
  fotf::SegmentCursor cur_;
  Off next_stream_ = 0;  ///< cursor's current stream position
  std::shared_ptr<const fotf::PackPlan> plan_;  ///< lazy, mem_runs only
  bool plan_tried_ = false;
};

}  // namespace llio::core
