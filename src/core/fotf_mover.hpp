// Listless StreamMover: moves data between a non-contiguous user buffer
// and its dense stream with flattening-on-the-fly pack/unpack.
#pragma once

#include <memory>

#include "fotf/cursor.hpp"
#include "mpiio/navigator.hpp"

namespace llio::core {

class FotfMover final : public mpiio::StreamMover {
 public:
  /// `buf` holds `count` instances of `memtype`.  The const_cast is safe:
  /// from_stream is only invoked on buffers the caller owns mutably.
  FotfMover(const void* buf, Off count, dt::Type memtype);

  void to_stream(Byte* dst, Off s, Off n) override;
  void from_stream(const Byte* src, Off s, Off n) override;

 private:
  fotf::SegmentCursor& at(Off s);

  Byte* buf_;
  dt::Type memtype_;
  Off count_;
  fotf::SegmentCursor cur_;
  Off next_stream_ = 0;  ///< cursor's current stream position
};

}  // namespace llio::core
