// Listless StreamMover: moves data between a non-contiguous user buffer
// and its dense stream with flattening-on-the-fly pack/unpack.  Large
// moves are sliced across the shared worker pool (fotf::pack_range);
// memtypes get no PackPlan — movers live for one operation, plans are a
// per-fileview amortization.
#pragma once

#include <memory>

#include "fotf/cursor.hpp"
#include "fotf/parallel.hpp"
#include "mpiio/io_stats.hpp"
#include "mpiio/navigator.hpp"

namespace llio::core {

class FotfMover final : public mpiio::StreamMover {
 public:
  /// `buf` holds `count` instances of `memtype`.  The const_cast is safe:
  /// from_stream is only invoked on buffers the caller owns mutably.
  /// `stats`, when bound, receives slice counters and must outlive the
  /// mover.
  FotfMover(const void* buf, Off count, dt::Type memtype,
            fotf::PackConfig cfg = {}, mpiio::IoOpStats* stats = nullptr);

  void to_stream(Byte* dst, Off s, Off n) override;
  void from_stream(const Byte* src, Off s, Off n) override;

 private:
  fotf::SegmentCursor& at(Off s);
  void fold(const fotf::RangeStats& rs);

  Byte* buf_;
  dt::Type memtype_;
  Off count_;
  fotf::PackConfig cfg_;
  mpiio::IoOpStats* stats_ = nullptr;
  fotf::SegmentCursor cur_;
  Off next_stream_ = 0;  ///< cursor's current stream position
};

}  // namespace llio::core
