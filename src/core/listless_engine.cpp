#include "core/listless_engine.hpp"

#include <algorithm>
#include <cstring>
#include <deque>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/fotf_mover.hpp"
#include "dtype/normalize.hpp"
#include "dtype/serialize.hpp"
#include "mpiio/mergeview.hpp"
#include "mpiio/pipeline.hpp"
#include "mpiio/sieve.hpp"
#include "mpiio/twophase.hpp"
#include "obs/trace.hpp"

namespace llio::core {

using mpiio::AccessRange;
using mpiio::Domain;
using mpiio::MergeContig;
using mpiio::SieveContext;
using mpiio::View;

namespace {

void put_off(ByteVec& out, Off v) {
  Byte raw[sizeof(Off)];
  std::memcpy(raw, &v, sizeof(Off));
  out.insert(out.end(), raw, raw + sizeof(Off));
}

Off get_off(ConstByteSpan data, std::size_t at) {
  LLIO_REQUIRE(at + sizeof(Off) <= data.size(), Errc::Protocol,
               "short message");
  Off v;
  std::memcpy(&v, data.data() + at, sizeof(Off));
  return v;
}

fotf::PackConfig pack_config(const mpiio::Options& o) {
  fotf::PackConfig c;
  c.threads = std::max(1, o.pack_threads);
  c.parallel_min = std::max<Off>(1, o.pack_parallel_min);
  c.use_plan = o.pack_plan;
  return c;
}

}  // namespace

void ListlessEngine::set_view(const View& v) {
  validate_view(v);
  view_ = v;
  ++view_epoch_;  // invalidates cached mergeview verdicts
  // Normalize once: the cursor then sees the largest regular strata, and
  // the cached wire form shrinks.  The typemap is provably unchanged.
  const dt::Type ft = dt::normalize(v.filetype);
  const fotf::PackConfig pc = pack_config(opts_);
  nav_ = std::make_unique<ListlessNav>(ft, pc);
  nav_->bind_stats(&stats_);

  // Fileview caching (§3.2.3): exchange the compact representation once.
  ByteVec blob;
  put_off(blob, v.disp);
  const ByteVec enc = dt::serialize(ft);
  blob.insert(blob.end(), enc.begin(), enc.end());
  auto all = comm_->allgather(blob, sim::MsgClass::Meta);

  cached_.clear();
  cached_.reserve(all.size());
  for (auto& raw : all) {
    CachedView cv;
    cv.disp = get_off(raw, 0);
    cv.filetype = dt::deserialize(
        ConstByteSpan(raw.data() + sizeof(Off), raw.size() - sizeof(Off)));
    cv.nav = std::make_unique<ListlessNav>(cv.filetype, pc);
    cv.nav->bind_stats(&stats_);
    cached_.push_back(std::move(cv));
  }
}

void ListlessEngine::on_tuning_changed() {
  const int threads = std::max(1, opts_.pack_threads);
  if (nav_) nav_->set_pack_threads(threads);
  for (CachedView& cv : cached_)
    if (cv.nav) cv.nav->set_pack_threads(threads);
}

std::unique_ptr<mpiio::StreamMover> ListlessEngine::make_nc_mover(
    const void* buf, Off count, const dt::Type& mt) {
  return std::make_unique<FotfMover>(buf, count, mt, pack_config(opts_),
                                     &stats_);
}

Off ListlessEngine::do_write_at(Off stream_lo, const void* buf, Off count,
                                const dt::Type& mt) {
  const Off nbytes = count * mt->size();
  if (nbytes == 0) return 0;
  auto mover = make_mover(buf, count, mt);
  return indep_write(*nav_, stream_lo, nbytes, *mover);
}

Off ListlessEngine::do_read_at(Off stream_lo, void* buf, Off count,
                               const dt::Type& mt) {
  const Off nbytes = count * mt->size();
  if (nbytes == 0) return 0;
  auto mover = make_mover(buf, count, mt);
  return indep_read(*nav_, stream_lo, nbytes, *mover);
}

Off ListlessEngine::do_write_at_all(Off stream_lo, const void* buf, Off count,
                                    const dt::Type& mt) {
  if (!opts_.cb_write) {  // collective buffering disabled (hint)
    const Off n = do_write_at(stream_lo, buf, count, mt);
    comm_->barrier();
    return n;
  }
  const Off nbytes = count * mt->size();
  const int p = comm_->size();
  const int niops = mpiio::effective_iops(opts_.io_procs, p);
  const Off fbs = opts_.file_buffer_size;

  // Phase 0: exchange access ranges (tiny, Meta).
  AccessRange mine{stream_lo, nbytes, 0, 0};
  if (nbytes > 0) {
    mine.abs_lo = view_.disp + nav_->stream_to_file_start(stream_lo);
    mine.abs_hi = view_.disp + nav_->stream_to_file_end(stream_lo + nbytes);
  }
  StopWatch xw;
  std::vector<AccessRange> ranges;
  {
    obs::Span span("exchange");
    span.arg("what", "ranges");
    xw.start();
    ranges = mpiio::exchange_ranges(*comm_, mine);
    xw.stop();
  }
  stats_.exchange_s += xw.seconds();

  const auto g = mpiio::global_range(ranges);
  if (!g.any) {
    comm_->barrier();
    return 0;
  }

  // Mergeview bypass: every participant's restriction to its access range
  // is one contiguous extent and the extents are pairwise disjoint — each
  // rank writes its own extent directly, no exchange, no RMW.
  if (opts_.merge_contig != MergeContig::Off &&
      mpiio::ranges_dense_disjoint(ranges)) {
    if (nbytes > 0) {
      SieveContext ctx{*file_, *locks_, opts_, stats_};
      auto m = make_mover(buf, count, mt);
      pfs::ScopedRangeLock lock(*locks_, mine.abs_lo, mine.abs_hi);
      mpiio::dense_write(ctx, mine.abs_lo, nbytes, *m);
    }
    comm_->barrier();
    ++stats_.merge_contig_ops;
    return nbytes;  // dense_write already counted bytes_moved
  }

  const auto domains = mpiio::partition_domains(g, niops, fbs);

  // Phase 1 (AP side): for each IOP, ship the slice of my packed stream
  // that falls into its file domain.  Header: [s_lo][s_hi], then data.
  // With llio_zerocopy=auto the data rides as gather-on-send runs
  // referencing the user buffer (materialized once, into the mailbox);
  // otherwise — or when the run budget declines — it is packed behind
  // the header exactly as before.
  std::unique_ptr<mpiio::StreamMover> mover;
  if (nbytes > 0) mover = make_mover(buf, count, mt);
  std::vector<sim::GatherMsg> outgoing(to_size(Off{p}));
  if (nbytes > 0) {
    obs::Span span("pack");
    span.arg("what", "phase1_gather");
    const mpiio::RunBudget budget = mpiio::zerocopy_budget(opts_);
    std::vector<ByteSpan> runs;
    for (int i = 0; i < niops; ++i) {
      const Domain& d = domains[to_size(Off{i})];
      const Off lo = std::max(d.lo, mine.abs_lo);
      const Off hi = std::min(d.hi, mine.abs_hi);
      if (hi <= lo) continue;
      const Off s1 = std::clamp(nav_->file_to_stream(lo - view_.disp),
                                stream_lo, stream_lo + nbytes);
      const Off s2 = std::clamp(nav_->file_to_stream(hi - view_.disp),
                                stream_lo, stream_lo + nbytes);
      if (s2 <= s1) continue;
      sim::GatherMsg& msg = outgoing[to_size(Off{i})];
      put_off(msg.header, s1);
      put_off(msg.header, s2);
      runs.clear();
      if (opts_.zerocopy == mpiio::Zerocopy::Auto &&
          mover->mem_runs(s1 - stream_lo, s2 - s1, budget, runs)) {
        msg.runs.assign(runs.begin(), runs.end());
        ++stats_.zerocopy_windows;
        stats_.iov_runs += runs.size();
        stats_.staging_bytes_saved += s2 - s1;
      } else {
        if (opts_.zerocopy == mpiio::Zerocopy::Auto)
          ++stats_.staged_fallback_windows;
        const std::size_t hdr = msg.header.size();
        msg.header.resize(hdr + to_size(s2 - s1));
        StopWatch cw;
        cw.start();
        mover->to_stream(msg.header.data() + hdr, s1 - stream_lo, s2 - s1);
        cw.stop();
        stats_.copy_s += cw.seconds();
      }
      stats_.data_bytes_sent += s2 - s1;
    }
  }
  xw.reset();
  std::vector<ByteVec> incoming;
  {
    obs::Span span("exchange");
    span.arg("what", "data");
    xw.start();
    incoming = comm_->alltoall_gather(std::move(outgoing), sim::MsgClass::Data);
    xw.stop();
  }
  stats_.exchange_s += xw.seconds();

  // Phase 2 (IOP side): patch file blocks with the received stream slices
  // driven by the cached fileviews.
  const int rank = comm_->rank();
  if (rank < niops && !domains[to_size(Off{rank})].empty()) {
    const Domain dom = domains[to_size(Off{rank})];
    SieveContext ctx{*file_, *locks_, opts_, stats_};

    // Mergeview analysis (§3.2.4): per-window hole-freeness over the
    // cached fileviews, memoized across repeated collectives on the same
    // view.  Off/Force skip the analysis entirely.
    const MergeContig mode = opts_.merge_contig;
    const mpiio::DomainWindows* verdict = nullptr;
    if (mode == MergeContig::Auto) {
      obs::Span span("merge_analysis");
      StopWatch mw;
      mw.start();
      verdict = &merge_cache_.get(
          mpiio::MergeCache::Key{view_epoch_, dom.lo, dom.hi, fbs, ranges},
          [&] {
            std::vector<mpiio::ViewContribution> contribs;
            for (int r = 0; r < p; ++r) {
              const AccessRange& ar = ranges[to_size(Off{r})];
              if (ar.nbytes <= 0) continue;
              const CachedView& cv = cached_[to_size(Off{r})];
              contribs.push_back({cv.filetype, cv.disp, ar.stream_lo,
                                  ar.stream_lo + ar.nbytes});
            }
            return mpiio::analyze_view_domain(dom.lo, dom.hi, fbs, contribs);
          });
      mw.stop();
      stats_.merge_analysis_s += mw.seconds();
    }

    struct Incoming {
      int src;
      Off s_lo, s_hi;
      const Byte* data;
      ListlessNav* nav;
      Off disp;
    };
    std::vector<Incoming> srcs;
    for (int r = 0; r < p; ++r) {
      const ByteVec& msg = incoming[to_size(Off{r})];
      if (msg.empty()) continue;
      Incoming in;
      in.src = r;
      in.s_lo = get_off(msg, 0);
      in.s_hi = get_off(msg, sizeof(Off));
      in.data = msg.data() + 2 * sizeof(Off);
      in.nav = cached_[to_size(Off{r})].nav.get();
      in.disp = cached_[to_size(Off{r})].disp;
      LLIO_REQUIRE(msg.size() == 2 * sizeof(Off) + to_size(in.s_hi - in.s_lo),
                   Errc::Protocol, "write_at_all: bad payload size");
      srcs.push_back(in);
    }
    struct Slice {
      const Incoming* in;
      Off s1, s2;
    };
    // Slices are computed by `next` (the navs stay on the compute thread)
    // and consumed by `fill` in the same window order.
    std::deque<std::vector<Slice>> queued;
    Off pos = dom.lo;
    auto next = [&](mpiio::WindowPlan& plan) {
      while (pos < dom.hi) {
        const Off win_lo = pos;
        const Off win_hi = std::min(dom.hi, pos + fbs);
        pos = win_hi;
        std::vector<Slice> slices;
        for (const Incoming& in : srcs) {
          const Off s1 = std::clamp(in.nav->file_to_stream(win_lo - in.disp),
                                    in.s_lo, in.s_hi);
          const Off s2 = std::clamp(in.nav->file_to_stream(win_hi - in.disp),
                                    in.s_lo, in.s_hi);
          if (s2 <= s1) continue;
          slices.push_back({&in, s1, s2});
        }
        if (slices.empty()) continue;
        plan.lo = win_lo;
        plan.hi = win_hi;
        plan.preread = mode == MergeContig::Off    ? true
                       : mode == MergeContig::Force ? false
                                                    : !verdict->dense_at(win_lo);
        plan.writeback = true;
        plan.lock = true;
        queued.push_back(std::move(slices));
        return true;
      }
      return false;
    };
    auto fill = [&](const mpiio::WindowPlan& plan, ByteSpan fbuf) {
      std::vector<Slice> slices = std::move(queued.front());
      queued.pop_front();
      obs::Span span("pack");
      span.arg("win", plan.index);
      span.arg("slices", to_off(slices.size()));
      StopWatch cw;
      cw.start();
      for (const Slice& sl : slices) {
        sl.in->nav->scatter(fbuf.data(), plan.lo - sl.in->disp, sl.s1,
                            sl.in->data + (sl.s1 - sl.in->s_lo), sl.s2 - sl.s1);
      }
      cw.stop();
      stats_.copy_s += cw.seconds();
    };
    mpiio::run_window_pipeline(ctx, opts_.pipeline_depth,
                               std::min(fbs, dom.hi - dom.lo), next, fill);
  }
  comm_->barrier();
  stats_.bytes_moved += nbytes;
  return nbytes;
}

Off ListlessEngine::do_read_at_all(Off stream_lo, void* buf, Off count,
                                   const dt::Type& mt) {
  if (!opts_.cb_read) {
    const Off n = do_read_at(stream_lo, buf, count, mt);
    comm_->barrier();
    return n;
  }
  const Off nbytes = count * mt->size();
  const int p = comm_->size();
  const int rank = comm_->rank();
  const int niops = mpiio::effective_iops(opts_.io_procs, p);
  const Off fbs = opts_.file_buffer_size;

  AccessRange mine{stream_lo, nbytes, 0, 0};
  if (nbytes > 0) {
    mine.abs_lo = view_.disp + nav_->stream_to_file_start(stream_lo);
    mine.abs_hi = view_.disp + nav_->stream_to_file_end(stream_lo + nbytes);
  }
  StopWatch xw;
  std::vector<AccessRange> ranges;
  {
    obs::Span span("exchange");
    span.arg("what", "ranges");
    xw.start();
    ranges = mpiio::exchange_ranges(*comm_, mine);
    xw.stop();
  }
  stats_.exchange_s += xw.seconds();

  const auto g = mpiio::global_range(ranges);
  if (!g.any) {
    comm_->barrier();
    return 0;
  }

  // Mergeview bypass (read side): every participant's restriction is one
  // contiguous extent — each rank reads its own extent directly, no
  // exchange.  Unlike the write bypass, overlap between readers is
  // harmless, so disjointness is not required.
  if (opts_.merge_contig != MergeContig::Off && mpiio::ranges_dense(ranges)) {
    if (nbytes > 0) {
      SieveContext ctx{*file_, *locks_, opts_, stats_};
      auto m = make_mover(buf, count, mt);
      mpiio::dense_read(ctx, mine.abs_lo, nbytes, *m);
    }
    comm_->barrier();
    ++stats_.merge_contig_ops;
    return nbytes;  // dense_read already counted bytes_moved
  }

  const auto domains = mpiio::partition_domains(g, niops, fbs);

  // Phase 1: request the stream slice [s1, s2) from each IOP (Meta).
  std::vector<ByteVec> requests(to_size(Off{p}));
  std::vector<std::pair<Off, Off>> my_slices(to_size(Off{p}), {0, 0});
  if (nbytes > 0) {
    for (int i = 0; i < niops; ++i) {
      const Domain& d = domains[to_size(Off{i})];
      const Off lo = std::max(d.lo, mine.abs_lo);
      const Off hi = std::min(d.hi, mine.abs_hi);
      if (hi <= lo) continue;
      const Off s1 = std::clamp(nav_->file_to_stream(lo - view_.disp),
                                stream_lo, stream_lo + nbytes);
      const Off s2 = std::clamp(nav_->file_to_stream(hi - view_.disp),
                                stream_lo, stream_lo + nbytes);
      if (s2 <= s1) continue;
      my_slices[to_size(Off{i})] = {s1, s2};
      ByteVec& msg = requests[to_size(Off{i})];
      put_off(msg, s1);
      put_off(msg, s2);
    }
  }
  xw.reset();
  std::vector<ByteVec> reqs;
  {
    obs::Span span("exchange");
    span.arg("what", "requests");
    xw.start();
    reqs = comm_->alltoall(std::move(requests), sim::MsgClass::Meta);
    xw.stop();
  }
  stats_.exchange_s += xw.seconds();

  // Phase 2 (IOP side): read my domain blockwise, gather each AP's slice
  // through its cached fileview, reply with pure data.
  std::vector<ByteVec> replies(to_size(Off{p}));
  if (rank < niops && !domains[to_size(Off{rank})].empty()) {
    const Domain dom = domains[to_size(Off{rank})];
    SieveContext ctx{*file_, *locks_, opts_, stats_};
    struct Req {
      Off s_lo, s_hi;
      ListlessNav* nav;
      Off disp;
      ByteVec* reply;
    };
    std::vector<Req> active;
    for (int r = 0; r < p; ++r) {
      const ByteVec& msg = reqs[to_size(Off{r})];
      if (msg.empty()) continue;
      Req rq;
      rq.s_lo = get_off(msg, 0);
      rq.s_hi = get_off(msg, sizeof(Off));
      rq.nav = cached_[to_size(Off{r})].nav.get();
      rq.disp = cached_[to_size(Off{r})].disp;
      rq.reply = &replies[to_size(Off{r})];
      rq.reply->resize(to_size(rq.s_hi - rq.s_lo));
      active.push_back(rq);
    }
    struct Slice {
      const Req* rq;
      Off s1, s2;
    };
    std::deque<std::vector<Slice>> queued;
    Off pos = dom.lo;
    auto next = [&](mpiio::WindowPlan& plan) {
      while (pos < dom.hi) {
        const Off win_lo = pos;
        const Off win_hi = std::min(dom.hi, pos + fbs);
        pos = win_hi;
        std::vector<Slice> slices;
        for (const Req& rq : active) {
          const Off s1 = std::clamp(rq.nav->file_to_stream(win_lo - rq.disp),
                                    rq.s_lo, rq.s_hi);
          const Off s2 = std::clamp(rq.nav->file_to_stream(win_hi - rq.disp),
                                    rq.s_lo, rq.s_hi);
          if (s2 <= s1) continue;
          slices.push_back({&rq, s1, s2});
        }
        if (slices.empty()) continue;
        plan.lo = win_lo;
        plan.hi = win_hi;
        plan.preread = true;
        plan.writeback = false;
        plan.lock = false;
        queued.push_back(std::move(slices));
        return true;
      }
      return false;
    };
    auto fill = [&](const mpiio::WindowPlan& plan, ByteSpan fbuf) {
      std::vector<Slice> slices = std::move(queued.front());
      queued.pop_front();
      obs::Span span("pack");
      span.arg("win", plan.index);
      span.arg("slices", to_off(slices.size()));
      StopWatch cw;
      cw.start();
      for (const Slice& sl : slices) {
        sl.rq->nav->gather(sl.rq->reply->data() + (sl.s1 - sl.rq->s_lo),
                           fbuf.data(), plan.lo - sl.rq->disp, sl.s1,
                           sl.s2 - sl.s1);
      }
      cw.stop();
      stats_.copy_s += cw.seconds();
    };
    mpiio::run_window_pipeline(ctx, opts_.pipeline_depth,
                               std::min(fbs, dom.hi - dom.lo), next, fill);
    for (const Req& rq : active) stats_.data_bytes_sent += rq.s_hi - rq.s_lo;
  }
  // Scatter-on-recv (llio_zerocopy=auto): replies whose stream slice
  // materializes into memory runs under the budget are delivered by the
  // exchange straight into the user buffer; their incoming slot comes
  // back empty and phase 3 skips it.
  std::unique_ptr<mpiio::StreamMover> mover;
  if (nbytes > 0) mover = make_mover(buf, count, mt);
  std::vector<std::vector<ByteSpan>> scatter(to_size(Off{p}));
  if (nbytes > 0 && opts_.zerocopy == mpiio::Zerocopy::Auto) {
    const mpiio::RunBudget budget = mpiio::zerocopy_budget(opts_);
    for (int i = 0; i < niops; ++i) {
      const auto [s1, s2] = my_slices[to_size(Off{i})];
      if (s2 <= s1) continue;
      std::vector<ByteSpan> runs;
      if (mover->mem_runs(s1 - stream_lo, s2 - s1, budget, runs)) {
        ++stats_.zerocopy_windows;
        stats_.iov_runs += runs.size();
        stats_.staging_bytes_saved += s2 - s1;
        scatter[to_size(Off{i})] = std::move(runs);
      } else {
        ++stats_.staged_fallback_windows;
      }
    }
  }
  xw.reset();
  std::vector<ByteVec> incoming;
  {
    obs::Span span("exchange");
    span.arg("what", "data");
    xw.start();
    incoming =
        comm_->alltoall_scatter(std::move(replies), scatter, sim::MsgClass::Data);
    xw.stop();
  }
  stats_.exchange_s += xw.seconds();

  // Phase 3 (AP side): unpack the replies that were not scatter-delivered.
  if (nbytes > 0) {
    obs::Span span("pack");
    span.arg("what", "phase3_unpack");
    StopWatch cw;
    cw.start();
    for (int i = 0; i < niops; ++i) {
      const auto [s1, s2] = my_slices[to_size(Off{i})];
      if (s2 <= s1) continue;
      if (!scatter[to_size(Off{i})].empty()) continue;  // already delivered
      const ByteVec& reply = incoming[to_size(Off{i})];
      LLIO_REQUIRE(reply.size() == to_size(s2 - s1), Errc::Protocol,
                   "read_at_all: bad reply size");
      mover->from_stream(reply.data(), s1 - stream_lo, s2 - s1);
    }
    cw.stop();
    stats_.copy_s += cw.seconds();
  }
  comm_->barrier();
  stats_.bytes_moved += nbytes;
  return nbytes;
}

}  // namespace llio::core
