// The listless I/O engine (paper §3): independent access via the shared
// sieving skeleton with fotf navigation, and collective two-phase access
// with *fileview caching* — each rank's (disp, filetype) is exchanged in
// compact form exactly once, at set_view, so collective operations move
// only file data, never ol-lists.
//
// The *mergeview* write optimization (§3.2.3): before pre-reading a file
// block for read-modify-write, the IOP computes how many stream bytes the
// combined cached fileviews (clamped to the ranks' actual access ranges)
// contribute to the block; when that equals the block size the pre-read
// is skipped.  This is semantically the paper's
// "MPIR_Type_ff_size(mergetype, ...) >= extent" test, evaluated as a sum
// over the cached views (our navigation requires monotone types, and the
// merge struct interleaves its children).
#pragma once

#include <memory>
#include <vector>

#include "core/listless_nav.hpp"
#include "mpiio/engine.hpp"

namespace llio::core {

class ListlessEngine final : public mpiio::IoEngine {
 public:
  using mpiio::IoEngine::IoEngine;

  void set_view(const mpiio::View& v) override;

 protected:
  Off do_read_at(Off stream_lo, void* buf, Off count,
                 const dt::Type& mt) override;
  Off do_write_at(Off stream_lo, const void* buf, Off count,
                  const dt::Type& mt) override;
  Off do_read_at_all(Off stream_lo, void* buf, Off count,
                     const dt::Type& mt) override;
  Off do_write_at_all(Off stream_lo, const void* buf, Off count,
                      const dt::Type& mt) override;

  std::unique_ptr<mpiio::StreamMover> make_nc_mover(
      const void* buf, Off count, const dt::Type& mt) override;

 private:
  /// Cached remote fileview (fileview caching, §3.2.3).
  struct CachedView {
    Off disp = 0;
    dt::Type filetype;
    std::unique_ptr<ListlessNav> nav;
  };

  std::unique_ptr<ListlessNav> nav_;        ///< my own view
  std::vector<CachedView> cached_;          ///< one per rank, incl. self
};

}  // namespace llio::core
