// The listless I/O engine (paper §3): independent access via the shared
// sieving skeleton with fotf navigation, and collective two-phase access
// with *fileview caching* — each rank's (disp, filetype) is exchanged in
// compact form exactly once, at set_view, so collective operations move
// only file data, never ol-lists.
//
// The *mergeview* write optimization (§3.2.4) lives in mpiio/mergeview:
// per file-buffer window the IOP decides — exactly, via a k-way segment
// merge over the cached fileviews clamped to the ranks' access ranges —
// whether the combined accesses tile the window hole-free, and skips the
// read-modify-write pre-read when they do.  This is the paper's
// "MPIR_Type_ff_size(mergetype, ...) == extent" test without ever
// building the merge struct.  When additionally every rank's restriction
// is one contiguous extent and the extents are disjoint, the engine
// bypasses the two-phase exchange with direct per-rank writes.
#pragma once

#include <memory>
#include <vector>

#include "core/listless_nav.hpp"
#include "mpiio/engine.hpp"

namespace llio::core {

class ListlessEngine final : public mpiio::IoEngine {
 public:
  using mpiio::IoEngine::IoEngine;

  void set_view(const mpiio::View& v) override;

 protected:
  Off do_read_at(Off stream_lo, void* buf, Off count,
                 const dt::Type& mt) override;
  Off do_write_at(Off stream_lo, const void* buf, Off count,
                  const dt::Type& mt) override;
  Off do_read_at_all(Off stream_lo, void* buf, Off count,
                     const dt::Type& mt) override;
  Off do_write_at_all(Off stream_lo, const void* buf, Off count,
                      const dt::Type& mt) override;

  std::unique_ptr<mpiio::StreamMover> make_nc_mover(
      const void* buf, Off count, const dt::Type& mt) override;

  /// Adaptive tuning: re-point pack threads inside the navs built at
  /// set_view (everything else in their PackConfig stays as baked, so
  /// compiled plans survive).
  void on_tuning_changed() override;

 private:
  /// Cached remote fileview (fileview caching, §3.2.3).
  struct CachedView {
    Off disp = 0;
    dt::Type filetype;
    std::unique_ptr<ListlessNav> nav;
  };

  std::unique_ptr<ListlessNav> nav_;        ///< my own view
  std::vector<CachedView> cached_;          ///< one per rank, incl. self
};

}  // namespace llio::core
