#include "core/listless_nav.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "fotf/navigate.hpp"
#include "fotf/pack.hpp"

namespace llio::core {

ListlessNav::ListlessNav(dt::Type filetype, fotf::PackConfig cfg)
    : ft_(std::move(filetype)), cfg_(cfg) {
  LLIO_REQUIRE(ft_ != nullptr && ft_->size() > 0, Errc::InvalidDatatype,
               "ListlessNav: bad filetype");
}

Off ListlessNav::stream_to_file_start(Off s) { return fotf::mem_start(ft_, s); }

Off ListlessNav::stream_to_file_end(Off s) { return fotf::mem_end(ft_, s); }

Off ListlessNav::file_to_stream(Off mem) { return fotf::data_below(ft_, mem); }

fotf::SegmentCursor& ListlessNav::at(Off s, Off hi) {
  const Off need = ceil_div(hi, ft_->size()) + 1;
  if (!cur_ || cur_instances_ < need) {
    // Grow geometrically so sequential accesses rarely reconstruct.
    cur_instances_ = std::max<Off>(need * 2, 16);
    cur_ = std::make_unique<fotf::SegmentCursor>(ft_, cur_instances_);
    next_stream_ = -1;
  }
  if (next_stream_ != s) cur_->seek(s);
  return *cur_;
}

const fotf::PackPlan* ListlessNav::plan() {
  if (!cfg_.use_plan) return nullptr;
  if (!plan_tried_) {
    plan_tried_ = true;
    plan_ = fotf::PackPlan::compile(ft_);
    if (stats_ != nullptr) ++stats_->plan_misses;  // the compile itself
    return plan_.get();
  }
  if (plan_ != nullptr && stats_ != nullptr) ++stats_->plan_hits;
  return plan_.get();
}

void ListlessNav::fold(const fotf::RangeStats& rs) {
  if (stats_ == nullptr) return;
  stats_->pack_threads_used =
      std::max<std::uint64_t>(stats_->pack_threads_used,
                              static_cast<std::uint64_t>(rs.threads_used));
  stats_->pack_slices += rs.slices;
  stats_->pack_slice_max_s =
      std::max(stats_->pack_slice_max_s, rs.slice_max_s);
  stats_->pack_slice_total_s += rs.slice_total_s;
}

void ListlessNav::scatter(Byte* win, Off bias, Off s, const Byte* src,
                          Off n) {
  if (n <= 0) return;
  const fotf::PackPlan* pl = plan();
  fotf::SegmentCursor* reuse = nullptr;
  if (pl == nullptr && !fotf::will_parallelize(cfg_, n))
    reuse = &at(s, s + n);
  const Off count =
      reuse != nullptr ? cur_instances_ : ceil_div(s + n, ft_->size()) + 1;
  fotf::RangeStats rs;
  const Off copied =
      fotf::unpack_range(ft_, count, win, bias, s, src, n, cfg_, pl, &rs,
                         reuse);
  LLIO_ASSERT(copied == n, "ListlessNav::scatter: short transfer");
  if (rs.used_cursor) next_stream_ = s + n;
  fold(rs);
}

void ListlessNav::for_each_segment(
    Off s, Off n, const std::function<void(Off, Off, Off)>& fn) {
  if (n <= 0) return;
  fotf::SegmentCursor& cur = at(s, s + n);
  Off done = 0;
  while (done < n) {
    const Off len = std::min(cur.run_len(), n - done);
    fn(cur.run_mem(), s + done, len);
    cur.consume(len);
    done += len;
  }
  next_stream_ = s + n;
}

void ListlessNav::gather(Byte* dst, const Byte* win, Off bias, Off s, Off n) {
  if (n <= 0) return;
  const fotf::PackPlan* pl = plan();
  fotf::SegmentCursor* reuse = nullptr;
  if (pl == nullptr && !fotf::will_parallelize(cfg_, n))
    reuse = &at(s, s + n);
  const Off count =
      reuse != nullptr ? cur_instances_ : ceil_div(s + n, ft_->size()) + 1;
  fotf::RangeStats rs;
  const Off copied =
      fotf::pack_range(ft_, count, win, bias, s, dst, n, cfg_, pl, &rs,
                       reuse);
  LLIO_ASSERT(copied == n, "ListlessNav::gather: short transfer");
  if (rs.used_cursor) next_stream_ = s + n;
  fold(rs);
}

}  // namespace llio::core
