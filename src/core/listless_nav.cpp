#include "core/listless_nav.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "fotf/navigate.hpp"
#include "fotf/pack.hpp"

namespace llio::core {

ListlessNav::ListlessNav(dt::Type filetype) : ft_(std::move(filetype)) {
  LLIO_REQUIRE(ft_ != nullptr && ft_->size() > 0, Errc::InvalidDatatype,
               "ListlessNav: bad filetype");
}

Off ListlessNav::stream_to_file_start(Off s) { return fotf::mem_start(ft_, s); }

Off ListlessNav::stream_to_file_end(Off s) { return fotf::mem_end(ft_, s); }

Off ListlessNav::file_to_stream(Off mem) { return fotf::data_below(ft_, mem); }

fotf::SegmentCursor& ListlessNav::at(Off s, Off hi) {
  const Off need = ceil_div(hi, ft_->size()) + 1;
  if (!cur_ || cur_instances_ < need) {
    // Grow geometrically so sequential accesses rarely reconstruct.
    cur_instances_ = std::max<Off>(need * 2, 16);
    cur_ = std::make_unique<fotf::SegmentCursor>(ft_, cur_instances_);
    next_stream_ = -1;
  }
  if (next_stream_ != s) cur_->seek(s);
  return *cur_;
}

void ListlessNav::scatter(Byte* win, Off bias, Off s, const Byte* src,
                          Off n) {
  if (n <= 0) return;
  fotf::SegmentCursor& cur = at(s, s + n);
  const Off copied = fotf::transfer_unpack(cur, win, bias, src, n);
  LLIO_ASSERT(copied == n, "ListlessNav::scatter: short transfer");
  next_stream_ = s + n;
}

void ListlessNav::for_each_segment(
    Off s, Off n, const std::function<void(Off, Off, Off)>& fn) {
  if (n <= 0) return;
  fotf::SegmentCursor& cur = at(s, s + n);
  Off done = 0;
  while (done < n) {
    const Off len = std::min(cur.run_len(), n - done);
    fn(cur.run_mem(), s + done, len);
    cur.consume(len);
    done += len;
  }
  next_stream_ = s + n;
}

void ListlessNav::gather(Byte* dst, const Byte* win, Off bias, Off s, Off n) {
  if (n <= 0) return;
  fotf::SegmentCursor& cur = at(s, s + n);
  const Off copied = fotf::transfer_pack(cur, win, bias, dst, n);
  LLIO_ASSERT(copied == n, "ListlessNav::gather: short transfer");
  next_stream_ = s + n;
}

}  // namespace llio::core
