// Listless ViewNav: fileview navigation and data movement via
// flattening-on-the-fly (paper §3).  All positioning is O(depth) and all
// copying is proportional to the bytes moved — no ol-lists anywhere.
//
// Data movement goes through fotf::pack_range/unpack_range: serial small
// jobs reuse the streaming cursor exactly as before; jobs past the
// configured threshold are sliced across the shared worker pool, and a
// per-view PackPlan (compiled lazily on first use, owned by this nav and
// therefore recreated — i.e. invalidated — whenever set_view rebuilds
// the navs) replays the flat run table instead of walking the type tree.
#pragma once

#include <memory>

#include "fotf/cursor.hpp"
#include "fotf/parallel.hpp"
#include "fotf/plan.hpp"
#include "mpiio/io_stats.hpp"
#include "mpiio/navigator.hpp"

namespace llio::core {

class ListlessNav final : public mpiio::ViewNav {
 public:
  explicit ListlessNav(dt::Type filetype, fotf::PackConfig cfg = {});

  /// Where plan/slice counters land; unbound = not counted.  The pointee
  /// must outlive the nav (the engine binds its own stats_ member, whose
  /// identity survives the per-op reset).
  void bind_stats(mpiio::IoOpStats* stats) { stats_ = stats; }

  /// Per-op parallelism tuning (the adaptive layer re-points pack
  /// threads between ops).  Only the thread count moves: plan usage and
  /// the slicing threshold stay as built, so the compiled plan remains
  /// valid.  Called under the engine's op lock.
  void set_pack_threads(int threads) { cfg_.threads = threads; }

  Off stream_to_file_start(Off s) override;
  Off stream_to_file_end(Off s) override;
  Off file_to_stream(Off mem) override;
  void scatter(Byte* win, Off bias, Off s, const Byte* src, Off n) override;
  void gather(Byte* dst, const Byte* win, Off bias, Off s, Off n) override;
  void for_each_segment(
      Off s, Off n, const std::function<void(Off, Off, Off)>& fn) override;

 private:
  /// Ensure the cursor covers stream bytes up to `hi` and is positioned
  /// at `s` (re-seeks only on non-sequential access).
  fotf::SegmentCursor& at(Off s, Off hi);

  /// The compiled plan (lazy, one compile attempt per view) or nullptr
  /// when disabled / declined; counts hits and misses into stats_.
  const fotf::PackPlan* plan();

  void fold(const fotf::RangeStats& rs);

  dt::Type ft_;
  fotf::PackConfig cfg_;
  std::shared_ptr<const fotf::PackPlan> plan_;
  bool plan_tried_ = false;
  mpiio::IoOpStats* stats_ = nullptr;
  std::unique_ptr<fotf::SegmentCursor> cur_;
  Off cur_instances_ = 0;
  Off next_stream_ = -1;  ///< stream position the cursor currently sits at
};

}  // namespace llio::core
