// Listless ViewNav: fileview navigation and data movement via
// flattening-on-the-fly (paper §3).  All positioning is O(depth) and all
// copying is proportional to the bytes moved — no ol-lists anywhere.
#pragma once

#include <memory>

#include "fotf/cursor.hpp"
#include "mpiio/navigator.hpp"

namespace llio::core {

class ListlessNav final : public mpiio::ViewNav {
 public:
  explicit ListlessNav(dt::Type filetype);

  Off stream_to_file_start(Off s) override;
  Off stream_to_file_end(Off s) override;
  Off file_to_stream(Off mem) override;
  void scatter(Byte* win, Off bias, Off s, const Byte* src, Off n) override;
  void gather(Byte* dst, const Byte* win, Off bias, Off s, Off n) override;
  void for_each_segment(
      Off s, Off n, const std::function<void(Off, Off, Off)>& fn) override;

 private:
  /// Ensure the cursor covers stream bytes up to `hi` and is positioned
  /// at `s` (re-seeks only on non-sequential access).
  fotf::SegmentCursor& at(Off s, Off hi);

  dt::Type ft_;
  std::unique_ptr<fotf::SegmentCursor> cur_;
  Off cur_instances_ = 0;
  Off next_stream_ = -1;  ///< stream position the cursor currently sits at
};

}  // namespace llio::core
