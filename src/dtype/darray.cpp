// MPI_Type_create_darray: distributed-array datatypes.
//
// Construction proceeds dimension by dimension from the fastest-varying
// one (Fortran order; C order is normalized by reversing the dimension
// arrays after computing the row-major process coordinates).  At each
// dimension the local index selection is either
//   * the whole range (Distrib::None),
//   * one block [rank*b, rank*b + mysize)   (Distrib::Block), or
//   * blocks of b dealt round-robin          (Distrib::Cyclic),
// and is realized over the previous dimensions' type with explicit byte
// strides (hvector with blocklen 1), so intermediate extents never
// interfere.  The final type is placed at its global offset and resized
// to the full array extent, exactly like subarray.
#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "dtype/datatype.hpp"

namespace llio::dt {

namespace {

/// `len` consecutive dim-d rows starting at row `start`, rows `slab`
/// bytes apart, each row holding `inner`.
Type row_run(Off len, Off slab, const Type& inner) {
  return hvector(len, 1, slab, inner);
}

Type place(const Type& t, Off disp_bytes) {
  const Off bls[] = {1};
  const Off ds[] = {disp_bytes};
  return hindexed(bls, ds, t);
}

}  // namespace

Type darray(int nprocs, int rank, std::span<const Off> gsizes,
            std::span<const Distrib> distribs, std::span<const Off> dargs,
            std::span<const Off> psizes, Order order, const Type& t) {
  LLIO_REQUIRE(t != nullptr, Errc::InvalidDatatype, "darray: null etype");
  const std::size_t nd = gsizes.size();
  LLIO_REQUIRE(nd >= 1 && distribs.size() == nd && dargs.size() == nd &&
                   psizes.size() == nd,
               Errc::InvalidDatatype, "darray: dimension mismatch");
  LLIO_REQUIRE(nprocs >= 1 && rank >= 0 && rank < nprocs,
               Errc::InvalidDatatype, "darray: bad rank/nprocs");
  Off grid = 1;
  for (std::size_t d = 0; d < nd; ++d) {
    LLIO_REQUIRE(gsizes[d] >= 1 && psizes[d] >= 1, Errc::InvalidDatatype,
                 "darray: bad gsize/psize");
    LLIO_REQUIRE(distribs[d] != Distrib::None || psizes[d] == 1,
                 Errc::InvalidDatatype,
                 "darray: Distrib::None requires psize == 1");
    grid *= psizes[d];
  }
  LLIO_REQUIRE(grid == nprocs, Errc::InvalidDatatype,
               "darray: process grid does not match nprocs");

  // Row-major process coordinates over the original dimension order.
  std::vector<Off> coords(nd);
  {
    int tmp = rank;
    for (std::size_t i = nd; i-- > 0;) {
      coords[i] = tmp % static_cast<int>(psizes[i]);
      tmp /= static_cast<int>(psizes[i]);
    }
  }

  // Normalize to Fortran order (dimension 0 fastest).
  std::vector<Off> gs(gsizes.begin(), gsizes.end());
  std::vector<Distrib> dist(distribs.begin(), distribs.end());
  std::vector<Off> darg(dargs.begin(), dargs.end());
  std::vector<Off> ps(psizes.begin(), psizes.end());
  if (order == Order::C) {
    std::reverse(gs.begin(), gs.end());
    std::reverse(dist.begin(), dist.end());
    std::reverse(darg.begin(), darg.end());
    std::reverse(ps.begin(), ps.end());
    std::reverse(coords.begin(), coords.end());
  }

  const Off ext = t->extent();
  Off full_ext = ext;  // extent of the whole global array
  for (std::size_t d = 0; d < nd; ++d) full_ext *= gs[d];
  Type cur = t;
  Off disp = 0;      // global byte offset of the local piece's origin
  Off slab = ext;    // bytes per full row of the current dimension
  bool empty = false;

  for (std::size_t d = 0; d < nd; ++d) {
    const Off g = gs[d];
    const Off p = ps[d];
    const Off r = coords[d];
    switch (dist[d]) {
      case Distrib::None: {
        cur = row_run(g, slab, cur);
        break;
      }
      case Distrib::Block: {
        Off b = darg[d];
        if (b == kDfltDarg) b = ceil_div(g, p);
        LLIO_REQUIRE(b >= 1 && b * p >= g, Errc::InvalidDatatype,
                     "darray: block darg too small for the dimension");
        const Off mysize = std::clamp<Off>(g - b * r, 0, b);
        if (mysize == 0) {
          empty = true;
        } else {
          cur = row_run(mysize, slab, cur);
          disp += b * r * slab;
        }
        break;
      }
      case Distrib::Cyclic: {
        Off b = darg[d];
        if (b == kDfltDarg) b = 1;
        LLIO_REQUIRE(b >= 1, Errc::InvalidDatatype,
                     "darray: cyclic darg must be >= 1");
        const Off st = r * b;  // first row this rank owns in this dim
        if (st >= g) {
          empty = true;
          break;
        }
        const Off span = g - st;              // rows from st to the end
        const Off cycle = p * b;              // rows per full deal round
        const Off full = span / cycle;        // complete blocks of b
        const Off rem = std::min(span % cycle, b);  // trailing partial block
        const Type block = row_run(b, slab, cur);
        Type piece;
        if (rem == 0) {
          piece = hvector(full, 1, cycle * slab, block);
        } else if (full == 0) {
          piece = row_run(rem, slab, cur);
        } else {
          const Type tail = row_run(rem, slab, cur);
          const Off bls[] = {1, 1};
          const Off ds[] = {0, full * cycle * slab};
          const Type kids[] = {hvector(full, 1, cycle * slab, block), tail};
          piece = struct_(bls, ds, kids);
        }
        cur = piece;
        disp += st * slab;
        break;
      }
    }
    slab *= g;
    if (empty) break;
  }

  if (empty) return resized(contiguous(0, t), 0, full_ext);
  return resized(place(cur, disp), 0, full_ext);
}

}  // namespace llio::dt
