#include "dtype/datatype.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace llio::dt {

namespace {

/// Summary of the maximal contiguous segments of a typemap region, used to
/// compute block_count / contiguity / monotonicity compositionally.
struct SegInfo {
  bool empty = true;
  Off nseg = 0;
  Off first_off = 0, first_len = 0;
  Off last_off = 0, last_len = 0;
  Off min_off = 0;  ///< true lower bound of data
  Off max_end = 0;  ///< true upper bound of data
  bool monotone = true;

  Off first_end() const { return first_off + first_len; }
  Off last_end() const { return last_off + last_len; }
};

SegInfo single_segment(Off off, Off len) {
  if (len <= 0) return {};
  SegInfo s;
  s.empty = false;
  s.nseg = 1;
  s.first_off = s.last_off = off;
  s.first_len = s.last_len = len;
  s.min_off = off;
  s.max_end = off + len;
  return s;
}

SegInfo shift(SegInfo s, Off d) {
  if (s.empty) return s;
  s.first_off += d;
  s.last_off += d;
  s.min_off += d;
  s.max_end += d;
  return s;
}

/// `count` copies of `inner`, copy i shifted by i*spacing.
SegInfo repeat(const SegInfo& inner, Off count, Off spacing) {
  if (inner.empty || count <= 0) return {};
  if (count == 1) return inner;
  const bool merge = inner.last_end() == inner.first_off + spacing;
  SegInfo r;
  r.empty = false;
  r.monotone = inner.monotone && inner.max_end <= inner.min_off + spacing;
  const Off total_shift = (count - 1) * spacing;
  r.min_off = inner.min_off + std::min<Off>(0, total_shift);
  r.max_end = inner.max_end + std::max<Off>(0, total_shift);
  if (merge && inner.nseg == 1) {
    // The single segment tiles seamlessly: one big segment.
    r.nseg = 1;
    r.first_off = r.last_off = inner.first_off;
    r.first_len = r.last_len = inner.first_len + total_shift;
    return r;
  }
  r.nseg = count * inner.nseg - (merge ? count - 1 : 0);
  r.first_off = inner.first_off;
  r.first_len = inner.first_len;
  r.last_off = inner.last_off + total_shift;
  r.last_len = inner.last_len;
  return r;
}

/// Concatenation in typemap order (b's offsets already absolute).
SegInfo concat(const SegInfo& a, const SegInfo& b) {
  if (a.empty) return b;
  if (b.empty) return a;
  const bool merge = a.last_end() == b.first_off;
  SegInfo r;
  r.empty = false;
  r.nseg = a.nseg + b.nseg - (merge ? 1 : 0);
  r.monotone = a.monotone && b.monotone && a.max_end <= b.min_off;
  r.min_off = std::min(a.min_off, b.min_off);
  r.max_end = std::max(a.max_end, b.max_end);
  if (merge && a.nseg == 1 && b.nseg == 1) {
    r.first_off = r.last_off = a.first_off;
    r.first_len = r.last_len = a.first_len + b.first_len;
    return r;
  }
  if (merge && a.nseg == 1) {
    r.first_off = a.first_off;
    r.first_len = a.first_len + b.first_len;
  } else {
    r.first_off = a.first_off;
    r.first_len = a.first_len;
  }
  if (merge && b.nseg == 1) {
    r.last_off = a.last_off;
    r.last_len = a.last_len + b.first_len;
  } else {
    r.last_off = b.last_off;
    r.last_len = b.last_len;
  }
  return r;
}

}  // namespace

/// Internal factory with access to Node's private fields.
class Builder {
 public:
  static SegInfo seg(const Node& n) {
    SegInfo s;
    if (n.size_ == 0) return s;
    s.empty = false;
    s.nseg = n.nblocks_;
    s.first_off = n.first_off_;
    s.first_len = n.first_len_;
    s.last_off = n.last_off_;
    s.last_len = n.last_len_;
    s.min_off = n.true_lb_;
    s.max_end = n.true_ub_;
    s.monotone = n.monotone_;
    return s;
  }

  static void store_seg(Node& n, const SegInfo& s) {
    n.nblocks_ = s.nseg;
    n.first_off_ = s.first_off;
    n.first_len_ = s.first_len;
    n.last_off_ = s.last_off;
    n.last_len_ = s.last_len;
    n.true_lb_ = s.min_off;
    n.true_ub_ = s.max_end;
    n.monotone_ = s.monotone;
    n.contig_ = s.nseg <= 1 && n.extent() == n.size_;
  }

  static Type make_basic(BasicId id) {
    auto n = std::shared_ptr<Node>(new Node());
    n->kind_ = Kind::Basic;
    n->basic_ = id;
    n->size_ = basic_size(id);
    n->lb_ = 0;
    n->ub_ = n->size_;
    n->depth_ = 1;
    store_seg(*n, single_segment(0, n->size_));
    return n;
  }

  static Type make_contiguous(Off count, const Type& t) {
    LLIO_REQUIRE(count >= 0, Errc::InvalidDatatype, "contiguous: count < 0");
    LLIO_REQUIRE(t != nullptr, Errc::InvalidDatatype, "contiguous: null child");
    auto n = std::shared_ptr<Node>(new Node());
    n->kind_ = Kind::Contiguous;
    n->count_ = count;
    n->child_ = t;
    n->size_ = count * t->size();
    const Off ext = t->extent();
    const Off span = count > 0 ? (count - 1) * ext : 0;
    n->lb_ = t->lb() + std::min<Off>(0, span);
    n->ub_ = count > 0 ? t->ub() + std::max<Off>(0, span) : t->lb();
    n->depth_ = 1 + t->depth();
    store_seg(*n, repeat(seg(*t), count, ext));
    return n;
  }

  static Type make_vector(Off count, Off blocklen, Off stride_bytes,
                          const Type& t) {
    LLIO_REQUIRE(count >= 0 && blocklen >= 0, Errc::InvalidDatatype,
                 "vector: negative count or blocklen");
    LLIO_REQUIRE(t != nullptr, Errc::InvalidDatatype, "vector: null child");
    auto n = std::shared_ptr<Node>(new Node());
    n->kind_ = Kind::Vector;
    n->count_ = count;
    n->blocklen_ = blocklen;
    n->stride_ = stride_bytes;
    n->child_ = t;
    n->size_ = count * blocklen * t->size();
    const Off ext = t->extent();
    if (count > 0 && blocklen > 0) {
      const Off inner_span = (blocklen - 1) * ext;
      const Off outer_span = (count - 1) * stride_bytes;
      n->lb_ = t->lb() + std::min<Off>(0, inner_span) +
               std::min<Off>(0, outer_span);
      n->ub_ = t->ub() + std::max<Off>(0, inner_span) +
               std::max<Off>(0, outer_span);
    } else {
      n->lb_ = t->lb();
      n->ub_ = t->lb();
    }
    n->depth_ = 1 + t->depth();
    SegInfo block = repeat(seg(*t), blocklen, ext);
    store_seg(*n, repeat(block, count, stride_bytes));
    return n;
  }

  static Type make_indexed(std::vector<Off> blocklens, std::vector<Off> disps,
                           const Type& t) {
    LLIO_REQUIRE(blocklens.size() == disps.size(), Errc::InvalidDatatype,
                 "indexed: blocklens/disps size mismatch");
    LLIO_REQUIRE(t != nullptr, Errc::InvalidDatatype, "indexed: null child");
    for (Off b : blocklens)
      LLIO_REQUIRE(b >= 0, Errc::InvalidDatatype, "indexed: blocklen < 0");
    auto n = std::shared_ptr<Node>(new Node());
    n->kind_ = Kind::Indexed;
    n->child_ = t;
    n->blocklens_ = std::move(blocklens);
    n->disps_ = std::move(disps);
    const Off ext = t->extent();
    const std::size_t nb = n->blocklens_.size();
    n->prefix_.resize(nb + 1);
    n->prefix_[0] = 0;
    SegInfo all;
    bool have_bounds = false;
    Off lbv = 0, ubv = 0;
    for (std::size_t i = 0; i < nb; ++i) {
      const Off bl = n->blocklens_[i];
      const Off d = n->disps_[i];
      n->prefix_[i + 1] = n->prefix_[i] + bl * t->size();
      if (bl > 0) {
        const Off span = (bl - 1) * ext;
        const Off block_lb = t->lb() + d + std::min<Off>(0, span);
        const Off block_ub = t->ub() + d + std::max<Off>(0, span);
        if (!have_bounds) {
          lbv = block_lb;
          ubv = block_ub;
          have_bounds = true;
        } else {
          lbv = std::min(lbv, block_lb);
          ubv = std::max(ubv, block_ub);
        }
      }
      all = concat(all, shift(repeat(seg(*t), bl, ext), d));
    }
    n->size_ = n->prefix_[nb];
    n->lb_ = lbv;
    n->ub_ = ubv;
    n->depth_ = 1 + t->depth();
    store_seg(*n, all);
    return n;
  }

  static Type make_struct(std::vector<Off> blocklens, std::vector<Off> disps,
                          std::vector<Type> types) {
    LLIO_REQUIRE(blocklens.size() == disps.size() &&
                     blocklens.size() == types.size(),
                 Errc::InvalidDatatype, "struct: argument size mismatch");
    for (std::size_t i = 0; i < types.size(); ++i) {
      LLIO_REQUIRE(types[i] != nullptr, Errc::InvalidDatatype,
                   "struct: null child");
      LLIO_REQUIRE(blocklens[i] >= 0, Errc::InvalidDatatype,
                   "struct: blocklen < 0");
    }
    auto n = std::shared_ptr<Node>(new Node());
    n->kind_ = Kind::Struct;
    n->blocklens_ = std::move(blocklens);
    n->disps_ = std::move(disps);
    n->children_ = std::move(types);
    const std::size_t nb = n->blocklens_.size();
    n->prefix_.resize(nb + 1);
    n->prefix_[0] = 0;
    SegInfo all;
    bool have_bounds = false;
    Off lbv = 0, ubv = 0;
    int maxdepth = 0;
    for (std::size_t i = 0; i < nb; ++i) {
      const Type& t = n->children_[i];
      const Off bl = n->blocklens_[i];
      const Off d = n->disps_[i];
      const Off ext = t->extent();
      n->prefix_[i + 1] = n->prefix_[i] + bl * t->size();
      maxdepth = std::max(maxdepth, t->depth());
      if (bl > 0) {
        const Off span = (bl - 1) * ext;
        const Off block_lb = t->lb() + d + std::min<Off>(0, span);
        const Off block_ub = t->ub() + d + std::max<Off>(0, span);
        if (!have_bounds) {
          lbv = block_lb;
          ubv = block_ub;
          have_bounds = true;
        } else {
          lbv = std::min(lbv, block_lb);
          ubv = std::max(ubv, block_ub);
        }
      }
      all = concat(all, shift(repeat(seg(*t), bl, ext), d));
    }
    n->size_ = n->prefix_[nb];
    n->lb_ = lbv;
    n->ub_ = ubv;
    n->depth_ = 1 + maxdepth;
    store_seg(*n, all);
    return n;
  }

  static Type make_resized(const Type& t, Off lbv, Off ext) {
    LLIO_REQUIRE(t != nullptr, Errc::InvalidDatatype, "resized: null child");
    auto n = std::shared_ptr<Node>(new Node());
    n->kind_ = Kind::Resized;
    n->child_ = t;
    n->resized_lb_ = lbv;
    n->resized_extent_ = ext;
    n->size_ = t->size();
    n->lb_ = lbv;
    n->ub_ = lbv + ext;
    n->depth_ = 1 + t->depth();
    store_seg(*n, seg(*t));
    return n;
  }
};

Off basic_size(BasicId id) noexcept {
  switch (id) {
    case BasicId::Byte: return 1;
    case BasicId::Char: return 1;
    case BasicId::Short: return 2;
    case BasicId::Int: return 4;
    case BasicId::Long: return 8;
    case BasicId::Float: return 4;
    case BasicId::Double: return 8;
  }
  return 1;
}

namespace {
Type cached_basic(BasicId id) {
  static const Type table[] = {
      Builder::make_basic(BasicId::Byte),  Builder::make_basic(BasicId::Char),
      Builder::make_basic(BasicId::Short), Builder::make_basic(BasicId::Int),
      Builder::make_basic(BasicId::Long),  Builder::make_basic(BasicId::Float),
      Builder::make_basic(BasicId::Double),
  };
  return table[static_cast<std::size_t>(id)];
}
}  // namespace

Type byte() { return cached_basic(BasicId::Byte); }
Type char_() { return cached_basic(BasicId::Char); }
Type short_() { return cached_basic(BasicId::Short); }
Type int_() { return cached_basic(BasicId::Int); }
Type long_() { return cached_basic(BasicId::Long); }
Type float_() { return cached_basic(BasicId::Float); }
Type double_() { return cached_basic(BasicId::Double); }
Type basic(BasicId id) { return cached_basic(id); }

Type contiguous(Off count, const Type& t) {
  return Builder::make_contiguous(count, t);
}

Type vector(Off count, Off blocklen, Off stride_elems, const Type& t) {
  LLIO_REQUIRE(t != nullptr, Errc::InvalidDatatype, "vector: null child");
  return Builder::make_vector(count, blocklen, stride_elems * t->extent(), t);
}

Type hvector(Off count, Off blocklen, Off stride_bytes, const Type& t) {
  return Builder::make_vector(count, blocklen, stride_bytes, t);
}

Type indexed(std::span<const Off> blocklens, std::span<const Off> disps_elems,
             const Type& t) {
  LLIO_REQUIRE(t != nullptr, Errc::InvalidDatatype, "indexed: null child");
  std::vector<Off> disps(disps_elems.size());
  for (std::size_t i = 0; i < disps.size(); ++i)
    disps[i] = disps_elems[i] * t->extent();
  return Builder::make_indexed(
      std::vector<Off>(blocklens.begin(), blocklens.end()), std::move(disps),
      t);
}

Type hindexed(std::span<const Off> blocklens, std::span<const Off> disps_bytes,
              const Type& t) {
  return Builder::make_indexed(
      std::vector<Off>(blocklens.begin(), blocklens.end()),
      std::vector<Off>(disps_bytes.begin(), disps_bytes.end()), t);
}

Type indexed_block(Off blocklen, std::span<const Off> disps_elems,
                   const Type& t) {
  LLIO_REQUIRE(t != nullptr, Errc::InvalidDatatype,
               "indexed_block: null child");
  std::vector<Off> blocklens(disps_elems.size(), blocklen);
  std::vector<Off> disps(disps_elems.size());
  for (std::size_t i = 0; i < disps.size(); ++i)
    disps[i] = disps_elems[i] * t->extent();
  return Builder::make_indexed(std::move(blocklens), std::move(disps), t);
}

Type struct_(std::span<const Off> blocklens, std::span<const Off> disps_bytes,
             std::span<const Type> types) {
  return Builder::make_struct(
      std::vector<Off>(blocklens.begin(), blocklens.end()),
      std::vector<Off>(disps_bytes.begin(), disps_bytes.end()),
      std::vector<Type>(types.begin(), types.end()));
}

Type resized(const Type& t, Off lb, Off extent) {
  return Builder::make_resized(t, lb, extent);
}

Type subarray(std::span<const Off> sizes, std::span<const Off> subsizes,
              std::span<const Off> starts, Order order, const Type& t) {
  LLIO_REQUIRE(t != nullptr, Errc::InvalidDatatype, "subarray: null child");
  const std::size_t nd = sizes.size();
  LLIO_REQUIRE(nd >= 1 && subsizes.size() == nd && starts.size() == nd,
               Errc::InvalidDatatype, "subarray: dimension mismatch");
  std::vector<Off> sz(sizes.begin(), sizes.end());
  std::vector<Off> ssz(subsizes.begin(), subsizes.end());
  std::vector<Off> st(starts.begin(), starts.end());
  if (order == Order::C) {  // normalize so dimension 0 varies fastest
    std::reverse(sz.begin(), sz.end());
    std::reverse(ssz.begin(), ssz.end());
    std::reverse(st.begin(), st.end());
  }
  for (std::size_t d = 0; d < nd; ++d) {
    LLIO_REQUIRE(sz[d] >= 1 && ssz[d] >= 0 && st[d] >= 0 &&
                     st[d] + ssz[d] <= sz[d],
                 Errc::InvalidDatatype, "subarray: bad size/subsize/start");
  }
  const Off ext = t->extent();
  Type cur = contiguous(ssz[0], t);
  Off slab = sz[0] * ext;  // extent of one full row of dimension 0
  for (std::size_t d = 1; d < nd; ++d) {
    cur = hvector(ssz[d], 1, slab, cur);
    slab *= sz[d];
  }
  Off offset = 0;
  Off mult = ext;
  for (std::size_t d = 0; d < nd; ++d) {
    offset += st[d] * mult;
    mult *= sz[d];
  }
  const Off blocklens[] = {1};
  const Off disps[] = {offset};
  Type placed = hindexed(blocklens, disps, cur);
  return resized(placed, 0, slab);
}

bool equal(const Type& a, const Type& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind() != b->kind() || a->size() != b->size() ||
      a->lb() != b->lb() || a->ub() != b->ub())
    return false;
  switch (a->kind()) {
    case Kind::Basic:
      return a->basic_id() == b->basic_id();
    case Kind::Contiguous:
      return a->count() == b->count() && equal(a->child(), b->child());
    case Kind::Vector:
      return a->count() == b->count() && a->blocklen() == b->blocklen() &&
             a->stride_bytes() == b->stride_bytes() &&
             equal(a->child(), b->child());
    case Kind::Indexed: {
      auto ab = a->blocklens(), bb = b->blocklens();
      auto ad = a->disps_bytes(), bd = b->disps_bytes();
      return std::equal(ab.begin(), ab.end(), bb.begin(), bb.end()) &&
             std::equal(ad.begin(), ad.end(), bd.begin(), bd.end()) &&
             equal(a->child(), b->child());
    }
    case Kind::Struct: {
      auto ab = a->blocklens(), bb = b->blocklens();
      auto ad = a->disps_bytes(), bd = b->disps_bytes();
      if (!std::equal(ab.begin(), ab.end(), bb.begin(), bb.end()) ||
          !std::equal(ad.begin(), ad.end(), bd.begin(), bd.end()) ||
          a->children().size() != b->children().size())
        return false;
      for (std::size_t i = 0; i < a->children().size(); ++i)
        if (!equal(a->children()[i], b->children()[i])) return false;
      return true;
    }
    case Kind::Resized:
      return equal(a->child(), b->child());
  }
  return false;
}

namespace {
void render(const Node& n, std::ostream& os) {
  switch (n.kind()) {
    case Kind::Basic:
      switch (n.basic_id()) {
        case BasicId::Byte: os << "byte"; break;
        case BasicId::Char: os << "char"; break;
        case BasicId::Short: os << "short"; break;
        case BasicId::Int: os << "int"; break;
        case BasicId::Long: os << "long"; break;
        case BasicId::Float: os << "float"; break;
        case BasicId::Double: os << "double"; break;
      }
      break;
    case Kind::Contiguous:
      os << "contig(" << n.count() << ", ";
      render(*n.child(), os);
      os << ")";
      break;
    case Kind::Vector:
      os << "hvector(" << n.count() << ", " << n.blocklen() << ", "
         << n.stride_bytes() << "B, ";
      render(*n.child(), os);
      os << ")";
      break;
    case Kind::Indexed: {
      os << "hindexed([";
      for (std::size_t i = 0; i < n.blocklens().size(); ++i) {
        if (i) os << ",";
        os << n.blocklens()[i] << "@" << n.disps_bytes()[i];
      }
      os << "], ";
      render(*n.child(), os);
      os << ")";
      break;
    }
    case Kind::Struct: {
      os << "struct([";
      for (std::size_t i = 0; i < n.children().size(); ++i) {
        if (i) os << ",";
        os << n.blocklens()[i] << "@" << n.disps_bytes()[i] << ":";
        render(*n.children()[i], os);
      }
      os << "])";
      break;
    }
    case Kind::Resized:
      os << "resized(lb=" << n.lb() << ",ext=" << n.extent() << ", ";
      render(*n.child(), os);
      os << ")";
      break;
  }
}
}  // namespace

std::string to_string(const Type& t) {
  if (!t) return "<null>";
  std::ostringstream os;
  render(*t, os);
  return os.str();
}

}  // namespace llio::dt
