// MPI-style derived datatype engine.
//
// Datatypes are immutable trees built with the constructors below, which
// mirror the MPI type constructors (MPI_Type_contiguous, MPI_Type_vector,
// MPI_Type_create_hvector, MPI_Type_indexed, MPI_Type_create_hindexed,
// MPI_Type_create_struct, MPI_Type_create_subarray, MPI_Type_create_resized).
//
// A datatype defines a *typemap*: an ordered sequence of (memory offset,
// basic element) pairs.  The "packed stream" of a datatype is the
// concatenation of its data bytes in typemap order; packing/unpacking and
// all file positioning in llio are defined in terms of this stream.
//
// Cached per node (all computed once at construction):
//   size       - data bytes per instance
//   lb/ub      - extent bounds (extent = ub - lb); repetitions tile at extent
//   true_lb/ub - bounds of actual data
//   block_count- number of maximal contiguous segments per instance (the
//                paper's N_block; adjacent segments are counted merged)
//   depth      - tree depth (the paper's low-order pack cost term)
//   contiguous - single dense segment, extent == size
//   monotone   - segments appear at strictly increasing, non-overlapping
//                offsets, and repetitions at extent spacing do not overlap.
//                This is the MPI-IO requirement on filetypes and the
//                precondition for the fotf navigation functions.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace llio::dt {

class Node;
/// Shared-ownership handle to an immutable datatype node.
using Type = std::shared_ptr<const Node>;

enum class Kind : std::uint8_t {
  Basic,       ///< predefined elementary type
  Contiguous,  ///< count instances of child at child-extent spacing
  Vector,      ///< count blocks of blocklen child instances, stride bytes apart
  Indexed,     ///< blocks of child instances at explicit byte displacements
  Struct,      ///< heterogeneous blocks of different children
  Resized,     ///< child with overridden lb/extent
};

enum class BasicId : std::uint8_t {
  Byte,    // 1
  Char,    // 1
  Short,   // 2
  Int,     // 4
  Long,    // 8
  Float,   // 4
  Double,  // 8
};

class Node {
 public:
  Kind kind() const noexcept { return kind_; }
  BasicId basic_id() const noexcept { return basic_; }

  Off count() const noexcept { return count_; }
  Off blocklen() const noexcept { return blocklen_; }
  Off stride_bytes() const noexcept { return stride_; }
  const Type& child() const noexcept { return child_; }
  std::span<const Off> blocklens() const noexcept { return blocklens_; }
  std::span<const Off> disps_bytes() const noexcept { return disps_; }
  std::span<const Type> children() const noexcept { return children_; }

  Off size() const noexcept { return size_; }
  Off lb() const noexcept { return lb_; }
  Off ub() const noexcept { return ub_; }
  Off extent() const noexcept { return ub_ - lb_; }
  Off true_lb() const noexcept { return true_lb_; }
  Off true_ub() const noexcept { return true_ub_; }
  Off block_count() const noexcept { return nblocks_; }
  int depth() const noexcept { return depth_; }
  bool is_contiguous() const noexcept { return contig_; }
  bool is_monotone() const noexcept { return monotone_; }

  /// Indexed/Struct only: prefix sums of per-block data sizes;
  /// prefix()[i] = data bytes preceding block i, plus a final total entry.
  std::span<const Off> prefix() const noexcept { return prefix_; }

  /// Data bytes covered by one block i (Indexed/Struct).
  Off block_size(std::size_t i) const noexcept {
    return prefix_[i + 1] - prefix_[i];
  }

 private:
  Node() = default;
  friend class Builder;

  Kind kind_ = Kind::Basic;
  BasicId basic_ = BasicId::Byte;
  Off count_ = 1;
  Off blocklen_ = 1;
  Off stride_ = 0;
  Type child_;
  std::vector<Off> blocklens_;
  std::vector<Off> disps_;
  std::vector<Type> children_;
  Off resized_lb_ = 0;
  Off resized_extent_ = 0;

  Off size_ = 0;
  Off lb_ = 0, ub_ = 0;
  Off true_lb_ = 0, true_ub_ = 0;
  Off nblocks_ = 0;
  Off first_off_ = 0, first_len_ = 0;  // first maximal segment per instance
  Off last_off_ = 0, last_len_ = 0;    // last maximal segment per instance
  int depth_ = 1;
  bool contig_ = true;
  bool monotone_ = true;
  std::vector<Off> prefix_;
};

// ---- predefined basic types -------------------------------------------

Type byte();
Type char_();
Type short_();
Type int_();
Type long_();
Type float_();
Type double_();
Type basic(BasicId id);
Off basic_size(BasicId id) noexcept;

// ---- type constructors (mirror MPI) -----------------------------------

/// count repetitions of t, tiled at extent(t).
Type contiguous(Off count, const Type& t);

/// count blocks of blocklen instances of t; block starts stride *elements*
/// (i.e. stride * extent(t) bytes) apart.  Equivalent to MPI_Type_vector.
Type vector(Off count, Off blocklen, Off stride_elems, const Type& t);

/// As vector, but the stride is given in bytes (MPI_Type_create_hvector).
Type hvector(Off count, Off blocklen, Off stride_bytes, const Type& t);

/// Blocks of blocklens[i] instances of t at element displacements disps[i]
/// (MPI_Type_indexed).
Type indexed(std::span<const Off> blocklens, std::span<const Off> disps_elems,
             const Type& t);

/// As indexed, but displacements in bytes (MPI_Type_create_hindexed).
Type hindexed(std::span<const Off> blocklens, std::span<const Off> disps_bytes,
              const Type& t);

/// Equal-size blocks at element displacements (MPI_Type_create_indexed_block).
Type indexed_block(Off blocklen, std::span<const Off> disps_elems,
                   const Type& t);

/// Heterogeneous struct: blocklens[i] instances of types[i] at byte
/// displacement disps[i] (MPI_Type_create_struct).
Type struct_(std::span<const Off> blocklens, std::span<const Off> disps_bytes,
             std::span<const Type> types);

/// Override lb and extent (MPI_Type_create_resized).
Type resized(const Type& t, Off lb, Off extent);

enum class Order { C, Fortran };

/// n-dimensional subarray of a larger n-dimensional array
/// (MPI_Type_create_subarray).  sizes/subsizes/starts are per dimension;
/// for Order::C the last dimension varies fastest, for Order::Fortran the
/// first.
Type subarray(std::span<const Off> sizes, std::span<const Off> subsizes,
              std::span<const Off> starts, Order order, const Type& t);

/// HPF-style distribution kinds for darray (MPI_DISTRIBUTE_*).
enum class Distrib {
  None,    ///< dimension not distributed (psizes[d] must be 1)
  Block,   ///< one contiguous block per process
  Cyclic,  ///< blocks of darg elements dealt round-robin
};

/// Use the default distribution argument (MPI_DISTRIBUTE_DFLT_DARG):
/// Block -> ceil(gsize/psize), Cyclic -> 1.
inline constexpr Off kDfltDarg = -1;

/// rank's piece of an ndims-dimensional global array distributed over a
/// process grid (MPI_Type_create_darray).  The process grid is ordered
/// row-major over `psizes` (as the MPI standard specifies); `order`
/// selects the array storage order.  A rank owning no elements yields a
/// zero-size type.
Type darray(int nprocs, int rank, std::span<const Off> gsizes,
            std::span<const Distrib> distribs, std::span<const Off> dargs,
            std::span<const Off> psizes, Order order, const Type& t);

// ---- property accessors (free-function style used across llio) --------

inline Off size(const Type& t) { return t->size(); }
inline Off extent(const Type& t) { return t->extent(); }
inline Off lb(const Type& t) { return t->lb(); }
inline Off ub(const Type& t) { return t->ub(); }
inline Off true_lb(const Type& t) { return t->true_lb(); }
inline Off true_ub(const Type& t) { return t->true_ub(); }
inline Off block_count(const Type& t) { return t->block_count(); }
inline int depth(const Type& t) { return t->depth(); }
inline bool is_contiguous(const Type& t) { return t->is_contiguous(); }
inline bool is_monotone(const Type& t) { return t->is_monotone(); }

/// Structural equality (same tree shape and parameters).
bool equal(const Type& a, const Type& b);

/// Debug rendering, e.g. "vector(8, 1, 16, byte)".
std::string to_string(const Type& t);

}  // namespace llio::dt
