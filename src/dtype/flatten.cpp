#include "dtype/flatten.hpp"

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace llio::dt {

OlList::OlList(std::vector<OlTuple> tuples) : tuples_(std::move(tuples)) {
  for (const OlTuple& t : tuples_) total_bytes_ += t.len;
}

namespace {

void emit(std::vector<OlTuple>& out, Off off, Off len, bool coalesce) {
  if (len <= 0) return;
  if (coalesce && !out.empty() && out.back().off + out.back().len == off) {
    out.back().len += len;
    return;
  }
  out.push_back({off, len});
}

void walk(const Node& n, Off base, std::vector<OlTuple>& out, bool coalesce) {
  if (n.size() == 0) return;
  switch (n.kind()) {
    case Kind::Basic:
      emit(out, base, n.size(), coalesce);
      break;
    case Kind::Contiguous: {
      const Node& c = *n.child();
      if (c.is_contiguous()) {
        // Dense child: the whole repetition is one run of data.
        emit(out, base + c.true_lb(), n.count() * c.size(), coalesce);
        break;
      }
      for (Off i = 0; i < n.count(); ++i)
        walk(c, base + i * c.extent(), out, coalesce);
      break;
    }
    case Kind::Vector: {
      const Node& c = *n.child();
      for (Off i = 0; i < n.count(); ++i) {
        const Off bbase = base + i * n.stride_bytes();
        if (c.is_contiguous()) {
          emit(out, bbase + c.true_lb(), n.blocklen() * c.size(), coalesce);
        } else {
          for (Off j = 0; j < n.blocklen(); ++j)
            walk(c, bbase + j * c.extent(), out, coalesce);
        }
      }
      break;
    }
    case Kind::Indexed: {
      const Node& c = *n.child();
      const auto bls = n.blocklens();
      const auto ds = n.disps_bytes();
      for (std::size_t i = 0; i < bls.size(); ++i) {
        const Off bbase = base + ds[i];
        if (c.is_contiguous()) {
          emit(out, bbase + c.true_lb(), bls[i] * c.size(), coalesce);
        } else {
          for (Off j = 0; j < bls[i]; ++j)
            walk(c, bbase + j * c.extent(), out, coalesce);
        }
      }
      break;
    }
    case Kind::Struct: {
      const auto bls = n.blocklens();
      const auto ds = n.disps_bytes();
      const auto kids = n.children();
      for (std::size_t i = 0; i < kids.size(); ++i) {
        const Node& c = *kids[i];
        const Off bbase = base + ds[i];
        if (c.size() == 0) continue;
        if (c.is_contiguous()) {
          emit(out, bbase + c.true_lb(), bls[i] * c.size(), coalesce);
        } else {
          for (Off j = 0; j < bls[i]; ++j)
            walk(c, bbase + j * c.extent(), out, coalesce);
        }
      }
      break;
    }
    case Kind::Resized:
      walk(*n.child(), base, out, coalesce);
      break;
  }
}

}  // namespace

OlList flatten(const Type& t, bool coalesce) {
  LLIO_REQUIRE(t != nullptr, Errc::InvalidDatatype, "flatten: null type");
  obs::Span span("flatten", obs::TraceLevel::Full);
  span.arg("blocks", t->block_count());
  std::vector<OlTuple> out;
  if (t->block_count() > 0)
    out.reserve(static_cast<std::size_t>(t->block_count()));
  walk(*t, 0, out, coalesce);
  return OlList(std::move(out));
}

}  // namespace llio::dt
