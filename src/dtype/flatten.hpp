// Explicit ("list-based") flattening of datatypes into ol-lists of
// <offset, length> tuples — the ROMIO representation the paper's Section 2
// analyzes.  The list-based baseline engine is built on this; the listless
// engine never calls it.
#pragma once

#include <vector>

#include "dtype/datatype.hpp"

namespace llio::dt {

/// One contiguous block of a flattened datatype: `len` data bytes at typemap
/// offset `off`.  16 bytes per tuple, exactly the memory cost quoted in the
/// paper (sizeof(MPI_Aint) + sizeof(MPI_Offset)).
struct OlTuple {
  Off off;
  Off len;

  friend bool operator==(const OlTuple&, const OlTuple&) = default;
};

/// The ol-list of one datatype instance, in typemap order.
class OlList {
 public:
  OlList() = default;
  explicit OlList(std::vector<OlTuple> tuples);

  const std::vector<OlTuple>& tuples() const noexcept { return tuples_; }
  std::size_t block_count() const noexcept { return tuples_.size(); }
  Off total_bytes() const noexcept { return total_bytes_; }

  /// Bytes of heap memory consumed by the explicit representation.
  Off memory_bytes() const noexcept {
    return static_cast<Off>(tuples_.size() * sizeof(OlTuple));
  }

  bool empty() const noexcept { return tuples_.empty(); }

 private:
  std::vector<OlTuple> tuples_;
  Off total_bytes_ = 0;
};

/// Explicitly flatten one instance of `t` into an ol-list.  With `coalesce`
/// (the default, matching ROMIO) exactly-adjacent blocks are merged.
/// Cost: O(block_count) time and memory — the bottleneck the paper removes.
OlList flatten(const Type& t, bool coalesce = true);

}  // namespace llio::dt
