#include "dtype/normalize.hpp"

#include <vector>

namespace llio::dt {

namespace {

bool same_bounds(const Type& a, const Type& b) {
  return a->lb() == b->lb() && a->ub() == b->ub();
}

Type norm(const Type& t);

Type norm_contiguous(const Node& n) {
  const Type child = norm(n.child());
  if (n.count() == 1) return child;
  if (child->kind() == Kind::Contiguous) {
    const Type grand = child->child();
    // Nested counts collapse only when the inner tiling is at the
    // grandchild extent, which contiguous guarantees.
    return contiguous(n.count() * child->count(), grand);
  }
  return contiguous(n.count(), child);
}

Type norm_vector(const Node& n) {
  const Type child = norm(n.child());
  const Off block_span = n.blocklen() * child->extent();
  if (n.count() == 1) return norm(contiguous(n.blocklen(), child));
  if (n.stride_bytes() == block_span) {
    // Dense stride: blocks tile seamlessly.
    return norm(contiguous(n.count() * n.blocklen(), child));
  }
  if (n.blocklen() == 1 && child->kind() == Kind::Contiguous) {
    // hvector(c, 1, s, contiguous(m, g)) -> hvector(c, m, s, g): exposes
    // the basic-leaf block directly to the strided-copy kernels.
    return hvector(n.count(), child->count(), n.stride_bytes(),
                   child->child());
  }
  return hvector(n.count(), n.blocklen(), n.stride_bytes(), child);
}

Type norm_indexed(const Node& n) {
  const Type child = norm(n.child());
  const auto bls = n.blocklens();
  const auto ds = n.disps_bytes();
  if (bls.size() == 1 && ds[0] == 0)
    return norm(contiguous(bls[0], child));
  // Equal blocks at a uniform positive stride starting at 0 -> hvector.
  if (bls.size() >= 2 && ds[0] == 0) {
    bool uniform = true;
    const Off stride = ds[1] - ds[0];
    for (std::size_t i = 0; i < bls.size() && uniform; ++i) {
      if (bls[i] != bls[0]) uniform = false;
      if (i > 0 && ds[i] - ds[i - 1] != stride) uniform = false;
    }
    if (uniform && stride > 0) {
      return norm(
          hvector(static_cast<Off>(bls.size()), bls[0], stride, child));
    }
  }
  return hindexed(bls, ds, child);
}

Type norm_struct(const Node& n) {
  const auto bls = n.blocklens();
  const auto ds = n.disps_bytes();
  std::vector<Type> kids;
  kids.reserve(n.children().size());
  for (const Type& c : n.children()) kids.push_back(norm(c));
  if (kids.size() == 1 && bls[0] == 1 && ds[0] == 0) return kids[0];
  return struct_(bls, ds, kids);
}

Type norm(const Type& t) {
  switch (t->kind()) {
    case Kind::Basic:
      return t;
    case Kind::Contiguous:
      return norm_contiguous(*t);
    case Kind::Vector:
      return norm_vector(*t);
    case Kind::Indexed:
      return norm_indexed(*t);
    case Kind::Struct:
      return norm_struct(*t);
    case Kind::Resized: {
      const Type child = norm(t->child());
      if (child->lb() == t->lb() && child->ub() == t->ub()) return child;
      return resized(child, t->lb(), t->extent());
    }
  }
  return t;
}

}  // namespace

Type normalize(const Type& t) {
  LLIO_REQUIRE(t != nullptr, Errc::InvalidDatatype, "normalize: null type");
  Type out = norm(t);
  // Any rewrite must preserve the marker bounds; wrap if a collapse
  // changed them (e.g. dropping a resized that a parent relied on).
  if (!same_bounds(out, t)) out = resized(out, t->lb(), t->extent());
  return out;
}

}  // namespace llio::dt
