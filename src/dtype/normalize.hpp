// Datatype tree simplification (the analogue of MPICH's dataloop
// optimization): rewrites a type into an equivalent, usually shallower
// tree so the flattening-on-the-fly cursor sees larger regular strata.
//
// normalize() preserves the typemap exactly — same data bytes at the same
// offsets in the same order — and the lb/ub markers, so it is safe to
// apply to fileviews and memtypes alike.  The listless engine normalizes
// filetypes at set_view.
#pragma once

#include "dtype/datatype.hpp"

namespace llio::dt {

/// Equivalent simplified type.  Rewrites applied bottom-up:
///  - contiguous(1, t)              -> t
///  - contiguous(n, contiguous(m))  -> contiguous(n*m)
///  - vector with dense stride      -> contiguous
///  - vector(1, bl, s, t)           -> contiguous(bl, t)
///  - hvector of a contiguous child -> hvector over the merged child
///  - hindexed([n @ 0], t)          -> contiguous(n, t)
///  - hindexed with equal blocks at a uniform stride from 0 -> hvector
///  - struct of one block of count 1 at displacement 0 -> the child
///  - resized matching the child's bounds -> the child
Type normalize(const Type& t);

}  // namespace llio::dt
