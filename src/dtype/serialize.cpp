#include "dtype/serialize.hpp"

#include <cstring>

#include "common/error.hpp"

namespace llio::dt {

namespace {

void put_u8(ByteVec& out, std::uint8_t v) { out.push_back(Byte{v}); }

void put_i64(ByteVec& out, Off v) {
  Byte raw[sizeof(Off)];
  std::memcpy(raw, &v, sizeof(Off));
  out.insert(out.end(), raw, raw + sizeof(Off));
}

class Reader {
 public:
  explicit Reader(ConstByteSpan data) : data_(data) {}

  std::uint8_t u8() {
    LLIO_REQUIRE(pos_ + 1 <= data_.size(), Errc::InvalidDatatype,
                 "deserialize: truncated input");
    return std::to_integer<std::uint8_t>(data_[pos_++]);
  }

  Off i64() {
    LLIO_REQUIRE(pos_ + sizeof(Off) <= data_.size(), Errc::InvalidDatatype,
                 "deserialize: truncated input");
    Off v;
    std::memcpy(&v, data_.data() + pos_, sizeof(Off));
    pos_ += sizeof(Off);
    return v;
  }

  bool done() const { return pos_ == data_.size(); }

 private:
  ConstByteSpan data_;
  std::size_t pos_ = 0;
};

void encode(const Node& n, ByteVec& out) {
  put_u8(out, static_cast<std::uint8_t>(n.kind()));
  switch (n.kind()) {
    case Kind::Basic:
      put_u8(out, static_cast<std::uint8_t>(n.basic_id()));
      break;
    case Kind::Contiguous:
      put_i64(out, n.count());
      encode(*n.child(), out);
      break;
    case Kind::Vector:
      put_i64(out, n.count());
      put_i64(out, n.blocklen());
      put_i64(out, n.stride_bytes());
      encode(*n.child(), out);
      break;
    case Kind::Indexed: {
      put_i64(out, static_cast<Off>(n.blocklens().size()));
      for (Off b : n.blocklens()) put_i64(out, b);
      for (Off d : n.disps_bytes()) put_i64(out, d);
      encode(*n.child(), out);
      break;
    }
    case Kind::Struct: {
      put_i64(out, static_cast<Off>(n.children().size()));
      for (Off b : n.blocklens()) put_i64(out, b);
      for (Off d : n.disps_bytes()) put_i64(out, d);
      for (const Type& c : n.children()) encode(*c, out);
      break;
    }
    case Kind::Resized:
      put_i64(out, n.lb());
      put_i64(out, n.extent());
      encode(*n.child(), out);
      break;
  }
}

Type decode(Reader& r, int depth_budget) {
  LLIO_REQUIRE(depth_budget > 0, Errc::InvalidDatatype,
               "deserialize: tree too deep");
  const auto kind = static_cast<Kind>(r.u8());
  switch (kind) {
    case Kind::Basic: {
      const auto id = r.u8();
      LLIO_REQUIRE(id <= static_cast<std::uint8_t>(BasicId::Double),
                   Errc::InvalidDatatype, "deserialize: bad basic id");
      return basic(static_cast<BasicId>(id));
    }
    case Kind::Contiguous: {
      const Off count = r.i64();
      return contiguous(count, decode(r, depth_budget - 1));
    }
    case Kind::Vector: {
      const Off count = r.i64();
      const Off blocklen = r.i64();
      const Off stride = r.i64();
      return hvector(count, blocklen, stride, decode(r, depth_budget - 1));
    }
    case Kind::Indexed: {
      const Off n = r.i64();
      LLIO_REQUIRE(n >= 0 && n < (Off{1} << 32), Errc::InvalidDatatype,
                   "deserialize: bad indexed block count");
      std::vector<Off> bls(to_size(n)), ds(to_size(n));
      for (Off& b : bls) b = r.i64();
      for (Off& d : ds) d = r.i64();
      return hindexed(bls, ds, decode(r, depth_budget - 1));
    }
    case Kind::Struct: {
      const Off n = r.i64();
      LLIO_REQUIRE(n >= 0 && n < (Off{1} << 32), Errc::InvalidDatatype,
                   "deserialize: bad struct child count");
      std::vector<Off> bls(to_size(n)), ds(to_size(n));
      for (Off& b : bls) b = r.i64();
      for (Off& d : ds) d = r.i64();
      std::vector<Type> kids(to_size(n));
      for (Type& c : kids) c = decode(r, depth_budget - 1);
      return struct_(bls, ds, kids);
    }
    case Kind::Resized: {
      const Off lbv = r.i64();
      const Off ext = r.i64();
      return resized(decode(r, depth_budget - 1), lbv, ext);
    }
  }
  throw_error(Errc::InvalidDatatype, "deserialize: unknown node kind");
}

}  // namespace

ByteVec serialize(const Type& t) {
  LLIO_REQUIRE(t != nullptr, Errc::InvalidDatatype, "serialize: null type");
  ByteVec out;
  encode(*t, out);
  return out;
}

Type deserialize(ConstByteSpan data) {
  Reader r(data);
  Type t = decode(r, /*depth_budget=*/256);
  LLIO_REQUIRE(r.done(), Errc::InvalidDatatype,
               "deserialize: trailing bytes after type");
  return t;
}

}  // namespace llio::dt
