// Compact wire representation of datatypes.
//
// This is the "compact representation of MPI datatypes" that listless I/O
// exchanges once per fileview (fileview caching, paper §3.2.3) instead of
// shipping ol-lists on every collective access.  The encoding size is
// proportional to the *tree* size of the type (a handful of bytes per
// constructor), not to block_count.
#pragma once

#include "common/bytes.hpp"
#include "dtype/datatype.hpp"

namespace llio::dt {

/// Encode `t` into a self-delimiting byte string.
ByteVec serialize(const Type& t);

/// Decode a type previously produced by serialize().  Throws
/// Errc::InvalidDatatype on malformed input.
Type deserialize(ConstByteSpan data);

}  // namespace llio::dt
