#include "fotf/cursor.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace llio::fotf {

using dt::Kind;
using dt::Node;

SegmentCursor::SegmentCursor(Type t, Off count) : type_(std::move(t)), count_(count) {
  LLIO_REQUIRE(type_ != nullptr, Errc::InvalidDatatype, "cursor: null type");
  LLIO_REQUIRE(count >= 0, Errc::InvalidArgument, "cursor: count < 0");
  total_ = count_ * type_->size();
  seek(0);
}

Off SegmentCursor::nblocks_of(const Frame& f) const {
  if (f.node == nullptr) return 1;  // synthetic root: one block of count_ elems
  switch (f.node->kind()) {
    case Kind::Basic: return 0;  // never framed: contiguous, emitted by parent
    case Kind::Contiguous: return 1;
    case Kind::Resized: return 1;
    case Kind::Vector: return f.node->count();
    case Kind::Indexed:
    case Kind::Struct: return static_cast<Off>(f.node->blocklens().size());
  }
  return 0;
}

SegmentCursor::Block SegmentCursor::block_of(const Frame& f, Off i) const {
  if (f.node == nullptr) return {type_.get(), 0, count_};
  const Node& n = *f.node;
  switch (n.kind()) {
    case Kind::Contiguous: return {n.child().get(), 0, n.count()};
    case Kind::Resized: return {n.child().get(), 0, 1};
    case Kind::Vector:
      return {n.child().get(), i * n.stride_bytes(), n.blocklen()};
    case Kind::Indexed:
      return {n.child().get(), n.disps_bytes()[to_size(i)],
              n.blocklens()[to_size(i)]};
    case Kind::Struct:
      return {n.children()[to_size(i)].get(), n.disps_bytes()[to_size(i)],
              n.blocklens()[to_size(i)]};
    case Kind::Basic: break;
  }
  LLIO_ASSERT(false, "block_of: bad node kind");
  return {};
}

void SegmentCursor::emit_run(Frame& f, const Block& b, Off ielem, Off rem) {
  const Node& c = *b.child;
  run_mem_ = f.base + b.base + ielem * c.extent() + c.true_lb() + rem;
  run_len_ = (b.elems - ielem) * c.size() - rem;
  run_is_full_block_ = (ielem == 0 && rem == 0);
  f.ielem = b.elems;  // the run covers the rest of this block
}

void SegmentCursor::seek(Off skip) {
  LLIO_REQUIRE(skip >= 0 && skip <= total_, Errc::InvalidArgument,
               "cursor: seek out of range");
  stack_.clear();
  run_mem_ = 0;
  run_len_ = 0;
  stream_ = skip;
  run_is_full_block_ = false;
  if (skip == total_) return;  // at end (also covers total_ == 0)

  stack_.push_back({nullptr, 0, 0, 0});
  for (;;) {
    Frame& f = stack_.back();
    // Locate the block and element containing `skip` within this frame.
    Off iblock = 0;
    Off rem = skip;
    const Node* n = f.node;
    if (n != nullptr &&
        (n->kind() == Kind::Indexed || n->kind() == Kind::Struct)) {
      const auto prefix = n->prefix();
      // Last i with prefix[i] <= skip < prefix[i+1].
      const auto it =
          std::upper_bound(prefix.begin(), prefix.end(), skip) - 1;
      iblock = it - prefix.begin();
      rem = skip - *it;
    } else if (n != nullptr && n->kind() == Kind::Vector) {
      const Off bd = n->blocklen() * n->child()->size();
      iblock = skip / bd;
      rem = skip % bd;
    }
    const Block b = block_of(f, iblock);
    const Off csz = b.child->size();
    LLIO_ASSERT(csz > 0, "seek landed in a zero-size block");
    const Off ielem = rem / csz;
    rem = rem % csz;
    f.iblock = iblock;
    f.ielem = ielem;
    if (b.child->is_contiguous()) {
      emit_run(f, b, ielem, rem);
      return;
    }
    stack_.push_back({b.child, f.base + b.base + ielem * b.child->extent(),
                      0, 0});
    skip = rem;
  }
}

void SegmentCursor::advance() {
  run_is_full_block_ = false;
  while (!stack_.empty()) {
    Frame& f = stack_.back();
    const Off nb = nblocks_of(f);
    bool descended = false;
    while (f.iblock < nb) {
      const Block b = block_of(f, f.iblock);
      if (b.elems <= 0 || b.child->size() == 0 || f.ielem >= b.elems) {
        ++f.iblock;
        f.ielem = 0;
        continue;
      }
      if (b.child->is_contiguous()) {
        emit_run(f, b, f.ielem, 0);
        return;
      }
      stack_.push_back(
          {b.child, f.base + b.base + f.ielem * b.child->extent(), 0, 0});
      descended = true;
      break;
    }
    if (descended) continue;
    stack_.pop_back();
    if (!stack_.empty()) ++stack_.back().ielem;
  }
  run_len_ = 0;  // end of stream
}

void SegmentCursor::consume(Off n) {
  LLIO_REQUIRE(n >= 0 && n <= run_len_, Errc::InvalidArgument,
               "cursor: consume beyond current run");
  run_mem_ += n;
  run_len_ -= n;
  stream_ += n;
  run_is_full_block_ = false;
  if (run_len_ == 0) advance();
}

bool SegmentCursor::vec_run(VecRun& out) const {
  if (!run_is_full_block_ || stack_.empty()) return false;
  const Frame& f = stack_.back();
  if (f.node == nullptr || f.node->kind() != Kind::Vector) return false;
  const Node& n = *f.node;
  const Node& c = *n.child();
  // emit_run guaranteed c contiguous and the run covering block f.iblock.
  const Off block_bytes = n.blocklen() * c.size();
  if (run_len_ != block_bytes) return false;
  out.mem = run_mem_;
  out.seg_bytes = block_bytes;
  out.stride = n.stride_bytes();
  out.nsegs = n.count() - f.iblock;

  // Extend the run across enclosing repetitions while the tiling is
  // seamless: a level's elements may be absorbed when the element extent
  // equals the span of the strided pattern below it (then the gap across
  // the boundary is exactly `stride` again).  This resolves the
  // repetition-count trade-off of the paper's §4.1 in favour of one big
  // gather/scatter.
  Off span = n.count() * n.stride_bytes();
  Off segs_full = n.count();  // segments per full instance of the subtree
  for (std::size_t i = stack_.size() - 1; i-- > 0;) {
    const Frame& p = stack_[i];
    const Block b = block_of(p, p.iblock);
    if (b.elems > 1 && b.child->extent() != span) break;
    const Off extra = b.elems - p.ielem - 1;
    if (extra > 0) out.nsegs += extra * segs_full;
    if (nblocks_of(p) != 1) break;  // sibling blocks break uniformity
    segs_full *= b.elems;
    span *= b.elems;
  }
  return true;
}

void SegmentCursor::consume_vec_segments(Off k) {
  LLIO_ASSERT(run_is_full_block_ && !stack_.empty(), "no vec run active");
  Frame& f = stack_.back();
  const Node& n = *f.node;
  LLIO_ASSERT(n.kind() == Kind::Vector, "vec run on non-vector frame");
  LLIO_REQUIRE(k >= 1, Errc::InvalidArgument,
               "consume_vec_segments: k < 1");
  const Off seg_bytes = n.blocklen() * n.child()->size();
  if (k <= n.count() - f.iblock) {
    stream_ += k * seg_bytes;
    f.iblock += k;
    f.ielem = 0;
    if (f.iblock < n.count()) {
      const Block b = block_of(f, f.iblock);
      emit_run(f, b, 0, 0);
    } else {
      advance();
    }
    return;
  }
  // The run extended past this frame: re-seek at the new stream position
  // (O(depth), amortized over the k segments just copied).
  const Off target = stream_ + k * seg_bytes;
  LLIO_REQUIRE(target <= total_, Errc::InvalidArgument,
               "consume_vec_segments: k out of range");
  seek(target);
}

}  // namespace llio::fotf
