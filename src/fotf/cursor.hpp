// Segment cursor: the engine behind flattening-on-the-fly.
//
// A SegmentCursor walks the contiguous segments of `count` instances of a
// datatype (instance i based at i*extent) in packed-stream order, without
// ever materializing an ol-list:
//
//  * seek(skip) positions at an arbitrary packed-stream offset in
//    O(depth * log k) — division for regular constructs, binary search over
//    cached prefix sums for indexed/struct.  This replaces ROMIO's
//    O(N_block/2) linear list traversal.
//  * advancing from one segment to the next is amortized O(1).
//  * runs of evenly spaced equal-size segments (vector blocks) are exposed
//    via vec_run() so that the pack/unpack loop can hand them to a single
//    strided-copy kernel — the scalar stand-in for the SX gather/scatter
//    operations the paper exploits.
#pragma once

#include <vector>

#include "common/bytes.hpp"
#include "dtype/datatype.hpp"

namespace llio::fotf {

using dt::Type;

class SegmentCursor {
 public:
  /// Cursor over `count` instances of `t`.
  SegmentCursor(Type t, Off count);

  /// Total data bytes covered (count * size(t)).
  Off total_bytes() const noexcept { return total_; }

  /// Position at packed-stream offset `skip` in [0, total_bytes()].
  void seek(Off skip);

  /// True when the stream is exhausted.
  bool at_end() const noexcept { return run_len_ == 0; }

  /// Memory offset (relative to the buffer origin) of the current run.
  Off run_mem() const noexcept { return run_mem_; }

  /// Remaining bytes in the current contiguous run (0 iff at_end()).
  Off run_len() const noexcept { return run_len_; }

  /// Consume n <= run_len() bytes; advances to the next run when the
  /// current one is exhausted.
  void consume(Off n);

  /// A run of equally spaced, equal-size segments (vector blocks).
  struct VecRun {
    Off mem;        ///< memory offset of the first segment
    Off seg_bytes;  ///< bytes per segment
    Off stride;     ///< distance between segment starts
    Off nsegs;      ///< number of segments available
  };

  /// If the current position is at the start of a full vector block and
  /// more equally spaced blocks follow, describe them.  The run is
  /// extended across enclosing repetitions whenever the tiling is
  /// seamless (each level's extent equals the span of the strided
  /// pattern), so e.g. N instances of a resized vector expose one run of
  /// N*count segments — the repetition-count trade-off discussed in the
  /// paper's §4.1.  Returns false when no vectorizable run is available.
  bool vec_run(VecRun& out) const;

  /// Consume k full segments of the VecRun previously returned by
  /// vec_run(); k in [1, nsegs].
  void consume_vec_segments(Off k);

  /// Packed-stream position of the current run start.
  Off stream_pos() const noexcept { return stream_; }

 private:
  struct Frame {
    const dt::Node* node;  ///< nullptr = synthetic root (count instances)
    Off base;              ///< memory offset of this node instance
    Off iblock;            ///< current block index
    Off ielem;             ///< current element within the block
  };

  struct Block {
    const dt::Node* child;
    Off base;   ///< offset of the block relative to the frame base
    Off elems;  ///< child instances in the block, tiled at child extent
  };

  Off nblocks_of(const Frame& f) const;
  Block block_of(const Frame& f, Off i) const;

  /// Emit the leaf run for (frame, block b, element ielem, byte rem inside
  /// the element) where b.child is contiguous; marks the block consumed.
  void emit_run(Frame& f, const Block& b, Off ielem, Off rem);

  /// Find the next run after the current frame state, popping/advancing
  /// frames as needed.  Sets run_len_ = 0 at end of stream.
  void advance();

  Type type_;
  Off count_ = 0;
  Off total_ = 0;
  std::vector<Frame> stack_;
  Off run_mem_ = 0;
  Off run_len_ = 0;
  Off stream_ = 0;  ///< packed-stream offset of the current position
  bool run_is_full_block_ = false;
};

}  // namespace llio::fotf
