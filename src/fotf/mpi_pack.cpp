#include "fotf/mpi_pack.hpp"

#include "common/error.hpp"
#include "fotf/pack.hpp"

namespace llio::fotf {

Off pack_size(Off count, const dt::Type& datatype) {
  LLIO_REQUIRE(count >= 0, Errc::InvalidArgument, "pack_size: count < 0");
  LLIO_REQUIRE(datatype != nullptr, Errc::InvalidDatatype,
               "pack_size: null datatype");
  return count * datatype->size();
}

void pack(const void* inbuf, Off incount, const dt::Type& datatype,
          void* outbuf, Off outsize, Off* position) {
  LLIO_REQUIRE(position != nullptr && *position >= 0, Errc::InvalidArgument,
               "pack: bad position");
  const Off need = pack_size(incount, datatype);
  LLIO_REQUIRE(*position + need <= outsize, Errc::InvalidArgument,
               "pack: output buffer too small");
  const Off copied = ff_pack(inbuf, incount, datatype, 0,
                             as_bytes(outbuf) + *position, need);
  LLIO_ASSERT(copied == need, "pack: short copy");
  *position += need;
}

void unpack(const void* inbuf, Off insize, Off* position, void* outbuf,
            Off outcount, const dt::Type& datatype) {
  LLIO_REQUIRE(position != nullptr && *position >= 0, Errc::InvalidArgument,
               "unpack: bad position");
  const Off need = pack_size(outcount, datatype);
  LLIO_REQUIRE(*position + need <= insize, Errc::InvalidArgument,
               "unpack: input buffer too small");
  const Off copied = ff_unpack(as_bytes(inbuf) + *position, need, outbuf,
                               outcount, datatype, 0);
  LLIO_ASSERT(copied == need, "unpack: short copy");
  *position += need;
}

}  // namespace llio::fotf
