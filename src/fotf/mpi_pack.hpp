// MPI_Pack-style public convenience API over flattening-on-the-fly.
//
// Unlike the internal ff_pack/ff_unpack (which address the packed stream
// by skipbytes and may move partial data), these follow the MPI calling
// convention: whole (count, datatype) units, a caller-maintained
// `position`, and hard errors when the buffer is too small.
#pragma once

#include "common/bytes.hpp"
#include "dtype/datatype.hpp"

namespace llio::fotf {

/// Bytes MPI_Pack would need for count instances (MPI_Pack_size).
Off pack_size(Off count, const dt::Type& datatype);

/// Append count instances from inbuf to outbuf at *position, advancing it.
void pack(const void* inbuf, Off incount, const dt::Type& datatype,
          void* outbuf, Off outsize, Off* position);

/// Extract count instances from inbuf at *position into outbuf.
void unpack(const void* inbuf, Off insize, Off* position, void* outbuf,
            Off outcount, const dt::Type& datatype);

}  // namespace llio::fotf
