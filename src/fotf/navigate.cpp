#include "fotf/navigate.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "fotf/cursor.hpp"

namespace llio::fotf {

using dt::Kind;
using dt::Node;

namespace {

Off below_node(const Node& n, Off x);

/// Bytes below x for `count` instances of `child` tiled at `spacing`.
Off tiled_below(const Node& child, Off count, Off spacing, Off x) {
  if (count <= 0 || child.size() == 0) return 0;
  if (x <= child.true_lb()) return 0;
  if (count == 1) return below_node(child, x);
  LLIO_ASSERT(spacing > 0, "tiled_below: non-positive spacing");
  Off i = floor_div(x - child.true_lb(), spacing);
  if (i < 0) return 0;
  if (i >= count) return count * child.size();
  return i * child.size() + below_node(child, x - i * spacing);
}

/// Data bytes of one instance of n with layout offset strictly below x.
/// Requires n monotone; cost O(depth * log nblocks).
Off below_node(const Node& n, Off x) {
  if (n.size() == 0 || x <= n.true_lb()) return 0;
  if (x >= n.true_ub()) return n.size();
  if (n.block_count() <= 1) {
    // Single dense segment [true_lb, true_ub).
    return std::clamp<Off>(x - n.true_lb(), 0, n.size());
  }
  switch (n.kind()) {
    case Kind::Basic:
      return std::clamp<Off>(x - n.true_lb(), 0, n.size());
    case Kind::Resized:
      return below_node(*n.child(), x);
    case Kind::Contiguous:
      return tiled_below(*n.child(), n.count(), n.child()->extent(), x);
    case Kind::Vector: {
      const Node& c = *n.child();
      const Off block_tlb = c.true_lb();
      const Off block_size = n.blocklen() * c.size();
      if (n.count() == 1)
        return tiled_below(c, n.blocklen(), c.extent(), x);
      LLIO_ASSERT(n.stride_bytes() > 0, "below_node: non-positive stride");
      Off i = floor_div(x - block_tlb, n.stride_bytes());
      if (i < 0) return 0;
      if (i >= n.count()) return n.count() * block_size;
      return i * block_size +
             tiled_below(c, n.blocklen(), c.extent(), x - i * n.stride_bytes());
    }
    case Kind::Indexed: {
      const Node& c = *n.child();
      const auto ds = n.disps_bytes();
      const auto bls = n.blocklens();
      const Off nb = static_cast<Off>(ds.size());
      // Last block i with data start <= x (blocks are nonempty and sorted
      // for navigable types; enforced by file_navigable()).
      Off lo = 0, hi = nb - 1;
      while (lo < hi) {
        const Off mid = (lo + hi + 1) / 2;
        if (ds[to_size(mid)] + c.true_lb() <= x)
          lo = mid;
        else
          hi = mid - 1;
      }
      return n.prefix()[to_size(lo)] +
             tiled_below(c, bls[to_size(lo)], c.extent(), x - ds[to_size(lo)]);
    }
    case Kind::Struct: {
      const auto ds = n.disps_bytes();
      const auto bls = n.blocklens();
      const auto kids = n.children();
      const Off nb = static_cast<Off>(ds.size());
      Off lo = 0, hi = nb - 1;
      while (lo < hi) {
        const Off mid = (lo + hi + 1) / 2;
        if (ds[to_size(mid)] + kids[to_size(mid)]->true_lb() <= x)
          lo = mid;
        else
          hi = mid - 1;
      }
      return n.prefix()[to_size(lo)] +
             tiled_below(*kids[to_size(lo)], bls[to_size(lo)],
                         kids[to_size(lo)]->extent(), x - ds[to_size(lo)]);
    }
  }
  LLIO_ASSERT(false, "below_node: bad kind");
  return 0;
}

/// No Indexed/Struct node may carry an empty block (navigation binary
/// search relies on every block having data).
bool blocks_nonempty(const Node& n) {
  switch (n.kind()) {
    case Kind::Basic:
      return true;
    case Kind::Contiguous:
    case Kind::Resized:
      return blocks_nonempty(*n.child());
    case Kind::Vector:
      return n.blocklen() > 0 && blocks_nonempty(*n.child());
    case Kind::Indexed: {
      if (n.child()->size() == 0) return false;
      for (Off b : n.blocklens())
        if (b <= 0) return false;
      return blocks_nonempty(*n.child());
    }
    case Kind::Struct: {
      for (std::size_t i = 0; i < n.children().size(); ++i) {
        if (n.blocklens()[i] <= 0 || n.children()[i]->size() == 0)
          return false;
        if (!blocks_nonempty(*n.children()[i])) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace

Off mem_start(const Type& t, Off skip) {
  LLIO_REQUIRE(t != nullptr, Errc::InvalidDatatype, "mem_start: null type");
  LLIO_REQUIRE(skip >= 0, Errc::InvalidArgument, "mem_start: negative skip");
  const Off s = t->size();
  if (s == 0) return 0;
  const Off i = skip / s;
  const Off rem = skip % s;
  SegmentCursor cur(t, 1);
  cur.seek(rem);
  return i * t->extent() + cur.run_mem();
}

Off mem_end(const Type& t, Off skip) {
  LLIO_REQUIRE(t != nullptr, Errc::InvalidDatatype, "mem_end: null type");
  LLIO_REQUIRE(skip >= 0, Errc::InvalidArgument, "mem_end: negative skip");
  if (skip == 0) return mem_start(t, 0);
  const Off s = t->size();
  LLIO_REQUIRE(s > 0, Errc::InvalidArgument, "mem_end: zero-size type");
  const Off last = skip - 1;
  const Off i = last / s;
  const Off rem = last % s;
  SegmentCursor cur(t, 1);
  cur.seek(rem);
  return i * t->extent() + cur.run_mem() + 1;
}

Off ff_extent(const Type& t, Off skipbytes, Off size) {
  if (size <= 0) return 0;
  return mem_end(t, skipbytes + size) - mem_start(t, skipbytes);
}

Off data_below(const Type& t, Off mem) {
  LLIO_REQUIRE(t != nullptr, Errc::InvalidDatatype, "data_below: null type");
  const Off s = t->size();
  if (s == 0) return 0;
  const Off e = t->extent();
  LLIO_ASSERT(e > 0, "data_below: non-positive extent");
  if (mem <= t->true_lb()) return 0;
  const Off i = floor_div(mem - t->true_lb(), e);
  if (i < 0) return 0;
  return i * s + below_node(*t, mem - i * e);
}

Off data_in_window(const Type& t, Off lo, Off hi) {
  if (hi <= lo) return 0;
  return data_below(t, hi) - data_below(t, lo);
}

bool window_dense(const Type& t, Off lo, Off hi) {
  if (hi <= lo) return true;
  return data_in_window(t, lo, hi) == hi - lo;
}

Off ff_size(const Type& t, Off skipbytes, Off extent) {
  if (extent <= 0) return 0;
  const Off a = mem_start(t, skipbytes);
  const Off b = data_below(t, a + extent);
  return std::max<Off>(0, b - skipbytes);
}

bool file_navigable(const Type& t) {
  if (!t || t->size() <= 0) return false;
  if (!t->is_monotone()) return false;
  if (t->true_lb() < 0) return false;
  if (t->extent() <= 0) return false;
  if (t->true_ub() - t->true_lb() > t->extent()) return false;
  return blocks_nonempty(*t);
}

}  // namespace llio::fotf
