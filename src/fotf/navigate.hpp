// Datatype navigation (paper §3.2.1, Figure 2).
//
// These functions let the MPI-IO layer toggle between positions in the
// *packed data stream* of a fileview (skipbytes) and positions in the
// *file* (memory-layout offsets of the filetype, tiled at its extent),
// in O(depth) time — replacing ROMIO's O(N_block/2) ol-list traversals.
//
// Conventions (for a type t tiled unboundedly at extent(t), instance i
// based at i*extent):
//   mem_start(t, s) - file-layout offset of packed-stream byte s; for s at
//                     a segment boundary this is the start of the *next*
//                     segment (where the next byte will go).
//   mem_end(t, s)   - offset one past packed-stream byte s-1;
//                     mem_end(t, 0) == mem_start(t, 0).
//   data_below(t,x) - packed-stream bytes whose layout offset is < x.
//                     Requires a monotone type (the MPI-IO filetype rule).
#pragma once

#include "common/bytes.hpp"
#include "dtype/datatype.hpp"

namespace llio::fotf {

using dt::Type;

/// Layout offset of packed-stream byte `skip` (start convention).
Off mem_start(const Type& t, Off skip);

/// Layout offset one past packed-stream byte `skip - 1` (end convention).
Off mem_end(const Type& t, Off skip);

/// Paper's MPIR_Type_ff_extent: the layout extent spanned when `size`
/// stream bytes are transferred after skipping `skipbytes`.
Off ff_extent(const Type& t, Off skipbytes, Off size);

/// Paper's MPIR_Type_ff_size: the number of stream bytes contained in a
/// layout window of `extent` bytes starting at the position of stream byte
/// `skipbytes`.  Requires a monotone type.
Off ff_size(const Type& t, Off skipbytes, Off extent);

/// Stream bytes with layout offset strictly below `mem` (monotone types).
Off data_below(const Type& t, Off mem);

/// Stream bytes with layout offset in [lo, hi) (monotone types).
Off data_in_window(const Type& t, Off lo, Off hi);

/// True when the layout window [lo, hi) is completely covered by data
/// bytes — every offset in it belongs to some segment.  This is the
/// paper's mergeview condition "ff_size == extent" for one view; the
/// collective analysis (mpiio/mergeview) extends it to unions of views.
bool window_dense(const Type& t, Off lo, Off hi);

/// True when t satisfies the MPI-IO filetype rules our navigation relies
/// on: monotonically increasing non-overlapping segments, non-negative
/// offsets, and instances tiled at extent(t) without interleaving.
bool file_navigable(const Type& t);

}  // namespace llio::fotf
