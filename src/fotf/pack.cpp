#include "fotf/pack.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace llio::fotf {

namespace {

template <std::size_t B>
void gather_fixed(Byte* dst, const Byte* src, Off stride, Off n) {
  for (Off i = 0; i < n; ++i)
    std::memcpy(dst + i * static_cast<Off>(B), src + i * stride, B);
}

template <std::size_t B>
void scatter_fixed(Byte* dst, Off stride, const Byte* src, Off n) {
  for (Off i = 0; i < n; ++i)
    std::memcpy(dst + i * stride, src + i * static_cast<Off>(B), B);
}

}  // namespace

void strided_gather(Byte* dst, const Byte* src, Off seg_bytes, Off stride,
                    Off n) {
  switch (seg_bytes) {
    case 1: gather_fixed<1>(dst, src, stride, n); return;
    case 2: gather_fixed<2>(dst, src, stride, n); return;
    case 4: gather_fixed<4>(dst, src, stride, n); return;
    case 8: gather_fixed<8>(dst, src, stride, n); return;
    case 16: gather_fixed<16>(dst, src, stride, n); return;
    case 32: gather_fixed<32>(dst, src, stride, n); return;
    case 64: gather_fixed<64>(dst, src, stride, n); return;
    case 128: gather_fixed<128>(dst, src, stride, n); return;
    default:
      for (Off i = 0; i < n; ++i)
        std::memcpy(dst + i * seg_bytes, src + i * stride, to_size(seg_bytes));
  }
}

void strided_scatter(Byte* dst, Off stride, const Byte* src, Off seg_bytes,
                     Off n) {
  switch (seg_bytes) {
    case 1: scatter_fixed<1>(dst, stride, src, n); return;
    case 2: scatter_fixed<2>(dst, stride, src, n); return;
    case 4: scatter_fixed<4>(dst, stride, src, n); return;
    case 8: scatter_fixed<8>(dst, stride, src, n); return;
    case 16: scatter_fixed<16>(dst, stride, src, n); return;
    case 32: scatter_fixed<32>(dst, stride, src, n); return;
    case 64: scatter_fixed<64>(dst, stride, src, n); return;
    case 128: scatter_fixed<128>(dst, stride, src, n); return;
    default:
      for (Off i = 0; i < n; ++i)
        std::memcpy(dst + i * stride, src + i * seg_bytes, to_size(seg_bytes));
  }
}

namespace {

/// One transfer loop shared by pack and unpack; `ToPack` selects direction.
template <bool ToPack>
Off transfer(SegmentCursor& cur, Byte* typed_base, Off mem_bias, Byte* pack,
             Off packsize) {
  LLIO_REQUIRE(packsize >= 0, Errc::InvalidArgument, "negative pack size");
  Off done = 0;
  while (done < packsize && !cur.at_end()) {
    SegmentCursor::VecRun vr;
    if (cur.vec_run(vr) && vr.nsegs >= 2 &&
        packsize - done >= 2 * vr.seg_bytes) {
      // A run of equally spaced blocks: one strided kernel call moves k
      // full segments (the gather/scatter fast path).
      const Off k = std::min(vr.nsegs, (packsize - done) / vr.seg_bytes);
      Byte* typed = typed_base + (vr.mem - mem_bias);
      if constexpr (ToPack)
        strided_gather(pack + done, typed, vr.seg_bytes, vr.stride, k);
      else
        strided_scatter(typed, vr.stride, pack + done, vr.seg_bytes, k);
      done += k * vr.seg_bytes;
      cur.consume_vec_segments(k);
      continue;
    }
    const Off n = std::min(cur.run_len(), packsize - done);
    Byte* typed = typed_base + (cur.run_mem() - mem_bias);
    if constexpr (ToPack)
      std::memcpy(pack + done, typed, to_size(n));
    else
      std::memcpy(typed, pack + done, to_size(n));
    done += n;
    cur.consume(n);
  }
  return done;
}

}  // namespace

Off transfer_pack(SegmentCursor& cur, const Byte* typed_base, Off mem_bias,
                  Byte* packbuf, Off packsize) {
  return transfer<true>(cur, const_cast<Byte*>(typed_base), mem_bias, packbuf,
                        packsize);
}

Off transfer_unpack(SegmentCursor& cur, Byte* typed_base, Off mem_bias,
                    const Byte* packbuf, Off packsize) {
  return transfer<false>(cur, typed_base, mem_bias, const_cast<Byte*>(packbuf),
                         packsize);
}

Off ff_pack_window(const void* window_buf, Off mem_bias, Off count,
                   const Type& datatype, Off skipbytes, void* packbuf,
                   Off packsize) {
  obs::Span span("ff_pack", obs::TraceLevel::Full);
  span.arg("bytes", packsize);
  SegmentCursor cur(datatype, count);
  LLIO_REQUIRE(skipbytes >= 0, Errc::InvalidArgument, "negative skipbytes");
  cur.seek(std::min(skipbytes, cur.total_bytes()));
  return transfer_pack(cur, as_bytes(window_buf), mem_bias,
                       as_bytes(packbuf), packsize);
}

Off ff_unpack_window(const void* packbuf, Off packsize, void* window_buf,
                     Off mem_bias, Off count, const Type& datatype,
                     Off skipbytes) {
  obs::Span span("ff_unpack", obs::TraceLevel::Full);
  span.arg("bytes", packsize);
  SegmentCursor cur(datatype, count);
  LLIO_REQUIRE(skipbytes >= 0, Errc::InvalidArgument, "negative skipbytes");
  cur.seek(std::min(skipbytes, cur.total_bytes()));
  return transfer_unpack(cur, as_bytes(window_buf), mem_bias,
                         as_bytes(packbuf), packsize);
}

Off ff_pack(const void* srcbuf, Off count, const Type& datatype, Off skipbytes,
            void* packbuf, Off packsize) {
  return ff_pack_window(srcbuf, 0, count, datatype, skipbytes, packbuf,
                        packsize);
}

Off ff_unpack(const void* packbuf, Off packsize, void* dstbuf, Off count,
              const Type& datatype, Off skipbytes) {
  return ff_unpack_window(packbuf, packsize, dstbuf, 0, count, datatype,
                          skipbytes);
}

}  // namespace llio::fotf
