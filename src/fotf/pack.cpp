#include "fotf/pack.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace llio::fotf {

// ---- non-temporal dense copy -------------------------------------------

namespace {

/// 0 = auto (LLC size), < 0 = disabled, > 0 = explicit byte threshold.
std::atomic<Off> g_nt_threshold{0};

Off detect_llc_bytes() {
#if defined(_SC_LEVEL3_CACHE_SIZE)
  const long l3 = ::sysconf(_SC_LEVEL3_CACHE_SIZE);
  if (l3 > 0) return static_cast<Off>(l3);
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
  const long l2 = ::sysconf(_SC_LEVEL2_CACHE_SIZE);
  if (l2 > 0) return static_cast<Off>(l2);
#endif
  return Off{32} << 20;  // conservative: larger than any LLC we care about
}

/// True when a dense write of `bytes` should bypass the cache.
bool nt_wanted(Off bytes) {
  if (!nt_supported()) return false;
  const Off t = nt_threshold();
  return t > 0 && bytes >= t;
}

#if defined(__SSE2__)
void nt_copy(Byte* dst, const Byte* src, Off n) {
  // Scalar head up to 16-byte destination alignment (streaming stores
  // require it), then 64-byte bursts, then a scalar tail.
  const auto addr = reinterpret_cast<std::uintptr_t>(dst);
  const Off head = std::min<Off>(n, static_cast<Off>((16 - (addr & 15)) & 15));
  if (head > 0) {
    std::memcpy(dst, src, to_size(head));
    dst += head;
    src += head;
    n -= head;
  }
  Off i = 0;
  for (; i + 64 <= n; i += 64) {
    const auto* s = reinterpret_cast<const __m128i*>(src + i);
    auto* d = reinterpret_cast<__m128i*>(dst + i);
    _mm_stream_si128(d + 0, _mm_loadu_si128(s + 0));
    _mm_stream_si128(d + 1, _mm_loadu_si128(s + 1));
    _mm_stream_si128(d + 2, _mm_loadu_si128(s + 2));
    _mm_stream_si128(d + 3, _mm_loadu_si128(s + 3));
  }
  for (; i + 16 <= n; i += 16)
    _mm_stream_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i)));
  if (i < n) std::memcpy(dst + i, src + i, to_size(n - i));
  _mm_sfence();
}
#endif

}  // namespace

bool nt_supported() noexcept {
#if defined(__SSE2__)
  return true;
#else
  return false;
#endif
}

void set_nt_threshold(Off bytes) {
  g_nt_threshold.store(bytes, std::memory_order_relaxed);
}

Off nt_threshold() {
  const Off t = g_nt_threshold.load(std::memory_order_relaxed);
  if (t != 0) return t;
  static const Off auto_threshold = detect_llc_bytes();
  return auto_threshold;
}

void dense_copy(Byte* dst, const Byte* src, Off n) {
  if (n <= 0) return;
#if defined(__SSE2__)
  if (nt_wanted(n)) {
    nt_copy(dst, src, n);
    return;
  }
#endif
  std::memcpy(dst, src, to_size(n));
}

// ---- strided gather/scatter kernels ------------------------------------

namespace {

template <std::size_t B>
void gather_fixed(Byte* __restrict dst, const Byte* __restrict src, Off stride,
                  Off n) {
  for (Off i = 0; i < n; ++i)
    std::memcpy(dst + i * static_cast<Off>(B), src + i * stride, B);
}

template <std::size_t B>
void scatter_fixed(Byte* __restrict dst, Off stride, const Byte* __restrict src,
                   Off n) {
  for (Off i = 0; i < n; ++i)
    std::memcpy(dst + i * stride, src + i * static_cast<Off>(B), B);
}

#if defined(__SSE2__)
/// Gather with streaming stores: the dense destination is written without
/// polluting the cache.  Requires B % 16 == 0 and a 16-byte-aligned dst.
template <std::size_t B>
void gather_fixed_nt(Byte* __restrict dst, const Byte* __restrict src,
                     Off stride, Off n) {
  static_assert(B % 16 == 0);
  for (Off i = 0; i < n; ++i) {
    const Byte* s = src + i * stride;
    auto* d = reinterpret_cast<__m128i*>(dst + i * static_cast<Off>(B));
    for (std::size_t o = 0; o < B; o += 16)
      _mm_stream_si128(
          d++, _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + o)));
  }
  _mm_sfence();
}

bool aligned16(const Byte* p) {
  return (reinterpret_cast<std::uintptr_t>(p) & 15) == 0;
}
#endif

}  // namespace

void strided_gather(Byte* dst, const Byte* src, Off seg_bytes, Off stride,
                    Off n) {
  if (seg_bytes == stride) {
    // Seamless tiling: the n segments are one contiguous block.
    dense_copy(dst, src, seg_bytes * n);
    return;
  }
#if defined(__SSE2__)
  if (seg_bytes >= 64 && (seg_bytes & 15) == 0 && aligned16(dst) &&
      nt_wanted(seg_bytes * n)) {
    switch (seg_bytes) {
      case 64: gather_fixed_nt<64>(dst, src, stride, n); return;
      case 128: gather_fixed_nt<128>(dst, src, stride, n); return;
      case 256: gather_fixed_nt<256>(dst, src, stride, n); return;
      case 512: gather_fixed_nt<512>(dst, src, stride, n); return;
      default: break;  // odd widths take the scalar path below
    }
  }
#endif
  switch (seg_bytes) {
    case 1: gather_fixed<1>(dst, src, stride, n); return;
    case 2: gather_fixed<2>(dst, src, stride, n); return;
    case 4: gather_fixed<4>(dst, src, stride, n); return;
    case 8: gather_fixed<8>(dst, src, stride, n); return;
    case 16: gather_fixed<16>(dst, src, stride, n); return;
    case 24: gather_fixed<24>(dst, src, stride, n); return;
    case 32: gather_fixed<32>(dst, src, stride, n); return;
    case 48: gather_fixed<48>(dst, src, stride, n); return;
    case 64: gather_fixed<64>(dst, src, stride, n); return;
    case 128: gather_fixed<128>(dst, src, stride, n); return;
    case 256: gather_fixed<256>(dst, src, stride, n); return;
    case 512: gather_fixed<512>(dst, src, stride, n); return;
    default: {
      // Generic tail: size conversion and bounds hoisted out of the loop,
      // pointer bumps instead of per-iteration multiplies.
      const std::size_t seg = to_size(seg_bytes);
      const Byte* __restrict s = src;
      Byte* __restrict d = dst;
      for (const Byte* const end = dst + n * seg_bytes; d != end;
           d += seg_bytes, s += stride)
        std::memcpy(d, s, seg);
    }
  }
}

void strided_scatter(Byte* dst, Off stride, const Byte* src, Off seg_bytes,
                     Off n) {
  if (seg_bytes == stride) {
    dense_copy(dst, src, seg_bytes * n);
    return;
  }
  switch (seg_bytes) {
    case 1: scatter_fixed<1>(dst, stride, src, n); return;
    case 2: scatter_fixed<2>(dst, stride, src, n); return;
    case 4: scatter_fixed<4>(dst, stride, src, n); return;
    case 8: scatter_fixed<8>(dst, stride, src, n); return;
    case 16: scatter_fixed<16>(dst, stride, src, n); return;
    case 24: scatter_fixed<24>(dst, stride, src, n); return;
    case 32: scatter_fixed<32>(dst, stride, src, n); return;
    case 48: scatter_fixed<48>(dst, stride, src, n); return;
    case 64: scatter_fixed<64>(dst, stride, src, n); return;
    case 128: scatter_fixed<128>(dst, stride, src, n); return;
    case 256: scatter_fixed<256>(dst, stride, src, n); return;
    case 512: scatter_fixed<512>(dst, stride, src, n); return;
    default: {
      const std::size_t seg = to_size(seg_bytes);
      const Byte* __restrict s = src;
      Byte* __restrict d = dst;
      for (const Byte* const end = src + n * seg_bytes; s != end;
           s += seg_bytes, d += stride)
        std::memcpy(d, s, seg);
    }
  }
}

// ---- cursor-driven transfer --------------------------------------------

namespace {

/// One transfer loop shared by pack and unpack; `ToPack` selects direction.
template <bool ToPack>
Off transfer(SegmentCursor& cur, Byte* typed_base, Off mem_bias, Byte* pack,
             Off packsize) {
  LLIO_REQUIRE(packsize >= 0, Errc::InvalidArgument, "negative pack size");
  Off done = 0;
  while (done < packsize && !cur.at_end()) {
    SegmentCursor::VecRun vr;
    if (cur.vec_run(vr) && vr.nsegs >= 2 &&
        packsize - done >= 2 * vr.seg_bytes) {
      // A run of equally spaced blocks: one strided kernel call moves k
      // full segments (the gather/scatter fast path).
      const Off k = std::min(vr.nsegs, (packsize - done) / vr.seg_bytes);
      Byte* typed = typed_base + (vr.mem - mem_bias);
      if constexpr (ToPack)
        strided_gather(pack + done, typed, vr.seg_bytes, vr.stride, k);
      else
        strided_scatter(typed, vr.stride, pack + done, vr.seg_bytes, k);
      done += k * vr.seg_bytes;
      cur.consume_vec_segments(k);
      continue;
    }
    const Off n = std::min(cur.run_len(), packsize - done);
    Byte* typed = typed_base + (cur.run_mem() - mem_bias);
    if constexpr (ToPack)
      dense_copy(pack + done, typed, n);
    else
      dense_copy(typed, pack + done, n);
    done += n;
    cur.consume(n);
  }
  return done;
}

}  // namespace

Off transfer_pack(SegmentCursor& cur, const Byte* typed_base, Off mem_bias,
                  Byte* packbuf, Off packsize) {
  return transfer<true>(cur, const_cast<Byte*>(typed_base), mem_bias, packbuf,
                        packsize);
}

Off transfer_unpack(SegmentCursor& cur, Byte* typed_base, Off mem_bias,
                    const Byte* packbuf, Off packsize) {
  return transfer<false>(cur, typed_base, mem_bias, const_cast<Byte*>(packbuf),
                         packsize);
}

Off ff_pack_window(const void* window_buf, Off mem_bias, Off count,
                   const Type& datatype, Off skipbytes, void* packbuf,
                   Off packsize) {
  obs::Span span("ff_pack", obs::TraceLevel::Full);
  span.arg("bytes", packsize);
  SegmentCursor cur(datatype, count);
  LLIO_REQUIRE(skipbytes >= 0, Errc::InvalidArgument, "negative skipbytes");
  cur.seek(std::min(skipbytes, cur.total_bytes()));
  return transfer_pack(cur, as_bytes(window_buf), mem_bias,
                       as_bytes(packbuf), packsize);
}

Off ff_unpack_window(const void* packbuf, Off packsize, void* window_buf,
                     Off mem_bias, Off count, const Type& datatype,
                     Off skipbytes) {
  obs::Span span("ff_unpack", obs::TraceLevel::Full);
  span.arg("bytes", packsize);
  SegmentCursor cur(datatype, count);
  LLIO_REQUIRE(skipbytes >= 0, Errc::InvalidArgument, "negative skipbytes");
  cur.seek(std::min(skipbytes, cur.total_bytes()));
  return transfer_unpack(cur, as_bytes(window_buf), mem_bias,
                         as_bytes(packbuf), packsize);
}

Off ff_pack(const void* srcbuf, Off count, const Type& datatype, Off skipbytes,
            void* packbuf, Off packsize) {
  return ff_pack_window(srcbuf, 0, count, datatype, skipbytes, packbuf,
                        packsize);
}

Off ff_unpack(const void* packbuf, Off packsize, void* dstbuf, Off count,
              const Type& datatype, Off skipbytes) {
  return ff_unpack_window(packbuf, packsize, dstbuf, 0, count, datatype,
                          skipbytes);
}

}  // namespace llio::fotf
