// Flattening-on-the-fly pack/unpack (paper §3.1).
//
// ff_pack / ff_unpack mirror the MPIR_ff_pack / MPIR_ff_unpack internal
// interface of MPI/SX: they move bytes [skipbytes, skipbytes+packsize) of
// the packed stream of `count` instances of `datatype` between a typed
// (possibly non-contiguous) buffer and a contiguous pack buffer.  Both
// return the number of bytes actually copied (may be < packsize at the end
// of the stream).
//
// Cost: proportional to the bytes moved plus O(depth) for the initial seek
// — independent of skipbytes and of any repetition counts, which is the
// paper's headline complexity claim.
//
// The *_window variants address the buffer-limit problem of §3.2.2: when
// the typed buffer is a bounded file buffer holding only the slice of the
// fileview at memory offsets [mem_bias, mem_bias + window), the caller
// passes the file buffer pointer and mem_bias, and every segment lands at
// buffer + (segment_offset - mem_bias).  This is the "virtual file buffer"
// adjustment implemented without forming out-of-range pointers.
#pragma once

#include "common/bytes.hpp"
#include "dtype/datatype.hpp"
#include "fotf/cursor.hpp"

namespace llio::fotf {

/// Pack non-contiguous data from `srcbuf` (count instances of datatype)
/// into contiguous `packbuf`, skipping `skipbytes` of the packed stream.
Off ff_pack(const void* srcbuf, Off count, const Type& datatype,
            Off skipbytes, void* packbuf, Off packsize);

/// Unpack contiguous `packbuf` into non-contiguous `dstbuf`.
Off ff_unpack(const void* packbuf, Off packsize, void* dstbuf, Off count,
              const Type& datatype, Off skipbytes);

/// Window variants: the typed buffer pointer addresses memory offset
/// `mem_bias` of the datatype's memory layout instead of offset 0.
Off ff_pack_window(const void* window_buf, Off mem_bias, Off count,
                   const Type& datatype, Off skipbytes, void* packbuf,
                   Off packsize);
Off ff_unpack_window(const void* packbuf, Off packsize, void* window_buf,
                     Off mem_bias, Off count, const Type& datatype,
                     Off skipbytes);

/// Pack/unpack driven by an existing cursor (streaming across calls
/// without re-seeking).  Returns bytes copied and advances the cursor.
Off transfer_pack(SegmentCursor& cur, const Byte* typed_base, Off mem_bias,
                  Byte* packbuf, Off packsize);
Off transfer_unpack(SegmentCursor& cur, Byte* typed_base, Off mem_bias,
                    const Byte* packbuf, Off packsize);

/// Strided copy kernels (scalar stand-ins for SX gather/scatter):
/// copy n segments of seg_bytes each between a strided and a dense buffer.
/// seg_bytes == stride collapses to one dense copy; large dense gathers
/// take a non-temporal store path when available (see nt_threshold).
void strided_gather(Byte* dst, const Byte* src, Off seg_bytes, Off stride,
                    Off n);
void strided_scatter(Byte* dst, Off stride, const Byte* src, Off seg_bytes,
                     Off n);

/// Dense copy used by every pack path: memcpy below the non-temporal
/// threshold, cache-bypassing streaming stores at or above it (copies
/// larger than the LLC would only evict useful lines).  Byte output is
/// identical either way.
void dense_copy(Byte* dst, const Byte* src, Off n);

/// Non-temporal store control.  The threshold defaults to the detected
/// LLC size (sysconf, with a conservative fallback).  set_nt_threshold:
/// 0 = auto, < 0 = disable, > 0 = explicit byte count (test/bench hook).
bool nt_supported() noexcept;
void set_nt_threshold(Off bytes);
Off nt_threshold();

}  // namespace llio::fotf
