#include "fotf/parallel.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "common/worker_pool.hpp"
#include "fotf/pack.hpp"
#include "obs/trace.hpp"

namespace llio::fotf {

namespace {

/// Floor on slice size: below this the O(depth) seek and the pool
/// round-trip outweigh the copy.
constexpr Off kMinSliceBytes = Off{64} << 10;

template <bool ToPack>
Off slice_move(const Type& t, Off count, Byte* typed, Off bias,
               const PackPlan* plan, Off lo, Byte* pk, Off len) {
  if (plan != nullptr) {
    if constexpr (ToPack)
      return plan->pack(typed, bias, count, lo, pk, len);
    else
      return plan->unpack(typed, bias, count, lo, pk, len);
  }
  SegmentCursor cur(t, count);
  cur.seek(std::min(lo, cur.total_bytes()));
  if constexpr (ToPack)
    return transfer_pack(cur, typed, bias, pk, len);
  else
    return transfer_unpack(cur, typed, bias, pk, len);
}

template <bool ToPack>
Off range_impl(const Type& t, Off count, Byte* typed, Off bias, Off skip,
               Byte* pk, Off n, const PackConfig& cfg, const PackPlan* plan,
               RangeStats* stats, SegmentCursor* reuse) {
  LLIO_REQUIRE(skip >= 0 && n >= 0, Errc::InvalidArgument,
               "pack_range: negative skip or size");
  LLIO_REQUIRE(t != nullptr, Errc::InvalidDatatype, "pack_range: null type");
  const Off total = count * t->size();
  n = std::min(n, std::max<Off>(0, total - skip));
  if (n <= 0) return 0;

  if (!will_parallelize(cfg, n)) {
    if (plan != nullptr) {
      if (stats != nullptr) stats->used_plan = true;
      return slice_move<ToPack>(t, count, typed, bias, plan, skip, pk, n);
    }
    if (reuse != nullptr) {
      if (stats != nullptr) stats->used_cursor = true;
      if (reuse->stream_pos() != skip)
        reuse->seek(std::min(skip, reuse->total_bytes()));
      if constexpr (ToPack)
        return transfer_pack(*reuse, typed, bias, pk, n);
      else
        return transfer_unpack(*reuse, typed, bias, pk, n);
    }
    return slice_move<ToPack>(t, count, typed, bias, nullptr, skip, pk, n);
  }

  const int nt = static_cast<int>(
      std::min<Off>(cfg.threads, std::max<Off>(2, n / kMinSliceBytes)));
  WorkerPool& pool = WorkerPool::shared();
  WorkerPool::Reservation res = pool.reserve(nt - 1);
  const int owner = obs::current_pid();
  const bool traced = obs::trace_enabled(obs::TraceLevel::Full);

  std::vector<double> secs(to_size(Off{nt}), 0.0);
  auto run_slice = [&](int i) {
    const Off lo = skip + n * i / nt;
    const Off hi = skip + n * (i + 1) / nt;
    obs::Span span("pack_slice", obs::TraceLevel::Full);
    span.arg("slice", i);
    span.arg("bytes", hi - lo);
    StopWatch w;
    w.start();
    const Off moved = slice_move<ToPack>(t, count, typed, bias, plan, lo,
                                         pk + (lo - skip), hi - lo);
    w.stop();
    secs[to_size(Off{i})] = w.seconds();
    LLIO_ASSERT(moved == hi - lo, "pack_range: short slice");
  };

  std::vector<std::future<void>> futs;
  futs.reserve(to_size(Off{nt - 1}));
  for (int i = 1; i < nt; ++i)
    futs.push_back(pool.submit([&run_slice, owner, traced, i] {
      // Per-job track guard: events land on the owning rank's worker
      // tracks (tid >= 1) and the guard's destructor flushes the thread
      // buffer so persistent pool threads never hold events back.
      std::optional<obs::ThreadTrackGuard> track;
      if (traced && owner >= 0)
        track.emplace(owner, i, "", "io worker " + std::to_string(i));
      run_slice(i);
    }));
  run_slice(0);

  std::exception_ptr err;
  for (std::future<void>& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!err) err = std::current_exception();
    }
  }
  if (err) std::rethrow_exception(err);

  if (stats != nullptr) {
    stats->threads_used = std::max(stats->threads_used, nt);
    stats->slices += static_cast<std::uint64_t>(nt);
    for (double s : secs) {
      stats->slice_max_s = std::max(stats->slice_max_s, s);
      stats->slice_total_s += s;
    }
    stats->used_plan = plan != nullptr;
  }
  return n;
}

}  // namespace

bool will_parallelize(const PackConfig& cfg, Off n) noexcept {
  return cfg.threads > 1 && n >= cfg.parallel_min && n >= 2 * kMinSliceBytes;
}

Off pack_range(const Type& t, Off count, const Byte* typed_base, Off mem_bias,
               Off skip, Byte* dst, Off n, const PackConfig& cfg,
               const PackPlan* plan, RangeStats* stats, SegmentCursor* reuse) {
  return range_impl<true>(t, count, const_cast<Byte*>(typed_base), mem_bias,
                          skip, dst, n, cfg, plan, stats, reuse);
}

Off unpack_range(const Type& t, Off count, Byte* typed_base, Off mem_bias,
                 Off skip, const Byte* src, Off n, const PackConfig& cfg,
                 const PackPlan* plan, RangeStats* stats,
                 SegmentCursor* reuse) {
  return range_impl<false>(t, count, typed_base, mem_bias, skip,
                           const_cast<Byte*>(src), n, cfg, plan, stats, reuse);
}

}  // namespace llio::fotf
