// Navigation-sliced parallel pack/unpack.
//
// Because seek() positions a SegmentCursor at any packed-stream offset in
// O(depth) — the navigation property of §3.2.1 — a pack job over stream
// bytes [skip, skip + n) can be split into independent equal slices
// [skip + i*n/T, skip + (i+1)*n/T): each slice seeks its own cursor (or
// replays the shared PackPlan) and moves its bytes with no coordination.
// Slices run on the process-wide WorkerPool (shared with the collective
// pipeline's I/O workers); the submitting thread always executes slice 0
// inline, so contention degrades to serial execution, never deadlock.
//
// Determinism: pack (gather) slices write disjoint ranges of the dense
// buffer and only read typed memory, so parallel pack is race-free for
// any datatype.  Parallel *unpack* additionally requires the typemap to
// be non-overlapping (two stream bytes must not map to one memory byte)
// — true for fileviews, which MPI requires to be monotone, and for any
// buffer it is legal to receive into.
//
// With threads == 1 (or jobs below parallel_min) the serial path is
// byte-identical and allocation-free relative to transfer_pack on the
// caller's cursor.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "dtype/datatype.hpp"
#include "fotf/cursor.hpp"
#include "fotf/plan.hpp"

namespace llio::fotf {

struct PackConfig {
  int threads = 1;                  ///< max slices per job (1 = serial)
  Off parallel_min = Off{1} << 20;  ///< never slice jobs smaller than this
  bool use_plan = true;  ///< compile + replay PackPlans for cached views
};

/// What one ranged call did, for IoOpStats folding.
struct RangeStats {
  int threads_used = 1;         ///< slices this job ran with
  std::uint64_t slices = 0;     ///< parallel slices executed (0 = serial)
  double slice_max_s = 0;       ///< slowest slice
  double slice_total_s = 0;     ///< summed slice time
  bool used_cursor = false;     ///< serial path advanced `reuse`
  bool used_plan = false;       ///< plan replay (serial path)
};

/// True when `cfg` would split a job of `n` stream bytes into slices.
bool will_parallelize(const PackConfig& cfg, Off n) noexcept;

/// Pack bytes [skip, skip + n) of the packed stream of `count` instances
/// of `t` into `dst` (same contract as ff_pack_window).  `plan`, when
/// non-null, must be compiled from `t`; `reuse`, when non-null, must be a
/// cursor over >= `count` instances of `t` and is only consulted (and
/// advanced) on the serial no-plan path.  Returns bytes moved.
Off pack_range(const Type& t, Off count, const Byte* typed_base, Off mem_bias,
               Off skip, Byte* dst, Off n, const PackConfig& cfg = {},
               const PackPlan* plan = nullptr, RangeStats* stats = nullptr,
               SegmentCursor* reuse = nullptr);

/// Unpack `src` into bytes [skip, skip + n) of the packed stream.
Off unpack_range(const Type& t, Off count, Byte* typed_base, Off mem_bias,
                 Off skip, const Byte* src, Off n, const PackConfig& cfg = {},
                 const PackPlan* plan = nullptr, RangeStats* stats = nullptr,
                 SegmentCursor* reuse = nullptr);

}  // namespace llio::fotf
