#include "fotf/plan.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "fotf/cursor.hpp"
#include "fotf/pack.hpp"

namespace llio::fotf {

std::shared_ptr<const PackPlan> PackPlan::compile(const Type& t,
                                                  std::size_t max_runs) {
  if (t == nullptr || t->size() <= 0) return nullptr;
  auto plan = std::make_shared<PackPlan>();
  plan->size_ = t->size();
  plan->extent_ = t->extent();

  // One instance walk; memory-adjacent runs merge (the packed stream is
  // contiguous by construction, so stream adjacency is implied).
  SegmentCursor cur(t, 1);
  Off stream = 0;
  while (!cur.at_end()) {
    const Off mem = cur.run_mem();
    const Off len = cur.run_len();
    if (!plan->mem_.empty() && plan->mem_.back() + plan->len_.back() == mem) {
      plan->len_.back() += len;
    } else {
      if (plan->mem_.size() >= max_runs) return nullptr;
      plan->mem_.push_back(mem);
      plan->len_.push_back(len);
      plan->prefix_.push_back(stream);
    }
    stream += len;
    cur.consume(len);
  }
  plan->prefix_.push_back(stream);
  LLIO_ASSERT(stream == plan->size_, "PackPlan: size mismatch");

  const std::size_t nr = plan->len_.size();
  if (nr >= 1) {
    bool uni = true;
    for (std::size_t r = 1; r < nr && uni; ++r)
      uni = plan->len_[r] == plan->len_[0];
    const Off d =
        nr >= 2 ? plan->mem_[1] - plan->mem_[0] : plan->extent_;
    for (std::size_t r = 2; r < nr && uni; ++r)
      uni = plan->mem_[r] - plan->mem_[r - 1] == d;
    if (nr >= 2)  // wrap: last run of instance i to first run of i+1
      uni = uni && plan->mem_[0] + plan->extent_ - plan->mem_.back() == d;
    if (uni) {
      plan->uniform_ = true;
      plan->useg_ = plan->len_[0];
      plan->ustride_ = d;
    }
  }
  return plan;
}

template <bool ToPack>
Off PackPlan::transfer(Byte* typed, Off bias, Off count, Off skip, Byte* pk,
                       Off n) const {
  LLIO_REQUIRE(skip >= 0 && n >= 0, Errc::InvalidArgument,
               "PackPlan: negative skip or size");
  if (size_ <= 0 || count <= 0) return 0;
  const Off total = count * size_;
  if (skip >= total) return 0;
  n = std::min(n, total - skip);

  const Off nruns = static_cast<Off>(len_.size());
  Off inst = skip / size_;
  const Off rem = skip - inst * size_;
  Off r = std::upper_bound(prefix_.begin(), prefix_.end(), rem) -
          prefix_.begin() - 1;
  Off inrun = rem - prefix_[to_size(r)];

  Off done = 0;
  while (done < n) {
    if (uniform_ && inrun == 0 && n - done >= 2 * useg_) {
      // At a segment boundary of a uniform plan: one strided kernel call
      // moves every remaining full segment (instance wraps included).
      const Off g = inst * nruns + r;  // global segment index
      const Off k = std::min((n - done) / useg_, count * nruns - g);
      Byte* t = typed + (inst * extent_ + mem_[to_size(r)] - bias);
      if constexpr (ToPack)
        strided_gather(pk + done, t, useg_, ustride_, k);
      else
        strided_scatter(t, ustride_, pk + done, useg_, k);
      done += k * useg_;
      const Off g2 = g + k;
      inst = g2 / nruns;
      r = g2 - inst * nruns;
      continue;
    }
    const Off take = std::min(len_[to_size(r)] - inrun, n - done);
    Byte* t = typed + (inst * extent_ + mem_[to_size(r)] + inrun - bias);
    if constexpr (ToPack)
      dense_copy(pk + done, t, take);
    else
      dense_copy(t, pk + done, take);
    done += take;
    inrun += take;
    if (inrun == len_[to_size(r)]) {
      inrun = 0;
      if (++r == nruns) {
        r = 0;
        ++inst;
      }
    }
  }
  return done;
}

bool PackPlan::materialize(Off mem_bias, Off count, Off skip, Off n,
                           std::size_t max_runs, IoVecSpan& out) const {
  LLIO_REQUIRE(skip >= 0 && n >= 0, Errc::InvalidArgument,
               "PackPlan: negative skip or size");
  out.clear();
  if (size_ <= 0 || count <= 0) return true;
  const Off total = count * size_;
  if (skip >= total) return true;
  n = std::min(n, total - skip);

  const Off nruns = static_cast<Off>(len_.size());
  Off inst = skip / size_;
  const Off rem = skip - inst * size_;
  Off r = std::upper_bound(prefix_.begin(), prefix_.end(), rem) -
          prefix_.begin() - 1;
  Off inrun = rem - prefix_[to_size(r)];

  Off done = 0;
  while (done < n) {
    const Off take = std::min(len_[to_size(r)] - inrun, n - done);
    const Off mem = inst * extent_ + mem_[to_size(r)] + inrun - mem_bias;
    if (!out.runs.empty() &&
        out.runs.back().mem + out.runs.back().len == mem) {
      out.runs.back().len += take;  // coalesce, incl. across instance wrap
    } else {
      if (out.runs.size() >= max_runs) {
        out.clear();
        return false;
      }
      out.runs.push_back({mem, take});
    }
    done += take;
    inrun += take;
    if (inrun == len_[to_size(r)]) {
      inrun = 0;
      if (++r == nruns) {
        r = 0;
        ++inst;
      }
    }
  }
  out.total = done;
  return true;
}

Off PackPlan::pack(const Byte* typed_base, Off mem_bias, Off count, Off skip,
                   Byte* dst, Off n) const {
  return transfer<true>(const_cast<Byte*>(typed_base), mem_bias, count, skip,
                        dst, n);
}

Off PackPlan::unpack(Byte* typed_base, Off mem_bias, Off count, Off skip,
                     const Byte* src, Off n) const {
  return transfer<false>(typed_base, mem_bias, count, skip,
                         const_cast<Byte*>(src), n);
}

}  // namespace llio::fotf
