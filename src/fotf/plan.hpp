// Compiled vector-run pack plan (the "flattened cursor").
//
// A SegmentCursor re-derives the contiguous segments of a datatype on
// every pack: each window walks the type tree again, even though the
// segment structure of one instance never changes.  A PackPlan compiles
// that structure exactly once — one cursor walk over a single instance —
// into three flat arrays (memory offset, length, stream-prefix) plus the
// instance period, so steady-state collective windows replay a table
// lookup instead of a tree walk.
//
// The plan is still O(segments-per-instance) memory, *not* O(N_block)
// like an ol-list: repetition counts never enter the table (instance i is
// addressed as i * extent).  Types whose single instance exceeds
// `max_runs` maximal contiguous segments fall back to the cursor
// (compile returns nullptr) so plan memory stays bounded.
//
// When every run has the same length and the spacing is constant —
// including the wrap from the last run of one instance to the first run
// of the next — the plan marks itself `uniform` and replays through one
// strided_gather/strided_scatter call covering arbitrarily many
// segments, the same kernel the cursor's vec_run fast path uses but with
// zero per-window re-derivation.
//
// Plans are immutable after compile and safe to share across threads;
// the parallel slicer hands the same plan to every slice.
#pragma once

#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "dtype/datatype.hpp"

namespace llio::fotf {

using dt::Type;

/// One contiguous user-memory run of a materialized stream range,
/// expressed as a byte offset from the (bias-adjusted) typed base.
struct MemRun {
  Off mem = 0;
  Off len = 0;
};

/// Run-table-derived iovec form of a packed-stream range: the zero-copy
/// descriptor the I/O layers hand to preadv/pwritev instead of staging
/// the range through a packed buffer.  Runs appear in stream order and
/// adjacent runs are coalesced, so `runs.size()` is the minimum segment
/// count for the range.
struct IoVecSpan {
  std::vector<MemRun> runs;
  Off total = 0;  ///< sum of run lengths

  void clear() {
    runs.clear();
    total = 0;
  }
};

class PackPlan {
 public:
  /// Per-instance run-table cap; above this the plan would approach
  /// ol-list memory cost and compile() declines (returns nullptr).
  static constexpr std::size_t kDefaultMaxRuns = 4096;

  /// Compile the segment table of one instance of `t`.  Returns nullptr
  /// for null/zero-size types and for types with more than `max_runs`
  /// contiguous segments per instance.
  static std::shared_ptr<const PackPlan> compile(
      const Type& t, std::size_t max_runs = kDefaultMaxRuns);

  Off instance_size() const noexcept { return size_; }
  Off instance_extent() const noexcept { return extent_; }
  Off run_count() const noexcept { return static_cast<Off>(len_.size()); }
  bool uniform() const noexcept { return uniform_; }

  /// Move bytes [skip, skip + n) of the packed stream of `count`
  /// instances between the typed buffer and the dense buffer; same
  /// contract (including the mem_bias window adjustment) and same byte
  /// output as ff_pack_window / ff_unpack_window.  Returns bytes moved.
  Off pack(const Byte* typed_base, Off mem_bias, Off count, Off skip,
           Byte* dst, Off n) const;
  Off unpack(Byte* typed_base, Off mem_bias, Off count, Off skip,
             const Byte* src, Off n) const;

  /// Describe stream bytes [skip, skip + n) of `count` instances as
  /// memory runs (same addressing as pack/unpack, instance wraps
  /// included, adjacent runs coalesced — also across the wrap).  Returns
  /// false, with `out` cleared, when the range needs more than
  /// `max_runs` runs: the caller falls back to the staged pack path.
  bool materialize(Off mem_bias, Off count, Off skip, Off n,
                   std::size_t max_runs, IoVecSpan& out) const;

 private:
  template <bool ToPack>
  Off transfer(Byte* typed_base, Off mem_bias, Off count, Off skip,
               Byte* pack, Off n) const;

  std::vector<Off> mem_;     ///< memory offset of run r within the instance
  std::vector<Off> len_;     ///< bytes in run r (always > 0)
  std::vector<Off> prefix_;  ///< stream offset of run r; back() == size_
  Off size_ = 0;             ///< stream period (datatype size)
  Off extent_ = 0;           ///< memory period (datatype extent)
  bool uniform_ = false;     ///< equal runs at constant spacing, wrap incl.
  Off useg_ = 0;             ///< uniform: bytes per segment
  Off ustride_ = 0;          ///< uniform: distance between segment starts
};

}  // namespace llio::fotf
