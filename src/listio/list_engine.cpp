#include "listio/list_engine.hpp"

#include <algorithm>
#include <cstring>
#include <deque>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "listio/list_mover.hpp"
#include "mpiio/mergeview.hpp"
#include "mpiio/pipeline.hpp"
#include "mpiio/sieve.hpp"
#include "mpiio/twophase.hpp"
#include "obs/trace.hpp"

namespace llio::listio {

using mpiio::AccessRange;
using mpiio::Domain;
using mpiio::MergeContig;
using mpiio::SieveContext;
using mpiio::View;

namespace {

void put_off(ByteVec& out, Off v) {
  Byte raw[sizeof(Off)];
  std::memcpy(raw, &v, sizeof(Off));
  out.insert(out.end(), raw, raw + sizeof(Off));
}

Off get_off(ConstByteSpan data, std::size_t at) {
  LLIO_REQUIRE(at + sizeof(Off) <= data.size(), Errc::Protocol,
               "short message");
  Off v;
  std::memcpy(&v, data.data() + at, sizeof(Off));
  return v;
}

/// Received collective request: absolute tuples + data cursor state.
struct RecvList {
  Off s_lo = 0, s_hi = 0;
  std::vector<dt::OlTuple> tuples;
  const Byte* data = nullptr;  ///< packed stream (write path)
  Byte* reply = nullptr;       ///< reply buffer (read path)
  std::size_t idx = 0;         ///< current tuple
  Off within = 0;              ///< bytes consumed of the current tuple
  Off data_off = 0;            ///< bytes consumed of the data stream
};

/// Parse the Meta message [s_lo][s_hi][n][tuples...].
bool parse_meta(const ByteVec& msg, RecvList& out) {
  if (msg.empty()) return false;
  out.s_lo = get_off(msg, 0);
  out.s_hi = get_off(msg, sizeof(Off));
  const Off n = get_off(msg, 2 * sizeof(Off));
  LLIO_REQUIRE(n >= 0 &&
                   msg.size() == (3 + 2 * to_size(n)) * sizeof(Off),
               Errc::Protocol, "collective list message malformed");
  out.tuples.resize(to_size(n));
  std::memcpy(out.tuples.data(), msg.data() + 3 * sizeof(Off),
              to_size(n) * sizeof(dt::OlTuple));
  return n > 0;
}

/// One copy unit inside a window.
struct WinSpan {
  Off off;       ///< absolute file offset
  Off len;
  RecvList* src;
  Off data_off;  ///< offset into src->data / src->reply
};

/// Advance `r` through window [pos, win_hi), emitting clipped spans.
void collect_window_spans(RecvList& r, Off pos, Off win_hi,
                          std::vector<WinSpan>& out) {
  while (r.idx < r.tuples.size()) {
    const dt::OlTuple& t = r.tuples[r.idx];
    const Off off = t.off + r.within;
    const Off len = t.len - r.within;
    if (off >= win_hi) break;
    LLIO_ASSERT(off >= pos, "collective tuple behind current window");
    const Off cut = std::min(len, win_hi - off);
    out.push_back({off, cut, &r, r.data_off});
    r.data_off += cut;
    r.within += cut;
    if (r.within == t.len) {
      ++r.idx;
      r.within = 0;
    }
    if (off + cut == win_hi) break;
  }
}

}  // namespace

void ListEngine::set_view(const View& v) {
  validate_view(v);
  view_ = v;
  ++view_epoch_;  // invalidates cached mergeview verdicts
  stats_ = mpiio::IoOpStats{};
  // Explicit flattening (§2.1): build and store the filetype ol-list.
  WallTimer t;
  ft_list_ = dt::flatten(v.filetype);
  view_flatten_s_ = t.seconds();
  stats_.list_build_s += view_flatten_s_;
  stats_.list_mem_bytes = ft_list_.memory_bytes();
  nav_ = std::make_unique<OlViewNav>(&ft_list_, v.ft_extent(), &stats_);
  // No fileview caching: nothing is exchanged here (ROMIO behaviour);
  // keep ranks loosely synchronized like the collective MPI call would.
  comm_->barrier();
}

std::unique_ptr<mpiio::StreamMover> ListEngine::make_nc_mover(
    const void* buf, Off count, const dt::Type& mt) {
  return std::make_unique<ListMover>(buf, count, mt, &stats_);
}

Off ListEngine::do_write_at(Off stream_lo, const void* buf, Off count,
                            const dt::Type& mt) {
  const Off nbytes = count * mt->size();
  if (nbytes == 0) return 0;
  auto mover = make_mover(buf, count, mt);
  return indep_write(*nav_, stream_lo, nbytes, *mover);
}

Off ListEngine::do_read_at(Off stream_lo, void* buf, Off count,
                           const dt::Type& mt) {
  const Off nbytes = count * mt->size();
  if (nbytes == 0) return 0;
  auto mover = make_mover(buf, count, mt);
  return indep_read(*nav_, stream_lo, nbytes, *mover);
}

std::vector<ListEngine::ClippedList> ListEngine::clip_lists(
    Off stream_lo, Off nbytes, const std::vector<Domain>& doms) {
  // The N_coll expansion (§2.3): walk my access tuple by tuple across
  // filetype instances and clip every block against the IOP domains.
  // Cost and memory are O(S_access / S_extent * N_block) in total.
  obs::Span span("list_build");
  WallTimer t;
  std::vector<ClippedList> out(doms.size());
  for (auto& cl : out) cl.s_lo = cl.s_hi = -1;
  if (nbytes > 0 && view_.dense()) {
    // Contiguous fileview: the access is one file range; one tuple per
    // domain (ROMIO treats contiguous filetypes with plain offsets).
    OlWalker w(&ft_list_, view_.ft_extent());
    w.position(stream_lo);
    const Off a0 = view_.disp + w.mem();
    for (std::size_t di = 0; di < doms.size(); ++di) {
      const Off lo = std::max(doms[di].lo, a0);
      const Off hi = std::min(doms[di].hi, a0 + nbytes);
      if (hi <= lo) continue;
      out[di].tuples.push_back({lo, hi - lo});
      out[di].s_lo = stream_lo + (lo - a0);
      out[di].s_hi = stream_lo + (hi - a0);
    }
  } else if (nbytes > 0) {
    OlWalker w(&ft_list_, view_.ft_extent());
    w.position(stream_lo);
    Off s = stream_lo;
    const Off s_end = stream_lo + nbytes;
    std::size_t di = 0;
    while (s < s_end) {
      Off seg_mem = view_.disp + w.run_mem();
      Off seg_len = std::min(w.run_len(), s_end - s);
      w.consume(seg_len);
      while (seg_len > 0) {
        while (di < doms.size() &&
               (doms[di].empty() || doms[di].hi <= seg_mem))
          ++di;
        LLIO_ASSERT(di < doms.size() && seg_mem >= doms[di].lo,
                    "clip_lists: segment outside all domains");
        const Off cut = std::min(seg_len, doms[di].hi - seg_mem);
        ClippedList& cl = out[di];
        if (!cl.tuples.empty() &&
            cl.tuples.back().off + cl.tuples.back().len == seg_mem) {
          cl.tuples.back().len += cut;
        } else {
          cl.tuples.push_back({seg_mem, cut});
        }
        if (cl.s_lo < 0) cl.s_lo = s;
        cl.s_hi = s + cut;
        seg_mem += cut;
        seg_len -= cut;
        s += cut;
      }
    }
  }
  Off list_mem = 0;
  for (const auto& cl : out)
    list_mem += to_off(cl.tuples.size() * sizeof(dt::OlTuple));
  stats_.list_build_s += t.seconds();
  stats_.list_mem_bytes = std::max(stats_.list_mem_bytes, list_mem);
  return out;
}

Off ListEngine::do_write_at_all(Off stream_lo, const void* buf, Off count,
                                const dt::Type& mt) {
  if (!opts_.cb_write) {  // collective buffering disabled (hint)
    const Off n = do_write_at(stream_lo, buf, count, mt);
    comm_->barrier();
    return n;
  }
  const Off nbytes = count * mt->size();
  const int p = comm_->size();
  const int rank = comm_->rank();
  const int niops = mpiio::effective_iops(opts_.io_procs, p);
  const Off fbs = opts_.file_buffer_size;

  AccessRange mine{stream_lo, nbytes, 0, 0};
  if (nbytes > 0) {
    mine.abs_lo = view_.disp + nav_->stream_to_file_start(stream_lo);
    mine.abs_hi = view_.disp + nav_->stream_to_file_end(stream_lo + nbytes);
  }
  StopWatch xw;
  std::vector<AccessRange> ranges;
  {
    obs::Span span("exchange");
    span.arg("what", "ranges");
    xw.start();
    ranges = mpiio::exchange_ranges(*comm_, mine);
    xw.stop();
  }
  stats_.exchange_s += xw.seconds();

  const auto g = mpiio::global_range(ranges);
  if (!g.any) {
    comm_->barrier();
    return 0;
  }

  // Mergeview bypass: every participant's restriction to its access range
  // is one contiguous extent and the extents are pairwise disjoint — each
  // rank writes its own extent directly, no lists, no exchange, no RMW.
  if (opts_.merge_contig != MergeContig::Off &&
      mpiio::ranges_dense_disjoint(ranges)) {
    if (nbytes > 0) {
      SieveContext ctx{*file_, *locks_, opts_, stats_};
      auto m = make_mover(buf, count, mt);
      pfs::ScopedRangeLock lock(*locks_, mine.abs_lo, mine.abs_hi);
      mpiio::dense_write(ctx, mine.abs_lo, nbytes, *m);
    }
    comm_->barrier();
    ++stats_.merge_contig_ops;
    return nbytes;  // dense_write already counted bytes_moved
  }

  const auto domains = mpiio::partition_domains(g, niops, fbs);

  // AP phase 1: build and ship per-IOP ol-lists (Meta) ...
  auto clipped = clip_lists(stream_lo, nbytes, domains);
  std::vector<ByteVec> meta(to_size(Off{p}));
  for (int i = 0; i < niops; ++i) {
    const ClippedList& cl = clipped[to_size(Off{i})];
    if (cl.tuples.empty()) continue;
    ByteVec& msg = meta[to_size(Off{i})];
    put_off(msg, cl.s_lo);
    put_off(msg, cl.s_hi);
    put_off(msg, to_off(cl.tuples.size()));
    const std::size_t at = msg.size();
    msg.resize(at + cl.tuples.size() * sizeof(dt::OlTuple));
    std::memcpy(msg.data() + at, cl.tuples.data(),
                cl.tuples.size() * sizeof(dt::OlTuple));
    stats_.list_bytes_sent += to_off(cl.tuples.size() * sizeof(dt::OlTuple));
  }
  xw.reset();
  std::vector<ByteVec> meta_in;
  {
    obs::Span span("exchange");
    span.arg("what", "lists");
    xw.start();
    meta_in = comm_->alltoall(std::move(meta), sim::MsgClass::Meta);
    xw.stop();
  }
  stats_.exchange_s += xw.seconds();

  // ... and the corresponding data slices (Data), packed via the
  // per-access memtype ol-list.
  std::unique_ptr<mpiio::StreamMover> mover;
  if (nbytes > 0) mover = make_mover(buf, count, mt);
  std::vector<ByteVec> data_out(to_size(Off{p}));
  {
    obs::Span span("pack");
    span.arg("what", "phase1_pack");
    for (int i = 0; i < niops; ++i) {
      const ClippedList& cl = clipped[to_size(Off{i})];
      if (cl.tuples.empty()) continue;
      ByteVec& msg = data_out[to_size(Off{i})];
      msg.resize(to_size(cl.s_hi - cl.s_lo));
      StopWatch cw;
      cw.start();
      mover->to_stream(msg.data(), cl.s_lo - stream_lo, cl.s_hi - cl.s_lo);
      cw.stop();
      stats_.copy_s += cw.seconds();
      stats_.data_bytes_sent += cl.s_hi - cl.s_lo;
    }
  }
  xw.reset();
  std::vector<ByteVec> data_in;
  {
    obs::Span span("exchange");
    span.arg("what", "data");
    xw.start();
    data_in = comm_->alltoall(std::move(data_out), sim::MsgClass::Data);
    xw.stop();
  }
  stats_.exchange_s += xw.seconds();

  // IOP phase 2: merge lists per block, patch and write back.
  if (rank < niops && !domains[to_size(Off{rank})].empty()) {
    const Domain dom = domains[to_size(Off{rank})];
    SieveContext ctx{*file_, *locks_, opts_, stats_};
    std::vector<RecvList> recvs;
    for (int r = 0; r < p; ++r) {
      RecvList rl;
      if (!parse_meta(meta_in[to_size(Off{r})], rl)) continue;
      const ByteVec& d = data_in[to_size(Off{r})];
      LLIO_REQUIRE(d.size() == to_size(rl.s_hi - rl.s_lo), Errc::Protocol,
                   "write_at_all: data/list size mismatch");
      recvs.push_back(std::move(rl));
      recvs.back().data = data_in[to_size(Off{r})].data();
    }

    // Mergeview analysis (§3.2.4): per-window hole-freeness as a union of
    // the received (sorted, domain-clipped) ol-lists, memoized across
    // repeated collectives on the same view.
    const MergeContig mode = opts_.merge_contig;
    const mpiio::DomainWindows* verdict = nullptr;
    if (mode == MergeContig::Auto) {
      obs::Span span("merge_analysis");
      StopWatch mw;
      mw.start();
      verdict = &merge_cache_.get(
          mpiio::MergeCache::Key{view_epoch_, dom.lo, dom.hi, fbs, ranges},
          [&] {
            std::vector<std::span<const dt::OlTuple>> lists;
            lists.reserve(recvs.size());
            for (const RecvList& rl : recvs)
              lists.push_back({rl.tuples.data(), rl.tuples.size()});
            return mpiio::analyze_tuple_domain(dom.lo, dom.hi, fbs, lists);
          });
      mw.stop();
      stats_.merge_analysis_s += mw.seconds();
    }

    // collect_window_spans advances the recv-list cursors, so spans are
    // produced by `next` (strictly in window order) and handed to `fill`
    // through a queue.
    std::deque<std::vector<WinSpan>> queued;
    Off pos = dom.lo;
    auto next = [&](mpiio::WindowPlan& plan) {
      while (pos < dom.hi) {
        const Off win_lo = pos;
        const Off win_hi = std::min(dom.hi, pos + fbs);
        pos = win_hi;
        std::vector<WinSpan> spans;
        for (RecvList& rl : recvs)
          collect_window_spans(rl, win_lo, win_hi, spans);
        if (spans.empty()) continue;
        plan.lo = win_lo;
        plan.hi = win_hi;
        plan.preread = mode == MergeContig::Off    ? true
                       : mode == MergeContig::Force ? false
                                                    : !verdict->dense_at(win_lo);
        plan.writeback = true;
        plan.lock = true;
        queued.push_back(std::move(spans));
        return true;
      }
      return false;
    };
    auto fill = [&](const mpiio::WindowPlan& plan, ByteSpan fbuf) {
      std::vector<WinSpan> spans = std::move(queued.front());
      queued.pop_front();
      obs::Span span("pack");
      span.arg("win", plan.index);
      span.arg("spans", to_off(spans.size()));
      StopWatch cw;
      cw.start();
      for (const WinSpan& sp : spans) {
        std::memcpy(fbuf.data() + (sp.off - plan.lo),
                    sp.src->data + sp.data_off, to_size(sp.len));
      }
      cw.stop();
      stats_.copy_s += cw.seconds();
    };
    mpiio::run_window_pipeline(ctx, opts_.pipeline_depth,
                               std::min(fbs, dom.hi - dom.lo), next, fill);
  }
  comm_->barrier();
  stats_.bytes_moved += nbytes;
  return nbytes;
}

Off ListEngine::do_read_at_all(Off stream_lo, void* buf, Off count,
                               const dt::Type& mt) {
  if (!opts_.cb_read) {
    const Off n = do_read_at(stream_lo, buf, count, mt);
    comm_->barrier();
    return n;
  }
  const Off nbytes = count * mt->size();
  const int p = comm_->size();
  const int rank = comm_->rank();
  const int niops = mpiio::effective_iops(opts_.io_procs, p);
  const Off fbs = opts_.file_buffer_size;

  AccessRange mine{stream_lo, nbytes, 0, 0};
  if (nbytes > 0) {
    mine.abs_lo = view_.disp + nav_->stream_to_file_start(stream_lo);
    mine.abs_hi = view_.disp + nav_->stream_to_file_end(stream_lo + nbytes);
  }
  StopWatch xw;
  std::vector<AccessRange> ranges;
  {
    obs::Span span("exchange");
    span.arg("what", "ranges");
    xw.start();
    ranges = mpiio::exchange_ranges(*comm_, mine);
    xw.stop();
  }
  stats_.exchange_s += xw.seconds();

  const auto g = mpiio::global_range(ranges);
  if (!g.any) {
    comm_->barrier();
    return 0;
  }

  // Mergeview bypass, read flavour: every participant's restriction is one
  // contiguous extent — overlap is fine for reads, so the disjointness
  // requirement of the write bypass is dropped.  Each rank reads its own
  // extent directly (zero-copy into user memory when the memtype yields an
  // in-budget run list), skipping lists and the exchange entirely.
  if (opts_.merge_contig != MergeContig::Off && mpiio::ranges_dense(ranges)) {
    if (nbytes > 0) {
      SieveContext ctx{*file_, *locks_, opts_, stats_};
      auto m = make_mover(buf, count, mt);
      mpiio::dense_read(ctx, mine.abs_lo, nbytes, *m);
    }
    comm_->barrier();
    ++stats_.merge_contig_ops;
    return nbytes;  // dense_read already counted bytes_moved
  }

  const auto domains = mpiio::partition_domains(g, niops, fbs);

  // AP phase 1: ship per-IOP request ol-lists (Meta only).
  auto clipped = clip_lists(stream_lo, nbytes, domains);
  std::vector<ByteVec> meta(to_size(Off{p}));
  for (int i = 0; i < niops; ++i) {
    const ClippedList& cl = clipped[to_size(Off{i})];
    if (cl.tuples.empty()) continue;
    ByteVec& msg = meta[to_size(Off{i})];
    put_off(msg, cl.s_lo);
    put_off(msg, cl.s_hi);
    put_off(msg, to_off(cl.tuples.size()));
    const std::size_t at = msg.size();
    msg.resize(at + cl.tuples.size() * sizeof(dt::OlTuple));
    std::memcpy(msg.data() + at, cl.tuples.data(),
                cl.tuples.size() * sizeof(dt::OlTuple));
    stats_.list_bytes_sent += to_off(cl.tuples.size() * sizeof(dt::OlTuple));
  }
  xw.reset();
  std::vector<ByteVec> meta_in;
  {
    obs::Span span("exchange");
    span.arg("what", "lists");
    xw.start();
    meta_in = comm_->alltoall(std::move(meta), sim::MsgClass::Meta);
    xw.stop();
  }
  stats_.exchange_s += xw.seconds();

  // IOP phase 2: read blocks, gather each AP's tuples into its reply.
  std::vector<ByteVec> replies(to_size(Off{p}));
  if (rank < niops && !domains[to_size(Off{rank})].empty()) {
    const Domain dom = domains[to_size(Off{rank})];
    SieveContext ctx{*file_, *locks_, opts_, stats_};
    std::vector<RecvList> recvs;
    for (int r = 0; r < p; ++r) {
      RecvList rl;
      if (!parse_meta(meta_in[to_size(Off{r})], rl)) continue;
      ByteVec& reply = replies[to_size(Off{r})];
      reply.resize(to_size(rl.s_hi - rl.s_lo));
      rl.reply = reply.data();
      recvs.push_back(std::move(rl));
      stats_.data_bytes_sent += recvs.back().s_hi - recvs.back().s_lo;
    }
    std::deque<std::vector<WinSpan>> queued;
    Off pos = dom.lo;
    auto next = [&](mpiio::WindowPlan& plan) {
      while (pos < dom.hi) {
        const Off win_lo = pos;
        const Off win_hi = std::min(dom.hi, pos + fbs);
        pos = win_hi;
        std::vector<WinSpan> spans;
        for (RecvList& rl : recvs)
          collect_window_spans(rl, win_lo, win_hi, spans);
        if (spans.empty()) continue;
        plan.lo = win_lo;
        plan.hi = win_hi;
        plan.preread = true;
        plan.writeback = false;
        plan.lock = false;
        queued.push_back(std::move(spans));
        return true;
      }
      return false;
    };
    auto fill = [&](const mpiio::WindowPlan& plan, ByteSpan fbuf) {
      std::vector<WinSpan> spans = std::move(queued.front());
      queued.pop_front();
      obs::Span span("pack");
      span.arg("win", plan.index);
      span.arg("spans", to_off(spans.size()));
      StopWatch cw;
      cw.start();
      for (const WinSpan& sp : spans) {
        std::memcpy(sp.src->reply + sp.data_off,
                    fbuf.data() + (sp.off - plan.lo), to_size(sp.len));
      }
      cw.stop();
      stats_.copy_s += cw.seconds();
    };
    mpiio::run_window_pipeline(ctx, opts_.pipeline_depth,
                               std::min(fbs, dom.hi - dom.lo), next, fill);
  }
  xw.reset();
  std::vector<ByteVec> data_in;
  {
    obs::Span span("exchange");
    span.arg("what", "data");
    xw.start();
    data_in = comm_->alltoall(std::move(replies), sim::MsgClass::Data);
    xw.stop();
  }
  stats_.exchange_s += xw.seconds();

  // AP phase 3: unpack replies through the memtype ol-list.
  if (nbytes > 0) {
    auto mover = make_mover(buf, count, mt);
    obs::Span span("pack");
    span.arg("what", "phase3_unpack");
    StopWatch cw;
    cw.start();
    for (int i = 0; i < niops; ++i) {
      const ClippedList& cl = clipped[to_size(Off{i})];
      if (cl.tuples.empty()) continue;
      const ByteVec& reply = data_in[to_size(Off{i})];
      LLIO_REQUIRE(reply.size() == to_size(cl.s_hi - cl.s_lo), Errc::Protocol,
                   "read_at_all: bad reply size");
      mover->from_stream(reply.data(), cl.s_lo - stream_lo, cl.s_hi - cl.s_lo);
    }
    cw.stop();
    stats_.copy_s += cw.seconds();
  }
  comm_->barrier();
  stats_.bytes_moved += nbytes;
  return nbytes;
}

}  // namespace llio::listio
