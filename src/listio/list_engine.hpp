// The list-based I/O engine: a faithful model of ROMIO's non-contiguous
// access handling (paper §2).
//
//  * set_view explicitly flattens the filetype into an ol-list and stores
//    it (§2.1).
//  * independent access uses the shared data-sieving skeleton with linear
//    ol-list navigation and per-tuple copies (§2.2).
//  * collective access uses two-phase I/O where every AP expands its
//    fileview over each IOP's file domain into a fresh absolute-offset
//    ol-list of N_coll tuples and ships it with the data; IOPs merge the
//    received lists per file block to test write coverage and copy tuple
//    by tuple (§2.3).  No fileview caching: lists are rebuilt and re-sent
//    on every collective call.
#pragma once

#include <memory>
#include <vector>

#include "dtype/flatten.hpp"
#include "listio/ol_nav.hpp"
#include "mpiio/engine.hpp"
#include "mpiio/twophase.hpp"

namespace llio::listio {

class ListEngine final : public mpiio::IoEngine {
 public:
  using mpiio::IoEngine::IoEngine;

  void set_view(const mpiio::View& v) override;

  /// Time spent flattening the filetype at set_view (paper §2.4 cost).
  double view_flatten_seconds() const { return view_flatten_s_; }

  /// Stored ol-list memory for the current fileview.
  Off view_list_bytes() const { return ft_list_.memory_bytes(); }

 protected:
  Off do_read_at(Off stream_lo, void* buf, Off count,
                 const dt::Type& mt) override;
  Off do_write_at(Off stream_lo, const void* buf, Off count,
                  const dt::Type& mt) override;
  Off do_read_at_all(Off stream_lo, void* buf, Off count,
                     const dt::Type& mt) override;
  Off do_write_at_all(Off stream_lo, const void* buf, Off count,
                      const dt::Type& mt) override;

  std::unique_ptr<mpiio::StreamMover> make_nc_mover(
      const void* buf, Off count, const dt::Type& mt) override;

 private:
  /// Absolute-offset tuples of my access clipped to each IOP domain
  /// (the N_coll expansion of §2.3), plus the stream interval they cover.
  struct ClippedList {
    std::vector<dt::OlTuple> tuples;  ///< absolute file offsets
    Off s_lo = 0, s_hi = 0;           ///< stream interval [s_lo, s_hi)
  };
  std::vector<ClippedList> clip_lists(Off stream_lo, Off nbytes,
                                      const std::vector<mpiio::Domain>& doms);

  dt::OlList ft_list_;  ///< stored flattened filetype (one instance)
  std::unique_ptr<OlViewNav> nav_;
  double view_flatten_s_ = 0;
};

}  // namespace llio::listio
