#include "listio/list_mover.hpp"

#include <cstring>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace llio::listio {

namespace {
dt::OlList timed_flatten(const dt::Type& t, mpiio::IoOpStats* stats) {
  StopWatch w;
  w.start();
  dt::OlList list = dt::flatten(t);
  w.stop();
  if (stats != nullptr) {
    stats->list_build_s += w.seconds();
    stats->list_mem_bytes =
        std::max(stats->list_mem_bytes, list.memory_bytes());
  }
  return list;
}
}  // namespace

ListMover::ListMover(const void* buf, Off count, const dt::Type& memtype,
                     mpiio::IoOpStats* stats)
    : buf_(const_cast<Byte*>(as_bytes(buf))),
      list_(timed_flatten(memtype, stats)),
      walker_(&list_, memtype->extent()) {
  LLIO_REQUIRE(count >= 0, Errc::InvalidArgument, "ListMover: count < 0");
}

void ListMover::copy_position(Off s) {
  if (next_stream_ != s) walker_.position(s);
}

void ListMover::to_stream(Byte* dst, Off s, Off n) {
  if (n <= 0) return;
  copy_position(s);
  Off done = 0;
  while (done < n) {
    const Off len = std::min(walker_.run_len(), n - done);
    std::memcpy(dst + done, buf_ + walker_.run_mem(), to_size(len));
    walker_.consume(len);
    done += len;
  }
  next_stream_ = s + n;
}

bool ListMover::mem_runs(Off s, Off n, const mpiio::RunBudget& budget,
                         std::vector<ByteSpan>& out) {
  if (n <= 0 || list_.empty()) return false;
  if (list_.block_count() > 1 &&
      walker_.unit_size() / to_off(list_.block_count()) < budget.min_avg_run)
    return false;
  const std::size_t start = out.size();
  copy_position(s);
  Off done = 0;
  while (done < n) {
    const Off len = std::min(walker_.run_len(), n - done);
    Byte* p = buf_ + walker_.run_mem();
    if (out.size() > start && out.back().data() + out.back().size() == p) {
      out.back() = ByteSpan(out.back().data(), out.back().size() + to_size(len));
    } else {
      if (out.size() - start >= budget.max_runs) {
        out.resize(start);
        next_stream_ = -1;  // walker no longer matches next_stream_
        return false;
      }
      out.push_back(ByteSpan(p, to_size(len)));
    }
    walker_.consume(len);
    done += len;
  }
  next_stream_ = s + n;
  return true;
}

void ListMover::from_stream(const Byte* src, Off s, Off n) {
  if (n <= 0) return;
  copy_position(s);
  Off done = 0;
  while (done < n) {
    const Off len = std::min(walker_.run_len(), n - done);
    std::memcpy(buf_ + walker_.run_mem(), src + done, to_size(len));
    walker_.consume(len);
    done += len;
  }
  next_stream_ = s + n;
}

}  // namespace llio::listio
