// List-based StreamMover: flattens the memtype into a fresh ol-list for
// every access (ROMIO behaviour: memtype lists "are not stored beyond the
// single access operation", paper §2.1) and copies tuple by tuple.
#pragma once

#include "dtype/flatten.hpp"
#include "listio/ol_walker.hpp"
#include "mpiio/io_stats.hpp"
#include "mpiio/navigator.hpp"

namespace llio::listio {

class ListMover final : public mpiio::StreamMover {
 public:
  /// Flattens `memtype` at construction; the flatten time and the list
  /// memory are charged to `stats` (list_build_s / list_mem_bytes).
  ListMover(const void* buf, Off count, const dt::Type& memtype,
            mpiio::IoOpStats* stats);

  void to_stream(Byte* dst, Off s, Off n) override;
  void from_stream(const Byte* src, Off s, Off n) override;

  /// Zero-copy descriptors from the ol-list: the walker's contiguous
  /// blocks for [s, s + n) become spans over the user buffer (adjacent
  /// blocks coalesced).  Declines under the budget's run-count and
  /// average-run-length limits, like the fotf plan path.
  bool mem_runs(Off s, Off n, const mpiio::RunBudget& budget,
                std::vector<ByteSpan>& out) override;

 private:
  void copy_position(Off s);

  Byte* buf_;
  dt::OlList list_;
  OlWalker walker_;
  Off next_stream_ = -1;
};

}  // namespace llio::listio
