#include "listio/ol_nav.hpp"

#include <cstring>

#include "common/error.hpp"

namespace llio::listio {

OlViewNav::OlViewNav(const dt::OlList* list, Off ft_extent,
                     mpiio::IoOpStats* stats)
    : walker_(list, ft_extent), stats_(stats) {}

Off OlViewNav::stream_to_file_start(Off s) {
  walker_.position(s);
  next_stream_ = -1;  // navigation moved the walker
  return walker_.mem();
}

Off OlViewNav::stream_to_file_end(Off s) {
  next_stream_ = -1;
  return walker_.mem_end_of(s);
}

Off OlViewNav::file_to_stream(Off mem) { return walker_.bytes_below(mem); }

void OlViewNav::copy_position(Off s) {
  if (next_stream_ != s) walker_.position(s);
}

void OlViewNav::scatter(Byte* win, Off bias, Off s, const Byte* src, Off n) {
  if (n <= 0) return;
  copy_position(s);
  Off done = 0;
  while (done < n) {
    // One tuple fetch + one memcpy per contiguous block: the per-block
    // overhead of the list-based representation.
    const Off len = std::min(walker_.run_len(), n - done);
    std::memcpy(win + (walker_.run_mem() - bias), src + done, to_size(len));
    walker_.consume(len);
    done += len;
  }
  next_stream_ = s + n;
}

void OlViewNav::for_each_segment(
    Off s, Off n, const std::function<void(Off, Off, Off)>& fn) {
  if (n <= 0) return;
  copy_position(s);
  Off done = 0;
  while (done < n) {
    const Off len = std::min(walker_.run_len(), n - done);
    fn(walker_.run_mem(), s + done, len);
    walker_.consume(len);
    done += len;
  }
  next_stream_ = s + n;
}

void OlViewNav::gather(Byte* dst, const Byte* win, Off bias, Off s, Off n) {
  if (n <= 0) return;
  copy_position(s);
  Off done = 0;
  while (done < n) {
    const Off len = std::min(walker_.run_len(), n - done);
    std::memcpy(dst + done, win + (walker_.run_mem() - bias), to_size(len));
    walker_.consume(len);
    done += len;
  }
  next_stream_ = s + n;
}

}  // namespace llio::listio
