// List-based ViewNav (the ROMIO baseline, paper §2): navigation traverses
// the explicit ol-list linearly and every contiguous block is copied with
// an individual memcpy preceded by a tuple fetch — no batched strided
// copies, no O(depth) positioning.
#pragma once

#include <memory>

#include "dtype/flatten.hpp"
#include "listio/ol_walker.hpp"
#include "mpiio/io_stats.hpp"
#include "mpiio/navigator.hpp"

namespace llio::listio {

class OlViewNav final : public mpiio::ViewNav {
 public:
  /// `list` is the stored flattened filetype (flattened at set_view, as
  /// ROMIO does); `stats` accumulates traversal/copy cost accounting.
  OlViewNav(const dt::OlList* list, Off ft_extent, mpiio::IoOpStats* stats);

  Off stream_to_file_start(Off s) override;
  Off stream_to_file_end(Off s) override;
  Off file_to_stream(Off mem) override;
  void scatter(Byte* win, Off bias, Off s, const Byte* src, Off n) override;
  void gather(Byte* dst, const Byte* win, Off bias, Off s, Off n) override;
  void for_each_segment(
      Off s, Off n, const std::function<void(Off, Off, Off)>& fn) override;

  OlWalker& walker() { return walker_; }

 private:
  /// Position for a copy at stream s (linear when non-sequential).
  void copy_position(Off s);

  OlWalker walker_;
  mpiio::IoOpStats* stats_;
  Off next_stream_ = -1;
};

}  // namespace llio::listio
