#include "listio/ol_walker.hpp"

#include "common/error.hpp"

namespace llio::listio {

OlWalker::OlWalker(const dt::OlList* list, Off unit_extent)
    : list_(list), extent_(unit_extent) {
  LLIO_REQUIRE(list_ != nullptr && !list_->empty(), Errc::InvalidArgument,
               "OlWalker: empty ol-list");
  LLIO_REQUIRE(unit_extent > 0, Errc::InvalidArgument,
               "OlWalker: non-positive extent");
}

void OlWalker::skip_empty() {
  const auto& ts = list_->tuples();
  while (tuple_ < ts.size() && within_ >= ts[tuple_].len) {
    within_ -= ts[tuple_].len;
    ++tuple_;
  }
  if (tuple_ >= ts.size()) {
    // Wrap to the next instance.
    ++instance_;
    tuple_ = 0;
    // within_ already reduced to the leftover (0 on exact boundaries).
  }
}

void OlWalker::position(Off s) {
  LLIO_REQUIRE(s >= 0, Errc::InvalidArgument, "OlWalker: negative stream");
  const Off sz = unit_size();
  instance_ = s / sz;
  Off rem = s % sz;
  stream_ = s;
  tuple_ = 0;
  within_ = 0;
  // The baseline cost: scan tuples linearly until rem is inside one.
  const auto& ts = list_->tuples();
  while (tuple_ < ts.size() && rem >= ts[tuple_].len) {
    rem -= ts[tuple_].len;
    ++tuple_;
  }
  within_ = rem;
  if (tuple_ >= ts.size()) {
    // s was exactly an instance boundary multiple; start of next instance.
    LLIO_ASSERT(rem == 0, "OlWalker: position overflow");
    ++instance_;
    tuple_ = 0;
    within_ = 0;
  }
}

Off OlWalker::mem() const {
  const auto& ts = list_->tuples();
  return instance_ * extent_ + ts[tuple_].off + within_;
}

Off OlWalker::mem_end_of(Off s) {
  if (s == 0) {
    position(0);
    return mem();
  }
  position(s - 1);
  return mem() + 1;
}

Off OlWalker::run_len() const {
  return list_->tuples()[tuple_].len - within_;
}

Off OlWalker::run_mem() const { return mem(); }

void OlWalker::consume(Off n) {
  LLIO_REQUIRE(n >= 0 && n <= run_len(), Errc::InvalidArgument,
               "OlWalker: consume beyond block");
  within_ += n;
  stream_ += n;
  skip_empty();
}

Off OlWalker::bytes_below(Off m) const {
  const Off sz = unit_size();
  const auto& ts = list_->tuples();
  const Off first_off = ts.front().off;
  if (m <= first_off) return 0;
  Off k = floor_div(m - first_off, extent_);
  if (k < 0) return 0;
  Off below = k * sz;
  const Off local = m - k * extent_;
  // Linear tuple scan — the list-based positioning cost.
  for (const dt::OlTuple& t : ts) {
    if (local <= t.off) break;
    below += std::min(t.len, local - t.off);
  }
  return below;
}

}  // namespace llio::listio
