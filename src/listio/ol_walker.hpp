// Sequential walker over an explicit ol-list (the list-based baseline's
// equivalent of the fotf segment cursor, with the baseline's costs):
// positioning scans the list linearly from the start of the containing
// filetype instance — the O(N_block/2) average the paper attributes to
// ROMIO — and segment iteration touches one tuple per contiguous block.
#pragma once

#include "dtype/flatten.hpp"

namespace llio::listio {

class OlWalker {
 public:
  /// Walk the stream of unbounded instances of a type whose single-instance
  /// ol-list is `list`; instance k is based at k * unit_extent.
  OlWalker(const dt::OlList* list, Off unit_extent);

  Off unit_size() const noexcept { return list_->total_bytes(); }

  /// Linear positioning at stream offset s (tuple scan from list start).
  void position(Off s);

  Off stream() const noexcept { return stream_; }

  /// Memory offset of the current stream byte (start convention: at a
  /// block boundary this is the next block's start).
  Off mem() const;

  /// Memory offset one past stream byte s-1 (end convention).
  Off mem_end_of(Off s);

  /// Remaining bytes of the current contiguous block.
  Off run_len() const;

  /// Memory offset of the current position within the current block.
  Off run_mem() const;

  /// Advance by n <= run_len() bytes.
  void consume(Off n);

  /// Stream bytes with memory offset strictly below `m` (linear scan).
  Off bytes_below(Off m) const;

 private:
  void skip_empty();  ///< move past zero remaining-length positions

  const dt::OlList* list_;
  Off extent_;
  Off stream_ = 0;    ///< current stream offset
  Off instance_ = 0;  ///< current filetype instance
  std::size_t tuple_ = 0;
  Off within_ = 0;  ///< bytes consumed of the current tuple
};

}  // namespace llio::listio
