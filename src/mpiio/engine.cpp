#include "mpiio/engine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "mpiio/sieve.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "pfs/view_io.hpp"

namespace llio::mpiio {

IoEngine::IoEngine(sim::Comm* comm, pfs::FilePtr file,
                   std::shared_ptr<pfs::RangeLock> locks, const Options& opts)
    : comm_(comm), file_(std::move(file)), locks_(std::move(locks)),
      opts_(opts), view_(default_view()) {
  LLIO_REQUIRE(comm_ != nullptr, Errc::InvalidArgument, "engine: null comm");
  LLIO_REQUIRE(file_ != nullptr, Errc::InvalidArgument, "engine: null file");
  LLIO_REQUIRE(opts_.file_buffer_size > 0 && opts_.pack_buffer_size > 0,
               Errc::InvalidArgument, "engine: non-positive buffer size");
}

Off IoEngine::check_access(Off offset_etypes, const void* buf, Off count,
                           const dt::Type& mt) const {
  LLIO_REQUIRE(offset_etypes >= 0, Errc::InvalidArgument,
               "access: negative offset");
  LLIO_REQUIRE(count >= 0, Errc::InvalidArgument, "access: negative count");
  LLIO_REQUIRE(mt != nullptr, Errc::InvalidDatatype, "access: null memtype");
  LLIO_REQUIRE(buf != nullptr || count * mt->size() == 0,
               Errc::InvalidArgument, "access: null buffer");
  return offset_etypes * view_.etype->size();
}

namespace {
/// Atomic mode: hold one lock over the whole access span.
class WholeRangeLock {
 public:
  WholeRangeLock(bool enabled, pfs::RangeLock& locks, Off lo, Off hi)
      : enabled_(enabled), locks_(locks), lo_(lo), hi_(hi) {
    if (enabled_) locks_.lock(lo_, hi_);
  }
  ~WholeRangeLock() {
    if (enabled_) locks_.unlock(lo_, hi_);
  }
  WholeRangeLock(const WholeRangeLock&) = delete;
  WholeRangeLock& operator=(const WholeRangeLock&) = delete;

 private:
  bool enabled_;
  pfs::RangeLock& locks_;
  Off lo_, hi_;
};

// When the backend performs noncontiguous accesses itself (pfs::ViewIo —
// e.g. psrv view-class servers), ship it the filetype and a dense stream
// chunk instead of decomposing the access client-side.  The one view call
// replaces the whole sieve/direct strategy; it is counted as a single
// file op of payload size (no sieving amplification to report).
Off viewio_write(pfs::ViewIo& vio, const View& view, const Options& opts,
                 IoOpStats& stats, Off stream_lo, Off nbytes,
                 StreamMover& src) {
  if (const Byte* p = src.direct(0, nbytes)) {
    WallTimer t;
    vio.view_write(view.filetype, view.disp, stream_lo,
                   ConstByteSpan(p, to_size(nbytes)));
    stats.file_s += t.seconds();
    stats.file_write_ops += 1;
    stats.file_write_bytes += nbytes;
    stats.bytes_moved += nbytes;
    return nbytes;
  }
  ByteVec buf(to_size(std::min(nbytes, opts.pack_buffer_size)));
  for (Off done = 0; done < nbytes;) {
    const Off n = std::min(nbytes - done, static_cast<Off>(buf.size()));
    {
      WallTimer t;
      src.to_stream(buf.data(), done, n);
      stats.copy_s += t.seconds();
    }
    WallTimer t;
    vio.view_write(view.filetype, view.disp, stream_lo + done,
                   ConstByteSpan(buf.data(), to_size(n)));
    stats.file_s += t.seconds();
    stats.file_write_ops += 1;
    stats.file_write_bytes += n;
    done += n;
  }
  stats.bytes_moved += nbytes;
  return nbytes;
}

Off viewio_read(pfs::ViewIo& vio, const View& view, const Options& opts,
                IoOpStats& stats, Off stream_lo, Off nbytes,
                StreamMover& dst) {
  if (Byte* p = dst.direct_mut(0, nbytes)) {
    WallTimer t;
    vio.view_read(view.filetype, view.disp, stream_lo,
                  ByteSpan(p, to_size(nbytes)));
    stats.file_s += t.seconds();
    stats.file_read_ops += 1;
    stats.file_read_bytes += nbytes;
    stats.bytes_moved += nbytes;
    return nbytes;
  }
  ByteVec buf(to_size(std::min(nbytes, opts.pack_buffer_size)));
  for (Off done = 0; done < nbytes;) {
    const Off n = std::min(nbytes - done, static_cast<Off>(buf.size()));
    {
      WallTimer t;
      vio.view_read(view.filetype, view.disp, stream_lo + done,
                    ByteSpan(buf.data(), to_size(n)));
      stats.file_s += t.seconds();
      stats.file_read_ops += 1;
      stats.file_read_bytes += n;
    }
    WallTimer t;
    dst.from_stream(buf.data(), done, n);
    stats.copy_s += t.seconds();
    done += n;
  }
  stats.bytes_moved += nbytes;
  return nbytes;
}
}  // namespace

Off IoEngine::indep_write(ViewNav& nav, Off stream_lo, Off nbytes,
                          StreamMover& src) {
  if (nbytes <= 0) return 0;
  SieveContext ctx{*file_, *locks_, opts_, stats_, atomic_};
  const Off abs_lo = view_.disp + nav.stream_to_file_start(stream_lo);
  if (view_.dense()) {
    WholeRangeLock lock(atomic_, *locks_, abs_lo, abs_lo + nbytes);
    return dense_write(ctx, abs_lo, nbytes, src);
  }
  const Off abs_hi = view_.disp + nav.stream_to_file_end(stream_lo + nbytes);
  WholeRangeLock lock(atomic_, *locks_, abs_lo, abs_hi);
  if (pfs::ViewIo* vio = file_->view_io())
    return viewio_write(*vio, view_, opts_, stats_, stream_lo, nbytes, src);
  if (choose_sieving(opts_, /*writing=*/true, nbytes, abs_lo, abs_hi))
    return sieve_write(ctx, nav, view_.disp, stream_lo, nbytes, src);
  return direct_write(ctx, nav, view_.disp, stream_lo, nbytes, src);
}

Off IoEngine::indep_read(ViewNav& nav, Off stream_lo, Off nbytes,
                         StreamMover& dst) {
  if (nbytes <= 0) return 0;
  SieveContext ctx{*file_, *locks_, opts_, stats_, atomic_};
  const Off abs_lo = view_.disp + nav.stream_to_file_start(stream_lo);
  if (view_.dense()) {
    WholeRangeLock lock(atomic_, *locks_, abs_lo, abs_lo + nbytes);
    return dense_read(ctx, abs_lo, nbytes, dst);
  }
  const Off abs_hi = view_.disp + nav.stream_to_file_end(stream_lo + nbytes);
  WholeRangeLock lock(atomic_, *locks_, abs_lo, abs_hi);
  if (pfs::ViewIo* vio = file_->view_io())
    return viewio_read(*vio, view_, opts_, stats_, stream_lo, nbytes, dst);
  if (choose_sieving(opts_, /*writing=*/false, nbytes, abs_lo, abs_hi))
    return sieve_read(ctx, nav, view_.disp, stream_lo, nbytes, dst);
  return direct_read(ctx, nav, view_.disp, stream_lo, nbytes, dst);
}

std::unique_ptr<StreamMover> IoEngine::make_mover(const void* buf, Off count,
                                                  const dt::Type& mt) {
  if (mt->is_contiguous())
    return std::make_unique<ContigMover>(buf, mt->true_lb());
  return make_nc_mover(buf, count, mt);
}

namespace {
/// Times the whole operation into stats.total_s and folds the finished
/// per-op record into the cumulative counters.  Also opens a trace span
/// covering the operation on the calling rank's track, snapshots the
/// backend's async submission counters around the op so the delta lands
/// in async_file_ops / async_inflight_peak, and hands the finished record
/// to IoEngine::observe_op (per-rank histograms + sampling ring).
class OpTimer {
 public:
  OpTimer(const char* op, std::uint32_t op_id, IoEngine& engine,
          IoOpStats& stats, IoOpStats& cumulative,
          const pfs::FileBackend* backend)
      : op_id_(op_id), engine_(engine), stats_(stats),
        cumulative_(cumulative), backend_(backend), span_(op) {
    stats_ = IoOpStats{};
    if (backend_ != nullptr)
      if (const auto info = backend_->async_info())
        start_submitted_ = info->stats.submitted;
  }
  ~OpTimer() {
    int qd = 1;
    if (backend_ != nullptr)
      if (const auto info = backend_->async_info()) {
        stats_.async_file_ops = info->stats.submitted - start_submitted_;
        stats_.async_inflight_peak = info->stats.inflight_peak;
        qd = info->queue_depth;
      }
    stats_.total_s = timer_.seconds();
    cumulative_ += stats_;
    engine_.observe_op(op_id_, stats_, qd);
  }

 private:
  std::uint32_t op_id_;
  IoEngine& engine_;
  IoOpStats& stats_;
  IoOpStats& cumulative_;
  const pfs::FileBackend* backend_;
  std::uint64_t start_submitted_ = 0;
  WallTimer timer_;
  obs::Span span_;
};

long long to_us(double seconds) {
  return static_cast<long long>(seconds * 1e6);
}
}  // namespace

void IoEngine::observe_op(std::uint32_t op_id, const IoOpStats& s,
                          int queue_depth) {
  if (obs::metrics_enabled()) {
    local_metrics_.histogram("op.total_us").record(to_us(s.total_s));
    local_metrics_.histogram("op.pack_us").record(to_us(s.copy_s));
    local_metrics_.histogram("op.exchange_us").record(to_us(s.exchange_s));
    local_metrics_.histogram("op.preread_us").record(to_us(s.preread_s));
    local_metrics_.histogram("op.io_us").record(to_us(s.file_s));
    local_metrics_.histogram("op.wait_us").record(to_us(s.io_wait_s));
  }
  obs::Sampler& sampler = obs::Sampler::instance();
  if (!sampler.enabled()) return;
  if (!sample_dims_.resolved) {  // one-time per handle; op_mu_ is held
    sample_dims_.engine = sampler.intern(method_name(opts_.method));
    sample_dims_.backend =
        sampler.intern(opts_.backend.empty() ? "default" : opts_.backend);
    sample_dims_.net =
        sampler.intern(opts_.net_model.empty() ? "default" : opts_.net_model);
    sample_dims_.resolved = true;
  }
  obs::OpSample sample;
  sample.rank = comm_->rank();
  sample.op = op_id;
  sample.engine = sample_dims_.engine;
  sample.backend = sample_dims_.backend;
  sample.net = sample_dims_.net;
  sample.qd = queue_depth;
  sample.bytes = s.bytes_moved;
  sample.runs =
      static_cast<long long>(s.file_read_ops + s.file_write_ops);
  sample.dur_ns = static_cast<long long>(s.total_s * 1e9);
  sampler.record(sample);
}

void IoEngine::apply_op_tuning(const OpTuning& t) {
  std::lock_guard op_lock(op_mu_);
  opts_.cb_write = t.two_phase;
  opts_.cb_read = t.two_phase;
  opts_.pipeline_depth = t.pipeline_depth;
  opts_.pack_threads = t.pack_threads;
  opts_.zerocopy = t.zerocopy;
  opts_.file_buffer_size = t.file_buffer_size;
  on_tuning_changed();
}

Off IoEngine::read_at(Off offset_etypes, void* buf, Off count,
                      const dt::Type& mt) {
  const Off stream_lo = check_access(offset_etypes, buf, count, mt);
  static const std::uint32_t kOpId = obs::Sampler::instance().intern("read_at");
  std::lock_guard op_lock(op_mu_);
  OpTimer op("read_at", kOpId, *this, stats_, cumulative_, file_.get());
  return do_read_at(stream_lo, buf, count, mt);
}

Off IoEngine::write_at(Off offset_etypes, const void* buf, Off count,
                       const dt::Type& mt) {
  const Off stream_lo = check_access(offset_etypes, buf, count, mt);
  static const std::uint32_t kOpId =
      obs::Sampler::instance().intern("write_at");
  std::lock_guard op_lock(op_mu_);
  OpTimer op("write_at", kOpId, *this, stats_, cumulative_, file_.get());
  return do_write_at(stream_lo, buf, count, mt);
}

Off IoEngine::read_at_all(Off offset_etypes, void* buf, Off count,
                          const dt::Type& mt) {
  const Off stream_lo = check_access(offset_etypes, buf, count, mt);
  static const std::uint32_t kOpId =
      obs::Sampler::instance().intern("read_at_all");
  std::lock_guard op_lock(op_mu_);
  OpTimer op("read_at_all", kOpId, *this, stats_, cumulative_, file_.get());
  return do_read_at_all(stream_lo, buf, count, mt);
}

Off IoEngine::write_at_all(Off offset_etypes, const void* buf, Off count,
                           const dt::Type& mt) {
  const Off stream_lo = check_access(offset_etypes, buf, count, mt);
  static const std::uint32_t kOpId =
      obs::Sampler::instance().intern("write_at_all");
  std::lock_guard op_lock(op_mu_);
  OpTimer op("write_at_all", kOpId, *this, stats_, cumulative_, file_.get());
  return do_write_at_all(stream_lo, buf, count, mt);
}

}  // namespace llio::mpiio
