// Engine interface: one implementation per method (list-based, listless).
//
// The File front-end owns one engine per handle and forwards operations.
// The base class implements argument validation, per-op statistics, and
// the contiguous-memtype mover; engines supply view handling, the
// non-contiguous mover, and the independent/collective access paths.
#pragma once

#include <memory>
#include <mutex>

#include "dtype/datatype.hpp"
#include "mpiio/io_stats.hpp"
#include "mpiio/mergeview.hpp"
#include "mpiio/navigator.hpp"
#include "mpiio/options.hpp"
#include "mpiio/view.hpp"
#include "obs/metrics.hpp"
#include "pfs/file_backend.hpp"
#include "pfs/range_lock.hpp"
#include "simmpi/comm.hpp"

namespace llio::mpiio {

class IoEngine {
 public:
  IoEngine(sim::Comm* comm, pfs::FilePtr file,
           std::shared_ptr<pfs::RangeLock> locks, const Options& opts);
  virtual ~IoEngine() = default;

  IoEngine(const IoEngine&) = delete;
  IoEngine& operator=(const IoEngine&) = delete;

  /// Collective: install a new view on all ranks.
  virtual void set_view(const View& v) = 0;

  const View& view() const { return view_; }
  const Options& options() const { return opts_; }
  sim::Comm& comm() const { return *comm_; }
  pfs::FileBackend& backend() const { return *file_; }

  /// Independent access at an etype offset; returns bytes moved.
  /// Thread-compatible: operations on one engine serialize on an internal
  /// mutex, which is what makes the nonblocking File::iread_at/iwrite_at
  /// (which run these on a helper thread) safe.
  Off read_at(Off offset_etypes, void* buf, Off count, const dt::Type& mt);
  Off write_at(Off offset_etypes, const void* buf, Off count,
               const dt::Type& mt);

  /// Collective access (must be called by every rank of the comm).
  Off read_at_all(Off offset_etypes, void* buf, Off count, const dt::Type& mt);
  Off write_at_all(Off offset_etypes, const void* buf, Off count,
                   const dt::Type& mt);

  /// Statistics of the most recent operation on this rank.
  const IoOpStats& last_stats() const { return stats_; }

  /// Statistics accumulated over every operation since open (or the last
  /// reset) on this rank.
  const IoOpStats& cumulative_stats() const { return cumulative_; }
  void reset_cumulative_stats() { cumulative_ = IoOpStats{}; }

  /// Per-rank phase histograms (op.total_us / op.pack_us / op.io_us /
  /// ...), one record per operation while obs::metrics_enabled().  This
  /// is the rank-local unit the job-level Collector merges at
  /// File::close; kept out of the process-global Registry because all
  /// rank-threads of the simulated job share that one.
  const obs::LocalRegistry& local_metrics() const { return local_metrics_; }

  /// Internal: fold one finished operation into the per-rank histograms
  /// and the always-on sampling ring.  Called by the per-op timer with
  /// op_mu_ held; `op_id` is the Sampler-interned operation name.
  void observe_op(std::uint32_t op_id, const IoOpStats& s, int queue_depth);

  /// Atomic mode (MPI_File_set_atomicity): when enabled, every
  /// independent access holds a byte-range lock over its whole file span,
  /// making concurrent overlapping accesses sequentially consistent.
  void set_atomicity(bool atomic) { atomic_ = atomic; }
  bool atomicity() const { return atomic_; }

  /// Per-operation tuning from the adaptive policy layer (adapt::Advisor
  /// via mpiio::File): the subset of knobs the engines re-read on every
  /// operation.  two_phase=false maps to cb_write/cb_read disable, which
  /// degrades collectives to independent access + barrier — the
  /// server-view route when the backend advertises pfs::ViewIo.  Applied
  /// under op_mu_, so it can never interleave with a running op; with
  /// llio_adaptive=off it is never called and the open-time options stay
  /// byte-identical.
  struct OpTuning {
    bool two_phase = true;
    int pipeline_depth = 0;
    int pack_threads = 1;
    Zerocopy zerocopy = Zerocopy::Auto;
    Off file_buffer_size = 4 << 20;
  };
  void apply_op_tuning(const OpTuning& t);

 protected:
  /// Engine-specific propagation of an apply_op_tuning change (e.g. the
  /// listless engine re-points pack threads inside its cached
  /// navigators).  Runs under op_mu_.
  virtual void on_tuning_changed() {}

  virtual Off do_read_at(Off stream_lo, void* buf, Off count,
                         const dt::Type& mt) = 0;
  virtual Off do_write_at(Off stream_lo, const void* buf, Off count,
                          const dt::Type& mt) = 0;
  virtual Off do_read_at_all(Off stream_lo, void* buf, Off count,
                             const dt::Type& mt) = 0;
  virtual Off do_write_at_all(Off stream_lo, const void* buf, Off count,
                              const dt::Type& mt) = 0;

  /// Engine-specific mover for non-contiguous memtypes.
  virtual std::unique_ptr<StreamMover> make_nc_mover(const void* buf,
                                                     Off count,
                                                     const dt::Type& mt) = 0;

  /// Contiguous memtypes short-circuit to a ContigMover.
  std::unique_ptr<StreamMover> make_mover(const void* buf, Off count,
                                          const dt::Type& mt);

  /// Validate independent/collective access arguments and convert the
  /// etype offset to a stream byte offset.
  Off check_access(Off offset_etypes, const void* buf, Off count,
                   const dt::Type& mt) const;

  /// Shared independent-access dispatch: dense fast path for contiguous
  /// views, otherwise data sieving or direct per-run access per the
  /// ds_write/ds_read strategy (paper §5 trade-off).
  Off indep_write(ViewNav& nav, Off stream_lo, Off nbytes, StreamMover& src);
  Off indep_read(ViewNav& nav, Off stream_lo, Off nbytes, StreamMover& dst);

  sim::Comm* comm_;
  pfs::FilePtr file_;
  std::shared_ptr<pfs::RangeLock> locks_;
  Options opts_;
  View view_;
  IoOpStats stats_;
  IoOpStats cumulative_;

  /// Mergeview analysis cache and its invalidation counter; engines bump
  /// the epoch in set_view (collective, so it stays rank-consistent).
  MergeCache merge_cache_;
  std::uint64_t view_epoch_ = 0;

  bool atomic_ = false;
  std::mutex op_mu_;  ///< serializes operations (async vs caller thread)

 private:
  obs::LocalRegistry local_metrics_;

  /// Sampling dimensions interned once per handle (interning takes a
  /// mutex; observe_op runs under op_mu_, so plain fields suffice).
  struct SampleDims {
    bool resolved = false;
    std::uint32_t engine = 0;
    std::uint32_t backend = 0;
    std::uint32_t net = 0;
  };
  SampleDims sample_dims_;
};

}  // namespace llio::mpiio
