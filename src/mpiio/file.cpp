#include "mpiio/file.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <mutex>

#include "adapt/advisor.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "common/timer.hpp"
#include "common/worker_pool.hpp"
#include "core/listless_engine.hpp"
#include "dtype/serialize.hpp"
#include "listio/list_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "pfs/traced_file.hpp"
#include "psrv/server_file.hpp"

namespace llio::mpiio {

/// Shared-file-pointer state: one per backend among concurrently open
/// handles (rank-threads share the address space).
struct File::SharedFp {
  std::mutex mu;
  Off etypes = 0;

  Off load() {
    std::lock_guard lock(mu);
    return etypes;
  }

  void store(Off v) {
    std::lock_guard lock(mu);
    etypes = v;
  }

  Off fetch_add(Off v) {
    std::lock_guard lock(mu);
    const Off old = etypes;
    etypes += v;
    return old;
  }
};

namespace {

/// Per-open shared state: the range-lock table protecting sieving
/// read-modify-write and the shared file pointer.  Created by rank 0 and
/// distributed collectively — rank-threads share the address space, so a
/// broadcast of the owner's shared_ptr (copied before rank 0 leaves the
/// closing barrier) hands every rank the same instance.
struct OpenShared {
  std::shared_ptr<pfs::RangeLock> locks;
  std::shared_ptr<File::SharedFp> fp;
};

OpenShared exchange_open_shared(sim::Comm& comm) {
  OpenShared mine;
  if (comm.rank() == 0) {
    mine.locks = std::make_shared<pfs::RangeLock>();
    mine.fp = std::make_shared<File::SharedFp>();
    const OpenShared* self = &mine;
    ByteVec raw(sizeof(self));
    std::memcpy(raw.data(), &self, sizeof(self));
    comm.bcast(0, raw);
    comm.barrier();  // keep `mine` alive until every rank copied it
  } else {
    const ByteVec raw = comm.bcast(0, {});
    LLIO_REQUIRE(raw.size() == sizeof(const OpenShared*), Errc::Protocol,
                 "open: bad shared-state broadcast");
    const OpenShared* remote;
    std::memcpy(&remote, raw.data(), sizeof(remote));
    mine = *remote;  // shared_ptr copies; refcounts are thread-safe
    comm.barrier();
  }
  return mine;
}

std::unique_ptr<IoEngine> make_engine(sim::Comm& comm, pfs::FilePtr backend,
                                      std::shared_ptr<pfs::RangeLock> locks,
                                      const Options& opts) {
  switch (opts.method) {
    case Method::ListBased:
      return std::make_unique<listio::ListEngine>(&comm, std::move(backend),
                                                  std::move(locks), opts);
    case Method::Listless:
      return std::make_unique<core::ListlessEngine>(&comm, std::move(backend),
                                                    std::move(locks), opts);
  }
  throw_error(Errc::InvalidArgument, "open: unknown method");
}

Method other_method(Method m) {
  return m == Method::Listless ? Method::ListBased : Method::Listless;
}

/// Rank-harmonized signature of the installed fileview: FNV-1a over the
/// serialized filetype plus disp and etype size, allreduce-maxed so every
/// rank keys its advisor on the same value even when per-rank filetypes
/// differ (the usual case — each rank views its own slice).
std::uint64_t view_signature(sim::Comm& comm, Off disp, const dt::Type& etype,
                             const dt::Type& filetype) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const Byte b : dt::serialize(filetype)) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ull;
  }
  mix(static_cast<std::uint64_t>(disp));
  mix(static_cast<std::uint64_t>(etype->size()));
  // Clamp to the non-negative Off range the reduction works in.
  const Off mine = static_cast<Off>(h & 0x7fffffffffffffffull);
  return static_cast<std::uint64_t>(comm.allreduce_max(mine));
}

}  // namespace

File::File(std::unique_ptr<IoEngine> engine, pfs::FilePtr backend)
    : engine_(std::move(engine)), backend_(std::move(backend)) {}

File::File(File&&) noexcept = default;
File& File::operator=(File&&) noexcept = default;
File::~File() = default;

File File::open(sim::Comm& comm, pfs::FilePtr backend, const Options& opts) {
  LLIO_REQUIRE(backend != nullptr, Errc::InvalidArgument,
               "open: null backend");
  // Observability hints act on the process-global tracer/registry.  All
  // ranks of a collective open carry the same Options, so the repeated
  // stores are idempotent.
  if (opts.trace) obs::Tracer::instance().set_level(*opts.trace);
  if (opts.trace_file)
    obs::Tracer::instance().set_output_path(*opts.trace_file);
  if (opts.metrics) obs::set_metrics_enabled(*opts.metrics);
  if (opts.obs_sample) obs::Sampler::instance().set_enabled(*opts.obs_sample);
  // Resizing replaces the ring (dropping retained samples), so only act
  // when the capacity actually changes: a re-open with the same hint is
  // a no-op, and racing ranks of one collective open at worst install a
  // few empty rings of the same size (old rings leak by design).
  if (opts.obs_ring > 0 &&
      static_cast<std::size_t>(opts.obs_ring) !=
          obs::Sampler::instance().capacity()) {
    obs::Sampler::instance().set_capacity(
        static_cast<std::size_t>(opts.obs_ring));
  }
  // Per-file-op observation needs the TracedFile decorator in the path.
  // Wrapping is per-handle and forwards to the shared inner backend, so
  // peers opening the same backend unwrapped stay coherent.
  if ((obs::trace_enabled(obs::TraceLevel::Full) || obs::metrics_enabled()) &&
      dynamic_cast<pfs::TracedFile*>(backend.get()) == nullptr) {
    backend = pfs::TracedFile::wrap(std::move(backend));
  }
  // Every layer of the backend stack splits oversized iovec batches at
  // the same ceiling (idempotent across a collective open: all ranks
  // carry the same Options).
  backend->set_iov_batch_max(opts.iov_batch_max);
  OpenShared shared = exchange_open_shared(comm);
  auto engine = make_engine(comm, backend, shared.locks, opts);
  engine->set_view(default_view());
  File f(std::move(engine), backend);
  f.shared_fp_ = std::move(shared.fp);
  if (opts.adaptive != Adaptive::Off) {
    // Second engine of the other method, sharing the backend and the
    // range-lock table so the advisor can switch mid-run; identical
    // options otherwise, so llio_adaptive=off minus the advisor is the
    // only behavioral delta.
    Options alt = opts;
    alt.method = other_method(opts.method);
    f.alt_engine_ =
        make_engine(comm, std::move(backend), std::move(shared.locks), alt);
    f.alt_engine_->set_view(default_view());
    f.advisor_ = adapt::make_advisor(adapt::config_from_options(opts));
    obs::Sampler& sampler = obs::Sampler::instance();
    f.dim_backend_ =
        sampler.intern(opts.backend.empty() ? "default" : opts.backend);
    f.dim_net_ =
        sampler.intern(opts.net_model.empty() ? "default" : opts.net_model);
    f.dim_read_all_ = sampler.intern("read_at_all");
    f.dim_write_all_ = sampler.intern("write_at_all");
    f.dim_net_cur_ = f.dim_net_;
    f.net_seen_ = comm.cost_model();
  }
  return f;
}

File File::open(sim::Comm& comm, pfs::FilePtr backend, const Info& info,
                const Options& base) {
  return open(comm, std::move(backend), apply_info(info, base));
}

void File::set_view(Off disp, const dt::Type& etype,
                    const dt::Type& filetype) {
  engine_->set_view(View{disp, etype, filetype});
  if (alt_engine_) alt_engine_->set_view(View{disp, etype, filetype});
  if (advisor_)
    view_sig_ = view_signature(engine_->comm(), disp, etype, filetype);
  pointer_etypes_ = 0;
  // MPI_File_set_view resets the shared pointer as well (collective).
  engine_->comm().barrier();
  if (engine_->comm().rank() == 0) shared_fp_->store(0);
  engine_->comm().barrier();
}

const View& File::view() const { return engine_->view(); }

Off File::read_at(Off offset, void* buf, Off count, const dt::Type& mt) {
  last_engine_ = engine_.get();
  return engine_->read_at(offset, buf, count, mt);
}

Off File::write_at(Off offset, const void* buf, Off count,
                   const dt::Type& mt) {
  last_engine_ = engine_.get();
  return engine_->write_at(offset, buf, count, mt);
}

Off File::read_at_all(Off offset, void* buf, Off count, const dt::Type& mt) {
  if (advisor_)
    return adaptive_collective(/*writing=*/false, offset, buf, nullptr, count,
                               mt);
  last_engine_ = engine_.get();
  return engine_->read_at_all(offset, buf, count, mt);
}

Off File::write_at_all(Off offset, const void* buf, Off count,
                       const dt::Type& mt) {
  if (advisor_)
    return adaptive_collective(/*writing=*/true, offset, nullptr, buf, count,
                               mt);
  last_engine_ = engine_.get();
  return engine_->write_at_all(offset, buf, count, mt);
}

IoEngine& File::engine_for(Method m) {
  if (alt_engine_ && alt_engine_->options().method == m) return *alt_engine_;
  return *engine_;
}

Off File::adaptive_collective(bool writing, Off offset, void* rbuf,
                              const void* wbuf, Off count,
                              const dt::Type& mt) {
  sim::Comm& comm = engine_->comm();

  // A mid-run interconnect change (sim::Comm::set_cost_model — the
  // adversarial-flip benches) must move subsequent ops under a new net
  // dim: the advisor then keys the new regime fresh instead of blending
  // its costs into the old net's EWMAs, which would take many
  // observations to un-learn.  The synthesized name follows the
  // sim::named_cost_model "<latency_s>:<bandwidth_bps>" syntax.
  const sim::CommCostModel live = comm.cost_model();
  if (live.latency_s != net_seen_.latency_s ||
      live.bandwidth_bps != net_seen_.bandwidth_bps) {
    net_seen_ = live;
    dim_net_cur_ = obs::Sampler::instance().intern(
        strprintf("%g:%g", live.latency_s, live.bandwidth_bps));
  }

  adapt::OpContext ctx;
  ctx.op = writing ? dim_write_all_ : dim_read_all_;
  ctx.backend = dim_backend_;
  ctx.net = dim_net_cur_;
  ctx.view_sig = view_sig_;
  ctx.writing = writing;
  ctx.view_io = backend_->view_io() != nullptr;
  ctx.nprocs = comm.size();
  {
    const IoOpStats& c = cumulative_stats();
    const double denom = c.copy_s + c.file_s;
    ctx.pack_frac = denom > 0 ? c.copy_s / denom : -1.0;
  }

  // Rank 0 decides; followers adopt the broadcast arm so every rank runs
  // the same engine with the same tuning (a collective requirement).
  // This one small bcast is the adaptive path's only extra communication
  // per op.  The job-global payload rides along in it: rank 0 estimates
  // nbytes as nprocs x its own contribution — it only feeds the log2
  // size-class key and the ns/byte normalization, where a skewed rank
  // distribution costs at most one size class, nothing a reduction is
  // worth paying latency for on every op.
  adapt::Decision d;
  if (comm.rank() == 0) {
    ctx.nbytes = count * mt->size() * comm.size();
    d = advisor_->advise(ctx);
    ByteVec raw(11);
    raw[0] = static_cast<Byte>(d.arm & 0xff);
    raw[1] = static_cast<Byte>(d.arm >> 8);
    raw[2] = static_cast<Byte>(d.probe ? 1 : 0);
    for (int i = 0; i < 8; ++i)
      raw[3 + i] = static_cast<Byte>(
          (static_cast<unsigned long long>(ctx.nbytes) >> (8 * i)) & 0xff);
    comm.bcast(0, raw);
  } else {
    const ByteVec raw = comm.bcast(0, {});
    LLIO_REQUIRE(raw.size() == 11, Errc::Protocol,
                 "adaptive: bad arm broadcast");
    const auto arm = static_cast<std::uint16_t>(
        static_cast<unsigned>(raw[0]) | (static_cast<unsigned>(raw[1]) << 8));
    unsigned long long nb = 0;
    for (int i = 0; i < 8; ++i)
      nb |= static_cast<unsigned long long>(raw[3 + i]) << (8 * i);
    ctx.nbytes = static_cast<long long>(nb);
    d = advisor_->follow(ctx, arm, raw[2] != Byte{0});
  }

  IoEngine& eng = engine_for(d.tuning.method);
  eng.apply_op_tuning({d.tuning.two_phase, d.tuning.pipeline_depth,
                       d.tuning.pack_threads, d.tuning.zerocopy,
                       d.tuning.window});
  last_engine_ = &eng;

  WallTimer timer;
  const Off n = writing ? eng.write_at_all(offset, wbuf, count, mt)
                        : eng.read_at_all(offset, rbuf, count, mt);

  // Cost of the op is this rank's wall time.  Collectives synchronize
  // internally, so the steering rank's local duration tracks the job
  // time closely — reducing to the exact max would cost another
  // latency-bound collective per op.  Follower advisors see their own
  // local view and may drift, but they never advise; only rank 0's
  // state steers decisions.
  advisor_->observe(ctx, d, {timer.seconds(), ctx.nbytes});
  return n;
}

void File::seek(Off offset_etypes, Whence whence) {
  Off base = 0;
  switch (whence) {
    case Whence::Set: base = 0; break;
    case Whence::Cur: base = pointer_etypes_; break;
    case Whence::End: {
      // End of the *view*: etypes visible below the current file size.
      const Off esz = engine_->view().etype->size();
      base = size() / esz;  // conservative byte-based bound
      break;
    }
  }
  const Off target = base + offset_etypes;
  LLIO_REQUIRE(target >= 0, Errc::InvalidArgument, "seek: negative position");
  pointer_etypes_ = target;
}

Off File::tell() const { return pointer_etypes_; }

void File::advance(Off bytes) {
  const Off esz = engine_->view().etype->size();
  LLIO_REQUIRE(bytes % esz == 0, Errc::InvalidArgument,
               "file-pointer access must move a whole number of etypes");
  pointer_etypes_ += bytes / esz;
}

Off File::read(void* buf, Off count, const dt::Type& mt) {
  const Off n = engine_->read_at(pointer_etypes_, buf, count, mt);
  advance(n);
  return n;
}

Off File::write(const void* buf, Off count, const dt::Type& mt) {
  const Off n = engine_->write_at(pointer_etypes_, buf, count, mt);
  advance(n);
  return n;
}

Off File::read_all(void* buf, Off count, const dt::Type& mt) {
  const Off n = read_at_all(pointer_etypes_, buf, count, mt);
  advance(n);
  return n;
}

Off File::write_all(const void* buf, Off count, const dt::Type& mt) {
  const Off n = write_at_all(pointer_etypes_, buf, count, mt);
  advance(n);
  return n;
}

// Nonblocking requests run on the shared worker pool instead of detached
// std::async threads: each holds a one-worker reservation for its
// lifetime, so concurrent requests count against the same process-wide
// concurrency budget as the pipeline and AsyncIo engines.

Request File::iread_at(Off offset, void* buf, Off count, const dt::Type& mt) {
  IoEngine* engine = engine_.get();
  WorkerPool& pool = WorkerPool::shared();
  return Request(
      pool.submit([res = pool.reserve(1), engine, offset, buf, count, mt]() {
        return engine->read_at(offset, buf, count, mt);
      }));
}

Request File::iwrite_at(Off offset, const void* buf, Off count,
                        const dt::Type& mt) {
  IoEngine* engine = engine_.get();
  WorkerPool& pool = WorkerPool::shared();
  return Request(
      pool.submit([res = pool.reserve(1), engine, offset, buf, count, mt]() {
        return engine->write_at(offset, buf, count, mt);
      }));
}

void File::write_at_all_begin(Off offset, const void* buf, Off count,
                              const dt::Type& mt) {
  LLIO_REQUIRE(split_state_ == SplitState::Idle, Errc::InvalidArgument,
               "write_at_all_begin: a split collective is already pending");
  split_result_ = write_at_all(offset, buf, count, mt);
  split_state_ = SplitState::Writing;
  split_buf_ = buf;
}

Off File::write_at_all_end(const void* buf) {
  LLIO_REQUIRE(split_state_ == SplitState::Writing && buf == split_buf_,
               Errc::InvalidArgument,
               "write_at_all_end: no matching write_at_all_begin");
  split_state_ = SplitState::Idle;
  split_buf_ = nullptr;
  return split_result_;
}

void File::read_at_all_begin(Off offset, void* buf, Off count,
                             const dt::Type& mt) {
  LLIO_REQUIRE(split_state_ == SplitState::Idle, Errc::InvalidArgument,
               "read_at_all_begin: a split collective is already pending");
  split_result_ = read_at_all(offset, buf, count, mt);
  split_state_ = SplitState::Reading;
  split_buf_ = buf;
}

Off File::read_at_all_end(void* buf) {
  LLIO_REQUIRE(split_state_ == SplitState::Reading && buf == split_buf_,
               Errc::InvalidArgument,
               "read_at_all_end: no matching read_at_all_begin");
  split_state_ = SplitState::Idle;
  split_buf_ = nullptr;
  return split_result_;
}

Off File::etypes_of(Off bytes) const {
  const Off esz = engine_->view().etype->size();
  LLIO_REQUIRE(bytes % esz == 0, Errc::InvalidArgument,
               "shared-pointer access must move a whole number of etypes");
  return bytes / esz;
}

Off File::tell_shared() const { return shared_fp_->load(); }

void File::seek_shared(Off offset_etypes, Whence whence) {
  sim::Comm& comm = engine_->comm();
  comm.barrier();
  if (comm.rank() == 0) {
    Off base = 0;
    switch (whence) {
      case Whence::Set: base = 0; break;
      case Whence::Cur: base = shared_fp_->load(); break;
      case Whence::End:
        base = size() / engine_->view().etype->size();
        break;
    }
    const Off target = base + offset_etypes;
    LLIO_REQUIRE(target >= 0, Errc::InvalidArgument,
                 "seek_shared: negative position");
    shared_fp_->store(target);
  }
  comm.barrier();
}

Off File::read_shared(void* buf, Off count, const dt::Type& mt) {
  const Off et = etypes_of(count * mt->size());
  const Off at = shared_fp_->fetch_add(et);
  last_engine_ = engine_.get();
  return engine_->read_at(at, buf, count, mt);
}

Off File::write_shared(const void* buf, Off count, const dt::Type& mt) {
  const Off et = etypes_of(count * mt->size());
  const Off at = shared_fp_->fetch_add(et);
  last_engine_ = engine_.get();
  return engine_->write_at(at, buf, count, mt);
}

Off File::read_ordered(void* buf, Off count, const dt::Type& mt) {
  sim::Comm& comm = engine_->comm();
  const Off et = etypes_of(count * mt->size());
  comm.barrier();  // quiesce pending shared-pointer updates
  const Off base = shared_fp_->load();
  const Off pre = comm.exscan_sum(et);
  last_engine_ = engine_.get();
  const Off n = engine_->read_at(base + pre, buf, count, mt);
  const Off total = comm.allreduce_sum(et);
  comm.barrier();
  if (comm.rank() == 0) shared_fp_->store(base + total);
  comm.barrier();
  return n;
}

Off File::write_ordered(const void* buf, Off count, const dt::Type& mt) {
  sim::Comm& comm = engine_->comm();
  const Off et = etypes_of(count * mt->size());
  comm.barrier();
  const Off base = shared_fp_->load();
  const Off pre = comm.exscan_sum(et);
  last_engine_ = engine_.get();
  const Off n = engine_->write_at(base + pre, buf, count, mt);
  const Off total = comm.allreduce_sum(et);
  comm.barrier();
  if (comm.rank() == 0) shared_fp_->store(base + total);
  comm.barrier();
  return n;
}

Off File::size() const { return backend_->size(); }

void File::set_size(Off bytes) {
  LLIO_REQUIRE(bytes >= 0, Errc::InvalidArgument, "set_size: negative size");
  sim::Comm& comm = engine_->comm();
  comm.barrier();
  if (comm.rank() == 0) backend_->resize(bytes);
  comm.barrier();
}

void File::preallocate(Off bytes) {
  LLIO_REQUIRE(bytes >= 0, Errc::InvalidArgument,
               "preallocate: negative size");
  sim::Comm& comm = engine_->comm();
  comm.barrier();
  if (comm.rank() == 0 && backend_->size() < bytes) backend_->resize(bytes);
  comm.barrier();
}

void File::sync() {
  sim::Comm& comm = engine_->comm();
  comm.barrier();
  if (comm.rank() == 0) backend_->sync();
  comm.barrier();
}

void File::set_atomicity(bool atomic) {
  sim::Comm& comm = engine_->comm();
  comm.barrier();
  engine_->set_atomicity(atomic);
  if (alt_engine_) alt_engine_->set_atomicity(atomic);
  comm.barrier();
}

bool File::atomicity() const { return engine_->atomicity(); }

obs::JobReport File::close() {
  sim::Comm& comm = engine_->comm();
  // Each rank's span buffer is thread-local; flush before the collective
  // exchange so the tracer snapshot below sees every rank's spans.
  obs::flush_thread_trace();

  // Adaptive handles contribute both engines' work: the phase totals use
  // the merged cumulative stats and the per-rank histograms merge the two
  // engines' LocalRegistries (name-wise; the schema is identical).
  const IoOpStats& c = cumulative_stats();
  obs::RankSnapshot mine;
  mine.rank = comm.rank();
  mine.phases = {{"total", c.total_s},      {"pack", c.copy_s},
                 {"exchange", c.exchange_s}, {"preread", c.preread_s},
                 {"io", c.file_s},           {"wait", c.io_wait_s}};
  mine.counters = {
      {"bytes_moved", static_cast<std::uint64_t>(c.bytes_moved)},
      {"file_read_ops", c.file_read_ops},
      {"file_write_ops", c.file_write_ops},
      {"async_file_ops", c.async_file_ops},
      {"zerocopy_windows", c.zerocopy_windows},
      {"preread_skipped_windows", c.preread_skipped_windows},
  };
  mine.hists = engine_->local_metrics().histogram_data();
  if (alt_engine_) {
    for (const auto& [name, data] : alt_engine_->local_metrics().histogram_data()) {
      auto it = std::find_if(mine.hists.begin(), mine.hists.end(),
                             [&](const auto& h) { return h.first == name; });
      if (it == mine.hists.end()) {
        mine.hists.emplace_back(name, data);
      } else {
        it->second.merge(data);
      }
    }
  }

  obs::JobReport report = obs::aggregate(comm, mine);
  if (advisor_) advisor_->report_into(report);

  // Process-global sections: the registry, sampler, and tracer are
  // shared by all rank-threads of the simulated job, so every rank
  // attaches the same view and the reports stay rank-identical (the
  // allgather above synchronized the ranks, so no op is mid-flight).
  for (auto& [name, data] : obs::Registry::instance().histogram_data())
    report.global_hists.emplace_back(name, data.summary());
  // A psrv backend contributes its pool's summed server-side counters
  // (unwrapping the TracedFile decorator if observation added one).
  {
    const pfs::FileBackend* b = backend_.get();
    if (const auto* tf = dynamic_cast<const pfs::TracedFile*>(b))
      b = tf->inner().get();
    if (const auto* sf = dynamic_cast<const psrv::ServerFile*>(b)) {
      const psrv::ServerStats ps = sf->pool()->total_server_stats();
      report.global_counters = {
          {"psrv.requests", ps.requests},
          {"psrv.contig_ops", ps.contig_ops},
          {"psrv.list_ops", ps.list_ops},
          {"psrv.view_ops", ps.view_ops},
          {"psrv.bytes_in", ps.bytes_in},
          {"psrv.bytes_out", ps.bytes_out},
          {"psrv.batched_extents", ps.batched_extents},
          {"psrv.session_ops", ps.session_ops},
          {"psrv.lease_ops", ps.lease_ops},
          {"psrv.writeback_ops", ps.writeback_ops},
          {"psrv.writeback_bytes", ps.writeback_bytes},
          {"psrv.recalls_sent", ps.recalls_sent},
          {"psrv.parked", ps.parked},
          {"psrv.fenced_drops", ps.fenced_drops},
          {"psrv.agg_writes", ps.agg_writes},
          {"psrv.escalations", ps.escalations},
          {"psrv.max_queue_depth", ps.max_queue_depth},
      };
    }
  }
  const obs::MetricsSnapshot ms = obs::Sampler::instance().snapshot();
  report.samples_produced = ms.produced;
  report.samples_dropped = ms.dropped;
  if (obs::trace_enabled())
    report.critical = obs::critical_path(obs::Tracer::instance().snapshot());

  const std::string& path = engine_->options().report_path;
  if (!path.empty() && comm.rank() == 0) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    LLIO_REQUIRE(out.good(), Errc::Io, "close: cannot open report file " + path);
    const std::string json = report.to_json();
    out.write(json.data(), static_cast<std::streamsize>(json.size()));
    out.put('\n');
    LLIO_REQUIRE(out.good(), Errc::Io, "close: short write to " + path);
  }
  comm.barrier();  // readers of the report see it complete after close()
  return report;
}

const IoOpStats& File::last_stats() const {
  return (last_engine_ != nullptr ? last_engine_ : engine_.get())
      ->last_stats();
}

const IoOpStats& File::cumulative_stats() const {
  if (!alt_engine_) return engine_->cumulative_stats();
  merged_cumulative_ = engine_->cumulative_stats();
  merged_cumulative_ += alt_engine_->cumulative_stats();
  return merged_cumulative_;
}

void File::reset_cumulative_stats() {
  engine_->reset_cumulative_stats();
  if (alt_engine_) alt_engine_->reset_cumulative_stats();
}

const Options& File::options() const { return engine_->options(); }

Info File::info() const { return options_to_info(engine_->options()); }

IoEngine& File::engine() { return *engine_; }

}  // namespace llio::mpiio
