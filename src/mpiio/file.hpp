// The public MPI-IO-style file handle.
//
// Mirrors the MPI_File API surface the paper exercises:
//   open / set_view / read_at / write_at / read_at_all / write_at_all,
// plus an individual file pointer (seek / read / write).  The `method`
// option selects the list-based baseline or the listless engine; both
// expose identical semantics, so a workload can be run against either and
// the file images compared byte for byte (our equivalence tests do).
//
// Usage (inside sim::Runtime::run):
//   auto fs = pfs::MemFile::create();
//   auto f  = mpiio::File::open(comm, fs, {.method = Method::Listless});
//   f.set_view(0, dt::byte(), filetype);
//   f.write_at_all(0, buf.data(), n, memtype);
#pragma once

#include <future>
#include <memory>

#include "dtype/datatype.hpp"
#include "mpiio/engine.hpp"
#include "mpiio/info.hpp"
#include "mpiio/io_stats.hpp"
#include "mpiio/options.hpp"
#include "mpiio/view.hpp"
#include "obs/agg.hpp"
#include "pfs/file_backend.hpp"
#include "simmpi/comm.hpp"

namespace llio::adapt {
class Advisor;
}

namespace llio::mpiio {

/// Handle for a nonblocking independent operation (MPI_Request analogue).
/// wait() returns the bytes moved and rethrows any operation error; the
/// destructor waits if the request was never completed explicitly.
class Request {
 public:
  Request() = default;

  /// Block until the operation finishes; returns bytes moved.
  Off wait() {
    LLIO_REQUIRE(fut_.valid(), Errc::InvalidArgument,
                 "Request::wait: empty or already-completed request");
    return fut_.get();
  }

  /// True when wait() would not block.
  bool test() const {
    return fut_.valid() &&
           fut_.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready;
  }

  bool valid() const { return fut_.valid(); }

 private:
  friend class File;
  explicit Request(std::future<Off> fut) : fut_(std::move(fut)) {}

  std::future<Off> fut_;
};

class File {
 public:
  /// Collective: every rank of `comm` opens the same backend.
  static File open(sim::Comm& comm, pfs::FilePtr backend,
                   const Options& opts = {});

  /// Collective open with MPI_Info-style hints applied on top of `base`.
  static File open(sim::Comm& comm, pfs::FilePtr backend, const Info& info,
                   const Options& base = {});

  File(File&&) noexcept;
  File& operator=(File&&) noexcept;
  ~File();

  /// Collective: install (disp, etype, filetype) and reset the individual
  /// file pointer (MPI_File_set_view semantics).
  void set_view(Off disp, const dt::Type& etype, const dt::Type& filetype);

  const View& view() const;

  // -- explicit-offset accesses (offsets in etype units) -----------------
  Off read_at(Off offset, void* buf, Off count, const dt::Type& memtype);
  Off write_at(Off offset, const void* buf, Off count,
               const dt::Type& memtype);
  Off read_at_all(Off offset, void* buf, Off count, const dt::Type& memtype);
  Off write_at_all(Off offset, const void* buf, Off count,
                   const dt::Type& memtype);

  // -- individual file pointer -------------------------------------------
  enum class Whence { Set, Cur, End };
  void seek(Off offset_etypes, Whence whence = Whence::Set);
  Off tell() const;  ///< current position in etype units
  Off read(void* buf, Off count, const dt::Type& memtype);
  Off write(const void* buf, Off count, const dt::Type& memtype);
  Off read_all(void* buf, Off count, const dt::Type& memtype);
  Off write_all(const void* buf, Off count, const dt::Type& memtype);

  // -- nonblocking independent access (MPI_File_iread_at/iwrite_at) ------
  //
  // The operation runs on a helper thread, overlapping with the caller;
  // operations on one handle serialize against each other (engine-level
  // mutex), so mixing sync and async calls is safe.  The buffer must stay
  // valid until wait(), as MPI requires.  Only independent operations are
  // offered nonblocking: collectives must retain their call order across
  // ranks, which an unsynchronized helper thread cannot guarantee.

  Request iread_at(Off offset, void* buf, Off count, const dt::Type& memtype);
  Request iwrite_at(Off offset, const void* buf, Off count,
                    const dt::Type& memtype);

  // -- split collectives (MPI_File_*_at_all_begin/end) --------------------
  //
  // Implemented synchronously, as MPI permits (and as ROMIO's default
  // does): begin performs the collective eagerly, end returns its result.
  // One split operation may be pending per handle; begin/end pairs must
  // match by buffer.

  void write_at_all_begin(Off offset, const void* buf, Off count,
                          const dt::Type& memtype);
  Off write_at_all_end(const void* buf);
  void read_at_all_begin(Off offset, void* buf, Off count,
                         const dt::Type& memtype);
  Off read_at_all_end(void* buf);

  // -- shared file pointer (MPI_File_*_shared / *_ordered) ---------------
  //
  // The shared pointer is per (backend, concurrently open handles): all
  // handles opened on the same backend share it, as MPI handles on the
  // same (comm, file) do.  read/write_shared atomically claim their range
  // (access order across ranks is unspecified); the *_ordered collectives
  // serialize in rank order.

  Off tell_shared() const;
  void seek_shared(Off offset_etypes, Whence whence = Whence::Set);  // coll.
  Off read_shared(void* buf, Off count, const dt::Type& memtype);
  Off write_shared(const void* buf, Off count, const dt::Type& memtype);
  Off read_ordered(void* buf, Off count, const dt::Type& memtype);   // coll.
  Off write_ordered(const void* buf, Off count, const dt::Type& memtype);

  // -- file management ----------------------------------------------------

  /// File size in bytes (backend view, not the fileview).
  Off size() const;

  /// Collective: truncate/grow the file to exactly `bytes`.
  void set_size(Off bytes);

  /// Collective: ensure the file is at least `bytes` long.
  void preallocate(Off bytes);

  /// Collective: flush to stable storage.
  void sync();

  /// Collective: toggle atomic mode (MPI_File_set_atomicity) — when on,
  /// concurrent overlapping independent accesses are sequentially
  /// consistent (each holds a lock over its whole file span).
  void set_atomicity(bool atomic);
  bool atomicity() const;

  /// Collective: job-level observability close (the MPI_File_close-time
  /// aggregation point).  Every rank flushes its trace buffer and
  /// contributes its cumulative phase decomposition (pack / exchange /
  /// preread / io / wait), counters, and per-rank phase histograms;
  /// every rank returns the same obs::JobReport — cross-rank
  /// min/median/max per phase, merged histograms, straggler rank,
  /// critical path over the trace (when tracing is on), and the sampling
  /// ring totals.  Rank 0 writes the report JSON to Options::report_path
  /// when set.  The handle stays usable afterwards: close() finalizes
  /// observability, not the backend (simulated backends have no OS
  /// handle to release).
  obs::JobReport close();

  /// Statistics of this rank's most recent operation.
  const IoOpStats& last_stats() const;

  /// Statistics accumulated across all operations since open.
  const IoOpStats& cumulative_stats() const;
  void reset_cumulative_stats();

  const Options& options() const;

  /// Effective options rendered as hints (MPI_File_get_info).
  Info info() const;

  /// The engine (for engine-specific introspection in benches/tests).
  IoEngine& engine();

  /// The adaptive policy advisor; null unless llio_adaptive is on.  Each
  /// rank's advisor converges to the same state (see adapt/advisor.hpp),
  /// so reading rank 0's is canonical for benches/tests.
  const adapt::Advisor* advisor() const noexcept { return advisor_.get(); }

  /// Implementation detail of the shared file pointer (public so the
  /// collective open machinery can exchange it).
  struct SharedFp;

 private:
  File(std::unique_ptr<IoEngine> engine, pfs::FilePtr backend);

  /// Advance the individual pointer by the etypes consumed by `bytes`.
  void advance(Off bytes);

  /// Etypes an access of `bytes` bytes moves (must divide evenly).
  Off etypes_of(Off bytes) const;

  /// Adaptive collective dispatch (llio_adaptive != off): build the
  /// rank-consistent OpContext, let rank 0's advisor pick the arm and
  /// broadcast it, apply the tuning to the chosen engine, run the
  /// collective, and feed the allreduce-maxed wall time back to every
  /// rank's advisor.  `rbuf`/`wbuf` — exactly one is non-null.
  Off adaptive_collective(bool writing, Off offset, void* rbuf,
                          const void* wbuf, Off count, const dt::Type& mt);

  /// The engine the next adaptive decision should run on, or engine_.
  IoEngine& engine_for(Method m);

  std::unique_ptr<IoEngine> engine_;

  /// The other method's engine, created only when llio_adaptive != off
  /// (same backend / range locks / comm, so the two are interchangeable
  /// mid-run).  Collective ops dispatch per the advisor's arm;
  /// independent ops always use engine_.
  std::unique_ptr<IoEngine> alt_engine_;
  std::unique_ptr<adapt::Advisor> advisor_;
  IoEngine* last_engine_ = nullptr;  ///< engine of the last sync op
  std::uint64_t view_sig_ = 0;       ///< rank-harmonized fileview signature
  mutable IoOpStats merged_cumulative_;  ///< both engines, built on demand

  /// Sampler-interned dims for OpContext (resolved at open when adaptive).
  std::uint32_t dim_backend_ = 0;
  std::uint32_t dim_net_ = 0;
  std::uint32_t dim_read_all_ = 0;
  std::uint32_t dim_write_all_ = 0;

  /// Live net dim: when the comm domain's cost model changes mid-run
  /// (sim::Comm::set_cost_model — the adversarial-flip benches), the
  /// advisor must key the new regime separately instead of folding its
  /// costs into the old net's EWMAs.  net_seen_ caches the last model so
  /// the common no-change path is two double compares.
  std::uint32_t dim_net_cur_ = 0;
  sim::CommCostModel net_seen_{};

  pfs::FilePtr backend_;
  std::shared_ptr<SharedFp> shared_fp_;
  Off pointer_etypes_ = 0;

  enum class SplitState { Idle, Writing, Reading };
  SplitState split_state_ = SplitState::Idle;
  const void* split_buf_ = nullptr;
  Off split_result_ = 0;
};

}  // namespace llio::mpiio
