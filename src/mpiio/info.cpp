#include "mpiio/info.hpp"

#include <cstdlib>

#include "common/error.hpp"
#include "common/format.hpp"

namespace llio::mpiio {

namespace {

Off parse_bytes(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const long long n = std::strtoll(v.c_str(), &end, 10);
  LLIO_REQUIRE(end != v.c_str() && *end == '\0' && n > 0,
               Errc::InvalidArgument, "hint " + key + ": bad byte count");
  return static_cast<Off>(n);
}

int parse_int(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const long n = std::strtol(v.c_str(), &end, 10);
  LLIO_REQUIRE(end != v.c_str() && *end == '\0' && n >= 0,
               Errc::InvalidArgument, "hint " + key + ": bad integer");
  return static_cast<int>(n);
}

bool parse_enable(const std::string& key, const std::string& v) {
  if (v == "enable" || v == "true") return true;
  if (v == "disable" || v == "false") return false;
  throw_error(Errc::InvalidArgument,
              "hint " + key + ": expected enable/disable");
}

Sieving parse_sieving(const std::string& key, const std::string& v) {
  if (v == "enable") return Sieving::Always;
  if (v == "disable") return Sieving::Never;
  if (v == "automatic") return Sieving::Automatic;
  throw_error(Errc::InvalidArgument,
              "hint " + key + ": expected enable/disable/automatic");
}

}  // namespace

Options apply_info(const Info& info, Options base) {
  for (const auto& [key, value] : info.entries()) {
    if (key == "llio_method") {
      if (value == "listless")
        base.method = Method::Listless;
      else if (value == "list-based")
        base.method = Method::ListBased;
      else
        throw_error(Errc::InvalidArgument,
                    "hint llio_method: expected listless/list-based");
    } else if (key == "cb_buffer_size" || key == "ind_rd_buffer_size" ||
               key == "ind_wr_buffer_size") {
      base.file_buffer_size = parse_bytes(key, value);
    } else if (key == "pack_buffer_size") {
      base.pack_buffer_size = parse_bytes(key, value);
    } else if (key == "cb_nodes") {
      base.io_procs = parse_int(key, value);
    } else if (key == "romio_cb_write") {
      base.cb_write = value == "automatic" ? true : parse_enable(key, value);
    } else if (key == "romio_cb_read") {
      base.cb_read = value == "automatic" ? true : parse_enable(key, value);
    } else if (key == "romio_ds_write") {
      base.ds_write = parse_sieving(key, value);
    } else if (key == "romio_ds_read") {
      base.ds_read = parse_sieving(key, value);
    } else if (key == "llio_sieve_min_fill") {
      char* end = nullptr;
      const double f = std::strtod(value.c_str(), &end);
      LLIO_REQUIRE(end != value.c_str() && *end == '\0' && f >= 0.0 &&
                       f <= 1.0,
                   Errc::InvalidArgument,
                   "hint llio_sieve_min_fill: expected a ratio in [0, 1]");
      base.sieve_min_fill = f;
    } else if (key == "llio_merge_contig") {
      if (value == "auto")
        base.merge_contig = MergeContig::Auto;
      else if (value == "off")
        base.merge_contig = MergeContig::Off;
      else if (value == "force")
        base.merge_contig = MergeContig::Force;
      else
        throw_error(Errc::InvalidArgument,
                    "hint llio_merge_contig: expected auto/off/force");
    } else if (key == "llio_merge_opt") {
      // Backwards-compatible alias: enable = the analyzed default.
      base.merge_contig = parse_enable(key, value) ? MergeContig::Auto
                                                   : MergeContig::Off;
    } else if (key == "llio_pipeline_depth") {
      base.pipeline_depth = parse_int(key, value);
    } else if (key == "llio_iov_batch_max") {
      const int n = parse_int(key, value);
      LLIO_REQUIRE(n >= 1, Errc::InvalidArgument,
                   "hint llio_iov_batch_max: expected a count >= 1");
      base.iov_batch_max = n;
    } else if (key == "llio_zerocopy") {
      if (value == "auto")
        base.zerocopy = Zerocopy::Auto;
      else if (value == "off")
        base.zerocopy = Zerocopy::Off;
      else
        throw_error(Errc::InvalidArgument,
                    "hint llio_zerocopy: expected off/auto");
    } else if (key == "llio_zerocopy_min_run") {
      base.zerocopy_min_run = parse_bytes(key, value);
    } else if (key == "llio_zerocopy_max_runs") {
      base.zerocopy_max_runs = parse_bytes(key, value);
    } else if (key == "llio_pack_threads") {
      const int n = parse_int(key, value);
      LLIO_REQUIRE(n >= 1, Errc::InvalidArgument,
                   "hint llio_pack_threads: expected a count >= 1");
      base.pack_threads = n;
    } else if (key == "llio_pack_parallel_min") {
      base.pack_parallel_min = parse_bytes(key, value);
    } else if (key == "llio_pack_plan") {
      if (value == "on")
        base.pack_plan = true;
      else if (value == "off")
        base.pack_plan = false;
      else
        throw_error(Errc::InvalidArgument,
                    "hint llio_pack_plan: expected on/off");
    } else if (key == "llio_psrv_servers") {
      base.psrv_servers = parse_int(key, value);
    } else if (key == "llio_psrv_queue_depth") {
      const int n = parse_int(key, value);
      LLIO_REQUIRE(n >= 1, Errc::InvalidArgument,
                   "hint llio_psrv_queue_depth: expected a count >= 1");
      base.psrv_queue_depth = n;
    } else if (key == "llio_psrv_request") {
      LLIO_REQUIRE(value == "contig" || value == "list" || value == "view",
                   Errc::InvalidArgument,
                   "hint llio_psrv_request: expected contig/list/view");
      base.psrv_request = value;
    } else if (key == "llio_psrv_session_weight") {
      const int n = parse_int(key, value);
      LLIO_REQUIRE(n >= 1, Errc::InvalidArgument,
                   "hint llio_psrv_session_weight: expected a weight >= 1");
      base.psrv_session_weight = n;
    } else if (key == "llio_psrv_cache") {
      if (value == "on")
        base.psrv_cache = true;
      else if (value == "off")
        base.psrv_cache = false;
      else
        throw_error(Errc::InvalidArgument,
                    "hint llio_psrv_cache: expected on/off");
    } else if (key == "llio_psrv_lease_ms") {
      base.psrv_lease_ms = parse_int(key, value);
    } else if (key == "llio_posix_qd") {
      const int n = parse_int(key, value);
      LLIO_REQUIRE(n >= 1, Errc::InvalidArgument,
                   "hint llio_posix_qd: expected a depth >= 1");
      base.posix_qd = n;
    } else if (key == "llio_posix_direct") {
      if (value == "on")
        base.posix_direct = true;
      else if (value == "off")
        base.posix_direct = false;
      else
        throw_error(Errc::InvalidArgument,
                    "hint llio_posix_direct: expected on/off");
    } else if (key == "llio_stripe_rotate") {
      if (value == "on")
        base.stripe_rotate = true;
      else if (value == "off")
        base.stripe_rotate = false;
      else
        throw_error(Errc::InvalidArgument,
                    "hint llio_stripe_rotate: expected on/off");
    } else if (key == "llio_backend") {
      LLIO_REQUIRE(!value.empty(), Errc::InvalidArgument,
                   "hint llio_backend: empty target");
      base.backend = value;
    } else if (key == "llio_net_model") {
      LLIO_REQUIRE(!value.empty(), Errc::InvalidArgument,
                   "hint llio_net_model: empty model name");
      base.net_model = value;
    } else if (key == "llio_trace") {
      if (value == "off")
        base.trace = obs::TraceLevel::Off;
      else if (value == "spans")
        base.trace = obs::TraceLevel::Spans;
      else if (value == "full")
        base.trace = obs::TraceLevel::Full;
      else
        throw_error(Errc::InvalidArgument,
                    "hint llio_trace: expected off/spans/full");
    } else if (key == "llio_trace_file") {
      LLIO_REQUIRE(!value.empty(), Errc::InvalidArgument,
                   "hint llio_trace_file: empty path");
      base.trace_file = value;
    } else if (key == "llio_metrics") {
      if (value == "on")
        base.metrics = true;
      else if (value == "off")
        base.metrics = false;
      else
        throw_error(Errc::InvalidArgument,
                    "hint llio_metrics: expected on/off");
    } else if (key == "llio_report") {
      LLIO_REQUIRE(!value.empty(), Errc::InvalidArgument,
                   "hint llio_report: empty path");
      base.report_path = value;
    } else if (key == "llio_adaptive") {
      if (value == "off")
        base.adaptive = Adaptive::Off;
      else if (value == "auto")
        base.adaptive = Adaptive::Auto;
      else if (value == "force")
        base.adaptive = Adaptive::Force;
      else
        throw_error(Errc::InvalidArgument,
                    "hint llio_adaptive: expected off/auto/force");
    } else if (key == "llio_adaptive_policy") {
      LLIO_REQUIRE(value == "static" || value == "greedy" ||
                       value == "hysteresis",
                   Errc::InvalidArgument,
                   "hint llio_adaptive_policy: expected "
                   "static/greedy/hysteresis");
      base.adaptive_policy = value;
    } else if (key == "llio_adaptive_epsilon") {
      char* end = nullptr;
      const double f = std::strtod(value.c_str(), &end);
      LLIO_REQUIRE(end != value.c_str() && *end == '\0' && f >= 0.0 &&
                       f <= 0.5,
                   Errc::InvalidArgument,
                   "hint llio_adaptive_epsilon: expected a ratio in "
                   "[0, 0.5]");
      base.adaptive_epsilon = f;
    } else if (key == "llio_adaptive_window") {
      const int n = parse_int(key, value);
      LLIO_REQUIRE(n >= 1, Errc::InvalidArgument,
                   "hint llio_adaptive_window: expected a count >= 1");
      base.adaptive_window = n;
    } else if (key == "llio_obs_sample") {
      if (value == "on")
        base.obs_sample = true;
      else if (value == "off")
        base.obs_sample = false;
      else
        throw_error(Errc::InvalidArgument,
                    "hint llio_obs_sample: expected on/off");
    } else if (key == "llio_obs_ring") {
      const int n = parse_int(key, value);
      LLIO_REQUIRE(n >= 1, Errc::InvalidArgument,
                   "hint llio_obs_ring: expected a capacity >= 1");
      base.obs_ring = n;
    }
    // Unknown keys are ignored, as MPI_Info requires.
  }
  return base;
}

namespace {
const char* sieving_name(Sieving s) {
  switch (s) {
    case Sieving::Always: return "enable";
    case Sieving::Never: return "disable";
    case Sieving::Automatic: return "automatic";
  }
  return "enable";
}
}  // namespace

Info options_to_info(const Options& o) {
  Info info;
  info.set("llio_method",
           o.method == Method::Listless ? "listless" : "list-based");
  info.set("cb_buffer_size", strprintf("%lld", (long long)o.file_buffer_size));
  info.set("pack_buffer_size",
           strprintf("%lld", (long long)o.pack_buffer_size));
  info.set("cb_nodes", strprintf("%d", o.io_procs));
  info.set("romio_cb_write", o.cb_write ? "enable" : "disable");
  info.set("romio_cb_read", o.cb_read ? "enable" : "disable");
  info.set("romio_ds_write", sieving_name(o.ds_write));
  info.set("romio_ds_read", sieving_name(o.ds_read));
  info.set("llio_sieve_min_fill", strprintf("%.3f", o.sieve_min_fill));
  info.set("llio_merge_contig", merge_contig_name(o.merge_contig));
  info.set("llio_pipeline_depth", strprintf("%d", o.pipeline_depth));
  info.set("llio_iov_batch_max", strprintf("%lld", (long long)o.iov_batch_max));
  info.set("llio_zerocopy", zerocopy_name(o.zerocopy));
  info.set("llio_zerocopy_min_run",
           strprintf("%lld", (long long)o.zerocopy_min_run));
  info.set("llio_zerocopy_max_runs",
           strprintf("%lld", (long long)o.zerocopy_max_runs));
  info.set("llio_pack_threads", strprintf("%d", o.pack_threads));
  info.set("llio_pack_parallel_min",
           strprintf("%lld", (long long)o.pack_parallel_min));
  info.set("llio_pack_plan", o.pack_plan ? "on" : "off");
  // psrv/net hints appear only when set away from their defaults (they
  // configure the harness-built backend, not the engines).
  if (o.psrv_servers > 0)
    info.set("llio_psrv_servers", strprintf("%d", o.psrv_servers));
  if (o.psrv_queue_depth > 0)
    info.set("llio_psrv_queue_depth", strprintf("%d", o.psrv_queue_depth));
  if (o.psrv_request != "contig") info.set("llio_psrv_request", o.psrv_request);
  if (o.psrv_session_weight > 0)
    info.set("llio_psrv_session_weight",
             strprintf("%d", o.psrv_session_weight));
  if (o.psrv_cache) info.set("llio_psrv_cache", "on");
  if (o.psrv_lease_ms > 0)
    info.set("llio_psrv_lease_ms", strprintf("%d", o.psrv_lease_ms));
  if (o.posix_qd > 1) info.set("llio_posix_qd", strprintf("%d", o.posix_qd));
  if (o.posix_direct) info.set("llio_posix_direct", "on");
  if (o.stripe_rotate) info.set("llio_stripe_rotate", "on");
  if (!o.backend.empty()) info.set("llio_backend", o.backend);
  if (!o.net_model.empty()) info.set("llio_net_model", o.net_model);
  // Observability hints appear only when explicitly set: unset means
  // "leave the process-global tracer/registry alone".
  if (o.trace) info.set("llio_trace", obs::trace_level_name(*o.trace));
  if (o.trace_file) info.set("llio_trace_file", *o.trace_file);
  if (o.metrics) info.set("llio_metrics", *o.metrics ? "on" : "off");
  if (!o.report_path.empty()) info.set("llio_report", o.report_path);
  // Adaptive hints appear only when the layer is engaged; off with the
  // default knobs is the (hint-free) static behavior.
  if (o.adaptive != Adaptive::Off) {
    info.set("llio_adaptive", adaptive_name(o.adaptive));
    if (!o.adaptive_policy.empty())
      info.set("llio_adaptive_policy", o.adaptive_policy);
    info.set("llio_adaptive_epsilon", strprintf("%.4f", o.adaptive_epsilon));
    info.set("llio_adaptive_window", strprintf("%d", o.adaptive_window));
  }
  if (o.obs_sample) info.set("llio_obs_sample", *o.obs_sample ? "on" : "off");
  if (o.obs_ring > 0) info.set("llio_obs_ring", strprintf("%d", o.obs_ring));
  return info;
}

}  // namespace llio::mpiio
