// MPI_Info-style string hints, mapped onto mpiio::Options.
//
// Recognized keys (ROMIO-compatible names where one exists):
//   llio_method          "listless" | "list-based"
//   cb_buffer_size       two-phase / sieving file buffer, bytes
//   ind_rd_buffer_size / ind_wr_buffer_size
//                        accepted aliases for the same buffer
//   pack_buffer_size     pack buffer, bytes
//   cb_nodes             number of I/O processes (0 = all)
//   romio_cb_write / romio_cb_read
//                        "enable" | "disable" | "automatic"
//   romio_ds_write / romio_ds_read
//                        "enable" (always sieve) | "disable" (direct) |
//                        "automatic" (fill-ratio heuristic, paper §5)
//   llio_sieve_min_fill  fill-ratio threshold in [0, 1] for "automatic"
//   llio_merge_contig    "auto" (exact mergeview analysis: skip the
//                        collective-write pre-read on hole-free windows,
//                        bypass the exchange for dense disjoint ranges) |
//                        "off" (always pre-read dirty windows) |
//                        "force" (never pre-read; unsafe on holey views)
//   llio_merge_opt       deprecated alias: "enable" = auto, "disable" = off
//   llio_pipeline_depth  collective windows in flight on the IOP side
//                        (0 = serial two-phase, >= 2 overlaps file I/O
//                        with gather/scatter)
//   llio_iov_batch_max   max segments per vectored file access in the
//                        direct (non-sieving) paths, count >= 1
//   llio_trace           "off" | "spans" (engine phases, pipeline
//                        windows) | "full" (adds per-file-op, comm, and
//                        pack-kernel spans) — sets the process-global
//                        tracer at open
//   llio_trace_file      path the Chrome trace JSON is written to at
//                        process exit
//   llio_metrics         "on" | "off" — process-global metrics registry
//                        (latency/size histograms, counters)
//
// Unknown keys are preserved but ignored (MPI_Info semantics).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "mpiio/options.hpp"

namespace llio::mpiio {

class Info {
 public:
  Info() = default;
  Info(std::initializer_list<std::pair<const std::string, std::string>> kv)
      : entries_(kv) {}

  void set(const std::string& key, const std::string& value) {
    entries_[key] = value;
  }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  bool erase(const std::string& key) { return entries_.erase(key) > 0; }

  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

/// Apply recognized hints on top of `base`; throws Errc::InvalidArgument
/// for recognized keys with malformed values.
Options apply_info(const Info& info, Options base);

/// Render the effective options back as hints (File::info()).
Info options_to_info(const Options& o);

}  // namespace llio::mpiio
