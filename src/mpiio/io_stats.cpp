#include "mpiio/io_stats.hpp"

#include "common/format.hpp"

namespace llio::mpiio {

std::string format_stats(const IoOpStats& s) {
  std::string out;
  out += strprintf("total            %10.6f s\n", s.total_s);
  out += strprintf("  list build     %10.6f s\n", s.list_build_s);
  out += strprintf("  copy           %10.6f s\n", s.copy_s);
  out += strprintf("  file I/O       %10.6f s\n", s.file_s);
  out += strprintf("  rmw preread    %10.6f s\n", s.preread_s);
  out += strprintf("  exchange       %10.6f s\n", s.exchange_s);
  out += strprintf("  merge analysis %10.6f s\n", s.merge_analysis_s);
  out += strprintf("  overlap        %10.6f s\n", s.overlap_s);
  out += strprintf("  io wait        %10.6f s\n", s.io_wait_s);
  out += strprintf("bytes moved      %lld\n", (long long)s.bytes_moved);
  out += strprintf("file read        %lld B in %llu ops\n",
                   (long long)s.file_read_bytes,
                   (unsigned long long)s.file_read_ops);
  out += strprintf("file write       %lld B in %llu ops\n",
                   (long long)s.file_write_bytes,
                   (unsigned long long)s.file_write_ops);
  out += strprintf("list sent        %lld B\n", (long long)s.list_bytes_sent);
  out += strprintf("data sent        %lld B\n", (long long)s.data_bytes_sent);
  out += strprintf("list memory      %lld B\n", (long long)s.list_mem_bytes);
  out += strprintf("preread skipped  %llu windows\n",
                   (unsigned long long)s.preread_skipped_windows);
  out += strprintf("merge contig     %llu ops\n",
                   (unsigned long long)s.merge_contig_ops);
  out += strprintf("zerocopy         %llu windows (%llu staged fallback), "
                   "%llu runs, %lld B saved\n",
                   (unsigned long long)s.zerocopy_windows,
                   (unsigned long long)s.staged_fallback_windows,
                   (unsigned long long)s.iov_runs,
                   (long long)s.staging_bytes_saved);
  out += strprintf("pack threads     %llu used, %llu slices",
                   (unsigned long long)s.pack_threads_used,
                   (unsigned long long)s.pack_slices);
  if (s.pack_slices > 0 && s.pack_slice_total_s > 0) {
    const double mean =
        s.pack_slice_total_s / static_cast<double>(s.pack_slices);
    out += strprintf(" (slice max/mean %.2f)", s.pack_slice_max_s / mean);
  }
  out += "\n";
  out += strprintf("pack plan        %llu hits / %llu misses\n",
                   (unsigned long long)s.plan_hits,
                   (unsigned long long)s.plan_misses);
  out += strprintf("async qd         %llu ops, peak %llu in flight\n",
                   (unsigned long long)s.async_file_ops,
                   (unsigned long long)s.async_inflight_peak);
  return out;
}

}  // namespace llio::mpiio
