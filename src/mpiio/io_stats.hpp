// Per-operation statistics: the overhead decomposition of paper §2.4/§3.3.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace llio::mpiio {

struct IoOpStats {
  double total_s = 0;       ///< wall time of the whole operation
  double list_build_s = 0;  ///< ol-list flatten / clip / merge time
  double copy_s = 0;        ///< pack/unpack/per-tuple copy time
  double file_s = 0;        ///< time in pread/pwrite
  double exchange_s = 0;    ///< time in communication calls
  double overlap_s = 0;     ///< worker-thread file time hidden behind the
                            ///< compute thread (collective pipeline only)
  double io_wait_s = 0;     ///< compute-thread time blocked waiting on the
                            ///< pipeline's I/O worker
  double preread_s = 0;     ///< the read-modify-write pre-read share of
                            ///< file_s (collective write windows)

  Off bytes_moved = 0;       ///< user payload bytes
  Off file_read_bytes = 0;   ///< bytes actually read from storage
  Off file_write_bytes = 0;  ///< bytes actually written to storage
  std::uint64_t file_read_ops = 0;
  std::uint64_t file_write_ops = 0;

  Off list_bytes_sent = 0;  ///< ol-list exchange volume (list-based only)
  Off data_bytes_sent = 0;  ///< data exchange volume (collective)
  Off list_mem_bytes = 0;   ///< peak ol-list memory this operation

  /// Mergeview contiguity analysis (paper §3.2.4).
  std::uint64_t preread_skipped_windows = 0;  ///< RMW pre-reads elided
  double merge_analysis_s = 0;  ///< time in the hole-freeness analysis
                                ///< (~0 on a MergeCache hit)
  std::uint64_t merge_contig_ops = 0;  ///< operations that took the
                                       ///< dense-disjoint bypass (the
                                       ///< two-phase exchange was skipped)

  /// Zero-copy descriptor I/O (llio_zerocopy).
  std::uint64_t zerocopy_windows = 0;  ///< dense windows/messages that went
                                       ///< straight from user memory to the
                                       ///< file or wire (no staging copy)
  std::uint64_t staged_fallback_windows = 0;  ///< windows that wanted
                                              ///< zero-copy but staged (run
                                              ///< budget or plan decline)
  std::uint64_t iov_runs = 0;  ///< descriptor entries shipped zero-copy
  Off staging_bytes_saved = 0;  ///< bytes that skipped a staging copy

  /// Parallel FOTF pack/unpack (navigation slicing + plan cache).
  std::uint64_t pack_threads_used = 0;  ///< max slices any one job ran with
  std::uint64_t plan_hits = 0;    ///< pack-plan replays of a cached plan
  std::uint64_t plan_misses = 0;  ///< plan compiles (or declined compiles)
  std::uint64_t pack_slices = 0;  ///< parallel slices executed
  double pack_slice_max_s = 0;    ///< slowest single slice
  double pack_slice_total_s = 0;  ///< summed slice time; imbalance =
                                  ///< max / (total / slices)

  /// Async queue-depth backend (llio_posix_qd / StripeLayout.queue_depth).
  std::uint64_t async_file_ops = 0;  ///< operations submitted to an AsyncIo
                                     ///< engine during this op
  std::uint64_t async_inflight_peak = 0;  ///< engine's peak concurrent ops

  IoOpStats& operator+=(const IoOpStats& o) {
    total_s += o.total_s;
    list_build_s += o.list_build_s;
    copy_s += o.copy_s;
    file_s += o.file_s;
    exchange_s += o.exchange_s;
    overlap_s += o.overlap_s;
    io_wait_s += o.io_wait_s;
    preread_s += o.preread_s;
    bytes_moved += o.bytes_moved;
    file_read_bytes += o.file_read_bytes;
    file_write_bytes += o.file_write_bytes;
    file_read_ops += o.file_read_ops;
    file_write_ops += o.file_write_ops;
    list_bytes_sent += o.list_bytes_sent;
    data_bytes_sent += o.data_bytes_sent;
    list_mem_bytes = list_mem_bytes > o.list_mem_bytes ? list_mem_bytes
                                                       : o.list_mem_bytes;
    preread_skipped_windows += o.preread_skipped_windows;
    merge_analysis_s += o.merge_analysis_s;
    merge_contig_ops += o.merge_contig_ops;
    zerocopy_windows += o.zerocopy_windows;
    staged_fallback_windows += o.staged_fallback_windows;
    iov_runs += o.iov_runs;
    staging_bytes_saved += o.staging_bytes_saved;
    pack_threads_used = pack_threads_used > o.pack_threads_used
                            ? pack_threads_used
                            : o.pack_threads_used;
    plan_hits += o.plan_hits;
    plan_misses += o.plan_misses;
    pack_slices += o.pack_slices;
    pack_slice_max_s = pack_slice_max_s > o.pack_slice_max_s
                           ? pack_slice_max_s
                           : o.pack_slice_max_s;
    pack_slice_total_s += o.pack_slice_total_s;
    async_file_ops += o.async_file_ops;
    async_inflight_peak = async_inflight_peak > o.async_inflight_peak
                              ? async_inflight_peak
                              : o.async_inflight_peak;
    return *this;
  }
};

/// Human-readable multi-line rendering of the decomposition (benches,
/// CLI --stats).
std::string format_stats(const IoOpStats& s);

}  // namespace llio::mpiio
