#include "mpiio/mergeview.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <queue>
#include <utility>

#include "common/error.hpp"
#include "fotf/cursor.hpp"
#include "fotf/navigate.hpp"

namespace llio::mpiio {

namespace {

/// Per-contribution analysis state: the segment cursor is built lazily —
/// only windows that survive the cheap sum test pay for it.
struct ViewState {
  const ViewContribution* c;
  std::unique_ptr<fotf::SegmentCursor> cur;
  Off prev_s = 0;  ///< clamped stream offset at the previous window edge
};

/// Stream bytes of `c` with absolute file offset < abs, clamped to the
/// rank's actual access interval.
Off clamped_below(const ViewContribution& c, Off abs) {
  return std::clamp(fotf::data_below(c.filetype, abs - c.disp), c.s_lo,
                    c.s_hi);
}

fotf::SegmentCursor& cursor_of(ViewState& st) {
  if (!st.cur) {
    // Enough filetype instances to seek anywhere in [0, s_hi].
    const Off size = st.c->filetype->size();
    const Off instances = ceil_div(st.c->s_hi, std::max<Off>(size, 1)) + 1;
    st.cur = std::make_unique<fotf::SegmentCursor>(st.c->filetype, instances);
  }
  return *st.cur;
}

/// Exact hole test for window [wlo, whi): k-way merge of the contributing
/// cursors' segment streams (each delivered in increasing file order by
/// monotonicity), advancing a coverage frontier; the first gap decides.
/// slices[i] is contribution i's clamped stream interval for this window.
bool window_union_dense(Off wlo, Off whi, std::vector<ViewState>& active,
                        const std::vector<std::pair<Off, Off>>& slices) {
  struct Seg {
    Off start, end;
    std::size_t idx;
  };
  const auto later = [](const Seg& a, const Seg& b) {
    return a.start > b.start;
  };
  std::priority_queue<Seg, std::vector<Seg>, decltype(later)> heap(later);
  for (std::size_t i = 0; i < active.size(); ++i) {
    const auto [s1, s2] = slices[i];
    if (s2 <= s1) continue;
    fotf::SegmentCursor& cur = cursor_of(active[i]);
    cur.seek(s1);
    if (cur.at_end()) continue;
    // mem_start(s1) >= wlo - disp, so no segment starts before the window.
    const Off start = active[i].c->disp + cur.run_mem();
    const Off len = std::min(cur.run_len(), s2 - cur.stream_pos());
    heap.push({start, start + len, i});
  }
  Off frontier = wlo;
  while (!heap.empty() && frontier < whi) {
    const Seg top = heap.top();
    heap.pop();
    if (top.start > frontier) return false;  // hole
    frontier = std::max(frontier, std::min(top.end, whi));
    fotf::SegmentCursor& cur = *active[top.idx].cur;
    cur.consume(top.end - top.start);
    const Off limit = slices[top.idx].second;
    if (!cur.at_end() && cur.stream_pos() < limit) {
      const Off start = active[top.idx].c->disp + cur.run_mem();
      const Off len = std::min(cur.run_len(), limit - cur.stream_pos());
      heap.push({start, start + len, top.idx});
    }
  }
  return frontier >= whi;
}

}  // namespace

DomainWindows analyze_view_domain(
    Off dom_lo, Off dom_hi, Off win,
    const std::vector<ViewContribution>& contribs) {
  LLIO_REQUIRE(win >= 1 && dom_hi >= dom_lo, Errc::InvalidArgument,
               "mergeview: bad domain/window");
  DomainWindows out;
  out.lo = dom_lo;
  out.hi = dom_hi;
  out.win = win;
  const Off nwin = dom_hi > dom_lo ? ceil_div(dom_hi - dom_lo, win) : 0;
  out.dense.assign(to_size(nwin), 0);
  if (nwin == 0) return out;

  std::vector<ViewState> active;
  for (const ViewContribution& c : contribs) {
    if (c.s_hi <= c.s_lo || !c.filetype || c.filetype->size() <= 0) continue;
    active.push_back({&c, nullptr, clamped_below(c, dom_lo)});
  }

  // Fast path: one rank's unclamped view already tiles the whole domain
  // hole-free — two navigation calls settle every window at once.
  for (const ViewState& st : active) {
    const ViewContribution& c = *st.c;
    const Off raw_lo = fotf::data_below(c.filetype, dom_lo - c.disp);
    const Off raw_hi = fotf::data_below(c.filetype, dom_hi - c.disp);
    if (raw_lo >= c.s_lo && raw_hi <= c.s_hi &&
        fotf::window_dense(c.filetype, dom_lo - c.disp, dom_hi - c.disp)) {
      std::fill(out.dense.begin(), out.dense.end(), std::uint8_t{1});
      out.all_dense = true;
      return out;
    }
  }

  std::vector<std::pair<Off, Off>> slices(active.size());
  bool all = true;
  for (Off w = 0; w < nwin; ++w) {
    const Off wlo = dom_lo + w * win;
    const Off whi = std::min(dom_hi, wlo + win);
    const Off size = whi - wlo;
    Off sum = 0;
    Off best = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      const Off s1 = active[i].prev_s;
      const Off s2 = clamped_below(*active[i].c, whi);
      active[i].prev_s = s2;
      slices[i] = {s1, s2};
      sum += s2 - s1;
      best = std::max(best, s2 - s1);
    }
    bool dense;
    if (best == size) {
      // A single rank lands `size` distinct stream bytes in a window of
      // `size` bytes: every offset is covered (monotone views).
      dense = true;
    } else if (sum < size) {
      dense = false;  // even the multiset of contributions is too small
    } else {
      dense = window_union_dense(wlo, whi, active, slices);
    }
    out.dense[to_size(w)] = dense ? 1 : 0;
    all = all && dense;
  }
  out.all_dense = all;
  return out;
}

DomainWindows analyze_tuple_domain(
    Off dom_lo, Off dom_hi, Off win,
    const std::vector<std::span<const dt::OlTuple>>& lists) {
  LLIO_REQUIRE(win >= 1 && dom_hi >= dom_lo, Errc::InvalidArgument,
               "mergeview: bad domain/window");
  DomainWindows out;
  out.lo = dom_lo;
  out.hi = dom_hi;
  out.win = win;
  const Off nwin = dom_hi > dom_lo ? ceil_div(dom_hi - dom_lo, win) : 0;
  out.dense.assign(to_size(nwin), 0);
  if (nwin == 0) return out;

  // Analysis-local cursors: the caller's tuple-consumption state (used by
  // the actual scatter) must stay untouched.
  struct TupleState {
    std::span<const dt::OlTuple> tuples;
    std::size_t idx = 0;
    Off within = 0;
  };
  std::vector<TupleState> st;
  for (const auto& l : lists)
    if (!l.empty()) st.push_back({l, 0, 0});

  std::vector<std::pair<Off, Off>> segs;
  bool all = true;
  for (Off w = 0; w < nwin; ++w) {
    const Off wlo = dom_lo + w * win;
    const Off whi = std::min(dom_hi, wlo + win);
    const Off size = whi - wlo;
    segs.clear();
    Off sum = 0;
    Off best = 0;
    for (TupleState& s : st) {
      Off contrib = 0;
      while (s.idx < s.tuples.size()) {
        const dt::OlTuple& tp = s.tuples[s.idx];
        const Off off = tp.off + s.within;
        if (off >= whi) break;
        LLIO_ASSERT(off >= wlo, "analyze_tuple_domain: tuple behind window");
        const Off cut = std::min(tp.len - s.within, whi - off);
        segs.push_back({off, off + cut});
        contrib += cut;
        s.within += cut;
        if (s.within == tp.len) {
          ++s.idx;
          s.within = 0;
        }
        if (off + cut == whi) break;
      }
      sum += contrib;
      best = std::max(best, contrib);
    }
    bool dense;
    if (best == size) {
      dense = true;  // one sender's (non-overlapping) tuples fill it
    } else if (sum < size) {
      dense = false;
    } else {
      std::sort(segs.begin(), segs.end());
      Off frontier = wlo;
      dense = true;
      for (const auto& [a, b] : segs) {
        if (a > frontier) {
          dense = false;
          break;
        }
        frontier = std::max(frontier, b);
      }
      dense = dense && frontier >= whi;
    }
    out.dense[to_size(w)] = dense ? 1 : 0;
    all = all && dense;
  }
  out.all_dense = all;
  return out;
}

bool ranges_dense_disjoint(const std::vector<AccessRange>& ranges) {
  std::vector<std::pair<Off, Off>> spans;
  for (const AccessRange& r : ranges) {
    if (r.nbytes <= 0) continue;
    if (r.abs_hi - r.abs_lo != r.nbytes) return false;
    spans.push_back({r.abs_lo, r.abs_hi});
  }
  if (spans.empty()) return false;
  std::sort(spans.begin(), spans.end());
  for (std::size_t i = 1; i < spans.size(); ++i)
    if (spans[i].first < spans[i - 1].second) return false;
  return true;
}

bool ranges_dense(const std::vector<AccessRange>& ranges) {
  bool any = false;
  for (const AccessRange& r : ranges) {
    if (r.nbytes <= 0) continue;
    if (r.abs_hi - r.abs_lo != r.nbytes) return false;
    any = true;
  }
  return any;
}

const DomainWindows& MergeCache::get(
    Key key, const std::function<DomainWindows()>& compute) {
  const auto same = [&](const Entry& e) {
    return e.key.epoch == key.epoch && e.key.dom_lo == key.dom_lo &&
           e.key.dom_hi == key.dom_hi && e.key.win == key.win &&
           e.key.ranges.size() == key.ranges.size() &&
           (key.ranges.empty() ||
            std::memcmp(e.key.ranges.data(), key.ranges.data(),
                        key.ranges.size() * sizeof(AccessRange)) == 0);
  };
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (same(entries_[i])) {
      ++hits_;
      std::rotate(entries_.begin(), entries_.begin() + static_cast<long>(i),
                  entries_.begin() + static_cast<long>(i) + 1);
      return entries_.front().value;
    }
  }
  ++misses_;
  entries_.insert(entries_.begin(), Entry{std::move(key), compute()});
  if (entries_.size() > kCapacity) entries_.pop_back();
  return entries_.front().value;
}

}  // namespace llio::mpiio
