// Mergeview contiguity analysis (paper §3.2.4): decide, from the ranks'
// fileviews, whether a collective write tiles each file-buffer window of
// an IOP's file domain without holes.  Hole-free windows need no
// read-modify-write pre-read; when additionally every rank's restriction
// to its access range is one contiguous file extent, the whole
// pack+alltoall exchange can be bypassed with direct writes.
//
// Two front-ends share the window-union core:
//  * analyze_view_domain — listless engine: runs a k-way merge over
//    fotf::SegmentCursors of the *cached* remote fileviews (§3.2.3),
//    never materializing a global ol-list.  Per window the test is the
//    paper's "ff_size(mergetype, ...) == extent" evaluated exactly.
//  * analyze_tuple_domain — list engine: the same union over the
//    received absolute-offset ol-lists.
//
// Verdicts are memoized in a small MergeCache keyed by (view epoch,
// domain, window size, access ranges) so repeated timestep collectives
// over an unchanged view pay the analysis once.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.hpp"
#include "dtype/datatype.hpp"
#include "dtype/flatten.hpp"
#include "mpiio/twophase.hpp"

namespace llio::mpiio {

/// One rank's write contribution as seen by the analysis: its (cached)
/// fileview and the stream interval [s_lo, s_hi) it actually accesses.
struct ViewContribution {
  dt::Type filetype;  ///< normalized, navigable filetype
  Off disp = 0;       ///< view displacement (absolute = disp + layout)
  Off s_lo = 0;       ///< first stream byte of the rank's access
  Off s_hi = 0;       ///< one past the last stream byte
};

/// Per-window hole-freeness verdict for one IOP file domain.
struct DomainWindows {
  Off lo = 0;   ///< domain start
  Off hi = 0;   ///< domain end
  Off win = 0;  ///< window size (file buffer size)
  std::vector<std::uint8_t> dense;  ///< one flag per window, in file order
  bool all_dense = false;

  /// Verdict for the window starting at `win_lo` (a domain-window
  /// boundary: lo + k * win).
  bool dense_at(Off win_lo) const {
    const std::size_t i = to_size((win_lo - lo) / win);
    return i < dense.size() && dense[i] != 0;
  }

  Off dense_count() const {
    Off n = 0;
    for (std::uint8_t d : dense) n += d;
    return n;
  }
};

/// Listless-path analysis: k-way SegmentCursor merge over the cached
/// fileviews.  Contributions with s_hi <= s_lo are ignored.
DomainWindows analyze_view_domain(Off dom_lo, Off dom_hi, Off win,
                                  const std::vector<ViewContribution>& contribs);

/// List-path analysis: the same per-window union over received
/// absolute-offset tuple lists (each list sorted and clipped to the
/// domain, as produced by the AP-side clipping).
DomainWindows analyze_tuple_domain(
    Off dom_lo, Off dom_hi, Off win,
    const std::vector<std::span<const dt::OlTuple>>& lists);

/// True when every participating range is a single contiguous file
/// extent (abs_hi - abs_lo == nbytes) and the ranges are pairwise
/// disjoint: the collective write can skip pack+alltoall entirely and
/// each rank writes its own extent directly (deterministically — no two
/// ranks touch the same byte).
bool ranges_dense_disjoint(const std::vector<AccessRange>& ranges);

/// Read-side relaxation: every participating range is one contiguous
/// extent, but overlap between readers is allowed (concurrent reads of
/// the same bytes are harmless) — each rank reads its extent directly
/// and the two-phase exchange is skipped.
bool ranges_dense(const std::vector<AccessRange>& ranges);

/// Small MRU memo for domain verdicts.  Keys carry the full access-range
/// vector: identical ranges under an unchanged view (same epoch) yield
/// identical verdicts, which is exactly the repeated-timestep pattern.
class MergeCache {
 public:
  struct Key {
    std::uint64_t epoch = 0;
    Off dom_lo = 0;
    Off dom_hi = 0;
    Off win = 0;
    std::vector<AccessRange> ranges;
  };

  /// Return the cached verdict for `key`, computing and storing it via
  /// `compute` on a miss.  The reference stays valid until the next get().
  const DomainWindows& get(Key key,
                           const std::function<DomainWindows()>& compute);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  static constexpr std::size_t kCapacity = 8;
  struct Entry {
    Key key;
    DomainWindows value;
  };
  std::vector<Entry> entries_;  ///< most recently used first
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace llio::mpiio
