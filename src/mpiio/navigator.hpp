// The two per-engine abstractions the MPI-IO layer composes:
//
//  * ViewNav   - navigation and data movement through a fileview's stream.
//                The listless implementation (core/) runs in O(depth) per
//                positioning call and uses flattening-on-the-fly copies;
//                the list-based implementation (listio/) traverses an
//                explicit ol-list (O(N_block) positioning, per-tuple
//                copies) — exactly the contrast the paper measures.
//
//  * StreamMover - movement between the user's (possibly non-contiguous)
//                memory buffer and its dense packed stream, indexed by
//                access-relative stream offsets [0, nbytes).
//
// Conventions: "mem" offsets are file-layout offsets relative to the view
// origin (the file displacement is added by the caller); "stream" offsets
// are view-stream byte positions.
#pragma once

#include <cstring>
#include <functional>
#include <vector>

#include "common/bytes.hpp"
#include "dtype/datatype.hpp"

namespace llio::mpiio {

/// Caller policy for StreamMover::mem_runs(): a hard cap on descriptor
/// entries plus the average run length below which descriptor I/O loses
/// to the strided pack kernels (per-segment overhead dominates).
struct RunBudget {
  std::size_t max_runs = 1 << 16;
  Off min_avg_run = 512;
};

class ViewNav {
 public:
  virtual ~ViewNav() = default;

  /// Layout offset where stream byte s resides (start convention).
  virtual Off stream_to_file_start(Off s) = 0;

  /// Layout offset one past stream byte s-1 (end convention).
  virtual Off stream_to_file_end(Off s) = 0;

  /// Stream bytes with layout offset strictly below `mem`.
  virtual Off file_to_stream(Off mem) = 0;

  /// Copy stream bytes [s, s+n) from dense `src` into the window buffer
  /// `win`, whose first byte holds layout offset `bias`.
  virtual void scatter(Byte* win, Off bias, Off s, const Byte* src, Off n) = 0;

  /// Copy stream bytes [s, s+n) from the window into dense `dst`.
  virtual void gather(Byte* dst, const Byte* win, Off bias, Off s, Off n) = 0;

  /// Visit the contiguous runs of stream bytes [s, s+n) in order:
  /// fn(layout offset, stream offset, run length).  Used by the direct
  /// (non-sieving) access strategy — one file access per run.
  virtual void for_each_segment(
      Off s, Off n, const std::function<void(Off, Off, Off)>& fn) = 0;
};

class StreamMover {
 public:
  virtual ~StreamMover() = default;

  /// Pack stream bytes [s, s+n) of the user buffer into dense `dst`.
  virtual void to_stream(Byte* dst, Off s, Off n) = 0;

  /// Unpack dense `src` into stream bytes [s, s+n) of the user buffer.
  virtual void from_stream(const Byte* src, Off s, Off n) = 0;

  /// If stream bytes [s, s+n) are contiguous in user memory, return their
  /// address (pack side); else nullptr and the caller uses to_stream.
  virtual const Byte* direct(Off s, Off n) const {
    (void)s;
    (void)n;
    return nullptr;
  }

  /// Mutable variant for the unpack side.
  virtual Byte* direct_mut(Off s, Off n) {
    (void)s;
    (void)n;
    return nullptr;
  }

  /// Describe stream bytes [s, s+n) as contiguous user-memory runs
  /// appended to `out` — the zero-copy descriptor.  Returns false (out
  /// untouched) when no cheap run form exists under `budget`; the caller
  /// then stages through to_stream/from_stream.  The spans alias the
  /// user buffer mutably (the unpack side scatters into them); pack-side
  /// callers only read them.
  virtual bool mem_runs(Off s, Off n, const RunBudget& budget,
                        std::vector<ByteSpan>& out) {
    (void)s;
    (void)n;
    (void)budget;
    (void)out;
    return false;
  }
};

/// Mover for contiguous memtypes: the stream *is* the buffer.
class ContigMover final : public StreamMover {
 public:
  /// `base` is the user buffer; data begins at true_lb(memtype).
  ContigMover(const void* base, Off true_lb)
      : base_(const_cast<Byte*>(as_bytes(base)) + true_lb) {}

  void to_stream(Byte* dst, Off s, Off n) override {
    std::memcpy(dst, base_ + s, to_size(n));
  }
  void from_stream(const Byte* src, Off s, Off n) override {
    std::memcpy(base_ + s, src, to_size(n));
  }
  const Byte* direct(Off s, Off) const override { return base_ + s; }
  Byte* direct_mut(Off s, Off) override { return base_ + s; }
  bool mem_runs(Off s, Off n, const RunBudget&,
                std::vector<ByteSpan>& out) override {
    out.push_back(ByteSpan(base_ + s, to_size(n)));
    return true;
  }

 private:
  Byte* base_;
};

}  // namespace llio::mpiio
