// Open-time options for an llio file handle.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "obs/trace.hpp"

namespace llio::mpiio {

/// Which non-contiguous-access implementation a file handle uses.
enum class Method {
  ListBased,  ///< ROMIO-style ol-lists (paper §2, the baseline)
  Listless,   ///< flattening-on-the-fly (paper §3, the contribution)
};

/// Independent non-contiguous access strategy (paper §5 discusses the
/// trade-off between data sieving and multiple direct file accesses).
enum class Sieving {
  Automatic,  ///< sieve when the access fills >= sieve_min_fill of its span
  Always,     ///< always sieve (the ROMIO default the paper measures)
  Never,      ///< one file access per contiguous block
};

/// Mergeview contiguity analysis for collective writes (paper §3.2.4):
/// decide per file-buffer window whether the combined accesses tile it
/// hole-free, so the read-modify-write pre-read can be skipped.
enum class MergeContig {
  Off,    ///< never elide the pre-read (every dirty window does RMW)
  Auto,   ///< exact per-window analysis; skip the pre-read when provably
          ///< hole-free, bypass pack+alltoall for dense disjoint accesses
  Force,  ///< assert density: never pre-read (unsafe on holey patterns —
          ///< gap bytes are clobbered with stale buffer contents)
};

/// Zero-copy descriptor I/O (paper-adjacent: Ching et al.'s list I/O
/// ships descriptors, not copied bytes): dense accesses whose memtype
/// materializes into few, long-enough memory runs hand user-memory
/// iovecs straight to preadv/pwritev and the wire, skipping the packed
/// staging buffer.
enum class Zerocopy {
  Off,   ///< always stage through packed buffers (the pre-zero-copy path)
  Auto,  ///< descriptor I/O when the run table fits the budget below
};

/// Measurement-driven per-operation self-tuning (hint llio_adaptive).
/// The adapt::Advisor replaces the static knobs below with per-collective
/// decisions — engine (list/listless/server-view route), pipeline_depth,
/// pack_threads, zerocopy, and the collective-buffer window — learned
/// from the obs sampling ring and phase histograms.
enum class Adaptive {
  Off,    ///< static knobs only: bit-identical to the pre-adaptive paths
  Auto,   ///< hysteresis policy: probe bounded by epsilon, switch only
          ///< after K consecutive losses by a margin (no flapping)
  Force,  ///< greedy policy: switch to the best-known arm immediately
          ///< (fast tracking, may flap under noise)
};

struct Options {
  Method method = Method::Listless;

  /// Data-sieving / two-phase file buffer size (ROMIO's ind_rd_buffer_size
  /// and cb_buffer_size analogue).
  Off file_buffer_size = 4 << 20;

  /// Pack buffer used when both memtype and filetype are non-contiguous.
  Off pack_buffer_size = 1 << 20;

  /// Number of I/O processes for collective access; 0 = every rank is an
  /// IOP (the common configuration in the paper's experiments).
  int io_procs = 0;

  /// Collective-write contiguity optimization: skip the pre-read of a file
  /// block when the combined accesses provably cover it, and bypass the
  /// two-phase exchange when every rank's access is one contiguous extent
  /// (paper §2.3 / §3.2.4).
  MergeContig merge_contig = MergeContig::Auto;

  /// Independent writes: skip the sieving pre-read when the window is
  /// fully covered by the access.
  bool sieve_skip_covered_read = true;

  /// Collective buffering (two-phase) on/off per direction; when off,
  /// collective calls degrade to independent accesses plus a barrier
  /// (ROMIO's romio_cb_write/read = disable).
  bool cb_write = true;
  bool cb_read = true;

  /// Independent access strategy per direction (romio_ds_write/read).
  Sieving ds_write = Sieving::Always;
  Sieving ds_read = Sieving::Always;

  /// Automatic mode: sieve when accessed bytes / spanned bytes >= this.
  double sieve_min_fill = 0.2;

  /// Collective two-phase pipelining: number of file-domain windows an IOP
  /// keeps in flight, with pread/pwrite running on a per-operation I/O
  /// worker thread while the compute thread gathers/scatters the previous
  /// window.  0 = fully serial (the pre-pipeline behavior, bit-identical);
  /// overlap needs >= 2.
  int pipeline_depth = 0;

  /// Max number of segments coalesced into one vectored file access
  /// (preadv/pwritev) by the direct (non-sieving) access paths.  Also
  /// seeded into the backend at open so every FileBackend (and the psrv
  /// list client) splits oversized batches identically.
  Off iov_batch_max = 64;

  /// Zero-copy descriptor I/O (hint llio_zerocopy = off|auto): dense
  /// windows skip the packed staging copy when the memtype's run table
  /// is cheap enough; holey or over-budget windows stage exactly as
  /// before.  Off reproduces the staged path byte-identically.
  Zerocopy zerocopy = Zerocopy::Auto;

  /// Decline descriptor I/O above this many memory runs per access
  /// (hint llio_zerocopy_max_runs) ...
  Off zerocopy_max_runs = 1 << 16;

  /// ... or below this average run length in bytes (hint
  /// llio_zerocopy_min_run): tiny runs move faster through the strided
  /// pack kernels than as per-segment iovec entries.
  Off zerocopy_min_run = 512;

  /// FOTF pack/unpack parallelism (hint llio_pack_threads): pack jobs of
  /// at least pack_parallel_min stream bytes are split into equal
  /// stream-byte slices on the process-wide worker pool (shared with the
  /// pipeline's I/O workers).  1 = serial, bit-identical to the
  /// pre-parallel path.
  int pack_threads = 1;

  /// Minimum job size (stream bytes) worth slicing (hint
  /// llio_pack_parallel_min).
  Off pack_parallel_min = 1 << 20;

  /// Compile each cached fileview's segment table into a PackPlan once
  /// and replay it on every window, instead of re-walking the type tree
  /// (hint llio_pack_plan = on/off).  Plans are recreated with the navs
  /// at every set_view, so they can never outlive their view epoch.
  bool pack_plan = true;

  /// File-server subsystem (psrv) selection, consumed by the harnesses
  /// that build the backend (psrv::make_server_file) — the engines see
  /// only the resulting pfs::FileBackend.  psrv_servers 0 = harness
  /// default; psrv_request picks the wire translation (contig|list|view).
  int psrv_servers = 0;
  int psrv_queue_depth = 0;
  std::string psrv_request = "contig";

  /// Multi-tenant psrv knobs: psrv_session_weight is this handle's
  /// fair-share weight on every server's scheduler rotation (hint
  /// llio_psrv_session_weight; 0 = default weight 1); psrv_cache turns
  /// on the lease-coherent client block cache (hint llio_psrv_cache);
  /// psrv_lease_ms overrides the read-lease term, measured in sim-clock
  /// ticks despite the conventional _ms suffix (hint llio_psrv_lease_ms;
  /// 0 = pool default).
  int psrv_session_weight = 0;
  bool psrv_cache = false;
  int psrv_lease_ms = 0;

  /// POSIX/striped backend layout tuning, consumed by the harnesses that
  /// build the backend (bench_common's named factory) — the engines see
  /// only the resulting pfs::FileBackend.  posix_qd is the AsyncIo queue
  /// depth per file (hint llio_posix_qd; 1 = the classic synchronous
  /// path, byte-identical); posix_direct engages O_DIRECT with aligned
  /// RMW at block edges (hint llio_posix_direct); stripe_rotate turns on
  /// FFS cylinder-group rotation for striped targets (hint
  /// llio_stripe_rotate).
  int posix_qd = 1;
  bool posix_direct = false;
  bool stripe_rotate = false;

  /// Named storage target for harness-built backends (hint llio_backend,
  /// env LLIO_BENCH_BACKEND as a bench-wide default): "mem" or
  /// "posix:<dir>" (anonymous scratch file in <dir>, configured by the
  /// posix_* knobs above).  Empty = the harness's own default.
  std::string backend = {};

  /// Named interconnect cost model (hint llio_net_model, see
  /// sim::named_cost_model); empty = whatever the harness configured.
  std::string net_model = {};

  /// Observability (hints llio_trace / llio_trace_file / llio_metrics).
  /// The tracer and metrics registry are process-global; File::open
  /// applies any value set here on top of the environment-seeded
  /// defaults (LLIO_TRACE / LLIO_TRACE_FILE / LLIO_METRICS).  Unset =
  /// leave the global setting alone.  When tracing sits at Full or
  /// metrics are on, the backend is wrapped in a pfs::TracedFile so
  /// individual file accesses are recorded.
  std::optional<obs::TraceLevel> trace = std::nullopt;
  std::optional<std::string> trace_file = std::nullopt;
  std::optional<bool> metrics = std::nullopt;

  /// Job-level observability report (hint llio_report): File::close()
  /// aggregates every rank's phase decomposition, counters, and
  /// histograms into an obs::JobReport, and rank 0 writes its JSON
  /// (schema llio_report/v1) to this path.  Empty = close() still
  /// aggregates and returns the report, but writes nothing.
  std::string report_path = {};

  /// Adaptive policy layer (hints llio_adaptive / llio_adaptive_policy /
  /// llio_adaptive_epsilon / llio_adaptive_window).  Off = every knob
  /// above is static, byte-identical to the pre-adaptive behavior.
  /// Auto/Force enable per-collective decisions; adaptive_policy can pin
  /// the policy by name ("static" | "greedy" | "hysteresis", empty = the
  /// mode's default).  adaptive_epsilon bounds exploration (fraction of
  /// ops spent probing a non-incumbent arm); adaptive_window is K, the
  /// consecutive-loss count hysteresis requires before switching.
  Adaptive adaptive = Adaptive::Off;
  std::string adaptive_policy = {};
  double adaptive_epsilon = 1.0 / 16.0;
  int adaptive_window = 3;

  /// Always-on sampling ring (hints llio_obs_sample / llio_obs_ring).
  /// Process-global like the tracer knobs; File::open applies any value
  /// set here on top of the environment-seeded defaults (LLIO_OBS_SAMPLE
  /// / LLIO_OBS_RING).  Unset / 0 = leave the global setting alone.
  std::optional<bool> obs_sample = std::nullopt;
  int obs_ring = 0;
};

const char* method_name(Method m) noexcept;
const char* merge_contig_name(MergeContig m) noexcept;
const char* zerocopy_name(Zerocopy z) noexcept;
const char* adaptive_name(Adaptive a) noexcept;

}  // namespace llio::mpiio
