#include "mpiio/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <exception>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "common/worker_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pfs/range_lock.hpp"

namespace llio::mpiio {

namespace {

/// What a worker-side pread/pwrite contributes to IoOpStats, returned
/// through the job's future and folded in on the compute thread (the
/// shared IoOpStats is never touched from a worker).
struct FileJobStats {
  double seconds = 0;
  double preread_seconds = 0;  ///< the RMW share of `seconds`
  Off read_bytes = 0;
  Off write_bytes = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
};

FileJobStats read_job(pfs::FileBackend& file, Off lo, ByteSpan buf, Off win,
                      bool rmw) {
  FileJobStats s;
  obs::Span span("preread");
  StopWatch w;
  w.start();
  const Off got = file.pread(lo, buf);
  w.stop();
  span.arg("win", win);
  span.arg("bytes", to_off(buf.size()));
  if (to_size(got) < buf.size())
    std::memset(buf.data() + got, 0, buf.size() - to_size(got));
  s.seconds = w.seconds();
  // A read ahead of a write-back is the RMW pre-read the mergeview
  // analysis tries to elide; a read-op window load is plain I/O.
  if (rmw) s.preread_seconds = s.seconds;
  s.read_bytes = got;
  s.read_ops = 1;
  return s;
}

FileJobStats write_job(pfs::FileBackend& file, Off lo, ConstByteSpan buf,
                       Off win) {
  FileJobStats s;
  obs::Span span("pwrite");
  StopWatch w;
  w.start();
  file.pwrite(lo, buf);
  w.stop();
  span.arg("win", win);
  span.arg("bytes", to_off(buf.size()));
  s.seconds = w.seconds();
  s.write_bytes = to_off(buf.size());
  s.write_ops = 1;
  return s;
}

void run_serial(SieveContext& ctx, Off buffer_bytes, const WindowSource& next,
                const WindowFill& fill) {
  ByteVec buf(to_size(buffer_bytes));
  WindowPlan plan;
  Off index = 0;
  while (next(plan)) {
    plan.index = index++;
    obs::Span span("window");
    span.arg("win", plan.index);
    const Off win = plan.hi - plan.lo;
    span.arg("bytes", win);
    if (plan.writeback && !plan.preread) ++ctx.stats.preread_skipped_windows;
    std::optional<pfs::ScopedRangeLock> lock;
    if (plan.lock) lock.emplace(ctx.locks, plan.lo, plan.hi);
    if (plan.preread) {
      // Same span vocabulary as the pipelined jobs, here on the compute
      // thread (tid 0): the explainer excludes these from worker overlap,
      // the critical-path pass counts them as the window's I/O exposure.
      obs::Span io_span("preread");
      io_span.arg("win", plan.index);
      io_span.arg("bytes", win);
      StopWatch w;
      w.start();
      timed_pread_zero_fill(ctx, plan.lo, ByteSpan(buf.data(), to_size(win)));
      w.stop();
      if (plan.writeback) ctx.stats.preread_s += w.seconds();
    }
    fill(plan, ByteSpan(buf.data(), to_size(win)));
    if (plan.writeback) {
      obs::Span io_span("pwrite");
      io_span.arg("win", plan.index);
      io_span.arg("bytes", win);
      timed_pwrite(ctx, plan.lo, ConstByteSpan(buf.data(), to_size(win)));
    }
  }
}

void run_pipelined(SieveContext& ctx, int depth, Off buffer_bytes,
                   const WindowSource& next, const WindowFill& fill) {
  struct Flight {
    WindowPlan plan;
    std::size_t buf = 0;
    bool locked = false;
    std::future<FileJobStats> io;  // pending pre-read or write-back
  };

  // I/O jobs run on the process-wide worker pool (shared with parallel
  // pack slices); the reservation guarantees `depth` concurrent workers
  // exist for the duration of this run.  Tracing is per-job: the track
  // guard routes the job's spans onto the owning rank's worker tracks
  // (tid 1.., below the compute row) and its destructor flushes the
  // thread-local event buffer, which a persistent pool thread would
  // otherwise hold back from snapshots.
  WorkerPool& pool = WorkerPool::shared();
  const WorkerPool::Reservation reserved = pool.reserve(depth);
  const int owner = obs::current_pid();
  auto submit_io = [&pool, owner](int tid,
                                  std::function<FileJobStats()> fn) {
    return pool.submit([owner, tid, fn = std::move(fn)] {
      std::optional<obs::ThreadTrackGuard> track;
      if (owner >= 0 && obs::trace_enabled())
        track.emplace(owner, tid, "", "io worker " + std::to_string(tid));
      return fn();
    });
  };
  std::vector<ByteVec> bufs(to_size(depth));
  for (ByteVec& b : bufs) b.resize(to_size(buffer_bytes));
  std::vector<std::size_t> free_bufs;
  for (std::size_t i = bufs.size(); i-- > 0;) free_bufs.push_back(i);

  std::deque<Flight> pending;  // produced, possibly pre-reading, not filled
  std::deque<Flight> writing;  // write-back in flight
  FileJobStats worker;         // everything the workers did
  double wait_s = 0;           // compute-thread time blocked on a future
  Off index = 0;               // sequential window number (for tracing)
  bool more = true;
  std::exception_ptr err;

  auto settle = [&](Flight& fl) {
    // Wait for the window's outstanding I/O (if any) and fold its stats
    // in; the wait doubles as the happens-before edge that hands the
    // buffer back to the compute thread.
    if (!fl.io.valid()) return;
    obs::Span span("io_wait");
    span.arg("win", fl.plan.index);
    StopWatch w;
    w.start();
    try {
      const FileJobStats s = fl.io.get();
      worker.seconds += s.seconds;
      worker.preread_seconds += s.preread_seconds;
      worker.read_bytes += s.read_bytes;
      worker.write_bytes += s.write_bytes;
      worker.read_ops += s.read_ops;
      worker.write_ops += s.write_ops;
    } catch (...) {
      if (!err) err = std::current_exception();
    }
    w.stop();
    wait_s += w.seconds();
  };

  auto retire = [&](Flight& fl) {
    settle(fl);
    if (fl.locked) ctx.locks.unlock(fl.plan.lo, fl.plan.hi);
    free_bufs.push_back(fl.buf);
  };

  while (true) {
    // Launch as many windows as there are free buffers.
    while (more && !err && !free_bufs.empty()) {
      WindowPlan plan;
      try {
        if (!next(plan)) {
          more = false;
          break;
        }
      } catch (...) {
        err = std::current_exception();
        break;
      }
      plan.index = index++;
      if (plan.writeback && !plan.preread)
        ++ctx.stats.preread_skipped_windows;
      Flight fl;
      fl.plan = plan;
      fl.buf = free_bufs.back();
      free_bufs.pop_back();
      if (plan.lock) {
        ctx.locks.lock(plan.lo, plan.hi);
        fl.locked = true;
      }
      if (plan.preread) {
        pfs::FileBackend& file = ctx.file;
        const ByteSpan span(bufs[fl.buf].data(), to_size(plan.hi - plan.lo));
        const Off lo = plan.lo;
        const Off win = plan.index;
        const bool rmw = plan.writeback;
        fl.io = submit_io(1 + static_cast<int>(fl.buf), [&file, lo, span,
                                                         win, rmw] {
          return read_job(file, lo, span, win, rmw);
        });
      }
      pending.push_back(std::move(fl));
    }

    if (pending.empty()) {
      if (writing.empty()) break;
      Flight fl = std::move(writing.front());
      writing.pop_front();
      retire(fl);
      continue;
    }

    // Fill the oldest window (waiting out its pre-read first).
    Flight fl = std::move(pending.front());
    pending.pop_front();
    obs::Span win_span("window");
    win_span.arg("win", fl.plan.index);
    win_span.arg("bytes", fl.plan.hi - fl.plan.lo);
    settle(fl);
    if (!err) {
      try {
        fill(fl.plan,
             ByteSpan(bufs[fl.buf].data(), to_size(fl.plan.hi - fl.plan.lo)));
      } catch (...) {
        err = std::current_exception();
      }
    }
    if (!err && fl.plan.writeback) {
      pfs::FileBackend& file = ctx.file;
      const ConstByteSpan span(bufs[fl.buf].data(),
                               to_size(fl.plan.hi - fl.plan.lo));
      const Off lo = fl.plan.lo;
      const Off win = fl.plan.index;
      fl.io = submit_io(1 + static_cast<int>(fl.buf), [&file, lo, span, win] {
        return write_job(file, lo, span, win);
      });
      writing.push_back(std::move(fl));
    } else {
      if (fl.locked) ctx.locks.unlock(fl.plan.lo, fl.plan.hi);
      free_bufs.push_back(fl.buf);
    }

    // Recycle buffers from any writes that already completed.
    while (!writing.empty() &&
           writing.front().io.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready) {
      Flight done = std::move(writing.front());
      writing.pop_front();
      retire(done);
    }
    if (err) break;
  }

  // Drain everything still in flight (normal exit and error exit alike):
  // workers must stop touching the buffers before we return/throw.
  while (!pending.empty()) {
    Flight fl = std::move(pending.front());
    pending.pop_front();
    retire(fl);
  }
  while (!writing.empty()) {
    Flight fl = std::move(writing.front());
    writing.pop_front();
    retire(fl);
  }

  ctx.stats.file_s += worker.seconds;
  ctx.stats.preread_s += worker.preread_seconds;
  ctx.stats.file_read_bytes += worker.read_bytes;
  ctx.stats.file_write_bytes += worker.write_bytes;
  ctx.stats.file_read_ops += worker.read_ops;
  ctx.stats.file_write_ops += worker.write_ops;
  ctx.stats.io_wait_s += wait_s;
  ctx.stats.overlap_s += std::max(0.0, worker.seconds - wait_s);

  if (obs::metrics_enabled()) {
    obs::Registry& reg = obs::Registry::instance();
    reg.histogram("pipeline.io_wait_us")
        .record(static_cast<long long>(wait_s * 1e6));
    reg.counter("pipeline.windows").add(static_cast<std::uint64_t>(index));
    reg.counter("pipeline.runs").add(1);
  }

  if (err) std::rethrow_exception(err);
}

}  // namespace

void run_window_pipeline(SieveContext& ctx, int depth, Off buffer_bytes,
                         const WindowSource& next, const WindowFill& fill) {
  if (depth <= 0) {
    run_serial(ctx, buffer_bytes, next, fill);
  } else {
    run_pipelined(ctx, std::min(depth, 8), buffer_bytes, next, fill);
  }
}

}  // namespace llio::mpiio
