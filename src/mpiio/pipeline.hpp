// Pipelined window loop for the IOP side of collective two-phase I/O.
//
// The paper's two-phase engines process one file-domain window at a time:
// (pre-read) -> scatter/gather -> (write-back), all on the compute thread.
// run_window_pipeline() keeps the serial loop for pipeline_depth = 0
// (bit-identical behavior) and, for depth >= 1, double-buffers the
// windows: the pread/pwrite of window k+1 runs on an I/O worker thread
// while the compute thread scatters/gathers window k.  The overlap it
// achieves and the residual time the compute thread spends blocked on the
// worker are surfaced as IoOpStats::overlap_s / io_wait_s.
//
// Thread discipline: `next` and `fill` always run on the calling (compute)
// thread, in window order — engine navigators and recv-list cursors are
// not thread-safe.  Only the raw pread/pwrite of a window buffer moves to
// the worker; a window's buffer is never touched by both threads at once
// (the future's wait provides the happens-before edge).
#pragma once

#include <functional>

#include "common/bytes.hpp"
#include "mpiio/sieve.hpp"

namespace llio::mpiio {

/// One file-domain window of a collective two-phase operation.
struct WindowPlan {
  Off lo = 0;              ///< absolute file offset of the window start
  Off hi = 0;              ///< absolute file offset one past the end
  bool preread = false;    ///< read-modify-write: load the window first
  bool writeback = false;  ///< write the window back after fill
  bool lock = false;       ///< hold the range lock across the window

  /// Sequential window number, assigned by run_window_pipeline (the
  /// engine's `next` need not set it).  Trace spans carry it as the
  /// "win" argument so obs::explain_pipeline can correlate compute- and
  /// worker-side slices of the same window.
  Off index = -1;
};

/// Produce the next window (in file order); return false when done.
using WindowSource = std::function<bool(WindowPlan&)>;

/// Scatter into / gather out of the window buffer
/// (buf covers [plan.lo, plan.hi)).  Called in the order the windows were
/// produced, but — when pipelined — possibly after `next` already ran for
/// later windows.
using WindowFill = std::function<void(const WindowPlan&, ByteSpan)>;

/// Run the window loop.  `buffer_bytes` is the maximum window size
/// (every plan must satisfy hi - lo <= buffer_bytes).  `depth` <= 0 runs
/// serially on the calling thread; >= 1 keeps up to `depth` windows in
/// flight on an internal worker pool.  Range locks are taken/released on
/// the calling thread; on any error every in-flight window is drained and
/// unlocked before the first error is rethrown.
void run_window_pipeline(SieveContext& ctx, int depth, Off buffer_bytes,
                         const WindowSource& next, const WindowFill& fill);

}  // namespace llio::mpiio
