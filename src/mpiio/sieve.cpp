#include "mpiio/sieve.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace llio::mpiio {

namespace {

// Zero-copy dense transfer: materialize the mover's memory runs and hand
// them to one vectored access per iov_batch_max entries.  The runs tile
// the dense stream, so run k's file offset is abs_lo plus the combined
// length of the runs before it.
bool zerocopy_dense_write(SieveContext& ctx, Off abs_lo, Off nbytes,
                          StreamMover& src) {
  if (ctx.opts.zerocopy != Zerocopy::Auto) return false;
  std::vector<ByteSpan> runs;
  if (!src.mem_runs(0, nbytes, zerocopy_budget(ctx.opts), runs)) return false;
  obs::Span span("zerocopy");
  span.arg("dir", "write");
  span.arg("runs", to_off(runs.size()));
  span.arg("bytes", nbytes);
  const std::size_t batch = to_size(std::max<Off>(1, ctx.opts.iov_batch_max));
  std::vector<pfs::ConstIoVec> iov;
  iov.reserve(std::min(batch, runs.size()));
  Off pos = abs_lo;
  for (const ByteSpan& r : runs) {
    iov.push_back({pos, ConstByteSpan(r.data(), r.size())});
    pos += to_off(r.size());
    if (iov.size() == batch) {
      timed_pwritev(ctx, iov);
      iov.clear();
    }
  }
  timed_pwritev(ctx, iov);
  ctx.stats.zerocopy_windows += 1;
  ctx.stats.iov_runs += runs.size();
  ctx.stats.staging_bytes_saved += nbytes;
  return true;
}

bool zerocopy_dense_read(SieveContext& ctx, Off abs_lo, Off nbytes,
                         StreamMover& dst) {
  if (ctx.opts.zerocopy != Zerocopy::Auto) return false;
  std::vector<ByteSpan> runs;
  if (!dst.mem_runs(0, nbytes, zerocopy_budget(ctx.opts), runs)) return false;
  obs::Span span("zerocopy");
  span.arg("dir", "read");
  span.arg("runs", to_off(runs.size()));
  span.arg("bytes", nbytes);
  const std::size_t batch = to_size(std::max<Off>(1, ctx.opts.iov_batch_max));
  std::vector<pfs::IoVec> iov;
  iov.reserve(std::min(batch, runs.size()));
  Off pos = abs_lo;
  for (const ByteSpan& r : runs) {
    iov.push_back({pos, r});
    pos += to_off(r.size());
    if (iov.size() == batch) {
      timed_preadv_zero_fill(ctx, iov);
      iov.clear();
    }
  }
  timed_preadv_zero_fill(ctx, iov);
  ctx.stats.zerocopy_windows += 1;
  ctx.stats.iov_runs += runs.size();
  ctx.stats.staging_bytes_saved += nbytes;
  return true;
}

}  // namespace

void timed_pread_zero_fill(SieveContext& ctx, Off pos, ByteSpan buf) {
  StopWatch w;
  w.start();
  const Off got = ctx.file.pread(pos, buf);
  w.stop();
  ctx.stats.file_s += w.seconds();
  ctx.stats.file_read_bytes += got;
  ctx.stats.file_read_ops += 1;
  if (to_size(got) < buf.size())
    std::memset(buf.data() + got, 0, buf.size() - to_size(got));
}

void timed_pwrite(SieveContext& ctx, Off pos, ConstByteSpan buf) {
  StopWatch w;
  w.start();
  ctx.file.pwrite(pos, buf);
  w.stop();
  ctx.stats.file_s += w.seconds();
  ctx.stats.file_write_bytes += to_off(buf.size());
  ctx.stats.file_write_ops += 1;
}

void timed_preadv_zero_fill(SieveContext& ctx,
                            std::span<const pfs::IoVec> iov) {
  if (iov.empty()) return;
  StopWatch w;
  w.start();
  const Off got = ctx.file.preadv(iov);
  w.stop();
  ctx.stats.file_s += w.seconds();
  ctx.stats.file_read_bytes += got;
  ctx.stats.file_read_ops += 1;
}

void timed_pwritev(SieveContext& ctx, std::span<const pfs::ConstIoVec> iov) {
  if (iov.empty()) return;
  Off total = 0;
  for (const pfs::ConstIoVec& v : iov) total += to_off(v.buf.size());
  StopWatch w;
  w.start();
  ctx.file.pwritev(iov);
  w.stop();
  ctx.stats.file_s += w.seconds();
  ctx.stats.file_write_bytes += total;
  ctx.stats.file_write_ops += 1;
}

Off sieve_write(SieveContext& ctx, ViewNav& nav, Off disp, Off stream_lo,
                Off nbytes, StreamMover& src) {
  if (nbytes <= 0) return 0;
  const Off abs_lo = disp + nav.stream_to_file_start(stream_lo);
  const Off abs_hi = disp + nav.stream_to_file_end(stream_lo + nbytes);
  const Off fbs = ctx.opts.file_buffer_size;
  ByteVec fbuf(to_size(std::min(fbs, abs_hi - abs_lo)));
  ByteVec packbuf;

  Off done = 0;
  Off pos = abs_lo;
  while (pos < abs_hi) {
    const Off win_hi = std::min(abs_hi, pos + fbs);
    const Off win = win_hi - pos;
    const Off avail = nav.file_to_stream(win_hi - disp) - (stream_lo + done);
    LLIO_ASSERT(avail >= 0 && avail <= nbytes - done,
                "sieve_write: bad window stream count");
    if (avail == 0) {
      pos = win_hi;
      continue;
    }
    std::optional<pfs::ScopedRangeLock> lock;
    if (!ctx.whole_range_locked) lock.emplace(ctx.locks, pos, win_hi);
    const bool covered = avail == win;
    if (!covered || !ctx.opts.sieve_skip_covered_read)
      timed_pread_zero_fill(ctx, pos, ByteSpan(fbuf.data(), to_size(win)));

    StopWatch copy;
    copy.start();
    if (const Byte* direct = src.direct(done, avail)) {
      nav.scatter(fbuf.data(), pos - disp, stream_lo + done, direct, avail);
    } else {
      if (packbuf.empty())
        packbuf.resize(to_size(ctx.opts.pack_buffer_size));
      Off sub = 0;
      while (sub < avail) {
        const Off n =
            std::min<Off>(to_off(packbuf.size()), avail - sub);
        src.to_stream(packbuf.data(), done + sub, n);
        nav.scatter(fbuf.data(), pos - disp, stream_lo + done + sub,
                    packbuf.data(), n);
        sub += n;
      }
    }
    copy.stop();
    ctx.stats.copy_s += copy.seconds();

    timed_pwrite(ctx, pos, ConstByteSpan(fbuf.data(), to_size(win)));
    done += avail;
    pos = win_hi;
  }
  LLIO_ASSERT(done == nbytes, "sieve_write: stream not exhausted");
  ctx.stats.bytes_moved += nbytes;
  return nbytes;
}

Off sieve_read(SieveContext& ctx, ViewNav& nav, Off disp, Off stream_lo,
               Off nbytes, StreamMover& dst) {
  if (nbytes <= 0) return 0;
  const Off abs_lo = disp + nav.stream_to_file_start(stream_lo);
  const Off abs_hi = disp + nav.stream_to_file_end(stream_lo + nbytes);
  const Off fbs = ctx.opts.file_buffer_size;
  ByteVec fbuf(to_size(std::min(fbs, abs_hi - abs_lo)));
  ByteVec packbuf;

  Off done = 0;
  Off pos = abs_lo;
  while (pos < abs_hi) {
    const Off win_hi = std::min(abs_hi, pos + fbs);
    const Off win = win_hi - pos;
    const Off avail = nav.file_to_stream(win_hi - disp) - (stream_lo + done);
    LLIO_ASSERT(avail >= 0 && avail <= nbytes - done,
                "sieve_read: bad window stream count");
    if (avail == 0) {
      pos = win_hi;
      continue;
    }
    timed_pread_zero_fill(ctx, pos, ByteSpan(fbuf.data(), to_size(win)));

    StopWatch copy;
    copy.start();
    if (Byte* direct = dst.direct_mut(done, avail)) {
      nav.gather(direct, fbuf.data(), pos - disp, stream_lo + done, avail);
    } else {
      if (packbuf.empty())
        packbuf.resize(to_size(ctx.opts.pack_buffer_size));
      Off sub = 0;
      while (sub < avail) {
        const Off n =
            std::min<Off>(to_off(packbuf.size()), avail - sub);
        nav.gather(packbuf.data(), fbuf.data(), pos - disp,
                   stream_lo + done + sub, n);
        dst.from_stream(packbuf.data(), done + sub, n);
        sub += n;
      }
    }
    copy.stop();
    ctx.stats.copy_s += copy.seconds();

    done += avail;
    pos = win_hi;
  }
  LLIO_ASSERT(done == nbytes, "sieve_read: stream not exhausted");
  ctx.stats.bytes_moved += nbytes;
  return nbytes;
}

bool choose_sieving(const Options& opts, bool writing, Off nbytes, Off abs_lo,
                    Off abs_hi) {
  const Sieving mode = writing ? opts.ds_write : opts.ds_read;
  switch (mode) {
    case Sieving::Always: return true;
    case Sieving::Never: return false;
    case Sieving::Automatic: {
      const Off span = abs_hi - abs_lo;
      if (span <= 0) return true;
      const double fill =
          static_cast<double>(nbytes) / static_cast<double>(span);
      return fill >= opts.sieve_min_fill;
    }
  }
  return true;
}

Off direct_write(SieveContext& ctx, ViewNav& nav, Off disp, Off stream_lo,
                 Off nbytes, StreamMover& src) {
  // One *vectored* file access per iov_batch_max contiguous runs instead
  // of one syscall per run.  Segments whose user memory is contiguous are
  // referenced in place; others are packed into a stage buffer.  Staged
  // segments record stage *offsets* (not pointers) so the stage buffer
  // may grow while a batch accumulates.
  if (nbytes <= 0) return 0;
  struct Seg {
    Off off;          ///< absolute file offset
    const Byte* ptr;  ///< direct user memory, or nullptr if staged
    Off stage_off;
    Off len;
  };
  const std::size_t batch_max =
      to_size(std::max<Off>(1, ctx.opts.iov_batch_max));
  std::vector<Seg> segs;
  ByteVec stage;
  std::vector<pfs::ConstIoVec> iov;
  StopWatch copy;

  auto flush = [&] {
    if (segs.empty()) return;
    iov.clear();
    for (const Seg& s : segs)
      iov.push_back({s.off,
                     ConstByteSpan(s.ptr ? s.ptr : stage.data() + s.stage_off,
                                   to_size(s.len))});
    timed_pwritev(ctx, iov);
    segs.clear();
    stage.clear();
  };

  nav.for_each_segment(
      stream_lo, nbytes, [&](Off mem, Off stream, Off len) {
        const Off rel = stream - stream_lo;
        if (const Byte* direct = src.direct(rel, len)) {
          segs.push_back({disp + mem, direct, 0, len});
          if (segs.size() >= batch_max) flush();
          return;
        }
        Off sub = 0;
        while (sub < len) {
          const Off room = ctx.opts.pack_buffer_size - to_off(stage.size());
          if (room <= 0) {
            flush();
            continue;
          }
          const Off n = std::min(len - sub, room);
          const Off at = to_off(stage.size());
          stage.resize(to_size(at + n));
          copy.start();
          src.to_stream(stage.data() + at, rel + sub, n);
          copy.stop();
          segs.push_back({disp + mem + sub, nullptr, at, n});
          sub += n;
          if (segs.size() >= batch_max) flush();
        }
      });
  flush();
  ctx.stats.copy_s += copy.seconds();
  ctx.stats.bytes_moved += nbytes;
  return nbytes;
}

Off direct_read(SieveContext& ctx, ViewNav& nav, Off disp, Off stream_lo,
                Off nbytes, StreamMover& dst) {
  if (nbytes <= 0) return 0;
  struct Seg {
    Off off;    ///< absolute file offset
    Byte* ptr;  ///< direct user memory, or nullptr if staged
    Off stage_off;
    Off rel;  ///< stream-relative offset, for from_stream after the read
    Off len;
  };
  const std::size_t batch_max =
      to_size(std::max<Off>(1, ctx.opts.iov_batch_max));
  std::vector<Seg> segs;
  ByteVec stage;
  std::vector<pfs::IoVec> iov;
  StopWatch copy;

  auto flush = [&] {
    if (segs.empty()) return;
    iov.clear();
    for (const Seg& s : segs)
      iov.push_back({s.off, ByteSpan(s.ptr ? s.ptr : stage.data() + s.stage_off,
                                     to_size(s.len))});
    timed_preadv_zero_fill(ctx, iov);
    copy.start();
    for (const Seg& s : segs)
      if (!s.ptr) dst.from_stream(stage.data() + s.stage_off, s.rel, s.len);
    copy.stop();
    segs.clear();
    stage.clear();
  };

  nav.for_each_segment(
      stream_lo, nbytes, [&](Off mem, Off stream, Off len) {
        const Off rel = stream - stream_lo;
        if (Byte* direct = dst.direct_mut(rel, len)) {
          segs.push_back({disp + mem, direct, 0, 0, len});
          if (segs.size() >= batch_max) flush();
          return;
        }
        Off sub = 0;
        while (sub < len) {
          const Off room = ctx.opts.pack_buffer_size - to_off(stage.size());
          if (room <= 0) {
            flush();
            continue;
          }
          const Off n = std::min(len - sub, room);
          const Off at = to_off(stage.size());
          stage.resize(to_size(at + n));
          segs.push_back({disp + mem + sub, nullptr, at, rel + sub, n});
          sub += n;
          if (segs.size() >= batch_max) flush();
        }
      });
  flush();
  ctx.stats.copy_s += copy.seconds();
  ctx.stats.bytes_moved += nbytes;
  return nbytes;
}

Off dense_write(SieveContext& ctx, Off abs_lo, Off nbytes, StreamMover& src) {
  if (nbytes <= 0) return 0;
  if (const Byte* direct = src.direct(0, nbytes)) {
    timed_pwrite(ctx, abs_lo, ConstByteSpan(direct, to_size(nbytes)));
  } else if (zerocopy_dense_write(ctx, abs_lo, nbytes, src)) {
    // stats counted inside
  } else {
    if (ctx.opts.zerocopy == Zerocopy::Auto)
      ctx.stats.staged_fallback_windows += 1;
    ByteVec packbuf(to_size(std::min(ctx.opts.pack_buffer_size, nbytes)));
    Off done = 0;
    while (done < nbytes) {
      const Off n = std::min<Off>(to_off(packbuf.size()), nbytes - done);
      StopWatch copy;
      copy.start();
      src.to_stream(packbuf.data(), done, n);
      copy.stop();
      ctx.stats.copy_s += copy.seconds();
      timed_pwrite(ctx, abs_lo + done,
                   ConstByteSpan(packbuf.data(), to_size(n)));
      done += n;
    }
  }
  ctx.stats.bytes_moved += nbytes;
  return nbytes;
}

Off dense_read(SieveContext& ctx, Off abs_lo, Off nbytes, StreamMover& dst) {
  if (nbytes <= 0) return 0;
  if (Byte* direct = dst.direct_mut(0, nbytes)) {
    timed_pread_zero_fill(ctx, abs_lo, ByteSpan(direct, to_size(nbytes)));
  } else if (zerocopy_dense_read(ctx, abs_lo, nbytes, dst)) {
    // stats counted inside
  } else {
    if (ctx.opts.zerocopy == Zerocopy::Auto)
      ctx.stats.staged_fallback_windows += 1;
    ByteVec packbuf(to_size(std::min(ctx.opts.pack_buffer_size, nbytes)));
    Off done = 0;
    while (done < nbytes) {
      const Off n = std::min<Off>(to_off(packbuf.size()), nbytes - done);
      timed_pread_zero_fill(ctx, abs_lo + done,
                      ByteSpan(packbuf.data(), to_size(n)));
      StopWatch copy;
      copy.start();
      dst.from_stream(packbuf.data(), done, n);
      copy.stop();
      ctx.stats.copy_s += copy.seconds();
      done += n;
    }
  }
  ctx.stats.bytes_moved += nbytes;
  return nbytes;
}

}  // namespace llio::mpiio
