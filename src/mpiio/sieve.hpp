// Independent non-contiguous access: the data-sieving skeleton (paper
// §2.2) and the dense fast path, shared by both engines.  The engine
// differences live entirely in the ViewNav / StreamMover implementations
// passed in.
#pragma once

#include "common/bytes.hpp"
#include "mpiio/io_stats.hpp"
#include "mpiio/navigator.hpp"
#include "mpiio/options.hpp"
#include "pfs/file_backend.hpp"
#include "pfs/range_lock.hpp"

namespace llio::mpiio {

struct SieveContext {
  pfs::FileBackend& file;
  pfs::RangeLock& locks;
  const Options& opts;
  IoOpStats& stats;
  /// True when the caller already holds a lock covering the whole access
  /// (atomic mode); the sieving loop must then skip its window locks.
  bool whole_range_locked = false;
};

/// Write `nbytes` of the user stream through a non-contiguous view whose
/// stream starts at `stream_lo` (= offset_etypes * size(etype)).
/// Returns bytes written.
Off sieve_write(SieveContext& ctx, ViewNav& nav, Off disp, Off stream_lo,
                Off nbytes, StreamMover& src);

/// Read counterpart; short data beyond EOF reads back as zeros.
Off sieve_read(SieveContext& ctx, ViewNav& nav, Off disp, Off stream_lo,
               Off nbytes, StreamMover& dst);

/// Dense-view fast paths: the access maps to one contiguous file range
/// starting at `abs_lo`.  With llio_zerocopy=auto, a mover that yields
/// memory runs under the options' budget hands user-memory iovecs
/// straight to preadv/pwritev (no packed staging); otherwise the staged
/// loop runs exactly as before.
Off dense_write(SieveContext& ctx, Off abs_lo, Off nbytes, StreamMover& src);
Off dense_read(SieveContext& ctx, Off abs_lo, Off nbytes, StreamMover& dst);

/// The mem_runs() budget implied by the handle's options.
inline RunBudget zerocopy_budget(const Options& opts) {
  return RunBudget{
      opts.zerocopy_max_runs > 0 ? to_size(opts.zerocopy_max_runs) : 1,
      opts.zerocopy_min_run};
}

/// Direct (non-sieving) non-contiguous access: one file access per
/// contiguous run.  This is the other side of the sieving trade-off the
/// paper's §5 marks as future work — better when the view is sparse
/// (sieving would read/write mostly gaps), worse when runs are tiny.
Off direct_write(SieveContext& ctx, ViewNav& nav, Off disp, Off stream_lo,
                 Off nbytes, StreamMover& src);
Off direct_read(SieveContext& ctx, ViewNav& nav, Off disp, Off stream_lo,
                Off nbytes, StreamMover& dst);

/// Strategy choice for an independent access spanning [abs_lo, abs_hi)
/// moving nbytes of data: true = sieve, false = direct.
bool choose_sieving(const Options& opts, bool writing, Off nbytes, Off abs_lo,
                    Off abs_hi);

/// Timed storage accesses (shared with the collective paths):
/// pread zero-fills past EOF — the view is logically sparse.
void timed_pread_zero_fill(SieveContext& ctx, Off pos, ByteSpan buf);
void timed_pwrite(SieveContext& ctx, Off pos, ConstByteSpan buf);

/// Vectored counterparts: a whole batch counts as one file op.
/// (FileBackend::preadv already zero-fills past EOF.)
void timed_preadv_zero_fill(SieveContext& ctx,
                            std::span<const pfs::IoVec> iov);
void timed_pwritev(SieveContext& ctx, std::span<const pfs::ConstIoVec> iov);

}  // namespace llio::mpiio
