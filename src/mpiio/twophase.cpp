#include "mpiio/twophase.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/error.hpp"

namespace llio::mpiio {

std::vector<AccessRange> exchange_ranges(sim::Comm& comm,
                                         const AccessRange& mine) {
  ByteVec raw(sizeof(AccessRange));
  std::memcpy(raw.data(), &mine, sizeof(AccessRange));
  auto gathered = comm.allgather(raw, sim::MsgClass::Meta);
  std::vector<AccessRange> out(gathered.size());
  for (std::size_t i = 0; i < gathered.size(); ++i) {
    LLIO_REQUIRE(gathered[i].size() == sizeof(AccessRange), Errc::Protocol,
                 "exchange_ranges: bad payload size");
    std::memcpy(&out[i], gathered[i].data(), sizeof(AccessRange));
  }
  return out;
}

GlobalRange global_range(const std::vector<AccessRange>& ranges) {
  GlobalRange g;
  for (const AccessRange& r : ranges) {
    if (r.nbytes <= 0) continue;
    if (!g.any) {
      g.lo = r.abs_lo;
      g.hi = r.abs_hi;
      g.any = true;
    } else {
      g.lo = std::min(g.lo, r.abs_lo);
      g.hi = std::max(g.hi, r.abs_hi);
    }
  }
  return g;
}

std::vector<Domain> partition_domains(const GlobalRange& g, int niops,
                                      Off align) {
  LLIO_REQUIRE(niops >= 1, Errc::InvalidArgument, "partition: niops < 1");
  LLIO_REQUIRE(align >= 1, Errc::InvalidArgument, "partition: align < 1");
  std::vector<Domain> out(to_size(Off{niops}));
  if (!g.any) return out;
  const Off total = g.hi - g.lo;
  // Equal shares rounded up to the alignment; trailing IOPs may be empty.
  // Both the rounding and the `lo + chunk` advance are guarded against
  // signed overflow for ranges near the Off maximum (overflow used to
  // wrap chunk negative and emit empty *leading* domains that dropped
  // coverage of the tail of the range).
  const Off max_off = std::numeric_limits<Off>::max();
  Off chunk = total / niops + (total % niops != 0 ? 1 : 0);
  chunk = chunk <= max_off - (align - 1) ? round_up(chunk, align) : total;
  Off lo = g.lo;
  for (int i = 0; i < niops; ++i) {
    const Off hi = g.hi - lo > chunk ? lo + chunk : g.hi;
    out[to_size(Off{i})] = {lo, hi};
    lo = hi;
  }
  // Invariant the IOP loops rely on: only trailing domains are empty.
  std::stable_partition(out.begin(), out.end(),
                        [](const Domain& d) { return !d.empty(); });
  return out;
}

int effective_iops(int io_procs_opt, int comm_size) {
  if (io_procs_opt <= 0 || io_procs_opt > comm_size) return comm_size;
  return io_procs_opt;
}

}  // namespace llio::mpiio
