// Shared pieces of the two-phase collective I/O method (paper §2.3):
// access-range exchange and the partitioning of the global file range
// into per-IOP file domains.  The AP→IOP payload formats differ between
// the engines (the list-based one ships ol-lists) and live with them.
#pragma once

#include <vector>

#include "common/bytes.hpp"
#include "simmpi/comm.hpp"

namespace llio::mpiio {

/// One rank's contribution to a collective access.
struct AccessRange {
  Off stream_lo = 0;  ///< view-stream offset of the access start
  Off nbytes = 0;     ///< stream bytes accessed (0 = not participating)
  Off abs_lo = 0;     ///< first absolute file byte touched
  Off abs_hi = 0;     ///< one past the last absolute file byte touched
};

/// Allgather every rank's AccessRange (Meta traffic).
std::vector<AccessRange> exchange_ranges(sim::Comm& comm,
                                         const AccessRange& mine);

/// Global file range [lo, hi) covered by any participant; {0, 0} if none.
struct GlobalRange {
  Off lo = 0;
  Off hi = 0;
  bool any = false;
};
GlobalRange global_range(const std::vector<AccessRange>& ranges);

struct Domain {
  Off lo = 0;
  Off hi = 0;

  bool empty() const { return hi <= lo; }
};

/// Split [g.lo, g.hi) into `niops` aligned, contiguous file domains;
/// domain boundaries snap to multiples of `align` (the file buffer size)
/// relative to g.lo so sieving windows never straddle two IOPs.
std::vector<Domain> partition_domains(const GlobalRange& g, int niops,
                                      Off align);

/// Number of IOP ranks for the given option value (0 = all).
int effective_iops(int io_procs_opt, int comm_size);

}  // namespace llio::mpiio
