#include "mpiio/view.hpp"

#include "common/error.hpp"
#include "fotf/navigate.hpp"
#include "mpiio/options.hpp"

namespace llio::mpiio {

const char* method_name(Method m) noexcept {
  return m == Method::ListBased ? "list-based" : "listless";
}

const char* merge_contig_name(MergeContig m) noexcept {
  switch (m) {
    case MergeContig::Off: return "off";
    case MergeContig::Auto: return "auto";
    case MergeContig::Force: return "force";
  }
  return "auto";
}

const char* zerocopy_name(Zerocopy z) noexcept {
  switch (z) {
    case Zerocopy::Off: return "off";
    case Zerocopy::Auto: return "auto";
  }
  return "auto";
}

const char* adaptive_name(Adaptive a) noexcept {
  switch (a) {
    case Adaptive::Off: return "off";
    case Adaptive::Auto: return "auto";
    case Adaptive::Force: return "force";
  }
  return "off";
}

View default_view() {
  return View{0, dt::byte(), dt::byte()};
}

void validate_view(const View& v) {
  LLIO_REQUIRE(v.disp >= 0, Errc::InvalidView, "view: negative displacement");
  LLIO_REQUIRE(v.etype != nullptr && v.filetype != nullptr, Errc::InvalidView,
               "view: null etype/filetype");
  LLIO_REQUIRE(v.etype->is_contiguous() && v.etype->size() > 0,
               Errc::InvalidView, "view: etype must be contiguous, size > 0");
  LLIO_REQUIRE(v.filetype->size() > 0, Errc::InvalidView,
               "view: filetype has zero size");
  LLIO_REQUIRE(v.filetype->size() % v.etype->size() == 0, Errc::InvalidView,
               "view: size(filetype) not a multiple of size(etype)");
  LLIO_REQUIRE(fotf::file_navigable(v.filetype), Errc::InvalidView,
               "view: filetype violates MPI-IO filetype rules (monotone, "
               "non-negative, non-interleaving tiling, no empty blocks)");
}

}  // namespace llio::mpiio
