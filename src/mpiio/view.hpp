// Fileviews (MPI_File_set_view semantics).
//
// A view = (disp, etype, filetype): the process sees the file as the
// infinite tiling of `filetype` starting at absolute byte `disp`, with
// offsets counted in units of `etype`.  The "view stream" is the packed
// data stream of that tiling; a file offset of k etypes addresses stream
// byte k * size(etype).
#pragma once

#include "dtype/datatype.hpp"

namespace llio::mpiio {

struct View {
  Off disp = 0;
  dt::Type etype;
  dt::Type filetype;

  /// Stream bytes per filetype instance.
  Off ft_size() const { return filetype->size(); }

  /// File bytes per filetype instance tile.
  Off ft_extent() const { return filetype->extent(); }

  /// True when the view exposes a dense byte range of the file (no holes),
  /// enabling the direct (non-sieving) path.
  bool dense() const {
    return filetype->is_contiguous();
  }
};

/// The default view every file starts with: disp 0, etype byte,
/// filetype byte (the whole file, densely).
View default_view();

/// Validate the MPI-IO filetype/etype rules (throws Errc::InvalidView):
///  - etype is contiguous with positive size,
///  - size(filetype) is a positive multiple of size(etype),
///  - the filetype is monotone with non-negative displacements and tiles
///    at its extent without interleaving (file-navigable).
void validate_view(const View& v);

}  // namespace llio::mpiio
