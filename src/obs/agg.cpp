#include "obs/agg.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/error.hpp"
#include "common/format.hpp"

namespace llio::obs {

// ---- snapshot wire format ----------------------------------------------
//
// Flat little-endian layout, host byte order (rank threads share one
// process; the simulated wire never leaves it):
//   u32 rank
//   u32 nphases { u32 len, bytes, f64 seconds }*
//   u32 ncounters { u32 len, bytes, u64 value }*
//   u32 nhists { u32 len, bytes, u64 count, i64 sum, i64 min, i64 max,
//                u32 nbuckets { u32 index, u64 count }* }*

namespace {

template <class T>
void put(ByteVec& out, T v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}

void put_str(ByteVec& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  const std::size_t at = out.size();
  out.resize(at + s.size());
  std::memcpy(out.data() + at, s.data(), s.size());
}

struct Reader {
  ConstByteSpan raw;
  std::size_t pos = 0;

  template <class T>
  T get() {
    LLIO_REQUIRE(pos + sizeof(T) <= raw.size(), Errc::Protocol,
                 "RankSnapshot: truncated payload");
    T v;
    std::memcpy(&v, raw.data() + pos, sizeof(T));
    pos += sizeof(T);
    return v;
  }

  std::string get_str() {
    const std::uint32_t len = get<std::uint32_t>();
    LLIO_REQUIRE(pos + len <= raw.size(), Errc::Protocol,
                 "RankSnapshot: truncated string");
    std::string s(reinterpret_cast<const char*>(raw.data() + pos), len);
    pos += len;
    return s;
  }
};

}  // namespace

ByteVec RankSnapshot::serialize() const {
  ByteVec out;
  put<std::uint32_t>(out, static_cast<std::uint32_t>(rank));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(phases.size()));
  for (const auto& [name, s] : phases) {
    put_str(out, name);
    put<double>(out, s);
  }
  put<std::uint32_t>(out, static_cast<std::uint32_t>(counters.size()));
  for (const auto& [name, v] : counters) {
    put_str(out, name);
    put<std::uint64_t>(out, v);
  }
  put<std::uint32_t>(out, static_cast<std::uint32_t>(hists.size()));
  for (const auto& [name, h] : hists) {
    put_str(out, name);
    put<std::uint64_t>(out, h.count);
    put<long long>(out, h.sum);
    put<long long>(out, h.min);
    put<long long>(out, h.max);
    put<std::uint32_t>(out, static_cast<std::uint32_t>(h.buckets.size()));
    for (const auto& [idx, c] : h.buckets) {
      put<std::uint32_t>(out, static_cast<std::uint32_t>(idx));
      put<std::uint64_t>(out, c);
    }
  }
  return out;
}

RankSnapshot RankSnapshot::deserialize(ConstByteSpan raw) {
  Reader r{raw};
  RankSnapshot s;
  s.rank = static_cast<int>(r.get<std::uint32_t>());
  const std::uint32_t nphases = r.get<std::uint32_t>();
  s.phases.reserve(nphases);
  for (std::uint32_t i = 0; i < nphases; ++i) {
    std::string name = r.get_str();
    const double v = r.get<double>();
    s.phases.push_back({std::move(name), v});
  }
  const std::uint32_t ncounters = r.get<std::uint32_t>();
  s.counters.reserve(ncounters);
  for (std::uint32_t i = 0; i < ncounters; ++i) {
    std::string name = r.get_str();
    const std::uint64_t v = r.get<std::uint64_t>();
    s.counters.push_back({std::move(name), v});
  }
  const std::uint32_t nhists = r.get<std::uint32_t>();
  s.hists.reserve(nhists);
  for (std::uint32_t i = 0; i < nhists; ++i) {
    std::string name = r.get_str();
    HistogramData h;
    h.count = r.get<std::uint64_t>();
    h.sum = r.get<long long>();
    h.min = r.get<long long>();
    h.max = r.get<long long>();
    const std::uint32_t nbuckets = r.get<std::uint32_t>();
    h.buckets.reserve(nbuckets);
    for (std::uint32_t b = 0; b < nbuckets; ++b) {
      const int idx = static_cast<int>(r.get<std::uint32_t>());
      const std::uint64_t c = r.get<std::uint64_t>();
      h.buckets.push_back({idx, c});
    }
    s.hists.push_back({std::move(name), std::move(h)});
  }
  LLIO_REQUIRE(r.pos == raw.size(), Errc::Protocol,
               "RankSnapshot: trailing bytes");
  return s;
}

// ---- collector ---------------------------------------------------------

namespace {

/// Imbalance below this does not name a straggler: with a handful of
/// ranks over fast simulated storage, a few percent of spread is
/// scheduling noise, not a finding.
constexpr double kStragglerThreshold = 1.05;

PhaseStats build_phase(const std::string& name,
                       const std::vector<double>& per_rank,
                       const std::vector<int>& ranks) {
  PhaseStats p;
  p.name = name;
  p.per_rank_s = per_rank;
  const std::size_t n = per_rank.size();
  if (n == 0) return p;
  p.min_s = per_rank[0];
  p.max_s = per_rank[0];
  p.min_rank = ranks[0];
  p.max_rank = ranks[0];
  for (std::size_t i = 0; i < n; ++i) {
    p.sum_s += per_rank[i];
    if (per_rank[i] < p.min_s) {
      p.min_s = per_rank[i];
      p.min_rank = ranks[i];
    }
    if (per_rank[i] > p.max_s) {
      p.max_s = per_rank[i];
      p.max_rank = ranks[i];
    }
  }
  p.mean_s = p.sum_s / static_cast<double>(n);
  std::vector<double> sorted = per_rank;
  std::sort(sorted.begin(), sorted.end());
  p.median_s = n % 2 == 1 ? sorted[n / 2]
                          : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  p.imbalance = p.mean_s > 0 ? p.max_s / p.mean_s : 0.0;
  return p;
}

}  // namespace

JobReport Collector::build(const std::vector<RankSnapshot>& ranks) {
  std::vector<const RankSnapshot*> order;
  order.reserve(ranks.size());
  for (const RankSnapshot& r : ranks) order.push_back(&r);
  std::sort(order.begin(), order.end(),
            [](const RankSnapshot* a, const RankSnapshot* b) {
              return a->rank < b->rank;
            });

  JobReport job;
  job.nranks = static_cast<int>(order.size());
  for (const RankSnapshot* r : order) job.ranks.push_back(r->rank);

  // Phases: the union of names, each aligned to the rank order (a rank
  // that never reported a phase contributes 0).
  std::map<std::string, std::vector<double>> phases;
  for (std::size_t i = 0; i < order.size(); ++i)
    for (const auto& [name, s] : order[i]->phases) {
      auto& v = phases[name];
      v.resize(order.size(), 0.0);
      v[i] += s;
    }
  for (auto& [name, v] : phases) {
    v.resize(order.size(), 0.0);
    job.phases.push_back(build_phase(name, v, job.ranks));
  }

  std::map<std::string, std::uint64_t> counters;
  for (const RankSnapshot* r : order)
    for (const auto& [name, v] : r->counters) counters[name] += v;
  for (const auto& [name, v] : counters) job.counters.push_back({name, v});

  std::map<std::string, MergedHistogram> hists;
  for (std::size_t i = 0; i < order.size(); ++i)
    for (const auto& [name, h] : order[i]->hists) {
      MergedHistogram& m = hists[name];
      m.name = name;
      m.per_rank.resize(order.size());
      m.per_rank[i] = h.summary();
      m.merged.merge(h);
    }
  for (auto& [name, m] : hists) {
    m.per_rank.resize(order.size());
    job.hists.push_back(std::move(m));
  }

  if (const PhaseStats* total = job.phase("total");
      total != nullptr && total->imbalance > kStragglerThreshold) {
    job.straggler_rank = total->max_rank;
    job.straggler_imbalance = total->imbalance;
  }
  return job;
}

const PhaseStats* JobReport::phase(const std::string& name) const {
  for (const PhaseStats& p : phases)
    if (p.name == name) return &p;
  return nullptr;
}

// ---- critical path -----------------------------------------------------

CriticalPathReport critical_path(const std::vector<TraceEvent>& events) {
  struct Window {
    double window_us = 0;
    double io_us = 0;    // io_wait + inline preread/pwrite (serial loop)
    double pack_us = 0;
  };
  // The numeric "win" argument, matched exactly as explain_pipeline does.
  auto win_arg = [](const TraceEvent& ev) -> long long {
    for (const TraceArg& a : ev.args)
      if (!a.is_text && a.key == "win") return a.value;
    return -1;
  };

  std::map<std::pair<int, long long>, Window> windows;
  CriticalPathReport report;
  for (const TraceEvent& ev : events) {
    if (ev.phase != 'X') continue;
    if (ev.name == "exchange") {
      // Phase exchanges run outside the window loop; they are context for
      // the job totals, not part of any one window's budget.
      if (ev.tid == 0) report.exchange_us += ev.dur_us;
      continue;
    }
    if (ev.tid != 0) continue;  // worker-side I/O is hidden by definition
    const bool is_window = ev.name == "window";
    const bool is_io = ev.name == "io_wait" || ev.name == "preread" ||
                       ev.name == "pwrite";
    const bool is_pack = ev.name == "pack";
    if (!is_window && !is_io && !is_pack) continue;
    const long long idx = win_arg(ev);
    if (idx < 0) continue;
    Window& w = windows[{ev.pid, idx}];
    if (is_window) w.window_us += ev.dur_us;
    if (is_io) w.io_us += ev.dur_us;
    if (is_pack) w.pack_us += ev.dur_us;
  }

  double attributed_us = 0;
  for (const auto& [key, w] : windows) {
    if (w.window_us <= 0) continue;
    ++report.windows;
    report.window_us += w.window_us;
    // Components are nested inside the window span on the same thread, so
    // their sum cannot exceed it except by clock-read jitter; clamp.
    const double io = std::min(w.io_us, w.window_us);
    const double pack = std::min(w.pack_us, w.window_us - io);
    const double other = w.window_us - io - pack;
    report.io_us += io;
    report.pack_us += pack;
    report.other_us += other;
    attributed_us += io + pack;
    if (io >= pack && io >= other)
      ++report.io_limited_windows;
    else if (pack >= other)
      ++report.pack_limited_windows;
    else
      ++report.other_limited_windows;
  }
  report.attributed_frac =
      report.window_us > 0 ? attributed_us / report.window_us : 0.0;
  return report;
}

// ---- report JSON -------------------------------------------------------

namespace {

std::string summary_json(const HistogramSummary& s) {
  return strprintf(
      "{\"count\":%llu,\"mean\":%.3f,\"p50\":%.3f,\"p95\":%.3f,"
      "\"p99\":%.3f,\"min\":%lld,\"max\":%lld}",
      static_cast<unsigned long long>(s.count), s.mean, s.p50, s.p95, s.p99,
      s.min, s.max);
}

std::string data_json(const HistogramData& h) {
  const HistogramSummary s = h.summary();
  std::string out = strprintf(
      "{\"count\":%llu,\"sum\":%lld,\"min\":%lld,\"max\":%lld,"
      "\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f,\"buckets\":[",
      static_cast<unsigned long long>(h.count), h.sum, h.min, h.max, s.p50,
      s.p95, s.p99);
  bool first = true;
  for (const auto& [idx, c] : h.buckets) {
    if (!first) out += ',';
    first = false;
    out += strprintf("[%d,%llu]", idx, static_cast<unsigned long long>(c));
  }
  out += "]}";
  return out;
}

}  // namespace

std::string JobReport::to_json() const {
  // Metric/phase names are our own C identifiers — nothing to escape.
  std::string out = strprintf("{\"schema\":\"llio_report/v1\",\"nranks\":%d,",
                              nranks);
  out += "\"ranks\":[";
  for (std::size_t i = 0; i < ranks.size(); ++i)
    out += strprintf(i == 0 ? "%d" : ",%d", ranks[i]);
  out += "],\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseStats& p = phases[i];
    if (i != 0) out += ',';
    out += strprintf(
        "{\"name\":\"%s\",\"min_s\":%.6f,\"median_s\":%.6f,\"max_s\":%.6f,"
        "\"mean_s\":%.6f,\"sum_s\":%.6f,\"min_rank\":%d,\"max_rank\":%d,"
        "\"imbalance\":%.3f,\"per_rank_s\":[",
        p.name.c_str(), p.min_s, p.median_s, p.max_s, p.mean_s, p.sum_s,
        p.min_rank, p.max_rank, p.imbalance);
    for (std::size_t r = 0; r < p.per_rank_s.size(); ++r)
      out += strprintf(r == 0 ? "%.6f" : ",%.6f", p.per_rank_s[r]);
    out += "]}";
  }
  out += "],\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i)
    out += strprintf(i == 0 ? "\"%s\":%llu" : ",\"%s\":%llu",
                     counters[i].first.c_str(),
                     static_cast<unsigned long long>(counters[i].second));
  out += "},\"histograms\":[";
  for (std::size_t i = 0; i < hists.size(); ++i) {
    const MergedHistogram& m = hists[i];
    if (i != 0) out += ',';
    out += strprintf("{\"name\":\"%s\",\"merged\":", m.name.c_str());
    out += data_json(m.merged);
    out += ",\"per_rank\":[";
    for (std::size_t r = 0; r < m.per_rank.size(); ++r) {
      if (r != 0) out += ',';
      out += summary_json(m.per_rank[r]);
    }
    out += "]}";
  }
  out += strprintf("],\"straggler\":{\"rank\":%d,\"imbalance\":%.3f}",
                   straggler_rank, straggler_imbalance);
  if (critical) {
    const CriticalPathReport& c = *critical;
    out += strprintf(
        ",\"critical_path\":{\"windows\":%lld,\"window_us\":%.1f,"
        "\"io_us\":%.1f,\"pack_us\":%.1f,\"other_us\":%.1f,"
        "\"exchange_us\":%.1f,\"attributed_frac\":%.4f,"
        "\"limiter\":\"%s\",\"io_limited_windows\":%lld,"
        "\"pack_limited_windows\":%lld,\"other_limited_windows\":%lld}",
        c.windows, c.window_us, c.io_us, c.pack_us, c.other_us,
        c.exchange_us, c.attributed_frac, c.limiter(), c.io_limited_windows,
        c.pack_limited_windows, c.other_limited_windows);
  }
  out += ",\"global_histograms\":{";
  for (std::size_t i = 0; i < global_hists.size(); ++i) {
    if (i != 0) out += ',';
    out += strprintf("\"%s\":", global_hists[i].first.c_str());
    out += summary_json(global_hists[i].second);
  }
  out += "},\"global_counters\":{";
  for (std::size_t i = 0; i < global_counters.size(); ++i)
    out += strprintf(i == 0 ? "\"%s\":%llu" : ",\"%s\":%llu",
                     global_counters[i].first.c_str(),
                     static_cast<unsigned long long>(global_counters[i].second));
  out += strprintf(
      "},\"sampling\":{\"produced\":%llu,\"dropped\":%llu}",
      static_cast<unsigned long long>(samples_produced),
      static_cast<unsigned long long>(samples_dropped));
  if (!adapt_policy.empty()) {
    out += strprintf(
        ",\"adapt\":{\"policy\":\"%s\",\"decisions\":%llu,"
        "\"probes\":%llu,\"switches\":%llu,\"dims\":[",
        adapt_policy.c_str(),
        static_cast<unsigned long long>(adapt_decisions),
        static_cast<unsigned long long>(adapt_probes),
        static_cast<unsigned long long>(adapt_switches));
    for (std::size_t i = 0; i < adapt_dims.size(); ++i)
      out += strprintf(i == 0 ? "\"%s\"" : ",\"%s\"",
                       adapt_dims[i].c_str());
    out += "],\"trail\":[";
    for (std::size_t i = 0; i < adapt_trail.size(); ++i) {
      const AdaptDecision& d = adapt_trail[i];
      if (i != 0) out += ',';
      out += strprintf(
          "{\"seq\":%llu,\"op\":%u,\"backend\":%u,\"net\":%u,"
          "\"view_sig\":%llu,\"size_class\":%d,\"arm\":\"%s\","
          "\"probe\":%s,\"switched\":%s,\"cost_ns_per_byte\":%.3f,"
          "\"incumbent_ns_per_byte\":%.3f}",
          static_cast<unsigned long long>(d.seq), d.op, d.backend, d.net,
          static_cast<unsigned long long>(d.view_sig), d.size_class,
          d.arm.c_str(), d.probe ? "true" : "false",
          d.switched ? "true" : "false", d.cost_ns_per_byte,
          d.incumbent_ns_per_byte);
    }
    out += "]}";
  }
  out += "}";
  return out;
}

}  // namespace llio::obs
