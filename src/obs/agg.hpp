// Job-level observability: cross-rank metric aggregation.
//
// PR 3's tracer and registry are per-process; the collective engines'
// behavior is per-*job* — one straggler rank in the exchange stalls every
// window on every rank, and no single rank's numbers can show that.  This
// layer closes the gap:
//
//   * RankSnapshot — one rank's contribution: the IoOpStats phase
//     decomposition (pack / exchange / preread / io / wait), counters, and
//     the engine's per-rank phase histograms as mergeable HistogramData.
//     Serializes to a flat byte vector for the wire.
//   * Collector::build — fold N RankSnapshots into a JobReport: per-phase
//     min/median/max/imbalance across ranks, merged histograms whose
//     quantiles reconcile with the per-rank values within one bucket
//     (deterministic nearest-rank selection on identical bucket edges),
//     summed counters, and straggler identification.
//   * aggregate(comm, mine) — the collective form: allgather the
//     serialized snapshots, build on every rank (all ranks return the
//     same report).  Templated over the comm type so obs stays below
//     simmpi in the layering (simmpi instruments with obs spans).
//   * critical_path(events) — a pass over the Chrome-trace spans
//     attributing each pipeline window's wall time to its limiting
//     component (I/O wait vs pack vs everything else), the "what do I fix
//     first" summary surfaced by --explain and the llio_report JSON.
//
// The JobReport JSON (schema "llio_report/v1") is the machine-readable
// interface consumed by tools/check_report.py in CI and, eventually, the
// adaptive engine's cost model (ROADMAP).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace llio::obs {

/// One rank's contribution to the job view.
struct RankSnapshot {
  int rank = 0;
  /// Phase name -> seconds (pack / exchange / preread / io / wait /
  /// total, from IoOpStats; any name is accepted).
  std::vector<std::pair<std::string, double>> phases;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// Per-rank histograms (op.total_us etc.), mergeable across ranks.
  std::vector<std::pair<std::string, HistogramData>> hists;

  ByteVec serialize() const;
  static RankSnapshot deserialize(ConstByteSpan raw);
};

/// Cross-rank spread of one phase.
struct PhaseStats {
  std::string name;
  double min_s = 0;
  double median_s = 0;
  double max_s = 0;
  double mean_s = 0;
  double sum_s = 0;
  int min_rank = -1;  ///< rank holding the minimum
  int max_rank = -1;  ///< rank holding the maximum (the phase straggler)
  /// max / mean: 1.0 = perfectly balanced, nranks = one rank does all the
  /// work; 0 when the phase never ran.
  double imbalance = 0;
  std::vector<double> per_rank_s;  ///< indexed like JobReport::ranks
};

/// One histogram name merged across ranks, with the per-rank summaries
/// kept so the merged quantiles can be checked against them.
struct MergedHistogram {
  std::string name;
  HistogramData merged;
  std::vector<HistogramSummary> per_rank;  ///< indexed like JobReport::ranks
};

/// Where each pipeline window's wall time went, summed over all windows
/// of all ranks.  "io" is compute-thread I/O exposure: io_wait plus any
/// preread/pwrite that ran inline on the compute thread (serial loop);
/// "pack" is the fill's gather/scatter; "other" is the unattributed
/// remainder (window bookkeeping, locking, submit overhead).
struct CriticalPathReport {
  long long windows = 0;
  double window_us = 0;
  double io_us = 0;
  double pack_us = 0;
  double other_us = 0;
  double exchange_us = 0;  ///< outside windows (phase exchanges), context
  /// (io + pack) / window — how much of the windows' wall time the
  /// breakdown explains.  1 - attributed_frac is "other".
  double attributed_frac = 0;
  long long io_limited_windows = 0;
  long long pack_limited_windows = 0;
  long long other_limited_windows = 0;

  const char* limiter() const {
    if (io_us >= pack_us && io_us >= other_us) return "io";
    return pack_us >= other_us ? "pack" : "other";
  }
};

/// Walk a trace snapshot and attribute window time (see
/// CriticalPathReport).  Matches spans by name + the numeric "win"
/// argument on compute-thread tracks, exactly like explain_pipeline.
CriticalPathReport critical_path(const std::vector<TraceEvent>& events);

/// One adaptive-policy decision (adapt::Advisor), recorded at
/// collective-op granularity.  The dimension fields are obs::Sampler
/// interned ids — the same id space OpSample uses — so the trail, the
/// sampling ring, and the Advisor's cost-model keys all reconcile.
/// Lives here (not in adapt/) so the report schema has no dependency on
/// the policy layer above it.
struct AdaptDecision {
  std::uint64_t seq = 0;      ///< decision order within the handle
  std::uint32_t op = 0;       ///< "write_at_all" / ... (interned)
  std::uint32_t backend = 0;  ///< storage target (interned)
  std::uint32_t net = 0;      ///< interconnect model (interned)
  std::uint64_t view_sig = 0;  ///< fileview signature (serialized-tree hash)
  int size_class = 0;          ///< log2 of the op's global payload bytes
  std::string arm;             ///< encoded tuning, e.g. "tp:d2:t1:zc:w22"
  bool probe = false;     ///< epsilon exploration, not the incumbent
  bool switched = false;  ///< the incumbent changed at this decision
  double cost_ns_per_byte = 0;       ///< observed outcome of this op
  double incumbent_ns_per_byte = 0;  ///< incumbent's estimate beforehand
};

struct JobReport {
  int nranks = 0;
  std::vector<int> ranks;  ///< rank ids, index space of per_rank vectors
  std::vector<PhaseStats> phases;
  std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< summed
  std::vector<MergedHistogram> hists;

  /// Rank with the largest "total" phase and its max/mean ratio; -1 when
  /// totals are absent or the job is balanced (imbalance below ~1.05 does
  /// not name a straggler — it would just be noise).
  int straggler_rank = -1;
  double straggler_imbalance = 0;

  std::optional<CriticalPathReport> critical;

  /// Process-global registry sections attached by the caller (rank 0's
  /// view: psrv per-server service histograms, AsyncIo op latencies,
  /// TracedFile file-op histograms) — shared-process in the simulation,
  /// so they complement rather than duplicate the per-rank data.
  std::vector<std::pair<std::string, HistogramSummary>> global_hists;

  /// Process-global counters attached by the caller (e.g. the psrv pool's
  /// summed ServerStats: psrv.requests, psrv.recalls_sent, ...).  Kept
  /// apart from `counters`, which are per-rank sums.
  std::vector<std::pair<std::string, std::uint64_t>> global_counters;

  /// Always-on sampling ring state (obs/snapshot.hpp).
  std::uint64_t samples_produced = 0;
  std::uint64_t samples_dropped = 0;

  /// Adaptive policy layer: decision trail and totals, attached by the
  /// caller (File::close) when llio_adaptive is engaged.  Empty policy
  /// name = adaptive off, no "adapt" section in the JSON.  adapt_dims is
  /// the interned-id -> name table covering every id the trail uses, so
  /// the report is self-contained (tools/check_report.py validates that
  /// each decision's dims resolve).
  std::string adapt_policy;
  std::uint64_t adapt_decisions = 0;
  std::uint64_t adapt_probes = 0;
  std::uint64_t adapt_switches = 0;
  std::vector<AdaptDecision> adapt_trail;  ///< most recent decisions
  std::vector<std::string> adapt_dims;     ///< index = interned id

  const PhaseStats* phase(const std::string& name) const;

  /// Schema "llio_report/v1" (validated by tools/check_report.py).
  std::string to_json() const;
};

/// Fold rank snapshots into a job view.  Pure function of its input, so
/// tests can drive it without a comm.
class Collector {
 public:
  static JobReport build(const std::vector<RankSnapshot>& ranks);
};

/// Collective aggregation: every rank contributes its snapshot and every
/// rank returns the identical JobReport.  CommT needs the sim::Comm
/// allgather shape (ConstByteSpan in, vector<ByteVec> out).
template <class CommT>
JobReport aggregate(CommT& comm, const RankSnapshot& mine) {
  const ByteVec raw = mine.serialize();
  std::vector<ByteVec> all =
      comm.allgather(ConstByteSpan(raw.data(), raw.size()));
  std::vector<RankSnapshot> snaps;
  snaps.reserve(all.size());
  for (const ByteVec& b : all)
    snaps.push_back(
        RankSnapshot::deserialize(ConstByteSpan(b.data(), b.size())));
  return Collector::build(snaps);
}

}  // namespace llio::obs
