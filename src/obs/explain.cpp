#include "obs/explain.hpp"

#include <algorithm>
#include <cstring>

#include "common/format.hpp"

namespace llio::obs {

namespace {

/// The numeric "win" argument, or -1 when absent (serial-loop spans and
/// operation-level spans carry no window index).
long long win_arg(const TraceEvent& ev) {
  for (const TraceArg& a : ev.args)
    if (!a.is_text && a.key == "win") return a.value;
  return -1;
}

}  // namespace

PipelineReport explain_pipeline(const std::vector<TraceEvent>& events) {
  PipelineReport report;
  std::map<std::pair<int, long long>, WindowBreakdown> windows;
  std::map<int, RankPipelineSummary> ranks;

  for (const TraceEvent& ev : events) {
    if (ev.phase != 'X') continue;
    const bool is_window = ev.name == "window";
    const bool is_wait = ev.name == "io_wait";
    const bool is_pack = ev.name == "pack";
    const bool is_slice = ev.name == "pack_slice";
    const bool is_preread = ev.name == "preread";
    const bool is_pwrite = ev.name == "pwrite";
    const bool is_aio = ev.name == "aio_op";
    if (!is_window && !is_wait && !is_pack && !is_slice && !is_preread &&
        !is_pwrite && !is_aio)
      continue;

    RankPipelineSummary& rank = ranks[ev.pid];
    rank.pid = ev.pid;
    if (is_window) {
      ++rank.windows;
      rank.window_us += ev.dur_us;
    } else if (is_wait) {
      rank.io_wait_us += ev.dur_us;
    } else if (is_pack) {
      rank.pack_us += ev.dur_us;
    } else if (is_slice) {
      // Slices run on both the compute thread (slice 0) and worker
      // tracks; they count toward pack parallelism, never worker I/O.
      ++rank.pack_slices;
      rank.pack_slice_us += ev.dur_us;
      rank.pack_slice_max_us = std::max(rank.pack_slice_max_us, ev.dur_us);
    } else if (is_aio) {
      // AsyncIo ops are the storage-engine view of the same file time the
      // preread/pwrite spans cover — reported, but kept out of worker_io
      // so the overlap arithmetic is unchanged by queue depth.
      ++rank.aio_ops;
      rank.aio_us += ev.dur_us;
    } else if (ev.tid >= 1) {
      // Worker I/O: only spans on worker tracks count toward overlap —
      // a preread/pwrite on the compute thread (serial loop) hides
      // nothing.
      rank.worker_io_us += ev.dur_us;
    }

    const long long idx = win_arg(ev);
    if (idx < 0) continue;
    WindowBreakdown& w = windows[{ev.pid, idx}];
    w.pid = ev.pid;
    w.index = idx;
    if (is_window) w.window_us += ev.dur_us;
    if (is_wait) w.io_wait_us += ev.dur_us;
    if (is_pack) w.pack_us += ev.dur_us;
    if (is_preread && ev.tid >= 1) w.preread_us += ev.dur_us;
    if (is_pwrite && ev.tid >= 1) w.pwrite_us += ev.dur_us;
  }

  for (auto& [key, w] : windows) report.windows.push_back(w);
  for (auto& [pid, rank] : ranks) {
    rank.overlap_us = std::max(0.0, rank.worker_io_us - rank.io_wait_us);
    report.io_wait_us += rank.io_wait_us;
    report.worker_io_us += rank.worker_io_us;
    report.overlap_us += rank.overlap_us;
    report.ranks.push_back(rank);
  }
  return report;
}

std::string format_pipeline_report(const PipelineReport& report,
                                   bool per_window) {
  std::string out;
  out += "pipeline timeline breakdown (all times in ms)\n";
  out += strprintf("%-6s %8s %10s %10s %10s %10s %10s %7s %9s %7s %10s\n",
                   "rank", "windows", "window", "io_wait", "pack", "worker_io",
                   "overlap", "slices", "slice_imb", "aio", "aio_ms");
  for (const RankPipelineSummary& r : report.ranks) {
    out += strprintf(
        "%-6d %8lld %10.3f %10.3f %10.3f %10.3f %10.3f %7lld %9.2f %7lld "
        "%10.3f\n",
        r.pid, r.windows, r.window_us / 1e3, r.io_wait_us / 1e3,
        r.pack_us / 1e3, r.worker_io_us / 1e3, r.overlap_us / 1e3,
        r.pack_slices, r.slice_imbalance(), r.aio_ops, r.aio_us / 1e3);
  }
  out += strprintf(
      "total: io_wait %.3f ms, worker_io %.3f ms, overlap %.3f ms "
      "(hidden %.1f%% of worker I/O)\n",
      report.io_wait_us / 1e3, report.worker_io_us / 1e3,
      report.overlap_us / 1e3,
      report.worker_io_us > 0 ? 100.0 * report.overlap_us / report.worker_io_us
                              : 0.0);
  if (per_window && !report.windows.empty()) {
    out += strprintf("%-6s %6s %10s %10s %10s %10s %10s\n", "rank", "win",
                     "window", "io_wait", "pack", "preread", "pwrite");
    for (const WindowBreakdown& w : report.windows) {
      out += strprintf("%-6d %6lld %10.3f %10.3f %10.3f %10.3f %10.3f\n",
                       w.pid, w.index, w.window_us / 1e3, w.io_wait_us / 1e3,
                       w.pack_us / 1e3, w.preread_us / 1e3,
                       w.pwrite_us / 1e3);
    }
  }
  return out;
}

}  // namespace llio::obs
