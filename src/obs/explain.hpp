// Timeline explainer for the collective-I/O window pipeline.
//
// explain_pipeline() digests a trace snapshot into a per-window and
// per-rank utilization/stall breakdown: for every rank, how much time the
// compute thread spent inside windows, how much of that was blocked
// waiting on an I/O worker (stall), how much worker I/O ran, and how much
// of the worker I/O was therefore hidden behind compute (overlap).
//
// The overlap formula is *the same one* IoOpStats uses
// (overlap_s = max(0, worker_io - io_wait)), so the report reconciles
// with `format_stats` output by construction; `bench_noncontig_cli
// --explain` prints both.
//
// Span vocabulary (produced by mpiio::run_window_pipeline and the
// engines; matched here by name + the numeric "win" argument, never by
// time containment):
//   "window"     compute thread, one per window (settle + fill + submit)
//   "io_wait"    compute thread, blocked on a worker future
//   "pack"       compute thread, scatter/gather inside the fill callback
//   "preread"    I/O worker, the window's read-modify-write load
//   "pwrite"     I/O worker, the window's write-back
//   "pack_slice" one slice of a parallel FOTF pack (slice 0 on the
//                compute thread, the rest on worker tracks); the
//                max/mean ratio of slice durations is the load imbalance
//   "aio_op"     one operation through a pfs::AsyncIo engine — on an aio
//                worker track (tid >= 16) at queue depth > 1, inline on
//                the submitting track at depth 1.  Reported as its own
//                column (it is the storage view of preread/pwrite time,
//                so it never adds into worker_io / overlap)
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace llio::obs {

/// One window's slice times in microseconds (0 when the phase did not
/// run for this window — e.g. no preread on a hole-free write).
struct WindowBreakdown {
  int pid = 0;             ///< rank
  long long index = -1;    ///< the "win" span argument
  double window_us = 0;    ///< compute-side window span
  double io_wait_us = 0;   ///< compute thread blocked on the worker
  double pack_us = 0;      ///< scatter/gather inside fill
  double preread_us = 0;   ///< worker-side pre-read
  double pwrite_us = 0;    ///< worker-side write-back
};

/// Per-rank totals across all windows.
struct RankPipelineSummary {
  int pid = 0;
  long long windows = 0;
  double window_us = 0;
  double io_wait_us = 0;
  double pack_us = 0;
  double worker_io_us = 0;  ///< preread + pwrite on worker tracks
  double overlap_us = 0;    ///< max(0, worker_io - io_wait)
  long long aio_ops = 0;    ///< AsyncIo operations (any track)
  double aio_us = 0;        ///< summed AsyncIo op time
  long long pack_slices = 0;      ///< parallel pack slices
  double pack_slice_us = 0;       ///< summed slice time
  double pack_slice_max_us = 0;   ///< slowest single slice
  /// max/mean slice duration (1.0 = perfectly balanced, 0 = no slices).
  double slice_imbalance() const {
    return pack_slices > 0 && pack_slice_us > 0
               ? pack_slice_max_us /
                     (pack_slice_us / static_cast<double>(pack_slices))
               : 0.0;
  }
};

struct PipelineReport {
  std::vector<WindowBreakdown> windows;  ///< sorted by (pid, index)
  std::vector<RankPipelineSummary> ranks;
  double io_wait_us = 0;    ///< sum over ranks
  double worker_io_us = 0;  ///< sum over ranks
  double overlap_us = 0;    ///< sum over ranks
};

PipelineReport explain_pipeline(const std::vector<TraceEvent>& events);

/// Human-readable report; `per_window` adds one line per window.
std::string format_pipeline_report(const PipelineReport& report,
                                   bool per_window = false);

}  // namespace llio::obs
