#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/format.hpp"

namespace llio::obs {

namespace {

bool metrics_from_env() {
  const char* v = std::getenv("LLIO_METRICS");
  if (v == nullptr || *v == '\0') return false;
  const std::string s = v;
  return s == "on" || s == "1" || s == "true";
}

}  // namespace

namespace detail {
std::atomic<bool> g_metrics_enabled{metrics_from_env()};
}

void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

// ---- histogram ---------------------------------------------------------

/// Values < 16 map to their own bucket; above that, bucket = 16 +
/// (msb - 4) * 4 + top-2-sub-bits.  Monotonic in v, 256 covers the full
/// 64-bit range.
int histogram_bucket_index(long long v) {
  if (v < 0) v = 0;
  const auto u = static_cast<unsigned long long>(v);
  if (u < 16) return static_cast<int>(u);
  const int msb = 63 - __builtin_clzll(u);
  const int sub = static_cast<int>((u >> (msb - 2)) & 0x3);
  const int idx = 16 + (msb - 4) * 4 + sub;
  return std::min(idx, Histogram::kBuckets - 1);
}

void histogram_bucket_bounds(int idx, long long& lo, long long& hi) {
  if (idx < 16) {
    lo = hi = idx;
    return;
  }
  const int msb = 4 + (idx - 16) / 4;
  const int sub = (idx - 16) % 4;
  lo = (1LL << msb) + static_cast<long long>(sub) * (1LL << (msb - 2));
  hi = lo + (1LL << (msb - 2)) - 1;
}

namespace {

/// The one quantile rule both Histogram and HistogramData use: pick the
/// bucket holding the 1-based observation ceil(q * n) (nearest-rank), and
/// return its lower bound clamped to the observed extrema.  Integer rank
/// selection makes the result a pure function of the bucket counts — no
/// float accumulation order, no interpolation at bucket edges — so any
/// merge order and any split of the same samples produce the identical
/// value, and that value sits in the exact observation's own bucket.
template <class NextBucket>
double quantile_from_buckets(double q, std::uint64_t n, long long vmin,
                             long long vmax, NextBucket next) {
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  std::uint64_t cum = 0;
  int idx = 0;
  std::uint64_t c = 0;
  while (next(idx, c)) {
    cum += c;
    if (cum >= rank) {
      long long lo = 0, hi = 0;
      histogram_bucket_bounds(idx, lo, hi);
      return static_cast<double>(std::clamp(lo, vmin, vmax));
    }
  }
  return static_cast<double>(vmax);
}

}  // namespace

void HistogramData::record(long long v) {
  if (v < 0) v = 0;
  const int idx = histogram_bucket_index(v);
  auto it = std::lower_bound(
      buckets.begin(), buckets.end(), idx,
      [](const auto& b, int i) { return b.first < i; });
  if (it != buckets.end() && it->first == idx)
    it->second += 1;
  else
    buckets.insert(it, {idx, 1});
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  sum += v;
}

void HistogramData::merge(const HistogramData& o) {
  if (o.count == 0) return;
  if (count == 0) {
    min = o.min;
    max = o.max;
  } else {
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }
  count += o.count;
  sum += o.sum;
  // Merge two sorted sparse bucket lists.
  std::vector<std::pair<int, std::uint64_t>> merged;
  merged.reserve(buckets.size() + o.buckets.size());
  std::size_t i = 0, j = 0;
  while (i < buckets.size() || j < o.buckets.size()) {
    if (j == o.buckets.size() ||
        (i < buckets.size() && buckets[i].first < o.buckets[j].first)) {
      merged.push_back(buckets[i++]);
    } else if (i == buckets.size() ||
               o.buckets[j].first < buckets[i].first) {
      merged.push_back(o.buckets[j++]);
    } else {
      merged.push_back({buckets[i].first,
                        buckets[i].second + o.buckets[j].second});
      ++i;
      ++j;
    }
  }
  buckets = std::move(merged);
}

double HistogramData::quantile(double q) const {
  std::size_t pos = 0;
  return quantile_from_buckets(
      q, count, min, max, [&](int& idx, std::uint64_t& c) {
        if (pos >= buckets.size()) return false;
        idx = buckets[pos].first;
        c = buckets[pos].second;
        ++pos;
        return true;
      });
}

HistogramSummary HistogramData::summary() const {
  HistogramSummary s;
  s.count = count;
  if (s.count == 0) return s;
  s.mean = static_cast<double>(sum) / static_cast<double>(s.count);
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  s.min = min;
  s.max = max;
  return s;
}

void Histogram::record(long long v) {
  if (v < 0) v = 0;
  buckets_[histogram_bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  if (n == 0) {
    // First recording initialises the extrema; racy seconds fix it below.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  long long cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  int pos = 0;
  return quantile_from_buckets(
      q, n, min_.load(std::memory_order_relaxed),
      max_.load(std::memory_order_relaxed),
      [&](int& idx, std::uint64_t& c) {
        while (pos < kBuckets) {
          const std::uint64_t v =
              buckets_[pos].load(std::memory_order_relaxed);
          if (v != 0) {
            idx = pos;
            c = v;
            ++pos;
            return true;
          }
          ++pos;
        }
        return false;
      });
}

HistogramData Histogram::data() const {
  HistogramData d;
  d.count = count_.load(std::memory_order_relaxed);
  d.sum = sum_.load(std::memory_order_relaxed);
  d.min = min_.load(std::memory_order_relaxed);
  d.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) d.buckets.push_back({i, c});
  }
  return d;
}

HistogramSummary Histogram::summary() const {
  // One coherent copy of the buckets feeds all three quantiles, so the
  // summary is internally consistent even while recordings continue.
  return data().summary();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---- registry ----------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mu;
  // std::map: node-based, so references stay valid across inserts.
  std::map<std::string, Counter> counters;
  std::map<std::string, Gauge> gauges;
  std::map<std::string, Histogram> histograms;
};

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::instance() {
  static Registry* r = new Registry;  // leaked: see Tracer::instance
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(impl_->mu);
  return impl_->counters[name];
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(impl_->mu);
  return impl_->gauges[name];
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard lock(impl_->mu);
  return impl_->histograms[name];
}

HistogramSummary Registry::histogram_summary(const std::string& name) const {
  std::lock_guard lock(impl_->mu);
  const auto it = impl_->histograms.find(name);
  return it == impl_->histograms.end() ? HistogramSummary{}
                                       : it->second.summary();
}

std::vector<std::pair<std::string, HistogramData>> Registry::histogram_data()
    const {
  std::lock_guard lock(impl_->mu);
  std::vector<std::pair<std::string, HistogramData>> out;
  out.reserve(impl_->histograms.size());
  for (const auto& [name, h] : impl_->histograms)
    out.push_back({name, h.data()});
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counter_values()
    const {
  std::lock_guard lock(impl_->mu);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(impl_->counters.size());
  for (const auto& [name, c] : impl_->counters)
    out.push_back({name, c.value()});
  return out;
}

std::string Registry::to_json() const {
  std::lock_guard lock(impl_->mu);
  std::string out = "{";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ',';
    first = false;
  };
  out += "\"counters\":{";
  for (const auto& [name, c] : impl_->counters) {
    sep();
    out += strprintf("\"%s\":%llu", name.c_str(),
                     static_cast<unsigned long long>(c.value()));
  }
  out += "},";
  first = true;
  out += "\"gauges\":{";
  for (const auto& [name, g] : impl_->gauges) {
    sep();
    out += strprintf("\"%s\":%lld", name.c_str(), g.value());
  }
  out += "},";
  first = true;
  out += "\"histograms\":{";
  for (const auto& [name, h] : impl_->histograms) {
    sep();
    const HistogramSummary s = h.summary();
    out += strprintf(
        "\"%s\":{\"count\":%llu,\"mean\":%.3f,\"p50\":%.3f,\"p95\":%.3f,"
        "\"p99\":%.3f,\"min\":%lld,\"max\":%lld}",
        name.c_str(), static_cast<unsigned long long>(s.count), s.mean,
        s.p50, s.p95, s.p99, s.min, s.max);
  }
  out += "}}";
  return out;
}

std::string Registry::to_table() const {
  std::lock_guard lock(impl_->mu);
  std::string out;
  for (const auto& [name, c] : impl_->counters)
    out += strprintf("counter    %-36s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(c.value()));
  for (const auto& [name, g] : impl_->gauges)
    out += strprintf("gauge      %-36s %lld\n", name.c_str(), g.value());
  for (const auto& [name, h] : impl_->histograms) {
    const HistogramSummary s = h.summary();
    out += strprintf(
        "histogram  %-36s n=%llu mean=%.1f p50=%.1f p95=%.1f p99=%.1f "
        "min=%lld max=%lld\n",
        name.c_str(), static_cast<unsigned long long>(s.count), s.mean,
        s.p50, s.p95, s.p99, s.min, s.max);
  }
  return out;
}

void Registry::reset_values() {
  std::lock_guard lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c.reset();
  for (auto& [name, g] : impl_->gauges) g.reset();
  for (auto& [name, h] : impl_->histograms) h.reset();
}

// ---- local registry ----------------------------------------------------

Histogram& LocalRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  return hists_[name];  // std::map: references stay valid across inserts
}

std::vector<std::pair<std::string, HistogramData>>
LocalRegistry::histogram_data() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, HistogramData>> out;
  out.reserve(hists_.size());
  for (const auto& [name, h] : hists_) out.push_back({name, h.data()});
  return out;
}

void LocalRegistry::reset_values() {
  std::lock_guard lock(mu_);
  for (auto& [name, h] : hists_) h.reset();
}

}  // namespace llio::obs
