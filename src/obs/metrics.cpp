#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/format.hpp"

namespace llio::obs {

namespace {

bool metrics_from_env() {
  const char* v = std::getenv("LLIO_METRICS");
  if (v == nullptr || *v == '\0') return false;
  const std::string s = v;
  return s == "on" || s == "1" || s == "true";
}

}  // namespace

namespace detail {
std::atomic<bool> g_metrics_enabled{metrics_from_env()};
}

void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

// ---- histogram ---------------------------------------------------------

namespace {

/// Values < 16 map to their own bucket; above that, bucket = 16 +
/// (msb - 4) * 4 + top-2-sub-bits.  Monotonic in v, 256 covers the full
/// 64-bit range.
int bucket_index(long long v) {
  if (v < 0) v = 0;
  const auto u = static_cast<unsigned long long>(v);
  if (u < 16) return static_cast<int>(u);
  const int msb = 63 - __builtin_clzll(u);
  const int sub = static_cast<int>((u >> (msb - 2)) & 0x3);
  const int idx = 16 + (msb - 4) * 4 + sub;
  return std::min(idx, Histogram::kBuckets - 1);
}

/// Inclusive value range covered by a bucket.
void bucket_bounds(int idx, long long& lo, long long& hi) {
  if (idx < 16) {
    lo = hi = idx;
    return;
  }
  const int msb = 4 + (idx - 16) / 4;
  const int sub = (idx - 16) % 4;
  lo = (1LL << msb) + static_cast<long long>(sub) * (1LL << (msb - 2));
  hi = lo + (1LL << (msb - 2)) - 1;
}

}  // namespace

void Histogram::record(long long v) {
  if (v < 0) v = 0;
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  if (n == 0) {
    // First recording initialises the extrema; racy seconds fix it below.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  long long cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based), then walk the cumulative
  // distribution and interpolate inside the bucket that crosses it.
  const double target = q * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    const std::uint64_t prev = cum;
    cum += c;
    if (static_cast<double>(cum) >= target) {
      long long lo = 0, hi = 0;
      bucket_bounds(i, lo, hi);
      const double frac =
          (target - static_cast<double>(prev)) / static_cast<double>(c);
      double v = static_cast<double>(lo) +
                 frac * static_cast<double>(hi - lo);
      v = std::max(v, static_cast<double>(min_.load(std::memory_order_relaxed)));
      v = std::min(v, static_cast<double>(max_.load(std::memory_order_relaxed)));
      return v;
    }
  }
  return static_cast<double>(max_.load(std::memory_order_relaxed));
}

HistogramSummary Histogram::summary() const {
  HistogramSummary s;
  s.count = count_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  s.mean = static_cast<double>(sum_.load(std::memory_order_relaxed)) /
           static_cast<double>(s.count);
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---- registry ----------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mu;
  // std::map: node-based, so references stay valid across inserts.
  std::map<std::string, Counter> counters;
  std::map<std::string, Gauge> gauges;
  std::map<std::string, Histogram> histograms;
};

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::instance() {
  static Registry* r = new Registry;  // leaked: see Tracer::instance
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(impl_->mu);
  return impl_->counters[name];
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(impl_->mu);
  return impl_->gauges[name];
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard lock(impl_->mu);
  return impl_->histograms[name];
}

HistogramSummary Registry::histogram_summary(const std::string& name) const {
  std::lock_guard lock(impl_->mu);
  const auto it = impl_->histograms.find(name);
  return it == impl_->histograms.end() ? HistogramSummary{}
                                       : it->second.summary();
}

std::string Registry::to_json() const {
  std::lock_guard lock(impl_->mu);
  std::string out = "{";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ',';
    first = false;
  };
  out += "\"counters\":{";
  for (const auto& [name, c] : impl_->counters) {
    sep();
    out += strprintf("\"%s\":%llu", name.c_str(),
                     static_cast<unsigned long long>(c.value()));
  }
  out += "},";
  first = true;
  out += "\"gauges\":{";
  for (const auto& [name, g] : impl_->gauges) {
    sep();
    out += strprintf("\"%s\":%lld", name.c_str(), g.value());
  }
  out += "},";
  first = true;
  out += "\"histograms\":{";
  for (const auto& [name, h] : impl_->histograms) {
    sep();
    const HistogramSummary s = h.summary();
    out += strprintf(
        "\"%s\":{\"count\":%llu,\"mean\":%.3f,\"p50\":%.3f,\"p95\":%.3f,"
        "\"p99\":%.3f,\"min\":%lld,\"max\":%lld}",
        name.c_str(), static_cast<unsigned long long>(s.count), s.mean,
        s.p50, s.p95, s.p99, s.min, s.max);
  }
  out += "}}";
  return out;
}

std::string Registry::to_table() const {
  std::lock_guard lock(impl_->mu);
  std::string out;
  for (const auto& [name, c] : impl_->counters)
    out += strprintf("counter    %-36s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(c.value()));
  for (const auto& [name, g] : impl_->gauges)
    out += strprintf("gauge      %-36s %lld\n", name.c_str(), g.value());
  for (const auto& [name, h] : impl_->histograms) {
    const HistogramSummary s = h.summary();
    out += strprintf(
        "histogram  %-36s n=%llu mean=%.1f p50=%.1f p95=%.1f p99=%.1f "
        "min=%lld max=%lld\n",
        name.c_str(), static_cast<unsigned long long>(s.count), s.mean,
        s.p50, s.p95, s.p99, s.min, s.max);
  }
  return out;
}

void Registry::reset_values() {
  std::lock_guard lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c.reset();
  for (auto& [name, g] : impl_->gauges) g.reset();
  for (auto& [name, h] : impl_->histograms) h.reset();
}

}  // namespace llio::obs
