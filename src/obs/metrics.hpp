// Process-global metrics registry: counters, gauges, and log-linear
// histograms with cheap quantile estimates (p50/p95/p99).
//
// Fed by the same instrumentation points as the tracer (TracedFile file
// ops, the pipeline's wait path) but independent of it: metrics aggregate
// across the whole run with O(1) memory, where the tracer records every
// event.  Benches use the registry to put file-op latency quantiles into
// their BENCH_*.json output instead of just means.
//
// Cost model: every recording site guards on metrics_enabled() — one
// relaxed atomic load — and a recording is a handful of relaxed atomic
// increments.  Object lookup by name takes a mutex; instrumentation
// resolves its objects once and keeps references (they are stable for
// the life of the process; the registry never deletes).
//
// Control: hint llio_metrics=on|off at File::open, or environment
// LLIO_METRICS=on.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace llio::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;  ///< seeded from LLIO_METRICS
}

inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on);

class Counter {
 public:
  void add(std::uint64_t d = 1) {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(long long v) { v_.store(v, std::memory_order_relaxed); }
  void add(long long d) { v_.fetch_add(d, std::memory_order_relaxed); }
  long long value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> v_{0};
};

struct HistogramSummary {
  std::uint64_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  long long min = 0;
  long long max = 0;
};

/// Bucket mapping of the log-linear histograms: values < 16 are exact,
/// above that each power-of-two octave splits into 4 sub-buckets.
/// Exposed so merged histogram data (obs/agg) and external validators
/// (tools/check_report.py reimplements the same formula) agree with the
/// recording side bucket for bucket.
int histogram_bucket_index(long long v);

/// Inclusive value range [lo, hi] covered by a bucket.
void histogram_bucket_bounds(int idx, long long& lo, long long& hi);

/// Plain-data image of a Histogram: the non-empty buckets plus the
/// scalar moments.  This is the mergeable, serializable unit the
/// job-level aggregation (obs/agg) ships across ranks; quantiles use the
/// same deterministic nearest-rank selection as Histogram::quantile, so
/// a merged histogram reconciles with its per-rank parts within one
/// bucket by construction.
struct HistogramData {
  std::uint64_t count = 0;
  long long sum = 0;
  long long min = 0;
  long long max = 0;
  /// (bucket index, count), sorted by index, counts > 0 only.
  std::vector<std::pair<int, std::uint64_t>> buckets;

  void record(long long v);
  void merge(const HistogramData& o);

  /// Deterministic nearest-rank quantile: the lower bound of the bucket
  /// holding observation ceil(q * count) (1-based), clamped to the
  /// observed [min, max].  0 when empty.
  double quantile(double q) const;

  HistogramSummary summary() const;
};

/// Log-linear histogram over non-negative integers (latencies in
/// microseconds, sizes in bytes): values < 16 are exact, above that each
/// power-of-two octave splits into 4 sub-buckets, so quantiles carry at
/// most ~12% relative error.  Recording is 4 relaxed atomic RMWs.
class Histogram {
 public:
  static constexpr int kBuckets = 256;

  void record(long long v);
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Deterministic nearest-rank quantile (same rule as
  /// HistogramData::quantile — both sides of a merge agree); q in [0, 1].
  /// 0 when empty.
  double quantile(double q) const;

  /// Copy out the current contents as mergeable plain data.
  HistogramData data() const;

  HistogramSummary summary() const;
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<long long> sum_{0};
  std::atomic<long long> min_{0};
  std::atomic<long long> max_{0};
};

/// Name -> metric map.  References returned are stable for the process
/// lifetime; reset_values() zeroes contents but keeps registrations.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Summary of a histogram if it exists (it may simply never have been
  /// registered when the instrumented path did not run).
  HistogramSummary histogram_summary(const std::string& name) const;

  /// Bulk enumeration for job-level reports: every registered histogram's
  /// data / every counter's value, sorted by name.  Empty histograms are
  /// included (registration without traffic is itself informative).
  std::vector<std::pair<std::string, HistogramData>> histogram_data() const;
  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;

  std::string to_json() const;
  std::string to_table() const;
  void reset_values();

 private:
  Registry();
  struct Impl;
  Impl* impl_;
};

/// A private name -> histogram map with the same stable-reference
/// contract as Registry, but owned by one object (an mpiio::IoEngine)
/// instead of the process.  The process-global Registry is shared by
/// every rank thread of the simulated job, so it cannot answer per-rank
/// questions; each engine feeds its own LocalRegistry and the job-level
/// Collector aggregates them across ranks.
class LocalRegistry {
 public:
  Histogram& histogram(const std::string& name);
  std::vector<std::pair<std::string, HistogramData>> histogram_data() const;
  void reset_values();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Histogram> hists_;
};

}  // namespace llio::obs
