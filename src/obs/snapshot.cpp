#include "obs/snapshot.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

namespace llio::obs {

namespace {

bool sample_from_env() {
  const char* v = std::getenv("LLIO_OBS_SAMPLE");
  if (v == nullptr || *v == '\0') return true;  // always-on by default
  const std::string s = v;
  return !(s == "off" || s == "0" || s == "false");
}

std::size_t ring_from_env() {
  const char* v = std::getenv("LLIO_OBS_RING");
  if (v == nullptr || *v == '\0') return 1024;
  const long n = std::strtol(v, nullptr, 10);
  return n >= 1 ? static_cast<std::size_t>(n) : 1024;
}

/// Interning table: id 0 is reserved for "" so a default-constructed
/// OpSample resolves to empty dimensions.
struct Interner {
  std::mutex mu;
  std::map<std::string, std::uint32_t> ids;
  std::vector<std::string> names{""};
};

Interner& interner() {
  static Interner* t = new Interner;  // leaked: see Tracer::instance
  return *t;
}

}  // namespace

/// Every field a writer touches is an atomic: the version protocol makes
/// torn *logical* states detectable, the atomics make the concurrent
/// accesses themselves race-free (a plain-field seqlock is a C++ data
/// race even when the version check would discard the result).
struct Sampler::Slot {
  std::atomic<std::uint64_t> ver{0};  ///< even = stable, odd = writing
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::int32_t> rank{-1};
  std::atomic<std::uint32_t> op{0};
  std::atomic<std::uint32_t> engine{0};
  std::atomic<std::uint32_t> backend{0};
  std::atomic<std::uint32_t> net{0};
  std::atomic<std::int32_t> qd{1};
  std::atomic<long long> bytes{0};
  std::atomic<long long> runs{0};
  std::atomic<long long> dur_ns{0};
};

struct Sampler::Ring {
  explicit Ring(std::size_t n) : slots(n) {}
  std::atomic<std::uint64_t> head{0};
  std::vector<Slot> slots;
};

Sampler::Sampler()
    : enabled_(sample_from_env()), ring_(new Ring(ring_from_env())) {}

Sampler& Sampler::instance() {
  static Sampler* s = new Sampler;  // leaked: recordings may outlive main
  return *s;
}

void Sampler::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

void Sampler::set_capacity(std::size_t n) {
  if (n < 1) n = 1;
  // The old ring is leaked on purpose: writers may still hold its
  // pointer, and capacity changes are rare config-time events — a
  // use-after-free guard would cost the hot path more than the leak.
  ring_.store(new Ring(n), std::memory_order_release);
}

std::size_t Sampler::capacity() const {
  return ring_.load(std::memory_order_acquire)->slots.size();
}

std::uint32_t Sampler::intern(const std::string& s) {
  Interner& t = interner();
  std::lock_guard lock(t.mu);
  const auto it = t.ids.find(s);
  if (it != t.ids.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(t.names.size());
  t.names.push_back(s);
  t.ids.emplace(s, id);
  return id;
}

std::string Sampler::name(std::uint32_t id) const {
  Interner& t = interner();
  std::lock_guard lock(t.mu);
  return id < t.names.size() ? t.names[id] : "?";
}

std::uint32_t Sampler::dim_count() const {
  Interner& t = interner();
  std::lock_guard lock(t.mu);
  return static_cast<std::uint32_t>(t.names.size());
}

void Sampler::record(OpSample sample) {
  if (!enabled()) return;
  Ring* ring = ring_.load(std::memory_order_acquire);
  const std::uint64_t seq =
      ring->head.fetch_add(1, std::memory_order_relaxed);
  produced_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring->slots[seq % ring->slots.size()];
  std::uint64_t v = slot.ver.load(std::memory_order_relaxed);
  if ((v & 1) != 0 ||
      !slot.ver.compare_exchange_strong(v, v + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
    // Another writer lapped the ring into this slot mid-write: drop
    // rather than wait — the sampler must never add blocking to an op.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.seq.store(seq, std::memory_order_relaxed);
  slot.rank.store(sample.rank, std::memory_order_relaxed);
  slot.op.store(sample.op, std::memory_order_relaxed);
  slot.engine.store(sample.engine, std::memory_order_relaxed);
  slot.backend.store(sample.backend, std::memory_order_relaxed);
  slot.net.store(sample.net, std::memory_order_relaxed);
  slot.qd.store(sample.qd, std::memory_order_relaxed);
  slot.bytes.store(sample.bytes, std::memory_order_relaxed);
  slot.runs.store(sample.runs, std::memory_order_relaxed);
  slot.dur_ns.store(sample.dur_ns, std::memory_order_relaxed);
  slot.ver.store(v + 2, std::memory_order_release);
}

MetricsSnapshot Sampler::snapshot() const {
  MetricsSnapshot out;
  const Ring* ring = ring_.load(std::memory_order_acquire);
  out.capacity = ring->slots.size();
  out.produced = produced_.load(std::memory_order_relaxed);
  out.dropped = dropped_.load(std::memory_order_relaxed);
  out.samples.reserve(ring->slots.size());
  for (const Slot& slot : ring->slots) {
    const std::uint64_t v1 = slot.ver.load(std::memory_order_acquire);
    if (v1 == 0 || (v1 & 1) != 0) continue;  // never written / mid-write
    OpSample s;
    s.seq = slot.seq.load(std::memory_order_relaxed);
    s.rank = slot.rank.load(std::memory_order_relaxed);
    s.op = slot.op.load(std::memory_order_relaxed);
    s.engine = slot.engine.load(std::memory_order_relaxed);
    s.backend = slot.backend.load(std::memory_order_relaxed);
    s.net = slot.net.load(std::memory_order_relaxed);
    s.qd = slot.qd.load(std::memory_order_relaxed);
    s.bytes = slot.bytes.load(std::memory_order_relaxed);
    s.runs = slot.runs.load(std::memory_order_relaxed);
    s.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.ver.load(std::memory_order_relaxed) != v1) continue;  // torn
    out.samples.push_back(s);
  }
  std::sort(out.samples.begin(), out.samples.end(),
            [](const OpSample& a, const OpSample& b) { return a.seq < b.seq; });
  return out;
}

MetricsSnapshot Sampler::snapshot_since(std::uint64_t min_seq) const {
  MetricsSnapshot out = snapshot();
  std::erase_if(out.samples,
                [&](const OpSample& s) { return s.seq < min_seq; });
  return out;
}

void Sampler::reset() {
  ring_.store(new Ring(capacity()), std::memory_order_release);
  produced_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace llio::obs
