// Always-on sampling: a bounded ring of recent per-operation records
// behind a lock-light snapshot API.
//
// The tracer records everything (too heavy to leave on) and the metrics
// registry keeps only aggregates (no per-op context); the adaptive
// policy layer the ROADMAP plans needs something in between — "what did
// the last few hundred operations look like: which engine, which
// backend, which net model, how many bytes, how long" — cheap enough to
// stay enabled in production runs.  This is that layer.
//
// Concurrency model (ThreadSanitizer-clean by construction):
//   * record() claims a slot by fetch_add on the ring head, then flips
//     the slot's version counter odd -> writes every field as a relaxed
//     atomic store -> flips it back even (release).  A writer that finds
//     the slot mid-write (odd version, or the CAS claim fails) drops its
//     sample and counts it — it never blocks and never spins.
//   * snapshot() reads each slot's version (acquire), copies the fields,
//     and re-reads the version: unchanged-and-even means the copy is
//     coherent, anything else discards the slot.  Every shared field is
//     a std::atomic, so there is no C++ data race to report — torn
//     logical states are rejected by the version check instead.
//   * String dimensions (op / engine / backend / net model) are interned
//     to small ids once per resolve (mutex), so a record() stores only
//     integers.
//
// Cost with sampling on and tracing off: one enabled-flag load, one
// fetch_add, one CAS, and ~10 relaxed stores — bench_ablation_pipeline
// gates this under its sampling budget next to the disabled-probe guard.
//
// Control: hint llio_obs_sample=on|off / env LLIO_OBS_SAMPLE (default
// on), ring capacity hint llio_obs_ring / env LLIO_OBS_RING (default
// 1024).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace llio::obs {

/// One sampled operation.  String dimensions are interned ids — resolve
/// them with Sampler::name().
struct OpSample {
  std::uint64_t seq = 0;  ///< claim order (monotonic across the ring)
  std::int32_t rank = -1;
  std::uint32_t op = 0;       ///< "read_at_all", ... (interned)
  std::uint32_t engine = 0;   ///< "listless" / "list-based" (interned)
  std::uint32_t backend = 0;  ///< llio_backend target (interned)
  std::uint32_t net = 0;      ///< llio_net_model (interned)
  std::int32_t qd = 1;        ///< backend queue depth during the op
  long long bytes = 0;        ///< user payload bytes
  long long runs = 0;         ///< storage accesses (read + write ops)
  long long dur_ns = 0;       ///< operation wall time

  double dur_us() const { return static_cast<double>(dur_ns) / 1e3; }
};

/// A coherent copy of the ring: the retained samples oldest-first plus
/// the produced/dropped totals (produced - retained = overwritten).
struct MetricsSnapshot {
  std::uint64_t produced = 0;
  std::uint64_t dropped = 0;
  std::size_t capacity = 0;
  std::vector<OpSample> samples;
};

class Sampler {
 public:
  static Sampler& instance();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on);

  /// Replace the ring with an empty one of `n` slots (>= 1).  Retained
  /// samples are discarded; produced/dropped totals persist.  Rare
  /// config-time operation (File::open applying llio_obs_ring).
  void set_capacity(std::size_t n);
  std::size_t capacity() const;

  /// Intern a dimension string; equal strings return equal ids.  Takes a
  /// mutex — resolve once and cache, like Registry lookups.
  std::uint32_t intern(const std::string& s);

  /// The string behind an interned id ("?" for an unknown id).
  std::string name(std::uint32_t id) const;

  /// Number of interned dimension ids (valid ids are [0, dim_count)).
  std::uint32_t dim_count() const;

  /// Record one sample (sample.seq is assigned here).  No-op when
  /// disabled.  Never blocks: a slot collision drops the sample.
  void record(OpSample sample);

  MetricsSnapshot snapshot() const;

  /// Incremental read: as snapshot(), but keeps only samples with
  /// seq >= min_seq.  A consumer (the adaptive Advisor warm-starting a
  /// key, a poller) remembers the last seq it saw and asks only for what
  /// is new; produced/dropped totals are still the ring-lifetime values.
  MetricsSnapshot snapshot_since(std::uint64_t min_seq) const;

  /// Drop retained samples and zero the produced/dropped totals.
  void reset();

 private:
  Sampler();

  struct Slot;
  struct Ring;

  std::atomic<bool> enabled_;
  std::atomic<Ring*> ring_;
  std::atomic<std::uint64_t> produced_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace llio::obs
