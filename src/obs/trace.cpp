#include "obs/trace.hpp"

#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <map>
#include <mutex>
#include <utility>

#include "common/error.hpp"
#include "common/format.hpp"

namespace llio::obs {

namespace {

int level_from_env() {
  const char* v = std::getenv("LLIO_TRACE");
  if (v == nullptr || *v == '\0') return 0;
  const std::string s = v;
  if (s == "off" || s == "0") return 0;
  if (s == "spans" || s == "1") return 1;
  if (s == "full" || s == "2") return 2;
  std::fprintf(stderr, "llio: ignoring LLIO_TRACE=%s (off|spans|full)\n",
               v);
  return 0;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strprintf("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

void append_args_json(std::string& out, const std::vector<TraceArg>& args) {
  if (args.empty()) return;
  out += ",\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += json_escape(args[i].key);
    out += "\":";
    if (args[i].is_text) {
      out += '"';
      out += json_escape(args[i].text);
      out += '"';
    } else {
      out += strprintf("%lld", args[i].value);
    }
  }
  out += '}';
}

void append_event_json(std::string& out, const TraceEvent& ev) {
  out += strprintf("{\"name\":\"%s\",\"ph\":\"%c\",\"pid\":%d,\"tid\":%d,"
                   "\"ts\":%.3f",
                   json_escape(ev.name).c_str(), ev.phase, ev.pid, ev.tid,
                   ev.ts_us);
  if (ev.phase == 'X') out += strprintf(",\"dur\":%.3f", ev.dur_us);
  if (ev.phase == 'i') out += ",\"s\":\"t\"";  // thread-scoped instant
  append_args_json(out, ev.args);
  out += '}';
}

}  // namespace

namespace detail {
std::atomic<int> g_trace_level{level_from_env()};
}

const char* trace_level_name(TraceLevel l) noexcept {
  switch (l) {
    case TraceLevel::Off: return "off";
    case TraceLevel::Spans: return "spans";
    case TraceLevel::Full: return "full";
  }
  return "off";
}

double now_us() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double, std::micro>(Clock::now() - epoch)
      .count();
}

// ---- per-thread state --------------------------------------------------

namespace {

struct ThreadTrack {
  int pid = -1;
  int tid = 0;
};

thread_local ThreadTrack tl_track;

/// Stable synthetic pid for threads that record without a track guard
/// (e.g. a test body outside sim::Runtime).
int fallback_pid() {
  static std::atomic<int> next{900};
  thread_local int mine = next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

/// Per-thread event buffer.  push() is lock-free; the buffer drains into
/// the tracer when it grows past kDrainAt and when the thread exits.
/// `gen` implements Tracer::clear(): a buffer whose generation is stale
/// drops its events instead of draining them.
struct ThreadBuffer {
  std::vector<TraceEvent> events;
  std::uint64_t gen = 0;

  static constexpr std::size_t kDrainAt = 1 << 16;

  void push(TraceEvent&& ev) {
    Tracer& tr = Tracer::instance();
    const std::uint64_t cur = tr.generation();
    if (gen != cur) {
      events.clear();
      gen = cur;
    }
    events.push_back(std::move(ev));
    if (events.size() >= kDrainAt) flush();
  }

  void flush() {
    if (events.empty()) return;
    Tracer::instance().drain(std::move(events), gen);
    events.clear();
  }

  ~ThreadBuffer() { flush(); }
};

ThreadBuffer& tls_buffer() {
  thread_local ThreadBuffer buf;
  return buf;
}

}  // namespace

namespace detail {

void record(TraceEvent&& ev) {
  if (ev.pid == 0 && ev.tid == 0) {  // unresolved: stamp the thread track
    ev.pid = tl_track.pid >= 0 ? tl_track.pid : fallback_pid();
    ev.tid = tl_track.tid;
  }
  tls_buffer().push(std::move(ev));
}

void span_finish(const char* name, double t0_us,
                 std::unique_ptr<std::vector<TraceArg>> args) {
  TraceEvent ev;
  ev.name = name;
  ev.phase = 'X';
  ev.pid = tl_track.pid >= 0 ? tl_track.pid : fallback_pid();
  ev.tid = tl_track.tid;
  ev.ts_us = t0_us;
  ev.dur_us = now_us() - t0_us;
  if (args) ev.args = std::move(*args);
  tls_buffer().push(std::move(ev));
}

}  // namespace detail

void instant(const char* name, TraceLevel min,
             std::initializer_list<TraceArg> args) {
  if (!trace_enabled(min)) return;
  TraceEvent ev;
  ev.name = name;
  ev.phase = 'i';
  ev.pid = tl_track.pid >= 0 ? tl_track.pid : fallback_pid();
  ev.tid = tl_track.tid;
  ev.ts_us = now_us();
  ev.args.assign(args.begin(), args.end());
  tls_buffer().push(std::move(ev));
}

int current_pid() { return tl_track.pid; }

void flush_thread_trace() { tls_buffer().flush(); }

ThreadTrackGuard::ThreadTrackGuard(int pid, int tid,
                                   const std::string& process_name,
                                   const std::string& thread_name)
    : prev_pid_(tl_track.pid), prev_tid_(tl_track.tid) {
  tl_track.pid = pid;
  tl_track.tid = tid;
  Tracer::instance().register_track(pid, tid, process_name, thread_name);
}

ThreadTrackGuard::~ThreadTrackGuard() {
  // Hand the buffered events over while the track is still accurate.
  tls_buffer().flush();
  tl_track.pid = prev_pid_;
  tl_track.tid = prev_tid_;
}

// ---- the tracer --------------------------------------------------------

struct Tracer::Impl {
  mutable std::mutex mu;
  std::vector<TraceEvent> events;
  std::map<int, std::string> process_names;
  std::map<std::pair<int, int>, std::string> thread_names;
  std::string output_path;
  bool atexit_registered = false;
  std::atomic<std::uint64_t> gen{0};
};

Tracer::Tracer() : impl_(new Impl) {
  const char* path = std::getenv("LLIO_TRACE_FILE");
  if (path != nullptr && *path != '\0') set_output_path(path);
}

Tracer& Tracer::instance() {
  static Tracer* t = new Tracer;  // leaked: usable during static teardown
  return *t;
}

void Tracer::set_level(TraceLevel l) {
  detail::g_trace_level.store(static_cast<int>(l),
                              std::memory_order_relaxed);
}

TraceLevel Tracer::level() const {
  return static_cast<TraceLevel>(
      detail::g_trace_level.load(std::memory_order_relaxed));
}

void Tracer::set_output_path(std::string path) {
  std::lock_guard lock(impl_->mu);
  impl_->output_path = std::move(path);
  if (!impl_->atexit_registered && !impl_->output_path.empty()) {
    impl_->atexit_registered = true;
    std::atexit([] {
      Tracer& tr = Tracer::instance();
      std::string path;
      {
        std::lock_guard lk(tr.impl_->mu);
        path = tr.impl_->output_path;
      }
      if (!path.empty()) tr.write_chrome_json(path);
    });
  }
}

void Tracer::clear() {
  impl_->gen.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(impl_->mu);
  impl_->events.clear();
}

std::uint64_t Tracer::generation() const {
  return impl_->gen.load(std::memory_order_relaxed);
}

void Tracer::drain(std::vector<TraceEvent>&& events, std::uint64_t gen) {
  std::lock_guard lock(impl_->mu);
  if (gen != impl_->gen.load(std::memory_order_relaxed)) return;  // stale
  if (impl_->events.empty()) {
    impl_->events = std::move(events);
  } else {
    impl_->events.insert(impl_->events.end(),
                         std::make_move_iterator(events.begin()),
                         std::make_move_iterator(events.end()));
  }
}

void Tracer::register_track(int pid, int tid, std::string process_name,
                            std::string thread_name) {
  std::lock_guard lock(impl_->mu);
  if (!process_name.empty()) impl_->process_names[pid] = std::move(process_name);
  if (!thread_name.empty())
    impl_->thread_names[{pid, tid}] = std::move(thread_name);
}

std::vector<TraceEvent> Tracer::snapshot() {
  tls_buffer().flush();
  std::lock_guard lock(impl_->mu);
  return impl_->events;
}

std::string Tracer::chrome_json() { return obs::chrome_json(snapshot()); }

std::string chrome_json(const std::vector<TraceEvent>& events) {
  Tracer& tr = Tracer::instance();
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  {
    std::lock_guard lock(tr.impl_->mu);
    for (const auto& [pid, name] : tr.impl_->process_names) {
      if (!first) out += ",\n";
      first = false;
      out += strprintf("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                       "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                       pid, json_escape(name).c_str());
    }
    for (const auto& [key, name] : tr.impl_->thread_names) {
      if (!first) out += ",\n";
      first = false;
      out += strprintf(
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
          "\"args\":{\"name\":\"%s\"}}",
          key.first, key.second, json_escape(name).c_str());
      out += strprintf(
          ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":%d,"
          "\"tid\":%d,\"args\":{\"sort_index\":%d}}",
          key.first, key.second, key.second);
    }
  }
  for (const TraceEvent& ev : events) {
    if (!first) out += ",\n";
    first = false;
    append_event_json(out, ev);
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void Tracer::write_chrome_json(const std::string& path) {
  const std::string json = chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  LLIO_REQUIRE(f != nullptr, Errc::Io,
               "trace: cannot open output file " + path);
  const std::size_t put = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  LLIO_REQUIRE(put == json.size(), Errc::Io,
               "trace: short write to " + path);
}

}  // namespace llio::obs
