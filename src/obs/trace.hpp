// Per-rank span tracing, emitted as Chrome trace-event JSON
// (chrome://tracing / https://ui.perfetto.dev loadable).
//
// The paper's whole argument (§2.4/§3.3) is an overhead decomposition —
// where time goes between list building, packing, exchange, and file
// access.  IoOpStats sums those phases per operation; the tracer records
// them as *spans on a timeline*, so the double-buffered window overlap of
// the collective pipeline is visible as interleaved preread/pack/pwrite
// slices instead of two aggregate numbers.
//
// Model:
//   * One track group ("process") per rank: pid = rank.  Within a rank,
//     tid 0 is the compute thread and tid >= 1 are the pipeline's I/O
//     workers (ThreadTrackGuard assigns both).
//   * obs::Span is an RAII complete-event ('X'): constructed it samples
//     the monotonic clock, destroyed it appends one event to a
//     *per-thread* buffer — no locks on the hot path.  Buffers drain into
//     the global tracer when they grow large and when the thread exits.
//   * obs::instant() records a zero-duration marker ('i'), used by the
//     perturbation backends (ThrottledFile delays, FaultyFile faults).
//
// Cost when disabled: every probe is one relaxed atomic load and a
// branch (trace_enabled()); bench_ablation_pipeline asserts the
// disabled-probe cost stays in the nanosecond range.
//
// Configuration: hints llio_trace=off|spans|full, llio_trace_file=<path>,
// applied at mpiio::File::open; environment variables LLIO_TRACE and
// LLIO_TRACE_FILE seed the same settings for benches that build Options
// directly.  `spans` records the phase/window level; `full` adds per-file
// -op spans (TracedFile), communication internals, pack kernels, and
// instant perturbation events.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

namespace llio::obs {

enum class TraceLevel : int { Off = 0, Spans = 1, Full = 2 };

namespace detail {
extern std::atomic<int> g_trace_level;  ///< seeded from LLIO_TRACE
}

/// The one probe every instrumentation point compiles down to when
/// tracing is off.
inline bool trace_enabled(TraceLevel min = TraceLevel::Spans) {
  return detail::g_trace_level.load(std::memory_order_relaxed) >=
         static_cast<int>(min);
}

const char* trace_level_name(TraceLevel l) noexcept;

/// One span/instant argument; numeric unless `is_text`.
struct TraceArg {
  std::string key;
  long long value = 0;
  std::string text;
  bool is_text = false;
};

struct TraceEvent {
  std::string name;
  char phase = 'X';  ///< 'X' complete, 'i' instant
  int pid = 0;       ///< rank (track group)
  int tid = 0;       ///< 0 = compute thread, >= 1 = pipeline I/O worker
  double ts_us = 0;  ///< monotonic microseconds since the tracer epoch
  double dur_us = 0; ///< 'X' only
  std::vector<TraceArg> args;
};

/// Microseconds since the process-wide trace epoch (monotonic clock).
double now_us();

namespace detail {
void record(TraceEvent&& ev);       // append to this thread's buffer
void span_finish(const char* name, double t0_us,
                 std::unique_ptr<std::vector<TraceArg>> args);
}  // namespace detail

/// RAII complete-event span.  Constructed against a minimum level; when
/// the tracer sits below it the constructor is a relaxed load + branch
/// and the destructor a dead branch.
class Span {
 public:
  explicit Span(const char* name, TraceLevel min = TraceLevel::Spans) {
    if (trace_enabled(min)) {
      name_ = name;
      t0_us_ = now_us();
      active_ = true;
    }
  }
  ~Span() {
    if (active_) detail::span_finish(name_, t0_us_, std::move(args_));
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }

  /// Attach a numeric argument (shown in the Perfetto slice details).
  void arg(const char* key, long long v) {
    if (!active_) return;
    ensure_args().push_back(TraceArg{key, v, {}, false});
  }
  void arg(const char* key, const char* text) {
    if (!active_) return;
    ensure_args().push_back(TraceArg{key, 0, text, true});
  }

 private:
  std::vector<TraceArg>& ensure_args() {
    if (!args_) args_ = std::make_unique<std::vector<TraceArg>>();
    return *args_;
  }

  const char* name_ = nullptr;
  double t0_us_ = 0;
  bool active_ = false;
  std::unique_ptr<std::vector<TraceArg>> args_;
};

/// Zero-duration marker (phase 'i') on the calling thread's track.
void instant(const char* name, TraceLevel min,
             std::initializer_list<TraceArg> args = {});

/// Current thread's track group (rank), or -1 when unassigned.  Threads
/// that record events without a track get a stable synthetic pid.
int current_pid();

/// Hand the calling thread's buffered events to the tracer now.
/// Tracer::snapshot() flushes only the *calling* thread, so a collective
/// aggregation point (mpiio::File::close) has every rank thread flush
/// itself before one rank snapshots.
void flush_thread_trace();

/// Assigns the calling thread to a (pid, tid) track for its lifetime and
/// registers the Perfetto process/thread names; restores the previous
/// assignment on destruction.  sim::Runtime tags rank threads
/// (pid = rank, tid = 0), the pipeline's IoWorkerPool tags its workers
/// (owner rank, tid = 1 + worker index).
class ThreadTrackGuard {
 public:
  ThreadTrackGuard(int pid, int tid, const std::string& process_name,
                   const std::string& thread_name);
  ~ThreadTrackGuard();
  ThreadTrackGuard(const ThreadTrackGuard&) = delete;
  ThreadTrackGuard& operator=(const ThreadTrackGuard&) = delete;

 private:
  int prev_pid_;
  int prev_tid_;
};

/// Process-global event sink.  Intentionally leaked: instant events and
/// span destructors may fire during static destruction.
class Tracer {
 public:
  static Tracer& instance();

  void set_level(TraceLevel l);
  TraceLevel level() const;

  /// Dump the trace to `path` at process exit (idempotent; last path
  /// wins).  Seeded from LLIO_TRACE_FILE.
  void set_output_path(std::string path);

  /// Drop every recorded event, including events still sitting in other
  /// threads' buffers (generation check at drain time).
  void clear();

  /// All events drained so far plus the calling thread's buffer.  Call
  /// after the producing threads joined (sim::Runtime::run returns, the
  /// pipeline's workers exit) for a complete picture.
  std::vector<TraceEvent> snapshot();

  /// The full trace as Chrome trace-event JSON.
  std::string chrome_json();
  void write_chrome_json(const std::string& path);

  // Internal plumbing (thread buffers, track registration).
  void drain(std::vector<TraceEvent>&& events, std::uint64_t gen);
  std::uint64_t generation() const;
  void register_track(int pid, int tid, std::string process_name,
                      std::string thread_name);

 private:
  friend std::string chrome_json(const std::vector<TraceEvent>& events);
  Tracer();
  struct Impl;
  Impl* impl_;
};

/// Render a list of events (e.g. a snapshot) as Chrome trace JSON with
/// the tracer's registered track names.
std::string chrome_json(const std::vector<TraceEvent>& events);

}  // namespace llio::obs
