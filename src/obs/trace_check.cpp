#include "obs/trace_check.hpp"

#include <cctype>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/format.hpp"

namespace llio::obs {

namespace {

/// Minimal JSON value: just enough structure to inspect trace events.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind =
      Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : fields)
      if (k == key) return &v;
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error(
        strprintf("at byte %zu: %s", pos_, why.c_str()));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(strprintf("expected '%c'", c));
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': case 'f': return boolean();
      case 'n': return null();
      default: return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    for (;;) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.fields.emplace_back(std::move(key.str), value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    for (;;) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    expect('"');
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case '/': v.str += '/'; break;
          case 'b': v.str += '\b'; break;
          case 'f': v.str += '\f'; break;
          case 'n': v.str += '\n'; break;
          case 'r': v.str += '\r'; break;
          case 't': v.str += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ +
                  static_cast<std::size_t>(i)])))
                fail("bad \\u escape");
            }
            pos_ += 4;
            v.str += '?';  // code point identity does not matter here
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        v.str += c;
      }
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue null() {
    if (s_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
      if (pos_ == before) fail("bad number");
    };
    digits();
    if (pos_ < s_.size() && s_[pos_] == '.') { ++pos_; digits(); }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      digits();
    }
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string check_events(const std::vector<JsonValue>& events,
                         TraceCheckResult& out) {
  // (pid, tid) -> stack of open 'B' span names.
  std::map<std::pair<long long, long long>, std::vector<std::string>> open;
  std::set<std::pair<long long, long long>> tracks;
  const std::string known_ph = "XBEiIMCbnesfNODPRSTpFV";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& ev = events[i];
    auto where = [&] { return strprintf("event %zu: ", i); };
    if (ev.kind != JsonValue::Kind::Object)
      return where() + "not an object";
    const JsonValue* name = ev.find("name");
    const JsonValue* ph = ev.find("ph");
    const JsonValue* pid = ev.find("pid");
    const JsonValue* tid = ev.find("tid");
    if (name == nullptr || name->kind != JsonValue::Kind::String)
      return where() + "missing string \"name\"";
    if (ph == nullptr || ph->kind != JsonValue::Kind::String ||
        ph->str.size() != 1)
      return where() + "missing one-character \"ph\"";
    if (known_ph.find(ph->str[0]) == std::string::npos)
      return where() + "unknown phase '" + ph->str + "'";
    if (pid == nullptr || pid->kind != JsonValue::Kind::Number)
      return where() + "missing numeric \"pid\"";
    if (tid == nullptr || tid->kind != JsonValue::Kind::Number)
      return where() + "missing numeric \"tid\"";
    ++out.events;
    const char phase = ph->str[0];
    if (phase == 'M') continue;  // metadata: no ts required
    const JsonValue* ts = ev.find("ts");
    if (ts == nullptr || ts->kind != JsonValue::Kind::Number)
      return where() + "missing numeric \"ts\"";
    const auto track = std::make_pair(
        static_cast<long long>(pid->number),
        static_cast<long long>(tid->number));
    tracks.insert(track);
    out.names.insert(name->str);
    if (phase == 'X') {
      const JsonValue* dur = ev.find("dur");
      if (dur == nullptr || dur->kind != JsonValue::Kind::Number)
        return where() + "'X' event missing numeric \"dur\"";
      if (dur->number < 0) return where() + "negative \"dur\"";
      ++out.spans;
    } else if (phase == 'B') {
      open[track].push_back(name->str);
    } else if (phase == 'E') {
      auto& stack = open[track];
      if (stack.empty())
        return where() + "'E' without matching 'B' on its track";
      if (!name->str.empty() && stack.back() != name->str)
        return where() + "'E' name \"" + name->str +
               "\" does not match open 'B' \"" + stack.back() + "\"";
      stack.pop_back();
    }
  }
  for (const auto& [track, stack] : open) {
    if (!stack.empty())
      return strprintf("track (%lld, %lld) ends with %zu unclosed 'B' "
                       "event(s); first open: \"%s\"",
                       track.first, track.second, stack.size(),
                       stack.front().c_str());
  }
  out.tracks = static_cast<long long>(tracks.size());
  return {};
}

}  // namespace

TraceCheckResult check_chrome_trace(const std::string& json) {
  TraceCheckResult out;
  JsonValue root;
  try {
    root = Parser(json).parse();
  } catch (const std::exception& e) {
    out.error = std::string("JSON parse error ") + e.what();
    return out;
  }
  const std::vector<JsonValue>* events = nullptr;
  if (root.kind == JsonValue::Kind::Array) {
    events = &root.items;
  } else if (root.kind == JsonValue::Kind::Object) {
    const JsonValue* te = root.find("traceEvents");
    if (te == nullptr || te->kind != JsonValue::Kind::Array) {
      out.error = "top-level object has no \"traceEvents\" array";
      return out;
    }
    events = &te->items;
  } else {
    out.error = "top level is neither an array nor an object";
    return out;
  }
  out.error = check_events(*events, out);
  out.ok = out.error.empty();
  return out;
}

}  // namespace llio::obs
