// Structural validator for Chrome trace-event JSON, used by the trace
// tests and the standalone `llio_trace_check` tool (CI runs it against
// the trace a bench emits before uploading it as an artifact).
//
// Checks, without any external JSON dependency:
//   * the text is well-formed JSON (small recursive-descent parser);
//   * the top level is either an event array or an object with a
//     "traceEvents" array (the form the tracer writes);
//   * every event has a string "name", a one-character "ph", and numeric
//     "ts"/"pid"/"tid";
//   * complete events ('X') carry a non-negative "dur";
//   * duration events ('B'/'E') are balanced per (pid, tid) track with
//     matching names (the tracer emits only 'X', but hand-written or
//     foreign traces are accepted too).
#pragma once

#include <set>
#include <string>

namespace llio::obs {

struct TraceCheckResult {
  bool ok = false;
  std::string error;      ///< empty when ok
  long long events = 0;   ///< events seen (metadata included)
  long long spans = 0;    ///< 'X' complete events
  long long tracks = 0;   ///< distinct (pid, tid) pairs
  std::set<std::string> names;  ///< distinct non-metadata event names
};

TraceCheckResult check_chrome_trace(const std::string& json);

}  // namespace llio::obs
