#include "pfs/active_buffer_file.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace llio::pfs {

ActiveBufferFile::ActiveBufferFile(FilePtr inner, Off max_pending)
    : inner_(std::move(inner)), max_pending_(max_pending),
      virtual_size_(inner_->size()) {
  flusher_ = std::thread([this] { flusher_loop(); });
}

std::shared_ptr<ActiveBufferFile> ActiveBufferFile::wrap(
    FilePtr inner, Off max_pending_bytes) {
  LLIO_REQUIRE(inner != nullptr, Errc::InvalidArgument,
               "ActiveBufferFile: null inner backend");
  LLIO_REQUIRE(max_pending_bytes > 0, Errc::InvalidArgument,
               "ActiveBufferFile: non-positive stage size");
  return std::shared_ptr<ActiveBufferFile>(
      new ActiveBufferFile(std::move(inner), max_pending_bytes));
}

ActiveBufferFile::~ActiveBufferFile() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

void ActiveBufferFile::flusher_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty() && stop_) return;
    if (queue_.empty()) continue;
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    try {
      inner_->pwrite(p.offset, p.data);
    } catch (...) {
      lock.lock();
      if (!flush_error_) flush_error_ = std::current_exception();
      pending_bytes_ -= to_off(p.data.size());
      drain_cv_.notify_all();
      continue;
    }
    lock.lock();
    pending_bytes_ -= to_off(p.data.size());
    drain_cv_.notify_all();
  }
}

void ActiveBufferFile::do_pwrite(Off offset, ConstByteSpan data) {
  std::unique_lock lock(mu_);
  if (flush_error_) {
    auto err = flush_error_;
    flush_error_ = nullptr;
    std::rethrow_exception(err);
  }
  drain_cv_.wait(lock, [&] {
    return pending_bytes_ + to_off(data.size()) <= max_pending_ ||
           queue_.empty();
  });
  queue_.push_back({offset, ByteVec(data.begin(), data.end())});
  pending_bytes_ += to_off(data.size());
  peak_pending_ = std::max(peak_pending_, pending_bytes_);
  virtual_size_ = std::max(virtual_size_, offset + to_off(data.size()));
  queue_cv_.notify_all();
}

void ActiveBufferFile::drain() {
  std::unique_lock lock(mu_);
  drain_cv_.wait(lock, [&] { return queue_.empty() && pending_bytes_ == 0; });
  if (flush_error_) {
    auto err = flush_error_;
    flush_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

Off ActiveBufferFile::do_pread(Off offset, ByteSpan out) {
  drain();  // read-after-write consistency
  return inner_->pread(offset, out);
}

void ActiveBufferFile::do_pwritev(std::span<const ConstIoVec> iov) {
  // Stage the whole batch under a single lock acquisition / space wait.
  Off batch_bytes = 0;
  for (const ConstIoVec& v : iov) batch_bytes += to_off(v.buf.size());
  std::unique_lock lock(mu_);
  if (flush_error_) {
    auto err = flush_error_;
    flush_error_ = nullptr;
    std::rethrow_exception(err);
  }
  drain_cv_.wait(lock, [&] {
    return pending_bytes_ + batch_bytes <= max_pending_ || queue_.empty();
  });
  for (const ConstIoVec& v : iov) {
    queue_.push_back({v.offset, ByteVec(v.buf.begin(), v.buf.end())});
    pending_bytes_ += to_off(v.buf.size());
    virtual_size_ = std::max(virtual_size_, v.offset + to_off(v.buf.size()));
  }
  peak_pending_ = std::max(peak_pending_, pending_bytes_);
  queue_cv_.notify_all();
}

Off ActiveBufferFile::do_preadv(std::span<const IoVec> iov) {
  drain();  // read-after-write consistency
  return inner_->preadv(iov);
}

Off ActiveBufferFile::size() const {
  std::lock_guard lock(mu_);
  return std::max(virtual_size_, inner_->size());
}

void ActiveBufferFile::resize(Off new_size) {
  drain();
  inner_->resize(new_size);
  std::lock_guard lock(mu_);
  virtual_size_ = new_size;
}

void ActiveBufferFile::sync() {
  drain();
  inner_->sync();
}

Off ActiveBufferFile::peak_pending_bytes() const {
  std::lock_guard lock(mu_);
  return peak_pending_;
}

}  // namespace llio::pfs
