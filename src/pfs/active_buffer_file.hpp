// Active buffering with an I/O thread (the related work the paper cites:
// Ma et al., "Improving MPI-IO output performance with active buffering
// plus threads", IPDPS 2003 [7], and Dickens/Thakur [2]).
//
// Writes are staged into a bounded in-memory queue and flushed to the
// wrapped backend, in order, by a dedicated flusher thread — hiding
// storage latency behind computation.  Reads and metadata operations
// drain the queue first, preserving read-after-write semantics.  This is
// orthogonal to listless I/O (it hides *file* time, not the datatype
// handling the paper attacks), which is exactly why it is interesting as
// an ablation: with a slow backend, active buffering helps both engines
// equally and the listless advantage persists.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "pfs/file_backend.hpp"

namespace llio::pfs {

class ActiveBufferFile final : public FileBackend {
 public:
  /// Stage up to `max_pending_bytes` of writes; pwrite blocks only when
  /// the stage is full (backpressure).
  static std::shared_ptr<ActiveBufferFile> wrap(
      FilePtr inner, Off max_pending_bytes = 64 << 20);

  ~ActiveBufferFile() override;

  Off size() const override;
  void resize(Off new_size) override;
  void sync() override;
  void set_iov_batch_max(Off n) override {
    FileBackend::set_iov_batch_max(n);
    inner_->set_iov_batch_max(n);
  }
  std::optional<AsyncInfo> async_info() const override {
    return inner_->async_info();
  }

  /// Block until every staged write reached the inner backend.
  void drain();

  /// Peak number of bytes ever staged (observability for tests/benches).
  Off peak_pending_bytes() const;

 protected:
  Off do_pread(Off offset, ByteSpan out) override;
  void do_pwrite(Off offset, ConstByteSpan data) override;
  Off do_preadv(std::span<const IoVec> iov) override;
  void do_pwritev(std::span<const ConstIoVec> iov) override;

 private:
  ActiveBufferFile(FilePtr inner, Off max_pending);

  struct Pending {
    Off offset;
    ByteVec data;
  };

  void flusher_loop();

  FilePtr inner_;
  const Off max_pending_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;   ///< flusher wakes on new work
  std::condition_variable drain_cv_;   ///< producers wake on space/drain
  std::deque<Pending> queue_;
  Off pending_bytes_ = 0;
  Off peak_pending_ = 0;
  Off virtual_size_ = 0;  ///< file size including staged writes
  bool stop_ = false;
  std::exception_ptr flush_error_;

  std::thread flusher_;
};

}  // namespace llio::pfs
