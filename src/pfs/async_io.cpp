#include "pfs/async_io.hpp"

#include <atomic>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pfs/iovec_util.hpp"

namespace llio::pfs {

// ---- AsyncIo -----------------------------------------------------------

AsyncIo::Batch::~Batch() {
  if (engine_ == nullptr || pending_ == 0) return;
  // The owner skipped wait() (likely unwinding from its own exception):
  // drain quietly so no operation outlives this Batch.
  std::unique_lock lock(engine_->mu_);
  engine_->cv_.wait(lock, [&] { return pending_ == 0; });
}

AsyncIo::AsyncIo(int queue_depth, std::string metric)
    : qd_(queue_depth), metric_(std::move(metric)) {
  LLIO_REQUIRE(qd_ >= 1, Errc::InvalidArgument,
               "AsyncIo: queue depth must be >= 1");
  // The reservation guarantees qd_ dedicated workers exist even when the
  // submitter is itself a pool job blocked in wait() — see the header.
  if (qd_ > 1) reserved_ = WorkerPool::shared().reserve(qd_);
}

AsyncIo::~AsyncIo() {
  // Every operation belongs to a Batch whose destructor drains, and a
  // Batch cannot outlive its engine's owner; by the time we get here the
  // queue is empty.  Assert-by-wait to be safe in release builds.
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return inflight_ == 0; });
}

void AsyncIo::run_op(Batch* batch, const std::function<void()>& op, Off bytes,
                     int owner, int tid) {
  std::optional<obs::ThreadTrackGuard> track;
  if (owner >= 0 && obs::trace_enabled())
    track.emplace(owner, tid, "", "aio worker " + std::to_string(tid));
  obs::Span span("aio_op");
  span.arg("bytes", bytes);
  std::exception_ptr err;
  StopWatch w;
  w.start();
  try {
    op();
  } catch (...) {
    err = std::current_exception();
  }
  w.stop();
  if (obs::Histogram* h = lat_hist_.load(std::memory_order_acquire);
      h != nullptr && obs::metrics_enabled())
    h->record(static_cast<long long>(w.seconds() * 1e6));
  complete(batch, err, w.seconds());
}

void AsyncIo::complete(Batch* batch, std::exception_ptr err, double seconds) {
  // Notify while still holding the lock: the owner may be blocked in
  // ~AsyncIo or ~Batch waiting for this exact completion, and would
  // otherwise be free to destroy the condition variable between our
  // unlock and the notify.
  std::lock_guard lock(mu_);
  --inflight_;
  --batch->pending_;
  ++stats_.completed;
  stats_.op_s += seconds;
  if (err && !batch->err_) batch->err_ = err;
  cv_.notify_all();
}

void AsyncIo::submit(Batch& batch, std::function<void()> op, Off bytes) {
  LLIO_REQUIRE(batch.engine_ == nullptr || batch.engine_ == this,
               Errc::InvalidArgument, "AsyncIo: batch belongs elsewhere");
  batch.engine_ = this;
  if (!metric_.empty() && obs::metrics_enabled() &&
      lat_hist_.load(std::memory_order_relaxed) == nullptr) {
    // Registry references are stable; a racing double-resolve stores the
    // same pointer.
    lat_hist_.store(&obs::Registry::instance().histogram(metric_ + ".op_us"),
                    std::memory_order_release);
  }
  if (qd_ == 1) {
    // Inline synchronous path: deterministic order, no pool involvement.
    {
      std::lock_guard lock(mu_);
      ++inflight_;
      ++batch.pending_;
      ++stats_.submitted;
      if (static_cast<std::uint64_t>(inflight_) > stats_.inflight_peak)
        stats_.inflight_peak = static_cast<std::uint64_t>(inflight_);
      ++seq_;
    }
    std::exception_ptr err;
    StopWatch w;
    {
      // Span on the *caller's* track: at qd 1 the op runs inline, and the
      // timeline should show that I/O time where it was actually spent
      // (the explainer reconciles aio_op spans on any track).
      obs::Span span("aio_op");
      span.arg("bytes", bytes);
      span.arg("inline", 1);
      w.start();
      try {
        op();
      } catch (...) {
        err = std::current_exception();
      }
      w.stop();
    }
    if (obs::Histogram* h = lat_hist_.load(std::memory_order_acquire);
        h != nullptr && obs::metrics_enabled())
      h->record(static_cast<long long>(w.seconds() * 1e6));
    complete(&batch, err, w.seconds());
    return;
  }
  int tid;
  {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return inflight_ < qd_; });  // SQ-full backpressure
    ++inflight_;
    ++batch.pending_;
    ++stats_.submitted;
    if (static_cast<std::uint64_t>(inflight_) > stats_.inflight_peak)
      stats_.inflight_peak = static_cast<std::uint64_t>(inflight_);
    // Worker-track ids live above the pipeline's 1..8 range so the two
    // subsystems' tracks stay distinguishable in a trace.
    tid = 16 + static_cast<int>(seq_++ % static_cast<std::uint64_t>(qd_));
  }
  const int owner = obs::current_pid();
  Batch* b = &batch;
  WorkerPool::shared().submit(
      [this, b, op = std::move(op), bytes, owner, tid] {
        run_op(b, op, bytes, owner, tid);
      });
}

void AsyncIo::wait_locked(std::unique_lock<std::mutex>& lock, Batch& batch) {
  cv_.wait(lock, [&] { return batch.pending_ == 0; });
}

void AsyncIo::wait(Batch& batch) {
  if (batch.engine_ == nullptr) return;  // nothing was submitted
  std::exception_ptr err;
  {
    std::unique_lock lock(mu_);
    wait_locked(lock, batch);
    err = std::exchange(batch.err_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

AsyncIoStats AsyncIo::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

// ---- AsyncQdFile -------------------------------------------------------

AsyncQdFile::AsyncQdFile(FilePtr inner, int queue_depth)
    : inner_(std::move(inner)), aio_(queue_depth, "aio") {}

std::shared_ptr<AsyncQdFile> AsyncQdFile::wrap(FilePtr inner,
                                               int queue_depth) {
  LLIO_REQUIRE(inner != nullptr, Errc::InvalidArgument,
               "AsyncQdFile: null inner backend");
  LLIO_REQUIRE(queue_depth >= 1, Errc::InvalidArgument,
               "AsyncQdFile: queue depth must be >= 1");
  return std::shared_ptr<AsyncQdFile>(
      new AsyncQdFile(std::move(inner), queue_depth));
}

std::optional<AsyncInfo> AsyncQdFile::async_info() const {
  AsyncInfo info;
  info.queue_depth = aio_.queue_depth();
  if (auto in = inner_->async_info()) info.direct = in->direct;
  info.stats = aio_.stats();
  return info;
}

Off AsyncQdFile::do_pread(Off offset, ByteSpan out) {
  return inner_->pread(offset, out);  // one op: nothing to overlap
}

void AsyncQdFile::do_pwrite(Off offset, ConstByteSpan data) {
  inner_->pwrite(offset, data);
}

Off AsyncQdFile::do_preadv(std::span<const IoVec> iov) {
  if (iov.size() < 2 || !iov_groups_disjoint(iov)) return inner_->preadv(iov);
  std::atomic<Off> total{0};
  AsyncIo::Batch batch;
  std::size_t groups = 0;
  for (std::size_t i = 0; i < iov.size();) {
    const std::size_t j = contig_group_end(iov, i);
    const std::span<const IoVec> group = iov.subspan(i, j - i);
    Off bytes = 0;
    for (const IoVec& v : group) bytes += to_off(v.buf.size());
    aio_.submit(
        batch,
        [this, group, &total] {
          total.fetch_add(inner_->preadv(group), std::memory_order_relaxed);
        },
        bytes);
    ++groups;
    i = j;
  }
  aio_.wait(batch);
  return total.load(std::memory_order_relaxed);
}

void AsyncQdFile::do_pwritev(std::span<const ConstIoVec> iov) {
  if (iov.size() < 2 || !iov_groups_disjoint(iov)) {
    inner_->pwritev(iov);
    return;
  }
  AsyncIo::Batch batch;
  for (std::size_t i = 0; i < iov.size();) {
    const std::size_t j = contig_group_end(iov, i);
    const std::span<const ConstIoVec> group = iov.subspan(i, j - i);
    Off bytes = 0;
    for (const ConstIoVec& v : group) bytes += to_off(v.buf.size());
    aio_.submit(batch, [this, group] { inner_->pwritev(group); }, bytes);
    i = j;
  }
  aio_.wait(batch);
}

}  // namespace llio::pfs
