// Asynchronous queue-depth submission/completion engine, shaped like
// io_uring but running on the process-wide common::WorkerPool.
//
// The paper's listless engine removes the datatype-handling bottleneck;
// what remains between a collective window and device bandwidth on a real
// file system is queue depth: a single synchronous preadv per window
// keeps at most one operation outstanding, so the device never sees the
// parallelism the access pattern has.  AsyncIo gives any storage path an
// io_uring-style discipline:
//
//   * submit() enqueues one operation (a closure over preadv/pwritev or a
//     raw syscall) and returns immediately, unless `queue_depth`
//     operations are already in flight — then it blocks, which is the SQ-
//     full backpressure that bounds memory and fairness.
//   * operations complete out of order on pool workers; a Batch tracks
//     the completions belonging to one logical call, so concurrent
//     callers sharing an engine wait only for their own operations and
//     observe only their own errors.
//   * wait(batch) is the completion reap: it blocks until the batch is
//     drained and rethrows the batch's first failure.
//
// queue_depth == 1 runs every operation inline on the submitting thread
// (no pool, deterministic order) — byte- and schedule-identical to the
// pre-async synchronous path, which is what lets llio_posix_qd=1 be the
// fuzz-asserted baseline.
//
// The engine holds a WorkerPool reservation of `queue_depth` for its
// lifetime, so submitting from inside another pool job (the collective
// pipeline's I/O workers call FileBackend::pwritev, which may land here)
// cannot starve: the reservation guarantees this engine's operations have
// workers of their own.  Per-op latency lands in the obs histogram
// registry under "<metric>.op_us" when metrics are on.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <string>

#include "common/worker_pool.hpp"
#include "pfs/file_backend.hpp"

namespace llio::obs {
class Histogram;
}

namespace llio::pfs {

class AsyncIo {
 public:
  /// One logical call's completion set.  Submit operations against it,
  /// then wait() exactly once; the destructor drains quietly (swallowing
  /// errors) if the owner forgot, so operations never outlive the batch.
  class Batch {
   public:
    Batch() = default;
    ~Batch();
    Batch(const Batch&) = delete;
    Batch& operator=(const Batch&) = delete;

   private:
    friend class AsyncIo;
    AsyncIo* engine_ = nullptr;
    std::size_t pending_ = 0;
    std::exception_ptr err_;
  };

  /// `metric` names the obs histogram family ("posix", "stripe", ...);
  /// empty disables metric recording.
  explicit AsyncIo(int queue_depth, std::string metric = {});
  ~AsyncIo();

  AsyncIo(const AsyncIo&) = delete;
  AsyncIo& operator=(const AsyncIo&) = delete;

  int queue_depth() const noexcept { return qd_; }

  /// Enqueue `op`; blocks while queue_depth operations are in flight.
  /// `bytes` is a hint for the trace span only.
  void submit(Batch& batch, std::function<void()> op, Off bytes = 0);

  /// Block until every operation of `batch` completed; rethrows the
  /// batch's first error.
  void wait(Batch& batch);

  AsyncIoStats stats() const;

 private:
  void run_op(Batch* batch, const std::function<void()>& op, Off bytes,
              int owner, int tid);
  void complete(Batch* batch, std::exception_ptr err, double seconds);
  void wait_locked(std::unique_lock<std::mutex>& lock, Batch& batch);

  const int qd_;
  const std::string metric_;
  WorkerPool::Reservation reserved_;
  std::atomic<obs::Histogram*> lat_hist_{nullptr};  ///< lazy, then stable

  mutable std::mutex mu_;
  std::condition_variable cv_;
  int inflight_ = 0;
  AsyncIoStats stats_;
  std::uint64_t seq_ = 0;  ///< submission counter (worker-track ids)
};

/// Queue-depth decorator over any backend: vectored batches are split
/// into file-contiguous groups and up to `queue_depth` inner preadv/
/// pwritev submissions are kept in flight, completing out of order.  This
/// is how cost-model backends (ThrottledFile) and plain files gain the
/// same overlapped submission discipline PosixFile implements natively —
/// and the throttled wrap is the deterministic fallback target for the CI
/// perf gate, where queue depth provably overlaps per-op latency.
///
/// Groups are only issued concurrently when they are sorted and disjoint
/// (engine-generated batches always are); anything else falls back to the
/// inner call unchanged.  queue_depth == 1 makes the SAME per-group inner
/// submissions, inline and in order — so a qd sweep over this decorator
/// varies only the concurrency, never the operation count (the fair
/// baseline the CI perf gate compares against).
class AsyncQdFile final : public FileBackend {
 public:
  static std::shared_ptr<AsyncQdFile> wrap(FilePtr inner, int queue_depth);

  Off size() const override { return inner_->size(); }
  void resize(Off new_size) override { inner_->resize(new_size); }
  void sync() override { inner_->sync(); }
  void set_iov_batch_max(Off n) override {
    FileBackend::set_iov_batch_max(n);
    inner_->set_iov_batch_max(n);
  }
  std::optional<AsyncInfo> async_info() const override;

  const FilePtr& inner() const { return inner_; }

 protected:
  Off do_pread(Off offset, ByteSpan out) override;
  void do_pwrite(Off offset, ConstByteSpan data) override;
  Off do_preadv(std::span<const IoVec> iov) override;
  void do_pwritev(std::span<const ConstIoVec> iov) override;

 private:
  AsyncQdFile(FilePtr inner, int queue_depth);

  FilePtr inner_;
  AsyncIo aio_;
};

}  // namespace llio::pfs
