#include "pfs/faulty_file.hpp"

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace llio::pfs {

FaultyFile::FaultyFile(FilePtr inner, const FaultPlan& plan)
    : inner_(std::move(inner)), reads_left_(plan.fail_after_reads),
      writes_left_(plan.fail_after_writes) {}

std::shared_ptr<FaultyFile> FaultyFile::wrap(FilePtr inner,
                                             const FaultPlan& plan) {
  LLIO_REQUIRE(inner != nullptr, Errc::InvalidArgument,
               "FaultyFile: null inner backend");
  return std::shared_ptr<FaultyFile>(new FaultyFile(std::move(inner), plan));
}

void FaultyFile::disarm() {
  reads_left_.store(-1);
  writes_left_.store(-1);
}

namespace {
/// Decrement a countdown; returns true when it fires.  -1 stays inert.
bool tick(std::atomic<std::int64_t>& counter) {
  std::int64_t v = counter.load();
  for (;;) {
    if (v < 0) return false;
    if (counter.compare_exchange_weak(v, v - 1)) return v == 0;
  }
}
}  // namespace

Off FaultyFile::do_pread(Off offset, ByteSpan out) {
  if (tick(reads_left_)) {
    obs::instant("injected_fault", obs::TraceLevel::Spans,
                 {{"op", 0, "pread", true}});
    throw_error(Errc::Io, "injected read fault");
  }
  return inner_->pread(offset, out);
}

void FaultyFile::do_pwrite(Off offset, ConstByteSpan data) {
  if (tick(writes_left_)) {
    obs::instant("injected_fault", obs::TraceLevel::Spans,
                 {{"op", 0, "pwrite", true}});
    throw_error(Errc::Io, "injected write fault");
  }
  inner_->pwrite(offset, data);
}

Off FaultyFile::do_preadv(std::span<const IoVec> iov) {
  // A vectored batch is one operation: one countdown tick.
  if (tick(reads_left_)) {
    obs::instant("injected_fault", obs::TraceLevel::Spans,
                 {{"op", 0, "preadv", true}});
    throw_error(Errc::Io, "injected read fault");
  }
  return inner_->preadv(iov);
}

void FaultyFile::do_pwritev(std::span<const ConstIoVec> iov) {
  if (tick(writes_left_)) {
    obs::instant("injected_fault", obs::TraceLevel::Spans,
                 {{"op", 0, "pwritev", true}});
    throw_error(Errc::Io, "injected write fault");
  }
  inner_->pwritev(iov);
}

}  // namespace llio::pfs
