// Fault-injecting backend wrapper for failure-path testing: storage
// errors must surface as Errc::Io through the whole engine stack, and a
// failing rank must abort, not deadlock, its peers in collective calls.
#pragma once

#include <atomic>

#include "pfs/file_backend.hpp"

namespace llio::pfs {

struct FaultPlan {
  /// Fail the (n+1)-th read/write operation; -1 = never.
  std::int64_t fail_after_reads = -1;
  std::int64_t fail_after_writes = -1;
};

class FaultyFile final : public FileBackend {
 public:
  static std::shared_ptr<FaultyFile> wrap(FilePtr inner,
                                          const FaultPlan& plan);

  Off size() const override { return inner_->size(); }
  void resize(Off new_size) override { inner_->resize(new_size); }
  void sync() override { inner_->sync(); }
  void set_iov_batch_max(Off n) override {
    FileBackend::set_iov_batch_max(n);
    inner_->set_iov_batch_max(n);
  }
  std::optional<AsyncInfo> async_info() const override {
    return inner_->async_info();
  }

  /// Disarm all pending faults (e.g. to verify recovery paths).
  void disarm();

 protected:
  Off do_pread(Off offset, ByteSpan out) override;
  void do_pwrite(Off offset, ConstByteSpan data) override;
  Off do_preadv(std::span<const IoVec> iov) override;
  void do_pwritev(std::span<const ConstIoVec> iov) override;

 private:
  FaultyFile(FilePtr inner, const FaultPlan& plan);

  FilePtr inner_;
  std::atomic<std::int64_t> reads_left_;
  std::atomic<std::int64_t> writes_left_;
};

}  // namespace llio::pfs
