#include "pfs/file_backend.hpp"

#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "pfs/iovec_util.hpp"

namespace llio::pfs {

Off FileBackend::pread(Off offset, ByteSpan out) {
  LLIO_REQUIRE(offset >= 0, Errc::InvalidArgument, "pread: negative offset");
  const Off n = do_pread(offset, out);
  read_ops_.fetch_add(1, std::memory_order_relaxed);
  read_bytes_.fetch_add(static_cast<std::uint64_t>(n),
                        std::memory_order_relaxed);
  return n;
}

void FileBackend::pwrite(Off offset, ConstByteSpan data) {
  LLIO_REQUIRE(offset >= 0, Errc::InvalidArgument, "pwrite: negative offset");
  do_pwrite(offset, data);
  write_ops_.fetch_add(1, std::memory_order_relaxed);
  write_bytes_.fetch_add(static_cast<std::uint64_t>(data.size()),
                         std::memory_order_relaxed);
}

Off FileBackend::preadv(std::span<const IoVec> iov) {
  for (const IoVec& v : iov)
    LLIO_REQUIRE(v.offset >= 0, Errc::InvalidArgument,
                 "preadv: negative offset");
  const Off cap = iov_batch_max();
  Off n = 0;
  if (iov_normalized(iov) && (cap <= 0 || to_off(iov.size()) <= cap)) {
    n = do_preadv(iov);
  } else {
    // Normalize once (zero-length drop + adjacent coalescing), then split
    // into capped sub-batches; still one logical read op.
    std::vector<IoVec> norm;
    normalize_iov(iov, norm);
    for_each_iov_batch<IoVec>(
        norm, cap, [&](std::span<const IoVec> chunk) { n += do_preadv(chunk); });
  }
  read_ops_.fetch_add(1, std::memory_order_relaxed);
  read_bytes_.fetch_add(static_cast<std::uint64_t>(n),
                        std::memory_order_relaxed);
  return n;
}

void FileBackend::pwritev(std::span<const ConstIoVec> iov) {
  Off total = 0;
  for (const ConstIoVec& v : iov) {
    LLIO_REQUIRE(v.offset >= 0, Errc::InvalidArgument,
                 "pwritev: negative offset");
    total += to_off(v.buf.size());
  }
  const Off cap = iov_batch_max();
  if (iov_normalized(iov) && (cap <= 0 || to_off(iov.size()) <= cap)) {
    do_pwritev(iov);
  } else {
    std::vector<ConstIoVec> norm;
    normalize_iov(iov, norm);
    for_each_iov_batch<ConstIoVec>(
        norm, cap,
        [&](std::span<const ConstIoVec> chunk) { do_pwritev(chunk); });
  }
  write_ops_.fetch_add(1, std::memory_order_relaxed);
  write_bytes_.fetch_add(static_cast<std::uint64_t>(total),
                         std::memory_order_relaxed);
}

Off FileBackend::preadv_fallback(std::span<const IoVec> iov) {
  Off total = 0;
  for (const IoVec& v : iov) {
    const Off got = do_pread(v.offset, v.buf);
    if (got < to_off(v.buf.size()))
      std::memset(v.buf.data() + got, 0, to_size(to_off(v.buf.size()) - got));
    total += got;
  }
  return total;
}

void FileBackend::pwritev_fallback(std::span<const ConstIoVec> iov) {
  for (const ConstIoVec& v : iov) do_pwrite(v.offset, v.buf);
}

Off FileBackend::do_preadv(std::span<const IoVec> iov) {
  return preadv_fallback(iov);
}

void FileBackend::do_pwritev(std::span<const ConstIoVec> iov) {
  pwritev_fallback(iov);
}

void FileBackend::note_read(Off bytes) {
  read_ops_.fetch_add(1, std::memory_order_relaxed);
  read_bytes_.fetch_add(static_cast<std::uint64_t>(bytes),
                        std::memory_order_relaxed);
}

void FileBackend::note_write(Off bytes) {
  write_ops_.fetch_add(1, std::memory_order_relaxed);
  write_bytes_.fetch_add(static_cast<std::uint64_t>(bytes),
                         std::memory_order_relaxed);
}

FileStats FileBackend::stats() const {
  FileStats s;
  s.read_ops = read_ops_.load(std::memory_order_relaxed);
  s.read_bytes = read_bytes_.load(std::memory_order_relaxed);
  s.write_ops = write_ops_.load(std::memory_order_relaxed);
  s.write_bytes = write_bytes_.load(std::memory_order_relaxed);
  return s;
}

void FileBackend::reset_stats() {
  read_ops_.store(0, std::memory_order_relaxed);
  read_bytes_.store(0, std::memory_order_relaxed);
  write_ops_.store(0, std::memory_order_relaxed);
  write_bytes_.store(0, std::memory_order_relaxed);
}

}  // namespace llio::pfs
