#include "pfs/file_backend.hpp"

#include "common/error.hpp"

namespace llio::pfs {

Off FileBackend::pread(Off offset, ByteSpan out) {
  LLIO_REQUIRE(offset >= 0, Errc::InvalidArgument, "pread: negative offset");
  const Off n = do_pread(offset, out);
  read_ops_.fetch_add(1, std::memory_order_relaxed);
  read_bytes_.fetch_add(static_cast<std::uint64_t>(n),
                        std::memory_order_relaxed);
  return n;
}

void FileBackend::pwrite(Off offset, ConstByteSpan data) {
  LLIO_REQUIRE(offset >= 0, Errc::InvalidArgument, "pwrite: negative offset");
  do_pwrite(offset, data);
  write_ops_.fetch_add(1, std::memory_order_relaxed);
  write_bytes_.fetch_add(static_cast<std::uint64_t>(data.size()),
                         std::memory_order_relaxed);
}

FileStats FileBackend::stats() const {
  FileStats s;
  s.read_ops = read_ops_.load(std::memory_order_relaxed);
  s.read_bytes = read_bytes_.load(std::memory_order_relaxed);
  s.write_ops = write_ops_.load(std::memory_order_relaxed);
  s.write_bytes = write_bytes_.load(std::memory_order_relaxed);
  return s;
}

void FileBackend::reset_stats() {
  read_ops_.store(0, std::memory_order_relaxed);
  read_bytes_.store(0, std::memory_order_relaxed);
  write_ops_.store(0, std::memory_order_relaxed);
  write_bytes_.store(0, std::memory_order_relaxed);
}

}  // namespace llio::pfs
