// Storage substrate: the file abstraction the MPI-IO layer accesses.
//
// The paper's platform is the NEC SX local file system (~6.5 GB/s write,
// ~8 GB/s read sustained).  We substitute:
//   * MemFile      - RAM-backed, shared among rank-threads; reproduces the
//                    paper's regime where storage is fast relative to the
//                    CPU/memory work of datatype handling.
//   * PosixFile    - real pread/pwrite on a local path.
//   * ThrottledFile- wraps any backend with a bandwidth/latency cost model
//                    to explore the opposite regime (slow storage).
//
// All backends are thread-safe for non-overlapping concurrent accesses and
// track access statistics (ops and bytes, read and write).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "common/bytes.hpp"

namespace llio::pfs {

class ViewIo;

struct FileStats {
  std::uint64_t read_ops = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_ops = 0;
  std::uint64_t write_bytes = 0;
};

/// One segment of a vectored read: fill `buf` from file offset `offset`.
struct IoVec {
  Off offset = 0;
  ByteSpan buf;
};

/// One segment of a vectored write: store `buf` at file offset `offset`.
struct ConstIoVec {
  Off offset = 0;
  ConstByteSpan buf;
};

/// Lifetime counters of an AsyncIo submission engine (pfs/async_io.hpp).
struct AsyncIoStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t inflight_peak = 0;  ///< max ops concurrently in flight
  double op_s = 0;                  ///< summed per-op wall time
};

/// What an async-capable backend reports through async_info(): the
/// configured queue depth, whether O_DIRECT is actually engaged, and the
/// engine's since-open counters (shared by every handle on the backend).
struct AsyncInfo {
  int queue_depth = 1;
  bool direct = false;
  AsyncIoStats stats;
};

class FileBackend {
 public:
  virtual ~FileBackend() = default;

  /// Read up to out.size() bytes at `offset`; returns bytes read (short
  /// reads only at end of file).
  Off pread(Off offset, ByteSpan out);

  /// Write data at `offset`, growing the file as needed.
  void pwrite(Off offset, ConstByteSpan data);

  /// Batched scatter read: fill every segment from its file offset in one
  /// call, zero-filling the bytes past end of file.  Returns the number of
  /// bytes actually read from the file (the rest were zero-filled).
  /// Counts as a single read op in the stats.
  Off preadv(std::span<const IoVec> iov);

  /// Batched gather write: store every segment at its file offset in one
  /// call, growing the file as needed.  Counts as a single write op.
  void pwritev(std::span<const ConstIoVec> iov);

  virtual Off size() const = 0;

  /// Grow or shrink the file to exactly `new_size` bytes.
  virtual void resize(Off new_size) = 0;

  /// Flush buffered data to stable storage (no-op for memory backends).
  virtual void sync() {}

  /// Batch ceiling for vectored accesses: the public preadv/pwritev
  /// wrappers normalize oversized or messy batches (drop zero-length
  /// segments, coalesce adjacent runs) and split them into successive
  /// do_preadv/do_pwritev calls of at most this many segments.  0
  /// (default) = unbounded, leaving standalone backends bit-identical to
  /// the pre-batching behavior.  File::open seeds this from
  /// Options::iov_batch_max; decorators forward it inward so every layer
  /// splits identically.
  virtual void set_iov_batch_max(Off n) {
    iov_batch_max_.store(n, std::memory_order_relaxed);
  }
  Off iov_batch_max() const {
    return iov_batch_max_.load(std::memory_order_relaxed);
  }

  /// Optional capability: execute whole-fileview accesses on the storage
  /// side (see pfs/view_io.hpp).  A backend that can replay a serialized
  /// datatype tree remotely returns itself; everything else (including
  /// decorators that model storage cost or inject faults — they must see
  /// every byte, so the capability is deliberately masked) returns null
  /// and the engines fall back to pread/pwrite through this object.
  virtual ViewIo* view_io() { return nullptr; }

  /// Optional capability: the backend runs a queue-depth async submission
  /// engine internally (PosixFile with queue_depth > 1, AsyncQdFile, a
  /// StripedFile with a parallel layout).  Purely observational —
  /// decorators forward inward so engines and benches can report queue
  /// depth and in-flight statistics no matter how the stack is wrapped.
  virtual std::optional<AsyncInfo> async_info() const { return std::nullopt; }

  FileStats stats() const;
  void reset_stats();

 protected:
  virtual Off do_pread(Off offset, ByteSpan out) = 0;
  virtual void do_pwrite(Off offset, ConstByteSpan data) = 0;

  /// Default vectored implementations loop over do_pread/do_pwrite;
  /// backends override for a genuinely batched path.
  virtual Off do_preadv(std::span<const IoVec> iov);
  virtual void do_pwritev(std::span<const ConstIoVec> iov);

  /// The generic per-segment loop (with EOF zero-fill for reads), for
  /// wrappers that want the base behavior explicitly.
  Off preadv_fallback(std::span<const IoVec> iov);
  void pwritev_fallback(std::span<const ConstIoVec> iov);

  /// Account one operation performed outside the pread/pwrite wrappers —
  /// the ViewIo capability path goes straight to view_write/view_read, so
  /// the implementing backend calls these to keep FileStats truthful.
  void note_read(Off bytes);
  void note_write(Off bytes);

 private:
  std::atomic<std::uint64_t> read_ops_{0}, read_bytes_{0};
  std::atomic<std::uint64_t> write_ops_{0}, write_bytes_{0};
  std::atomic<Off> iov_batch_max_{0};
};

using FilePtr = std::shared_ptr<FileBackend>;

}  // namespace llio::pfs
