// Shared iovec batch hygiene: zero-length dropping, adjacent-run
// coalescing, and bounded-batch splitting.  The FileBackend public
// wrappers apply these uniformly for every backend, and the psrv list
// client mirrors the same extent cap so server-bound batches split
// identically to local ones.
#pragma once

#include <span>
#include <vector>

#include "common/bytes.hpp"

namespace llio::pfs {

/// True when consecutive segments are file-adjacent AND memory-adjacent:
/// they may merge into one segment with identical semantics.
template <typename Vec>
bool iov_adjacent(const Vec& a, const Vec& b) {
  return a.offset + to_off(a.buf.size()) == b.offset &&
         a.buf.data() + a.buf.size() == b.buf.data();
}

/// True when `iov` needs no normalization: no zero-length segments and no
/// mergeable pair — the fast path takes the batch as-is, allocation-free.
template <typename Vec>
bool iov_normalized(std::span<const Vec> iov) {
  for (std::size_t i = 0; i < iov.size(); ++i) {
    if (iov[i].buf.empty()) return false;
    if (i > 0 && iov_adjacent(iov[i - 1], iov[i])) return false;
  }
  return true;
}

/// Drop zero-length segments and merge adjacent runs into `out`.
template <typename Vec>
void normalize_iov(std::span<const Vec> iov, std::vector<Vec>& out) {
  out.clear();
  for (const Vec& v : iov) {
    if (v.buf.empty()) continue;
    if (!out.empty() && iov_adjacent(out.back(), v)) {
      out.back().buf = {out.back().buf.data(),
                        out.back().buf.size() + v.buf.size()};
    } else {
      out.push_back(v);
    }
  }
}

/// One past the last index of the maximal file-contiguous run starting at
/// `i`: segment k+1 begins exactly where segment k ends in the file
/// (memory may be scattered — the run still maps to one preadv/pwritev).
/// Capped at `max_iov` entries when max_iov > 0.
template <typename Vec>
std::size_t contig_group_end(std::span<const Vec> iov, std::size_t i,
                             std::size_t max_iov = 0) {
  Off next = iov[i].offset;
  std::size_t j = i;
  while (j < iov.size() && (max_iov == 0 || j - i < max_iov) &&
         iov[j].offset == next) {
    next += to_off(iov[j].buf.size());
    ++j;
  }
  return j;
}

/// True when the batch's file-contiguous groups are sorted and pairwise
/// disjoint, i.e. every group starts at or past the end of the previous
/// one.  Only then may the groups be issued concurrently (async queue
/// depth) without racing on overlapping file bytes.
template <typename Vec>
bool iov_groups_disjoint(std::span<const Vec> iov) {
  Off prev_end = 0;
  for (std::size_t i = 0; i < iov.size();) {
    const std::size_t j = contig_group_end(iov, i);
    if (iov[i].offset < prev_end) return false;
    prev_end = iov[i].offset;
    for (std::size_t k = i; k < j; ++k) prev_end += to_off(iov[k].buf.size());
    i = j;
  }
  return true;
}

/// Invoke `fn` over consecutive chunks of at most `batch_max` segments
/// (everything at once when batch_max <= 0).
template <typename Vec, typename Fn>
void for_each_iov_batch(std::span<const Vec> iov, Off batch_max, Fn&& fn) {
  if (iov.empty()) return;
  if (batch_max <= 0) {
    fn(iov);
    return;
  }
  const std::size_t step = to_size(batch_max);
  for (std::size_t at = 0; at < iov.size(); at += step)
    fn(iov.subspan(at, std::min(step, iov.size() - at)));
}

}  // namespace llio::pfs
