#include "pfs/mem_file.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "common/error.hpp"

namespace llio::pfs {

MemFile::MemFile(Off initial_size) : data_(to_size(initial_size)) {}

std::shared_ptr<MemFile> MemFile::create(Off initial_size) {
  LLIO_REQUIRE(initial_size >= 0, Errc::InvalidArgument,
               "MemFile: negative initial size");
  return std::shared_ptr<MemFile>(new MemFile(initial_size));
}

Off MemFile::size() const {
  std::shared_lock lock(mu_);
  return to_off(data_.size());
}

void MemFile::resize(Off new_size) {
  LLIO_REQUIRE(new_size >= 0, Errc::InvalidArgument,
               "MemFile: negative size");
  std::unique_lock lock(mu_);
  data_.resize(to_size(new_size));
}

ByteVec MemFile::contents() const {
  std::shared_lock lock(mu_);
  return data_;
}

Off MemFile::do_pread(Off offset, ByteSpan out) {
  std::shared_lock lock(mu_);
  const Off fsize = to_off(data_.size());
  if (offset >= fsize) return 0;
  const Off n = std::min<Off>(to_off(out.size()), fsize - offset);
  std::memcpy(out.data(), data_.data() + offset, to_size(n));
  return n;
}

void MemFile::do_pwrite(Off offset, ConstByteSpan data) {
  const Off end = offset + to_off(data.size());
  {
    std::shared_lock lock(mu_);
    if (end <= to_off(data_.size())) {
      std::memcpy(data_.data() + offset, data.data(), data.size());
      return;
    }
  }
  std::unique_lock lock(mu_);
  if (end > to_off(data_.size())) data_.resize(to_size(end));
  std::memcpy(data_.data() + offset, data.data(), data.size());
}

}  // namespace llio::pfs
