#include "pfs/mem_file.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "common/error.hpp"

namespace llio::pfs {

MemFile::MemFile(Off initial_size) : data_(to_size(initial_size)) {}

std::shared_ptr<MemFile> MemFile::create(Off initial_size) {
  LLIO_REQUIRE(initial_size >= 0, Errc::InvalidArgument,
               "MemFile: negative initial size");
  return std::shared_ptr<MemFile>(new MemFile(initial_size));
}

Off MemFile::size() const {
  std::shared_lock lock(mu_);
  return to_off(data_.size());
}

void MemFile::resize(Off new_size) {
  LLIO_REQUIRE(new_size >= 0, Errc::InvalidArgument,
               "MemFile: negative size");
  std::unique_lock lock(mu_);
  data_.resize(to_size(new_size));
}

ByteVec MemFile::contents() const {
  std::shared_lock lock(mu_);
  return data_;
}

Off MemFile::do_pread(Off offset, ByteSpan out) {
  std::shared_lock lock(mu_);
  const Off fsize = to_off(data_.size());
  if (offset >= fsize) return 0;
  const Off n = std::min<Off>(to_off(out.size()), fsize - offset);
  std::memcpy(out.data(), data_.data() + offset, to_size(n));
  return n;
}

void MemFile::do_pwrite(Off offset, ConstByteSpan data) {
  // Writers are exclusive: MPI-IO leaves the DATA of conflicting
  // concurrent accesses undefined, but the byte store itself must not be
  // a C++ data race against lock-free readers (sieving reads don't range
  // lock).
  const Off end = offset + to_off(data.size());
  std::unique_lock lock(mu_);
  if (end > to_off(data_.size())) data_.resize(to_size(end));
  std::memcpy(data_.data() + offset, data.data(), data.size());
}

Off MemFile::do_preadv(std::span<const IoVec> iov) {
  std::shared_lock lock(mu_);  // one lock acquisition for the whole batch
  const Off fsize = to_off(data_.size());
  Off total = 0;
  for (const IoVec& v : iov) {
    const Off want = to_off(v.buf.size());
    const Off n = v.offset >= fsize ? 0 : std::min<Off>(want, fsize - v.offset);
    if (n > 0) std::memcpy(v.buf.data(), data_.data() + v.offset, to_size(n));
    if (n < want) std::memset(v.buf.data() + n, 0, to_size(want - n));
    total += n;
  }
  return total;
}

void MemFile::do_pwritev(std::span<const ConstIoVec> iov) {
  // One exclusive lock acquisition (and at most one resize) per batch.
  Off end = 0;
  for (const ConstIoVec& v : iov)
    end = std::max(end, v.offset + to_off(v.buf.size()));
  std::unique_lock lock(mu_);
  if (end > to_off(data_.size())) data_.resize(to_size(end));
  for (const ConstIoVec& v : iov)
    std::memcpy(data_.data() + v.offset, v.buf.data(), v.buf.size());
}

}  // namespace llio::pfs
