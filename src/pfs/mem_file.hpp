// RAM-backed file shared among rank-threads.
#pragma once

#include <shared_mutex>
#include <vector>

#include "pfs/file_backend.hpp"

namespace llio::pfs {

/// In-memory file.  Reads/writes within the current size proceed under a
/// shared lock; growth takes an exclusive lock.  This mirrors a fast local
/// file system where non-overlapping parallel accesses do not serialize.
class MemFile final : public FileBackend {
 public:
  static std::shared_ptr<MemFile> create(Off initial_size = 0);

  Off size() const override;
  void resize(Off new_size) override;

  /// Snapshot of the whole contents (test helper).
  ByteVec contents() const;

 protected:
  Off do_pread(Off offset, ByteSpan out) override;
  void do_pwrite(Off offset, ConstByteSpan data) override;
  Off do_preadv(std::span<const IoVec> iov) override;
  void do_pwritev(std::span<const ConstIoVec> iov) override;

 private:
  explicit MemFile(Off initial_size);

  mutable std::shared_mutex mu_;
  std::vector<Byte> data_;
};

}  // namespace llio::pfs
