#include "pfs/posix_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/uio.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "pfs/iovec_util.hpp"

namespace llio::pfs {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw_error(Errc::Io, what + ": " + std::strerror(errno));
}

// Kernel cap on iovec entries per call; stay well below IOV_MAX.
constexpr std::size_t kMaxIov = 512;

/// Bounce buffer whose address satisfies O_DIRECT's memory-alignment
/// requirement (size is always a multiple of the alignment here).
class AlignedBuf {
 public:
  AlignedBuf(Off align, Off size)
      : size_(to_size(size)),
        p_(static_cast<Byte*>(std::aligned_alloc(to_size(align), size_))) {
    LLIO_REQUIRE(p_ != nullptr, Errc::Io, "PosixFile: aligned_alloc failed");
  }
  ~AlignedBuf() { std::free(p_); }
  AlignedBuf(const AlignedBuf&) = delete;
  AlignedBuf& operator=(const AlignedBuf&) = delete;

  Byte* data() noexcept { return p_; }
  ByteSpan span() noexcept { return {p_, size_}; }
  ConstByteSpan cspan() const noexcept { return {p_, size_}; }

 private:
  std::size_t size_;
  Byte* p_;
};

Off group_len(std::span<const IoVec> group) {
  Off n = 0;
  for (const IoVec& v : group) n += to_off(v.buf.size());
  return n;
}

Off group_len(std::span<const ConstIoVec> group) {
  Off n = 0;
  for (const ConstIoVec& v : group) n += to_off(v.buf.size());
  return n;
}

}  // namespace

PosixFile::PosixFile(std::string path, int fd, const PosixConfig& cfg,
                     bool direct_active, Off initial_size)
    : path_(std::move(path)),
      fd_(fd),
      cfg_(cfg),
      direct_active_(direct_active),
      logical_size_(initial_size) {
  if (cfg_.queue_depth > 1)
    aio_ = std::make_unique<AsyncIo>(cfg_.queue_depth, "posix");
}

std::shared_ptr<PosixFile> PosixFile::open(const std::string& path,
                                           bool truncate) {
  return open(path, truncate, PosixConfig{});
}

std::shared_ptr<PosixFile> PosixFile::open(const std::string& path,
                                           bool truncate,
                                           const PosixConfig& cfg) {
  LLIO_REQUIRE(cfg.queue_depth >= 1, Errc::InvalidArgument,
               "PosixFile: queue depth must be >= 1");
  LLIO_REQUIRE(!cfg.direct || (cfg.direct_align >= 512 &&
                               (cfg.direct_align &
                                (cfg.direct_align - 1)) == 0),
               Errc::InvalidArgument,
               "PosixFile: direct_align must be a power of two >= 512");
  int flags = O_RDWR | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  int fd = -1;
  bool direct_active = false;
#if defined(O_DIRECT)
  if (cfg.direct) {
    // Best-effort: tmpfs/overlayfs reject O_DIRECT with EINVAL — fall
    // back to buffered I/O while keeping the aligned RMW discipline.
    fd = ::open(path.c_str(), flags | O_DIRECT, 0644);
    direct_active = fd >= 0;
  }
#endif
  if (fd < 0) fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) throw_errno("open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("fstat " + path);
  }
  return std::shared_ptr<PosixFile>(new PosixFile(
      path, fd, cfg, direct_active, static_cast<Off>(st.st_size)));
}

std::shared_ptr<PosixFile> PosixFile::open_temp(const std::string& dir,
                                                const PosixConfig& cfg) {
  std::string tmpl = dir + "/llio-posix-XXXXXX";
  std::vector<char> name(tmpl.begin(), tmpl.end());
  name.push_back('\0');
  const int tfd = ::mkstemp(name.data());
  if (tfd < 0) throw_errno("mkstemp " + tmpl);
  ::close(tfd);
  const std::string path(name.data());
  auto file = open(path, true, cfg);
  if (::unlink(path.c_str()) != 0) throw_errno("unlink " + path);
  return file;
}

PosixFile::~PosixFile() {
  // Drain the async engine before the fd goes away.
  aio_.reset();
  if (fd_ >= 0) ::close(fd_);
}

Off PosixFile::size() const {
  if (cfg_.direct) return logical_size_.load(std::memory_order_acquire);
  struct stat st{};
  if (::fstat(fd_, &st) != 0) throw_errno("fstat " + path_);
  return static_cast<Off>(st.st_size);
}

void PosixFile::resize(Off new_size) {
  LLIO_REQUIRE(new_size >= 0, Errc::InvalidArgument,
               "PosixFile: negative size");
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0)
    throw_errno("ftruncate " + path_);
  logical_size_.store(new_size, std::memory_order_release);
}

void PosixFile::sync() {
  if (::fsync(fd_) != 0) throw_errno("fsync " + path_);
}

void PosixFile::remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0) throw_errno("unlink " + path);
}

std::optional<AsyncInfo> PosixFile::async_info() const {
  if (!aio_ && !cfg_.direct) return std::nullopt;
  AsyncInfo info;
  info.queue_depth = cfg_.queue_depth;
  info.direct = cfg_.direct;
  if (aio_) info.stats = aio_->stats();
  return info;
}

// ---- full-length syscall loops ----------------------------------------

Off PosixFile::pread_full(Off offset, ByteSpan out) const {
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                              static_cast<off_t>(offset) +
                                  static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread " + path_);
    }
    if (n == 0) break;  // EOF
    done += static_cast<std::size_t>(n);
  }
  return to_off(done);
}

void PosixFile::pwrite_full(Off offset, ConstByteSpan data) const {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                               static_cast<off_t>(offset) +
                                   static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pwrite " + path_);
    }
    done += static_cast<std::size_t>(n);
  }
}

// ---- scalar entry points -----------------------------------------------

Off PosixFile::do_pread(Off offset, ByteSpan out) {
  if (cfg_.direct) {
    const IoVec one[1] = {{offset, out}};
    return read_group_direct(one);
  }
  return pread_full(offset, out);
}

void PosixFile::do_pwrite(Off offset, ConstByteSpan data) {
  if (cfg_.direct) {
    const ConstIoVec one[1] = {{offset, data}};
    write_group_direct(one);
    return;
  }
  pwrite_full(offset, data);
}

// ---- vectored entry points ---------------------------------------------
//
// Both split the batch into file-contiguous groups of at most kMaxIov
// segments (exactly the classic grouping) and either run the groups
// serially on the calling thread (queue_depth == 1 — bit-identical to
// the pre-async path) or keep up to queue_depth groups in flight on the
// AsyncIo engine.  Concurrent submission requires the groups to be
// sorted and pairwise disjoint; anything else falls back to serial.

Off PosixFile::do_preadv(std::span<const IoVec> iov) {
  if (iov.empty()) return 0;
  if (aio_ && iov.size() >= 2 && iov_groups_disjoint(iov)) {
    std::atomic<Off> total{0};
    AsyncIo::Batch batch;
    for (std::size_t i = 0; i < iov.size();) {
      const std::size_t j = contig_group_end(iov, i, kMaxIov);
      const std::span<const IoVec> group = iov.subspan(i, j - i);
      aio_->submit(
          batch,
          [this, group, &total] {
            total.fetch_add(read_group(group), std::memory_order_relaxed);
          },
          group_len(group));
      i = j;
    }
    aio_->wait(batch);
    return total.load(std::memory_order_relaxed);
  }
  Off total = 0;
  for (std::size_t i = 0; i < iov.size();) {
    const std::size_t j = contig_group_end(iov, i, kMaxIov);
    total += read_group(iov.subspan(i, j - i));
    i = j;
  }
  return total;
}

void PosixFile::do_pwritev(std::span<const ConstIoVec> iov) {
  if (iov.empty()) return;
  if (aio_ && iov.size() >= 2 && iov_groups_disjoint(iov)) {
    AsyncIo::Batch batch;
    for (std::size_t i = 0; i < iov.size();) {
      const std::size_t j = contig_group_end(iov, i, kMaxIov);
      const std::span<const ConstIoVec> group = iov.subspan(i, j - i);
      aio_->submit(batch, [this, group] { write_group(group); },
                   group_len(group));
      i = j;
    }
    aio_->wait(batch);
    return;
  }
  for (std::size_t i = 0; i < iov.size();) {
    const std::size_t j = contig_group_end(iov, i, kMaxIov);
    write_group(iov.subspan(i, j - i));
    i = j;
  }
}

Off PosixFile::read_group(std::span<const IoVec> group) {
  return cfg_.direct ? read_group_direct(group) : read_group_plain(group);
}

void PosixFile::write_group(std::span<const ConstIoVec> group) {
  if (cfg_.direct)
    write_group_direct(group);
  else
    write_group_plain(group);
}

// ---- plain (buffered) group I/O ----------------------------------------

#if defined(__linux__)

Off PosixFile::read_group_plain(std::span<const IoVec> group) {
  // One preadv2 run per contiguous group; memory may be scattered.
  std::vector<struct iovec> vs;
  vs.reserve(group.size());
  const off_t group_off = static_cast<off_t>(group.front().offset);
  for (const IoVec& v : group) vs.push_back({v.buf.data(), v.buf.size()});
  const Off len = group_len(group);
  Off done = 0;
  while (done < len) {
    // Advance the iovec array past `done` consumed bytes.
    std::size_t k = 0;
    Off skip = done;
    while (k < vs.size() && skip >= to_off(vs[k].iov_len))
      skip -= to_off(vs[k].iov_len), ++k;
    struct iovec first = vs[k];
    first.iov_base = static_cast<char*>(first.iov_base) + skip;
    first.iov_len -= to_size(skip);
    std::vector<struct iovec> rest(vs.begin() + static_cast<long>(k),
                                   vs.end());
    rest[0] = first;
    const ssize_t n =
        ::preadv2(fd_, rest.data(), static_cast<int>(rest.size()),
                  group_off + static_cast<off_t>(done), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("preadv2 " + path_);
    }
    if (n == 0) break;  // EOF: zero-fill the rest of the group
    done += static_cast<Off>(n);
  }
  // Zero-fill any group tail past EOF.
  Off fill_from = done;
  for (std::size_t k = 0; k < vs.size(); ++k) {
    const Off seg = to_off(vs[k].iov_len);
    if (fill_from < seg)
      std::memset(static_cast<char*>(vs[k].iov_base) + fill_from, 0,
                  to_size(seg - fill_from));
    fill_from = std::max<Off>(0, fill_from - seg);
  }
  return done;
}

void PosixFile::write_group_plain(std::span<const ConstIoVec> group) {
  std::vector<struct iovec> vs;
  vs.reserve(group.size());
  const off_t group_off = static_cast<off_t>(group.front().offset);
  for (const ConstIoVec& v : group)
    vs.push_back({const_cast<Byte*>(v.buf.data()), v.buf.size()});
  const Off len = group_len(group);
  Off done = 0;
  while (done < len) {
    std::size_t k = 0;
    Off skip = done;
    while (k < vs.size() && skip >= to_off(vs[k].iov_len))
      skip -= to_off(vs[k].iov_len), ++k;
    struct iovec first = vs[k];
    first.iov_base = static_cast<char*>(first.iov_base) + skip;
    first.iov_len -= to_size(skip);
    std::vector<struct iovec> rest(vs.begin() + static_cast<long>(k),
                                   vs.end());
    rest[0] = first;
    const ssize_t n =
        ::pwritev2(fd_, rest.data(), static_cast<int>(rest.size()),
                   group_off + static_cast<off_t>(done), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pwritev2 " + path_);
    }
    done += static_cast<Off>(n);
  }
}

#else  // !__linux__: per-segment loops, same EOF semantics

Off PosixFile::read_group_plain(std::span<const IoVec> group) {
  Off total = 0;
  for (const IoVec& v : group) {
    const Off got = pread_full(v.offset, v.buf);
    if (got < to_off(v.buf.size()))
      std::memset(v.buf.data() + got, 0, v.buf.size() - to_size(got));
    total += got;
  }
  return total;
}

void PosixFile::write_group_plain(std::span<const ConstIoVec> group) {
  for (const ConstIoVec& v : group) pwrite_full(v.offset, v.buf);
}

#endif

// ---- direct (aligned RMW) group I/O ------------------------------------
//
// Reads clamp to the logical size, stage the aligned covering range in a
// bounce buffer, and scatter into the segment buffers; no lock is needed
// because a concurrent writer holds the aligned-range lock for the whole
// read-patch-write cycle and only ever changes bytes the contract says a
// racing reader may not depend on.  Writes lock the aligned covering
// range, read back partial edge blocks (the sieve's RMW discipline at
// block granularity), gather, and issue one aligned write.

Off PosixFile::read_group_direct(std::span<const IoVec> group) {
  const Off off = group.front().offset;
  const Off len = group_len(group);
  const Off logical = logical_size_.load(std::memory_order_acquire);
  const Off readable = std::clamp<Off>(logical - off, 0, len);
  if (readable > 0) {
    const Off align = cfg_.direct_align;
    const Off a0 = round_down(off, align);
    const Off a1 = round_up(off + readable, align);
    AlignedBuf buf(align, a1 - a0);
    const Off got = pread_full(a0, buf.span());
    if (got < a1 - a0)
      std::memset(buf.data() + got, 0, to_size(a1 - a0 - got));
    Off at = off - a0;
    Off remaining = readable;
    for (const IoVec& v : group) {
      const Off want = to_off(v.buf.size());
      const Off n = std::min(want, remaining);
      if (n > 0) std::memcpy(v.buf.data(), buf.data() + at, to_size(n));
      if (n < want)
        std::memset(v.buf.data() + n, 0, to_size(want - n));
      at += want;
      remaining -= n;
    }
  } else {
    for (const IoVec& v : group)
      std::memset(v.buf.data(), 0, v.buf.size());
  }
  return readable;
}

void PosixFile::write_group_direct(std::span<const ConstIoVec> group) {
  const Off off = group.front().offset;
  const Off len = group_len(group);
  if (len == 0) return;
  const Off align = cfg_.direct_align;
  const Off a0 = round_down(off, align);
  const Off a1 = round_up(off + len, align);
  ScopedRangeLock hold(edge_lock_, a0, a1);
  AlignedBuf buf(align, a1 - a0);
  const Off head = off - a0;
  const Off tail = a1 - (off + len);
  // Preserve partial edge blocks: read them back under the range lock,
  // zeroing anything past the physical end.
  const auto fetch_block = [&](Off blk) {
    ByteSpan dst{buf.data() + (blk - a0), to_size(align)};
    const Off got = pread_full(blk, dst);
    if (got < align)
      std::memset(dst.data() + got, 0, to_size(align - got));
  };
  if (head > 0) fetch_block(a0);
  if (tail > 0 && (head == 0 || a1 - align != a0)) fetch_block(a1 - align);
  Off at = head;
  for (const ConstIoVec& v : group) {
    std::memcpy(buf.data() + at, v.buf.data(), v.buf.size());
    at += to_off(v.buf.size());
  }
  pwrite_full(a0, buf.cspan());
  // Publish the new logical end (monotonic max).
  const Off end = off + len;
  Off cur = logical_size_.load(std::memory_order_relaxed);
  while (cur < end && !logical_size_.compare_exchange_weak(
                          cur, end, std::memory_order_acq_rel)) {
  }
}

}  // namespace llio::pfs
