#include "pfs/posix_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace llio::pfs {

namespace {
[[noreturn]] void throw_errno(const std::string& what) {
  throw_error(Errc::Io, what + ": " + std::strerror(errno));
}
}  // namespace

PosixFile::PosixFile(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {}

std::shared_ptr<PosixFile> PosixFile::open(const std::string& path,
                                           bool truncate) {
  int flags = O_RDWR | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) throw_errno("open " + path);
  return std::shared_ptr<PosixFile>(new PosixFile(path, fd));
}

PosixFile::~PosixFile() {
  if (fd_ >= 0) ::close(fd_);
}

Off PosixFile::size() const {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) throw_errno("fstat " + path_);
  return static_cast<Off>(st.st_size);
}

void PosixFile::resize(Off new_size) {
  LLIO_REQUIRE(new_size >= 0, Errc::InvalidArgument,
               "PosixFile: negative size");
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0)
    throw_errno("ftruncate " + path_);
}

void PosixFile::sync() {
  if (::fsync(fd_) != 0) throw_errno("fsync " + path_);
}

void PosixFile::remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0) throw_errno("unlink " + path);
}

Off PosixFile::do_pread(Off offset, ByteSpan out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                              static_cast<off_t>(offset) +
                                  static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread " + path_);
    }
    if (n == 0) break;  // EOF
    done += static_cast<std::size_t>(n);
  }
  return to_off(done);
}

void PosixFile::do_pwrite(Off offset, ConstByteSpan data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                               static_cast<off_t>(offset) +
                                   static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pwrite " + path_);
    }
    done += static_cast<std::size_t>(n);
  }
}

}  // namespace llio::pfs
