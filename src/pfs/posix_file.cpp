#include "pfs/posix_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/uio.h>
#endif

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/error.hpp"

namespace llio::pfs {

namespace {
[[noreturn]] void throw_errno(const std::string& what) {
  throw_error(Errc::Io, what + ": " + std::strerror(errno));
}
}  // namespace

PosixFile::PosixFile(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {}

std::shared_ptr<PosixFile> PosixFile::open(const std::string& path,
                                           bool truncate) {
  int flags = O_RDWR | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) throw_errno("open " + path);
  return std::shared_ptr<PosixFile>(new PosixFile(path, fd));
}

PosixFile::~PosixFile() {
  if (fd_ >= 0) ::close(fd_);
}

Off PosixFile::size() const {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) throw_errno("fstat " + path_);
  return static_cast<Off>(st.st_size);
}

void PosixFile::resize(Off new_size) {
  LLIO_REQUIRE(new_size >= 0, Errc::InvalidArgument,
               "PosixFile: negative size");
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0)
    throw_errno("ftruncate " + path_);
}

void PosixFile::sync() {
  if (::fsync(fd_) != 0) throw_errno("fsync " + path_);
}

void PosixFile::remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0) throw_errno("unlink " + path);
}

Off PosixFile::do_pread(Off offset, ByteSpan out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                              static_cast<off_t>(offset) +
                                  static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread " + path_);
    }
    if (n == 0) break;  // EOF
    done += static_cast<std::size_t>(n);
  }
  return to_off(done);
}

void PosixFile::do_pwrite(Off offset, ConstByteSpan data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                               static_cast<off_t>(offset) +
                                   static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pwrite " + path_);
    }
    done += static_cast<std::size_t>(n);
  }
}

#if defined(__linux__)

namespace {
// Kernel cap on iovec entries per call; stay well below IOV_MAX.
constexpr std::size_t kMaxIov = 512;
}  // namespace

Off PosixFile::do_preadv(std::span<const IoVec> iov) {
  // Group runs of segments that are contiguous in file offset into single
  // preadv2 calls; memory addresses may still be scattered.
  Off total = 0;
  std::vector<struct iovec> vs;
  std::size_t i = 0;
  while (i < iov.size()) {
    vs.clear();
    const off_t group_off = static_cast<off_t>(iov[i].offset);
    Off next_off = iov[i].offset;
    Off group_len = 0;
    std::size_t j = i;
    while (j < iov.size() && vs.size() < kMaxIov &&
           iov[j].offset == next_off) {
      vs.push_back({iov[j].buf.data(), iov[j].buf.size()});
      next_off += to_off(iov[j].buf.size());
      group_len += to_off(iov[j].buf.size());
      ++j;
    }
    Off done = 0;
    while (done < group_len) {
      // Advance the iovec array past `done` consumed bytes.
      std::size_t k = 0;
      Off skip = done;
      while (k < vs.size() && skip >= to_off(vs[k].iov_len))
        skip -= to_off(vs[k].iov_len), ++k;
      struct iovec first = vs[k];
      first.iov_base = static_cast<char*>(first.iov_base) + skip;
      first.iov_len -= to_size(skip);
      std::vector<struct iovec> rest(vs.begin() + static_cast<long>(k),
                                     vs.end());
      rest[0] = first;
      const ssize_t n =
          ::preadv2(fd_, rest.data(), static_cast<int>(rest.size()),
                    group_off + static_cast<off_t>(done), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("preadv2 " + path_);
      }
      if (n == 0) break;  // EOF: zero-fill the rest of the group
      done += static_cast<Off>(n);
    }
    total += done;
    // Zero-fill any group tail past EOF.
    Off fill_from = done;
    for (std::size_t k = 0; k < vs.size(); ++k) {
      const Off len = to_off(vs[k].iov_len);
      if (fill_from < len)
        std::memset(static_cast<char*>(vs[k].iov_base) + fill_from, 0,
                    to_size(len - fill_from));
      fill_from = std::max<Off>(0, fill_from - len);
    }
    i = j;
  }
  return total;
}

void PosixFile::do_pwritev(std::span<const ConstIoVec> iov) {
  std::vector<struct iovec> vs;
  std::size_t i = 0;
  while (i < iov.size()) {
    vs.clear();
    const off_t group_off = static_cast<off_t>(iov[i].offset);
    Off next_off = iov[i].offset;
    Off group_len = 0;
    std::size_t j = i;
    while (j < iov.size() && vs.size() < kMaxIov &&
           iov[j].offset == next_off) {
      vs.push_back({const_cast<Byte*>(iov[j].buf.data()), iov[j].buf.size()});
      next_off += to_off(iov[j].buf.size());
      group_len += to_off(iov[j].buf.size());
      ++j;
    }
    Off done = 0;
    while (done < group_len) {
      std::size_t k = 0;
      Off skip = done;
      while (k < vs.size() && skip >= to_off(vs[k].iov_len))
        skip -= to_off(vs[k].iov_len), ++k;
      struct iovec first = vs[k];
      first.iov_base = static_cast<char*>(first.iov_base) + skip;
      first.iov_len -= to_size(skip);
      std::vector<struct iovec> rest(vs.begin() + static_cast<long>(k),
                                     vs.end());
      rest[0] = first;
      const ssize_t n =
          ::pwritev2(fd_, rest.data(), static_cast<int>(rest.size()),
                     group_off + static_cast<off_t>(done), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("pwritev2 " + path_);
      }
      done += static_cast<Off>(n);
    }
    i = j;
  }
}

#else  // !__linux__: the generic per-segment loop

Off PosixFile::do_preadv(std::span<const IoVec> iov) {
  return preadv_fallback(iov);
}

void PosixFile::do_pwritev(std::span<const ConstIoVec> iov) {
  pwritev_fallback(iov);
}

#endif

}  // namespace llio::pfs
