// POSIX-backed file (pread/pwrite on a local path).
#pragma once

#include <string>

#include "pfs/file_backend.hpp"

namespace llio::pfs {

class PosixFile final : public FileBackend {
 public:
  /// Open (creating if needed) `path` for read/write.  With `truncate`
  /// the file starts empty.
  static std::shared_ptr<PosixFile> open(const std::string& path,
                                         bool truncate = false);

  ~PosixFile() override;

  Off size() const override;
  void resize(Off new_size) override;
  void sync() override;

  /// Remove a file from the file system (MPI_File_delete analogue).
  static void remove(const std::string& path);

  const std::string& path() const noexcept { return path_; }

 protected:
  Off do_pread(Off offset, ByteSpan out) override;
  void do_pwrite(Off offset, ConstByteSpan data) override;
  Off do_preadv(std::span<const IoVec> iov) override;
  void do_pwritev(std::span<const ConstIoVec> iov) override;

 private:
  PosixFile(std::string path, int fd);

  std::string path_;
  int fd_;
};

}  // namespace llio::pfs
