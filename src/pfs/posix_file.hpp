// POSIX-backed file (pread/pwrite on a local path), with optional
// queue-depth asynchronous submission (AsyncIo) and an O_DIRECT-style
// aligned read-modify-write mode.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "pfs/async_io.hpp"
#include "pfs/file_backend.hpp"
#include "pfs/range_lock.hpp"

namespace llio::pfs {

/// Tuning knobs for PosixFile::open.  The MPI info hints llio_posix_qd
/// and llio_posix_direct (mpiio::Options) map onto these.
struct PosixConfig {
  /// Backend operations kept in flight per vectored call.  1 (default)
  /// runs everything inline on the calling thread — byte- and
  /// schedule-identical to the classic synchronous path.
  int queue_depth = 1;

  /// Engage the aligned read-modify-write discipline and request
  /// O_DIRECT.  The RMW path always runs when this is set (so behavior
  /// is identical whether or not the kernel honors the flag); the
  /// O_DIRECT flag itself is best-effort — tmpfs/overlayfs reject it
  /// and the file silently falls back to buffered I/O, which
  /// direct_active() reports.
  bool direct = false;

  /// Block alignment for the direct path: offsets, lengths and bounce
  /// buffers are rounded to this.  Power of two, >= 512.
  Off direct_align = 4096;
};

class PosixFile final : public FileBackend {
 public:
  /// Open (creating if needed) `path` for read/write.  With `truncate`
  /// the file starts empty.
  static std::shared_ptr<PosixFile> open(const std::string& path,
                                         bool truncate = false);
  static std::shared_ptr<PosixFile> open(const std::string& path,
                                         bool truncate,
                                         const PosixConfig& cfg);

  /// Create an anonymous scratch file in `dir`: unique name, unlinked
  /// immediately after open, so the storage vanishes with the handle no
  /// matter how the process exits (bench temp-file lifecycle).
  static std::shared_ptr<PosixFile> open_temp(const std::string& dir,
                                              const PosixConfig& cfg = {});

  ~PosixFile() override;

  Off size() const override;
  void resize(Off new_size) override;
  void sync() override;
  std::optional<AsyncInfo> async_info() const override;

  /// Remove a file from the file system (MPI_File_delete analogue).
  static void remove(const std::string& path);

  const std::string& path() const noexcept { return path_; }
  const PosixConfig& config() const noexcept { return cfg_; }

  /// True when the kernel accepted the O_DIRECT flag.  False either when
  /// cfg.direct is off or when the filesystem rejected the flag (the
  /// aligned RMW path still runs, over buffered I/O).
  bool direct_active() const noexcept { return direct_active_; }

 protected:
  Off do_pread(Off offset, ByteSpan out) override;
  void do_pwrite(Off offset, ConstByteSpan data) override;
  Off do_preadv(std::span<const IoVec> iov) override;
  void do_pwritev(std::span<const ConstIoVec> iov) override;

 private:
  PosixFile(std::string path, int fd, const PosixConfig& cfg,
            bool direct_active, Off initial_size);

  /// One file-contiguous run (<= kMaxIov segments): dispatch to the
  /// plain vectored path or the direct aligned-RMW path.
  Off read_group(std::span<const IoVec> group);
  void write_group(std::span<const ConstIoVec> group);
  Off read_group_plain(std::span<const IoVec> group);
  void write_group_plain(std::span<const ConstIoVec> group);
  Off read_group_direct(std::span<const IoVec> group);
  void write_group_direct(std::span<const ConstIoVec> group);

  /// pread/pwrite loops: retry EINTR, read short only at end of file.
  Off pread_full(Off offset, ByteSpan out) const;
  void pwrite_full(Off offset, ConstByteSpan data) const;

  std::string path_;
  int fd_;
  PosixConfig cfg_;
  bool direct_active_ = false;

  /// Direct mode tracks the byte count the user actually wrote: aligned
  /// writes round the physical file up to a block boundary, so st_size
  /// over-reports.  size() returns this; reads clamp to it and zero-fill
  /// beyond.  Bytes between here and the physical end are always zero
  /// (every RMW write preserves that invariant).
  std::atomic<Off> logical_size_{0};

  std::unique_ptr<AsyncIo> aio_;  ///< present iff queue_depth > 1
  RangeLock edge_lock_;  ///< direct mode: serializes aligned-range writes
};

}  // namespace llio::pfs
