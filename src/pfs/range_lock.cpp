#include "pfs/range_lock.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace llio::pfs {

bool RangeLock::overlaps_locked(Off lo, Off hi) const {
  return std::any_of(held_.begin(), held_.end(), [&](const Range& r) {
    return r.lo < hi && lo < r.hi;
  });
}

void RangeLock::lock(Off lo, Off hi) {
  LLIO_REQUIRE(lo <= hi, Errc::InvalidArgument, "RangeLock: lo > hi");
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return !overlaps_locked(lo, hi); });
  held_.push_back({lo, hi});
}

void RangeLock::unlock(Off lo, Off hi) {
  std::lock_guard lock(mu_);
  const auto it =
      std::find_if(held_.begin(), held_.end(), [&](const Range& r) {
        return r.lo == lo && r.hi == hi;
      });
  LLIO_REQUIRE(it != held_.end(), Errc::InvalidArgument,
               "RangeLock: unlock of range not held");
  held_.erase(it);
  cv_.notify_all();
}

}  // namespace llio::pfs
