// Byte-range lock manager used by data sieving write-back (paper §2.2):
// a sieving write reads a whole file block, patches it, and writes it
// back; the region must be locked so concurrent writers do not clobber
// unrelated bytes in the gaps.
#pragma once

#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/bytes.hpp"

namespace llio::pfs {

class RangeLock {
 public:
  /// Block until [lo, hi) is free of other holders, then acquire it.
  void lock(Off lo, Off hi);

  /// Release a previously acquired range (exact match required).
  void unlock(Off lo, Off hi);

 private:
  struct Range {
    Off lo, hi;
  };

  bool overlaps_locked(Off lo, Off hi) const;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Range> held_;
};

/// RAII guard for a RangeLock range.
class ScopedRangeLock {
 public:
  ScopedRangeLock(RangeLock& rl, Off lo, Off hi) : rl_(rl), lo_(lo), hi_(hi) {
    rl_.lock(lo_, hi_);
  }
  ~ScopedRangeLock() { rl_.unlock(lo_, hi_); }
  ScopedRangeLock(const ScopedRangeLock&) = delete;
  ScopedRangeLock& operator=(const ScopedRangeLock&) = delete;

 private:
  RangeLock& rl_;
  Off lo_, hi_;
};

}  // namespace llio::pfs
