#include "pfs/striped_file.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace llio::pfs {

StripedFile::StripedFile(std::vector<FilePtr> devices, Off stripe_bytes,
                         const StripeLayout& layout)
    : devices_(std::move(devices)), stripe_(stripe_bytes), layout_(layout) {
  if (layout_.queue_depth > 0)
    aio_ = std::make_unique<AsyncIo>(layout_.queue_depth, "stripe");
}

std::shared_ptr<StripedFile> StripedFile::create(std::vector<FilePtr> devices,
                                                 Off stripe_bytes) {
  return create(std::move(devices), stripe_bytes, StripeLayout{});
}

std::shared_ptr<StripedFile> StripedFile::create(std::vector<FilePtr> devices,
                                                 Off stripe_bytes,
                                                 const StripeLayout& layout) {
  LLIO_REQUIRE(!devices.empty(), Errc::InvalidArgument,
               "StripedFile: no devices");
  for (const FilePtr& d : devices)
    LLIO_REQUIRE(d != nullptr, Errc::InvalidArgument,
                 "StripedFile: null device");
  LLIO_REQUIRE(stripe_bytes > 0, Errc::InvalidArgument,
               "StripedFile: non-positive stripe size");
  LLIO_REQUIRE(layout.queue_depth >= 0, Errc::InvalidArgument,
               "StripedFile: negative queue depth");
  return std::shared_ptr<StripedFile>(
      new StripedFile(std::move(devices), stripe_bytes, layout));
}

Off StripedFile::row_stripe(Off dev, Off row) const {
  if (!layout_.rotate) return dev;
  const Off nd = static_cast<Off>(devices_.size());
  Off k = (dev - row) % nd;
  if (k < 0) k += nd;
  return k;
}

template <typename Fn>
void StripedFile::for_each_piece(Off offset, Off len, Fn&& fn) const {
  const Off nd = static_cast<Off>(devices_.size());
  Off at = offset;
  Off remaining = len;
  Off buf_off = 0;
  while (remaining > 0) {
    const Off stripe_idx = at / stripe_;
    const Off within = at % stripe_;
    const Off row = stripe_idx / nd;  // device-stripe row
    const Off k = stripe_idx % nd;    // position within the row
    // FFS cylinder-group rotation: row r starts on device r % nd.
    const Off dev = layout_.rotate ? (k + row) % nd : k;
    const Off n = std::min(remaining, stripe_ - within);
    fn(to_size(dev), row * stripe_ + within, buf_off, n);
    at += n;
    buf_off += n;
    remaining -= n;
  }
}

Off StripedFile::do_pread(Off offset, ByteSpan out) {
  // Logical EOF: reads stop at the striped size.
  const Off fsize = size();
  if (offset >= fsize) return 0;
  const Off len = std::min<Off>(to_off(out.size()), fsize - offset);
  Off got_total = 0;
  for_each_piece(offset, len, [&](std::size_t dev, Off dev_off, Off buf_off,
                                  Off n) {
    const Off got = devices_[dev]->pread(
        dev_off, ByteSpan(out.data() + buf_off, to_size(n)));
    if (got < n)  // hole within a device: zero-fill
      std::memset(out.data() + buf_off + got, 0, to_size(n - got));
    got_total += n;
  });
  return got_total;
}

void StripedFile::do_pwrite(Off offset, ConstByteSpan data) {
  for_each_piece(offset, to_off(data.size()),
                 [&](std::size_t dev, Off dev_off, Off buf_off, Off n) {
                   devices_[dev]->pwrite(
                       dev_off,
                       ConstByteSpan(data.data() + buf_off, to_size(n)));
                 });
}

Off StripedFile::do_preadv(std::span<const IoVec> iov) {
  // Split every logical segment into per-device pieces and issue one
  // vectored read per device, preserving segment order within a device.
  const Off fsize = size();
  std::vector<std::vector<IoVec>> per_dev(devices_.size());
  Off total = 0;
  for (const IoVec& v : iov) {
    const Off want = to_off(v.buf.size());
    const Off len =
        v.offset >= fsize ? 0 : std::min<Off>(want, fsize - v.offset);
    if (len < want)  // past logical EOF: zero-fill
      std::memset(v.buf.data() + len, 0, to_size(want - len));
    for_each_piece(v.offset, len,
                   [&](std::size_t dev, Off dev_off, Off buf_off, Off n) {
                     per_dev[dev].push_back(
                         {dev_off,
                          ByteSpan(v.buf.data() + buf_off, to_size(n))});
                     total += n;
                   });
  }
  if (aio_) {
    // Per-device batches are disjoint by construction: overlap them.
    AsyncIo::Batch batch;
    for (std::size_t d = 0; d < per_dev.size(); ++d) {
      if (per_dev[d].empty()) continue;
      Off bytes = 0;
      for (const IoVec& v : per_dev[d]) bytes += to_off(v.buf.size());
      aio_->submit(
          batch, [this, d, &per_dev] { devices_[d]->preadv(per_dev[d]); },
          bytes);
    }
    aio_->wait(batch);
  } else {
    for (std::size_t d = 0; d < per_dev.size(); ++d)
      if (!per_dev[d].empty()) devices_[d]->preadv(per_dev[d]);
  }
  return total;
}

void StripedFile::do_pwritev(std::span<const ConstIoVec> iov) {
  std::vector<std::vector<ConstIoVec>> per_dev(devices_.size());
  for (const ConstIoVec& v : iov)
    for_each_piece(v.offset, to_off(v.buf.size()),
                   [&](std::size_t dev, Off dev_off, Off buf_off, Off n) {
                     per_dev[dev].push_back(
                         {dev_off,
                          ConstByteSpan(v.buf.data() + buf_off, to_size(n))});
                   });
  if (aio_) {
    AsyncIo::Batch batch;
    for (std::size_t d = 0; d < per_dev.size(); ++d) {
      if (per_dev[d].empty()) continue;
      Off bytes = 0;
      for (const ConstIoVec& v : per_dev[d]) bytes += to_off(v.buf.size());
      aio_->submit(
          batch, [this, d, &per_dev] { devices_[d]->pwritev(per_dev[d]); },
          bytes);
    }
    aio_->wait(batch);
  } else {
    for (std::size_t d = 0; d < per_dev.size(); ++d)
      if (!per_dev[d].empty()) devices_[d]->pwritev(per_dev[d]);
  }
}

Off StripedFile::size() const {
  // Reconstruct the logical size from per-device sizes: at device-stripe
  // row r, device d holds logical stripe r*nd + row_stripe(d, r) (the
  // rotation inverse; identity without rotation).  The logical stripe
  // number grows strictly with the row, so only the last row matters.
  const Off nd = static_cast<Off>(devices_.size());
  Off logical = 0;
  for (Off d = 0; d < nd; ++d) {
    const Off s = devices_[to_size(d)]->size();
    if (s == 0) continue;
    const Off full = s / stripe_;
    const Off rem = s % stripe_;
    // The last (possibly partial) device stripe ends at this logical off:
    const Off last_row = full - (rem == 0 ? 1 : 0);
    const Off tail = rem == 0 ? stripe_ : rem;
    const Off end =
        (last_row * nd + row_stripe(d, last_row)) * stripe_ + tail;
    logical = std::max(logical, end);
  }
  return logical;
}

void StripedFile::resize(Off new_size) {
  LLIO_REQUIRE(new_size >= 0, Errc::InvalidArgument,
               "StripedFile: negative size");
  const Off nd = static_cast<Off>(devices_.size());
  for (Off d = 0; d < nd; ++d) {
    // Bytes of device d below logical new_size: full rounds contribute a
    // stripe each; in the partial last round (row = full_rounds) device d
    // holds logical stripe row_stripe(d, full_rounds) of that row.
    const Off full_rounds = new_size / (stripe_ * nd);
    const Off rem = new_size % (stripe_ * nd);
    Off dev_size = full_rounds * stripe_;
    const Off rem_start = row_stripe(d, full_rounds) * stripe_;
    if (rem > rem_start)
      dev_size += std::min(stripe_, rem - rem_start);
    devices_[to_size(d)]->resize(dev_size);
  }
}

void StripedFile::sync() {
  for (const FilePtr& d : devices_) d->sync();
}

std::optional<AsyncInfo> StripedFile::async_info() const {
  if (!aio_) return std::nullopt;
  AsyncInfo info;
  info.queue_depth = layout_.queue_depth;
  for (const FilePtr& d : devices_)
    if (auto in = d->async_info(); in && in->direct) info.direct = true;
  info.stats = aio_->stats();
  return info;
}

}  // namespace llio::pfs
