#include "pfs/striped_file.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace llio::pfs {

StripedFile::StripedFile(std::vector<FilePtr> devices, Off stripe_bytes)
    : devices_(std::move(devices)), stripe_(stripe_bytes) {}

std::shared_ptr<StripedFile> StripedFile::create(std::vector<FilePtr> devices,
                                                 Off stripe_bytes) {
  LLIO_REQUIRE(!devices.empty(), Errc::InvalidArgument,
               "StripedFile: no devices");
  for (const FilePtr& d : devices)
    LLIO_REQUIRE(d != nullptr, Errc::InvalidArgument,
                 "StripedFile: null device");
  LLIO_REQUIRE(stripe_bytes > 0, Errc::InvalidArgument,
               "StripedFile: non-positive stripe size");
  return std::shared_ptr<StripedFile>(
      new StripedFile(std::move(devices), stripe_bytes));
}

template <typename Fn>
void StripedFile::for_each_piece(Off offset, Off len, Fn&& fn) const {
  const Off nd = static_cast<Off>(devices_.size());
  Off at = offset;
  Off remaining = len;
  Off buf_off = 0;
  while (remaining > 0) {
    const Off stripe_idx = at / stripe_;
    const Off within = at % stripe_;
    const Off dev = stripe_idx % nd;
    const Off dev_stripe = stripe_idx / nd;
    const Off n = std::min(remaining, stripe_ - within);
    fn(to_size(dev), dev_stripe * stripe_ + within, buf_off, n);
    at += n;
    buf_off += n;
    remaining -= n;
  }
}

Off StripedFile::do_pread(Off offset, ByteSpan out) {
  // Logical EOF: reads stop at the striped size.
  const Off fsize = size();
  if (offset >= fsize) return 0;
  const Off len = std::min<Off>(to_off(out.size()), fsize - offset);
  Off got_total = 0;
  for_each_piece(offset, len, [&](std::size_t dev, Off dev_off, Off buf_off,
                                  Off n) {
    const Off got = devices_[dev]->pread(
        dev_off, ByteSpan(out.data() + buf_off, to_size(n)));
    if (got < n)  // hole within a device: zero-fill
      std::memset(out.data() + buf_off + got, 0, to_size(n - got));
    got_total += n;
  });
  return got_total;
}

void StripedFile::do_pwrite(Off offset, ConstByteSpan data) {
  for_each_piece(offset, to_off(data.size()),
                 [&](std::size_t dev, Off dev_off, Off buf_off, Off n) {
                   devices_[dev]->pwrite(
                       dev_off,
                       ConstByteSpan(data.data() + buf_off, to_size(n)));
                 });
}

Off StripedFile::do_preadv(std::span<const IoVec> iov) {
  // Split every logical segment into per-device pieces and issue one
  // vectored read per device, preserving segment order within a device.
  const Off fsize = size();
  std::vector<std::vector<IoVec>> per_dev(devices_.size());
  Off total = 0;
  for (const IoVec& v : iov) {
    const Off want = to_off(v.buf.size());
    const Off len =
        v.offset >= fsize ? 0 : std::min<Off>(want, fsize - v.offset);
    if (len < want)  // past logical EOF: zero-fill
      std::memset(v.buf.data() + len, 0, to_size(want - len));
    for_each_piece(v.offset, len,
                   [&](std::size_t dev, Off dev_off, Off buf_off, Off n) {
                     per_dev[dev].push_back(
                         {dev_off,
                          ByteSpan(v.buf.data() + buf_off, to_size(n))});
                     total += n;
                   });
  }
  for (std::size_t d = 0; d < per_dev.size(); ++d)
    if (!per_dev[d].empty()) devices_[d]->preadv(per_dev[d]);
  return total;
}

void StripedFile::do_pwritev(std::span<const ConstIoVec> iov) {
  std::vector<std::vector<ConstIoVec>> per_dev(devices_.size());
  for (const ConstIoVec& v : iov)
    for_each_piece(v.offset, to_off(v.buf.size()),
                   [&](std::size_t dev, Off dev_off, Off buf_off, Off n) {
                     per_dev[dev].push_back(
                         {dev_off,
                          ConstByteSpan(v.buf.data() + buf_off, to_size(n))});
                   });
  for (std::size_t d = 0; d < per_dev.size(); ++d)
    if (!per_dev[d].empty()) devices_[d]->pwritev(per_dev[d]);
}

Off StripedFile::size() const {
  // Reconstruct the logical size from per-device sizes: device d holding
  // `s` bytes contributes stripes at logical positions d, d+nd, ...
  const Off nd = static_cast<Off>(devices_.size());
  Off logical = 0;
  for (Off d = 0; d < nd; ++d) {
    const Off s = devices_[to_size(d)]->size();
    if (s == 0) continue;
    const Off full = s / stripe_;
    const Off rem = s % stripe_;
    // The last (possibly partial) device stripe ends at this logical off:
    const Off last_stripe = full - (rem == 0 ? 1 : 0);
    const Off tail = rem == 0 ? stripe_ : rem;
    const Off end = (last_stripe * nd + d) * stripe_ + tail;
    logical = std::max(logical, end);
  }
  return logical;
}

void StripedFile::resize(Off new_size) {
  LLIO_REQUIRE(new_size >= 0, Errc::InvalidArgument,
               "StripedFile: negative size");
  const Off nd = static_cast<Off>(devices_.size());
  for (Off d = 0; d < nd; ++d) {
    // Bytes of device d below logical new_size.
    Off dev_size = 0;
    const Off full_rounds = new_size / (stripe_ * nd);
    const Off rem = new_size % (stripe_ * nd);
    dev_size = full_rounds * stripe_;
    const Off rem_start = d * stripe_;
    if (rem > rem_start)
      dev_size += std::min(stripe_, rem - rem_start);
    devices_[to_size(d)]->resize(dev_size);
  }
}

void StripedFile::sync() {
  for (const FilePtr& d : devices_) d->sync();
}

}  // namespace llio::pfs
