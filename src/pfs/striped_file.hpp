// RAID-0-style striped file: fixed-size stripes dealt round-robin over N
// inner backends.  Models the paper's §4.1 remark that "accessing a file
// system in parallel may increase the accumulated bandwidth if the file
// system is using a storage system with a suitable striping
// configuration": with per-device throttled backends, concurrent
// non-overlapping accesses scale until the devices saturate.
#pragma once

#include <memory>
#include <vector>

#include "pfs/async_io.hpp"
#include "pfs/file_backend.hpp"

namespace llio::pfs {

/// Layout policy for StripedFile (hints llio_stripe_rotate / the striped
/// bench flags map here).
struct StripeLayout {
  /// FFS cylinder-group rotation: row r of stripes (logical stripes
  /// r*nd .. r*nd+nd-1) starts on device r % nd instead of device 0, so
  /// collective IOP windows that all begin at a stripe boundary fan out
  /// across every device instead of hammering device 0 in lockstep.
  bool rotate = false;

  /// > 0: run an AsyncIo engine of this depth and issue the per-device
  /// vectored batches of one preadv/pwritev concurrently (they are
  /// disjoint by construction — one batch per device).  0 = classic
  /// serial device loop.
  int queue_depth = 0;
};

class StripedFile final : public FileBackend {
 public:
  /// Stripe unit `stripe_bytes` over the given devices (>= 1), classic
  /// layout (no rotation, serial device loop).
  static std::shared_ptr<StripedFile> create(std::vector<FilePtr> devices,
                                             Off stripe_bytes);
  static std::shared_ptr<StripedFile> create(std::vector<FilePtr> devices,
                                             Off stripe_bytes,
                                             const StripeLayout& layout);

  Off size() const override;
  void resize(Off new_size) override;
  void sync() override;
  void set_iov_batch_max(Off n) override {
    FileBackend::set_iov_batch_max(n);
    for (const FilePtr& d : devices_) d->set_iov_batch_max(n);
  }
  std::optional<AsyncInfo> async_info() const override;

  int device_count() const { return static_cast<int>(devices_.size()); }
  Off stripe_bytes() const { return stripe_; }
  const StripeLayout& layout() const { return layout_; }

 protected:
  Off do_pread(Off offset, ByteSpan out) override;
  void do_pwrite(Off offset, ConstByteSpan data) override;
  Off do_preadv(std::span<const IoVec> iov) override;
  void do_pwritev(std::span<const ConstIoVec> iov) override;

 private:
  StripedFile(std::vector<FilePtr> devices, Off stripe_bytes,
              const StripeLayout& layout);

  /// Map a logical range onto per-device (offset, length) pieces and
  /// apply `fn(device, dev_off, buf_slice)`.
  template <typename Fn>
  void for_each_piece(Off offset, Off len, Fn&& fn) const;

  /// Which logical stripe (0..nd-1 within its row) device `dev` holds at
  /// device-stripe row `row` — the inverse of the rotation map.
  Off row_stripe(Off dev, Off row) const;

  std::vector<FilePtr> devices_;
  Off stripe_;
  StripeLayout layout_;
  std::unique_ptr<AsyncIo> aio_;  ///< present iff layout_.queue_depth > 0
};

}  // namespace llio::pfs
