// RAID-0-style striped file: fixed-size stripes dealt round-robin over N
// inner backends.  Models the paper's §4.1 remark that "accessing a file
// system in parallel may increase the accumulated bandwidth if the file
// system is using a storage system with a suitable striping
// configuration": with per-device throttled backends, concurrent
// non-overlapping accesses scale until the devices saturate.
#pragma once

#include <vector>

#include "pfs/file_backend.hpp"

namespace llio::pfs {

class StripedFile final : public FileBackend {
 public:
  /// Stripe unit `stripe_bytes` over the given devices (>= 1).
  static std::shared_ptr<StripedFile> create(std::vector<FilePtr> devices,
                                             Off stripe_bytes);

  Off size() const override;
  void resize(Off new_size) override;
  void sync() override;
  void set_iov_batch_max(Off n) override {
    FileBackend::set_iov_batch_max(n);
    for (const FilePtr& d : devices_) d->set_iov_batch_max(n);
  }

  int device_count() const { return static_cast<int>(devices_.size()); }
  Off stripe_bytes() const { return stripe_; }

 protected:
  Off do_pread(Off offset, ByteSpan out) override;
  void do_pwrite(Off offset, ConstByteSpan data) override;
  Off do_preadv(std::span<const IoVec> iov) override;
  void do_pwritev(std::span<const ConstIoVec> iov) override;

 private:
  StripedFile(std::vector<FilePtr> devices, Off stripe_bytes);

  /// Map a logical range onto per-device (offset, length) pieces and
  /// apply `fn(device, dev_off, buf_slice)`.
  template <typename Fn>
  void for_each_piece(Off offset, Off len, Fn&& fn) const;

  std::vector<FilePtr> devices_;
  Off stripe_;
};

}  // namespace llio::pfs
