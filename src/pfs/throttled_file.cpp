#include "pfs/throttled_file.hpp"

#include <thread>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace llio::pfs {

ThrottledFile::ThrottledFile(FilePtr inner, const ThrottleConfig& cfg)
    : inner_(std::move(inner)), cfg_(cfg) {}

std::shared_ptr<ThrottledFile> ThrottledFile::wrap(FilePtr inner,
                                                   const ThrottleConfig& cfg) {
  LLIO_REQUIRE(inner != nullptr, Errc::InvalidArgument,
               "ThrottledFile: null inner backend");
  LLIO_REQUIRE(cfg.read_bandwidth_bps > 0 && cfg.write_bandwidth_bps > 0,
               Errc::InvalidArgument, "ThrottledFile: non-positive bandwidth");
  return std::shared_ptr<ThrottledFile>(
      new ThrottledFile(std::move(inner), cfg));
}

void ThrottledFile::delay(const ThrottleConfig& cfg, double seconds) {
  {
    std::lock_guard lock(mu_);
    simulated_time_ += seconds;
  }
  if (seconds <= 0) return;
  obs::instant("throttle_delay", obs::TraceLevel::Full,
               {{"delay_us", static_cast<long long>(seconds * 1e6), {},
                 false}});
  std::unique_lock device(device_mu_, std::defer_lock);
  if (cfg.exclusive_device) device.lock();  // serialize the channel
  // Busy-wait for very short delays (sleep granularity is too coarse),
  // sleep for longer ones.
  if (seconds < 50e-6) {
    WallTimer t;
    while (t.seconds() < seconds) {
    }
  } else {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

double ThrottledFile::simulated_time() const {
  std::lock_guard lock(mu_);
  return simulated_time_;
}

ThrottleConfig ThrottledFile::config() const {
  std::lock_guard lock(mu_);
  return cfg_;
}

void ThrottledFile::set_config(const ThrottleConfig& cfg) {
  LLIO_REQUIRE(cfg.read_bandwidth_bps > 0 && cfg.write_bandwidth_bps > 0,
               Errc::InvalidArgument, "ThrottledFile: non-positive bandwidth");
  std::lock_guard lock(mu_);
  cfg_ = cfg;
}

Off ThrottledFile::do_pread(Off offset, ByteSpan out) {
  const ThrottleConfig cfg = config();
  const Off n = inner_->pread(offset, out);
  delay(cfg, cfg.op_latency_s +
        static_cast<double>(n) / cfg.read_bandwidth_bps);
  return n;
}

void ThrottledFile::do_pwrite(Off offset, ConstByteSpan data) {
  const ThrottleConfig cfg = config();
  inner_->pwrite(offset, data);
  delay(cfg, cfg.op_latency_s +
        static_cast<double>(data.size()) / cfg.write_bandwidth_bps);
}

Off ThrottledFile::do_preadv(std::span<const IoVec> iov) {
  // A batch pays the fixed latency once: that is the whole point of
  // coalescing per-segment accesses.
  const ThrottleConfig cfg = config();
  const Off n = inner_->preadv(iov);
  delay(cfg,
        cfg.op_latency_s + static_cast<double>(n) / cfg.read_bandwidth_bps);
  return n;
}

void ThrottledFile::do_pwritev(std::span<const ConstIoVec> iov) {
  const ThrottleConfig cfg = config();
  inner_->pwritev(iov);
  Off total = 0;
  for (const ConstIoVec& v : iov) total += to_off(v.buf.size());
  delay(cfg, cfg.op_latency_s +
        static_cast<double>(total) / cfg.write_bandwidth_bps);
}

}  // namespace llio::pfs
