// Storage cost model: wraps a backend with configurable per-operation
// latency and sustained bandwidth.
//
// The paper (§4.2, §5) discusses how the relative speed of the file system
// versus the memory system determines how visible the listless-I/O gain
// is: on a slow file system, storage time hides the datatype-handling
// overhead.  ThrottledFile lets the benches demonstrate exactly that
// ablation on commodity hardware by burning wall-clock time proportional
// to the simulated transfer.
#pragma once

#include <mutex>

#include "pfs/file_backend.hpp"

namespace llio::pfs {

struct ThrottleConfig {
  double read_bandwidth_bps = 8.0e9;   ///< paper's SX FS: ~8 GB/s read
  double write_bandwidth_bps = 6.5e9;  ///< ~6.5 GB/s write
  double op_latency_s = 0.0;           ///< fixed per-access latency

  /// Model a single device channel: concurrent accesses serialize, so the
  /// configured bandwidth caps the *total* throughput (needed for striping
  /// studies).  Off by default: the delay is charged per caller, modeling
  /// a storage system with ample internal parallelism.
  bool exclusive_device = false;
};

class ThrottledFile final : public FileBackend {
 public:
  static std::shared_ptr<ThrottledFile> wrap(FilePtr inner,
                                             const ThrottleConfig& cfg);

  Off size() const override { return inner_->size(); }
  void resize(Off new_size) override { inner_->resize(new_size); }
  void sync() override { inner_->sync(); }
  void set_iov_batch_max(Off n) override {
    FileBackend::set_iov_batch_max(n);
    inner_->set_iov_batch_max(n);
  }
  std::optional<AsyncInfo> async_info() const override {
    return inner_->async_info();
  }

  /// Total wall time injected by the throttle so far (seconds).
  double simulated_time() const;

  /// Current throttle parameters (a snapshot — the model may be swapped
  /// concurrently by set_config).
  ThrottleConfig config() const;

  /// Swap the storage cost model mid-run.  In-flight accesses finish under
  /// whichever model they snapshotted; later accesses use the new one.
  /// This is how the adaptive-policy benches flip device speed halfway
  /// through a measured run.
  void set_config(const ThrottleConfig& cfg);

 protected:
  Off do_pread(Off offset, ByteSpan out) override;
  void do_pwrite(Off offset, ConstByteSpan data) override;
  Off do_preadv(std::span<const IoVec> iov) override;
  void do_pwritev(std::span<const ConstIoVec> iov) override;

 private:
  ThrottledFile(FilePtr inner, const ThrottleConfig& cfg);

  void delay(const ThrottleConfig& cfg, double seconds);

  FilePtr inner_;
  ThrottleConfig cfg_;
  mutable std::mutex mu_;
  std::mutex device_mu_;  ///< held across the delay in exclusive mode
  double simulated_time_ = 0.0;
};

}  // namespace llio::pfs
