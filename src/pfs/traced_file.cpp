#include "pfs/traced_file.hpp"

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace llio::pfs {

namespace {

/// Latency in µs and bytes moved go to the registry once per operation.
void record_metrics(const char* latency_hist, const char* bytes_hist,
                    double seconds, Off bytes) {
  if (!obs::metrics_enabled()) return;
  obs::Registry& reg = obs::Registry::instance();
  reg.histogram(latency_hist).record(
      static_cast<long long>(seconds * 1e6));
  reg.histogram(bytes_hist).record(bytes);
}

}  // namespace

TracedFile::TracedFile(FilePtr inner) : inner_(std::move(inner)) {}

std::shared_ptr<TracedFile> TracedFile::wrap(FilePtr inner) {
  LLIO_REQUIRE(inner != nullptr, Errc::InvalidArgument,
               "TracedFile: null inner backend");
  return std::shared_ptr<TracedFile>(new TracedFile(std::move(inner)));
}

Off TracedFile::do_pread(Off offset, ByteSpan out) {
  obs::Span span("file_pread", obs::TraceLevel::Full);
  StopWatch w;
  w.start();
  const Off n = inner_->pread(offset, out);
  w.stop();
  span.arg("offset", offset);
  span.arg("bytes", n);
  record_metrics("file.pread_us", "file.read_bytes", w.seconds(), n);
  return n;
}

void TracedFile::do_pwrite(Off offset, ConstByteSpan data) {
  obs::Span span("file_pwrite", obs::TraceLevel::Full);
  StopWatch w;
  w.start();
  inner_->pwrite(offset, data);
  w.stop();
  span.arg("offset", offset);
  span.arg("bytes", to_off(data.size()));
  record_metrics("file.pwrite_us", "file.write_bytes", w.seconds(),
                 to_off(data.size()));
}

Off TracedFile::do_preadv(std::span<const IoVec> iov) {
  obs::Span span("file_preadv", obs::TraceLevel::Full);
  StopWatch w;
  w.start();
  const Off n = inner_->preadv(iov);
  w.stop();
  span.arg("segments", to_off(iov.size()));
  span.arg("bytes", n);
  record_metrics("file.pread_us", "file.read_bytes", w.seconds(), n);
  return n;
}

void TracedFile::do_pwritev(std::span<const ConstIoVec> iov) {
  obs::Span span("file_pwritev", obs::TraceLevel::Full);
  StopWatch w;
  w.start();
  inner_->pwritev(iov);
  w.stop();
  Off total = 0;
  for (const ConstIoVec& v : iov) total += to_off(v.buf.size());
  span.arg("segments", to_off(iov.size()));
  span.arg("bytes", total);
  record_metrics("file.pwrite_us", "file.write_bytes", w.seconds(), total);
}

Off TracedFile::view_write(const dt::Type& filetype, Off disp, Off stream_lo,
                           ConstByteSpan data) {
  ViewIo* vio = inner_->view_io();
  LLIO_REQUIRE(vio != nullptr, Errc::Unsupported,
               "TracedFile: inner backend lost its view-io capability");
  obs::Span span("file_view_write", obs::TraceLevel::Full);
  StopWatch w;
  w.start();
  const Off n = vio->view_write(filetype, disp, stream_lo, data);
  w.stop();
  span.arg("stream_lo", stream_lo);
  span.arg("bytes", n);
  note_write(n);
  record_metrics("file.pwrite_us", "file.write_bytes", w.seconds(), n);
  return n;
}

Off TracedFile::view_read(const dt::Type& filetype, Off disp, Off stream_lo,
                          ByteSpan out) {
  ViewIo* vio = inner_->view_io();
  LLIO_REQUIRE(vio != nullptr, Errc::Unsupported,
               "TracedFile: inner backend lost its view-io capability");
  obs::Span span("file_view_read", obs::TraceLevel::Full);
  StopWatch w;
  w.start();
  const Off n = vio->view_read(filetype, disp, stream_lo, out);
  w.stop();
  span.arg("stream_lo", stream_lo);
  span.arg("bytes", n);
  note_read(n);
  record_metrics("file.pread_us", "file.read_bytes", w.seconds(), n);
  return n;
}

}  // namespace llio::pfs
