// Observability wrapper: records every file access as a trace span
// (llio_trace=full) and feeds the metrics registry's latency/size
// histograms (llio_metrics=on).
//
// mpiio::File::open wraps its backend in a TracedFile when either sink is
// active, so individual pread/pwrite/preadv/pwritev calls show up as
// slices under the pipeline's window spans and the benches can report
// p50/p95/p99 file-op latency instead of just the mean.  Wrapping is
// per-rank and purely additive: calls forward to the shared inner
// backend, whose own locking and statistics still apply.
#pragma once

#include "pfs/file_backend.hpp"
#include "pfs/view_io.hpp"

namespace llio::pfs {

class TracedFile final : public FileBackend, public ViewIo {
 public:
  static std::shared_ptr<TracedFile> wrap(FilePtr inner);

  Off size() const override { return inner_->size(); }
  void resize(Off new_size) override { inner_->resize(new_size); }
  void sync() override { inner_->sync(); }
  void set_iov_batch_max(Off n) override {
    FileBackend::set_iov_batch_max(n);
    inner_->set_iov_batch_max(n);
  }
  std::optional<AsyncInfo> async_info() const override {
    return inner_->async_info();
  }

  /// Purely observational wrapper, so — unlike the cost/fault decorators —
  /// the view-I/O capability is forwarded, interposed so the spans and
  /// histograms still see those accesses.
  ViewIo* view_io() override {
    return inner_->view_io() != nullptr ? this : nullptr;
  }
  Off view_write(const dt::Type& filetype, Off disp, Off stream_lo,
                 ConstByteSpan data) override;
  Off view_read(const dt::Type& filetype, Off disp, Off stream_lo,
                ByteSpan out) override;

  const FilePtr& inner() const { return inner_; }

 protected:
  Off do_pread(Off offset, ByteSpan out) override;
  void do_pwrite(Off offset, ConstByteSpan data) override;
  Off do_preadv(std::span<const IoVec> iov) override;
  void do_pwritev(std::span<const ConstIoVec> iov) override;

 private:
  explicit TracedFile(FilePtr inner);

  FilePtr inner_;
};

}  // namespace llio::pfs
