// Optional backend capability: fileview ("listless I/O over the wire").
//
// A FileBackend that also implements ViewIo can execute a whole
// non-contiguous fileview access on the storage side: the caller hands
// over the filetype tree, a displacement, and a dense stream range, and
// the backend performs the scatter/gather where the data lives.  This is
// the server-side half of the paper's argument — instead of the client
// flattening the view into an ol-list (or sieving around it), the compact
// datatype tree itself travels to the file servers (psrv), which navigate
// it locally exactly like the listless engine does in-process.
//
// The engines probe FileBackend::view_io() on the independent access path
// and use this interface when it is non-null; semantics must match what
// the same access would produce through pread/pwrite on the same backend.
#pragma once

#include "common/bytes.hpp"
#include "dtype/datatype.hpp"

namespace llio::pfs {

class ViewIo {
 public:
  virtual ~ViewIo() = default;

  /// Write the dense stream bytes [stream_lo, stream_lo + data.size()) of
  /// the tiling of `filetype` displaced by `disp`, scattering them to the
  /// view's file offsets.  The filetype must be navigable (validated by
  /// the view layer).  Returns the number of stream bytes written
  /// (always data.size() on success; errors throw).
  virtual Off view_write(const dt::Type& filetype, Off disp, Off stream_lo,
                         ConstByteSpan data) = 0;

  /// Read counterpart: gather the dense stream bytes [stream_lo,
  /// stream_lo + out.size()) from the view's file offsets into `out`,
  /// zero-filling bytes past end of file.  Returns out.size().
  virtual Off view_read(const dt::Type& filetype, Off disp, Off stream_lo,
                        ByteSpan out) = 0;
};

}  // namespace llio::pfs
