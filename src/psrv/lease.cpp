#include "psrv/lease.hpp"

#include <algorithm>

namespace llio::psrv::lease {

LeaseTable::Grant LeaseTable::acquire(std::int64_t id, std::int64_t session,
                                      Mode mode, Off lo, Off hi,
                                      std::int64_t now, std::int64_t term) {
  Grant g;
  std::vector<std::int64_t> in_the_way;
  for (const auto& [lid, l] : leases_) {
    if (l.session == session || !l.overlaps(lo, hi) || !live(l, now)) continue;
    if (mode == Mode::Write || l.mode == Mode::Write) in_the_way.push_back(lid);
  }
  if (!in_the_way.empty()) {
    ++stats_.denied;
    g.recalled = mark_recalled(in_the_way, now);
    return g;
  }
  Lease l;
  l.id = id;
  l.session = session;
  l.mode = mode;
  l.lo = lo;
  l.hi = hi;
  l.term = term;
  l.expiry = mode == Mode::Read ? now + term : kNever;
  leases_.emplace(id, l);
  ++stats_.granted;
  g.granted = true;
  g.lease_id = id;
  g.expiry = l.expiry;
  return g;
}

bool LeaseTable::release(std::int64_t id) {
  const auto it = leases_.find(id);
  if (it == leases_.end()) return false;
  leases_.erase(it);
  ++version_;
  return true;
}

void LeaseTable::renew_session(std::int64_t session, std::int64_t now) {
  for (auto& [id, l] : leases_) {
    if (l.session != session || l.mode != Mode::Read || l.recalled()) continue;
    l.expiry = std::max(l.expiry, now + l.term);
  }
}

void LeaseTable::drop_session(std::int64_t session) {
  bool any = false;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.session == session) {
      it = leases_.erase(it);
      any = true;
    } else {
      ++it;
    }
  }
  fenced_.erase(session);
  if (any) ++version_;
}

std::vector<const Lease*> LeaseTable::conflicts(std::int64_t session,
                                                bool writing, Off lo, Off hi,
                                                std::int64_t now) const {
  std::vector<const Lease*> out;
  for (const auto& [id, l] : leases_) {
    if (l.session == session || !l.overlaps(lo, hi) || !live(l, now)) continue;
    if (writing || l.mode == Mode::Write) out.push_back(&l);
  }
  return out;
}

std::vector<Lease> LeaseTable::mark_recalled(
    const std::vector<std::int64_t>& ids, std::int64_t now) {
  std::vector<Lease> newly;
  for (std::int64_t id : ids) {
    const auto it = leases_.find(id);
    if (it == leases_.end() || it->second.recalled()) continue;
    it->second.recall_deadline = now + grace_;
    ++stats_.recalls;
    newly.push_back(it->second);
  }
  return newly;
}

int LeaseTable::sweep(std::int64_t now) {
  int removed = 0;
  for (auto it = leases_.begin(); it != leases_.end();) {
    Lease& l = it->second;
    if (l.recalled() && now >= l.recall_deadline) {
      // Grace ran out: the holder is dead or unresponsive.  A write
      // lease dying this way fences its range — any dirty data it
      // protected must never land over whatever is served next.
      if (l.mode == Mode::Write) {
        fenced_[l.session].emplace_back(l.lo, l.hi);
        ++stats_.fenced_ranges;
      }
      ++stats_.force_expired;
      it = leases_.erase(it);
      ++removed;
    } else if (l.mode == Mode::Read && !l.recalled() && now >= l.expiry) {
      ++stats_.expired;
      it = leases_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  if (removed > 0) ++version_;
  return removed;
}

bool LeaseTable::is_fenced(std::int64_t session, Off lo, Off hi) const {
  const auto it = fenced_.find(session);
  if (it == fenced_.end()) return false;
  for (const auto& [flo, fhi] : it->second)
    if (flo < hi && lo < fhi) return true;
  return false;
}

bool LeaseTable::covered_by_write(std::int64_t session, Off lo, Off hi,
                                  std::int64_t now) const {
  if (lo >= hi) return true;
  // Union coverage by this session's live write leases: sort the
  // overlapping ones and walk a cursor across [lo, hi).
  std::vector<std::pair<Off, Off>> spans;
  for (const auto& [id, l] : leases_) {
    if (l.session != session || l.mode != Mode::Write) continue;
    if (!l.overlaps(lo, hi) || !live(l, now)) continue;
    spans.emplace_back(l.lo, l.hi);
  }
  std::sort(spans.begin(), spans.end());
  Off at = lo;
  for (const auto& [slo, shi] : spans) {
    if (slo > at) return false;
    at = std::max(at, shi);
    if (at >= hi) return true;
  }
  return at >= hi;
}

std::int64_t LeaseTable::earliest_recall_deadline() const {
  std::int64_t best = kNever;
  for (const auto& [id, l] : leases_)
    if (l.recalled()) best = std::min(best, l.recall_deadline);
  return best;
}

const Lease* LeaseTable::find(std::int64_t id) const {
  const auto it = leases_.find(id);
  return it == leases_.end() ? nullptr : &it->second;
}

}  // namespace llio::psrv::lease
