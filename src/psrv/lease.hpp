// Lease-based coherence for multi-tenant psrv (Gray & Cheriton leases,
// the protocol NFSv4 delegations descend from).
//
// A lease is a time-bounded promise from a server to a client session:
// while the lease is live, no conflicting access will be served.  Read
// leases let the session cache blocks; write leases additionally let it
// buffer dirty data client-side (write-back).  All times are ticks of the
// pool-wide *sim clock* (one tick per served request, jumped forward when
// a server stalls with parked work) — never wall time, so expiry is
// deterministic under test and independent of machine speed.
//
// Conflict rule: two accesses conflict iff they come from different
// sessions, their byte ranges overlap, and at least one side writes.
// The table enforces it twice:
//   * at grant — a conflicting LeaseAcquire is denied outright, and every
//     lease in the way is recalled (the client goes uncached for that
//     block);
//   * at data ops — a conflicting read/write is *parked* by the server,
//     the leases in the way are recalled, and the op is served once they
//     are released or their recall grace expires.
//
// Recall grace: a recalled lease stays valid for `grace` ticks so a live
// client can flush write-back data.  If the deadline passes (client dead
// or unresponsive), the lease is force-expired; a *write* lease expiring
// this way fences its range — later write-backs from that session are
// dropped, not applied over newer data.
//
// Natural (non-recall) expiry applies to read leases only: a stale read
// lease silently lapses and the client revalidates.  Write leases never
// lapse on their own — dirty data whose lease silently vanished would be
// unflushable — they end only by release, session close, or recall+grace.
// Any request from a session renews its read leases (activity = renewal).
//
// The table is owned by exactly one server thread; no locking inside.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "common/bytes.hpp"

namespace llio::psrv::lease {

enum class Mode : std::uint8_t { Read = 0, Write = 1 };

/// Tick value meaning "no deadline".
constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max() / 2;

struct Lease {
  std::int64_t id = 0;
  std::int64_t session = 0;
  Mode mode = Mode::Read;
  Off lo = 0, hi = 0;  ///< global file offsets, [lo, hi)
  std::int64_t expiry = kNever;           ///< read leases: natural lapse
  std::int64_t recall_deadline = kNever;  ///< set once recalled
  std::int64_t term = 0;                  ///< renewal adds this many ticks

  bool recalled() const { return recall_deadline != kNever; }
  bool overlaps(Off l, Off h) const { return lo < h && l < hi; }
};

struct LeaseStats {
  std::uint64_t granted = 0;
  std::uint64_t denied = 0;         ///< conflicting acquires bounced
  std::uint64_t recalls = 0;        ///< leases newly marked for recall
  std::uint64_t expired = 0;        ///< natural read-lease lapses
  std::uint64_t force_expired = 0;  ///< recall grace ran out
  std::uint64_t fenced_ranges = 0;  ///< write ranges fenced by force-expiry
};

class LeaseTable {
 public:
  /// `grace` = ticks a recalled lease stays valid for the flush.
  explicit LeaseTable(std::int64_t grace) : grace_(grace) {}

  struct Grant {
    bool granted = false;
    std::int64_t lease_id = 0;
    std::int64_t expiry = kNever;
    /// Leases newly marked for recall by this (denied) acquire; the
    /// caller owes each one a recall message.
    std::vector<Lease> recalled;
  };

  /// Try to grant (session, mode, [lo, hi)).  `term` is the read-lease
  /// natural lifetime in ticks (ignored for write leases).  On conflict:
  /// denied, conflicting leases recalled with deadline now + grace.
  Grant acquire(std::int64_t id, std::int64_t session, Mode mode, Off lo,
                Off hi, std::int64_t now, std::int64_t term);

  /// Drop a lease (client released it).  Returns true if it existed.
  bool release(std::int64_t id);

  /// Activity-based renewal: push every live read lease of `session` out
  /// to now + its term.  Recalled leases are NOT renewed — the recall
  /// deadline must stand.
  void renew_session(std::int64_t session, std::int64_t now);

  /// Session close: drop all its leases and fenced ranges (a graceful
  /// close flushed first; nothing to fence).
  void drop_session(std::int64_t session);

  /// Live leases of OTHER sessions conflicting with an access.  A lease
  /// conflicts if ranges overlap and (writing || lease.mode == Write).
  std::vector<const Lease*> conflicts(std::int64_t session, bool writing,
                                      Off lo, Off hi,
                                      std::int64_t now) const;

  /// Mark the given lease ids recalled (deadline = now + grace) if not
  /// already; returns the leases newly recalled (recall messages owed).
  std::vector<Lease> mark_recalled(const std::vector<std::int64_t>& ids,
                                   std::int64_t now);

  /// Expire what the clock has passed: read leases beyond their natural
  /// expiry, and any recalled lease beyond its grace deadline (fencing
  /// write ranges).  Returns the number of leases removed.
  int sweep(std::int64_t now);

  /// Does [lo, hi) overlap a fenced range of `session`?
  bool is_fenced(std::int64_t session, Off lo, Off hi) const;

  /// Is [lo, hi) fully covered by live write leases of `session`?
  bool covered_by_write(std::int64_t session, Off lo, Off hi,
                        std::int64_t now) const;

  /// Earliest recall deadline over live leases (kNever when none): the
  /// tick a stalled server must jump the clock to so parked work can
  /// make progress.
  std::int64_t earliest_recall_deadline() const;

  /// Bumped whenever a lease disappears (release / expiry / drop):
  /// parked requests re-evaluate when this changes.
  std::uint64_t version() const { return version_; }

  const LeaseStats& stats() const { return stats_; }
  std::size_t size() const { return leases_.size(); }
  const Lease* find(std::int64_t id) const;

 private:
  bool live(const Lease& l, std::int64_t now) const {
    return !(l.mode == Mode::Read && l.expiry <= now && !l.recalled());
  }

  std::int64_t grace_;
  std::map<std::int64_t, Lease> leases_;
  /// session -> fenced ranges (unflushed write-lease ranges that were
  /// force-expired; write-backs overlapping them are dropped).
  std::map<std::int64_t, std::vector<std::pair<Off, Off>>> fenced_;
  std::uint64_t version_ = 0;
  LeaseStats stats_;
};

}  // namespace llio::psrv::lease
