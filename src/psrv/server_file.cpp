#include "psrv/server_file.hpp"

#include <algorithm>
#include <cstring>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "core/listless_nav.hpp"
#include "dtype/normalize.hpp"
#include "dtype/serialize.hpp"
#include "mpiio/options.hpp"
#include "psrv/wire.hpp"
#include "simmpi/net_model.hpp"

namespace llio::psrv {

RequestClass request_class_from_name(const std::string& name) {
  if (name == "contig") return RequestClass::Contig;
  if (name == "list") return RequestClass::List;
  if (name == "view") return RequestClass::View;
  throw_error(Errc::InvalidArgument,
              "psrv request class (want contig|list|view): " + name);
}

const char* request_class_name(RequestClass cls) noexcept {
  switch (cls) {
    case RequestClass::Contig:
      return "contig";
    case RequestClass::List:
      return "list";
    case RequestClass::View:
      return "view";
  }
  return "?";
}

/// Client-side cached fileview: the serialized normalized tree, a
/// navigator for shard splitting, and which servers have it installed.
struct ServerFile::ClientView {
  std::int64_t id = 0;
  dt::Type ft;   ///< normalized filetype (owned, pins the tree)
  ByteVec tree;  ///< dt::serialize(ft) — what travels on first use
  std::mutex nav_mu;
  std::unique_ptr<core::ListlessNav> nav;
  std::unique_ptr<std::atomic<bool>[]> installed;  ///< per server
};

/// One wire round trip: request message plus where its response goes.
struct ServerFile::SubReq {
  int server = 0;
  sim::MsgClass cls = sim::MsgClass::Meta;
  ByteVec msg;

  /// Write payloads, gathered onto the wire straight from user memory
  /// (send_gather) instead of being staged into `msg`.  The spans must
  /// stay valid until transact() returns — they are re-sent verbatim on
  /// an UnknownView retry.
  std::vector<ConstByteSpan> payload_runs;

  /// Ok-response payload destinations, filled sequentially (reads).
  std::vector<ByteSpan> dests;

  /// UnknownView retry support (view requests only).
  std::shared_ptr<ClientView> view;
  std::function<ByteVec()> rebuild_with_tree;
};

ServerFile::ServerFile(std::shared_ptr<ServerPool> pool, RequestClass cls,
                       SessionConfig scfg)
    : pool_(std::move(pool)), cls_(cls) {
  LLIO_REQUIRE(pool_ != nullptr, Errc::InvalidArgument, "psrv: null pool");
  session_ = Session::open(pool_, scfg);
}

std::shared_ptr<ServerFile> ServerFile::create(std::shared_ptr<ServerPool> pool,
                                               RequestClass cls,
                                               SessionConfig scfg) {
  return std::shared_ptr<ServerFile>(
      new ServerFile(std::move(pool), cls, scfg));
}

void ServerFile::transact(std::vector<SubReq>& reqs) {
  if (reqs.empty()) return;
  ServerPool::Endpoint ep = pool_->checkout();
  std::vector<std::optional<ServerPool::Credit>> credits(reqs.size());
  std::optional<Errc> err;
  std::string err_what;

  const auto process_response = [&](SubReq& r) {
    ByteVec resp = ep.comm().recv(r.server, wire::kTagResponse);
    wire::Reader rd(resp);
    auto status = static_cast<wire::Status>(rd.u8());
    if (status == wire::Status::UnknownView && r.view != nullptr) {
      // Server-side cache eviction: retry once with the tree attached,
      // reusing the credit this request already holds.
      r.view->installed[to_size(r.server)].store(false, std::memory_order_relaxed);
      ep.comm().send_gather(r.server, wire::kTagRequest,
                            r.rebuild_with_tree(), r.payload_runs, r.cls);
      resp = ep.comm().recv(r.server, wire::kTagResponse);
      rd = wire::Reader(resp);
      status = static_cast<wire::Status>(rd.u8());
    }
    switch (status) {
      case wire::Status::Ok: {
        rd.i64();  // op result count (informational)
        for (const ByteSpan& dst : r.dests) {
          const ConstByteSpan chunk = rd.bytes(to_off(dst.size()));
          std::memcpy(dst.data(), chunk.data(), chunk.size());
        }
        if (r.view != nullptr)
          r.view->installed[to_size(r.server)].store(true, std::memory_order_relaxed);
        break;
      }
      case wire::Status::Fail: {
        if (!err) {
          err = static_cast<Errc>(rd.u8());
          const ConstByteSpan what = rd.rest();
          err_what.assign(reinterpret_cast<const char*>(what.data()),
                          what.size());
        }
        break;
      }
      default:
        if (!err) {
          err = Errc::Protocol;
          err_what = "psrv: unexpected response status";
        }
        break;
    }
  };

  // Sliding window: send when a credit is free, otherwise drain an
  // outstanding response (which frees one).  Blocking on a credit is only
  // safe with nothing of ours outstanding — with fewer credits than
  // sub-requests on one server, send-all-then-drain would deadlock.
  std::size_t sent = 0, done = 0;
  while (done < reqs.size()) {
    if (sent < reqs.size()) {
      SubReq& r = reqs[sent];
      std::optional<ServerPool::Credit> credit =
          pool_->try_acquire_credit(r.server, session_->id());
      if (!credit && done == sent)
        credit = pool_->acquire_credit(r.server, session_->id());
      if (credit) {
        credits[sent] = std::move(credit);
        ep.comm().send_gather(r.server, wire::kTagRequest,
                              ConstByteSpan(r.msg), r.payload_runs, r.cls);
        ++sent;
        continue;
      }
    }
    process_response(reqs[done]);
    credits[done].reset();  // response consumed: free the queue slot
    ++done;
  }
  if (err) throw_error(*err, err_what);
}

// ---- contig / list translation -------------------------------------------

namespace {

/// A shard-local slice of one access.
template <typename SpanT>
struct Piece {
  int server = 0;
  Off local_off = 0;
  SpanT buf;
};

using WPiece = Piece<ConstByteSpan>;
using RPiece = Piece<ByteSpan>;

/// Split a contiguous file extent into per-shard pieces, in file order.
template <typename SpanT>
void split_extent(const ServerPool& pool, Off off, SpanT buf,
                  std::vector<Piece<SpanT>>& out) {
  Off len = to_off(buf.size());
  if (len <= 0) return;
  int s = pool.owner(off);
  const auto& domains = pool.domains();
  Off done = 0;
  while (len > 0) {
    const mpiio::Domain& d = domains[to_size(Off{s})];
    if (d.empty() || off >= d.hi) {
      ++s;
      LLIO_ASSERT(s < static_cast<int>(domains.size()),
                  "psrv: extent ran past the last shard");
      continue;
    }
    const Off take = std::min(len, d.hi - off);
    out.push_back({s, off - d.lo, buf.subspan(to_size(done), to_size(take))});
    off += take;
    done += take;
    len -= take;
  }
}

/// One Read/Write round trip per piece (the chatty contig baseline).
template <typename SpanT>
void encode_contig(std::vector<Piece<SpanT>>& pieces, bool writing,
                   std::int64_t session,
                   std::vector<ServerFile::SubReq>& reqs) {
  for (Piece<SpanT>& p : pieces) {
    ServerFile::SubReq r;
    r.server = p.server;
    if (writing) {
      r.cls = sim::MsgClass::Data;
      r.msg = wire::request_header(wire::Op::Write, session);
      wire::put_i64(r.msg, p.local_off);
      r.payload_runs.push_back(ConstByteSpan(p.buf.data(), p.buf.size()));
    } else {
      r.cls = sim::MsgClass::Meta;
      r.msg = wire::request_header(wire::Op::Read, session);
      wire::put_i64(r.msg, p.local_off);
      wire::put_i64(r.msg, to_off(p.buf.size()));
      if constexpr (std::is_same_v<SpanT, ByteSpan>) r.dests.push_back(p.buf);
    }
    reqs.push_back(std::move(r));
  }
}

/// Group pieces per server into ol-list messages, coalescing adjacent
/// extents client-side (the "batching of adjacent extents").  When
/// `batch_max` > 0 a server's list is split into multiple messages of at
/// most that many coalesced extents each, mirroring how the local
/// backends honor Options::iov_batch_max.
template <typename SpanT>
void encode_list(std::vector<Piece<SpanT>>& pieces, bool writing, int nservers,
                 Off batch_max, std::int64_t session,
                 std::vector<ServerFile::SubReq>& reqs) {
  const std::size_t max_extents = batch_max > 0
                                      ? to_size(batch_max)
                                      : std::numeric_limits<std::size_t>::max();
  for (int s = 0; s < nservers; ++s) {
    std::vector<std::pair<Off, Off>> extents;  // (local_off, len)
    std::vector<Piece<SpanT>*> chunk;
    const auto flush = [&] {
      if (extents.empty()) return;
      ServerFile::SubReq r;
      r.server = s;
      r.cls = writing ? sim::MsgClass::Data : sim::MsgClass::Meta;
      r.msg = wire::request_header(
          writing ? wire::Op::WriteList : wire::Op::ReadList, session);
      wire::put_i64(r.msg, to_off(extents.size()));
      for (const auto& [off, len] : extents) {
        wire::put_i64(r.msg, off);
        wire::put_i64(r.msg, len);
      }
      for (Piece<SpanT>* p : chunk) {
        if (writing)
          r.payload_runs.push_back(ConstByteSpan(p->buf.data(), p->buf.size()));
        else if constexpr (std::is_same_v<SpanT, ByteSpan>)
          r.dests.push_back(p->buf);
      }
      reqs.push_back(std::move(r));
      extents.clear();
      chunk.clear();
    };
    for (Piece<SpanT>& p : pieces) {
      if (p.server != s) continue;
      const Off len = to_off(p.buf.size());
      if (!extents.empty() &&
          extents.back().first + extents.back().second == p.local_off) {
        extents.back().second += len;
      } else {
        if (extents.size() >= max_extents) flush();
        extents.emplace_back(p.local_off, len);
      }
      chunk.push_back(&p);
    }
    flush();
  }
}

}  // namespace

void ServerFile::do_pwrite(Off offset, ConstByteSpan data) {
  // Cache-enabled sessions buffer the write under write leases; a lease
  // denial (cross-session contention) falls back to the wire path after
  // the session flushed + dropped the overlapping cache state.
  if (session_->cache_enabled() && session_->cached_write(offset, data)) {
    pool_->grow_size(offset + to_off(data.size()));
    return;
  }
  std::vector<WPiece> pieces;
  split_extent(*pool_, offset, data, pieces);
  std::vector<SubReq> reqs;
  encode_contig(pieces, /*writing=*/true, session_->id(), reqs);
  transact(reqs);
  pool_->grow_size(offset + to_off(data.size()));
}

Off ServerFile::do_pread(Off offset, ByteSpan out) {
  const Off len = to_off(out.size());
  const Off fsize = pool_->logical_size();
  if (session_->cache_enabled() && session_->cached_read(offset, out))
    return std::clamp<Off>(fsize - offset, 0, len);
  std::vector<RPiece> pieces;
  split_extent(*pool_, offset, out, pieces);
  std::vector<SubReq> reqs;
  encode_contig(pieces, /*writing=*/false, session_->id(), reqs);
  transact(reqs);
  // Servers zero-fill past their shard EOF; the read count follows the
  // logical file size (short reads only at end of file).
  return std::clamp<Off>(fsize - offset, 0, len);
}

void ServerFile::do_pwritev(std::span<const pfs::ConstIoVec> iov) {
  std::vector<WPiece> pieces;
  Off hi = 0;
  for (const pfs::ConstIoVec& v : iov) {
    split_extent(*pool_, v.offset, v.buf, pieces);
    hi = std::max(hi, v.offset + to_off(v.buf.size()));
    if (session_->cache_enabled())
      session_->prepare_bypass(v.offset, v.offset + to_off(v.buf.size()),
                               /*writing=*/true);
  }
  std::vector<SubReq> reqs;
  if (cls_ == RequestClass::Contig)
    encode_contig(pieces, /*writing=*/true, session_->id(), reqs);
  else
    encode_list(pieces, /*writing=*/true, pool_->nservers(), iov_batch_max(),
                session_->id(), reqs);
  transact(reqs);
  pool_->grow_size(hi);
}

Off ServerFile::do_preadv(std::span<const pfs::IoVec> iov) {
  const Off fsize = pool_->logical_size();
  std::vector<RPiece> pieces;
  for (const pfs::IoVec& v : iov) {
    split_extent(*pool_, v.offset, v.buf, pieces);
    if (session_->cache_enabled())
      session_->prepare_bypass(v.offset, v.offset + to_off(v.buf.size()),
                               /*writing=*/false);
  }
  std::vector<SubReq> reqs;
  if (cls_ == RequestClass::Contig)
    encode_contig(pieces, /*writing=*/false, session_->id(), reqs);
  else
    encode_list(pieces, /*writing=*/false, pool_->nservers(), iov_batch_max(),
                session_->id(), reqs);
  transact(reqs);
  Off got = 0;
  for (const pfs::IoVec& v : iov)
    got += std::clamp<Off>(fsize - v.offset, 0, to_off(v.buf.size()));
  return got;
}

// ---- view translation ----------------------------------------------------

std::shared_ptr<ServerFile::ClientView> ServerFile::intern_view(
    const dt::Type& filetype) {
  ByteVec key = dt::serialize(dt::normalize(filetype));
  std::lock_guard<std::mutex> lock(views_mu_);
  auto it = views_.find(key);
  if (it != views_.end()) return it->second;
  auto cv = std::make_shared<ClientView>();
  cv->id = pool_->alloc_view_id();
  cv->ft = dt::deserialize(key);  // private normalized copy
  cv->tree = key;
  cv->nav = std::make_unique<core::ListlessNav>(cv->ft);
  cv->installed = std::make_unique<std::atomic<bool>[]>(
      to_size(Off{pool_->nservers()}));
  views_.emplace(std::move(key), cv);
  return cv;
}

Off ServerFile::view_access(const dt::Type& filetype, Off disp, Off stream_lo,
                            ConstByteSpan wdata, ByteSpan rdata) {
  const bool writing = rdata.empty();
  const Off n = writing ? to_off(wdata.size()) : to_off(rdata.size());
  if (n <= 0) return 0;
  LLIO_REQUIRE(stream_lo >= 0 && disp >= 0, Errc::InvalidArgument,
               "psrv view access: negative position");
  // A view access' precise footprint is only known after navigation;
  // keep the cache coherent conservatively over the whole file.
  if (session_->cache_enabled())
    session_->prepare_bypass(0, ServerPool::kOpenEnd, writing);
  std::shared_ptr<ClientView> cv = intern_view(filetype);

  // Split the stream range at shard boundaries: navigable monotone
  // filetypes map stream order to file order, so the stream bytes below a
  // domain's upper file offset are exactly the bytes this and earlier
  // servers own.
  struct VSeg {
    int server;
    Off slo, shi;
  };
  std::vector<VSeg> segs;
  Off abs_hi = 0;
  {
    std::lock_guard<std::mutex> lock(cv->nav_mu);
    core::ListlessNav& nav = *cv->nav;
    const Off s_hi = stream_lo + n;
    Off cursor = stream_lo;
    const auto& domains = pool_->domains();
    for (std::size_t s = 0; s < domains.size() && cursor < s_hi; ++s) {
      const mpiio::Domain& d = domains[s];
      if (d.empty()) continue;
      Off shi;
      if (d.hi >= ServerPool::kOpenEnd) {
        shi = s_hi;  // open-ended last domain takes the rest
      } else {
        const Off mem_hi = d.hi - disp;
        shi = mem_hi <= 0 ? cursor : nav.file_to_stream(mem_hi);
        shi = std::clamp(shi, cursor, s_hi);
      }
      if (shi > cursor) segs.push_back({static_cast<int>(s), cursor, shi});
      cursor = shi;
    }
    LLIO_ASSERT(cursor == s_hi, "psrv: view split lost stream bytes");
    if (writing) abs_hi = disp + nav.stream_to_file_end(s_hi);
  }

  std::vector<SubReq> reqs;
  reqs.reserve(segs.size());
  for (const VSeg& seg : segs) {
    const Off slen = seg.shi - seg.slo;
    const ConstByteSpan payload =
        writing ? wdata.subspan(to_size(seg.slo - stream_lo), to_size(slen))
                : ConstByteSpan{};
    // The write payload is NOT staged into the message: it travels as a
    // gather run straight out of the caller's buffer (transact uses
    // send_gather), so a view write costs one header allocation, not a
    // header-plus-payload copy.
    const auto build = [cv, disp, writing, seg, slen,
                        session = session_->id()](bool with_tree) {
      ByteVec m = wire::request_header(
          writing ? wire::Op::WriteView : wire::Op::ReadView, session);
      wire::put_i64(m, cv->id);
      wire::put_i64(m, disp);
      wire::put_i64(m, seg.slo);
      if (!writing) wire::put_i64(m, slen);
      if (with_tree) {
        wire::put_i64(m, to_off(cv->tree.size()));
        wire::put_bytes(m, cv->tree);
      } else {
        wire::put_i64(m, 0);
      }
      return m;
    };
    SubReq r;
    r.server = seg.server;
    r.cls = writing ? sim::MsgClass::Data : sim::MsgClass::Meta;
    r.msg = build(
        !cv->installed[to_size(seg.server)].load(std::memory_order_relaxed));
    if (writing)
      r.payload_runs.push_back(payload);
    else
      r.dests.push_back(
          rdata.subspan(to_size(seg.slo - stream_lo), to_size(slen)));
    r.view = cv;
    r.rebuild_with_tree = [build] { return build(true); };
    reqs.push_back(std::move(r));
  }
  transact(reqs);
  if (writing) pool_->grow_size(abs_hi);
  return n;
}

Off ServerFile::view_write(const dt::Type& filetype, Off disp, Off stream_lo,
                           ConstByteSpan data) {
  const Off n = view_access(filetype, disp, stream_lo, data, {});
  note_write(n);
  return n;
}

Off ServerFile::view_read(const dt::Type& filetype, Off disp, Off stream_lo,
                          ByteSpan out) {
  const Off n =
      view_access(filetype, disp, stream_lo, {}, out);
  note_read(n);
  return n;
}

// ---- admin ---------------------------------------------------------------

void ServerFile::resize(Off new_size) {
  LLIO_REQUIRE(new_size >= 0, Errc::InvalidArgument,
               "psrv resize: negative size");
  // A resize invalidates cached state wholesale (truncation may cut
  // under any block): flush, drop, release.
  if (session_->cache_enabled())
    session_->prepare_bypass(0, ServerPool::kOpenEnd, /*writing=*/true);
  std::vector<SubReq> reqs;
  for (int s = 0; s < pool_->nservers(); ++s) {
    SubReq r;
    r.server = s;
    r.msg = wire::request_header(wire::Op::Resize, session_->id());
    wire::put_i64(r.msg, new_size);
    reqs.push_back(std::move(r));
  }
  transact(reqs);
  pool_->set_size(new_size);
}

void ServerFile::sync() {
  if (session_->cache_enabled()) session_->flush();
  std::vector<SubReq> reqs;
  for (int s = 0; s < pool_->nservers(); ++s) {
    SubReq r;
    r.server = s;
    r.msg = wire::request_header(wire::Op::Sync, session_->id());
    reqs.push_back(std::move(r));
  }
  transact(reqs);
}

// ---- options factory -----------------------------------------------------

std::shared_ptr<ServerFile> make_server_file(const mpiio::Options& opts,
                                             PoolConfig base) {
  PoolConfig cfg = std::move(base);
  if (opts.psrv_servers > 0) cfg.nservers = opts.psrv_servers;
  if (opts.psrv_queue_depth > 0) cfg.queue_depth = opts.psrv_queue_depth;
  if (!opts.net_model.empty()) {
    cfg.net = sim::named_cost_model(opts.net_model);
    cfg.net_name = opts.net_model;
  }
  SessionConfig scfg;
  if (opts.psrv_session_weight > 0) scfg.weight = opts.psrv_session_weight;
  scfg.cache = opts.psrv_cache;
  if (opts.psrv_lease_ms > 0) scfg.lease_term = opts.psrv_lease_ms;
  return ServerFile::create(ServerPool::create(std::move(cfg)),
                            request_class_from_name(opts.psrv_request), scfg);
}

}  // namespace llio::psrv
