// Client-side handle onto a ServerPool: a pfs::FileBackend, so the whole
// existing stack (both engines, the pipelined collective path, mergeview,
// shared file pointers, the C API) runs unchanged on top of networked
// file servers.
//
// The request class decides how backend calls translate to the wire:
//   Contig — every contiguous extent is its own round trip (the
//            PVFS-without-list-IO baseline: chatty on sparse patterns),
//   List   — vectored accesses group into one ol-list message per server
//            with adjacent extents coalesced client-side,
//   View   — additionally exposes the pfs::ViewIo capability, so the
//            engines ship the serialized filetype tree (fileview caching,
//            §3.2.3) and a dense stream range instead of any list.
//            Accesses that arrive without a datatype (plain
//            pread/pwrite/preadv/pwritev) use the List translation.
//
// Monotone navigable filetypes make the stream<->file mapping monotone,
// so a view access splits at shard boundaries by pure navigation and each
// server receives exactly its slice of the data — no wire duplication.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "pfs/file_backend.hpp"
#include "pfs/view_io.hpp"
#include "psrv/server_pool.hpp"
#include "psrv/session.hpp"

namespace llio::mpiio {
struct Options;
}

namespace llio::psrv {

enum class RequestClass { Contig, List, View };

/// Parse "contig" | "list" | "view" (throws Errc::InvalidArgument).
RequestClass request_class_from_name(const std::string& name);
const char* request_class_name(RequestClass cls) noexcept;

class ServerFile final : public pfs::FileBackend, public pfs::ViewIo {
 public:
  /// Every handle opens a client session on the pool (its scheduling and
  /// lease identity); `scfg` picks the fair-share weight and, optionally,
  /// the lease-coherent client cache.
  static std::shared_ptr<ServerFile> create(
      std::shared_ptr<ServerPool> pool,
      RequestClass cls = RequestClass::Contig, SessionConfig scfg = {});

  const std::shared_ptr<ServerPool>& pool() const noexcept { return pool_; }
  RequestClass request_class() const noexcept { return cls_; }
  Session& session() noexcept { return *session_; }

  struct ClientView;
  struct SubReq;

  Off size() const override { return pool_->logical_size(); }
  void resize(Off new_size) override;
  void sync() override;

  pfs::ViewIo* view_io() override {
    return cls_ == RequestClass::View ? this : nullptr;
  }
  Off view_write(const dt::Type& filetype, Off disp, Off stream_lo,
                 ConstByteSpan data) override;
  Off view_read(const dt::Type& filetype, Off disp, Off stream_lo,
                ByteSpan out) override;

 protected:
  Off do_pread(Off offset, ByteSpan out) override;
  void do_pwrite(Off offset, ConstByteSpan data) override;
  Off do_preadv(std::span<const pfs::IoVec> iov) override;
  void do_pwritev(std::span<const pfs::ConstIoVec> iov) override;

 private:
  ServerFile(std::shared_ptr<ServerPool> pool, RequestClass cls,
             SessionConfig scfg);

  /// Send every sub-request (credit-gated) and drain the responses in
  /// order on one endpoint; throws the first server-reported error after
  /// draining.  Handles the UnknownView retry for view requests.
  void transact(std::vector<SubReq>& reqs);

  /// Look up / install the client-side cache entry for a filetype.
  std::shared_ptr<ClientView> intern_view(const dt::Type& filetype);

  Off view_access(const dt::Type& filetype, Off disp, Off stream_lo,
                  ConstByteSpan wdata, ByteSpan rdata);

  std::shared_ptr<ServerPool> pool_;
  RequestClass cls_;
  std::unique_ptr<Session> session_;  ///< after pool_: closed before release

  std::mutex views_mu_;
  std::map<ByteVec, std::shared_ptr<ClientView>> views_;
};

/// Build a pool + handle from the llio_psrv_* options: psrv_servers,
/// psrv_queue_depth, psrv_request, psrv_session_weight, psrv_cache,
/// psrv_lease_ms, plus llio_net_model for the interconnect.  `base`
/// supplies everything the options do not cover (stripe, capacity, shard
/// factory, ...).
std::shared_ptr<ServerFile> make_server_file(const mpiio::Options& opts,
                                             PoolConfig base = {});

}  // namespace llio::psrv
