#include "psrv/server_pool.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <limits>
#include <map>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/timer.hpp"
#include "core/listless_nav.hpp"
#include "dtype/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pfs/mem_file.hpp"
#include "psrv/lease.hpp"
#include "psrv/session.hpp"
#include "psrv/wire.hpp"

namespace llio::psrv {

namespace {
// Server threads get their own trace tracks, away from the rank pids.
constexpr int kServerTrackPid = 1000;
}  // namespace

ServerStats& ServerStats::operator+=(const ServerStats& o) {
  requests += o.requests;
  contig_ops += o.contig_ops;
  list_ops += o.list_ops;
  view_ops += o.view_ops;
  admin_ops += o.admin_ops;
  bytes_in += o.bytes_in;
  bytes_out += o.bytes_out;
  contig_bytes += o.contig_bytes;
  list_bytes += o.list_bytes;
  view_bytes += o.view_bytes;
  list_extents += o.list_extents;
  view_segments += o.view_segments;
  batched_extents += o.batched_extents;
  view_installs += o.view_installs;
  view_evictions += o.view_evictions;
  view_misses += o.view_misses;
  session_ops += o.session_ops;
  lease_ops += o.lease_ops;
  writeback_ops += o.writeback_ops;
  writeback_bytes += o.writeback_bytes;
  recalls_sent += o.recalls_sent;
  parked += o.parked;
  fenced_drops += o.fenced_drops;
  agg_writes += o.agg_writes;
  escalations += o.escalations;
  max_queue_depth = std::max(max_queue_depth, o.max_queue_depth);
  service_s += o.service_s;
  queue_wait_s += o.queue_wait_s;
  return *this;
}

struct ServerPool::AtomicServerStats {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> contig_ops{0}, list_ops{0}, view_ops{0},
      admin_ops{0};
  std::atomic<std::uint64_t> bytes_in{0}, bytes_out{0};
  std::atomic<std::uint64_t> contig_bytes{0}, list_bytes{0}, view_bytes{0};
  std::atomic<std::uint64_t> list_extents{0}, view_segments{0},
      batched_extents{0};
  std::atomic<std::uint64_t> view_installs{0}, view_evictions{0},
      view_misses{0};
  std::atomic<std::uint64_t> session_ops{0}, lease_ops{0};
  std::atomic<std::uint64_t> writeback_ops{0}, writeback_bytes{0};
  std::atomic<std::uint64_t> recalls_sent{0}, parked{0}, fenced_drops{0};
  std::atomic<std::uint64_t> agg_writes{0}, escalations{0};
  std::atomic<std::uint64_t> max_queue_depth{0};
  std::atomic<std::uint64_t> service_ns{0};
  std::atomic<std::uint64_t> queue_wait_ns{0};

  ServerStats snapshot() const {
    ServerStats s;
    s.requests = requests.load(std::memory_order_relaxed);
    s.contig_ops = contig_ops.load(std::memory_order_relaxed);
    s.list_ops = list_ops.load(std::memory_order_relaxed);
    s.view_ops = view_ops.load(std::memory_order_relaxed);
    s.admin_ops = admin_ops.load(std::memory_order_relaxed);
    s.bytes_in = bytes_in.load(std::memory_order_relaxed);
    s.bytes_out = bytes_out.load(std::memory_order_relaxed);
    s.contig_bytes = contig_bytes.load(std::memory_order_relaxed);
    s.list_bytes = list_bytes.load(std::memory_order_relaxed);
    s.view_bytes = view_bytes.load(std::memory_order_relaxed);
    s.list_extents = list_extents.load(std::memory_order_relaxed);
    s.view_segments = view_segments.load(std::memory_order_relaxed);
    s.batched_extents = batched_extents.load(std::memory_order_relaxed);
    s.view_installs = view_installs.load(std::memory_order_relaxed);
    s.view_evictions = view_evictions.load(std::memory_order_relaxed);
    s.view_misses = view_misses.load(std::memory_order_relaxed);
    s.session_ops = session_ops.load(std::memory_order_relaxed);
    s.lease_ops = lease_ops.load(std::memory_order_relaxed);
    s.writeback_ops = writeback_ops.load(std::memory_order_relaxed);
    s.writeback_bytes = writeback_bytes.load(std::memory_order_relaxed);
    s.recalls_sent = recalls_sent.load(std::memory_order_relaxed);
    s.parked = parked.load(std::memory_order_relaxed);
    s.fenced_drops = fenced_drops.load(std::memory_order_relaxed);
    s.agg_writes = agg_writes.load(std::memory_order_relaxed);
    s.escalations = escalations.load(std::memory_order_relaxed);
    s.max_queue_depth = max_queue_depth.load(std::memory_order_relaxed);
    s.service_s =
        static_cast<double>(service_ns.load(std::memory_order_relaxed)) / 1e9;
    s.queue_wait_s =
        static_cast<double>(queue_wait_ns.load(std::memory_order_relaxed)) /
        1e9;
    return s;
  }
};

/// Per-server flow control, accounted per session: any one session may
/// have at most queue_depth requests in flight on this server.
struct ServerPool::CreditState {
  std::mutex mu;
  std::condition_variable cv;
  std::map<std::int64_t, int> inflight;  ///< session -> outstanding
};

std::shared_ptr<ServerPool> ServerPool::create(PoolConfig cfg) {
  return std::shared_ptr<ServerPool>(new ServerPool(std::move(cfg)));
}

ServerPool::ServerPool(PoolConfig cfg) : cfg_(std::move(cfg)) {
  LLIO_REQUIRE(cfg_.nservers >= 1, Errc::InvalidArgument,
               "psrv: nservers < 1");
  LLIO_REQUIRE(cfg_.stripe >= 1 && cfg_.capacity >= 1, Errc::InvalidArgument,
               "psrv: non-positive stripe/capacity");
  LLIO_REQUIRE(cfg_.queue_depth >= 1, Errc::InvalidArgument,
               "psrv: queue_depth < 1");
  LLIO_REQUIRE(cfg_.client_slots >= 1, Errc::InvalidArgument,
               "psrv: client_slots < 1");
  LLIO_REQUIRE(cfg_.view_cache_cap >= 1, Errc::InvalidArgument,
               "psrv: view_cache_cap < 1");
  LLIO_REQUIRE(cfg_.session_slots >= 0, Errc::InvalidArgument,
               "psrv: session_slots < 0");
  LLIO_REQUIRE(cfg_.lease_term >= 1 && cfg_.lease_grace >= 1,
               Errc::InvalidArgument, "psrv: non-positive lease term/grace");
  LLIO_REQUIRE(cfg_.deadline_ticks >= 1, Errc::InvalidArgument,
               "psrv: deadline_ticks < 1");
  LLIO_REQUIRE(cfg_.agg_max >= 1, Errc::InvalidArgument, "psrv: agg_max < 1");

  domains_ = mpiio::partition_domains({0, cfg_.capacity, /*any=*/true},
                                      cfg_.nservers, cfg_.stripe);
  // Open-ended last domain: every offset (even beyond `capacity`) has an
  // owner.  partition_domains guarantees only trailing domains are empty.
  for (auto it = domains_.rbegin(); it != domains_.rend(); ++it) {
    if (!it->empty()) {
      it->hi = kOpenEnd;
      break;
    }
  }

  net_name_ = cfg_.net_name;
  world_ = std::make_unique<sim::World>(
      cfg_.nservers + cfg_.client_slots + cfg_.session_slots, cfg_.net);
  shards_.reserve(to_size(Off{cfg_.nservers}));
  for (int s = 0; s < cfg_.nservers; ++s) {
    shards_.push_back(cfg_.make_shard ? cfg_.make_shard(s)
                                      : pfs::MemFile::create());
    LLIO_REQUIRE(shards_.back() != nullptr, Errc::InvalidArgument,
                 "psrv: make_shard returned null");
    stats_.push_back(std::make_unique<AtomicServerStats>());
    credits_.push_back(std::make_unique<CreditState>());
  }
  free_slots_.reserve(to_size(Off{cfg_.client_slots}));
  for (int c = cfg_.client_slots - 1; c >= 0; --c)
    free_slots_.push_back(cfg_.nservers + c);
  free_session_slots_.reserve(to_size(Off{cfg_.session_slots}));
  for (int c = cfg_.session_slots - 1; c >= 0; --c)
    free_session_slots_.push_back(cfg_.nservers + cfg_.client_slots + c);

  threads_.reserve(to_size(Off{cfg_.nservers}));
  for (int s = 0; s < cfg_.nservers; ++s)
    threads_.emplace_back([this, s] { serve(s); });
}

void ServerPool::set_net(const sim::CommCostModel& net,
                         const std::string& name) {
  world_->set_cost_model(net);
  std::lock_guard<std::mutex> lock(net_name_mu_);
  net_name_ = name;
}

std::string ServerPool::net_name() const {
  std::lock_guard<std::mutex> lock(net_name_mu_);
  return net_name_;
}

ServerPool::~ServerPool() {
  try {
    Endpoint ep = checkout();
    const ByteVec stop = wire::request_header(wire::Op::Stop, 0);
    for (int s = 0; s < cfg_.nservers; ++s)
      ep.comm().send(s, wire::kTagRequest, ConstByteSpan(stop),
                     sim::MsgClass::Meta);
  } catch (...) {
    // A dead world (earlier server failure) still needs the join below.
    world_->abort();
  }
  for (auto& t : threads_) t.join();
}

int ServerPool::owner(Off off) const {
  LLIO_REQUIRE(off >= 0, Errc::InvalidArgument, "psrv: negative offset");
  for (std::size_t s = 0; s < domains_.size(); ++s) {
    const mpiio::Domain& d = domains_[s];
    if (!d.empty() && off >= d.lo && off < d.hi) return static_cast<int>(s);
  }
  throw_error(Errc::Internal, "psrv: offset has no owning server");
}

const pfs::FilePtr& ServerPool::shard(int s) const {
  LLIO_REQUIRE(s >= 0 && s < cfg_.nservers, Errc::InvalidArgument,
               "psrv: bad server index");
  return shards_[to_size(Off{s})];
}

void ServerPool::grow_size(Off hi) {
  Off cur = size_.load(std::memory_order_relaxed);
  while (hi > cur &&
         !size_.compare_exchange_weak(cur, hi, std::memory_order_acq_rel)) {
  }
}

void ServerPool::advance_to(std::int64_t t) noexcept {
  std::int64_t cur = clock_.load(std::memory_order_relaxed);
  while (t > cur &&
         !clock_.compare_exchange_weak(cur, t, std::memory_order_acq_rel)) {
  }
}

ServerStats ServerPool::server_stats(int s) const {
  LLIO_REQUIRE(s >= 0 && s < cfg_.nservers, Errc::InvalidArgument,
               "psrv: bad server index");
  return stats_[to_size(Off{s})]->snapshot();
}

ServerStats ServerPool::total_server_stats() const {
  ServerStats total;
  for (int s = 0; s < cfg_.nservers; ++s) total += server_stats(s);
  return total;
}

ServerPool::Endpoint::~Endpoint() {
  if (pool_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(pool_->ep_mu_);
    pool_->free_slots_.push_back(slot_);
  }
  pool_->ep_cv_.notify_one();
}

ServerPool::Endpoint ServerPool::checkout() {
  std::unique_lock<std::mutex> lock(ep_mu_);
  ep_cv_.wait(lock, [&] { return !free_slots_.empty(); });
  const int slot = free_slots_.back();
  free_slots_.pop_back();
  lock.unlock();
  return Endpoint(this, slot, world_->comm(slot));
}

ServerPool::SessionSlot::~SessionSlot() {
  if (pool_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(pool_->ss_mu_);
    pool_->free_session_slots_.push_back(slot_);
  }
  pool_->ss_cv_.notify_one();
}

ServerPool::SessionSlot ServerPool::checkout_session_slot() {
  LLIO_REQUIRE(cfg_.session_slots >= 1, Errc::InvalidArgument,
               "psrv: cached session needs session_slots >= 1");
  std::unique_lock<std::mutex> lock(ss_mu_);
  ss_cv_.wait(lock, [&] { return !free_session_slots_.empty(); });
  const int slot = free_session_slots_.back();
  free_session_slots_.pop_back();
  lock.unlock();
  return SessionSlot(this, slot, world_->comm(slot));
}

void ServerPool::Credit::release() {
  if (pool_ == nullptr) return;
  CreditState& cs = *pool_->credits_[to_size(Off{server_})];
  {
    std::lock_guard<std::mutex> lock(cs.mu);
    const auto it = cs.inflight.find(session_);
    if (it != cs.inflight.end() && --it->second <= 0) cs.inflight.erase(it);
  }
  cs.cv.notify_all();
  pool_ = nullptr;
}

ServerPool::Credit ServerPool::acquire_credit(int s, std::int64_t session) {
  LLIO_REQUIRE(s >= 0 && s < cfg_.nservers, Errc::InvalidArgument,
               "psrv: bad server index");
  CreditState& cs = *credits_[to_size(Off{s})];
  int depth = 0;
  {
    std::unique_lock<std::mutex> lock(cs.mu);
    cs.cv.wait(lock,
               [&] { return cs.inflight[session] < cfg_.queue_depth; });
    depth = ++cs.inflight[session];
  }
  AtomicServerStats& st = *stats_[to_size(Off{s})];
  std::uint64_t hwm = st.max_queue_depth.load(std::memory_order_relaxed);
  while (static_cast<std::uint64_t>(depth) > hwm &&
         !st.max_queue_depth.compare_exchange_weak(
             hwm, static_cast<std::uint64_t>(depth),
             std::memory_order_relaxed)) {
  }
  if (obs::metrics_enabled())
    obs::Registry::instance()
        .histogram(strprintf("psrv.s%d.queue_depth", s))
        .record(depth);
  return Credit(this, s, session);
}

std::optional<ServerPool::Credit> ServerPool::try_acquire_credit(
    int s, std::int64_t session) {
  LLIO_REQUIRE(s >= 0 && s < cfg_.nservers, Errc::InvalidArgument,
               "psrv: bad server index");
  CreditState& cs = *credits_[to_size(Off{s})];
  int depth = 0;
  {
    std::lock_guard<std::mutex> lock(cs.mu);
    int& inflight = cs.inflight[session];
    if (inflight >= cfg_.queue_depth) {
      if (inflight == 0) cs.inflight.erase(session);
      return std::nullopt;
    }
    depth = ++inflight;
  }
  AtomicServerStats& st = *stats_[to_size(Off{s})];
  std::uint64_t hwm = st.max_queue_depth.load(std::memory_order_relaxed);
  while (static_cast<std::uint64_t>(depth) > hwm &&
         !st.max_queue_depth.compare_exchange_weak(
             hwm, static_cast<std::uint64_t>(depth),
             std::memory_order_relaxed)) {
  }
  if (obs::metrics_enabled())
    obs::Registry::instance()
        .histogram(strprintf("psrv.s%d.queue_depth", s))
        .record(depth);
  return Credit(this, s, session);
}

// ---- server side ---------------------------------------------------------

namespace {

/// Per-server fileview cache entry: the deserialized tree plus a listless
/// navigator over it (stateful cursor — fine, the server is one thread).
struct ViewEntry {
  dt::Type ft;
  std::unique_ptr<core::ListlessNav> nav;
  std::uint64_t last_use = 0;
};

using ViewCache = std::map<std::int64_t, ViewEntry>;

/// What a server thread knows about an open session.
struct SessionInfo {
  std::int64_t weight = 1;
  int callback_slot = -1;  ///< where recalls go; -1 = no recall channel
  std::int64_t lease_term = 0;
};

bool is_express_op(wire::Op op) {
  switch (op) {
    case wire::Op::OpenSession:
    case wire::Op::CloseSession:
    case wire::Op::LeaseAcquire:
    case wire::Op::LeaseRelease:
    case wire::Op::WriteBack:
    case wire::Op::Resize:
    case wire::Op::Sync:
      return true;
    default:
      return false;
  }
}

bool touches_leases(wire::Op op) {
  switch (op) {
    case wire::Op::Read:
    case wire::Op::Write:
    case wire::Op::ReadList:
    case wire::Op::WriteList:
    case wire::Op::ReadView:
    case wire::Op::WriteView:
    case wire::Op::WriteBack:
      return true;
    default:
      return false;
  }
}

/// Wall-clock wait a server allows before deciding nothing is coming and
/// jumping the sim clock to the next recall deadline.  Liveness only —
/// generous so a live (but slow) client's flush always beats the jump.
constexpr double kStallWait = 0.1;

}  // namespace

void ServerPool::serve(int idx) {
  const obs::ThreadTrackGuard track(kServerTrackPid + idx, 0,
                                    "psrv server " + std::to_string(idx),
                                    "io");
  sim::Comm comm = world_->comm(idx);
  pfs::FileBackend& shard = *shards_[to_size(Off{idx})];
  const mpiio::Domain dom = domains_[to_size(Off{idx})];
  AtomicServerStats& st = *stats_[to_size(Off{idx})];
  obs::Histogram* service_hist =
      obs::metrics_enabled()
          ? &obs::Registry::instance().histogram(
                strprintf("psrv.s%d.service_us", idx))
          : nullptr;

  ViewCache views;
  std::uint64_t use_tick = 0;

  FairScheduler sched(cfg_.deadline_ticks);
  lease::LeaseTable leases(cfg_.lease_grace);
  std::map<std::int64_t, SessionInfo> sessions;
  // Requests waiting out a lease conflict; their sessions' lanes are
  // blocked so later same-session requests cannot overtake (per-endpoint
  // response order).  Retried whenever the lease table version moves.
  std::deque<PendingReq> parked;
  std::uint64_t parked_seen = leases.version();
  bool stopping = false;

  const auto send_recalls = [&](const std::vector<lease::Lease>& newly) {
    for (const lease::Lease& l : newly) {
      const auto sit = sessions.find(l.session);
      if (sit == sessions.end() || sit->second.callback_slot < 0) continue;
      ByteVec m;
      wire::put_i64(m, l.id);
      wire::put_i64(m, l.lo);
      wire::put_i64(m, l.hi);
      wire::put_i64(m, l.recall_deadline);
      comm.send(sit->second.callback_slot, wire::kTagRecall, std::move(m),
                sim::MsgClass::Meta);
      st.recalls_sent.fetch_add(1, std::memory_order_relaxed);
    }
  };

  const auto ingest = [&](int src, ByteVec msg) {
    wire::Reader rd(msg);
    const auto op = static_cast<wire::Op>(rd.u8());
    if (op == wire::Op::Stop) {
      stopping = true;
      return;
    }
    const std::int64_t session = rd.i64();
    // Activity-based renewal: any request from a session keeps its read
    // leases fresh.
    leases.renew_session(session, now());
    PendingReq r;
    r.src = src;
    r.session = session;
    r.msg = std::move(msg);
    r.enq_tick = now();
    r.enq_wall = std::chrono::steady_clock::now();
    if (is_express_op(op)) {
      sched.push_express(std::move(r));
    } else {
      sched.push(std::move(r), now());
    }
  };

  // Conflicting lease ids (other sessions) in the way of a request.
  // `rd` is positioned just past the op byte and session id.
  const auto collect_blockers = [&](wire::Op op, wire::Reader rd,
                                    std::int64_t session) {
    std::vector<std::pair<Off, Off>> ranges;  // global byte spans
    bool writing = false;
    switch (op) {
      case wire::Op::Read: {
        const Off off = rd.i64();
        const Off len = rd.i64();
        if (len > 0) ranges.emplace_back(dom.lo + off, dom.lo + off + len);
        break;
      }
      case wire::Op::Write: {
        const Off off = rd.i64();
        const Off len = rd.remaining();
        writing = true;
        if (len > 0) ranges.emplace_back(dom.lo + off, dom.lo + off + len);
        break;
      }
      case wire::Op::ReadList:
      case wire::Op::WriteList:
      case wire::Op::WriteBack: {
        writing = op != wire::Op::ReadList;
        const Off n = rd.i64();
        for (Off i = 0; i < n; ++i) {
          const Off off = rd.i64();
          const Off len = rd.i64();
          if (len <= 0) continue;
          const Off lo = dom.lo + off;
          const Off hi = lo + len;
          // A fenced write-back extent will be dropped, not applied: it
          // cannot conflict with anything.
          if (op == wire::Op::WriteBack && leases.is_fenced(session, lo, hi))
            continue;
          ranges.emplace_back(lo, hi);
        }
        break;
      }
      case wire::Op::ReadView:
      case wire::Op::WriteView:
        // Conservative: a view op may touch anywhere in the shard (the
        // precise footprint is only known after navigating the tree).
        writing = op == wire::Op::WriteView;
        ranges.emplace_back(dom.lo, dom.hi);
        break;
      default:
        break;
    }
    std::vector<std::int64_t> ids;
    for (const auto& [lo, hi] : ranges)
      for (const lease::Lease* l :
           leases.conflicts(session, writing, lo, hi, now()))
        ids.push_back(l->id);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
  };

  // Replay an ol-list against the shard: adjacent extents (file-adjacent
  // AND payload-adjacent, which replay order guarantees) batch into one
  // vectored access.
  const auto replay_extents =
      [&](wire::Reader& rd, Off nextents,
          const std::function<void(Off local_off, Off len, Off payload_off)>&
              emit) -> Off {
    Off payload_off = 0;
    for (Off i = 0; i < nextents; ++i) {
      const Off off = rd.i64();
      const Off len = rd.i64();
      LLIO_REQUIRE(off >= 0 && len >= 0, Errc::Protocol,
                   "psrv: negative list extent");
      emit(off, len, payload_off);
      payload_off += len;
    }
    return payload_off;
  };

  // Account + answer one request.  `service_sec` covers shard/cpu work
  // (0 for writes that rode an aggregated pwritev).
  const auto respond = [&](const PendingReq& r, ByteVec resp,
                           sim::MsgClass cls, double service_sec) {
    st.requests.fetch_add(1, std::memory_order_relaxed);
    st.bytes_in.fetch_add(r.msg.size(), std::memory_order_relaxed);
    st.bytes_out.fetch_add(resp.size(), std::memory_order_relaxed);
    st.service_ns.fetch_add(static_cast<std::uint64_t>(service_sec * 1e9),
                            std::memory_order_relaxed);
    const double wait_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      r.enq_wall)
            .count();
    st.queue_wait_ns.fetch_add(static_cast<std::uint64_t>(wait_s * 1e9),
                               std::memory_order_relaxed);
    if (service_hist != nullptr)
      service_hist->record(static_cast<long long>(service_sec * 1e6));
    if (obs::metrics_enabled() && r.session != 0) {
      obs::Registry::instance()
          .histogram(strprintf("psrv.sess%lld.service_us",
                               static_cast<long long>(r.session)))
          .record(static_cast<long long>(service_sec * 1e6));
      obs::Registry::instance()
          .histogram(strprintf("psrv.sess%lld.queue_wait_us",
                               static_cast<long long>(r.session)))
          .record(static_cast<long long>(wait_s * 1e6));
    }
    comm.send(r.src, wire::kTagResponse, std::move(resp), cls);
  };

  // Serve a request whose lease conflicts are already cleared.
  const auto serve_request = [&](PendingReq r) {
    wire::Reader rd(r.msg);
    const auto op = static_cast<wire::Op>(rd.u8());
    const std::int64_t session = rd.i64();

    StopWatch w;
    w.start();
    ByteVec resp;
    sim::MsgClass resp_cls = sim::MsgClass::Meta;
    // Writes coalesced into this request by cross-session aggregation:
    // (request, payload length).  They share the pwritev below and get
    // their own responses after the primary one.
    std::vector<std::pair<PendingReq, Off>> agg;
    bool failed = false;
    try {
      switch (op) {
        case wire::Op::Read: {
          const Off off = rd.i64();
          const Off len = rd.i64();
          LLIO_REQUIRE(off >= 0 && len >= 0, Errc::Protocol,
                       "psrv: bad read extent");
          resp = wire::ok_response(len, len);
          const std::size_t at = resp.size();
          resp.resize(at + to_size(len));
          pfs::IoVec one{off, ByteSpan(resp.data() + at, to_size(len))};
          shard.preadv(std::span<const pfs::IoVec>(&one, 1));
          resp_cls = sim::MsgClass::Data;
          st.contig_ops.fetch_add(1, std::memory_order_relaxed);
          st.contig_bytes.fetch_add(static_cast<std::uint64_t>(len),
                                    std::memory_order_relaxed);
          break;
        }
        case wire::Op::Write: {
          const Off off = rd.i64();
          const ConstByteSpan data = rd.rest();
          // Cross-session write aggregation: pull file-adjacent queued
          // writes (lane fronts only — preserves per-endpoint response
          // order) into this shard access.
          Off chain_end = off + to_off(data.size());
          while (static_cast<int>(agg.size()) + 1 < cfg_.agg_max) {
            auto stolen = sched.steal_front([&](const PendingReq& p) {
              wire::Reader prd(p.msg);
              if (static_cast<wire::Op>(prd.u8()) != wire::Op::Write)
                return false;
              const std::int64_t psess = prd.i64();
              const Off poff = prd.i64();
              if (poff != chain_end) return false;
              const Off plen = prd.remaining();
              return plen > 0 &&
                     leases
                         .conflicts(psess, /*writing=*/true, dom.lo + poff,
                                    dom.lo + poff + plen, now())
                         .empty();
            });
            if (!stolen) break;
            wire::Reader prd(stolen->msg);
            prd.u8();
            prd.i64();
            const Off poff = prd.i64();
            const Off plen = prd.remaining();
            chain_end = poff + plen;
            agg.emplace_back(std::move(*stolen), plen);
          }
          // File-adjacent by construction, but each payload lives in its
          // own message buffer: one iovec per request.
          std::vector<pfs::ConstIoVec> iov;
          iov.reserve(agg.size() + 1);
          iov.push_back({off, data});
          for (const auto& [ar, alen] : agg) {
            wire::Reader prd(ar.msg);
            prd.u8();
            prd.i64();
            const Off poff = prd.i64();
            iov.push_back({poff, prd.rest()});
          }
          shard.pwritev(iov);
          resp = wire::ok_response(to_off(data.size()));
          st.contig_ops.fetch_add(1, std::memory_order_relaxed);
          st.contig_bytes.fetch_add(data.size(), std::memory_order_relaxed);
          break;
        }
        case wire::Op::ReadList: {
          const Off nextents = rd.i64();
          std::vector<pfs::IoVec> iov;
          std::vector<std::pair<Off, Off>> extents;  // (local, len)
          extents.reserve(to_size(nextents));
          Off total = 0;
          total = replay_extents(rd, nextents,
                                 [&](Off off, Off len, Off /*pay*/) {
                                   extents.emplace_back(off, len);
                                 });
          resp = wire::ok_response(total, total);
          const std::size_t at = resp.size();
          resp.resize(at + to_size(total));
          Byte* payload = resp.data() + at;
          Off pay = 0;
          for (const auto& [off, len] : extents) {
            if (!iov.empty() &&
                iov.back().offset + to_off(iov.back().buf.size()) == off) {
              iov.back().buf =
                  ByteSpan(iov.back().buf.data(),
                           iov.back().buf.size() + to_size(len));
              st.batched_extents.fetch_add(1, std::memory_order_relaxed);
            } else {
              iov.push_back({off, ByteSpan(payload + pay, to_size(len))});
            }
            pay += len;
          }
          shard.preadv(iov);
          resp_cls = sim::MsgClass::Data;
          st.list_ops.fetch_add(1, std::memory_order_relaxed);
          st.list_extents.fetch_add(static_cast<std::uint64_t>(nextents),
                                    std::memory_order_relaxed);
          st.list_bytes.fetch_add(static_cast<std::uint64_t>(total),
                                  std::memory_order_relaxed);
          break;
        }
        case wire::Op::WriteList: {
          const Off nextents = rd.i64();
          std::vector<std::pair<Off, Off>> extents;
          extents.reserve(to_size(nextents));
          const Off total = replay_extents(
              rd, nextents, [&](Off off, Off len, Off /*pay*/) {
                extents.emplace_back(off, len);
              });
          const ConstByteSpan payload = rd.rest();
          LLIO_REQUIRE(to_off(payload.size()) == total, Errc::Protocol,
                       "psrv: list payload size mismatch");
          std::vector<pfs::ConstIoVec> iov;
          Off pay = 0;
          for (const auto& [off, len] : extents) {
            if (!iov.empty() &&
                iov.back().offset + to_off(iov.back().buf.size()) == off) {
              iov.back().buf =
                  ConstByteSpan(iov.back().buf.data(),
                                iov.back().buf.size() + to_size(len));
              st.batched_extents.fetch_add(1, std::memory_order_relaxed);
            } else {
              iov.push_back(
                  {off, ConstByteSpan(payload.data() + pay, to_size(len))});
            }
            pay += len;
          }
          shard.pwritev(iov);
          resp = wire::ok_response(total);
          st.list_ops.fetch_add(1, std::memory_order_relaxed);
          st.list_extents.fetch_add(static_cast<std::uint64_t>(nextents),
                                    std::memory_order_relaxed);
          st.list_bytes.fetch_add(static_cast<std::uint64_t>(total),
                                  std::memory_order_relaxed);
          break;
        }
        case wire::Op::ReadView:
        case wire::Op::WriteView: {
          const bool writing = op == wire::Op::WriteView;
          const std::int64_t view_id = rd.i64();
          const Off disp = rd.i64();
          const Off stream_lo = rd.i64();
          const Off len = writing ? -1 : rd.i64();
          const Off tree_len = rd.i64();
          const ConstByteSpan tree = rd.bytes(tree_len);
          const ConstByteSpan payload = writing ? rd.rest() : ConstByteSpan{};
          const Off n = writing ? to_off(payload.size()) : len;
          LLIO_REQUIRE(n >= 0 && stream_lo >= 0, Errc::Protocol,
                       "psrv: bad view request");

          auto it = views.find(view_id);
          if (it == views.end()) {
            if (tree_len == 0) {
              // Evicted (or never installed) — client retries with tree.
              resp.clear();
              wire::put_u8(resp, static_cast<std::uint8_t>(
                                     wire::Status::UnknownView));
              st.view_misses.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            if (to_off(views.size()) >= Off{cfg_.view_cache_cap}) {
              auto victim = views.begin();
              for (auto v = views.begin(); v != views.end(); ++v)
                if (v->second.last_use < victim->second.last_use) victim = v;
              views.erase(victim);
              st.view_evictions.fetch_add(1, std::memory_order_relaxed);
            }
            dt::Type ft = dt::deserialize(tree);
            auto nav = std::make_unique<core::ListlessNav>(ft);
            it = views
                     .emplace(view_id,
                              ViewEntry{std::move(ft), std::move(nav), 0})
                     .first;
            st.view_installs.fetch_add(1, std::memory_order_relaxed);
          }
          it->second.last_use = ++use_tick;
          core::ListlessNav& nav = *it->second.nav;

          if (writing) {
            std::vector<pfs::ConstIoVec> iov;
            Off segments = 0;
            nav.for_each_segment(
                stream_lo, n, [&](Off mem, Off s, Off seglen) {
                  const Off file = disp + mem;
                  LLIO_REQUIRE(file >= dom.lo && file + seglen <= dom.hi,
                               Errc::Protocol,
                               "psrv: view segment outside shard");
                  const Off local = file - dom.lo;
                  const Byte* p = payload.data() + (s - stream_lo);
                  ++segments;
                  if (!iov.empty() &&
                      iov.back().offset + to_off(iov.back().buf.size()) ==
                          local &&
                      iov.back().buf.data() + iov.back().buf.size() == p) {
                    iov.back().buf = ConstByteSpan(
                        iov.back().buf.data(),
                        iov.back().buf.size() + to_size(seglen));
                    st.batched_extents.fetch_add(1,
                                                 std::memory_order_relaxed);
                  } else {
                    iov.push_back({local, ConstByteSpan(p, to_size(seglen))});
                  }
                });
            shard.pwritev(iov);
            resp = wire::ok_response(n);
            st.view_segments.fetch_add(
                static_cast<std::uint64_t>(segments),
                std::memory_order_relaxed);
          } else {
            resp = wire::ok_response(n, n);
            const std::size_t at = resp.size();
            resp.resize(at + to_size(n));
            Byte* out = resp.data() + at;
            std::vector<pfs::IoVec> iov;
            Off segments = 0;
            nav.for_each_segment(
                stream_lo, n, [&](Off mem, Off s, Off seglen) {
                  const Off file = disp + mem;
                  LLIO_REQUIRE(file >= dom.lo && file + seglen <= dom.hi,
                               Errc::Protocol,
                               "psrv: view segment outside shard");
                  const Off local = file - dom.lo;
                  Byte* p = out + (s - stream_lo);
                  ++segments;
                  if (!iov.empty() &&
                      iov.back().offset + to_off(iov.back().buf.size()) ==
                          local &&
                      iov.back().buf.data() + iov.back().buf.size() == p) {
                    iov.back().buf =
                        ByteSpan(iov.back().buf.data(),
                                 iov.back().buf.size() + to_size(seglen));
                    st.batched_extents.fetch_add(1,
                                                 std::memory_order_relaxed);
                  } else {
                    iov.push_back({local, ByteSpan(p, to_size(seglen))});
                  }
                });
            shard.preadv(iov);
            resp_cls = sim::MsgClass::Data;
            st.view_segments.fetch_add(
                static_cast<std::uint64_t>(segments),
                std::memory_order_relaxed);
          }
          st.view_ops.fetch_add(1, std::memory_order_relaxed);
          st.view_bytes.fetch_add(static_cast<std::uint64_t>(n),
                                  std::memory_order_relaxed);
          break;
        }
        case wire::Op::Resize: {
          const Off new_size = rd.i64();
          LLIO_REQUIRE(new_size >= 0, Errc::Protocol,
                       "psrv: negative resize");
          const Off local =
              std::clamp<Off>(new_size - dom.lo, 0, dom.hi - dom.lo);
          if (!dom.empty()) shard.resize(local);
          resp = wire::ok_response(0);
          st.admin_ops.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        case wire::Op::Sync: {
          shard.sync();
          resp = wire::ok_response(0);
          st.admin_ops.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        case wire::Op::OpenSession: {
          const std::int64_t weight = rd.i64();
          const std::int64_t cb = rd.i64();
          const std::int64_t term = rd.i64();
          SessionInfo si;
          si.weight = std::max<std::int64_t>(1, weight);
          si.callback_slot = static_cast<int>(cb);
          si.lease_term = term > 0 ? term : cfg_.lease_term;
          sessions[session] = si;
          sched.set_weight(session, si.weight);
          resp = wire::ok_response(0);
          st.session_ops.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        case wire::Op::CloseSession: {
          leases.drop_session(session);
          sched.drop_session(session);
          sessions.erase(session);
          resp = wire::ok_response(0);
          st.session_ops.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        case wire::Op::LeaseAcquire: {
          const auto mode = static_cast<lease::Mode>(rd.u8());
          const Off lo = rd.i64();
          const Off hi = rd.i64();
          LLIO_REQUIRE(lo >= 0 && hi >= lo, Errc::Protocol,
                       "psrv: bad lease range");
          const auto sit = sessions.find(session);
          const std::int64_t term = sit != sessions.end()
                                        ? sit->second.lease_term
                                        : cfg_.lease_term;
          const lease::LeaseTable::Grant g = leases.acquire(
              alloc_lease_id(), session, mode, lo, hi, now(), term);
          if (!g.granted) send_recalls(g.recalled);
          resp = wire::ok_response(0);
          wire::put_u8(resp, g.granted ? 1 : 0);
          wire::put_i64(resp, g.lease_id);
          wire::put_i64(resp, g.expiry);
          st.lease_ops.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        case wire::Op::LeaseRelease: {
          leases.release(rd.i64());
          resp = wire::ok_response(0);
          st.lease_ops.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        case wire::Op::WriteBack: {
          const Off nextents = rd.i64();
          std::vector<std::pair<Off, Off>> extents;
          extents.reserve(to_size(nextents));
          const Off total = replay_extents(
              rd, nextents, [&](Off off, Off len, Off /*pay*/) {
                extents.emplace_back(off, len);
              });
          const ConstByteSpan payload = rd.rest();
          LLIO_REQUIRE(to_off(payload.size()) == total, Errc::Protocol,
                       "psrv: write-back payload size mismatch");
          std::vector<pfs::ConstIoVec> iov;
          Off pay = 0;
          Off applied = 0;
          for (const auto& [off, len] : extents) {
            const Off glo = dom.lo + off;
            if (len > 0 && leases.is_fenced(session, glo, glo + len)) {
              // The write lease protecting this extent was force-expired
              // (dead client): the dirty data lost the race and must not
              // land over whatever was served meanwhile.
              st.fenced_drops.fetch_add(1, std::memory_order_relaxed);
            } else if (len > 0) {
              iov.push_back(
                  {off, ConstByteSpan(payload.data() + pay, to_size(len))});
              applied += len;
            }
            pay += len;
          }
          if (!iov.empty()) shard.pwritev(iov);
          resp = wire::ok_response(applied);
          st.writeback_ops.fetch_add(1, std::memory_order_relaxed);
          st.writeback_bytes.fetch_add(static_cast<std::uint64_t>(applied),
                                       std::memory_order_relaxed);
          break;
        }
        default:
          throw_error(Errc::Protocol, "psrv: unknown request op");
      }
    } catch (const Error& e) {
      resp = wire::fail_response(e.code(), e.what());
      resp_cls = sim::MsgClass::Meta;
      failed = true;
    } catch (const std::exception& e) {
      resp = wire::fail_response(Errc::Internal, e.what());
      resp_cls = sim::MsgClass::Meta;
      failed = true;
    }
    w.stop();

    tick();
    respond(r, std::move(resp), resp_cls, w.seconds());
    for (auto& [ar, alen] : agg) {
      tick();
      if (!failed) {
        st.contig_ops.fetch_add(1, std::memory_order_relaxed);
        st.contig_bytes.fetch_add(static_cast<std::uint64_t>(alen),
                                  std::memory_order_relaxed);
        st.agg_writes.fetch_add(1, std::memory_order_relaxed);
      }
      ByteVec aresp = failed ? wire::fail_response(Errc::Io,
                                                   "psrv: aggregated write "
                                                   "failed with its batch")
                             : wire::ok_response(alen);
      respond(ar, std::move(aresp), sim::MsgClass::Meta, 0.0);
    }
  };

  // Serve, or park on a lease conflict (recalling the leases in the way).
  // Returns true when the request was served (or failed) — i.e. answered.
  const auto try_serve = [&](PendingReq& r) -> bool {
    wire::Reader rd(r.msg);
    const auto op = static_cast<wire::Op>(rd.u8());
    const std::int64_t session = rd.i64();
    if (touches_leases(op)) {
      std::vector<std::int64_t> blockers;
      try {
        blockers = collect_blockers(op, rd, session);
      } catch (...) {
        // Malformed message: let serve_request produce the Fail response.
      }
      if (!blockers.empty()) {
        send_recalls(leases.mark_recalled(blockers, now()));
        return false;
      }
    }
    serve_request(std::move(r));
    return true;
  };

  try {
    while (!stopping) {
      // Drain everything already delivered, then schedule.
      while (auto m = comm.try_recv_any(wire::kTagRequest)) {
        ingest(m->first, std::move(m->second));
        if (stopping) break;
      }
      if (stopping) break;

      leases.sweep(now());
      if (!parked.empty() && leases.version() != parked_seen) {
        parked_seen = leases.version();
        for (auto it = parked.begin(); it != parked.end();) {
          if (try_serve(*it)) {
            const std::int64_t s = it->session;
            it = parked.erase(it);
            bool more = false;
            for (const auto& p : parked) more = more || p.session == s;
            if (!more) sched.unblock(s);
          } else {
            ++it;
          }
        }
      }

      std::optional<PendingReq> r = sched.pop(now());
      st.escalations.store(sched.escalations(), std::memory_order_relaxed);
      if (!r) {
        if (parked.empty() && sched.empty()) {
          auto [src, msg] = comm.recv_any(wire::kTagRequest);
          ingest(src, std::move(msg));
          continue;
        }
        // Parked work (or every lane blocked behind it): wait briefly for
        // the releases/flushes to arrive; if nothing comes, the holders
        // are gone — jump the sim clock to the recall deadline so the
        // sweep can force-expire them.
        auto m = comm.recv_any_for(wire::kTagRequest, kStallWait);
        if (m) {
          ingest(m->first, std::move(m->second));
          continue;
        }
        const std::int64_t dl = leases.earliest_recall_deadline();
        if (dl != lease::kNever && dl > now()) advance_to(dl);
        continue;
      }
      if (!try_serve(*r)) {
        sched.block(r->session);
        st.parked.fetch_add(1, std::memory_order_relaxed);
        parked.push_back(std::move(*r));
      }
    }
  } catch (...) {
    // Transport failure or an unservable request: take the whole domain
    // down so clients get Errc::Protocol instead of hanging.
    world_->abort();
  }
}

}  // namespace llio::psrv
