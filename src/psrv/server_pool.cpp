#include "psrv/server_pool.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <string>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/timer.hpp"
#include "core/listless_nav.hpp"
#include "dtype/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pfs/mem_file.hpp"
#include "psrv/wire.hpp"

namespace llio::psrv {

namespace {
// Server threads get their own trace tracks, away from the rank pids.
constexpr int kServerTrackPid = 1000;
}  // namespace

ServerStats& ServerStats::operator+=(const ServerStats& o) {
  requests += o.requests;
  contig_ops += o.contig_ops;
  list_ops += o.list_ops;
  view_ops += o.view_ops;
  admin_ops += o.admin_ops;
  bytes_in += o.bytes_in;
  bytes_out += o.bytes_out;
  contig_bytes += o.contig_bytes;
  list_bytes += o.list_bytes;
  view_bytes += o.view_bytes;
  list_extents += o.list_extents;
  view_segments += o.view_segments;
  batched_extents += o.batched_extents;
  view_installs += o.view_installs;
  view_evictions += o.view_evictions;
  view_misses += o.view_misses;
  max_queue_depth = std::max(max_queue_depth, o.max_queue_depth);
  service_s += o.service_s;
  return *this;
}

struct ServerPool::AtomicServerStats {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> contig_ops{0}, list_ops{0}, view_ops{0},
      admin_ops{0};
  std::atomic<std::uint64_t> bytes_in{0}, bytes_out{0};
  std::atomic<std::uint64_t> contig_bytes{0}, list_bytes{0}, view_bytes{0};
  std::atomic<std::uint64_t> list_extents{0}, view_segments{0},
      batched_extents{0};
  std::atomic<std::uint64_t> view_installs{0}, view_evictions{0},
      view_misses{0};
  std::atomic<std::uint64_t> max_queue_depth{0};
  std::atomic<std::uint64_t> service_ns{0};

  ServerStats snapshot() const {
    ServerStats s;
    s.requests = requests.load(std::memory_order_relaxed);
    s.contig_ops = contig_ops.load(std::memory_order_relaxed);
    s.list_ops = list_ops.load(std::memory_order_relaxed);
    s.view_ops = view_ops.load(std::memory_order_relaxed);
    s.admin_ops = admin_ops.load(std::memory_order_relaxed);
    s.bytes_in = bytes_in.load(std::memory_order_relaxed);
    s.bytes_out = bytes_out.load(std::memory_order_relaxed);
    s.contig_bytes = contig_bytes.load(std::memory_order_relaxed);
    s.list_bytes = list_bytes.load(std::memory_order_relaxed);
    s.view_bytes = view_bytes.load(std::memory_order_relaxed);
    s.list_extents = list_extents.load(std::memory_order_relaxed);
    s.view_segments = view_segments.load(std::memory_order_relaxed);
    s.batched_extents = batched_extents.load(std::memory_order_relaxed);
    s.view_installs = view_installs.load(std::memory_order_relaxed);
    s.view_evictions = view_evictions.load(std::memory_order_relaxed);
    s.view_misses = view_misses.load(std::memory_order_relaxed);
    s.max_queue_depth = max_queue_depth.load(std::memory_order_relaxed);
    s.service_s =
        static_cast<double>(service_ns.load(std::memory_order_relaxed)) / 1e9;
    return s;
  }
};

struct ServerPool::CreditState {
  std::mutex mu;
  std::condition_variable cv;
  int avail = 0;
  int inflight = 0;
};

std::shared_ptr<ServerPool> ServerPool::create(PoolConfig cfg) {
  return std::shared_ptr<ServerPool>(new ServerPool(std::move(cfg)));
}

ServerPool::ServerPool(PoolConfig cfg) : cfg_(std::move(cfg)) {
  LLIO_REQUIRE(cfg_.nservers >= 1, Errc::InvalidArgument,
               "psrv: nservers < 1");
  LLIO_REQUIRE(cfg_.stripe >= 1 && cfg_.capacity >= 1, Errc::InvalidArgument,
               "psrv: non-positive stripe/capacity");
  LLIO_REQUIRE(cfg_.queue_depth >= 1, Errc::InvalidArgument,
               "psrv: queue_depth < 1");
  LLIO_REQUIRE(cfg_.client_slots >= 1, Errc::InvalidArgument,
               "psrv: client_slots < 1");
  LLIO_REQUIRE(cfg_.view_cache_cap >= 1, Errc::InvalidArgument,
               "psrv: view_cache_cap < 1");

  domains_ = mpiio::partition_domains({0, cfg_.capacity, /*any=*/true},
                                      cfg_.nservers, cfg_.stripe);
  // Open-ended last domain: every offset (even beyond `capacity`) has an
  // owner.  partition_domains guarantees only trailing domains are empty.
  for (auto it = domains_.rbegin(); it != domains_.rend(); ++it) {
    if (!it->empty()) {
      it->hi = kOpenEnd;
      break;
    }
  }

  world_ = std::make_unique<sim::World>(cfg_.nservers + cfg_.client_slots,
                                        cfg_.net);
  shards_.reserve(to_size(Off{cfg_.nservers}));
  for (int s = 0; s < cfg_.nservers; ++s) {
    shards_.push_back(cfg_.make_shard ? cfg_.make_shard(s)
                                      : pfs::MemFile::create());
    LLIO_REQUIRE(shards_.back() != nullptr, Errc::InvalidArgument,
                 "psrv: make_shard returned null");
    stats_.push_back(std::make_unique<AtomicServerStats>());
    auto credit = std::make_unique<CreditState>();
    credit->avail = cfg_.queue_depth;
    credits_.push_back(std::move(credit));
  }
  free_slots_.reserve(to_size(Off{cfg_.client_slots}));
  for (int c = cfg_.client_slots - 1; c >= 0; --c)
    free_slots_.push_back(cfg_.nservers + c);

  threads_.reserve(to_size(Off{cfg_.nservers}));
  for (int s = 0; s < cfg_.nservers; ++s)
    threads_.emplace_back([this, s] { serve(s); });
}

ServerPool::~ServerPool() {
  try {
    Endpoint ep = checkout();
    ByteVec stop;
    wire::put_u8(stop, static_cast<std::uint8_t>(wire::Op::Stop));
    for (int s = 0; s < cfg_.nservers; ++s)
      ep.comm().send(s, wire::kTagRequest, ConstByteSpan(stop),
                     sim::MsgClass::Meta);
  } catch (...) {
    // A dead world (earlier server failure) still needs the join below.
    world_->abort();
  }
  for (auto& t : threads_) t.join();
}

int ServerPool::owner(Off off) const {
  LLIO_REQUIRE(off >= 0, Errc::InvalidArgument, "psrv: negative offset");
  for (std::size_t s = 0; s < domains_.size(); ++s) {
    const mpiio::Domain& d = domains_[s];
    if (!d.empty() && off >= d.lo && off < d.hi) return static_cast<int>(s);
  }
  throw_error(Errc::Internal, "psrv: offset has no owning server");
}

const pfs::FilePtr& ServerPool::shard(int s) const {
  LLIO_REQUIRE(s >= 0 && s < cfg_.nservers, Errc::InvalidArgument,
               "psrv: bad server index");
  return shards_[to_size(Off{s})];
}

void ServerPool::grow_size(Off hi) {
  Off cur = size_.load(std::memory_order_relaxed);
  while (hi > cur &&
         !size_.compare_exchange_weak(cur, hi, std::memory_order_acq_rel)) {
  }
}

ServerStats ServerPool::server_stats(int s) const {
  LLIO_REQUIRE(s >= 0 && s < cfg_.nservers, Errc::InvalidArgument,
               "psrv: bad server index");
  return stats_[to_size(Off{s})]->snapshot();
}

ServerStats ServerPool::total_server_stats() const {
  ServerStats total;
  for (int s = 0; s < cfg_.nservers; ++s) total += server_stats(s);
  return total;
}

ServerPool::Endpoint::~Endpoint() {
  if (pool_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(pool_->ep_mu_);
    pool_->free_slots_.push_back(slot_);
  }
  pool_->ep_cv_.notify_one();
}

ServerPool::Endpoint ServerPool::checkout() {
  std::unique_lock<std::mutex> lock(ep_mu_);
  ep_cv_.wait(lock, [&] { return !free_slots_.empty(); });
  const int slot = free_slots_.back();
  free_slots_.pop_back();
  lock.unlock();
  return Endpoint(this, slot, world_->comm(slot));
}

void ServerPool::Credit::release() {
  if (pool_ == nullptr) return;
  CreditState& cs = *pool_->credits_[to_size(Off{server_})];
  {
    std::lock_guard<std::mutex> lock(cs.mu);
    ++cs.avail;
    --cs.inflight;
  }
  cs.cv.notify_one();
  pool_ = nullptr;
}

ServerPool::Credit ServerPool::acquire_credit(int s) {
  LLIO_REQUIRE(s >= 0 && s < cfg_.nservers, Errc::InvalidArgument,
               "psrv: bad server index");
  CreditState& cs = *credits_[to_size(Off{s})];
  int depth = 0;
  {
    std::unique_lock<std::mutex> lock(cs.mu);
    cs.cv.wait(lock, [&] { return cs.avail > 0; });
    --cs.avail;
    depth = ++cs.inflight;
  }
  AtomicServerStats& st = *stats_[to_size(Off{s})];
  std::uint64_t hwm = st.max_queue_depth.load(std::memory_order_relaxed);
  while (static_cast<std::uint64_t>(depth) > hwm &&
         !st.max_queue_depth.compare_exchange_weak(
             hwm, static_cast<std::uint64_t>(depth),
             std::memory_order_relaxed)) {
  }
  if (obs::metrics_enabled())
    obs::Registry::instance()
        .histogram(strprintf("psrv.s%d.queue_depth", s))
        .record(depth);
  return Credit(this, s);
}

std::optional<ServerPool::Credit> ServerPool::try_acquire_credit(int s) {
  LLIO_REQUIRE(s >= 0 && s < cfg_.nservers, Errc::InvalidArgument,
               "psrv: bad server index");
  CreditState& cs = *credits_[to_size(Off{s})];
  int depth = 0;
  {
    std::lock_guard<std::mutex> lock(cs.mu);
    if (cs.avail <= 0) return std::nullopt;
    --cs.avail;
    depth = ++cs.inflight;
  }
  AtomicServerStats& st = *stats_[to_size(Off{s})];
  std::uint64_t hwm = st.max_queue_depth.load(std::memory_order_relaxed);
  while (static_cast<std::uint64_t>(depth) > hwm &&
         !st.max_queue_depth.compare_exchange_weak(
             hwm, static_cast<std::uint64_t>(depth),
             std::memory_order_relaxed)) {
  }
  if (obs::metrics_enabled())
    obs::Registry::instance()
        .histogram(strprintf("psrv.s%d.queue_depth", s))
        .record(depth);
  return Credit(this, s);
}

// ---- server side ---------------------------------------------------------

namespace {

/// Per-server fileview cache entry: the deserialized tree plus a listless
/// navigator over it (stateful cursor — fine, the server is one thread).
struct ViewEntry {
  dt::Type ft;
  std::unique_ptr<core::ListlessNav> nav;
  std::uint64_t last_use = 0;
};

using ViewCache = std::map<std::int64_t, ViewEntry>;

}  // namespace

void ServerPool::serve(int idx) {
  const obs::ThreadTrackGuard track(kServerTrackPid + idx, 0,
                                    "psrv server " + std::to_string(idx),
                                    "io");
  sim::Comm comm = world_->comm(idx);
  pfs::FileBackend& shard = *shards_[to_size(Off{idx})];
  const mpiio::Domain dom = domains_[to_size(Off{idx})];
  AtomicServerStats& st = *stats_[to_size(Off{idx})];
  obs::Histogram* service_hist =
      obs::metrics_enabled()
          ? &obs::Registry::instance().histogram(
                strprintf("psrv.s%d.service_us", idx))
          : nullptr;

  ViewCache views;
  std::uint64_t use_tick = 0;

  // Replay an ol-list against the shard: adjacent extents (file-adjacent
  // AND payload-adjacent, which replay order guarantees) batch into one
  // vectored access.
  const auto replay_extents =
      [&](wire::Reader& rd, Off nextents,
          const std::function<void(Off local_off, Off len, Off payload_off)>&
              emit) -> Off {
    Off payload_off = 0;
    for (Off i = 0; i < nextents; ++i) {
      const Off off = rd.i64();
      const Off len = rd.i64();
      LLIO_REQUIRE(off >= 0 && len >= 0, Errc::Protocol,
                   "psrv: negative list extent");
      emit(off, len, payload_off);
      payload_off += len;
    }
    return payload_off;
  };

  try {
    for (;;) {
      auto [src, req] = comm.recv_any(wire::kTagRequest);
      wire::Reader rd(req);
      const auto op = static_cast<wire::Op>(rd.u8());
      if (op == wire::Op::Stop) break;

      StopWatch w;
      w.start();
      ByteVec resp;
      sim::MsgClass resp_cls = sim::MsgClass::Meta;
      try {
        switch (op) {
          case wire::Op::Read: {
            const Off off = rd.i64();
            const Off len = rd.i64();
            LLIO_REQUIRE(off >= 0 && len >= 0, Errc::Protocol,
                         "psrv: bad read extent");
            resp = wire::ok_response(len, len);
            const std::size_t at = resp.size();
            resp.resize(at + to_size(len));
            pfs::IoVec one{off, ByteSpan(resp.data() + at, to_size(len))};
            shard.preadv(std::span<const pfs::IoVec>(&one, 1));
            resp_cls = sim::MsgClass::Data;
            st.contig_ops.fetch_add(1, std::memory_order_relaxed);
            st.contig_bytes.fetch_add(static_cast<std::uint64_t>(len),
                                      std::memory_order_relaxed);
            break;
          }
          case wire::Op::Write: {
            const Off off = rd.i64();
            const ConstByteSpan data = rd.rest();
            shard.pwrite(off, data);
            resp = wire::ok_response(to_off(data.size()));
            st.contig_ops.fetch_add(1, std::memory_order_relaxed);
            st.contig_bytes.fetch_add(data.size(),
                                      std::memory_order_relaxed);
            break;
          }
          case wire::Op::ReadList: {
            const Off nextents = rd.i64();
            std::vector<pfs::IoVec> iov;
            std::vector<std::pair<Off, Off>> extents;  // (local, len)
            extents.reserve(to_size(nextents));
            Off total = 0;
            total = replay_extents(rd, nextents,
                                   [&](Off off, Off len, Off /*pay*/) {
                                     extents.emplace_back(off, len);
                                   });
            resp = wire::ok_response(total, total);
            const std::size_t at = resp.size();
            resp.resize(at + to_size(total));
            Byte* payload = resp.data() + at;
            Off pay = 0;
            for (const auto& [off, len] : extents) {
              if (!iov.empty() &&
                  iov.back().offset + to_off(iov.back().buf.size()) == off) {
                iov.back().buf =
                    ByteSpan(iov.back().buf.data(),
                             iov.back().buf.size() + to_size(len));
                st.batched_extents.fetch_add(1, std::memory_order_relaxed);
              } else {
                iov.push_back({off, ByteSpan(payload + pay, to_size(len))});
              }
              pay += len;
            }
            shard.preadv(iov);
            resp_cls = sim::MsgClass::Data;
            st.list_ops.fetch_add(1, std::memory_order_relaxed);
            st.list_extents.fetch_add(static_cast<std::uint64_t>(nextents),
                                      std::memory_order_relaxed);
            st.list_bytes.fetch_add(static_cast<std::uint64_t>(total),
                                    std::memory_order_relaxed);
            break;
          }
          case wire::Op::WriteList: {
            const Off nextents = rd.i64();
            std::vector<std::pair<Off, Off>> extents;
            extents.reserve(to_size(nextents));
            const Off total = replay_extents(
                rd, nextents, [&](Off off, Off len, Off /*pay*/) {
                  extents.emplace_back(off, len);
                });
            const ConstByteSpan payload = rd.rest();
            LLIO_REQUIRE(to_off(payload.size()) == total, Errc::Protocol,
                         "psrv: list payload size mismatch");
            std::vector<pfs::ConstIoVec> iov;
            Off pay = 0;
            for (const auto& [off, len] : extents) {
              if (!iov.empty() &&
                  iov.back().offset + to_off(iov.back().buf.size()) == off) {
                iov.back().buf =
                    ConstByteSpan(iov.back().buf.data(),
                                  iov.back().buf.size() + to_size(len));
                st.batched_extents.fetch_add(1, std::memory_order_relaxed);
              } else {
                iov.push_back(
                    {off, ConstByteSpan(payload.data() + pay, to_size(len))});
              }
              pay += len;
            }
            shard.pwritev(iov);
            resp = wire::ok_response(total);
            st.list_ops.fetch_add(1, std::memory_order_relaxed);
            st.list_extents.fetch_add(static_cast<std::uint64_t>(nextents),
                                      std::memory_order_relaxed);
            st.list_bytes.fetch_add(static_cast<std::uint64_t>(total),
                                    std::memory_order_relaxed);
            break;
          }
          case wire::Op::ReadView:
          case wire::Op::WriteView: {
            const bool writing = op == wire::Op::WriteView;
            const std::int64_t view_id = rd.i64();
            const Off disp = rd.i64();
            const Off stream_lo = rd.i64();
            const Off len = writing ? -1 : rd.i64();
            const Off tree_len = rd.i64();
            const ConstByteSpan tree = rd.bytes(tree_len);
            const ConstByteSpan payload = writing ? rd.rest() : ConstByteSpan{};
            const Off n = writing ? to_off(payload.size()) : len;
            LLIO_REQUIRE(n >= 0 && stream_lo >= 0, Errc::Protocol,
                         "psrv: bad view request");

            auto it = views.find(view_id);
            if (it == views.end()) {
              if (tree_len == 0) {
                // Evicted (or never installed) — client retries with tree.
                resp.clear();
                wire::put_u8(resp, static_cast<std::uint8_t>(
                                       wire::Status::UnknownView));
                st.view_misses.fetch_add(1, std::memory_order_relaxed);
                break;
              }
              if (to_off(views.size()) >= Off{cfg_.view_cache_cap}) {
                auto victim = views.begin();
                for (auto v = views.begin(); v != views.end(); ++v)
                  if (v->second.last_use < victim->second.last_use) victim = v;
                views.erase(victim);
                st.view_evictions.fetch_add(1, std::memory_order_relaxed);
              }
              dt::Type ft = dt::deserialize(tree);
              auto nav = std::make_unique<core::ListlessNav>(ft);
              it = views
                       .emplace(view_id,
                                ViewEntry{std::move(ft), std::move(nav), 0})
                       .first;
              st.view_installs.fetch_add(1, std::memory_order_relaxed);
            }
            it->second.last_use = ++use_tick;
            core::ListlessNav& nav = *it->second.nav;

            if (writing) {
              std::vector<pfs::ConstIoVec> iov;
              Off segments = 0;
              nav.for_each_segment(
                  stream_lo, n, [&](Off mem, Off s, Off seglen) {
                    const Off file = disp + mem;
                    LLIO_REQUIRE(file >= dom.lo && file + seglen <= dom.hi,
                                 Errc::Protocol,
                                 "psrv: view segment outside shard");
                    const Off local = file - dom.lo;
                    const Byte* p = payload.data() + (s - stream_lo);
                    ++segments;
                    if (!iov.empty() &&
                        iov.back().offset + to_off(iov.back().buf.size()) ==
                            local &&
                        iov.back().buf.data() + iov.back().buf.size() == p) {
                      iov.back().buf = ConstByteSpan(
                          iov.back().buf.data(),
                          iov.back().buf.size() + to_size(seglen));
                      st.batched_extents.fetch_add(1,
                                                   std::memory_order_relaxed);
                    } else {
                      iov.push_back({local, ConstByteSpan(p, to_size(seglen))});
                    }
                  });
              shard.pwritev(iov);
              resp = wire::ok_response(n);
              st.view_segments.fetch_add(
                  static_cast<std::uint64_t>(segments),
                  std::memory_order_relaxed);
            } else {
              resp = wire::ok_response(n, n);
              const std::size_t at = resp.size();
              resp.resize(at + to_size(n));
              Byte* out = resp.data() + at;
              std::vector<pfs::IoVec> iov;
              Off segments = 0;
              nav.for_each_segment(
                  stream_lo, n, [&](Off mem, Off s, Off seglen) {
                    const Off file = disp + mem;
                    LLIO_REQUIRE(file >= dom.lo && file + seglen <= dom.hi,
                                 Errc::Protocol,
                                 "psrv: view segment outside shard");
                    const Off local = file - dom.lo;
                    Byte* p = out + (s - stream_lo);
                    ++segments;
                    if (!iov.empty() &&
                        iov.back().offset + to_off(iov.back().buf.size()) ==
                            local &&
                        iov.back().buf.data() + iov.back().buf.size() == p) {
                      iov.back().buf =
                          ByteSpan(iov.back().buf.data(),
                                   iov.back().buf.size() + to_size(seglen));
                      st.batched_extents.fetch_add(1,
                                                   std::memory_order_relaxed);
                    } else {
                      iov.push_back({local, ByteSpan(p, to_size(seglen))});
                    }
                  });
              shard.preadv(iov);
              resp_cls = sim::MsgClass::Data;
              st.view_segments.fetch_add(
                  static_cast<std::uint64_t>(segments),
                  std::memory_order_relaxed);
            }
            st.view_ops.fetch_add(1, std::memory_order_relaxed);
            st.view_bytes.fetch_add(static_cast<std::uint64_t>(n),
                                    std::memory_order_relaxed);
            break;
          }
          case wire::Op::Resize: {
            const Off new_size = rd.i64();
            LLIO_REQUIRE(new_size >= 0, Errc::Protocol,
                         "psrv: negative resize");
            const Off local =
                std::clamp<Off>(new_size - dom.lo, 0,
                                dom.hi - dom.lo);
            if (!dom.empty()) shard.resize(local);
            resp = wire::ok_response(0);
            st.admin_ops.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          case wire::Op::Sync: {
            shard.sync();
            resp = wire::ok_response(0);
            st.admin_ops.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          default:
            throw_error(Errc::Protocol, "psrv: unknown request op");
        }
      } catch (const Error& e) {
        resp = wire::fail_response(e.code(), e.what());
        resp_cls = sim::MsgClass::Meta;
      } catch (const std::exception& e) {
        resp = wire::fail_response(Errc::Internal, e.what());
        resp_cls = sim::MsgClass::Meta;
      }
      w.stop();

      st.requests.fetch_add(1, std::memory_order_relaxed);
      st.bytes_in.fetch_add(req.size(), std::memory_order_relaxed);
      st.bytes_out.fetch_add(resp.size(), std::memory_order_relaxed);
      st.service_ns.fetch_add(
          static_cast<std::uint64_t>(w.seconds() * 1e9),
          std::memory_order_relaxed);
      if (service_hist != nullptr)
        service_hist->record(static_cast<long long>(w.seconds() * 1e6));

      comm.send(src, wire::kTagResponse, std::move(resp), resp_cls);
    }
  } catch (...) {
    // Transport failure or an unservable request: take the whole domain
    // down so clients get Errc::Protocol instead of hanging.
    world_->abort();
  }
}

}  // namespace llio::psrv
