// Parallel file-server pool: N server threads, each owning a shard of one
// logical file (the ViPIOS/PVFS server-process architecture the paper's
// client-side approach is contrasted with).
//
// The file's byte space is partitioned into stripe-aligned contiguous
// domains with mpiio::partition_domains — the same splitter the two-phase
// collective uses for IOP file domains — and each server thread serves
// its domain from a private pfs::FileBackend shard store.  Clients talk
// to servers over a sim::World (buffered message passing with the usual
// CommCostModel wall-time charges), so requests, ol-lists, serialized
// fileview trees and data payloads all pay the interconnect.
//
// Three request classes (see wire.hpp):
//   contig — plain pread/pwrite of one extent per round trip,
//   list   — an ol-list plus its data in one message, replayed against
//            the shard with adjacent extents batched into vectored I/O,
//   view   — the serialized filetype tree plus (disp, stream range); the
//            server navigates it locally with the listless cursor, i.e.
//            listless I/O over the wire (fileview caching of §3.2.3).
//
// Multi-tenancy: every request carries a session id.  Each server thread
// runs a FairScheduler (session.hpp) instead of serving mailbox order —
// express admin lane, deadline escalation, weighted round-robin across
// sessions — plus a LeaseTable (lease.hpp) for client-cache coherence and
// cross-session aggregation of adjacent queued writes.
//
// Flow control is client-side and per (server, session): a session may
// hold at most `queue_depth` credits per server, bounding what any one
// tenant can pile onto a server while others share it.
//
// Sim clock: one pool-wide tick counter, advanced once per served
// request and jumped forward to the earliest recall deadline when a
// server stalls with parked work.  Lease expiry is defined entirely in
// ticks — wall time is used only for liveness waits, never for protocol
// decisions, so coherence outcomes are machine-speed independent.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "mpiio/twophase.hpp"
#include "pfs/file_backend.hpp"
#include "simmpi/comm.hpp"

namespace llio::psrv {

struct PoolConfig {
  int nservers = 4;

  /// Shard-domain alignment (the "stripe"): domain boundaries snap to
  /// multiples of this, like the two-phase file domains snap to the file
  /// buffer size.
  Off stripe = 64 << 10;

  /// Byte space partitioned across the servers.  Offsets beyond it land
  /// on the last (non-empty) server, whose domain is open-ended.
  Off capacity = Off{1} << 30;

  /// Max requests a client may have in flight per server (credit-based).
  int queue_depth = 16;

  /// Concurrent client endpoints (one per in-progress backend operation).
  int client_slots = 16;

  /// Cached fileviews per server before LRU eviction.
  int view_cache_cap = 64;

  /// Recall-callback slots: one per concurrently open *cached* session
  /// (sessions without the client cache never hold leases and need none).
  int session_slots = 8;

  /// Default read-lease lifetime in sim-clock ticks (sessions may ask for
  /// their own term at open).  Generous: the clock ticks once per served
  /// request pool-wide, so heavy cross-traffic ages leases fast.
  std::int64_t lease_term = 1 << 16;

  /// Recall grace in ticks: how long a recalled lease stays valid so a
  /// live client can flush write-back data before it is force-expired.
  /// Sized so concurrent tenants' traffic cannot burn it before a live
  /// flush lands; a dead client costs no extra wall time — a stalled
  /// server jumps the clock straight to the deadline.
  std::int64_t lease_grace = 1024;

  /// Queue-age (in ticks) past which a waiting request escalates into the
  /// deadline lane, bounding worst-case latency for low-weight sessions.
  std::int64_t deadline_ticks = 256;

  /// Max adjacent queued writes coalesced into one shard pwritev
  /// (cross-session write aggregation); 1 disables.
  int agg_max = 8;

  /// Interconnect between clients and servers.
  sim::CommCostModel net;

  /// Name of the interconnect model ("shared-mem", "fast", ...).  Pure
  /// metadata: it becomes the net dimension on obs::Sampler records for
  /// psrv client-side cache hits, which otherwise never touch the wire.
  std::string net_name = "shared-mem";

  /// Shard store factory; default pfs::MemFile.  Wrap in ThrottledFile to
  /// model slow storage behind the servers.
  std::function<pfs::FilePtr(int server)> make_shard;
};

/// Snapshot of one server's service counters.
struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t contig_ops = 0;  ///< Read/Write requests served
  std::uint64_t list_ops = 0;    ///< ReadList/WriteList requests served
  std::uint64_t view_ops = 0;    ///< ReadView/WriteView requests served
  std::uint64_t admin_ops = 0;   ///< Resize/Sync

  std::uint64_t bytes_in = 0;   ///< request message bytes received
  std::uint64_t bytes_out = 0;  ///< response message bytes sent

  /// File payload bytes moved, by request class.
  std::uint64_t contig_bytes = 0;
  std::uint64_t list_bytes = 0;
  std::uint64_t view_bytes = 0;

  std::uint64_t list_extents = 0;    ///< ol-list entries replayed
  std::uint64_t view_segments = 0;   ///< contiguous runs navigated
  std::uint64_t batched_extents = 0; ///< extents merged away by adjacency

  std::uint64_t view_installs = 0;
  std::uint64_t view_evictions = 0;
  std::uint64_t view_misses = 0;  ///< UnknownView responses (client retries)

  // Multi-tenancy (sessions, leases, scheduler).
  std::uint64_t session_ops = 0;      ///< OpenSession/CloseSession
  std::uint64_t lease_ops = 0;        ///< LeaseAcquire/LeaseRelease
  std::uint64_t writeback_ops = 0;    ///< WriteBack requests served
  std::uint64_t writeback_bytes = 0;  ///< write-back payload applied
  std::uint64_t recalls_sent = 0;     ///< recall messages pushed to clients
  std::uint64_t parked = 0;           ///< requests parked on lease conflicts
  std::uint64_t fenced_drops = 0;     ///< write-back extents fenced away
  std::uint64_t agg_writes = 0;       ///< queued writes coalesced by
                                      ///< cross-session aggregation
  std::uint64_t escalations = 0;      ///< deadline-lane promotions

  /// High-water of in-flight requests *per session* (flow control is per
  /// (server, session); the pool-wide queue is sessions x depth deep).
  std::uint64_t max_queue_depth = 0;
  double service_s = 0;     ///< wall time spent serving
  double queue_wait_s = 0;  ///< wall time requests sat queued/parked

  ServerStats& operator+=(const ServerStats& o);
};

class ServerFile;

class ServerPool {
 public:
  static std::shared_ptr<ServerPool> create(PoolConfig cfg = {});
  ~ServerPool();

  ServerPool(const ServerPool&) = delete;
  ServerPool& operator=(const ServerPool&) = delete;

  int nservers() const noexcept { return cfg_.nservers; }
  const PoolConfig& config() const noexcept { return cfg_; }

  /// Swap the client/server interconnect cost model mid-run (see
  /// sim::Comm::set_cost_model); `name` is the new net dimension for
  /// sampler records.  Call with no request in flight.
  void set_net(const sim::CommCostModel& net, const std::string& name);
  std::string net_name() const;

  /// Shard domains, index = server; the last non-empty domain is
  /// open-ended so every file offset has an owner.
  const std::vector<mpiio::Domain>& domains() const noexcept {
    return domains_;
  }

  /// Server owning file byte `off`.
  int owner(Off off) const;

  /// The shard store of server `s` (tests wrap/inspect it).
  const pfs::FilePtr& shard(int s) const;

  /// Logical file size, maintained client-side across all handles.
  Off logical_size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }
  void grow_size(Off hi);  ///< size = max(size, hi)
  void set_size(Off n) { size_.store(n, std::memory_order_release); }

  ServerStats server_stats(int s) const;
  ServerStats total_server_stats() const;

  /// Total traffic in the client/server world (requests + responses).
  /// Only meaningful while no request is in flight.
  sim::CommStats wire_stats() const { return world_->total_stats(); }
  void reset_wire_stats() { world_->reset_stats(); }

  // ---- client plumbing (used by ServerFile) ----------------------------

  /// Exclusive use of one client mailbox slot for a whole round trip (the
  /// per-slot comm statistics and response matching both require it).
  class Endpoint {
   public:
    Endpoint(Endpoint&& o) noexcept
        : pool_(o.pool_), slot_(o.slot_), comm_(std::move(o.comm_)) {
      o.pool_ = nullptr;
    }
    Endpoint(const Endpoint&) = delete;
    Endpoint& operator=(const Endpoint&) = delete;
    Endpoint& operator=(Endpoint&&) = delete;
    ~Endpoint();

    sim::Comm& comm() { return *comm_; }

   private:
    friend class ServerPool;
    Endpoint(ServerPool* pool, int slot, sim::Comm comm)
        : pool_(pool), slot_(slot), comm_(std::move(comm)) {}

    ServerPool* pool_;
    int slot_;
    std::optional<sim::Comm> comm_;
  };

  /// One queue-depth credit for a (server, session) pair, held from send
  /// to response.
  class Credit {
   public:
    Credit(Credit&& o) noexcept
        : pool_(o.pool_), server_(o.server_), session_(o.session_) {
      o.pool_ = nullptr;
    }
    Credit(const Credit&) = delete;
    Credit& operator=(const Credit&) = delete;
    Credit& operator=(Credit&& o) noexcept {
      if (this != &o) {
        release();
        pool_ = o.pool_;
        server_ = o.server_;
        session_ = o.session_;
        o.pool_ = nullptr;
      }
      return *this;
    }
    ~Credit() { release(); }

    void release();

   private:
    friend class ServerPool;
    Credit(ServerPool* pool, int server, std::int64_t session)
        : pool_(pool), server_(server), session_(session) {}

    ServerPool* pool_;
    int server_;
    std::int64_t session_ = 0;
  };

  /// Exclusive use of one recall-callback slot for a cached session's
  /// lifetime.  The comm is owned by the session's listener thread; the
  /// slot index is what servers send kTagRecall messages to.
  class SessionSlot {
   public:
    SessionSlot(SessionSlot&& o) noexcept
        : pool_(o.pool_), slot_(o.slot_), comm_(std::move(o.comm_)) {
      o.pool_ = nullptr;
    }
    SessionSlot(const SessionSlot&) = delete;
    SessionSlot& operator=(const SessionSlot&) = delete;
    SessionSlot& operator=(SessionSlot&&) = delete;
    ~SessionSlot();

    sim::Comm& comm() { return *comm_; }
    int slot() const noexcept { return slot_; }

   private:
    friend class ServerPool;
    SessionSlot(ServerPool* pool, int slot, sim::Comm comm)
        : pool_(pool), slot_(slot), comm_(std::move(comm)) {}

    ServerPool* pool_;
    int slot_;
    std::optional<sim::Comm> comm_;
  };

  /// A file offset at or above this marks an open-ended (last) domain.
  static constexpr Off kOpenEnd = std::numeric_limits<Off>::max() / 2;

  Endpoint checkout();  ///< blocks until a client slot is free
  SessionSlot checkout_session_slot();  ///< blocks until a slot is free

  /// One queue-depth credit for `session` on server `s`, held from send
  /// to response (blocking / non-blocking).
  Credit acquire_credit(int s, std::int64_t session);
  std::optional<Credit> try_acquire_credit(int s, std::int64_t session);

  /// Allocate a pool-unique fileview id (client side).
  std::int64_t alloc_view_id() {
    return next_view_id_.fetch_add(1, std::memory_order_relaxed);
  }

  std::int64_t alloc_session_id() {
    return next_session_id_.fetch_add(1, std::memory_order_relaxed);
  }
  std::int64_t alloc_lease_id() {
    return next_lease_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // ---- sim clock -------------------------------------------------------

  std::int64_t now() const noexcept {
    return clock_.load(std::memory_order_acquire);
  }
  /// Advance by one (a request was served) and return the new time.
  std::int64_t tick() noexcept {
    return clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  /// Jump the clock forward to at least `t` (stalled server with parked
  /// work waiting out a recall grace period).  Never moves it backwards.
  void advance_to(std::int64_t t) noexcept;

 private:
  explicit ServerPool(PoolConfig cfg);

  void serve(int idx);

  struct AtomicServerStats;
  struct CreditState;

  PoolConfig cfg_;
  mutable std::mutex net_name_mu_;
  std::string net_name_;
  std::vector<mpiio::Domain> domains_;
  std::unique_ptr<sim::World> world_;
  std::vector<pfs::FilePtr> shards_;
  std::vector<std::unique_ptr<AtomicServerStats>> stats_;
  std::vector<std::unique_ptr<CreditState>> credits_;

  std::atomic<Off> size_{0};
  std::atomic<std::int64_t> next_view_id_{1};
  std::atomic<std::int64_t> next_session_id_{1};
  std::atomic<std::int64_t> next_lease_id_{1};
  std::atomic<std::int64_t> clock_{1};

  std::mutex ep_mu_;
  std::condition_variable ep_cv_;
  std::vector<int> free_slots_;

  std::mutex ss_mu_;
  std::condition_variable ss_cv_;
  std::vector<int> free_session_slots_;

  std::vector<std::thread> threads_;
};

}  // namespace llio::psrv
