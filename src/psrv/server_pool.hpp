// Parallel file-server pool: N server threads, each owning a shard of one
// logical file (the ViPIOS/PVFS server-process architecture the paper's
// client-side approach is contrasted with).
//
// The file's byte space is partitioned into stripe-aligned contiguous
// domains with mpiio::partition_domains — the same splitter the two-phase
// collective uses for IOP file domains — and each server thread serves
// its domain from a private pfs::FileBackend shard store.  Clients talk
// to servers over a sim::World (buffered message passing with the usual
// CommCostModel wall-time charges), so requests, ol-lists, serialized
// fileview trees and data payloads all pay the interconnect.
//
// Three request classes (see wire.hpp):
//   contig — plain pread/pwrite of one extent per round trip,
//   list   — an ol-list plus its data in one message, replayed against
//            the shard with adjacent extents batched into vectored I/O,
//   view   — the serialized filetype tree plus (disp, stream range); the
//            server navigates it locally with the listless cursor, i.e.
//            listless I/O over the wire (fileview caching of §3.2.3).
//
// Flow control is client-side: each server has `queue_depth` credits, and
// a request holds one from send to response, bounding the server's queue.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "mpiio/twophase.hpp"
#include "pfs/file_backend.hpp"
#include "simmpi/comm.hpp"

namespace llio::psrv {

struct PoolConfig {
  int nservers = 4;

  /// Shard-domain alignment (the "stripe"): domain boundaries snap to
  /// multiples of this, like the two-phase file domains snap to the file
  /// buffer size.
  Off stripe = 64 << 10;

  /// Byte space partitioned across the servers.  Offsets beyond it land
  /// on the last (non-empty) server, whose domain is open-ended.
  Off capacity = Off{1} << 30;

  /// Max requests a client may have in flight per server (credit-based).
  int queue_depth = 16;

  /// Concurrent client endpoints (one per in-progress backend operation).
  int client_slots = 16;

  /// Cached fileviews per server before LRU eviction.
  int view_cache_cap = 64;

  /// Interconnect between clients and servers.
  sim::CommCostModel net;

  /// Shard store factory; default pfs::MemFile.  Wrap in ThrottledFile to
  /// model slow storage behind the servers.
  std::function<pfs::FilePtr(int server)> make_shard;
};

/// Snapshot of one server's service counters.
struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t contig_ops = 0;  ///< Read/Write requests served
  std::uint64_t list_ops = 0;    ///< ReadList/WriteList requests served
  std::uint64_t view_ops = 0;    ///< ReadView/WriteView requests served
  std::uint64_t admin_ops = 0;   ///< Resize/Sync

  std::uint64_t bytes_in = 0;   ///< request message bytes received
  std::uint64_t bytes_out = 0;  ///< response message bytes sent

  /// File payload bytes moved, by request class.
  std::uint64_t contig_bytes = 0;
  std::uint64_t list_bytes = 0;
  std::uint64_t view_bytes = 0;

  std::uint64_t list_extents = 0;    ///< ol-list entries replayed
  std::uint64_t view_segments = 0;   ///< contiguous runs navigated
  std::uint64_t batched_extents = 0; ///< extents merged away by adjacency

  std::uint64_t view_installs = 0;
  std::uint64_t view_evictions = 0;
  std::uint64_t view_misses = 0;  ///< UnknownView responses (client retries)

  std::uint64_t max_queue_depth = 0;  ///< high-water of in-flight requests
  double service_s = 0;               ///< wall time spent serving

  ServerStats& operator+=(const ServerStats& o);
};

class ServerFile;

class ServerPool {
 public:
  static std::shared_ptr<ServerPool> create(PoolConfig cfg = {});
  ~ServerPool();

  ServerPool(const ServerPool&) = delete;
  ServerPool& operator=(const ServerPool&) = delete;

  int nservers() const noexcept { return cfg_.nservers; }
  const PoolConfig& config() const noexcept { return cfg_; }

  /// Shard domains, index = server; the last non-empty domain is
  /// open-ended so every file offset has an owner.
  const std::vector<mpiio::Domain>& domains() const noexcept {
    return domains_;
  }

  /// Server owning file byte `off`.
  int owner(Off off) const;

  /// The shard store of server `s` (tests wrap/inspect it).
  const pfs::FilePtr& shard(int s) const;

  /// Logical file size, maintained client-side across all handles.
  Off logical_size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }
  void grow_size(Off hi);  ///< size = max(size, hi)
  void set_size(Off n) { size_.store(n, std::memory_order_release); }

  ServerStats server_stats(int s) const;
  ServerStats total_server_stats() const;

  /// Total traffic in the client/server world (requests + responses).
  /// Only meaningful while no request is in flight.
  sim::CommStats wire_stats() const { return world_->total_stats(); }
  void reset_wire_stats() { world_->reset_stats(); }

  // ---- client plumbing (used by ServerFile) ----------------------------

  /// Exclusive use of one client mailbox slot for a whole round trip (the
  /// per-slot comm statistics and response matching both require it).
  class Endpoint {
   public:
    Endpoint(Endpoint&& o) noexcept
        : pool_(o.pool_), slot_(o.slot_), comm_(std::move(o.comm_)) {
      o.pool_ = nullptr;
    }
    Endpoint(const Endpoint&) = delete;
    Endpoint& operator=(const Endpoint&) = delete;
    Endpoint& operator=(Endpoint&&) = delete;
    ~Endpoint();

    sim::Comm& comm() { return *comm_; }

   private:
    friend class ServerPool;
    Endpoint(ServerPool* pool, int slot, sim::Comm comm)
        : pool_(pool), slot_(slot), comm_(std::move(comm)) {}

    ServerPool* pool_;
    int slot_;
    std::optional<sim::Comm> comm_;
  };

  /// One queue-depth credit on server `s`, held from send to response.
  class Credit {
   public:
    Credit(Credit&& o) noexcept : pool_(o.pool_), server_(o.server_) {
      o.pool_ = nullptr;
    }
    Credit(const Credit&) = delete;
    Credit& operator=(const Credit&) = delete;
    Credit& operator=(Credit&& o) noexcept {
      if (this != &o) {
        release();
        pool_ = o.pool_;
        server_ = o.server_;
        o.pool_ = nullptr;
      }
      return *this;
    }
    ~Credit() { release(); }

    void release();

   private:
    friend class ServerPool;
    Credit(ServerPool* pool, int server) : pool_(pool), server_(server) {}

    ServerPool* pool_;
    int server_;
  };

  /// A file offset at or above this marks an open-ended (last) domain.
  static constexpr Off kOpenEnd = std::numeric_limits<Off>::max() / 2;

  Endpoint checkout();          ///< blocks until a client slot is free
  Credit acquire_credit(int s); ///< blocks until server s is under depth
  std::optional<Credit> try_acquire_credit(int s);  ///< non-blocking

  /// Allocate a pool-unique fileview id (client side).
  std::int64_t alloc_view_id() {
    return next_view_id_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  explicit ServerPool(PoolConfig cfg);

  void serve(int idx);

  struct AtomicServerStats;
  struct CreditState;

  PoolConfig cfg_;
  std::vector<mpiio::Domain> domains_;
  std::unique_ptr<sim::World> world_;
  std::vector<pfs::FilePtr> shards_;
  std::vector<std::unique_ptr<AtomicServerStats>> stats_;
  std::vector<std::unique_ptr<CreditState>> credits_;

  std::atomic<Off> size_{0};
  std::atomic<std::int64_t> next_view_id_{1};

  std::mutex ep_mu_;
  std::condition_variable ep_cv_;
  std::vector<int> free_slots_;

  std::vector<std::thread> threads_;
};

}  // namespace llio::psrv
