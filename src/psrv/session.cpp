#include "psrv/session.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/snapshot.hpp"
#include "psrv/wire.hpp"

namespace llio::psrv {

// ---- FairScheduler -------------------------------------------------------

void FairScheduler::set_weight(std::int64_t session, std::int64_t weight) {
  const bool existed = lanes_.count(session) > 0;
  Lane& l = lanes_[session];
  l.weight = std::max<std::int64_t>(1, weight);
  if (!existed) rotation_.push_back(session);
}

void FairScheduler::drop_session(std::int64_t session) {
  const auto it = lanes_.find(session);
  if (it == lanes_.end()) return;
  size_ -= it->second.q.size();
  lanes_.erase(it);
  const auto rit = std::find(rotation_.begin(), rotation_.end(), session);
  if (rit != rotation_.end()) {
    const std::size_t at = static_cast<std::size_t>(rit - rotation_.begin());
    rotation_.erase(rit);
    if (cursor_ > at) --cursor_;
    if (!rotation_.empty()) cursor_ %= rotation_.size();
    else cursor_ = 0;
  }
}

void FairScheduler::push_express(PendingReq r) {
  express_.push_back(std::move(r));
  ++size_;
}

void FairScheduler::push(PendingReq r, std::int64_t now) {
  if (lanes_.count(r.session) == 0) set_weight(r.session, 1);
  r.deadline = now + deadline_ticks_;
  lanes_[r.session].q.push_back(std::move(r));
  ++size_;
}

void FairScheduler::block(std::int64_t session) {
  if (lanes_.count(session) == 0) set_weight(session, 1);
  lanes_[session].blocked = true;
}

void FairScheduler::unblock(std::int64_t session) {
  const auto it = lanes_.find(session);
  if (it != lanes_.end()) it->second.blocked = false;
}

std::optional<PendingReq> FairScheduler::pop(std::int64_t now) {
  if (!express_.empty()) {
    PendingReq r = std::move(express_.front());
    express_.pop_front();
    --size_;
    return r;
  }
  // Deadline lane: any unblocked lane front the clock has passed, oldest
  // deadline first.
  Lane* overdue = nullptr;
  for (auto& [sid, l] : lanes_) {
    if (l.blocked || l.q.empty() || l.q.front().deadline > now) continue;
    if (overdue == nullptr ||
        l.q.front().deadline < overdue->q.front().deadline)
      overdue = &l;
  }
  if (overdue != nullptr) {
    ++escalations_;
    PendingReq r = std::move(overdue->q.front());
    overdue->q.pop_front();
    --size_;
    return r;
  }
  // Weighted round-robin: the lane under the cursor serves up to its
  // weight before the cursor moves on.
  std::size_t scanned = 0;
  while (scanned < rotation_.size()) {
    const auto it = lanes_.find(rotation_[cursor_]);
    Lane* l = it != lanes_.end() ? &it->second : nullptr;
    if (l != nullptr && !l->blocked && !l->q.empty()) {
      if (l->deficit <= 0) l->deficit = l->weight;
      PendingReq r = std::move(l->q.front());
      l->q.pop_front();
      --size_;
      if (--l->deficit <= 0 || l->q.empty()) {
        l->deficit = 0;
        cursor_ = (cursor_ + 1) % rotation_.size();
      }
      return r;
    }
    if (l != nullptr) l->deficit = 0;
    cursor_ = (cursor_ + 1) % rotation_.size();
    ++scanned;
  }
  return std::nullopt;
}

std::optional<PendingReq> FairScheduler::steal_front(
    const std::function<bool(const PendingReq&)>& pred) {
  for (auto& [sid, l] : lanes_) {
    if (l.blocked || l.q.empty() || !pred(l.q.front())) continue;
    PendingReq r = std::move(l.q.front());
    l.q.pop_front();
    --size_;
    return r;
  }
  return std::nullopt;
}

// ---- Session: wire helpers -----------------------------------------------

namespace {

/// A shard-local slice of one global extent.
struct Slice {
  int server = 0;
  Off local_off = 0;
  Off global_lo = 0;
  Off len = 0;
};

std::vector<Slice> split_span(const ServerPool& pool, Off lo, Off hi) {
  std::vector<Slice> out;
  if (hi <= lo) return out;
  int s = pool.owner(lo);
  const auto& domains = pool.domains();
  Off at = lo;
  while (at < hi) {
    const mpiio::Domain& d = domains[static_cast<std::size_t>(s)];
    if (d.empty() || at >= d.hi) {
      ++s;
      LLIO_ASSERT(s < static_cast<int>(domains.size()),
                  "psrv session: span ran past the last shard");
      continue;
    }
    const Off take = std::min(hi - at, d.hi - at);
    out.push_back({s, at - d.lo, at, take});
    at += take;
  }
  return out;
}

/// One round trip on `comm`; throws the server-reported error.
ByteVec roundtrip(sim::Comm& comm, int server, ByteVec msg,
                  sim::MsgClass cls) {
  comm.send(server, wire::kTagRequest, std::move(msg), cls);
  ByteVec resp = comm.recv(server, wire::kTagResponse);
  wire::Reader rd(resp);
  const auto status = static_cast<wire::Status>(rd.u8());
  if (status == wire::Status::Fail) {
    const auto code = static_cast<Errc>(rd.u8());
    const ConstByteSpan what = rd.rest();
    throw_error(code, std::string(reinterpret_cast<const char*>(what.data()),
                                  what.size()));
  }
  LLIO_REQUIRE(status == wire::Status::Ok, Errc::Protocol,
               "psrv session: unexpected response status");
  return resp;
}

}  // namespace

bool Session::acquire_lease_span(sim::Comm& comm, lease::Mode mode, Off lo,
                                 Off hi, std::vector<ClientLease>& out) {
  for (const Slice& sl : split_span(*pool_, lo, hi)) {
    ByteVec msg = wire::request_header(wire::Op::LeaseAcquire, id_);
    wire::put_u8(msg, static_cast<std::uint8_t>(mode));
    wire::put_i64(msg, sl.global_lo);
    wire::put_i64(msg, sl.global_lo + sl.len);
    const ByteVec resp =
        roundtrip(comm, sl.server, std::move(msg), sim::MsgClass::Meta);
    wire::Reader rd(resp);
    rd.u8();   // status (Ok)
    rd.i64();  // count (informational)
    const bool granted = rd.u8() != 0;
    const std::int64_t lease_id = rd.i64();
    const std::int64_t expiry = rd.i64();
    if (!granted) return false;
    ClientLease l;
    l.id = lease_id;
    l.server = sl.server;
    l.mode = mode;
    l.lo = sl.global_lo;
    l.hi = sl.global_lo + sl.len;
    l.expiry = expiry;
    out.push_back(l);
  }
  return true;
}

void Session::release_leases(sim::Comm& comm,
                             const std::vector<ClientLease>& ls) noexcept {
  for (const ClientLease& l : ls) {
    try {
      ByteVec msg = wire::request_header(wire::Op::LeaseRelease, id_);
      wire::put_i64(msg, l.id);
      roundtrip(comm, l.server, std::move(msg), sim::MsgClass::Meta);
    } catch (...) {
      // Server gone or already dropped the lease; either way it's over.
    }
  }
}

void Session::fetch_span(sim::Comm& comm, Off lo, ByteSpan out) {
  Off done = 0;
  for (const Slice& sl : split_span(*pool_, lo, lo + to_off(out.size()))) {
    ServerPool::Credit credit = pool_->acquire_credit(sl.server, id_);
    ByteVec msg = wire::request_header(wire::Op::Read, id_);
    wire::put_i64(msg, sl.local_off);
    wire::put_i64(msg, sl.len);
    const ByteVec resp =
        roundtrip(comm, sl.server, std::move(msg), sim::MsgClass::Meta);
    wire::Reader rd(resp);
    rd.u8();
    rd.i64();
    const ConstByteSpan chunk = rd.bytes(sl.len);
    std::memcpy(out.data() + done, chunk.data(), chunk.size());
    done += sl.len;
  }
}

void Session::write_back(sim::Comm& comm,
                         const std::vector<DirtyExtent>& extents) noexcept {
  if (extents.empty()) return;
  // One WriteBack message per server: extent list + payload, the
  // WriteList shape validated against fences server-side.
  struct PerServer {
    std::vector<std::pair<Off, Off>> list;  // (local_off, len)
    std::vector<ConstByteSpan> runs;
    Off total = 0;
  };
  std::map<int, PerServer> by_server;
  for (const DirtyExtent& e : extents) {
    for (const Slice& sl :
         split_span(*pool_, e.lo, e.lo + to_off(e.data.size()))) {
      PerServer& ps = by_server[sl.server];
      ps.list.emplace_back(sl.local_off, sl.len);
      ps.runs.push_back(ConstByteSpan(
          e.data.data() + to_size(sl.global_lo - e.lo), to_size(sl.len)));
      ps.total += sl.len;
    }
  }
  for (auto& [server, ps] : by_server) {
    try {
      ByteVec msg = wire::request_header(wire::Op::WriteBack, id_);
      wire::put_i64(msg, to_off(ps.list.size()));
      for (const auto& [off, len] : ps.list) {
        wire::put_i64(msg, off);
        wire::put_i64(msg, len);
      }
      comm.send_gather(server, wire::kTagRequest, ConstByteSpan(msg), ps.runs,
                       sim::MsgClass::Data);
      const ByteVec resp = comm.recv(server, wire::kTagResponse);
      wire::Reader rd(resp);
      const auto status = static_cast<wire::Status>(rd.u8());
      if (status == wire::Status::Ok) {
        rd.i64();  // bytes applied (fenced extents were dropped)
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.writeback_ops;
        stats_.writeback_bytes += static_cast<std::uint64_t>(ps.total);
      }
    } catch (...) {
      // Dead pool: the data is lost either way; fencing keeps it coherent.
    }
  }
}

void Session::close_on_servers(sim::Comm& comm) noexcept {
  for (int s = 0; s < pool_->nservers(); ++s) {
    try {
      roundtrip(comm, s, wire::request_header(wire::Op::CloseSession, id_),
                sim::MsgClass::Meta);
    } catch (...) {
    }
  }
}

// ---- Session: lifecycle --------------------------------------------------

Session::Session(std::shared_ptr<ServerPool> pool, SessionConfig cfg)
    : pool_(std::move(pool)), cfg_(cfg) {
  id_ = pool_->alloc_session_id();
}

std::unique_ptr<Session> Session::open(std::shared_ptr<ServerPool> pool,
                                       SessionConfig cfg) {
  LLIO_REQUIRE(pool != nullptr, Errc::InvalidArgument, "psrv: null pool");
  LLIO_REQUIRE(cfg.weight >= 1, Errc::InvalidArgument,
               "psrv session: weight < 1");
  LLIO_REQUIRE(cfg.cache_block >= 1 && cfg.cache_capacity >= 1,
               Errc::InvalidArgument, "psrv session: bad cache geometry");
  std::unique_ptr<Session> s(new Session(std::move(pool), cfg));
  if (s->cfg_.cache) s->slot_.emplace(s->pool_->checkout_session_slot());
  s->open_on_servers();
  if (s->cfg_.cache) s->listener_ = std::thread([p = s.get()] {
    p->listener_loop();
  });
  return s;
}

void Session::open_on_servers() {
  ServerPool::Endpoint ep = pool_->checkout();
  for (int s = 0; s < pool_->nservers(); ++s) {
    ByteVec msg = wire::request_header(wire::Op::OpenSession, id_);
    wire::put_i64(msg, cfg_.weight);
    wire::put_i64(msg, slot_ ? slot_->slot() : -1);
    wire::put_i64(msg, cfg_.lease_term);
    roundtrip(ep.comm(), s, std::move(msg), sim::MsgClass::Meta);
  }
}

Session::~Session() {
  {
    std::lock_guard<std::mutex> op(op_mu_);
    bool was_closed = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      was_closed = closed_;
      closed_ = true;
    }
    if (!was_closed) {
      try {
        ServerPool::Endpoint ep = pool_->checkout();
        flush_with(ep.comm());
        close_on_servers(ep.comm());
      } catch (...) {
        // Dead pool: servers drop the session on their way out.
      }
    }
  }
  stop_listener();
}

void Session::abandon() {
  std::lock_guard<std::mutex> op(op_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    blocks_.clear();
    leases_.clear();
    closed_ = true;
  }
  // No flush, no release, no CloseSession: from the servers' point of
  // view this client just died.  Leases go via recall grace or natural
  // expiry; unflushed dirty ranges get fenced.
  stop_listener();
}

void Session::stop_listener() noexcept {
  if (!listener_.joinable()) return;
  try {
    // The sentinel goes through a checked-out endpoint, not the callback
    // comm itself — the listener owns that comm, and per-slot accounting
    // is not thread-safe.
    ServerPool::Endpoint ep = pool_->checkout();
    ByteVec m;
    wire::put_i64(m, wire::kRecallStop);
    ep.comm().send(slot_->slot(), wire::kTagRecall, std::move(m),
                   sim::MsgClass::Meta);
  } catch (...) {
    // Dead world: the listener's recv has already thrown it out.
  }
  listener_.join();
}

// ---- Session: recall listener --------------------------------------------

void Session::listener_loop() {
  sim::Comm& comm = slot_->comm();
  try {
    for (;;) {
      auto [src, msg] = comm.recv_any(wire::kTagRecall);
      wire::Reader rd(msg);
      const std::int64_t lease_id = rd.i64();
      if (lease_id == wire::kRecallStop) break;
      const Off lo = rd.i64();
      const Off hi = rd.i64();
      rd.i64();  // deadline (ticks) — informational; we flush immediately
      handle_recall(lease_id, lo, hi);
    }
  } catch (...) {
    // World died under us; nothing left to listen to.
  }
}

void Session::handle_recall(std::int64_t lease_id, Off /*lo*/, Off /*hi*/) {
  std::vector<DirtyExtent> flush;
  std::vector<ClientLease> rel;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.recalls;
    const auto it = leases_.find(lease_id);
    if (it == leases_.end()) {
      // Recall raced our own grant handling (or we dropped it already):
      // remember the id so a pending install discards it.
      recall_orphans_.insert(lease_id);
      return;
    }
    rel.push_back(it->second);
    // Drop every block the lease covers, flushing dirty data first.
    for (auto bit = blocks_.begin(); bit != blocks_.end();) {
      Block& b = bit->second;
      if (std::find(b.lease_ids.begin(), b.lease_ids.end(), lease_id) ==
          b.lease_ids.end()) {
        ++bit;
        continue;
      }
      if (b.dirty())
        flush.push_back({bit->first + b.dlo,
                         ByteVec(b.data.begin() + b.dlo,
                                 b.data.begin() + b.dhi)});
      bit = blocks_.erase(bit);
    }
    leases_.erase(it);
  }
  // Credit-free, on our own callback comm: a recall flush must never
  // queue behind the (possibly parked) traffic that triggered it.
  write_back(slot_->comm(), flush);
  release_leases(slot_->comm(), rel);
}

// ---- Session: cache internals --------------------------------------------

bool Session::lease_live(const ClientLease& l, std::int64_t now) const {
  return l.mode == lease::Mode::Write || l.expiry > now;
}

bool Session::block_valid(const Block& b, std::int64_t now) const {
  if (b.lease_ids.empty()) return false;
  for (std::int64_t id : b.lease_ids) {
    const auto it = leases_.find(id);
    if (it == leases_.end() || !lease_live(it->second, now)) return false;
  }
  return true;
}

void Session::copy_out(Off off, ByteSpan out) const {
  const Off B = cfg_.cache_block;
  Off at = off;
  const Off hi = off + to_off(out.size());
  while (at < hi) {
    const Off bstart = (at / B) * B;
    const auto it = blocks_.find(bstart);
    LLIO_ASSERT(it != blocks_.end(), "psrv session: cache hole on copy_out");
    const Off take = std::min(hi - at, bstart + B - at);
    std::memcpy(out.data() + to_size(at - off),
                it->second.data.data() + to_size(at - bstart), to_size(take));
    at += take;
  }
}

void Session::sweep_leases(std::int64_t now) {
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (!lease_live(it->second, now))
      it = leases_.erase(it);
    else
      ++it;
  }
  for (auto& [bstart, b] : blocks_) {
    auto& ids = b.lease_ids;
    ids.erase(std::remove_if(ids.begin(), ids.end(),
                             [&](std::int64_t id) {
                               return leases_.count(id) == 0;
                             }),
              ids.end());
  }
}

void Session::evict_for_capacity(std::vector<DirtyExtent>& flush_out) {
  while (blocks_.size() > cfg_.cache_capacity) {
    auto victim = blocks_.begin();
    for (auto it = blocks_.begin(); it != blocks_.end(); ++it)
      if (it->second.lru < victim->second.lru) victim = it;
    Block& b = victim->second;
    if (b.dirty())
      flush_out.push_back({victim->first + b.dlo,
                           ByteVec(b.data.begin() + b.dlo,
                                   b.data.begin() + b.dhi)});
    blocks_.erase(victim);
    ++stats_.evictions;
  }
}

// ---- Session: client-facing ops ------------------------------------------

void Session::sample_cached(std::uint32_t op_id, std::size_t bytes,
                            long long dur_ns) {
  // Cache-served ops never reach IoEngine::observe_op (they return before
  // the wire), so without this the sampler ring has no record of them and
  // the adaptive Advisor cannot key on the backend/net they ran under.
  // Called under op_mu_, so the cached dim ids need no extra locking.
  obs::Sampler& sampler = obs::Sampler::instance();
  if (!sampler.enabled()) return;
  if (dims_.engine == 0) {
    dims_.engine = sampler.intern("psrv-session");
    dims_.backend = sampler.intern("psrv");
  }
  const std::string net = pool_->net_name();
  if (net != dims_.net_name) {  // re-intern only on a mid-run net flip
    dims_.net = sampler.intern(net.empty() ? "default" : net);
    dims_.net_name = net;
  }
  obs::OpSample s;
  s.rank = -1;  // a session is shared by all rank-threads of the handle
  s.op = op_id;
  s.engine = dims_.engine;
  s.backend = dims_.backend;
  s.net = dims_.net;
  s.bytes = static_cast<long long>(bytes);
  s.runs = 0;  // no storage access: that is the point of the cache
  s.dur_ns = dur_ns;
  sampler.record(s);
}

bool Session::cached_read(Off off, ByteSpan out) {
  static const std::uint32_t kOpId =
      obs::Sampler::instance().intern("psrv.cached_read");
  WallTimer timer;
  std::lock_guard<std::mutex> op(op_mu_);
  if (out.empty()) return true;
  const Off B = cfg_.cache_block;
  const Off lo = off;
  const Off hi = off + to_off(out.size());
  const Off a0 = (lo / B) * B;
  const Off a1 = ((hi + B - 1) / B) * B;

  // A block that was valid at inspect time can be recalled away while the
  // missing runs are on the wire (the listener holds only mu_), so the
  // whole inspect-fetch-install cycle retries until the range is covered
  // in one critical section; persistent contention falls through to the
  // direct wire path.
  std::optional<ServerPool::Endpoint> ep;
  for (int attempt = 0; attempt < 4; ++attempt) {
    std::vector<std::pair<Off, Off>> missing;  // block-aligned runs
    bool hit = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const std::int64_t now = pool_->now();
      sweep_leases(now);
      Off run_lo = -1;
      for (Off b = a0; b < a1; b += B) {
        const auto it = blocks_.find(b);
        const bool ok = it != blocks_.end() && it->second.filled &&
                        block_valid(it->second, now);
        if (!ok) {
          if (run_lo < 0) run_lo = b;
        } else if (run_lo >= 0) {
          missing.emplace_back(run_lo, b);
          run_lo = -1;
        }
      }
      if (run_lo >= 0) missing.emplace_back(run_lo, a1);
      if (missing.empty()) {
        copy_out(off, out);
        for (Off b = a0; b < a1; b += B) blocks_[b].lru = ++lru_;
        ++stats_.hits;
        hit = true;
      }
    }
    if (hit) {
      sample_cached(kOpId, out.size(),
                    static_cast<long long>(timer.seconds() * 1e9));
      return true;
    }

    if (!ep) ep.emplace(pool_->checkout());
    std::vector<ClientLease> newls;
    bool denied = false;
    for (const auto& [mlo, mhi] : missing) {
      if (!acquire_lease_span(ep->comm(), lease::Mode::Read, mlo, mhi,
                              newls)) {
        denied = true;
        break;
      }
    }
    if (denied) {
      release_leases(ep->comm(), newls);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.lease_denied;
      }
      bypass_with(ep->comm(), lo, hi, /*writing=*/false);
      return false;
    }
    std::vector<std::pair<Off, ByteVec>> fetched;
    for (const auto& [mlo, mhi] : missing) {
      ByteVec buf(to_size(mhi - mlo));
      fetch_span(ep->comm(), mlo, ByteSpan(buf.data(), buf.size()));
      fetched.emplace_back(mlo, std::move(buf));
    }

    std::vector<DirtyExtent> evict_flush;
    bool orphaned = false;
    bool covered = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const ClientLease& l : newls)
        if (recall_orphans_.erase(l.id) > 0) orphaned = true;
      if (!orphaned) {
        for (const ClientLease& l : newls) leases_.emplace(l.id, l);
        for (const auto& [mlo, buf] : fetched) {
          for (Off b = mlo; b < mlo + to_off(buf.size()); b += B) {
            Block& blk = blocks_[b];
            if (blk.data.empty()) blk.data.resize(to_size(B));
            const Byte* src = buf.data() + to_size(b - mlo);
            if (blk.dirty()) {
              // Dirty bytes are newer than the fetch: fill around them.
              if (blk.dlo > 0)
                std::memcpy(blk.data.data(), src, to_size(blk.dlo));
              if (blk.dhi < B)
                std::memcpy(blk.data.data() + to_size(blk.dhi),
                            src + to_size(blk.dhi), to_size(B - blk.dhi));
            } else {
              std::memcpy(blk.data.data(), src, to_size(B));
            }
            blk.filled = true;
            blk.lru = ++lru_;
            for (const ClientLease& l : newls)
              if (l.lo < b + B && b < l.hi) blk.lease_ids.push_back(l.id);
          }
        }
        const std::int64_t now = pool_->now();
        covered = true;
        for (Off b = a0; b < a1 && covered; b += B) {
          const auto it = blocks_.find(b);
          covered = it != blocks_.end() && it->second.filled &&
                    block_valid(it->second, now);
        }
        if (covered) {
          copy_out(off, out);
          ++stats_.misses;
        }
        evict_for_capacity(evict_flush);
      }
    }
    if (orphaned) {
      // A recall beat the grant home: don't install stale state.
      release_leases(ep->comm(), newls);
      bypass_with(ep->comm(), lo, hi, /*writing=*/false);
      return false;
    }
    write_back(ep->comm(), evict_flush);
    if (covered) return true;
  }
  if (!ep) ep.emplace(pool_->checkout());
  bypass_with(ep->comm(), lo, hi, /*writing=*/false);
  return false;
}

bool Session::cached_write(Off off, ConstByteSpan data) {
  static const std::uint32_t kOpId =
      obs::Sampler::instance().intern("psrv.cached_write");
  WallTimer timer;
  std::lock_guard<std::mutex> op(op_mu_);
  if (data.empty()) return true;
  const Off B = cfg_.cache_block;
  const Off lo = off;
  const Off hi = off + to_off(data.size());
  const Off a0 = (lo / B) * B;
  const Off a1 = ((hi + B - 1) / B) * B;

  std::vector<DirtyExtent> preflush;
  std::vector<Off> preflushed_blocks;
  std::vector<std::pair<Off, Off>> need;  // spans lacking a write lease
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::int64_t now = pool_->now();
    sweep_leases(now);
    // Uncovered gaps of [a0, a1) under our live write leases.
    std::vector<std::pair<Off, Off>> spans;
    for (const auto& [id, l] : leases_)
      if (l.mode == lease::Mode::Write && l.hi > a0 && l.lo < a1 &&
          lease_live(l, now))
        spans.emplace_back(l.lo, l.hi);
    std::sort(spans.begin(), spans.end());
    Off at = a0;
    for (const auto& [slo, shi] : spans) {
      if (slo > at) need.emplace_back(at, std::min(slo, a1));
      at = std::max(at, shi);
      if (at >= a1) break;
    }
    if (at < a1) need.emplace_back(at, a1);
    // A block whose existing dirty interval neither touches nor overlaps
    // the incoming write keeps a single dirty interval by flushing the
    // old one first.
    for (Off b = a0; b < a1; b += B) {
      const auto it = blocks_.find(b);
      if (it == blocks_.end() || !it->second.dirty()) continue;
      Block& blk = it->second;
      const Off nlo = std::max(lo, b) - b;
      const Off nhi = std::min(hi, b + B) - b;
      const bool mergeable = nlo <= blk.dhi && blk.dlo <= nhi;
      if (!mergeable) {
        preflush.push_back({b + blk.dlo,
                            ByteVec(blk.data.begin() + blk.dlo,
                                    blk.data.begin() + blk.dhi)});
        preflushed_blocks.push_back(b);
      }
    }
  }

  ServerPool::Endpoint ep = pool_->checkout();
  write_back(ep.comm(), preflush);
  std::vector<ClientLease> newls;
  for (const auto& [glo, ghi] : need) {
    if (!acquire_lease_span(ep.comm(), lease::Mode::Write, glo, ghi, newls)) {
      release_leases(ep.comm(), newls);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.lease_denied;
      }
      bypass_with(ep.comm(), lo, hi, /*writing=*/true);
      return false;
    }
  }

  std::vector<DirtyExtent> evict_flush;
  bool orphaned = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const ClientLease& l : newls)
      if (recall_orphans_.erase(l.id) > 0) orphaned = true;
    if (!orphaned) {
      for (const ClientLease& l : newls) leases_.emplace(l.id, l);
      for (Off b : preflushed_blocks) {
        const auto it = blocks_.find(b);
        if (it != blocks_.end()) it->second.dlo = it->second.dhi = 0;
      }
      for (Off b = a0; b < a1; b += B) {
        const Off nlo = std::max(lo, b) - b;
        const Off nhi = std::min(hi, b + B) - b;
        if (nhi <= nlo) continue;
        Block& blk = blocks_[b];
        if (blk.data.empty()) blk.data.resize(to_size(B));
        std::memcpy(blk.data.data() + to_size(nlo),
                    data.data() + to_size(b + nlo - lo), to_size(nhi - nlo));
        if (blk.dirty()) {
          blk.dlo = std::min(blk.dlo, nlo);
          blk.dhi = std::max(blk.dhi, nhi);
        } else {
          blk.dlo = nlo;
          blk.dhi = nhi;
        }
        if (nhi - nlo == B) blk.filled = true;
        blk.lru = ++lru_;
        for (const auto& [id, l] : leases_)
          if (l.mode == lease::Mode::Write && l.lo < b + B && b < l.hi &&
              std::find(blk.lease_ids.begin(), blk.lease_ids.end(), id) ==
                  blk.lease_ids.end())
            blk.lease_ids.push_back(id);
      }
      evict_for_capacity(evict_flush);
    }
  }
  if (orphaned) {
    release_leases(ep.comm(), newls);
    bypass_with(ep.comm(), lo, hi, /*writing=*/true);
    return false;
  }
  write_back(ep.comm(), evict_flush);
  sample_cached(kOpId, data.size(),
                static_cast<long long>(timer.seconds() * 1e9));
  return true;
}

void Session::flush() {
  std::lock_guard<std::mutex> op(op_mu_);
  ServerPool::Endpoint ep = pool_->checkout();
  flush_with(ep.comm());
}

void Session::flush_with(sim::Comm& comm) {
  std::vector<DirtyExtent> flush;
  std::vector<Off> keys;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [b, blk] : blocks_) {
      if (!blk.dirty()) continue;
      flush.push_back({b + blk.dlo, ByteVec(blk.data.begin() + blk.dlo,
                                            blk.data.begin() + blk.dhi)});
      keys.push_back(b);
    }
  }
  write_back(comm, flush);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Off b : keys) {
      const auto it = blocks_.find(b);
      if (it != blocks_.end()) it->second.dlo = it->second.dhi = 0;
    }
  }
}

void Session::prepare_bypass(Off lo, Off hi, bool writing) {
  std::lock_guard<std::mutex> op(op_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (blocks_.empty() && leases_.empty()) return;
  }
  ServerPool::Endpoint ep = pool_->checkout();
  bypass_with(ep.comm(), lo, hi, writing);
}

void Session::bypass_with(sim::Comm& comm, Off lo, Off hi, bool writing) {
  std::vector<DirtyExtent> flush;
  std::vector<ClientLease> rel;
  std::vector<Off> clean_keys;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (writing) {
      // The wire write makes overlapping cached state stale: release the
      // leases over the range and drop every block they cover (flushing
      // any dirty data those blocks hold first).
      std::vector<std::int64_t> rel_ids;
      for (const auto& [id, l] : leases_)
        if (l.lo < hi && lo < l.hi) {
          rel.push_back(l);
          rel_ids.push_back(id);
        }
      for (auto it = blocks_.begin(); it != blocks_.end();) {
        Block& b = it->second;
        const Off blo = it->first;
        const Off bhi = blo + cfg_.cache_block;
        const bool in_range = blo < hi && lo < bhi;
        const bool on_rel_lease =
            std::any_of(b.lease_ids.begin(), b.lease_ids.end(),
                        [&](std::int64_t id) {
                          return std::find(rel_ids.begin(), rel_ids.end(),
                                           id) != rel_ids.end();
                        });
        if (!in_range && !on_rel_lease) {
          ++it;
          continue;
        }
        if (b.dirty())
          flush.push_back({blo + b.dlo, ByteVec(b.data.begin() + b.dlo,
                                                b.data.begin() + b.dhi)});
        it = blocks_.erase(it);
      }
      for (std::int64_t id : rel_ids) leases_.erase(id);
    } else {
      // A wire read must see our buffered writes: flush dirty overlap,
      // keep blocks and leases.
      for (const auto& [blo, b] : blocks_) {
        if (!b.dirty()) continue;
        const Off bhi = blo + cfg_.cache_block;
        if (blo >= hi || bhi <= lo) continue;
        flush.push_back({blo + b.dlo, ByteVec(b.data.begin() + b.dlo,
                                              b.data.begin() + b.dhi)});
        clean_keys.push_back(blo);
      }
    }
  }
  write_back(comm, flush);
  release_leases(comm, rel);
  if (!clean_keys.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    for (Off b : clean_keys) {
      const auto it = blocks_.find(b);
      if (it != blocks_.end()) it->second.dlo = it->second.dhi = 0;
    }
  }
}

Session::CacheStats Session::cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace llio::psrv
