// Multi-tenant sessions for the psrv file-server pool.
//
// Two halves live here:
//
//   * FairScheduler — the per-server-thread request scheduler that
//     replaces the single FIFO mailbox order.  Three priority bands:
//       1. express — session/lease admin and write-back flushes.  These
//          must never queue behind the data traffic that may be parked
//          waiting *for* them (a recall flush stuck behind the recalled
//          request would deadlock the grace period away).
//       2. deadline lane — any queued data request whose enqueue-time
//          deadline (enq + deadline_ticks) the sim clock has passed is
//          escalated and served earliest-deadline-first.  This bounds
//          the worst-case latency a low-weight session can suffer.
//       3. weighted round-robin — one lane per session, visited in
//          rotation; a visit serves up to `weight` requests (the deficit
//          refills to the weight each time the rotation returns).  The
//          per-initiator queuing shape of storage-target schedulers.
//
//   * Session — the client half.  Opened by every ServerFile (the id
//     rides on each wire request so servers can account and schedule
//     per tenant).  With `cache` enabled it adds a lease-coherent block
//     cache: read leases gate cached reads, write leases gate write-back
//     buffering, and a recall-listener thread answers server recalls by
//     flushing dirty blocks and releasing the lease within the grace
//     period.  All expiry decisions use the pool's sim clock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "psrv/lease.hpp"
#include "psrv/server_pool.hpp"

namespace llio::psrv {

// ---- server side ---------------------------------------------------------

/// One queued request inside a server thread.
struct PendingReq {
  int src = -1;               ///< client slot to answer
  std::int64_t session = 0;   ///< scheduler lane / lease domain
  ByteVec msg;                ///< full raw request (op byte first)
  std::int64_t enq_tick = 0;  ///< sim clock at enqueue
  std::int64_t deadline = 0;  ///< escalation threshold (enq + deadline_ticks)
  std::chrono::steady_clock::time_point enq_wall{};  ///< queue-wait metric
};

class FairScheduler {
 public:
  explicit FairScheduler(std::int64_t deadline_ticks)
      : deadline_ticks_(deadline_ticks) {}

  /// Register / reweight a session lane (weight >= 1).
  void set_weight(std::int64_t session, std::int64_t weight);
  void drop_session(std::int64_t session);

  void push_express(PendingReq r);
  void push(PendingReq r, std::int64_t now);

  /// A session whose popped request had to be *parked* (lease conflict)
  /// blocks its lane: later requests from the same session must not
  /// overtake the parked one, or per-endpoint response matching breaks.
  /// Express traffic (lease admin, write-back flushes) is never blocked.
  void block(std::int64_t session);
  void unblock(std::int64_t session);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Next request to serve: express, then overdue lane fronts (EDF),
  /// then weighted round-robin.  May return nullopt with size() > 0 when
  /// every non-empty lane is blocked on a parked request.
  std::optional<PendingReq> pop(std::int64_t now);

  /// Pop the front of some unblocked lane if it matches `pred` (used by
  /// server-side write aggregation).  Front-only: serving a lane's front
  /// early is just the scheduler picking that lane next, so per-lane FIFO
  /// — and therefore per-endpoint response order — is preserved.
  std::optional<PendingReq> steal_front(
      const std::function<bool(const PendingReq&)>& pred);

  std::uint64_t escalations() const { return escalations_; }

 private:
  struct Lane {
    std::int64_t weight = 1;
    std::int64_t deficit = 0;
    bool blocked = false;
    std::deque<PendingReq> q;
  };

  std::int64_t deadline_ticks_;
  std::deque<PendingReq> express_;
  std::map<std::int64_t, Lane> lanes_;
  std::vector<std::int64_t> rotation_;  ///< lane visit order
  std::size_t cursor_ = 0;
  std::size_t size_ = 0;
  std::uint64_t escalations_ = 0;
};

// ---- client side ---------------------------------------------------------

struct SessionConfig {
  /// Fair-share weight: a weight-w session gets w slots per scheduler
  /// rotation on each server.
  std::int64_t weight = 1;

  /// Enable the lease-coherent client block cache (off: the session is
  /// only a scheduling/accounting identity).
  bool cache = false;

  /// Cache block size in bytes and capacity in blocks.
  Off cache_block = 4096;
  std::size_t cache_capacity = 256;

  /// Read-lease natural lifetime in sim-clock ticks; 0 = pool default.
  std::int64_t lease_term = 0;
};

/// Client-side session handle.  Thread-safe: many rank-threads may drive
/// one session (they share one ServerFile).  The internal mutex is never
/// held across a wire round trip.
class Session {
 public:
  static std::unique_ptr<Session> open(std::shared_ptr<ServerPool> pool,
                                       SessionConfig cfg);
  ~Session();  ///< graceful close: flush, release leases, CloseSession

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  std::int64_t id() const noexcept { return id_; }
  const SessionConfig& config() const noexcept { return cfg_; }
  bool cache_enabled() const noexcept { return cfg_.cache; }

  /// Serve [off, off+out.size()) from the cache, fetching blocks under
  /// read leases as needed.  Returns false when a lease was denied
  /// (contention): overlapping dirty data has been flushed and the
  /// caller must use the direct wire path.
  bool cached_read(Off off, ByteSpan out);

  /// Buffer the write in the cache under write leases (write-back).
  /// Returns false when a lease was denied: overlapping cache state has
  /// been flushed + dropped and the caller must write through the wire.
  bool cached_write(Off off, ConstByteSpan data);

  /// Push every dirty extent to the servers (WriteBack), keeping blocks
  /// cached and leases held.
  void flush();

  /// Make a wire-path access of [lo, hi) coherent with the cache: flush
  /// overlapping dirty data; if `writing`, also drop the overlapped
  /// blocks and release their leases (the wire write makes them stale).
  void prepare_bypass(Off lo, Off hi, bool writing);

  /// Drop everything client-side without flushing or telling servers —
  /// simulates a killed client.  Leases die by recall grace / natural
  /// expiry; unflushed dirty blocks get fenced server-side.
  void abandon();

  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t lease_denied = 0;
    std::uint64_t writeback_ops = 0;
    std::uint64_t writeback_bytes = 0;
    std::uint64_t recalls = 0;
    std::uint64_t evictions = 0;
  };
  CacheStats cache_stats() const;

 private:
  Session(std::shared_ptr<ServerPool> pool, SessionConfig cfg);

  struct ClientLease {
    std::int64_t id = 0;
    int server = 0;
    lease::Mode mode = lease::Mode::Read;
    Off lo = 0, hi = 0;  ///< global
    std::int64_t expiry = 0;
  };

  struct Block {
    ByteVec data;
    bool filled = false;  ///< whole block contents are defined
    Off dlo = 0, dhi = 0;  ///< dirty interval, block-relative ([0,0) clean)
    std::vector<std::int64_t> lease_ids;
    std::uint64_t lru = 0;

    bool dirty() const { return dhi > dlo; }
  };

  /// A dirty extent lifted out of the cache for a WriteBack.
  struct DirtyExtent {
    Off lo = 0;  ///< global
    ByteVec data;
  };

  void open_on_servers();
  void listener_loop();
  void handle_recall(std::int64_t lease_id, Off lo, Off hi);
  void stop_listener() noexcept;

  // Wire helpers.  mu_ is never held across them; the comm is either a
  // checked-out endpoint (client ops) or the session's own callback slot
  // (the recall listener — credit-free so a recall flush can never wait
  // behind the very traffic that triggered it).
  bool acquire_lease_span(sim::Comm& comm, lease::Mode mode, Off lo, Off hi,
                          std::vector<ClientLease>& out);
  void release_leases(sim::Comm& comm,
                      const std::vector<ClientLease>& ls) noexcept;
  void fetch_span(sim::Comm& comm, Off lo, ByteSpan out);
  void write_back(sim::Comm& comm,
                  const std::vector<DirtyExtent>& extents) noexcept;
  void close_on_servers(sim::Comm& comm) noexcept;

  // Whole-op helpers (op_mu_ held by caller).
  void flush_with(sim::Comm& comm);
  void bypass_with(sim::Comm& comm, Off lo, Off hi, bool writing);

  /// Record an obs::Sampler sample for an op served from the client
  /// cache (never reaches the wire or IoEngine::observe_op).  Caller
  /// holds op_mu_.
  void sample_cached(std::uint32_t op_id, std::size_t bytes,
                     long long dur_ns);

  // Cache internals (mu_ held by caller).
  bool lease_live(const ClientLease& l, std::int64_t now) const;
  bool block_valid(const Block& b, std::int64_t now) const;
  /// Drop naturally-expired read leases and dead lease ids on blocks, so
  /// a lapsed block is refetched instead of staying invalid forever.
  void sweep_leases(std::int64_t now);
  void copy_out(Off off, ByteSpan out) const;
  void evict_for_capacity(std::vector<DirtyExtent>& flush_out);

  std::shared_ptr<ServerPool> pool_;
  SessionConfig cfg_;
  std::int64_t id_ = 0;

  /// Serializes whole client-facing operations (cached_read/cached_write/
  /// flush/prepare_bypass) end to end, wire round trips included, so an
  /// op's inspect-then-install phases see consistent cache state.  The
  /// recall listener takes only mu_ (lock order: op_mu_ then mu_), so
  /// recalls make progress while an op is on the wire.
  std::mutex op_mu_;

  /// Guards the maps below; never held across a wire round trip.
  mutable std::mutex mu_;
  std::map<std::int64_t, ClientLease> leases_;
  std::map<Off, Block> blocks_;  ///< key = block start (global)
  /// Recalls that arrived for lease ids we had not installed yet (the
  /// grant response and the recall raced); install must drop these.
  std::set<std::int64_t> recall_orphans_;
  std::uint64_t lru_ = 0;
  bool closed_ = false;
  CacheStats stats_;

  /// Interned sampler dims for cache-served ops; touched under op_mu_.
  struct {
    std::uint32_t engine = 0;
    std::uint32_t backend = 0;
    std::uint32_t net = 0;
    std::string net_name;
  } dims_;

  std::optional<ServerPool::SessionSlot> slot_;  ///< recall channel
  std::thread listener_;
};

}  // namespace llio::psrv
