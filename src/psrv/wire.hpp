// Wire protocol between psrv clients and file-server threads.
//
// One request message, one response message per round trip, both plain
// byte buffers over sim::Comm (so the CommCostModel charges them like any
// other traffic).  All offsets/lengths are little helpers over memcpy —
// client and servers share a process, but the format is kept explicit so
// the byte volumes the benches report are honest.
//
// Request layout (after the leading op byte):
//   Read      off, len                          — shard-local offsets
//   Write     off, payload
//   ReadList  n, n x (off, len)
//   WriteList n, n x (off, len), payload        — payload packed in list
//                                                 order
//   ReadView  view_id, disp, stream_lo, len, tree_len, tree
//   WriteView view_id, disp, stream_lo, tree_len, tree, payload
//   Resize    new_global_size
//   Sync      —
//   Stop      —
//
// View requests address the *global* file through the fileview (the
// server clips to its shard); tree_len may be 0 when the client believes
// the server already caches view_id — the server answers UnknownView if
// it does not (e.g. after eviction) and the client retries with the tree.
//
// Response layout:
//   status Ok          n, payload (reads)
//   status UnknownView —
//   status Fail        errc, message bytes
#pragma once

#include <cstdint>
#include <cstring>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace llio::psrv::wire {

enum class Op : std::uint8_t {
  Read = 1,
  Write,
  ReadList,
  WriteList,
  ReadView,
  WriteView,
  Resize,
  Sync,
  Stop,
};

enum class Status : std::uint8_t {
  Ok = 0,
  UnknownView = 1,
  Fail = 2,
};

constexpr int kTagRequest = 11;
constexpr int kTagResponse = 12;

inline void put_u8(ByteVec& b, std::uint8_t v) {
  b.push_back(static_cast<Byte>(v));
}

inline void put_i64(ByteVec& b, std::int64_t v) {
  const std::size_t at = b.size();
  b.resize(at + sizeof(v));
  std::memcpy(b.data() + at, &v, sizeof(v));
}

inline void put_bytes(ByteVec& b, ConstByteSpan s) {
  b.insert(b.end(), s.begin(), s.end());
}

/// Sequential decoder; underruns are protocol violations.
class Reader {
 public:
  explicit Reader(ConstByteSpan s) : p_(s.data()), end_(s.data() + s.size()) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(*p_++);
  }

  std::int64_t i64() {
    need(sizeof(std::int64_t));
    std::int64_t v;
    std::memcpy(&v, p_, sizeof(v));
    p_ += sizeof(v);
    return v;
  }

  ConstByteSpan bytes(Off n) {
    need(to_size(n));
    ConstByteSpan out(p_, to_size(n));
    p_ += n;
    return out;
  }

  /// The rest of the message (a trailing payload).
  ConstByteSpan rest() {
    ConstByteSpan out(p_, static_cast<std::size_t>(end_ - p_));
    p_ = end_;
    return out;
  }

  Off remaining() const { return static_cast<Off>(end_ - p_); }

 private:
  void need(std::size_t n) const {
    LLIO_REQUIRE(static_cast<std::size_t>(end_ - p_) >= n, Errc::Protocol,
                 "psrv wire: truncated message");
  }

  const Byte* p_;
  const Byte* end_;
};

inline ByteVec fail_response(Errc code, const std::string& what) {
  ByteVec resp;
  put_u8(resp, static_cast<std::uint8_t>(Status::Fail));
  put_u8(resp, static_cast<std::uint8_t>(code));
  const Byte* msg = as_bytes(what.data());
  put_bytes(resp, ConstByteSpan(msg, what.size()));
  return resp;
}

inline ByteVec ok_response(Off n, Off payload_reserve = 0) {
  ByteVec resp;
  resp.reserve(to_size(to_off(sizeof(std::int64_t)) + 1 + payload_reserve));
  put_u8(resp, static_cast<std::uint8_t>(Status::Ok));
  put_i64(resp, n);
  return resp;
}

}  // namespace llio::psrv::wire
