// Wire protocol between psrv clients and file-server threads.
//
// One request message, one response message per round trip, both plain
// byte buffers over sim::Comm (so the CommCostModel charges them like any
// other traffic).  All offsets/lengths are little helpers over memcpy —
// client and servers share a process, but the format is kept explicit so
// the byte volumes the benches report are honest.
//
// Every request starts with `op u8, session i64`: the session id is the
// multi-tenancy handle — it selects the fair-share scheduler lane, the
// per-session credit account, and the lease ownership domain.
//
// Request layout (after the leading op byte and session id):
//   Read         off, len                       — shard-local offsets
//   Write        off, payload
//   ReadList     n, n x (off, len)
//   WriteList    n, n x (off, len), payload     — payload packed in list
//                                                 order
//   ReadView     view_id, disp, stream_lo, len, tree_len, tree
//   WriteView    view_id, disp, stream_lo, tree_len, tree, payload
//   Resize       new_global_size
//   Sync         —
//   Stop         —
//   OpenSession  weight, callback_slot, lease_term
//                                  — callback_slot -1 = no recall channel
//   CloseSession —
//   LeaseAcquire mode u8, lo, hi                — GLOBAL file offsets
//   LeaseRelease lease_id
//   WriteBack    n, n x (off, len), payload     — WriteList validated
//                                                 against write leases
//
// View requests address the *global* file through the fileview (the
// server clips to its shard); tree_len may be 0 when the client believes
// the server already caches view_id — the server answers UnknownView if
// it does not (e.g. after eviction) and the client retries with the tree.
//
// Response layout:
//   status Ok          n, payload (reads; LeaseAcquire: granted u8,
//                      lease_id i64, expiry i64)
//   status UnknownView —
//   status Fail        errc, message bytes
//
// Servers additionally push lease recalls to a session's callback slot
// on kTagRecall: `lease_id, lo, hi, deadline` (global offsets, deadline
// in sim-clock ticks).  lease_id -1 is the local listener-stop sentinel
// (never sent by a server).  A recall is advisory — the server never
// waits for an answer; release or grace expiry unparks the conflicting
// request either way.
#pragma once

#include <cstdint>
#include <cstring>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace llio::psrv::wire {

enum class Op : std::uint8_t {
  Read = 1,
  Write,
  ReadList,
  WriteList,
  ReadView,
  WriteView,
  Resize,
  Sync,
  Stop,
  OpenSession,
  CloseSession,
  LeaseAcquire,
  LeaseRelease,
  WriteBack,
};

enum class Status : std::uint8_t {
  Ok = 0,
  UnknownView = 1,
  Fail = 2,
};

constexpr int kTagRequest = 11;
constexpr int kTagResponse = 12;
constexpr int kTagRecall = 13;

/// Listener-stop sentinel lease id on kTagRecall messages.
constexpr std::int64_t kRecallStop = -1;

inline void put_u8(ByteVec& b, std::uint8_t v) {
  b.push_back(static_cast<Byte>(v));
}

inline void put_i64(ByteVec& b, std::int64_t v) {
  const std::size_t at = b.size();
  b.resize(at + sizeof(v));
  std::memcpy(b.data() + at, &v, sizeof(v));
}

inline void put_bytes(ByteVec& b, ConstByteSpan s) {
  b.insert(b.end(), s.begin(), s.end());
}

/// Start a request: the op byte plus the session id every request carries.
inline ByteVec request_header(Op op, std::int64_t session) {
  ByteVec b;
  put_u8(b, static_cast<std::uint8_t>(op));
  put_i64(b, session);
  return b;
}

/// Sequential decoder; underruns are protocol violations.
class Reader {
 public:
  explicit Reader(ConstByteSpan s) : p_(s.data()), end_(s.data() + s.size()) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(*p_++);
  }

  std::int64_t i64() {
    need(sizeof(std::int64_t));
    std::int64_t v;
    std::memcpy(&v, p_, sizeof(v));
    p_ += sizeof(v);
    return v;
  }

  ConstByteSpan bytes(Off n) {
    need(to_size(n));
    ConstByteSpan out(p_, to_size(n));
    p_ += n;
    return out;
  }

  /// The rest of the message (a trailing payload).
  ConstByteSpan rest() {
    ConstByteSpan out(p_, static_cast<std::size_t>(end_ - p_));
    p_ = end_;
    return out;
  }

  Off remaining() const { return static_cast<Off>(end_ - p_); }

 private:
  void need(std::size_t n) const {
    LLIO_REQUIRE(static_cast<std::size_t>(end_ - p_) >= n, Errc::Protocol,
                 "psrv wire: truncated message");
  }

  const Byte* p_;
  const Byte* end_;
};

inline ByteVec fail_response(Errc code, const std::string& what) {
  ByteVec resp;
  put_u8(resp, static_cast<std::uint8_t>(Status::Fail));
  put_u8(resp, static_cast<std::uint8_t>(code));
  const Byte* msg = as_bytes(what.data());
  put_bytes(resp, ConstByteSpan(msg, what.size()));
  return resp;
}

inline ByteVec ok_response(Off n, Off payload_reserve = 0) {
  ByteVec resp;
  resp.reserve(to_size(to_off(sizeof(std::int64_t)) + 1 + payload_reserve));
  put_u8(resp, static_cast<std::uint8_t>(Status::Ok));
  put_i64(resp, n);
  return resp;
}

}  // namespace llio::psrv::wire
